#include "isa/registers.h"

#include "common/strings.h"

namespace eilid::isa {

std::string reg_name(uint8_t reg) { return "r" + std::to_string(reg); }

int parse_reg(const std::string& text) {
  std::string t = to_lower(text);
  if (t == "pc") return kPC;
  if (t == "sp") return kSP;
  if (t == "sr") return kSR;
  if (t.size() >= 2 && t[0] == 'r') {
    int n = 0;
    for (size_t i = 1; i < t.size(); ++i) {
      if (t[i] < '0' || t[i] > '9') return -1;
      n = n * 10 + (t[i] - '0');
      if (n > 15) return -1;
    }
    return n;
  }
  return -1;
}

}  // namespace eilid::isa
