// Secure-update-campaign throughput: a mixed-version fleet of
// CFA-attested devices (half provisioned on firmware v1, half on v2)
// staged onto v3 through Fleet::stage_update(), once per thread count
// in {1, 2, 4, 8}. The 1-thread row drives the serial rollout; the
// others fan out over common::ThreadPool with per-device locking. The
// adversarial prelude sends every third device a forged package and
// replays a captured stale package at every other third after the
// rollout, so the timed path includes devices that healed from abuse.
//
// Correctness gates (the bench FAILS on any violation):
//   - every forged package is rejected kBadMac and the device heals,
//   - every campaign outcome is kApplied (versions bump per device),
//   - every replayed stale package is rejected kRollback,
//   - post-rollout, every device attests ok() against the new CFG and
//     still runs predecoded,
//   - each row's outcome tuples are identical to the serial row's, in
//     input order (verdict determinism).
// Updates/sec are reported but not gated (host-dependent).
//
// Usage: bench_update_campaign [--smoke]   (--smoke: CI-sized fleet)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/eilid/fleet.h"

using namespace eilid;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

// Three firmware generations with genuinely different layouts (the
// emit-call count shifts every later address).
std::string firmware(int generation) {
  std::string s = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
)";
  for (int i = 0; i < generation + 1; ++i) s += "    call #emit\n";
  s += R"(halt:
    jmp halt
emit:
    mov.b #')";
  s += static_cast<char>('0' + generation);
  s += R"(', &UART_TX
    ret
.vector 15, main
.end
)";
  return s;
}

struct RowResult {
  size_t threads = 0;
  double rollout_ms = 0;
  size_t devices = 0;
  size_t applied = 0;
  size_t forged_rejected = 0;
  size_t rollbacks_rejected = 0;
  size_t attest_ok = 0;
  size_t predecoded = 0;
  std::vector<UpdateOutcome> outcomes;  // compared field-wise across rows
};

RowResult run_row(size_t threads, size_t devices) {
  RowResult row;
  row.threads = threads;
  row.devices = devices;
  const bool serial = threads == 1;
  common::ThreadPool pool(threads);

  // Mixed-version fleet: even devices on generation 1, odd on 2 -- one
  // campaign heals both onto generation 3 (two cached diffs).
  Fleet fleet;
  for (size_t i = 0; i < devices; ++i) {
    DeviceSession& dev = fleet.provision(
        "dev-" + std::to_string(i), firmware(i % 2 == 0 ? 1 : 2), "fw",
        EnforcementPolicy::kCfaBaseline);
    dev.run_to_symbol("halt", 100000);
  }

  UpdateCampaign campaign =
      fleet.stage_update(firmware(3), "fw", {.eilid = false});
  std::vector<DeviceSession*> sessions = fleet.sessions();

  // Adversarial prelude: forged packages at every third device (the
  // device latches the violation and heals by reset), and a genuine
  // package captured at every other third for post-rollout replay.
  std::vector<std::pair<DeviceSession*, casu::UpdatePackage>> captured;
  for (size_t i = 0; i < sessions.size(); ++i) {
    if (i % 3 == 1) {
      casu::UpdatePackage forged = campaign.package_for(*sessions[i]);
      forged.mac[0] ^= 0xFF;
      if (sessions[i]->apply_update(forged) == casu::UpdateStatus::kBadMac) {
        sessions[i]->machine().run(100);  // latched violation -> reset
        if (sessions[i]->last_reset_reason() == "update-auth") {
          ++row.forged_rejected;
        }
      }
    } else if (i % 3 == 2) {
      captured.emplace_back(sessions[i], campaign.package_for(*sessions[i]));
    }
  }

  auto t0 = clock_type::now();
  std::vector<UpdateOutcome> outcomes =
      serial ? campaign.roll_out(sessions) : campaign.roll_out(sessions, pool);
  row.rollout_ms = ms_since(t0);

  for (const auto& outcome : outcomes) {
    if (outcome.result == UpdateResult::kApplied && outcome.build_swapped &&
        outcome.cfg_staged) {
      ++row.applied;
    }
  }
  row.outcomes = std::move(outcomes);
  for (auto& [session, package] : captured) {
    if (session->apply_update(package) == casu::UpdateStatus::kRollback) {
      ++row.rollbacks_rejected;
    }
  }
  for (auto* session : sessions) {
    session->run_to_symbol("halt", 100000);
    if (session->machine().cpu().decode_cache_valid()) ++row.predecoded;
  }
  std::vector<VerifierService::AttestResult> verdicts =
      serial ? fleet.verifier().verify_all()
             : fleet.verifier().verify_all(pool);
  for (const auto& verdict : verdicts) {
    if (verdict.ok()) ++row.attest_ok;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const size_t devices = smoke ? 64 : 256;
  const size_t kThreadCounts[] = {1, 2, 4, 8};

  std::vector<RowResult> rows;
  for (size_t threads : kThreadCounts) rows.push_back(run_row(threads, devices));
  const RowResult& base = rows[0];

  std::printf("Update campaign (%s): %zu devices, mixed v1/v2 fleet -> v3, "
              "1/3 forged, 1/3 replayed\n",
              smoke ? "smoke" : "full", base.devices);
  std::printf("%7s | %10s | %11s | %8s\n", "threads", "rollout ms",
              "updates/sec", "speedup");
  bool ok = true;
  for (const RowResult& row : rows) {
    std::printf("%7zu | %10.2f | %11.0f | %7.2fx\n", row.threads,
                row.rollout_ms,
                row.rollout_ms > 0
                    ? 1000.0 * static_cast<double>(row.devices) / row.rollout_ms
                    : 0.0,
                row.rollout_ms > 0 ? base.rollout_ms / row.rollout_ms : 0.0);
    // Indices with i % 3 == 1 in [0, n): (n + 1) / 3; with i % 3 == 2:
    // n / 3.
    if (row.applied != row.devices || row.attest_ok != row.devices ||
        row.predecoded != row.devices ||
        row.forged_rejected != (row.devices + 1) / 3 ||
        row.rollbacks_rejected != row.devices / 3) {
      std::printf("  !! threads=%zu: %zu/%zu applied, %zu attested ok, "
                  "%zu predecoded, %zu forged rejected, %zu rollbacks "
                  "rejected\n",
                  row.threads, row.applied, row.devices, row.attest_ok,
                  row.predecoded, row.forged_rejected, row.rollbacks_rejected);
      ok = false;
    }
    if (row.outcomes != base.outcomes) {
      std::printf("  !! threads=%zu: outcomes diverge from the serial row\n",
                  row.threads);
      ok = false;
    }
  }
  std::printf("outcomes: %zu per row, identical across all thread counts\n",
              base.outcomes.size());
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
