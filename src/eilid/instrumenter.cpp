#include "eilid/instrumenter.h"

#include <cctype>
#include <optional>
#include <set>

#include "common/error.h"
#include "common/hex.h"
#include "common/strings.h"
#include "masm/emulated.h"
#include "masm/parser.h"

namespace eilid::core {
namespace {

constexpr const char* kUnit = "<instrumenter>";

bool is_ns_symbol(const std::string& sym) {
  return starts_with(sym, "NS_EILID_");
}

// Classify a parsed statement as a call site.
enum class CallKind { kNone, kVeneer, kDirect, kIndirect };

CallKind call_kind(const masm::Statement& stmt) {
  if (stmt.kind != masm::Statement::Kind::kInstruction || stmt.mnemonic != "call") {
    return CallKind::kNone;
  }
  if (stmt.operands.size() != 1) return CallKind::kNone;
  const auto& op = stmt.operands[0];
  if (op.kind == masm::OperandExpr::Kind::kImmediate) {
    if (!op.expr.is_literal() && is_ns_symbol(op.expr.symbol)) {
      return CallKind::kVeneer;
    }
    return CallKind::kDirect;
  }
  return CallKind::kIndirect;
}

// Text of the source operand for an indirect call's target load
// ("mov <target>, r6").
std::optional<std::string> indirect_target_text(const masm::OperandExpr& op,
                                                std::vector<std::string>* warnings) {
  using K = masm::OperandExpr::Kind;
  switch (op.kind) {
    case K::kReg:
      return "r" + std::to_string(op.reg);
    case K::kIndirect:
      warnings->push_back(
          "indirect call through memory (@rN): target re-read at call time");
      return "@r" + std::to_string(op.reg);
    case K::kIndexed: {
      warnings->push_back(
          "indirect call through memory (X(rN)): target re-read at call time");
      std::string idx = op.expr.is_literal() ? std::to_string(op.expr.offset)
                                             : op.expr.symbol;
      return idx + "(r" + std::to_string(op.reg) + ")";
    }
    case K::kIndirectInc:
      warnings->push_back(
          "indirect call with auto-increment cannot be checked; skipping P3 here");
      return std::nullopt;
    default:
      warnings->push_back("unsupported indirect call operand; skipping P3 here");
      return std::nullopt;
  }
}

// Does this (emulated-expanded) instruction write the given register?
bool writes_reg(const masm::Statement& expanded, uint8_t reg) {
  using K = masm::OperandExpr::Kind;
  if (expanded.kind != masm::Statement::Kind::kInstruction) return false;
  const auto& m = expanded.mnemonic;
  // Source auto-increment modifies its register.
  for (const auto& op : expanded.operands) {
    if (op.kind == K::kIndirectInc && op.reg == reg) return true;
  }
  if (expanded.operands.empty()) return false;
  const auto& dst = expanded.operands.back();
  if (dst.kind != K::kReg || dst.reg != reg) return false;
  // Compare-style instructions do not write their destination.
  if (m == "cmp" || m == "bit") return false;
  // call writes PC/SP only; push writes memory.
  if (m == "call" || m == "push" || m == "reti") return false;
  return true;
}

// A free scratch register for the reserved-register rewrite: any of
// r8-r15 the instruction does not reference (an instruction names at
// most two registers, so one always exists).
int pick_scratch_reg(const masm::Statement& stmt) {
  using K = masm::OperandExpr::Kind;
  bool used[16] = {};
  for (const auto& op : stmt.operands) {
    if (op.kind == K::kReg || op.kind == K::kIndirect ||
        op.kind == K::kIndirectInc || op.kind == K::kIndexed) {
      used[op.reg & 0xF] = true;
    }
  }
  for (int r = 15; r >= 8; --r) {
    if (!used[r]) return r;
  }
  return -1;
}

// Replace whole-token occurrences of register `from` (e.g. "r5") in an
// instruction's text with `to`. Token boundaries keep symbols like
// "var5" and registers like "r15" intact.
std::string substitute_reg_token(const std::string& text,
                                 const std::string& from,
                                 const std::string& to) {
  auto word = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  std::string out;
  size_t i = 0;
  while (i < text.size()) {
    const bool starts = text.compare(i, from.size(), from) == 0 ||
                        (std::tolower(static_cast<unsigned char>(text[i])) ==
                             from[0] &&
                         text.compare(i + 1, from.size() - 1,
                                      from.substr(1)) == 0);
    if (starts && (i == 0 || !word(text[i - 1])) &&
        (i + from.size() >= text.size() || !word(text[i + from.size()]))) {
      out += to;
      i += from.size();
    } else {
      out += text[i++];
    }
  }
  return out;
}

}  // namespace

InstrumentResult Instrumenter::instrument(
    const std::vector<std::string>& original,
    const masm::Listing* prev_listing) const {
  InstrumentResult result;

  if (!config_.label_mode && prev_listing == nullptr) {
    throw InstrumentError(
        "numeric mode requires the previous iteration's listing (Fig. 2)");
  }

  // --- Parse the original source. ---
  std::vector<masm::Statement> stmts;
  stmts.reserve(original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    stmts.push_back(
        masm::parse_line(original[i], kUnit, static_cast<int>(i + 1)));
  }

  // --- Collect metadata. ---
  std::string reset_handler;
  std::set<std::string> isr_labels;
  std::vector<std::string> functions;  // ordered, unique
  std::set<std::string> function_set;
  auto add_function = [&](const std::string& sym) {
    if (function_set.insert(sym).second) functions.push_back(sym);
  };

  bool has_indirect_sites = false;
  for (const auto& stmt : stmts) {
    if (stmt.kind == masm::Statement::Kind::kDirective &&
        stmt.directive == "vector" && stmt.args.size() == 2) {
      int slot = -1;
      try {
        slot = static_cast<int>(parse_number(stmt.args[0]));
      } catch (const std::invalid_argument&) {
        continue;  // the assembler reports this properly
      }
      if (slot == sim::kResetVectorIndex) {
        reset_handler = stmt.args[1];
      } else {
        isr_labels.insert(stmt.args[1]);
      }
    }
    if (stmt.kind == masm::Statement::Kind::kDirective &&
        stmt.directive == "func") {
      for (const auto& f : stmt.args) add_function(f);
    }
    if (call_kind(stmt) == CallKind::kIndirect) has_indirect_sites = true;
    if (call_kind(stmt) == CallKind::kDirect &&
        config_.table_policy == TablePolicy::kAllFunctions) {
      const auto& op = stmt.operands[0];
      if (!op.expr.is_literal()) add_function(op.expr.symbol);
    }
  }
  if (reset_handler.empty()) {
    throw InstrumentError("application has no reset vector (.vector 15, ...)");
  }
  if (has_indirect_sites && functions.empty() && config_.forward_edge) {
    result.warnings.push_back(
        "indirect calls present but no .func declarations: every indirect "
        "call will reset the device");
  }
  // The boot block (init + table registration) is needed only when the
  // P3 table is used: the hardware reset already zeroes registers and
  // secure DMEM, so shadow-stack state needs no software init.
  const bool need_boot_block = config_.forward_edge && has_indirect_sites;

  // --- Numeric mode: return addresses & symbol values from the
  // previous listing (the K-th real call site in the listing matches
  // the K-th call site of the original source). ---
  std::vector<uint16_t> ra_list;
  if (!config_.label_mode) {
    for (size_t i = 0; i < prev_listing->lines.size(); ++i) {
      const auto& line = prev_listing->lines[i];
      if (!line.is_instruction || line.mnemonic != "call") continue;
      masm::Statement s = masm::parse_line(line.source, kUnit, line.line_no);
      if (call_kind(s) == CallKind::kVeneer) continue;
      ra_list.push_back(prev_listing->next_address(i));
    }
  }
  auto symbol_addr = [&](const std::string& sym) -> uint16_t {
    auto it = prev_listing->symbols.find(sym);
    if (it == prev_listing->symbols.end()) {
      throw InstrumentError("symbol not in previous listing: " + sym);
    }
    return it->second;
  };

  // --- Emit. ---
  std::vector<std::string>& out = result.lines;
  out.push_back("; instrumented by EILIDinst");
  size_t call_index = 0;  // K: call-site ordinal
  int ra_label_counter = 0;
  bool boot_insert_pending = false;
  bool veneers_emitted = false;

  // The NS_* stubs live in the ROM entry section; the app references
  // them as constants (they are not part of the app binary, which is
  // why the paper's binaries grow by only tens of bytes).
  auto emit_veneers = [&]() {
    if (veneers_emitted) return;
    veneers_emitted = true;
    out.push_back("");
    out.push_back("; ---- EILIDsw entry-section stubs (in secure ROM) ----");
    for (const char* name : kVeneerNames) {
      auto it = rom_symbols_.find(name);
      if (it == rom_symbols_.end()) {
        throw InstrumentError(std::string("ROM symbol missing: ") + name);
      }
      out.push_back(".equ " + std::string(name) + ", " + hex16(it->second));
    }
  };

  auto emit_boot_block = [&]() {
    if (!need_boot_block) return;
    out.push_back("    ; EILID boot: init shadow state, register functions");
    out.push_back("    call #NS_EILID_init");
    for (const auto& f : functions) {
      if (config_.label_mode) {
        out.push_back("    mov #" + f + ", r6");
      } else {
        out.push_back("    mov #" + hex16(symbol_addr(f)) + ", r6");
      }
      out.push_back("    call #NS_EILID_store_ind");
      ++result.sites.functions_registered;
    }
    if (config_.lock_table) out.push_back("    call #NS_EILID_lock");
  };

  auto emit_store_ra = [&](size_t site_index) {
    if (config_.label_mode) {
      out.push_back("    mov #__eilid_ra_" + std::to_string(ra_label_counter) +
                    ", r6");
    } else {
      out.push_back("    mov #" + hex16(ra_list.at(site_index)) + ", r6");
    }
    out.push_back("    call #NS_EILID_store_ra");
  };

  for (size_t i = 0; i < original.size(); ++i) {
    const masm::Statement& stmt = stmts[i];
    const std::string& raw = original[i];

    // .end must come after the veneers.
    if (stmt.kind == masm::Statement::Kind::kDirective &&
        stmt.directive == "end") {
      emit_veneers();
      out.push_back(raw);
      continue;
    }

    // Split "label: insn" so that prologue insertions can sit between.
    bool has_insn = stmt.kind == masm::Statement::Kind::kInstruction;
    std::string insn_text = stmt.text;
    if (!stmt.label.empty()) {
      out.push_back(stmt.label + ":");
      // Remove the label from the text we may re-emit.
      size_t colon = insn_text.find(':');
      insn_text = trim(colon == std::string::npos ? ""
                                                  : insn_text.substr(colon + 1));
      if (isr_labels.count(stmt.label) && config_.interrupt_edge) {
        out.push_back("    ; EILID P2: save caller args, store ISR context");
        out.push_back("    push r6");
        out.push_back("    push r7");
        out.push_back("    mov 6(r1), r6");
        out.push_back("    mov 4(r1), r7");
        out.push_back("    call #NS_EILID_store_rfi");
        ++result.sites.isr_prologues;
      }
      if (stmt.label == reset_handler) boot_insert_pending = true;
      if (!has_insn) {
        if (!trim(insn_text).empty()) out.push_back("    " + insn_text);
        continue;
      }
    } else if (!has_insn) {
      out.push_back(raw);
      continue;
    }

    // --- Instruction statement: insert before/around/after. ---
    CallKind kind = call_kind(stmt);
    bool emitted_ra_site = false;

    if (kind == CallKind::kDirect) {
      if (config_.backward_edge) {
        emit_store_ra(call_index);
        emitted_ra_site = true;
        ++result.sites.direct_calls;
      }
      ++call_index;
    } else if (kind == CallKind::kIndirect) {
      if (config_.forward_edge) {
        auto target = indirect_target_text(stmt.operands[0], &result.warnings);
        if (target) {
          out.push_back("    mov " + *target + ", r6");
          out.push_back("    call #NS_EILID_check_ind");
          ++result.sites.indirect_calls;
        }
      }
      if (config_.backward_edge) {
        emit_store_ra(call_index);
        emitted_ra_site = true;
      }
      ++call_index;
    } else if (stmt.mnemonic == "ret") {
      if (config_.backward_edge) {
        out.push_back("    mov @r1, r6");
        out.push_back("    call #NS_EILID_check_ra");
        ++result.sites.returns;
      }
    } else if (stmt.mnemonic == "reti") {
      if (config_.interrupt_edge) {
        out.push_back("    mov 6(r1), r6");
        out.push_back("    mov 4(r1), r7");
        out.push_back("    call #NS_EILID_check_rfi");
        out.push_back("    pop r7");
        out.push_back("    pop r6");
        ++result.sites.isr_epilogues;
      }
    }

    // Reserved-register spill (paper §V): the shadow index r5 must
    // survive application writes when it is register-backed. The
    // rewrite must leave r5 intact at EVERY instruction boundary, not
    // just after the site: the original push r5 / insn / pop r5
    // sandwich had a one-instruction window where r5 held the
    // application's value, and an interrupt landing there made the
    // instrumented ISR prologue index the shadow stack with garbage —
    // convicting a benign program (found by the scenario fuzzer, seed
    // 0x17b; tests/test_fuzz_regressions.cpp pins it). Instead the
    // instruction is re-targeted at a scratch register seeded with
    // r5's value: reads see the same value the sandwich produced
    // (the index), the discarded-by-design write lands in the
    // scratch, and r5 is never written at all.
    bool spill_r5 = false;
    if (config_.index_in_register) {
      masm::Statement expanded = stmt;
      if (expanded.kind == masm::Statement::Kind::kInstruction) {
        masm::expand_emulated(expanded, kUnit);
      }
      if (writes_reg(expanded, kIndexReg)) {
        if (config_.spill_reserved) {
          spill_r5 = true;
          ++result.sites.spills;
          result.warnings.push_back(
              "line " + std::to_string(stmt.line_no) +
              ": application writes reserved r5; re-targeted at a "
              "scratch register (the application value does not "
              "survive)");
        } else {
          result.warnings.push_back(
              "line " + std::to_string(stmt.line_no) +
              ": application writes reserved r5 and spilling is disabled");
        }
      }
    }

    if (spill_r5) {
      const int scratch = pick_scratch_reg(stmt);
      if (scratch < 0) {
        throw InstrumentError("line " + std::to_string(stmt.line_no) +
                              ": no free scratch register for reserved-r5 "
                              "rewrite");
      }
      const std::string rs = "r" + std::to_string(scratch);
      out.push_back("    push " + rs);
      out.push_back("    mov r5, " + rs);
      out.push_back("    " + substitute_reg_token(insn_text, "r5", rs));
      out.push_back("    pop " + rs);
    } else {
      out.push_back("    " + insn_text);
    }

    if (emitted_ra_site && config_.label_mode) {
      out.push_back("__eilid_ra_" + std::to_string(ra_label_counter) + ":");
      ++ra_label_counter;
    }

    if (boot_insert_pending) {
      emit_boot_block();
      boot_insert_pending = false;
    }
  }

  emit_veneers();
  return result;
}

}  // namespace eilid::core
