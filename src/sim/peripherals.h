// Memory-mapped peripherals of the simulated device. Stimulus (ADC
// readings, UART input, echo distances) is host-scripted and
// deterministic so that benchmark runs are exactly reproducible.
#ifndef EILID_SIM_PERIPHERALS_H
#define EILID_SIM_PERIPHERALS_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/bus.h"
#include "sim/memory_map.h"

namespace eilid::sim {

// 16-bit up-counter with one compare register and optional interrupt.
// ctl: bit0 enable, bit1 irq-enable, bit2 write-1-to-clear counter,
// bits4-5 prescale exponent (divide by 8^n).
class TimerA : public Peripheral {
 public:
  uint16_t read(uint16_t addr) override;
  void write(uint16_t addr, uint16_t value) override;
  bool tick(uint64_t cycles) override;
  int pending_irq() const override;
  void ack_irq() override { irq_latched_ = false; }
  // Exact cycle horizon to the next compare-match IRQ assertion (the
  // timer is the only peripheral whose tick can assert a line; every
  // other source changes only on register access or host stimulus).
  uint64_t cycles_to_irq() const override;
  void reset() override;
  uint16_t first_addr() const override { return mmio::kTimerCtl; }
  uint16_t last_addr() const override { return mmio::kTimerFlags; }

 private:
  uint16_t ctl_ = 0;
  uint16_t ccr0_ = 0xFFFF;
  uint16_t count_ = 0;
  uint16_t flags_ = 0;
  uint64_t sub_cycles_ = 0;
  bool irq_latched_ = false;
};

// Successive-approximation ADC with scripted per-channel sample series.
// Writing (0x100 | channel) starts a conversion; after kConversionCycles
// the status bit sets and the sample appears in kAdcMem.
class Adc : public Peripheral {
 public:
  static constexpr unsigned kConversionCycles = 64;
  static constexpr int kNumChannels = 4;

  // The conversion result cycles through `series` (wraps around).
  void set_channel_series(int channel, std::vector<uint16_t> series);

  uint16_t read(uint16_t addr) override;
  void write(uint16_t addr, uint16_t value) override;
  bool tick(uint64_t cycles) override;
  void reset() override;
  uint16_t first_addr() const override { return mmio::kAdcCtl; }
  uint16_t last_addr() const override { return mmio::kAdcStat; }

  unsigned conversions_done() const { return conversions_; }

 private:
  std::vector<uint16_t> series_[kNumChannels];
  size_t series_pos_[kNumChannels] = {};
  uint16_t mem_ = 0;
  bool busy_ = false;
  bool done_ = false;
  int active_channel_ = 0;
  uint64_t remaining_ = 0;
  unsigned conversions_ = 0;
};

// 8-bit GPIO port. Host can drive inputs; every output change is
// recorded (cycle, value) so tests and benches can verify waveforms
// (charlieplexing patterns, stepper pulses).
class GpioPort : public Peripheral {
 public:
  GpioPort(uint16_t in_addr, uint16_t out_addr, uint16_t dir_addr)
      : in_addr_(in_addr), out_addr_(out_addr), dir_addr_(dir_addr) {}

  uint16_t read(uint16_t addr) override;
  void write(uint16_t addr, uint16_t value) override;
  bool tick(uint64_t cycles) override {
    now_ += cycles;
    return false;
  }
  void reset() override;
  uint16_t first_addr() const override { return in_addr_; }
  uint16_t last_addr() const override { return dir_addr_; }

  void set_input(uint8_t value) { in_ = value; }
  uint8_t output() const { return out_; }
  uint8_t direction() const { return dir_; }

  struct Edge {
    uint64_t cycle;
    uint8_t value;
  };
  const std::vector<Edge>& output_trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

 private:
  uint16_t in_addr_, out_addr_, dir_addr_;
  uint8_t in_ = 0, out_ = 0, dir_ = 0;
  uint64_t now_ = 0;
  std::vector<Edge> trace_;
};

// Byte-oriented UART. Host feeds the receive queue; transmitted bytes
// accumulate in tx_log(). Status bit0 = rx available, bit1 = tx ready
// (always), bit2 = rx interrupt enable (writable).
class Uart : public Peripheral {
 public:
  uint16_t read(uint16_t addr) override;
  void write(uint16_t addr, uint16_t value) override;
  int pending_irq() const override;
  void ack_irq() override {}
  void reset() override;
  uint16_t first_addr() const override { return mmio::kUartTx; }
  uint16_t last_addr() const override { return mmio::kUartStat; }

  void feed(const std::string& bytes);
  void feed(const std::vector<uint8_t>& bytes);
  const std::vector<uint8_t>& tx_log() const { return tx_; }
  std::string tx_text() const { return std::string(tx_.begin(), tx_.end()); }
  void clear_tx() { tx_.clear(); }
  size_t rx_pending() const { return rx_.size() - rx_pos_; }

 private:
  std::vector<uint8_t> rx_;
  size_t rx_pos_ = 0;
  std::vector<uint8_t> tx_;
  bool irq_enable_ = false;
};

// HC-SR04-style ultrasonic ranger. Writing 1 to TRIG starts a ping;
// after a flight delay the echo width (cycles, proportional to the
// scripted distance) is readable and STAT bit0 sets.
class Ultrasonic : public Peripheral {
 public:
  // Cycles of echo width per millimetre of distance (sound round trip
  // at 8 MHz: ~46.6 cycles/mm; rounded for simple arithmetic).
  static constexpr unsigned kCyclesPerMm = 47;

  void set_distances_mm(std::vector<uint16_t> distances) {
    distances_ = std::move(distances);
    pos_ = 0;
  }

  uint16_t read(uint16_t addr) override;
  void write(uint16_t addr, uint16_t value) override;
  bool tick(uint64_t cycles) override;
  void reset() override;
  uint16_t first_addr() const override { return mmio::kUsTrig; }
  uint16_t last_addr() const override { return mmio::kUsStat; }

  unsigned pings() const { return pings_; }

 private:
  std::vector<uint16_t> distances_{1000};
  size_t pos_ = 0;
  bool busy_ = false;
  bool ready_ = false;
  uint16_t echo_ = 0;
  uint64_t remaining_ = 0;
  unsigned pings_ = 0;
};

// Write-only HD44780-style LCD bus: captures the command/data stream.
class Lcd : public Peripheral {
 public:
  struct Item {
    bool is_data;
    uint8_t value;
  };

  uint16_t read(uint16_t addr) override;
  void write(uint16_t addr, uint16_t value) override;
  void reset() override { stream_.clear(); }
  uint16_t first_addr() const override { return mmio::kLcdCmd; }
  uint16_t last_addr() const override { return mmio::kLcdData; }

  const std::vector<Item>& stream() const { return stream_; }
  // Concatenation of data bytes (the visible text).
  std::string text() const;

 private:
  std::vector<Item> stream_;
};

}  // namespace eilid::sim

#endif  // EILID_SIM_PERIPHERALS_H
