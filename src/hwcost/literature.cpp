#include "hwcost/literature.h"

namespace eilid::hwcost {

const std::vector<Technique>& techniques() {
  static const std::vector<Technique> kRows = {
      {"HAFIX", Method::kCfi, true, false, true, false, "Intel Siskiyou Peak",
       "Extends Intel ISA with shadow stack", 1150, 300, true},
      {"HCFI", Method::kCfi, true, true, true, false, "Leon3 SPARC V8",
       "Extends Sparc V8 ISA with shadow stack and labels", 2500, 2200, true},
      {"FIXER", Method::kCfi, true, true, true, false, "RocketChip",
       "Extends RISC-V ISA with shadow stack", -1, -1, true},
      {"Silhouette", Method::kCfi, true, true, true, true, "ARMv7-M",
       "Uses ARM MPU for hardened shadow-stacks and labels", -1, -1, true},
      {"CaRE", Method::kCfi, true, false, true, true, "ARMv8-M",
       "Uses ARM TrustZone for shadow stack & nested interrupts", -1, -1, true},
      {"Tiny-CFA", Method::kCfa, false, true, true, false, "openMSP430",
       "Hybrid CFA with shadow stack", 302, 44, false},
      {"ACFA", Method::kCfa, false, true, true, true, "openMSP430",
       "Active hybrid CFA with secure auditing of code", 501, 946, false},
      {"LO-FAT", Method::kCfa, false, true, true, false, "Pulpino",
       "Hardware-based CFA solution", 4100, 8800, true},
      {"LiteHAX", Method::kCfa, false, true, true, false, "Pulpino",
       "Lightweight hardware-assisted attestation of execution", 2800, 2600,
       true},
      {"CFA+", Method::kCfa, false, true, true, true, "ARMv8.5-A",
       "Leverages ARM's Branch Target Identification", -1, -1, true},
      // EILID: real-time CFI on a low-end device. The paper's measured
      // values over openMSP430.
      {"EILID", Method::kCfi, true, true, true, true, "openMSP430",
       "Uses CASU for shadow stack", 99, 34, false},
  };
  return kRows;
}

}  // namespace eilid::hwcost
