#include "isa/block_image.h"

#include "isa/registers.h"

namespace eilid::isa {

bool writes_status_register(const Instruction& insn) {
  const OpcodeInfo& info = opcode_info(insn.op);
  switch (info.format) {
    case Format::kJump:
      return false;
    case Format::kDouble:
      return insn.dst.mode == AddrMode::kRegister && insn.dst.reg == kSR;
    case Format::kSingle:
      // rrc/rra/swpb/sxt with SR as the read-modify-write operand.
      // push reads only; call/reti are control transfers.
      return insn.op != Opcode::kPush && insn.op != Opcode::kCall &&
             insn.op != Opcode::kReti &&
             insn.src.mode == AddrMode::kRegister && insn.src.reg == kSR;
  }
  return false;
}

BlockImage::BlockImage(const DecodedImage& decoded) {
  const auto views = decoded.range_views();
  tables_.reserve(views.size());
  for (const DecodedImage::RangeView& view : views) {
    RangeTable table;
    table.first = view.first;
    table.last = view.last;
    table.entries.resize(view.entries.size());
    // Backward pass: each slot's run is its own instruction plus the
    // run of its fall-through slot, unless the instruction is itself a
    // hazard or the fall-through leaves the range/table.
    for (size_t i = view.entries.size(); i-- > 0;) {
      const DecodedImage::Entry& de = view.entries[i];
      Entry& be = table.entries[i];
      if (de.size_words == 0) continue;  // span stays 0: undecodable slot
      be.span = 1;
      be.cycles = de.cycles;
      if (de.control_transfer) {
        be.end = BlockEnd::kTransfer;
        const OpcodeInfo& info = opcode_info(de.insn.op);
        if (info.format == Format::kJump) {
          Decoded d{de.insn, static_cast<uint16_t>(view.first + 2 * i),
                    de.size_words};
          be.target = d.jump_target();
        } else if (de.insn.op == Opcode::kCall &&
                   de.insn.src.mode == AddrMode::kImmediate) {
          be.target = static_cast<uint16_t>(de.insn.src.value) & 0xFFFE;
        }
        continue;
      }
      if (writes_status_register(de.insn)) {
        be.end = BlockEnd::kSrWrite;
        continue;
      }
      const uint32_t next =
          static_cast<uint32_t>(view.first + 2 * i) + 2u * de.size_words;
      if (next > view.last) {
        be.end = BlockEnd::kRangeEnd;
        continue;
      }
      const size_t next_i = i + de.size_words;
      const Entry& succ = table.entries[next_i];
      if (succ.span == 0) {
        // kNone successor: its slot does not decode. Stop before it so
        // the illegal trap fires from the per-instruction path.
        be.end = BlockEnd::kLeadsIllegal;
        continue;
      }
      be.span = static_cast<uint16_t>(1 + succ.span);
      be.cycles = static_cast<uint16_t>(de.cycles + succ.cycles);
      be.target = succ.target;
      be.end = succ.end;
      if (be.span > max_span_) max_span_ = be.span;
    }
    tables_.push_back(std::move(table));
  }
}

size_t BlockImage::slot_count() const {
  size_t n = 0;
  for (const RangeTable& t : tables_) n += t.entries.size();
  return n;
}

std::vector<BlockImage::RangeView> BlockImage::range_views() const {
  std::vector<RangeView> views;
  views.reserve(tables_.size());
  for (const RangeTable& t : tables_) {
    views.push_back({t.first, t.last,
                     std::span<const Entry>(t.entries.data(), t.entries.size())});
  }
  return views;
}

}  // namespace eilid::isa
