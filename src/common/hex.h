// Hexadecimal formatting helpers used by the disassembler, listing
// writer, tracer and attack tooling.
#ifndef EILID_COMMON_HEX_H
#define EILID_COMMON_HEX_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace eilid {

// "0x1234" (always 4 hex digits -- MSP430 addresses are 16-bit).
std::string hex16(uint16_t v);

// "0x12" (always 2 hex digits).
std::string hex8(uint8_t v);

// Bare 4-digit form without prefix: "1234". Used in .lst listings.
std::string hex16_bare(uint16_t v);

// Canonical hexdump of a byte buffer: one 16-byte row per line,
// "ADDR: xx xx ... |ascii|". `base` is the address of data[0].
std::string hexdump(std::span<const uint8_t> data, uint16_t base = 0);

// Parse "0x1A2B", "1A2Bh" or decimal "1234"; throws std::invalid_argument
// on malformed input. Used by assembler operand parsing and CLI tools.
uint32_t parse_number(const std::string& text);

}  // namespace eilid

#endif  // EILID_COMMON_HEX_H
