// Fleet-scale baseline for the parallel engine: 256 CFA-attested
// devices from 4 cached builds (64 per Table IV app), provisioned,
// simulated to halt, and batch-verified twice -- once per thread count
// in {1, 2, 4, 8}. The 1-thread row drives the serial engine paths
// (plain loops, serial verify_all()); the other rows fan out through
// common::ThreadPool (sharded registry + single-flight cache under
// real contention, apps::run_workload_all(), pooled verify_all()).
//
// Correctness gates (the bench FAILS on any violation):
//   - every device reaches halt with a passing host check,
//   - every attestation verdict is ok(),
//   - each row's verdict tuples are byte-identical to the 1-thread
//     serial row's, in enrollment-id order.
// Wall-clock speedups are reported but not gated: they depend on the
// host's core count (this box may be single-core CI).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/common/thread_pool.h"
#include "src/eilid/fleet.h"

using namespace eilid;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

constexpr int kDevicesPerApp = 64;
const char* kAppNames[4] = {"light_sensor", "temp_sensor", "charlieplexing",
                            "lcd_sensor"};

// One attestation verdict, flattened for cross-run comparison. Nonces
// differ between runs by design (they only feed the MAC), so they are
// deliberately absent.
std::string verdict_fingerprint(const VerifierService::AttestResult& r) {
  std::ostringstream s;
  s << r.device_id << '|' << r.attested << '|' << r.seq << '|' << r.cycle
    << '|' << r.mac_ok << '|' << r.seq_ok << '|' << r.path_ok << '|'
    << r.edges << '|' << r.dropped;
  return s.str();
}

struct RowResult {
  size_t threads = 0;
  double provision_ms = 0;
  double simulate_ms = 0;
  double attest_ms = 0;
  size_t devices = 0;
  size_t pipeline_runs = 0;
  size_t cache_hits = 0;
  size_t halted = 0;
  size_t check_failures = 0;
  size_t verdict_failures = 0;
  bool ordered = true;
  std::vector<std::string> fingerprints;  // sweep 1 then sweep 2
};

RowResult run_row(size_t threads) {
  RowResult row;
  row.threads = threads;
  const bool serial = threads == 1;
  common::ThreadPool pool(threads);

  Fleet fleet;
  std::vector<std::string> ids;
  std::vector<const apps::AppSpec*> specs;
  for (const char* name : kAppNames) {
    const auto& app = apps::app_by_name(name);
    for (int i = 0; i < kDevicesPerApp; ++i) {
      ids.push_back(app.name + "-" + std::to_string(i));
      specs.push_back(&app);
    }
  }

  // --- provision: 256 sessions, 4 pipeline runs (single-flight) ----
  auto t0 = clock_type::now();
  std::vector<apps::FleetWorkload> work(ids.size());
  auto provision_one = [&](size_t i) {
    DeviceSession& dev = fleet.provision(
        ids[i], specs[i]->source, specs[i]->name,
        EnforcementPolicy::kCfaBaseline, {.cfa = {.log_capacity = 1 << 17}});
    work[i] = {&dev, specs[i], 0};
  };
  if (serial) {
    for (size_t i = 0; i < ids.size(); ++i) provision_one(i);
  } else {
    pool.parallel_for(ids.size(), provision_one);
  }
  row.provision_ms = ms_since(t0);
  row.devices = fleet.size();
  row.pipeline_runs = fleet.pipeline_runs();
  row.cache_hits = fleet.build_cache_hits();

  // --- simulate every device to its halt label ---------------------
  auto tr = clock_type::now();
  std::vector<apps::WorkloadOutcome> outcomes;
  if (serial) {
    outcomes.reserve(work.size());
    for (const auto& item : work) {
      outcomes.push_back(apps::run_workload(*item.session, *item.app));
    }
  } else {
    outcomes = apps::run_workload_all(work, pool);
  }
  row.simulate_ms = ms_since(tr);
  for (const auto& outcome : outcomes) {
    if (outcome.reached_halt) ++row.halted;
    if (!outcome.check_failure.empty()) ++row.check_failures;
  }

  // --- attest: two full sweeps (drained logs, then empty logs) -----
  auto ta = clock_type::now();
  for (int sweep = 0; sweep < 2; ++sweep) {
    std::vector<VerifierService::AttestResult> verdicts =
        serial ? fleet.verifier().verify_all()
               : fleet.verifier().verify_all(pool);
    for (size_t i = 0; i < verdicts.size(); ++i) {
      if (!verdicts[i].ok()) ++row.verdict_failures;
      if (i > 0 && !(verdicts[i - 1].device_id < verdicts[i].device_id)) {
        row.ordered = false;
      }
      row.fingerprints.push_back(verdict_fingerprint(verdicts[i]));
    }
  }
  row.attest_ms = ms_since(ta);
  return row;
}

}  // namespace

int main() {
  const size_t kThreadCounts[] = {1, 2, 4, 8};
  std::vector<RowResult> rows;
  for (size_t threads : kThreadCounts) rows.push_back(run_row(threads));
  const RowResult& base = rows[0];

  std::printf("Fleet parallel scale: %zu devices, %zu pipeline runs "
              "(%zu cache hits) per run\n",
              base.devices, base.pipeline_runs, base.cache_hits);
  std::printf("%7s | %12s | %12s | %12s | %11s | %11s\n", "threads",
              "provision ms", "simulate ms", "attest ms", "sim speedup",
              "att speedup");
  bool ok = true;
  for (const RowResult& row : rows) {
    std::printf("%7zu | %12.1f | %12.1f | %12.1f | %10.2fx | %10.2fx\n",
                row.threads, row.provision_ms, row.simulate_ms, row.attest_ms,
                row.simulate_ms > 0 ? base.simulate_ms / row.simulate_ms : 0.0,
                row.attest_ms > 0 ? base.attest_ms / row.attest_ms : 0.0);
    if (row.halted != row.devices || row.check_failures != 0 ||
        row.verdict_failures != 0 || !row.ordered ||
        row.pipeline_runs != 4 || row.devices != base.devices) {
      std::printf("  !! threads=%zu: %zu/%zu halted, %zu check failures, "
                  "%zu verdict failures, %zu pipeline runs, ordered=%d\n",
                  row.threads, row.halted, row.devices, row.check_failures,
                  row.verdict_failures, row.pipeline_runs,
                  row.ordered ? 1 : 0);
      ok = false;
    }
    if (row.fingerprints != base.fingerprints) {
      std::printf("  !! threads=%zu: verdicts diverge from the serial run\n",
                  row.threads);
      ok = false;
    }
  }
  std::printf("verdicts: %zu per run, identical across all thread counts, "
              "enrollment-id ordered\n",
              base.fingerprints.size());
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
