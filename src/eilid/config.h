// EILID configuration: reserved registers (paper Table III), trusted
// function selectors, secure-DMEM layout, and instrumentation options.
#ifndef EILID_EILID_CONFIG_H
#define EILID_EILID_CONFIG_H

#include <cstdint>
#include <string>

#include "sim/memory_map.h"

namespace eilid::core {

// Reserved general-purpose registers (paper Table III).
inline constexpr uint8_t kSelectorReg = 4;  // r4: S_EILID function selector
inline constexpr uint8_t kIndexReg = 5;     // r5: shadow-stack index
inline constexpr uint8_t kArg0Reg = 6;      // r6: first argument
inline constexpr uint8_t kArg1Reg = 7;      // r7: second argument

// Selector values dispatched by the ROM entry section.
namespace sel {
inline constexpr int kInit = 0;
inline constexpr int kStoreRa = 1;
inline constexpr int kCheckRa = 2;
inline constexpr int kStoreRfi = 3;
inline constexpr int kCheckRfi = 4;
inline constexpr int kStoreInd = 5;
inline constexpr int kCheckInd = 6;
inline constexpr int kLock = 7;
}  // namespace sel

// Non-secure veneer names (what the instrumenter emits calls to).
inline constexpr const char* kVeneerNames[8] = {
    "NS_EILID_init",      "NS_EILID_store_ra",  "NS_EILID_check_ra",
    "NS_EILID_store_rfi", "NS_EILID_check_rfi", "NS_EILID_store_ind",
    "NS_EILID_check_ind", "NS_EILID_lock",
};

// EILIDsw / secure-DMEM configuration. Defaults reproduce the paper:
// 256 bytes of secure DMEM at 0x2000 holding the indirect-call table,
// lock word, table count and the shadow stack.
struct RomConfig {
  uint16_t secure_base = sim::kSecureRamStart;
  uint16_t secure_size = 256;
  uint16_t table_capacity = 16;  // indirect-call table entries
  // Shadow-stack entries; 0 = fill the remaining secure DMEM.
  uint16_t shadow_capacity = 0;
  // Ablation (paper §V-B): keep the shadow index in secure memory
  // instead of r5. Slower but frees r5 -- the paper argues r5-in-register
  // "obviates the need for memory access ... improving performance".
  bool memory_backed_index = false;

  // Derived layout.
  uint16_t tbl_count_addr() const { return secure_base; }
  uint16_t tbl_lock_addr() const { return static_cast<uint16_t>(secure_base + 2); }
  uint16_t idx_addr() const { return static_cast<uint16_t>(secure_base + 4); }
  uint16_t tbl_base_addr() const { return static_cast<uint16_t>(secure_base + 6); }
  uint16_t shadow_base_addr() const {
    return static_cast<uint16_t>(tbl_base_addr() + 2 * table_capacity);
  }
  uint16_t effective_shadow_capacity() const {
    if (shadow_capacity != 0) return shadow_capacity;
    uint16_t end = static_cast<uint16_t>(secure_base + secure_size);
    return static_cast<uint16_t>((end - shadow_base_addr()) / 2);
  }
};

// Which functions get registered in the P3 entry table.
enum class TablePolicy : uint8_t {
  // Only address-taken functions (.func declarations): the smallest
  // valid target set, analogous to address-taken CFI (default).
  kAddressTaken,
  // Every function (direct call targets + .func), as the paper
  // describes ("enumerates entry points of all functions"). Larger
  // table => weaker forward-edge precision; measured by an ablation.
  kAllFunctions,
};

// Instrumentation options (which properties to enforce and how return
// addresses are resolved).
struct InstrumentConfig {
  bool backward_edge = true;   // P1: call/ret
  bool interrupt_edge = true;  // P2: ISR prologue/epilogue
  bool forward_edge = true;    // P3: indirect calls + entry table
  bool lock_table = false;     // hardening: lock the table after boot
  TablePolicy table_policy = TablePolicy::kAddressTaken;
  // true: single-pass assembler-label return addresses (ablation);
  // false: the paper's numeric addresses from the previous iteration's
  // .lst, requiring the three-iteration build of Fig. 2.
  bool label_mode = false;
  // Rewrite app instructions that *write* r5 to target a scratch
  // register instead (paper §V); the application value does not
  // survive, and r5 stays valid at every instruction boundary so an
  // interrupt can never observe a clobbered shadow index.
  bool spill_reserved = true;
  // Mirrors RomConfig::memory_backed_index (set by the pipeline): when
  // the shadow index lives in r5, app writes to r5 must be spilled.
  bool index_in_register = true;
};

}  // namespace eilid::core

#endif  // EILID_EILID_CONFIG_H
