// Fleet-native secure update campaigns: CASU's authenticated update
// modeled as a *build transition*. A device moves from its current
// cached core::BuildResult to a target one via a MAC'd,
// version-monotonic casu::UpdatePackage derived by diffing the two
// builds' PMEM images. On success the session atomically swaps to the
// target build (shared predecoded table, symbols) and the fleet's
// VerifierService is told to swap that device's replay CFG at the
// epoch marker the device just logged -- so pre-update evidence
// replays against the old CFG, post-update evidence against the new,
// and a legitimate update is never convicted as a hijack.
//
//   eilid::Fleet fleet;
//   ... provision devices from build A ...
//   auto campaign = fleet.stage_update(v2_source, "fw", {.eilid = false});
//   for (const auto& outcome : campaign.roll_out(pool)) {
//     if (!outcome.ok()) { /* device kept its old firmware */ }
//   }
//
// Mixed-version fleets are first-class: the campaign diffs each
// device's *own* current build against the target (per-from-build diff
// cache), stamps each package with that device's next version, and
// MACs it with that device's key -- one campaign heals a fleet
// scattered across several firmware generations.
//
// Campaigns are *symmetric*: core::diff_builds(new, old) is as valid a
// transition as diff_builds(old, new), so staging a campaign whose
// target is a build devices previously ran yields a genuine rollback
// -- authenticated, version-monotonic (the reverse package carries the
// device's *next* anti-rollback version; returning to old bytes is not
// a version rollback), with a fresh epoch marker and a replay-CFG swap
// back to the old CFG. CampaignScheduler's rollback_on_halt and
// HealthMonitor remediation are both built on exactly this: no special
// downgrade path exists, or needs to.
#ifndef EILID_EILID_UPDATE_H
#define EILID_EILID_UPDATE_H

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "casu/update.h"
#include "common/thread_pool.h"
#include "eilid/session.h"
#include "eilid/transport.h"

namespace eilid {

class Fleet;

enum class UpdateResult : uint8_t {
  kApplied,         // package verified, PMEM rewritten, build swapped
  kAlreadyCurrent,  // session already runs the target build (no-op)
  kBadMac,          // authentication failed; device latched a violation
  kRollback,        // version not monotonic; device latched a violation
  kBadRegion,       // a region fell outside PMEM
  kIncompatible,    // transition not expressible as a CASU update
                    // (ROM/non-PMEM bytes differ, or policy forbids
                    // the target build)
  kImageMismatch,   // the device's PMEM no longer matches its recorded
                    // build (out-of-band patch, self-modification): a
                    // build-to-build diff would leave memory matching
                    // neither image, so the transition is refused and
                    // nothing is applied
  kInterrupted,     // lossy-transport path only: the delivery's retry
                    // budget ran out (or the device was unreachable)
                    // with the transfer incomplete. The device still
                    // runs its old build, attestable; staged progress
                    // survives on the device, so re-applying the same
                    // campaign resumes instead of restarting
};

std::string_view update_result_name(UpdateResult result);

// Per-device result of one campaign step.
struct UpdateOutcome {
  std::string device_id;
  UpdateResult result = UpdateResult::kIncompatible;
  uint32_t version_before = 0;
  uint32_t version_after = 0;   // == version_before unless applied
  size_t regions = 0;           // diff regions in the package sent
  size_t payload_bytes = 0;     // bytes shipped to the device
  bool build_swapped = false;   // session now runs the target build
  bool cfg_staged = false;      // verifier will swap this device's
                                // replay CFG at the update marker
  // Lossy-transport telemetry (see eilid/transport.h). The atomic
  // in-memory path reports one attempt, nothing resumed, nothing
  // retransmitted.
  uint32_t attempts = 1;          // delivery attempts, power-loss
                                  // recoveries within the call included
  bool resumed = false;           // continued a previously staged
                                  // transfer rather than starting fresh
  size_t bytes_retransmitted = 0; // payload bytes sent beyond each
                                  // chunk's first transmission

  bool ok() const {
    return result == UpdateResult::kApplied ||
           result == UpdateResult::kAlreadyCurrent;
  }

  // Field-wise equality: the determinism gates (pooled rollout ==
  // serial rollout) compare whole outcomes, so a new field is covered
  // automatically.
  bool operator==(const UpdateOutcome&) const = default;
};

struct CampaignOptions {
  // Reboot each device after a successful swap -- the real CASU update
  // routine ends in a reset into the new firmware. The reset marker
  // lands in the CFA log *after* the epoch marker, so replay swaps
  // CFGs first, then restarts clean at the new reset vector.
  bool power_cycle = true;
  // Adversary-in-the-transport hook (scenario tests, chaos drills):
  // invoked with each freshly authority-MAC'd package before the
  // device verifies it; whatever it leaves behind is what the device
  // receives. A tampered package fails device-side authentication
  // (kBadMac) and the device heals by reset -- exactly the forged
  // canary the rollout scenario matrix drives through wave gates.
  // Must be deterministic for the pooled == serial outcome contract,
  // and thread-safe: a pooled rollout invokes it concurrently from
  // worker threads (decide from the device and package arguments
  // alone rather than mutating captured state).
  std::function<void(const DeviceSession&, casu::UpdatePackage&)> tamper;
  // When set, packages ship over the deterministic lossy transport
  // (chunked, per-chunk acks, bounded retry, resume, power-loss-safe
  // two-phase apply) instead of the atomic in-memory handoff; see
  // eilid/transport.h. The tamper hook above still runs first -- a
  // package tampered before chunking fails the MAC after reassembly,
  // so the two adversary hooks compose. Fault streams are keyed
  // (seed, device_id), preserving the pooled == serial contract.
  std::optional<TransportOptions> transport;
};

// One staged rollout of a target build across fleet sessions. Created
// by Fleet::stage_update(); cheap to copy (copies share the diff
// cache). Thread-safe: apply_to() takes the per-device session mutex,
// so a pooled roll_out() and a concurrent attestation sweep interleave
// per device without racing, and the pooled rollout's outcomes are
// identical to the serial one's, in input order.
class UpdateCampaign {
 public:
  const std::shared_ptr<const core::BuildResult>& target_build() const {
    return target_;
  }
  const CampaignOptions& options() const { return options_; }

  // The exact package this campaign would send `session` right now:
  // that device's diff, next version, and key. Exposed so transports
  // and tests can capture, corrupt, or replay real packages. Throws
  // eilid::FleetError when the transition is incompatible.
  casu::UpdatePackage package_for(DeviceSession& session);

  // Update one device through the full lifecycle under its session
  // mutex: diff -> package -> apply -> build swap -> CFG epoch staging
  // -> (optional) reboot. Never throws on a rejected package -- the
  // rejection is the outcome.
  UpdateOutcome apply_to(DeviceSession& session);

  // Roll the campaign out across the whole fleet (deployment order) or
  // a chosen subset -- serially, or fanned out over a pool with
  // per-device locking.
  std::vector<UpdateOutcome> roll_out();
  std::vector<UpdateOutcome> roll_out(common::ThreadPool& pool);
  std::vector<UpdateOutcome> roll_out(
      const std::vector<DeviceSession*>& sessions);
  std::vector<UpdateOutcome> roll_out(
      const std::vector<DeviceSession*>& sessions, common::ThreadPool& pool);

 private:
  friend class Fleet;
  UpdateCampaign(Fleet& fleet, std::shared_ptr<const core::BuildResult> target,
                 CampaignOptions options);

  // Everything the campaign derives from one distinct from-build: the
  // diff to the target, and the flat image the device's PMEM must
  // still equal for that diff to be applicable.
  struct FromState {
    std::shared_ptr<const core::BuildResult> from;  // pins the build
    std::shared_ptr<const core::ImageDiff> diff;
    std::shared_ptr<const std::vector<uint8_t>> from_flat;
  };

  // Body of apply_to(); caller holds session.mutex().
  UpdateOutcome apply_locked(DeviceSession& session);
  // Diff (and expected from-image) for `from` -> target, computed once
  // per distinct from-build and shared across the rollout (a fleet
  // mid-migration has a handful of builds, not a diff per device). The
  // cache pins each from-build for the campaign's lifetime, so the
  // pointer key can never alias a recycled address.
  FromState diff_from(const std::shared_ptr<const core::BuildResult>& from);
  casu::UpdatePackage package_locked(DeviceSession& session,
                                     const core::ImageDiff& diff) const;

  Fleet* fleet_;
  std::shared_ptr<const core::BuildResult> target_;
  CampaignOptions options_;

  struct DiffCache {
    std::mutex mu;
    std::map<const core::BuildResult*, FromState> diffs;
  };
  std::shared_ptr<DiffCache> diffs_;
};

}  // namespace eilid

#endif  // EILID_EILID_UPDATE_H
