// Superblock execution engine: block-granular dispatch must be
// architecturally invisible. Every case here runs the same program
// under all three ExecutionEngines and demands bit-identical final
// machine state (registers, cycles, retired instructions, reset log
// and any RAM the program wrote) -- plus proof the superblock run
// actually dispatched blocks, so the equality is not vacuous. The
// cases target the block engine's hard edges: a store into the
// currently executing block, an interrupt landing mid-block, the
// decode boundary at the top of memory, an indirect branch into the
// middle of another entry's run, and fleet-wide sharing of one
// immutable BlockImage per build.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "cfa/attestation.h"
#include "eilid/fleet.h"
#include "eilid/pipeline.h"
#include "isa/block_image.h"
#include "isa/decoded_image.h"
#include "isa/encoder.h"
#include "sim/memory_map.h"

namespace eilid {
namespace {

constexpr ExecutionEngine kEngines[] = {ExecutionEngine::kInterpretive,
                                        ExecutionEngine::kPredecoded,
                                        ExecutionEngine::kSuperblock};

// Everything a program run can observably produce. RAM words to compare
// are listed explicitly per case (ram_from, ram_words).
struct FinalState {
  std::array<uint16_t, 16> regs{};
  uint64_t cycles = 0;
  uint64_t retired = 0;
  std::vector<std::tuple<uint64_t, uint16_t, uint8_t>> resets;
  std::vector<uint16_t> ram;

  bool operator==(const FinalState&) const = default;
};

FinalState capture(sim::Machine& m, uint16_t ram_from = 0,
                   size_t ram_words = 0) {
  FinalState out;
  for (int i = 0; i < 16; ++i) out.regs[static_cast<size_t>(i)] = m.cpu().reg(i);
  out.cycles = m.cycles();
  out.retired = m.cpu().instructions_retired();
  for (const sim::ResetEvent& e : m.resets()) {
    out.resets.emplace_back(e.cycle, e.pc, static_cast<uint8_t>(e.reason));
  }
  for (size_t i = 0; i < ram_words; ++i) {
    out.ram.push_back(m.bus().raw_word(static_cast<uint16_t>(ram_from + 2 * i)));
  }
  return out;
}

std::shared_ptr<const core::BuildResult> build_of(const char* source) {
  return std::make_shared<const core::BuildResult>(
      core::build_app(source, "superblock-case", {.eilid = false}));
}

// The CFA half of every differential: run the program under
// kCfaBaseline (CASU + logging monitor -- wants_step() false, so block
// dispatch stays engaged and on_control_transfer carries the log) on
// each engine and demand the attestation evidence is bit-identical:
// same edges in the same order, same drop count, same MAC. A block
// engine that reported transfers at wrong boundaries, merged edges or
// skipped the denied store would forge different evidence.
void expect_cfa_identical(std::shared_ptr<const core::BuildResult> build,
                          const char* tag, uint64_t budget) {
  std::vector<cfa::Report> reports;
  std::vector<FinalState> states;
  for (ExecutionEngine engine : kEngines) {
    DeviceSession dev(std::string(tag) + "-cfa-" +
                          std::string(execution_engine_name(engine)),
                      build, EnforcementPolicy::kCfaBaseline,
                      {.engine = engine});
    dev.machine().set_halt_on_reset(true);
    dev.machine().run(budget);
    states.push_back(capture(dev.machine()));
    reports.push_back(
        dev.cfa_monitor()->take_report(0xA5A5, dev.machine().cycles()));
  }
  EXPECT_EQ(states[1], states[0]) << tag;
  EXPECT_EQ(states[2], states[0]) << tag;
  EXPECT_FALSE(reports[0].edges.empty()) << tag;
  for (size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].edges, reports[0].edges) << tag;
    EXPECT_EQ(reports[i].dropped, reports[0].dropped) << tag;
    EXPECT_EQ(reports[i].cycle, reports[0].cycle) << tag;
    EXPECT_EQ(reports[i].mac, reports[0].mac) << tag;
  }
}

// ------------------------------------------------- self-modifying store

// The second instruction of main's straight-line run overwrites the
// fourth (`victim`) with the donor word (`incd r13`), while the block
// containing both is executing. The generation check must end the
// block at the patching store so the victim re-decodes from memory:
// r12 stays 0 and r13 becomes 2. A block engine that kept running its
// stale table would execute the original `inc r12`.
const char* kStoreIntoOwnBlock = R"(.equ DSTA, 0xE00A
.equ SRCA, 0xE010
.org 0xE000
main:
    mov #0x1000, r1
    mov &SRCA, &DSTA
victim:
    inc r12
halt:
    jmp halt
.org 0xE010
donor:
    incd r13
.vector 15, main
)";

TEST(Superblock, SelfModifyingStoreIntoExecutingBlock) {
  auto build = build_of(kStoreIntoOwnBlock);
  ASSERT_NE(build->block_image, nullptr);
  // The victim sits mid-run: the suffix at main spans the store, the
  // victim and the jmp terminator.
  const auto* entry = build->block_image->lookup(0xE000);
  ASSERT_NE(entry, nullptr);
  EXPECT_GE(entry->span, 4u);

  std::vector<FinalState> states;
  for (ExecutionEngine engine : kEngines) {
    DeviceSession dev("selfmod-" + std::string(execution_engine_name(engine)),
                      build, EnforcementPolicy::kNone, {.engine = engine});
    auto result = dev.run_to_symbol("halt", 10000);
    EXPECT_EQ(result.cause, sim::StopCause::kBreakpoint);
    EXPECT_EQ(dev.machine().cpu().reg(12), 0) << execution_engine_name(engine);
    EXPECT_EQ(dev.machine().cpu().reg(13), 2) << execution_engine_name(engine);
    if (engine == ExecutionEngine::kSuperblock) {
      EXPECT_GT(dev.machine().blocks_executed(), 0u);
      // The patched build table is stale for good: the device fell back
      // to interpretive decode at the patch and stays there.
      EXPECT_FALSE(dev.machine().cpu().decode_cache_valid());
    } else {
      EXPECT_EQ(dev.machine().blocks_executed(), 0u);
    }
    states.push_back(capture(dev.machine()));
  }
  EXPECT_EQ(states[1], states[0]);
  EXPECT_EQ(states[2], states[0]);

  // Under CASU the store into program memory is *denied* and the device
  // resets -- at the identical instruction, with identical evidence, on
  // every engine.
  expect_cfa_identical(build, "selfmod", 5000);
}

// ----------------------------------------------------------- IRQ timing

// The timer fires every 37 cycles while an 8-instruction straight-line
// block spins; almost every delivery lands mid-block. The ISR appends
// the *live value of r12* to a RAM log, so the exact instruction
// boundary of every delivery is frozen into memory: any engine that
// defers or advances an interrupt by even one instruction produces a
// different log.
const char* kIrqMidBlock = R"(.equ TIMER_CTL, 0x0100
.equ TIMER_CCR0, 0x0102
.equ TIMER_FLAGS, 0x0106
.org 0xE000
main:
    mov #0x1000, r1
    mov #0x0300, r15
    mov #37, &TIMER_CCR0
    mov #3, &TIMER_CTL
    eint
loop:
    inc r12
    inc r12
    inc r12
    inc r12
    inc r12
    inc r12
    inc r12
    inc r12
    cmp #40, r14
    jnz loop
    dint
halt:
    jmp halt
timer_isr:
    mov r12, 0(r15)
    incd r15
    inc r14
    clr &TIMER_FLAGS
    reti
.vector 15, main
.vector 8, timer_isr
)";

TEST(Superblock, IrqDeliversAtTheExactMidBlockBoundary) {
  auto build = build_of(kIrqMidBlock);
  std::vector<FinalState> states;
  for (ExecutionEngine engine : kEngines) {
    DeviceSession dev("irq-" + std::string(execution_engine_name(engine)),
                      build, EnforcementPolicy::kNone, {.engine = engine});
    auto result = dev.run_to_symbol("halt", 200000);
    EXPECT_EQ(result.cause, sim::StopCause::kBreakpoint);
    EXPECT_EQ(dev.machine().cpu().reg(14), 40) << execution_engine_name(engine);
    if (engine == ExecutionEngine::kSuperblock) {
      EXPECT_GT(dev.machine().blocks_executed(), 0u);
    }
    // 40 logged r12 snapshots, one per delivery.
    states.push_back(capture(dev.machine(), 0x0300, 40));
  }
  // The log must not be trivially constant (deliveries really landed at
  // different spin counts).
  EXPECT_NE(states[0].ram.front(), states[0].ram.back());
  EXPECT_EQ(states[1], states[0]);
  EXPECT_EQ(states[2], states[0]);

  // Interrupt entries and retis are logged edges: the CFA evidence
  // pins every delivery boundary.
  expect_cfa_identical(build, "irq", 150000);
}

// ------------------------------------------------- top-of-memory bound

TEST(Superblock, BlockEndsAtRangeBoundary) {
  // Unit-level: a range whose last slot holds a plain (non-transfer)
  // instruction. The backward pass must stop the run there with
  // kRangeEnd -- the fall-through leaves the table.
  isa::Instruction inc = isa::Instruction::double_op(
      isa::Opcode::kAdd, isa::Operand::make_imm(1),
      isa::Operand::make_reg(12));
  std::vector<uint8_t> memory(0x10000, 0);
  for (uint32_t pc = 0xFF00; pc <= 0xFF0A; pc += 2) {
    auto words = isa::encode(inc, static_cast<uint16_t>(pc));
    ASSERT_EQ(words.size(), 1u);
    memory[pc] = static_cast<uint8_t>(words[0]);
    memory[pc + 1] = static_cast<uint8_t>(words[0] >> 8);
  }
  const isa::DecodedImage::Range range[] = {{0xFF00, 0xFF0A}};
  isa::DecodedImage decoded(memory, range);
  isa::BlockImage blocks(decoded);
  const auto* first = blocks.lookup(0xFF00);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->span, 6u);
  EXPECT_EQ(first->end, isa::BlockEnd::kRangeEnd);
  const auto* last = blocks.lookup(0xFF0A);
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->span, 1u);
  EXPECT_EQ(last->end, isa::BlockEnd::kRangeEnd);
}

// Machine-level: straight-line code high in PMEM runs off its own
// decoded tail into words that do not decode (the unused vector area).
// Every engine must fault at the same pc on the same cycle and reset
// identically.
const char* kRunsOffTheTop = R"(.org 0xE000
main:
    mov #0x1000, r1
    br #top
halt:
    jmp halt
.org 0xFFC0
top:
    inc r12
    inc r12
    inc r12
    inc r12
.vector 15, main
)";

TEST(Superblock, RunOffDecodedTailFaultsIdentically) {
  auto build = build_of(kRunsOffTheTop);
  std::vector<FinalState> states;
  for (ExecutionEngine engine : kEngines) {
    DeviceSession dev("top-" + std::string(execution_engine_name(engine)),
                      build, EnforcementPolicy::kNone, {.engine = engine});
    dev.machine().set_halt_on_reset(true);
    auto result = dev.machine().run(10000);
    EXPECT_EQ(result.cause, sim::StopCause::kDeviceReset)
        << execution_engine_name(engine);
    if (engine == ExecutionEngine::kSuperblock) {
      EXPECT_GT(dev.machine().blocks_executed(), 0u);
    }
    // Power-on plus exactly one illegal-instruction trap at 0xFFC8 (the
    // first undecodable word after the inc run).
    ASSERT_EQ(dev.machine().resets().size(), 2u);
    EXPECT_EQ(dev.machine().resets()[1].pc, 0xFFC8);
    EXPECT_EQ(dev.machine().resets()[1].reason,
              sim::ResetReason::kIllegalInstruction);
    states.push_back(capture(dev.machine()));
  }
  EXPECT_EQ(states[1], states[0]);
  EXPECT_EQ(states[2], states[0]);

  expect_cfa_identical(build, "top", 10000);
}

// ------------------------------------------- indirect branch mid-block

// `br r10` lands in the middle of the straight-line run that starts at
// `blockstart`. The suffix table needs no splitting: the landing pc is
// itself a block entry whose run is exactly the tail.
const char* kIndirectToMidBlock = R"(.org 0xE000
main:
    mov #0x1000, r1
    mov #midblock, r10
    clr r12
    br r10
blockstart:
    inc r12
midblock:
    inc r12
    inc r12
halt:
    jmp halt
.vector 15, main
)";

TEST(Superblock, IndirectBranchToMidBlockPcDispatchesTheSuffix) {
  auto build = build_of(kIndirectToMidBlock);
  ASSERT_NE(build->block_image, nullptr);
  // blockstart = 0xE00C, midblock = 0xE00E (mov #imm,r1 and mov #imm,r10
  // are two words each; clr and br are one). The suffix at the landing
  // pc is strictly shorter than the leader's run that contains it.
  const auto* leader = build->block_image->lookup(0xE00C);
  const auto* suffix = build->block_image->lookup(0xE00E);
  ASSERT_NE(leader, nullptr);
  ASSERT_NE(suffix, nullptr);
  EXPECT_EQ(leader->span, 4u);  // inc, inc, inc, jmp
  EXPECT_EQ(suffix->span, 3u);  // inc, inc, jmp
  EXPECT_EQ(suffix->end, isa::BlockEnd::kTransfer);

  std::vector<FinalState> states;
  for (ExecutionEngine engine : kEngines) {
    DeviceSession dev("mid-" + std::string(execution_engine_name(engine)),
                      build, EnforcementPolicy::kNone, {.engine = engine});
    auto result = dev.run_to_symbol("halt", 10000);
    EXPECT_EQ(result.cause, sim::StopCause::kBreakpoint);
    // The first inc (blockstart) was skipped: only the suffix ran.
    EXPECT_EQ(dev.machine().cpu().reg(12), 2) << execution_engine_name(engine);
    if (engine == ExecutionEngine::kSuperblock) {
      EXPECT_GT(dev.machine().blocks_executed(), 0u);
    }
    states.push_back(capture(dev.machine()));
  }
  EXPECT_EQ(states[1], states[0]);
  EXPECT_EQ(states[2], states[0]);

  // The indirect edge (br r10 -> midblock) must appear in the evidence
  // with the same from/to under block dispatch as interpretively.
  expect_cfa_identical(build, "mid", 10000);
}

// ------------------------------------------------- fleet-wide sharing

TEST(Superblock, FleetSharesOneBlockImagePerBuild) {
  Fleet fleet;
  auto build = fleet.build(kIndirectToMidBlock, "shared", {.eilid = false});
  ASSERT_NE(build->block_image, nullptr);

  std::vector<DeviceSession*> devices;
  for (int i = 0; i < 4; ++i) {
    // Default SessionOptions: the superblock engine.
    devices.push_back(
        &fleet.deploy("share-" + std::to_string(i), build,
                      EnforcementPolicy::kNone, {}));
  }
  for (DeviceSession* dev : devices) {
    // One immutable table per build -- every session points at it.
    EXPECT_EQ(dev->machine().cpu().block_image(), build->block_image.get());
    EXPECT_EQ(dev->build().block_image.get(), build->block_image.get());
  }
  // Interpretive reference plus every shared-table device agree on the
  // complete final state, and each shared device genuinely dispatched
  // blocks from the shared table.
  DeviceSession& reference =
      fleet.deploy("share-ref", build, EnforcementPolicy::kNone,
                   {.engine = ExecutionEngine::kInterpretive});
  reference.run_to_symbol("halt", 10000);
  const FinalState expected = capture(reference.machine());
  for (DeviceSession* dev : devices) {
    dev->run_to_symbol("halt", 10000);
    EXPECT_GT(dev->machine().blocks_executed(), 0u) << dev->id();
    EXPECT_EQ(capture(dev->machine()), expected) << dev->id();
  }
}

}  // namespace
}  // namespace eilid
