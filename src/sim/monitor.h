// Hardware-monitor interface: bus snooping (inherited from BusWatcher)
// plus PC-transition and interrupt visibility. CASU and EILID hardware
// are implemented against this interface; so is the test tracer.
//
// Two granularities of PC visibility exist since the superblock core:
//
//   - on_control_transfer: fired for every *non-sequential* transfer
//     (to_pc != fallthrough), at instruction granularity, under every
//     execution engine. This is the notification integrity evidence is
//     built from (CfaMonitor consumes nothing else -- LO-FAT-style
//     monitors only ever observe transfers), and the block core emits
//     it bit-identically: a straight-line run's interior instructions
//     are all sequential by construction, so only its terminator can
//     transfer.
//   - on_step: fired after *every* retired instruction, but only for
//     monitors that declare wants_step(). Any such monitor (the test
//     tracers) forces the machine onto the per-instruction path --
//     full-rate visibility and superblock dispatch are mutually
//     exclusive by design, which is exactly why enforcement monitors
//     must not claim it (CasuMonitor and CfaMonitor return false; all
//     their enforcement lives in bus hooks and transfer events).
#ifndef EILID_SIM_MONITOR_H
#define EILID_SIM_MONITOR_H

#include <optional>

#include "sim/bus.h"
#include "sim/reset.h"

namespace eilid::sim {

class Monitor : public BusWatcher {
 public:
  // A violation latched by this monitor; the machine resets the device
  // and records the reason.
  virtual std::optional<ResetReason> pending_violation() const {
    return std::nullopt;
  }
  virtual void clear_violation() {}

  // Notification that the device reset (monitors re-arm their state).
  virtual void on_device_reset() {}

  // Interrupt gating: EILID masks interrupts while the PC is inside the
  // secure ROM (atomicity of S_EILID functions).
  virtual bool allow_interrupt(uint16_t current_pc) {
    (void)current_pc;
    return true;
  }

  // Fired when the CPU vectors to an ISR.
  virtual void on_interrupt(int vector_index, uint16_t from_pc, uint16_t to_pc) {
    (void)vector_index;
    (void)from_pc;
    (void)to_pc;
  }

  // Whether this monitor needs on_step after every retired instruction.
  // True (the compatible default) pins the machine to per-instruction
  // execution; monitors that only consume transfers must return false
  // or they silently veto superblock dispatch for the whole device.
  virtual bool wants_step() const { return true; }

  // Fired after each retired instruction with the PC transition --
  // only for monitors whose wants_step() is true. `fallthrough` is the
  // already-decoded fall-through address of the instruction at from_pc
  // (== from_pc when nothing decoded): a step with to_pc != fallthrough
  // is a control transfer, so monitors spot transfers by comparing two
  // integers instead of re-decoding the instruction stream.
  virtual void on_step(uint16_t from_pc, uint16_t to_pc, uint16_t fallthrough) {
    (void)from_pc;
    (void)to_pc;
    (void)fallthrough;
  }

  // Fired for every non-sequential transfer (to_pc != fallthrough),
  // under every engine, for every monitor. Same arguments as on_step;
  // sequential steps are never reported here.
  virtual void on_control_transfer(uint16_t from_pc, uint16_t to_pc,
                                   uint16_t fallthrough) {
    (void)from_pc;
    (void)to_pc;
    (void)fallthrough;
  }
};

}  // namespace eilid::sim

#endif  // EILID_SIM_MONITOR_H
