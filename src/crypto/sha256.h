// SHA-256 (FIPS 180-4). Implemented from scratch: CASU's authenticated
// software update and the CFA baselines both need a MAC, and low-end RoT
// papers (VRASED/CASU lineage) standardise on HMAC-SHA256.
#ifndef EILID_CRYPTO_SHA256_H
#define EILID_CRYPTO_SHA256_H

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace eilid::crypto {

using Digest = std::array<uint8_t, 32>;

// Incremental SHA-256. Typical use:
//   Sha256 h; h.update(a); h.update(b); Digest d = h.finish();
// finish() resets the object so it can be reused.
class Sha256 {
 public:
  static constexpr size_t kBlockSize = 64;

  Sha256();

  void reset();
  void update(std::span<const uint8_t> data);
  void update(std::string_view text);
  Digest finish();

 private:
  void compress(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, kBlockSize> buffer_;
  size_t buffer_len_ = 0;
  uint64_t total_bits_ = 0;
};

// One-shot helpers.
Digest sha256(std::span<const uint8_t> data);
Digest sha256(std::string_view text);

// Lowercase hex rendering of a digest.
std::string digest_hex(const Digest& d);

}  // namespace eilid::crypto

#endif  // EILID_CRYPTO_SHA256_H
