#include "hwcost/monitor_model.h"

namespace eilid::hwcost {

BillOfMaterials casu_monitor_bom() {
  BillOfMaterials bom;
  bom.design = "CASU monitor";
  bom.items = {
      // W^X: the PC must stay inside PMEM or ROM.
      {"pc-in-pmem magnitude compare", magnitude_comparator(16)},
      {"pc-in-rom range check", range_check(16)},
      // PMEM immutability: write-address decode + session gate.
      {"write-addr-in-pmem compare", magnitude_comparator(16)},
      {"write-addr-in-rom range check", range_check(16)},
      {"update-session latch", reg(1)},
      {"update-ctrl address decode", eq_comparator(16)},
      // ROM entry/exit gate: previous-PC register + section compares.
      {"previous-pc register", reg(16)},
      {"entry-section range check", range_check(16)},
      {"leave-section range check", range_check(16)},
      // Key-region read gating.
      {"key-region range check", range_check(16)},
      // Violation handling and reset generation.
      {"violation-reg address decode", eq_comparator(16)},
      {"enforcement FSM (run/violation/reset)", fsm(3, 6)},
      {"irq gating + reset glue", glue(4)},
  };
  return bom;
}

BillOfMaterials eilid_extension_bom() {
  BillOfMaterials bom;
  bom.design = "EILID secure-memory extension";
  bom.items = {
      // Shadow-stack region access check on both read and write paths
      // (data address bus snoop, gated on PC-in-ROM).
      {"data-addr-in-secure-DMEM range check", range_check(16)},
      {"pc-in-rom qualifier reuse glue", glue(2)},
      // Violation reason code captured from the ROM's store.
      {"violation-code capture register", reg(4)},
      {"reason mux + reset glue", glue(3)},
  };
  return bom;
}

BillOfMaterials eilid_full_bom() {
  BillOfMaterials bom;
  bom.design = "EILID hardware (CASU + secure-memory extension)";
  for (const auto& item : casu_monitor_bom().items) bom.items.push_back(item);
  for (const auto& item : eilid_extension_bom().items) bom.items.push_back(item);
  return bom;
}

}  // namespace eilid::hwcost
