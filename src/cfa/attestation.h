// Control-flow attestation baseline (hardware-logged, LO-FAT/ACFA
// style): a bus monitor records every non-sequential control transfer;
// on a verifier challenge the device emits an HMAC'd log slice. This
// is the comparison point for the paper's core argument (§II-C): CFA
// *detects* hijacks only at the next attestation, while EILID
// *prevents* them in real time.
#ifndef EILID_CFA_ATTESTATION_H
#define EILID_CFA_ATTESTATION_H

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "cfa/cfg.h"
#include "crypto/hmac.h"
#include "sim/bus.h"
#include "sim/monitor.h"

namespace eilid::cfa {

struct LoggedEdge {
  uint16_t from = 0;
  uint16_t to = 0;
  bool irq = false;     // asynchronous interrupt entry
  bool reset = false;   // device reset marker (execution restarts)
  bool update = false;  // authenticated update applied (code epoch
                        // boundary: the CFG changes here)

  // Serialized size of one edge record inside a MAC'd report: from,
  // to, and one flags byte (irq | reset | update). The single source
  // of truth for the wire format -- mac_report() and total_log_bytes()
  // both derive from it.
  static constexpr size_t kWireBytes = 5;

  bool operator==(const LoggedEdge&) const = default;
};

struct Report {
  uint32_t seq = 0;
  uint64_t cycle = 0;            // device cycle at emission
  uint32_t dropped = 0;          // edges lost to log overflow
  std::vector<LoggedEdge> edges;
  crypto::Digest mac{};
};

struct CfaConfig {
  size_t log_capacity = 256;  // edges held on-device between reports
};

// The on-device half: logging monitor + report generation. Needs no
// bus reference: control transfers are detected from the fall-through
// address the machine already decoded (see on_step).
class CfaMonitor : public sim::Monitor {
 public:
  explicit CfaMonitor(crypto::Digest key, CfaConfig config = {})
      : key_(key), config_(config) {}

  // sim::Monitor. Note: the log *survives* device resets (ACFA keeps
  // the log slice in attested memory so that evidence of the pre-reset
  // path is preserved); a reset marker edge is appended instead.
  // Block-granular: the monitor consumes only the control-transfer
  // notification (sequential steps carry no evidence), so it never
  // claims wants_step() and CFA-policed devices run full superblock
  // dispatch -- the machine fires on_control_transfer exactly when
  // to_pc != fallthrough under every engine, so the logged edge stream
  // and the MACs over it are bit-identical across engines.
  bool wants_step() const override { return false; }
  void on_control_transfer(uint16_t from_pc, uint16_t to_pc,
                           uint16_t fallthrough) override;
  void on_interrupt(int vector_index, uint16_t from_pc, uint16_t to_pc) override;
  void on_device_reset() override;

  // Called by the device's update path right after an authenticated
  // update lands: the code epoch changes at exactly this point in the
  // evidence stream, so the verifier knows where to swap replay CFGs.
  // The marker is an ordinary logged edge, MAC'd with the rest of the
  // evidence -- a device cannot splice an epoch boundary in or out
  // without failing authentication.
  void on_update_applied();

  // Verifier challenge: drain the log (oldest first) into a MAC'd
  // report. `max_edges` bounds the slice -- 0 drains everything (the
  // barrier sweep); a bounded drain leaves the remainder for the next
  // slice, in order, so a sequence of bounded reports carries exactly
  // the evidence one unbounded report would (ACFA-style slices sized
  // to verifier memory; see eilid::IncrementalVerifier). Pending
  // overflow drops are reported on the first slice that drains them.
  Report take_report(uint64_t nonce, uint64_t device_cycle,
                     size_t max_edges = 0);

  size_t log_size() const { return count_; }
  uint64_t total_edges() const { return total_edges_; }
  // Resident bytes of the log's storage arena (active + recycled
  // chunks). The arena grows in chunk steps up to the configured
  // capacity's worth of edges and is recycled -- never freed and
  // re-grown -- across reports, so long soaks stop allocating once the
  // high-water mark is reached. This is the CFA share of a device's
  // resident_memory_bytes().
  uint64_t total_log_bytes() const {
    return (chunks_.size() + free_chunks_.size()) * kChunkEdges *
           sizeof(LoggedEdge);
  }

  // MAC over the challenge nonce, every header field the verifier
  // consumes (seq, cycle, dropped) and the edge records. `report.mac`
  // itself is not an input. Covering cycle/dropped matters: an
  // attacker who can rewrite either in transit could backdate
  // evidence or hide log overflow without touching the edge stream.
  static crypto::Digest mac_report(const crypto::Digest& key, uint64_t nonce,
                                   const Report& report);

 private:
  // Chunked FIFO arena replacing the old per-device edge vector: edges
  // append into fixed 256-edge chunks, bounded drains consume from the
  // front, and spent chunks recycle through a free list. No per-edge
  // reallocation/copy as the log grows, and take_report no longer
  // surrenders the backing storage (the old move-out re-grew the
  // vector from scratch every attestation period).
  static constexpr size_t kChunkEdges = 256;

  void log_edge(LoggedEdge edge);
  LoggedEdge* grow_chunk();

  crypto::Digest key_;
  CfaConfig config_;
  std::vector<std::unique_ptr<LoggedEdge[]>> chunks_;  // live FIFO, in order
  std::vector<std::unique_ptr<LoggedEdge[]>> free_chunks_;
  size_t head_ = 0;   // index of the oldest live edge within chunks_[0]
  size_t count_ = 0;  // live edges across chunks_
  uint32_t dropped_ = 0;
  uint32_t seq_ = 0;
  uint64_t total_edges_ = 0;
};

// The verifier half: MAC check + stateful path replay against the CFG.
class CfaVerifier {
 public:
  struct Result {
    bool mac_ok = false;
    bool path_ok = false;
    std::optional<LoggedEdge> first_bad;
  };

  CfaVerifier(Cfg cfg, crypto::Digest key)
      : CfaVerifier(std::make_shared<const Cfg>(std::move(cfg)), key) {}
  // Fleet-scale form: N verifiers replaying against one shared
  // (immutable) CFG, extracted once per build instead of once per
  // device.
  CfaVerifier(std::shared_ptr<const Cfg> cfg, crypto::Digest key)
      : cfg_(std::move(cfg)), key_(key) {}

  // Verify the next report in sequence. Replay state (call stack,
  // interrupt frames) persists across reports.
  Result verify(const Report& report, uint64_t nonce);

  // Discard replay state (stacks and staged epoch swaps). The current
  // CFG is kept: it reflects what code the device runs now, which a
  // replay restart does not change.
  void reset_replay();

  // Stage a CFG swap that takes effect when replay reaches the next
  // update-marker edge in the evidence stream (FIFO when several are
  // staged): edges before the marker keep replaying against the
  // current CFG, edges after it against `cfg`. An update marker with
  // no staged CFG is an *unsanctioned* code change and fails the
  // path check.
  void queue_cfg_swap(std::shared_ptr<const Cfg> cfg);
  size_t pending_cfg_swaps() const { return pending_cfgs_.size(); }

 private:
  bool replay_edge(const LoggedEdge& edge);

  std::shared_ptr<const Cfg> cfg_;
  crypto::Digest key_;
  std::vector<uint16_t> call_stack_;  // expected return addresses
  std::vector<uint16_t> irq_stack_;   // expected resume addresses
  std::deque<std::shared_ptr<const Cfg>> pending_cfgs_;
};

}  // namespace eilid::cfa

#endif  // EILID_CFA_ATTESTATION_H
