// Small string utilities used by the assembler front end and the
// instrumenter. Kept header-light: plain functions over std::string.
#ifndef EILID_COMMON_STRINGS_H
#define EILID_COMMON_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace eilid {

// Strip leading/trailing whitespace.
std::string trim(std::string_view s);

// Split on a single delimiter character; does not merge empty fields.
std::vector<std::string> split(std::string_view s, char delim);

// Split a comma-separated operand list, honouring nothing fancy (MSP430
// operands never contain commas). Each piece is trimmed.
std::vector<std::string> split_operands(std::string_view s);

// ASCII lowercase copy.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// True if `s` is a valid assembler identifier: [A-Za-z_.$][A-Za-z0-9_.$]*
bool is_identifier(std::string_view s);

}  // namespace eilid

#endif  // EILID_COMMON_STRINGS_H
