// CASU authenticated software update.
//
// CASU's only path for modifying PMEM is an update authorised by a MAC
// computed with a device-unique key and bound to a monotonic version
// (anti-rollback). The API splits the protocol the way the protocol
// itself splits:
//
//   - UpdateAuthority is the sender (vendor/verifier) side: it holds a
//     device's update key and builds correctly MAC'd packages. It
//     never touches a machine.
//   - UpdateEngine is the receiver (device) side: it is bound at
//     construction to the one machine its monitor polices -- an engine
//     cannot be aimed at a foreign machine -- and owns that device's
//     anti-rollback version counter (per device, never shared across
//     a fleet).
//
// A package carries any number of disjoint PMEM regions, so a whole
// build-to-build image diff ships as one atomic, MAC'd unit. The
// verification logic (HMAC-SHA256, version check) is real; the bytes
// are applied to PMEM under an open monitor session, mirroring the ROM
// update routine's effect.
//
// Chunked transport (lossy-pipe OTA)
// ----------------------------------
// apply() is the atomic handoff: the whole package arrives in one
// piece. Real deliveries arrive over a pipe that drops, reorders,
// duplicates and corrupts, and the device may lose power at any byte.
// The chunked path models that without weakening any guarantee:
//
//   serialize_package() -> chunk_package() splits the MAC'd package
//   into fixed-size TransferChunks, each carrying the package MAC as
//   its transfer id (content-addressing: a chunk can never be confused
//   between two campaigns) and an FNV checksum -- transport integrity
//   against line noise, NOT security; an adversary forges checksums
//   trivially, and is caught by the package MAC at reassembly instead.
//
//   receive_chunk() reassembles into a staged slot modeled as
//   non-volatile (it survives power_cycle, like an inactive mcuboot
//   image slot): a reset at any chunk boundary keeps the progress, and
//   resume negotiation (staged_chunk_map()) lets the sender ship only
//   what is missing. A chunk for a different transfer id preempts the
//   staged transfer (interleaved campaigns: last sender wins; the
//   loser restarts from zero).
//
//   finalize_transfer() verifies the reassembled package exactly like
//   apply() (structure, regions, MAC, anti-rollback -- a tampered or
//   replayed chunk stream fails here and latches the same monitor
//   violations), then commits in two phases: the verified package
//   moves into a commit journal (non-volatile), and only then is
//   replayed into PMEM. Power loss mid-replay leaves the journal
//   pending; recover_after_reset() -- the bootloader half, run at
//   every boot before application code -- finishes the idempotent
//   replay, so the device is only ever *observed* running exactly the
//   old or exactly the new image, never a half-flashed one. The
//   version counter bumps with the journal retiring, so anti-rollback
//   state is consistent across a reset at any point.
#ifndef EILID_CASU_UPDATE_H
#define EILID_CASU_UPDATE_H

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "casu/monitor.h"
#include "crypto/hmac.h"
#include "sim/machine.h"

namespace eilid::casu {

struct UpdateRegion {
  uint16_t target_addr = 0;
  std::vector<uint8_t> payload;
};

struct UpdatePackage {
  uint32_t version = 0;
  std::vector<UpdateRegion> regions;
  crypto::Digest mac{};

  size_t payload_bytes() const;
};

enum class UpdateStatus : uint8_t {
  kApplied,
  kBadMac,
  kRollback,       // version <= device's current version
  kBadRegion,      // a region does not fit in PMEM
  kInterrupted,    // chunked path only: the transfer is incomplete, or
                   // a simulated power cut stopped the commit replay
                   // (journal pending -- recover_after_reset finishes
                   // it at next boot). Nothing observable was half
                   // done; the attempt is resumable.
};

std::string_view update_status_name(UpdateStatus status);

// MAC over version || (addr, len, bytes) per region, all fields
// fixed-width LE. Shared by the authority (signing) and the engine
// (verification).
crypto::Digest package_mac(const crypto::Digest& update_key,
                           const UpdatePackage& package);

// --- wire format ----------------------------------------------------
// version(4) | region_count(4) | per region: addr(2) len(4) bytes |
// mac(32); all integers LE. parse_package returns nullopt on any
// structural damage (truncation, trailing bytes, length overflow) --
// the caller treats that as failed authentication, since only
// tampering produces it.
std::vector<uint8_t> serialize_package(const UpdatePackage& package);
std::optional<UpdatePackage> parse_package(std::span<const uint8_t> bytes);

// One fragment of a serialized package in flight. `transfer_id` is the
// package MAC -- the transfer is addressed by content, so chunks of
// two concurrent campaigns can never be spliced together. `checksum`
// (chunk_checksum over every field) is the transport CRC: a corrupted
// chunk is NACKed and retransmitted instead of poisoning reassembly.
struct TransferChunk {
  crypto::Digest transfer_id{};
  uint32_t index = 0;        // chunk ordinal in [0, total)
  uint32_t total = 0;        // chunks in the whole transfer
  uint32_t offset = 0;       // byte offset of payload in the stream
  uint32_t total_bytes = 0;  // serialized package size
  std::vector<uint8_t> payload;
  uint64_t checksum = 0;
};

uint64_t chunk_checksum(const TransferChunk& chunk);

// Split a package into checksummed chunks of at most `chunk_size`
// payload bytes (the last chunk may be shorter; at least one chunk is
// always produced). chunk_size must be > 0 (ConfigError otherwise).
std::vector<TransferChunk> chunk_package(const UpdatePackage& package,
                                         size_t chunk_size);

// Receiver's per-chunk verdict -- what the ack/nack wire carries back.
enum class ChunkAck : uint8_t {
  kAccepted,   // staged; more chunks outstanding
  kComplete,   // staged; the transfer is now fully assembled
  kDuplicate,  // already staged (retransmit or duplicated in flight)
  kCorrupt,    // checksum mismatch: dropped, sender must retransmit
  kMalformed,  // inconsistent geometry (index/total/offset/size):
               // dropped without touching the staged transfer
};

std::string_view chunk_ack_name(ChunkAck ack);

// Sender side. `device_key` is the device's master key provisioned at
// manufacture (for a fleet, the per-device key derived from the fleet
// master); the update key is derived as HMAC(master, "casu-update").
class UpdateAuthority {
 public:
  explicit UpdateAuthority(std::span<const uint8_t> device_key);

  UpdatePackage make_package(uint32_t version,
                             std::vector<UpdateRegion> regions) const;
  // Single-region convenience (raw patch, not a build transition).
  UpdatePackage make_package(uint16_t target_addr, uint32_t version,
                             std::vector<uint8_t> payload) const;

 private:
  crypto::Digest update_key_;
};

// Receiver side: one engine per device, bound to that device's machine
// and monitor for its whole life.
class UpdateEngine {
 public:
  // `monitor` must be the monitor policing `machine` (null for an
  // unprotected device: updates still verify and apply, but there is
  // no hardware to latch auth failures on).
  UpdateEngine(std::span<const uint8_t> device_key, sim::Machine& machine,
               CasuMonitor* monitor);

  // Verify and apply against this engine's machine. On kBadMac or
  // kRollback the monitor latches a violation so the device resets
  // (CASU heals on abuse); region checks precede authentication so a
  // malformed package is never MAC'd.
  UpdateStatus apply(const UpdatePackage& package);

  uint32_t current_version() const { return version_; }

  // --- chunked transport receiver ----------------------------------
  // Accept one chunk into the staged slot (see the header comment).
  // The slot and the commit journal are modeled as non-volatile: both
  // survive the device resetting -- that is the whole point.
  ChunkAck receive_chunk(const TransferChunk& chunk);

  // Resume negotiation: which chunks of transfer `id` are already
  // staged. Empty when no transfer (or a different one) is staged --
  // the sender then starts from chunk 0.
  std::vector<bool> staged_chunk_map(const crypto::Digest& id) const;
  bool transfer_complete() const;

  // Verify the staged transfer and commit it. Phase 1 parses and
  // checks the reassembled package (structure -> regions -> MAC ->
  // version; structural damage counts as an authentication failure,
  // since only tampering produces it) and moves it into the commit
  // journal. Phase 2 replays the journal's regions into PMEM and
  // retires the journal together with the version bump.
  // `power_cut_after_regions` is the fault-injection hook: when set,
  // the simulated supply fails after that many regions have been
  // replayed -- kInterrupted comes back with the journal pending, and
  // recover_after_reset() finishes the replay at the next boot.
  // kInterrupted is also returned (nothing touched) when no complete
  // transfer is staged.
  UpdateStatus finalize_transfer(
      std::optional<size_t> power_cut_after_regions = std::nullopt);

  // The bootloader half of the A/B swap: finish a pending commit
  // journal, idempotently, before application code runs. Returns true
  // when a pending swap was completed (the caller logs the update
  // marker exactly as for a live apply). A no-op at every ordinary
  // boot. Staged (pre-commit) chunks are deliberately untouched.
  bool recover_after_reset();

  // Discard the staged transfer (not the commit journal). The next
  // chunk starts a fresh assembly.
  void abandon_transfer();

 private:
  struct StagedTransfer {
    crypto::Digest id{};  // the package MAC the chunks carried
    uint32_t total_chunks = 0;
    uint32_t total_bytes = 0;
    std::vector<uint8_t> bytes;
    std::vector<bool> received;
    uint32_t received_count = 0;

    bool complete() const {
      return total_chunks != 0 && received_count == total_chunks;
    }
  };
  // A verified package mid-commit. Pending from the moment
  // verification passes until the last region byte is in PMEM and the
  // version has bumped; replaying it is idempotent (same bytes, same
  // addresses), which is what makes power loss at any point safe.
  struct CommitJournal {
    UpdatePackage package;
  };

  UpdateStatus commit(std::optional<size_t> power_cut_after_regions);

  crypto::Digest update_key_;
  sim::Machine& machine_;
  CasuMonitor* monitor_;
  uint32_t version_ = 0;
  std::optional<StagedTransfer> staged_;
  std::optional<CommitJournal> journal_;
};

}  // namespace eilid::casu

#endif  // EILID_CASU_UPDATE_H
