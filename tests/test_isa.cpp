// ISA layer tests: encoding, decoding, round trips, constant
// generators, disassembly and the cycle model.
#include <gtest/gtest.h>

#include "common/error.h"
#include "isa/cycles.h"
#include "isa/decoder.h"
#include "isa/disasm.h"
#include "isa/encoder.h"
#include "isa/registers.h"

namespace eilid::isa {
namespace {

Decoded decode_one(const std::vector<uint16_t>& words, uint16_t addr = 0xE000) {
  std::array<uint16_t, 3> buffer{};
  for (size_t i = 0; i < words.size() && i < 3; ++i) buffer[i] = words[i];
  auto decoded = decode(buffer, addr);
  EXPECT_TRUE(decoded.has_value());
  return *decoded;
}

TEST(Encoder, MovRegisterToRegister) {
  auto words = encode(Instruction::double_op(Opcode::kMov, Operand::make_reg(10),
                                             Operand::make_reg(11)),
                      0xE000);
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], 0x4A0B);
}

TEST(Encoder, CanonicalNop) {
  // mov #0, r3 must encode to the canonical NOP 0x4303 (CG2 source).
  auto words = encode(Instruction::double_op(Opcode::kMov, Operand::make_imm(0),
                                             Operand::make_reg(3)),
                      0xE000);
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], 0x4303);
}

TEST(Encoder, ConstantGeneratorValues) {
  // Each CG-eligible immediate encodes without an extension word.
  for (int v : {0, 1, 2, 4, 8, -1}) {
    auto insn = Instruction::double_op(Opcode::kMov, Operand::make_imm(v),
                                       Operand::make_reg(10));
    EXPECT_EQ(encoded_size_words(insn), 1u) << "value " << v;
  }
  // Non-CG immediates need the extension word.
  for (int v : {3, 5, 7, 16, 0x1234, -2}) {
    auto insn = Instruction::double_op(Opcode::kMov, Operand::make_imm(v),
                                       Operand::make_reg(10));
    EXPECT_EQ(encoded_size_words(insn), 2u) << "value " << v;
  }
}

TEST(Encoder, CgSuppressedWhenDisallowed) {
  auto insn = Instruction::double_op(Opcode::kMov, Operand::make_imm(2),
                                     Operand::make_reg(10));
  EncodeOptions opts;
  opts.allow_cg = false;
  auto words = encode(insn, 0xE000, opts);
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[1], 2u);
  // Decodes back to the same immediate.
  auto decoded = decode_one({words[0], words[1]});
  EXPECT_EQ(decoded.insn.src.mode, AddrMode::kImmediate);
  EXPECT_EQ(decoded.insn.src.value, 2);
}

TEST(Encoder, JumpOffsetsAndRange) {
  auto words = encode(Instruction::jump(Opcode::kJnz, -1), 0xE000);
  ASSERT_EQ(words.size(), 1u);
  auto decoded = decode_one({words[0]});
  EXPECT_EQ(decoded.insn.jump_offset, -1);
  EXPECT_EQ(decoded.jump_target(), 0xE000u);  // self-loop

  EXPECT_THROW(encode(Instruction::jump(Opcode::kJmp, 512), 0xE000), Error);
  EXPECT_THROW(encode(Instruction::jump(Opcode::kJmp, -513), 0xE000), Error);
  EXPECT_NO_THROW(encode(Instruction::jump(Opcode::kJmp, 511), 0xE000));
  EXPECT_NO_THROW(encode(Instruction::jump(Opcode::kJmp, -512), 0xE000));
}

TEST(Encoder, SymbolicUsesPcRelativeExtension) {
  // Symbolic operand at address A with ext word at A+2 stores
  // target - (A+2).
  auto insn = Instruction::double_op(Opcode::kMov, Operand::make_symbolic(0xE100),
                                     Operand::make_reg(10));
  auto words = encode(insn, 0xE000);
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[1], static_cast<uint16_t>(0xE100 - 0xE002));
  auto decoded = decode_one({words[0], words[1]});
  EXPECT_EQ(decoded.insn.src.mode, AddrMode::kSymbolic);
  EXPECT_EQ(decoded.insn.src.value, 0xE100);
}

TEST(Encoder, RejectsUnencodableOperands) {
  // @r3 is a constant-generator pattern, not a real operand.
  EXPECT_THROW(encode(Instruction::double_op(Opcode::kMov,
                                             Operand::make_indirect(3),
                                             Operand::make_reg(10)),
                      0xE000),
               Error);
  // Indexed destination via r0 must be expressed as symbolic.
  EXPECT_THROW(encode(Instruction::double_op(Opcode::kMov, Operand::make_reg(4),
                                             Operand::make_indexed(0, 4)),
                      0xE000),
               Error);
  // swpb has no byte form.
  EXPECT_THROW(encode(Instruction::single(Opcode::kSwpb, Operand::make_reg(4),
                                          /*byte=*/true),
                      0xE000),
               Error);
}

TEST(Decoder, RejectsUnassignedOpcodes) {
  EXPECT_FALSE(decode({0x0000, 0, 0}, 0xE000).has_value());  // 0x0xxx
  EXPECT_FALSE(decode({0x1FFF, 0, 0}, 0xE000).has_value());  // above Format II
  EXPECT_FALSE(decode({0x1380, 0, 0}, 0xE000).has_value());  // minor opcode 7
}

TEST(Decoder, RetiDecodes) {
  auto decoded = decode_one({0x1300});
  EXPECT_EQ(decoded.insn.op, Opcode::kReti);
  EXPECT_EQ(decoded.size_words, 1);
}

struct RoundTripCase {
  const char* name;
  Instruction insn;
};

class RoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(RoundTrip, EncodeDecodeEncode) {
  const Instruction& insn = GetParam().insn;
  auto words = encode(insn, 0xE100);
  std::array<uint16_t, 3> buffer{};
  for (size_t i = 0; i < words.size(); ++i) buffer[i] = words[i];
  auto decoded = decode(buffer, 0xE100);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->size_words, words.size());
  auto rewords = encode(decoded->insn, 0xE100);
  EXPECT_EQ(words, rewords);
}

INSTANTIATE_TEST_SUITE_P(
    Instructions, RoundTrip,
    ::testing::Values(
        RoundTripCase{"mov_rr", Instruction::double_op(Opcode::kMov,
                                                       Operand::make_reg(4),
                                                       Operand::make_reg(15))},
        RoundTripCase{"add_imm", Instruction::double_op(
                                     Opcode::kAdd, Operand::make_imm(0x1234),
                                     Operand::make_reg(7))},
        RoundTripCase{"addc_cg4", Instruction::double_op(Opcode::kAddc,
                                                         Operand::make_imm(4),
                                                         Operand::make_reg(9))},
        RoundTripCase{"sub_idx_src",
                      Instruction::double_op(Opcode::kSub,
                                             Operand::make_indexed(10, -6),
                                             Operand::make_reg(11))},
        RoundTripCase{"cmp_abs_dst",
                      Instruction::double_op(Opcode::kCmp, Operand::make_reg(5),
                                             Operand::make_absolute(0x0122))},
        RoundTripCase{"dadd_b", Instruction::double_op(Opcode::kDadd,
                                                       Operand::make_reg(8),
                                                       Operand::make_reg(9),
                                                       true)},
        RoundTripCase{"bit_ind", Instruction::double_op(
                                     Opcode::kBit, Operand::make_indirect(12),
                                     Operand::make_reg(13))},
        RoundTripCase{"bic_inc", Instruction::double_op(
                                     Opcode::kBic, Operand::make_indirect_inc(6),
                                     Operand::make_reg(4))},
        RoundTripCase{"bis_both_ext",
                      Instruction::double_op(Opcode::kBis,
                                             Operand::make_indexed(4, 2),
                                             Operand::make_indexed(5, 8))},
        RoundTripCase{"xor_sym", Instruction::double_op(
                                     Opcode::kXor, Operand::make_symbolic(0xE200),
                                     Operand::make_reg(14))},
        RoundTripCase{"and_b_abs",
                      Instruction::double_op(Opcode::kAnd, Operand::make_imm(3),
                                             Operand::make_absolute(0x0200),
                                             true)},
        RoundTripCase{"rrc", Instruction::single(Opcode::kRrc,
                                                 Operand::make_reg(10))},
        RoundTripCase{"rra_b_idx", Instruction::single(
                                       Opcode::kRra, Operand::make_indexed(4, 2),
                                       true)},
        RoundTripCase{"swpb", Instruction::single(Opcode::kSwpb,
                                                  Operand::make_reg(15))},
        RoundTripCase{"sxt_abs", Instruction::single(
                                     Opcode::kSxt, Operand::make_absolute(0x0210))},
        RoundTripCase{"push_imm", Instruction::single(Opcode::kPush,
                                                      Operand::make_imm(0x55AA))},
        RoundTripCase{"call_imm", Instruction::single(Opcode::kCall,
                                                      Operand::make_imm(0xE400))},
        RoundTripCase{"call_reg", Instruction::single(Opcode::kCall,
                                                      Operand::make_reg(13))},
        RoundTripCase{"jz_fwd", Instruction::jump(Opcode::kJz, 5)},
        RoundTripCase{"jge_back", Instruction::jump(Opcode::kJge, -100)}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return info.param.name;
    });

TEST(Cycles, RepresentativeTimings) {
  // SLAU049 spot checks.
  EXPECT_EQ(instruction_cycles(Instruction::double_op(
                Opcode::kMov, Operand::make_reg(4), Operand::make_reg(5))),
            1u);
  EXPECT_EQ(instruction_cycles(Instruction::double_op(
                Opcode::kMov, Operand::make_imm(0x1234), Operand::make_reg(5))),
            2u);
  // CG immediates time like register sources.
  EXPECT_EQ(instruction_cycles(Instruction::double_op(
                Opcode::kMov, Operand::make_imm(1), Operand::make_reg(5))),
            1u);
  EXPECT_EQ(instruction_cycles(Instruction::double_op(
                Opcode::kMov, Operand::make_indexed(4, 2),
                Operand::make_indexed(5, 4))),
            6u);
  // RET = mov @sp+, pc: 3 cycles.
  EXPECT_EQ(instruction_cycles(Instruction::double_op(
                Opcode::kMov, Operand::make_indirect_inc(1),
                Operand::make_reg(0))),
            3u);
  EXPECT_EQ(instruction_cycles(Instruction::single(Opcode::kCall,
                                                   Operand::make_imm(0xE000))),
            5u);
  EXPECT_EQ(instruction_cycles(Instruction::single(Opcode::kPush,
                                                   Operand::make_reg(10))),
            3u);
  EXPECT_EQ(instruction_cycles(Instruction::jump(Opcode::kJmp, 3)), 2u);
  Instruction reti;
  reti.op = Opcode::kReti;
  EXPECT_EQ(instruction_cycles(reti), 5u);
}

TEST(Disasm, CanonicalText) {
  EXPECT_EQ(disassemble(Instruction::double_op(Opcode::kMov,
                                               Operand::make_imm(0x1234),
                                               Operand::make_reg(6))),
            "mov #0x1234, r6");
  EXPECT_EQ(disassemble(Instruction::single(Opcode::kCall,
                                            Operand::make_imm(0xE200))),
            "call #0xe200");
  EXPECT_EQ(disassemble(Instruction::double_op(Opcode::kAdd,
                                               Operand::make_indirect_inc(1),
                                               Operand::make_reg(0))),
            "add @r1+, r0");
}

TEST(Registers, Parsing) {
  EXPECT_EQ(parse_reg("r0"), 0);
  EXPECT_EQ(parse_reg("R15"), 15);
  EXPECT_EQ(parse_reg("pc"), 0);
  EXPECT_EQ(parse_reg("sp"), 1);
  EXPECT_EQ(parse_reg("sr"), 2);
  EXPECT_EQ(parse_reg("r16"), -1);
  EXPECT_EQ(parse_reg("rx"), -1);
  EXPECT_EQ(parse_reg(""), -1);
}

}  // namespace
}  // namespace eilid::isa
