// MSP430 register file and status-register bit definitions.
//
// The MSP430 has sixteen 16-bit registers. r0..r3 have architectural
// roles (PC, SP, SR/CG1, CG2); r4..r15 are general purpose. EILID
// additionally *reserves* r4..r7 by software convention (paper Table
// III) -- that reservation lives in src/eilid, not here.
#ifndef EILID_ISA_REGISTERS_H
#define EILID_ISA_REGISTERS_H

#include <cstdint>
#include <string>

namespace eilid::isa {

inline constexpr uint8_t kPC = 0;   // program counter (r0)
inline constexpr uint8_t kSP = 1;   // stack pointer (r1)
inline constexpr uint8_t kSR = 2;   // status register / constant generator 1 (r2)
inline constexpr uint8_t kCG2 = 3;  // constant generator 2 (r3)
inline constexpr uint8_t kNumRegs = 16;

// Status-register flag bits.
namespace sr {
inline constexpr uint16_t kC = 0x0001;       // carry
inline constexpr uint16_t kZ = 0x0002;       // zero
inline constexpr uint16_t kN = 0x0004;       // negative
inline constexpr uint16_t kGIE = 0x0008;     // general interrupt enable
inline constexpr uint16_t kCpuOff = 0x0010;  // low-power: CPU halted
inline constexpr uint16_t kOscOff = 0x0020;
inline constexpr uint16_t kScg0 = 0x0040;
inline constexpr uint16_t kScg1 = 0x0080;
inline constexpr uint16_t kV = 0x0100;       // overflow
}  // namespace sr

// Canonical register spelling for the assembler/disassembler: r0..r15,
// with pc/sp/sr accepted as aliases on input.
std::string reg_name(uint8_t reg);

// Parse "r7", "R12", "pc", "sp", "sr". Returns 0..15 or -1 if invalid.
int parse_reg(const std::string& text);

}  // namespace eilid::isa

#endif  // EILID_ISA_REGISTERS_H
