// Generative workload source for the scenario fuzzer: seeded,
// guaranteed-terminating masm programs drawn from a constrained subset
// of the ISA's control-flow vocabulary -- direct calls/returns in a
// DAG, bounded counted loops, unconditional jumps, indirect calls
// through a .word dispatch table, peripheral I/O and timer-IRQ arming.
//
// Every program is first a ProgramSpec -- an explicit, shrinkable
// blueprint -- and only then masm text (render()). The shrinker works
// at the spec level (drop an op, halve a loop, drop a function), so a
// minimized failure re-renders to exactly the source a regression test
// commits.
//
// Construction rules that make the free oracles sound:
//   - terminates: ops are finite, loops are counted with a dedicated
//     counter register no other op touches, calls form a DAG (a
//     function only calls higher indices; indirect calls exist only in
//     main and dispatch to non-main functions), the timer IRQ is
//     disarmed (dint) before the halt spin, and the ISR does constant
//     work with a period far above its cost,
//   - replays clean: every emitted transfer has a CFA replay rule --
//     direct jumps land in Cfg::jump_edges, indirect calls target
//     .func-declared functions (Cfg::call_targets), rets balance
//     calls, reti balances the vectored timer ISR. No bare indirect
//     branches: `br rN` has no replay rule and would self-convict,
//   - instrumentable: r6/r7 (EILIDinst scratch) are never used, main's
//     first instruction sets the stack pointer (the P3 boot-hook
//     anchor), so the same spec builds plain and instrumented.
#ifndef EILID_FUZZ_PROGRAM_GENERATOR_H
#define EILID_FUZZ_PROGRAM_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace eilid::fuzz {

// One operation in a generated function body. `a`/`b`/`c` are
// kind-specific parameters (selectors, register indices, immediates);
// the generator fills them and render() maps them onto the legal
// instruction forms, so every spec -- including every shrunk spec --
// renders to an assemblable program.
struct Op {
  enum class Kind : uint8_t {
    kAlu,           // scratch-register arithmetic, no control flow
    kMemRw,         // store + reload a private RAM word
    kPeriph,        // peripheral register I/O (GPIO, UART-TX, ADC)
    kLoop,          // bounded counted loop around a straight-line body
    kJumpOver,      // unconditional jmp over a short dead block
    kCallDirect,    // call #fn_<a> (a > index of the containing function)
    kCallIndirect,  // load dispatch-table slot `a` and call through it
  };
  Kind kind = Kind::kAlu;
  int a = 0;
  int b = 0;
  int c = 0;

  bool operator==(const Op&) const = default;
};

struct FunctionSpec {
  std::vector<Op> ops;

  bool operator==(const FunctionSpec&) const = default;
};

// Blueprint of one generated program. functions[0] is main's body;
// fn_1..fn_{N-1} are .func-declared helpers forming a call DAG.
struct ProgramSpec {
  uint64_t seed = 0;
  std::vector<FunctionSpec> functions;
  // Dispatch-table entries: index of the (non-main) function each
  // tab_<k> word resolves to. Empty = no table, no indirect calls.
  std::vector<int> table;
  bool timer_irq = false;
  int irq_period = 400;  // timer compare value while armed

  bool operator==(const ProgramSpec&) const = default;

  std::string name() const;    // "fuzz-<seed in hex>"
  std::string render() const;  // masm source for Fleet::build()
  size_t op_count() const;
};

struct GeneratorOptions {
  int max_helper_functions = 4;  // fn_1..fn_N beyond main
  int max_ops = 10;              // ops per function body
  int max_loop_iters = 12;
  int max_table_entries = 4;
  int max_calls_per_function = 2;  // caps dynamic call fan-out (termination)
  bool allow_irq = true;
  bool allow_indirect = true;
};

class ProgramGenerator {
 public:
  explicit ProgramGenerator(GeneratorOptions options = {})
      : options_(options) {}

  // Pure function of (options, seed): the same seed always yields the
  // same spec, which renders to byte-identical source.
  ProgramSpec generate(uint64_t seed) const;

 private:
  GeneratorOptions options_;
};

// All specs one shrink step smaller than `spec`, each still satisfying
// the construction rules above (a function is only dropped while
// nothing calls or dispatches to it). The harness greedily walks these
// while a failure predicate keeps reproducing.
std::vector<ProgramSpec> shrink_candidates(const ProgramSpec& spec);

}  // namespace eilid::fuzz

#endif  // EILID_FUZZ_PROGRAM_GENERATOR_H
