#include "masm/listing.h"

#include "common/hex.h"

namespace eilid::masm {

std::string Listing::render() const {
  std::string out;
  out += "; listing of " + unit_name + "\n";
  for (const auto& line : lines) {
    if (line.bytes.empty() && line.source.empty()) continue;
    std::string words;
    for (size_t i = 0; i + 1 < line.bytes.size(); i += 2) {
      uint16_t w = static_cast<uint16_t>(line.bytes[i] |
                                         (line.bytes[i + 1] << 8));
      words += hex16_bare(w) + " ";
    }
    if (line.bytes.size() % 2) words += hex8(line.bytes.back()) + " ";
    std::string addr = line.bytes.empty() ? "    " : hex16_bare(line.address);
    out += addr + ": " + words;
    // Pad to a fixed column so source aligns.
    size_t col = 6 + words.size();
    while (col++ < 26) out += ' ';
    out += line.source + "\n";
  }
  out += ";\n; symbols:\n";
  for (const auto& [name, value] : symbols) {
    out += ";   " + name + " = " + hex16(value) + "\n";
  }
  return out;
}

uint16_t Listing::next_address(size_t index) const {
  const auto& line = lines.at(index);
  return static_cast<uint16_t>(line.address + line.bytes.size());
}

}  // namespace eilid::masm
