// Decoded/encodable MSP430 instruction.
#ifndef EILID_ISA_INSTRUCTION_H
#define EILID_ISA_INSTRUCTION_H

#include <cstdint>

#include "isa/opcodes.h"
#include "isa/operand.h"

namespace eilid::isa {

struct Instruction {
  Opcode op = Opcode::kMov;
  bool byte_mode = false;  // .b suffix (operates on low byte)

  // Format I uses src and dst; Format II uses src only (kReti uses
  // neither); jumps use jump_offset only.
  Operand src;
  Operand dst;

  // Signed word offset for jumps: target = address + 2 + 2*jump_offset.
  // Range -512..+511 words.
  int16_t jump_offset = 0;

  bool operator==(const Instruction&) const = default;

  static Instruction jump(Opcode op, int16_t offset) {
    Instruction insn;
    insn.op = op;
    insn.jump_offset = offset;
    return insn;
  }
  static Instruction single(Opcode op, Operand src, bool byte_mode = false) {
    Instruction insn;
    insn.op = op;
    insn.src = src;
    insn.byte_mode = byte_mode;
    return insn;
  }
  static Instruction double_op(Opcode op, Operand src, Operand dst,
                               bool byte_mode = false) {
    Instruction insn;
    insn.op = op;
    insn.src = src;
    insn.dst = dst;
    insn.byte_mode = byte_mode;
    return insn;
  }
};

}  // namespace eilid::isa

#endif  // EILID_ISA_INSTRUCTION_H
