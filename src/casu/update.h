// CASU authenticated software update.
//
// CASU's only path for modifying PMEM is an update authorised by a MAC
// computed with a device-unique key and bound to a monotonic version
// (anti-rollback). The API splits the protocol the way the protocol
// itself splits:
//
//   - UpdateAuthority is the sender (vendor/verifier) side: it holds a
//     device's update key and builds correctly MAC'd packages. It
//     never touches a machine.
//   - UpdateEngine is the receiver (device) side: it is bound at
//     construction to the one machine its monitor polices -- an engine
//     cannot be aimed at a foreign machine -- and owns that device's
//     anti-rollback version counter (per device, never shared across
//     a fleet).
//
// A package carries any number of disjoint PMEM regions, so a whole
// build-to-build image diff ships as one atomic, MAC'd unit. The
// verification logic (HMAC-SHA256, version check) is real; the bytes
// are applied to PMEM under an open monitor session, mirroring the ROM
// update routine's effect.
#ifndef EILID_CASU_UPDATE_H
#define EILID_CASU_UPDATE_H

#include <cstdint>
#include <span>
#include <vector>

#include "casu/monitor.h"
#include "crypto/hmac.h"
#include "sim/machine.h"

namespace eilid::casu {

struct UpdateRegion {
  uint16_t target_addr = 0;
  std::vector<uint8_t> payload;
};

struct UpdatePackage {
  uint32_t version = 0;
  std::vector<UpdateRegion> regions;
  crypto::Digest mac{};

  size_t payload_bytes() const;
};

enum class UpdateStatus : uint8_t {
  kApplied,
  kBadMac,
  kRollback,       // version <= device's current version
  kBadRegion,      // a region does not fit in PMEM
};

// MAC over version || (addr, len, bytes) per region, all fields
// fixed-width LE. Shared by the authority (signing) and the engine
// (verification).
crypto::Digest package_mac(const crypto::Digest& update_key,
                           const UpdatePackage& package);

// Sender side. `device_key` is the device's master key provisioned at
// manufacture (for a fleet, the per-device key derived from the fleet
// master); the update key is derived as HMAC(master, "casu-update").
class UpdateAuthority {
 public:
  explicit UpdateAuthority(std::span<const uint8_t> device_key);

  UpdatePackage make_package(uint32_t version,
                             std::vector<UpdateRegion> regions) const;
  // Single-region convenience (raw patch, not a build transition).
  UpdatePackage make_package(uint16_t target_addr, uint32_t version,
                             std::vector<uint8_t> payload) const;

 private:
  crypto::Digest update_key_;
};

// Receiver side: one engine per device, bound to that device's machine
// and monitor for its whole life.
class UpdateEngine {
 public:
  // `monitor` must be the monitor policing `machine` (null for an
  // unprotected device: updates still verify and apply, but there is
  // no hardware to latch auth failures on).
  UpdateEngine(std::span<const uint8_t> device_key, sim::Machine& machine,
               CasuMonitor* monitor);

  // Verify and apply against this engine's machine. On kBadMac or
  // kRollback the monitor latches a violation so the device resets
  // (CASU heals on abuse); region checks precede authentication so a
  // malformed package is never MAC'd.
  UpdateStatus apply(const UpdatePackage& package);

  uint32_t current_version() const { return version_; }

 private:
  crypto::Digest update_key_;
  sim::Machine& machine_;
  CasuMonitor* monitor_;
  uint32_t version_ = 0;
};

}  // namespace eilid::casu

#endif  // EILID_CASU_UPDATE_H
