#include "isa/decoded_image.h"

#include "isa/cycles.h"
#include "isa/registers.h"

namespace eilid::isa {

bool is_control_transfer(const Instruction& insn) {
  const OpcodeInfo& info = opcode_info(insn.op);
  switch (info.format) {
    case Format::kJump:
      return true;
    case Format::kDouble:
      return insn.dst.mode == AddrMode::kRegister && insn.dst.reg == kPC;
    case Format::kSingle:
      if (insn.op == Opcode::kCall || insn.op == Opcode::kReti) return true;
      // rrc/rra/swpb/sxt with PC as the read-modify-write operand.
      return insn.op != Opcode::kPush &&
             insn.src.mode == AddrMode::kRegister && insn.src.reg == kPC;
  }
  return false;
}

DecodedImage::DecodedImage(std::span<const uint8_t> memory,
                           std::span<const Range> ranges) {
  auto word_at = [&memory](uint32_t addr) {
    // Word reads wrap within the 16-bit space, mirroring Bus::raw_word;
    // the decoder rejects instructions extending past 0xFFFF anyway, so
    // wrapped values never reach an executed instruction.
    return static_cast<uint16_t>(
        memory[addr & 0xFFFF] |
        (static_cast<uint16_t>(memory[(addr + 1) & 0xFFFF]) << 8));
  };

  tables_.reserve(ranges.size());
  for (const Range& range : ranges) {
    RangeTable table;
    table.first = range.first & 0xFFFE;
    table.last = range.last;
    table.entries.resize((static_cast<size_t>(table.last - table.first) >> 1) + 1);
    for (uint32_t pc = table.first; pc <= table.last; pc += 2) {
      std::array<uint16_t, 3> words = {word_at(pc), word_at(pc + 2),
                                       word_at(pc + 4)};
      auto decoded = decode(words, static_cast<uint16_t>(pc));
      if (!decoded) continue;  // entry stays size_words == 0 (illegal)
      Entry& entry = table.entries[(pc - table.first) >> 1];
      entry.insn = decoded->insn;
      entry.next_address = decoded->next_address();
      entry.size_words = decoded->size_words;
      entry.cycles = static_cast<uint8_t>(instruction_cycles(decoded->insn));
      entry.format = opcode_info(decoded->insn.op).format;
      entry.control_transfer = is_control_transfer(decoded->insn);
      ++decoded_count_;
    }
    tables_.push_back(std::move(table));
  }
}

size_t DecodedImage::slot_count() const {
  size_t n = 0;
  for (const RangeTable& t : tables_) n += t.entries.size();
  return n;
}

std::vector<DecodedImage::RangeView> DecodedImage::range_views() const {
  std::vector<RangeView> views;
  views.reserve(tables_.size());
  for (const RangeTable& t : tables_) {
    views.push_back({t.first, t.last, std::span<const Entry>(t.entries)});
  }
  return views;
}

}  // namespace eilid::isa
