// The seven evaluation workloads from the paper's Table IV, hand-ported
// to MSP430 assembly (the originals are tiny Arduino/LaunchPad C
// sketches; the instrumenter operates on assembly either way):
//
//   light_sensor       Seeed LaunchPad kit: ADC sampling + LED + UART
//   ultrasonic_ranger  Seeed LaunchPad kit: HC-SR04 ranging
//   fire_sensor        Seeed LaunchPad kit: flame+temp fusion, alarm
//   syringe_pump       OpenSyringePump: UART commands, stepper motor,
//                      *indirect dispatch through function pointers*
//   temp_sensor        ticepd/msp430-examples: conversion + min/max
//   charlieplexing     ticepd/msp430-examples: 6-LED multiplexing
//   lcd_sensor         ticepd/msp430-examples: HD44780 text output
//
// Each app boots at `main` (reset vector), performs a fixed bounded
// workload and parks at the `halt` label, which benchmarks use as the
// completion breakpoint. Stimulus (ADC series, UART input, distances)
// is installed by `setup` and is deterministic.
#ifndef EILID_APPS_APPS_H
#define EILID_APPS_APPS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "eilid/rollout.h"
#include "eilid/session.h"
#include "sim/machine.h"

namespace eilid::apps {

struct AppSpec {
  std::string name;
  std::string source;                 // complete MSP430 assembly
  void (*setup)(sim::Machine&);       // install peripheral stimulus
  uint64_t cycle_budget;              // generous bound for the workload
  // A host check that the app did its job (used by integration tests);
  // returns an empty string on success, else a failure description.
  std::string (*check)(sim::Machine&);
};

// The seven Table IV workloads, in the paper's order.
const std::vector<AppSpec>& table4_apps();

// Lookup by name; throws eilid::ConfigError if unknown.
const AppSpec& app_by_name(const std::string& name);

// The deliberately vulnerable UART gateway used by the attack demos
// (stack overflow in recv_packet, function pointer in RAM).
const AppSpec& vuln_gateway();

// --- Fleet-session workload runner ---------------------------------
// Outcome of running one AppSpec workload on a provisioned session.
struct WorkloadOutcome {
  bool reached_halt = false;
  uint64_t cycles = 0;        // cycles consumed by this run
  size_t violations = 0;      // enforcement resets observed
  std::string last_reset;     // "" when the device never enforced
  std::string check_failure;  // "" when the app's host check passed
};

// Install the app's stimulus on the session's machine, run to the
// `halt` label and apply the app's host check. `cycle_budget` of 0
// uses 8x the spec's budget (room for instrumented builds).
WorkloadOutcome run_workload(DeviceSession& session, const AppSpec& app,
                             uint64_t cycle_budget = 0);

// One unit of fleet-wide work: run `app` on `session`.
struct FleetWorkload {
  DeviceSession* session = nullptr;
  const AppSpec* app = nullptr;
  uint64_t cycle_budget = 0;  // 0: 8x the spec's budget
};

// Drive a whole fleet concurrently: every item's workload runs on the
// pool (sessions must be distinct), each session locked via
// DeviceSession::mutex() for the duration so a concurrent attestation
// sweep never observes a device mid-run. Outcomes are returned in
// input order; the first exception any workload throws is rethrown.
std::vector<WorkloadOutcome> run_workload_all(
    const std::vector<FleetWorkload>& items, common::ThreadPool& pool);

// Rollout-wave probe: drives `app` on every device of a wave between
// the wave's apply and its attestation gate, so freshly updated
// devices produce post-update evidence for the gate to judge. Takes
// each session's mutex() while driving it (per the WaveProbe
// contract); with a pool the wave fans out via run_workload_all(),
// serially each device runs in membership order -- either way the
// devices' resulting state is identical. The spec is copied into the
// probe, so a temporary AppSpec is safe to pass.
eilid::WaveProbe wave_workload(const AppSpec& app, uint64_t cycle_budget = 0);

}  // namespace eilid::apps

#endif  // EILID_APPS_APPS_H
