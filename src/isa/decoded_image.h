// Predecoded ROM image: a PC-indexed table of fully decoded
// instructions, built once per build and shared (read-only) by every
// simulated device flashed with that image.
//
// Rationale: CASU guarantees ROM/PMEM immutability at run time, so the
// per-step `isa::decode()` the interpretive core pays on every retired
// instruction can be hoisted to build time -- the same offline/online
// split CFI CaRE and OAT use to keep their runtime monitors cheap. The
// simulator consults the table for PCs inside the predecoded ranges and
// falls back to interpretive decode elsewhere (or after a write lands
// in the code range -- see Bus::code_generation()).
#ifndef EILID_ISA_DECODED_IMAGE_H
#define EILID_ISA_DECODED_IMAGE_H

#include <cstdint>
#include <span>
#include <vector>

#include "isa/decoder.h"

namespace eilid::isa {

// True when executing `insn` can set PC to anything other than the
// fall-through address: jumps, call/reti, and PC-destination ALU ops
// (br/ret are mov-to-PC after emulated-mnemonic expansion).
bool is_control_transfer(const Instruction& insn);

class DecodedImage {
 public:
  struct Entry {
    Instruction insn;
    uint16_t next_address = 0;  // fall-through (address + 2 * size_words)
    uint8_t size_words = 0;     // 0: bytes at this pc are not a legal
                                // instruction (authoritative illegal)
    uint8_t cycles = 0;         // isa::instruction_cycles(insn)
    Format format = Format::kDouble;  // opcode_info(insn.op).format
    bool control_transfer = false;
  };

  // Inclusive code region to predecode; `first`/`last` must be even.
  struct Range {
    uint16_t first;
    uint16_t last;
  };

  // `memory` is a full 64 KiB address-space snapshot (the flashed image
  // over zero-filled backing store, exactly what a freshly loaded
  // device's memory holds). Every even address in every range is
  // decoded; extension words are read from the snapshot wherever they
  // land.
  DecodedImage(std::span<const uint8_t> memory, std::span<const Range> ranges);

  // Entry for the instruction starting at `pc`, or nullptr when pc is
  // outside every predecoded range (the caller must decode
  // interpretively). A non-null entry with size_words == 0 means the
  // bytes at pc do not decode -- an illegal-instruction trap, no
  // interpretive retry needed.
  const Entry* lookup(uint16_t pc) const {
    for (const RangeTable& t : tables_) {
      if (pc >= t.first && pc <= t.last) {
        return &t.entries[static_cast<size_t>(pc - t.first) >> 1];
      }
    }
    return nullptr;
  }

  // Number of addresses that decoded to a legal instruction.
  size_t decoded_count() const { return decoded_count_; }
  // Total predecoded slots across all ranges.
  size_t slot_count() const;

  // Read-only view of one range's contiguous entry array (entry i is
  // the slot at address first + 2*i). Derived tables -- the superblock
  // suffix table -- are built from these views instead of re-decoding.
  struct RangeView {
    uint16_t first;
    uint16_t last;
    std::span<const Entry> entries;
  };
  std::vector<RangeView> range_views() const;

 private:
  struct RangeTable {
    uint16_t first;
    uint16_t last;
    std::vector<Entry> entries;  // one per even address in [first, last]
  };

  std::vector<RangeTable> tables_;
  size_t decoded_count_ = 0;
};

}  // namespace eilid::isa

#endif  // EILID_ISA_DECODED_IMAGE_H
