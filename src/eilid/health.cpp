#include "eilid/health.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/rng.h"

namespace eilid {

// --- HeartbeatScheduler ---------------------------------------------

HeartbeatScheduler::HeartbeatScheduler(Fleet& fleet, HeartbeatOptions options)
    : fleet_(&fleet), options_(options) {
  if (options_.period == 0) options_.period = 1;
}

Tick HeartbeatScheduler::phase_for(const std::string& device_id) const {
  if (options_.jitter == 0) return 0;
  // Keyed stream: the phase is a pure function of (seed, id), identical
  // on every platform and every run -- jitter spreads the fleet across
  // ticks without making any schedule non-reproducible.
  auto rng = common::SeededRng::keyed(options_.jitter_seed, device_id);
  return static_cast<Tick>(rng.below(options_.jitter + 1));
}

HeartbeatReport HeartbeatScheduler::run_until(Tick deadline) {
  return run(deadline, nullptr);
}

HeartbeatReport HeartbeatScheduler::run_until(Tick deadline,
                                              common::ThreadPool& pool) {
  return run(deadline, &pool);
}

HeartbeatReport HeartbeatScheduler::run(Tick deadline,
                                        common::ThreadPool* pool) {
  FleetClock& clock = fleet_->clock();
  HeartbeatReport report;
  report.from = clock.now();

  // Adopt/prune against one registry snapshot: devices deployed since
  // the last run join with enrollment == now, decommissioned ids drop
  // out (their session pointers are gone). Only CFA-capable devices
  // emit announcements, so only they are watched.
  const std::vector<DeviceSession*> snapshot = fleet_->sessions();
  std::map<std::string, DeviceSession*> by_id;
  for (DeviceSession* session : snapshot) {
    if (session->cfa_monitor() == nullptr) continue;
    by_id.emplace(session->id(), session);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = records_.begin(); it != records_.end();) {
      if (by_id.count(it->first) == 0) {
        it = records_.erase(it);
      } else {
        ++it;
      }
    }
    const Tick now = clock.now();
    for (const auto& [id, session] : by_id) {
      if (records_.count(id) != 0) continue;
      FreshnessRecord record;
      record.device_id = id;
      record.enrolled_tick = now;
      record.next_due = now + options_.period + phase_for(id);
      records_.emplace(id, std::move(record));
    }
  }

  // Fire beats in (tick, device-id) order: repeatedly find the earliest
  // due tick <= deadline, advance the clock to it, and sweep every
  // device due on exactly that tick. Map iteration gives id order for
  // free within a beat.
  for (;;) {
    Tick due = 0;
    std::vector<std::string> due_ids;
    {
      std::lock_guard<std::mutex> lock(mu_);
      bool found = false;
      for (const auto& [id, record] : records_) {
        if (record.next_due > deadline) continue;
        if (!found || record.next_due < due) {
          found = true;
          due = record.next_due;
          due_ids.clear();
        }
        if (found && record.next_due == due) due_ids.push_back(id);
      }
      if (!found) break;
    }

    clock.advance_to(due);
    HeartbeatBeat beat;
    beat.tick = due;

    std::vector<DeviceSession*> online;
    for (const std::string& id : due_ids) {
      DeviceSession* session = by_id.at(id);
      if (session->online()) {
        online.push_back(session);
      } else {
        beat.missed.push_back(id);
      }
    }
    if (!online.empty()) {
      beat.verdicts = pool == nullptr
                          ? fleet_->verifier().verify_all(online)
                          : fleet_->verifier().verify_all(online, *pool);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const std::string& id : beat.missed) {
        FreshnessRecord& record = records_.at(id);
        ++record.misses;
        ++record.consecutive_misses;
        // Exponential backoff (see HeartbeatOptions): the k-th
        // consecutive miss waits period << min(k, cap). Shift clamped
        // well below the Tick width so a pathological cap cannot
        // overflow the schedule.
        const uint32_t exponent = std::min(
            {record.consecutive_misses, options_.max_backoff_exponent,
             uint32_t{48}});
        record.next_due += options_.period << exponent;
      }
      for (const VerifierService::AttestResult& verdict : beat.verdicts) {
        FreshnessRecord& record = records_.at(verdict.device_id);
        ++record.heartbeats;
        record.consecutive_misses = 0;  // evidence arrived: cadence snaps back
        record.last_attested_tick = due;
        record.ever_attested = true;
        if (verdict.ok()) {
          record.last_ok_tick = due;
          record.ever_ok = true;
          record.convicted = false;
        } else {
          record.convicted = true;
        }
        record.next_due += options_.period;
      }
    }
    report.beats.push_back(std::move(beat));
  }

  clock.advance_to(deadline);
  report.until = clock.now();
  return report;
}

std::vector<FreshnessRecord> HeartbeatScheduler::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FreshnessRecord> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) out.push_back(record);
  return out;
}

FreshnessRecord HeartbeatScheduler::record(const std::string& device_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(device_id);
  return it == records_.end() ? FreshnessRecord{} : it->second;
}

void HeartbeatScheduler::note_remediated(const std::string& device_id,
                                         Tick tick) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(device_id);
  if (it == records_.end()) return;
  FreshnessRecord& record = it->second;
  record.consecutive_misses = 0;
  record.last_attested_tick = tick;
  record.last_ok_tick = tick;
  record.ever_attested = true;
  record.ever_ok = true;
  record.convicted = false;
}

// --- quarantine decision --------------------------------------------

std::string_view quarantine_reason_name(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kNone: return "none";
    case QuarantineReason::kStale: return "stale";
    case QuarantineReason::kConvicted: return "convicted";
    case QuarantineReason::kEscalated: return "escalated";
  }
  return "?";
}

QuarantineReason assess(const FreshnessRecord& record, Tick now,
                        const HealthPolicy& policy) {
  if (policy.quarantine_convicted && record.convicted) {
    return QuarantineReason::kConvicted;
  }
  // Staleness is measured from the last *clean* verdict -- evidence
  // that keeps arriving but never verifies is exactly as stale as
  // silence. A device that has never verified clean ages from its
  // enrollment instead.
  const Tick anchor =
      record.ever_ok ? record.last_ok_tick : record.enrolled_tick;
  const Tick age = now >= anchor ? now - anchor : 0;
  if (age > policy.staleness_threshold) return QuarantineReason::kStale;
  return QuarantineReason::kNone;
}

// --- HealthMonitor --------------------------------------------------

HealthMonitor::HealthMonitor(Fleet& fleet, HealthOptions options)
    : fleet_(&fleet), options_(options), scheduler_(fleet, options.heartbeat) {}

void HealthMonitor::stage_remediation(UpdateCampaign campaign) {
  std::lock_guard<std::mutex> lock(mu_);
  remediation_.emplace(std::move(campaign));
}

std::vector<QuarantineEntry> HealthMonitor::quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QuarantineEntry> out;
  out.reserve(quarantine_.size());
  for (const auto& [id, entry] : quarantine_) out.push_back(entry);
  return out;
}

HealthReport HealthMonitor::run_until(Tick deadline) {
  return run(deadline, nullptr);
}

HealthReport HealthMonitor::run_until(Tick deadline,
                                      common::ThreadPool& pool) {
  return run(deadline, &pool);
}

RemediationOutcome HealthMonitor::remediate_one(const QuarantineEntry& entry,
                                                Tick now) {
  RemediationOutcome out;
  out.device_id = entry.device_id;
  out.reason = entry.reason;
  out.tick = now;
  DeviceSession* session = fleet_->find(entry.device_id);
  if (session == nullptr || !session->online()) {
    // Unreachable: a decommissioned or offline device cannot be reset
    // or re-updated. It stays quarantined for the next pass.
    return out;
  }
  out.reachable = true;
  // Reset half: factory-restore the recorded image under the device's
  // lock (a concurrent sweep of this device must not observe a
  // half-reflashed machine), so even a diverged device is updatable.
  {
    std::lock_guard<std::mutex> lock(session->mutex());
    session->reflash();
  }
  // Re-update half: the ordinary campaign lifecycle (fresh epoch
  // marker, replay-CFG swap, per-device lock inside). kAlreadyCurrent
  // is a success -- a stale-but-current device just needed the reset.
  out.update = remediation_->apply_to(*session);
  // Prove the heal: an immediate attestation. The reset marker logged
  // by reflash() clears the verifier's replay stacks, so pre-reset
  // evidence (including what convicted the device) cannot taint this
  // verdict.
  out.verdict = fleet_->verifier().attest(*session);
  out.healed = out.update.ok() && out.verdict.ok();
  return out;
}

HealthReport HealthMonitor::run(Tick deadline, common::ThreadPool* pool) {
  HealthReport report;
  report.heartbeats = pool == nullptr ? scheduler_.run_until(deadline)
                                      : scheduler_.run_until(deadline, *pool);
  const Tick now = fleet_->clock().now();

  // Assess every watched device against the policy; latch new
  // quarantines. Records come back sorted by id, so the report is too.
  const std::vector<FreshnessRecord> records = scheduler_.records();
  std::vector<QuarantineEntry> to_remediate;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Drop quarantine entries for devices the scheduler no longer
    // watches (decommissioned): there is nothing left to remediate.
    std::set<std::string> watched;
    for (const FreshnessRecord& record : records) {
      watched.insert(record.device_id);
    }
    for (auto it = quarantine_.begin(); it != quarantine_.end();) {
      if (watched.count(it->first) == 0) {
        heal_attempts_.erase(it->first);
        it = quarantine_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = heal_attempts_.begin(); it != heal_attempts_.end();) {
      if (watched.count(it->first) == 0) {
        it = heal_attempts_.erase(it);
      } else {
        ++it;
      }
    }
    const uint32_t max_attempts = options_.policy.max_heal_attempts;
    for (const FreshnessRecord& record : records) {
      const QuarantineReason reason = assess(record, now, options_.policy);
      if (reason == QuarantineReason::kNone) continue;
      if (quarantine_.count(record.device_id) != 0) continue;
      QuarantineEntry entry;
      entry.device_id = record.device_id;
      entry.reason = reason;
      entry.since = now;
      entry.remediation_attempts = heal_attempts_[record.device_id];
      // A device re-entering quarantine with its lifetime attempt
      // budget already spent escalates immediately: the previous heals
      // did not stick, so another automated pass would too.
      if (max_attempts != 0 && entry.remediation_attempts >= max_attempts) {
        entry.reason = QuarantineReason::kEscalated;
        report.escalated.push_back(entry);
      }
      quarantine_.emplace(record.device_id, entry);
      report.newly_quarantined.push_back(std::move(entry));
    }
    if (remediation_.has_value()) {
      to_remediate.reserve(quarantine_.size());
      for (const auto& [id, entry] : quarantine_) {
        // Terminal: escalated devices wait for the operator.
        if (entry.reason == QuarantineReason::kEscalated) continue;
        to_remediate.push_back(entry);
      }
    }
  }

  // Remediate (campaign staged only): one attempt per quarantined
  // device, outcomes indexed by sorted id so the pooled pass is
  // bit-identical to the serial one (each device's outcome depends on
  // its own state alone; the clock does not advance mid-pass).
  if (!to_remediate.empty()) {
    std::vector<RemediationOutcome> outcomes(to_remediate.size());
    if (pool == nullptr) {
      for (size_t i = 0; i < to_remediate.size(); ++i) {
        outcomes[i] = remediate_one(to_remediate[i], now);
      }
    } else {
      pool->parallel_for(to_remediate.size(), [&](size_t i) {
        outcomes[i] = remediate_one(to_remediate[i], now);
      });
    }
    std::lock_guard<std::mutex> lock(mu_);
    const uint32_t max_attempts = options_.policy.max_heal_attempts;
    for (const RemediationOutcome& outcome : outcomes) {
      if (outcome.healed) {
        quarantine_.erase(outcome.device_id);
        scheduler_.note_remediated(outcome.device_id, now);
        continue;
      }
      const uint32_t attempts = ++heal_attempts_[outcome.device_id];
      auto it = quarantine_.find(outcome.device_id);
      if (it == quarantine_.end()) continue;
      it->second.remediation_attempts = attempts;
      if (max_attempts != 0 && attempts >= max_attempts) {
        it->second.reason = QuarantineReason::kEscalated;
        report.escalated.push_back(it->second);
      }
    }
    report.remediations = std::move(outcomes);
  }

  // Escalations accrete from two places (budget-exhausted re-entry and
  // the just-failed attempt); keep the report's sorted-by-id contract.
  std::sort(report.escalated.begin(), report.escalated.end(),
            [](const QuarantineEntry& a, const QuarantineEntry& b) {
              return a.device_id < b.device_id;
            });
  {
    std::lock_guard<std::mutex> lock(mu_);
    report.quarantined_after = quarantine_.size();
  }
  return report;
}

}  // namespace eilid
