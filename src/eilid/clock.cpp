#include "eilid/clock.h"

namespace eilid {

Tick FleetClock::advance(Tick delta) {
  return now_.fetch_add(delta, std::memory_order_acq_rel) + delta;
}

Tick FleetClock::advance_to(Tick deadline) {
  Tick current = now_.load(std::memory_order_acquire);
  while (current < deadline &&
         !now_.compare_exchange_weak(current, deadline,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
  }
  return now_.load(std::memory_order_acquire);
}

}  // namespace eilid
