// The paper's motivating comparison, executable: a control-flow
// attestation (CFA) device detects a hijack only when the verifier
// next attests -- after the malicious code already ran -- while the
// EILID device prevents the hijack outright. Uses the same exploit on
// both configurations.
#include <cstdio>

#include "src/apps/apps.h"
#include "src/attacks/attack.h"
#include "src/cfa/attestation.h"
#include "src/cfa/cfg.h"
#include "src/eilid/device.h"
#include "src/eilid/pipeline.h"

using namespace eilid;

int main() {
  const auto& app = apps::vuln_gateway();
  crypto::Digest key{};
  key.fill(0x42);

  // --- CFA device: unprotected app + logging monitor + verifier. ---
  core::BuildResult plain =
      core::build_app(app.source, app.name, {.eilid = false});
  core::Device cfa_device(plain);
  // Generous on-device log so no evidence is lost to overflow (with the
  // default 256-edge log the hijack edge is dropped before the first
  // report -- run bench_ablation_cfa_latency for that effect).
  cfa::CfaMonitor monitor(cfa_device.machine().bus(), key,
                          {.log_capacity = 8192});
  cfa_device.machine().add_monitor(&monitor);
  cfa::CfaVerifier verifier(cfa::extract_cfg(plain.app), key);

  cfa_device.machine().uart().feed(
      attacks::overflow_ret_payload(cfa_device.symbol("unlock")));

  std::printf("== CFA device ==\n");
  uint64_t nonce = 7;
  bool detected = false;
  for (int window = 0; window < 8 && !detected; ++window) {
    cfa_device.machine().run(25000);  // attestation window
    bool hijack_visible =
        cfa_device.machine().uart().tx_text().find('U') != std::string::npos;
    cfa::Report report =
        monitor.take_report(nonce, cfa_device.machine().cycles());
    auto result = verifier.verify(report, nonce++);
    std::printf("  window %d: %4zu edges logged, hijack already ran: %-3s, "
                "verifier says: %s\n",
                window, report.edges.size(), hijack_visible ? "YES" : "no",
                result.path_ok ? "path ok" : "PATH VIOLATION");
    if (!result.path_ok) {
      detected = true;
      std::printf("  -> bad edge 0x%04x -> 0x%04x reported %llu cycles into "
                  "the run; the attacker's code finished long before.\n",
                  result.first_bad->from, result.first_bad->to,
                  static_cast<unsigned long long>(report.cycle));
    }
  }

  // --- EILID device: same exploit. ---
  std::printf("\n== EILID device ==\n");
  core::BuildResult inst = core::build_app(app.source, app.name);
  core::Device eilid_device(inst, {.clock_hz = 8e6, .halt_on_reset = true});
  eilid_device.machine().uart().feed(
      attacks::overflow_ret_payload(eilid_device.symbol("unlock")));
  eilid_device.run_to_symbol("halt", 200000);
  bool hijacked =
      eilid_device.machine().uart().tx_text().find('U') != std::string::npos;
  std::printf("  hijack ran: %s; device reset: %s\n", hijacked ? "YES" : "no",
              eilid_device.machine().violation_count()
                  ? sim::reset_reason_name(
                        eilid_device.machine().resets().back().reason)
                        .c_str()
                  : "none");
  std::printf(
      "\nCFA is after-the-fact evidence; EILID is a real-time countermeasure\n"
      "-- the exact gap the paper sets out to close (§I).\n");
  return 0;
}
