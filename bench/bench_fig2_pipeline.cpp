// Reproduces Fig. 2: the three-iteration instrumented compile flow.
// For each app: per-iteration source line counts and image sizes (the
// paper's red/blue growth), plus the convergence property (iteration 3
// is a fixpoint).
#include <cstdio>

#include "bench/bench_util.h"

using namespace eilid;
using namespace eilid::bench;

int main() {
  std::printf("Fig. 2: EILID instrumented compilation (three iterations)\n");
  std::printf("%-18s | %-21s | %-21s | %-21s | %s\n", "Software",
              "build 1 (original)", "build 2 (stale addrs)",
              "build 3 (final)", "converged");
  std::printf("%-18s | %10s %10s | %10s %10s | %10s %10s |\n", "", "lines",
              "bytes", "lines", "bytes", "lines", "bytes");
  print_rule(110);
  Fleet fleet;  // each app is a distinct content hash: 7 pipeline runs
  for (const auto& app : apps::table4_apps()) {
    const core::BuildResult& build = *fleet.build(app.source, app.name);
    if (build.iterations.size() != 3) {
      std::printf("%-18s | unexpected iteration count %zu\n", app.name.c_str(),
                  build.iterations.size());
      return 1;
    }
    const auto& it = build.iterations;
    std::printf("%-18s | %10zu %10zu | %10zu %10zu | %10zu %10zu | %s\n",
                app.name.c_str(), it[0].source_lines, it[0].image_bytes,
                it[1].source_lines, it[1].image_bytes, it[2].source_lines,
                it[2].image_bytes, build.converged ? "yes" : "NO");
  }
  std::printf(
      "\nIterations 2 and 3 have identical layout (only embedded numeric\n"
      "return addresses differ), which is why the third build's .lst is\n"
      "final -- exactly the paper's argument for stopping at three.\n");
  return 0;
}
