// Assembler tests: parsing, emulated expansion, directives, symbol
// resolution, sizing invariants, listings and error reporting.
#include <gtest/gtest.h>

#include "common/error.h"
#include "masm/assembler.h"
#include "masm/emulated.h"
#include "masm/parser.h"

namespace eilid::masm {
namespace {

AssembledUnit asm_ok(const std::string& body) {
  return assemble_text(".org 0xe000\n" + body, "test");
}

TEST(Parser, LabelsAndInstructions) {
  Statement s = parse_line("loop: mov #0x10, r5 ; comment", "t", 1);
  EXPECT_EQ(s.label, "loop");
  EXPECT_EQ(s.kind, Statement::Kind::kInstruction);
  EXPECT_EQ(s.mnemonic, "mov");
  ASSERT_EQ(s.operands.size(), 2u);
  EXPECT_EQ(s.operands[0].kind, OperandExpr::Kind::kImmediate);
  EXPECT_EQ(s.operands[0].expr.offset, 0x10);
  EXPECT_EQ(s.operands[1].kind, OperandExpr::Kind::kReg);
  EXPECT_EQ(s.operands[1].reg, 5);
}

TEST(Parser, OperandKinds) {
  auto op = [](const std::string& t) { return parse_operand(t, "t", 1); };
  EXPECT_EQ(op("r12").kind, OperandExpr::Kind::kReg);
  EXPECT_EQ(op("#42").kind, OperandExpr::Kind::kImmediate);
  EXPECT_EQ(op("&0x0122").kind, OperandExpr::Kind::kAbsolute);
  EXPECT_EQ(op("@r4").kind, OperandExpr::Kind::kIndirect);
  EXPECT_EQ(op("@r4+").kind, OperandExpr::Kind::kIndirectInc);
  EXPECT_EQ(op("4(r1)").kind, OperandExpr::Kind::kIndexed);
  EXPECT_EQ(op("-2(r1)").expr.offset, -2);
  EXPECT_EQ(op("label").kind, OperandExpr::Kind::kSymbolic);
  EXPECT_EQ(op("buf+2").expr.symbol, "buf");
  EXPECT_EQ(op("buf+2").expr.offset, 2);
  // The paper's Fig. 4 spelling "@(r1)" is tolerated.
  EXPECT_EQ(op("@(r1)").kind, OperandExpr::Kind::kIndirect);
  EXPECT_EQ(op("#'A'").expr.offset, 'A');
}

TEST(Parser, RejectsBadOperands) {
  EXPECT_THROW(parse_operand("@r99", "t", 1), AsmError);
  EXPECT_THROW(parse_operand("4(notreg)", "t", 1), AsmError);
  EXPECT_THROW(parse_operand("#", "t", 1), AsmError);
}

TEST(Emulated, RetExpandsToMovSpPc) {
  Statement s = parse_line("ret", "t", 1);
  EXPECT_TRUE(expand_emulated(s, "t"));
  EXPECT_EQ(s.mnemonic, "mov");
  ASSERT_EQ(s.operands.size(), 2u);
  EXPECT_EQ(s.operands[0].kind, OperandExpr::Kind::kIndirectInc);
  EXPECT_EQ(s.operands[0].reg, 1);
  EXPECT_EQ(s.operands[1].reg, 0);
}

TEST(Emulated, AllFormsAssemble) {
  auto unit = asm_ok(R"(start:
    nop
    clrc
    setc
    clrz
    setz
    clrn
    setn
    dint
    eint
    pop r10
    clr r11
    clr.b &0x0200
    inc r12
    incd r12
    dec r12
    decd r12
    adc r13
    sbc r13
    dadc r13
    tst r14
    inv r15
    rla r4
    rlc r4
    br #start
    ret
)");
  EXPECT_GT(unit.image.size_bytes(), 20u);
}

TEST(Emulated, NopIsCanonical) {
  auto unit = asm_ok("nop\n");
  EXPECT_EQ(unit.image.word_at(0xE000), 0x4303);
}

TEST(Emulated, ArityErrors) {
  EXPECT_THROW(asm_ok("ret r5\n"), AsmError);
  EXPECT_THROW(asm_ok("pop\n"), AsmError);
  EXPECT_THROW(asm_ok("inc r1, r2\n"), AsmError);
}

TEST(Assembler, SymbolResolutionForwardAndBack) {
  auto unit = asm_ok(R"(    jmp fwd
back:
    nop
fwd:
    jmp back
)");
  EXPECT_EQ(unit.symbols.at("back"), 0xE002);
  EXPECT_EQ(unit.symbols.at("fwd"), 0xE004);
}

TEST(Assembler, EquAndExpressions) {
  auto unit = asm_ok(R"(.equ BASE, 0x0200
.equ NEXT, BASE+4
    mov &BASE, r10
    mov #NEXT, r11
data:
    .word BASE, NEXT, data, data+2
)");
  EXPECT_EQ(unit.symbols.at("BASE"), 0x0200);
  EXPECT_EQ(unit.symbols.at("NEXT"), 0x0204);
  uint16_t data = unit.symbols.at("data");
  EXPECT_EQ(unit.image.word_at(data), 0x0200);
  EXPECT_EQ(unit.image.word_at(data + 2), 0x0204);
  EXPECT_EQ(unit.image.word_at(data + 4), data);
  EXPECT_EQ(unit.image.word_at(data + 6), data + 2);
}

TEST(Assembler, SymbolicImmediatesNeverCompress) {
  // #TWO resolves to 2 (CG-eligible) but must keep its extension word
  // so that pass-1 sizing matches pass-2 encoding.
  auto unit = asm_ok(R"(.equ TWO, 2
    mov #TWO, r10
    mov #2, r11
)");
  // First mov: 2 words; second mov: 1 word (literal CG).
  EXPECT_EQ(unit.image.size_bytes(), 6u);
}

TEST(Assembler, DataDirectives) {
  auto unit = asm_ok(R"(bytes:
    .byte 1, 2, 0xFF
text:
    .asciz "Hi\n"
    .align 2
words:
    .word 0xBEEF
    .space 4
after:
)");
  uint16_t b = unit.symbols.at("bytes");
  EXPECT_EQ(unit.image.byte_at(b), 1);
  EXPECT_EQ(unit.image.byte_at(b + 2), 0xFF);
  uint16_t t = unit.symbols.at("text");
  EXPECT_EQ(unit.image.byte_at(t), 'H');
  EXPECT_EQ(unit.image.byte_at(t + 2), '\n');
  EXPECT_EQ(unit.image.byte_at(t + 3), 0);
  uint16_t w = unit.symbols.at("words");
  EXPECT_EQ(w % 2, 0) << ".align 2 must have realigned";
  EXPECT_EQ(unit.image.word_at(w), 0xBEEF);
  EXPECT_EQ(unit.symbols.at("after"), w + 6);
}

TEST(Assembler, VectorsInstallHandlers) {
  auto unit = asm_ok(R"(main:
    nop
isr:
    reti
.vector 15, main
.vector 8, isr
)");
  EXPECT_EQ(unit.image.word_at(0xFFFE), unit.symbols.at("main"));
  EXPECT_EQ(unit.image.word_at(0xFFF0), unit.symbols.at("isr"));
  EXPECT_EQ(unit.vectors.at(15), "main");
}

TEST(Assembler, Errors) {
  EXPECT_THROW(assemble_text("mov r4, r5\n", "t"), AsmError);  // before .org
  EXPECT_THROW(asm_ok("bogus r4\n"), AsmError);
  EXPECT_THROW(asm_ok("dup:\ndup:\n"), AsmError);
  EXPECT_THROW(asm_ok("jmp nowhere\n"), AsmError);
  EXPECT_THROW(asm_ok(".byte 1\nmisaligned: nop\n"), AsmError);
  EXPECT_THROW(asm_ok(".vector 16, main\n"), AsmError);
  EXPECT_THROW(asm_ok("    mov #0x123z, r4\n"), AsmError);
}

TEST(Assembler, JumpRangeEnforced) {
  std::string body = "    jmp far\n";
  for (int i = 0; i < 600; ++i) body += "    nop\n";
  body += "far:\n    nop\n";
  EXPECT_THROW(asm_ok(body), AsmError);
}

TEST(Listing, AddressesAndNextAddress) {
  auto unit = asm_ok(R"(    mov #0x1234, r10
    call #0xe100
    ret
)");
  const auto& lines = unit.listing.lines;
  // Line 0 is the .org; instruction lines follow.
  size_t mov_idx = 1;
  EXPECT_TRUE(lines[mov_idx].is_instruction);
  EXPECT_EQ(lines[mov_idx].address, 0xE000);
  EXPECT_EQ(lines[mov_idx].bytes.size(), 4u);
  EXPECT_EQ(unit.listing.next_address(mov_idx), 0xE004);
  EXPECT_EQ(lines[mov_idx + 1].mnemonic, "call");
  std::string rendered = unit.listing.render();
  EXPECT_NE(rendered.find("e000"), std::string::npos);
}

TEST(Image, OverlapDetection) {
  MemoryImage a;
  a.emit_word(0x1000, 0x1111);
  MemoryImage b;
  b.emit_word(0x1001, 0x2222);  // overlaps a's second byte
  EXPECT_THROW(a.merge(b), LinkError);
}

TEST(Image, ChunksAreContiguousRuns) {
  MemoryImage a;
  a.emit_word(0x1000, 0x1111);
  a.emit_word(0x1002, 0x2222);
  a.emit_word(0x2000, 0x3333);
  auto chunks = a.chunks();
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].base, 0x1000);
  EXPECT_EQ(chunks[0].data.size(), 4u);
  EXPECT_EQ(chunks[1].base, 0x2000);
}

TEST(Assembler, EndStopsAssembly) {
  auto unit = asm_ok("    nop\n.end\n    bogus_mnemonic r5\n");
  EXPECT_EQ(unit.image.size_bytes(), 2u);
}

}  // namespace
}  // namespace eilid::masm
