// End-to-end smoke tests: every Table IV app assembles, runs to
// completion on the plain device AND on the EILID device, produces the
// same observable behaviour, and triggers zero enforcement resets.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "eilid/device.h"
#include "eilid/pipeline.h"

namespace eilid {
namespace {

class SmokeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SmokeTest, OriginalRunsToHalt) {
  const auto& app = apps::app_by_name(GetParam());
  core::BuildOptions opts;
  opts.eilid = false;
  core::BuildResult build = core::build_app(app.source, app.name, opts);
  core::Device device(build);
  app.setup(device.machine());
  auto run = device.run_to_symbol("halt", app.cycle_budget);
  EXPECT_EQ(run.cause, sim::StopCause::kBreakpoint)
      << "app did not reach halt";
  EXPECT_EQ(device.machine().violation_count(), 0u);
  EXPECT_EQ(app.check(device.machine()), "");
}

TEST_P(SmokeTest, EilidRunsToHaltWithoutFalsePositives) {
  const auto& app = apps::app_by_name(GetParam());
  core::BuildResult build = core::build_app(app.source, app.name);
  EXPECT_TRUE(build.converged);
  core::Device device(build);
  app.setup(device.machine());
  auto run = device.run_to_symbol("halt", 4 * app.cycle_budget);
  ASSERT_EQ(run.cause, sim::StopCause::kBreakpoint)
      << "instrumented app did not reach halt; resets="
      << device.machine().violation_count()
      << (device.machine().resets().size() > 1
              ? " last=" + sim::reset_reason_name(
                               device.machine().resets().back().reason)
              : "");
  EXPECT_EQ(device.machine().violation_count(), 0u)
      << sim::reset_reason_name(device.machine().resets().back().reason);
  EXPECT_EQ(app.check(device.machine()), "");
}

TEST_P(SmokeTest, EilidCostsMoreButBounded) {
  const auto& app = apps::app_by_name(GetParam());
  core::BuildOptions plain;
  plain.eilid = false;
  auto orig = core::build_app(app.source, app.name, plain);
  auto inst = core::build_app(app.source, app.name);
  EXPECT_GT(inst.binary_size(), orig.binary_size());
  // Paper Table IV: binary growth is at most ~22%; allow slack for our
  // veneer block, but it must stay well under 2x.
  EXPECT_LT(inst.binary_size(), 2 * orig.binary_size());
}

INSTANTIATE_TEST_SUITE_P(
    Table4Apps, SmokeTest,
    ::testing::Values("light_sensor", "ultrasonic_ranger", "fire_sensor",
                      "syringe_pump", "temp_sensor", "charlieplexing",
                      "lcd_sensor"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

}  // namespace
}  // namespace eilid
