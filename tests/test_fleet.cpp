// The Fleet facade: build-cache identity, N-device provisioning,
// policy-switched enforcement, and VerifierService state isolation
// between sessions that share one cached build.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "attacks/attack.h"
#include "common/error.h"
#include "eilid/fleet.h"

namespace eilid {
namespace {

const char* kTinyApp = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
    call #emit
    call #emit
halt:
    jmp halt
emit:
    mov.b #'x', &UART_TX
    ret
.vector 15, main
.end
)";

// ---------------------------------------------------------------- cache

TEST(FleetBuildCache, SameSourceBuildsOnce) {
  Fleet fleet;
  auto a = fleet.build(kTinyApp, "tiny");
  auto b = fleet.build(kTinyApp, "tiny");
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(fleet.pipeline_runs(), 1u);
  EXPECT_EQ(fleet.build_cache_hits(), 1u);
  EXPECT_EQ(fleet.build_cache_size(), 1u);
}

TEST(FleetBuildCache, DistinctOptionsBuildSeparately) {
  Fleet fleet;
  auto instrumented = fleet.build(kTinyApp, "tiny");
  auto plain = fleet.build(kTinyApp, "tiny", {.eilid = false});
  EXPECT_NE(instrumented.get(), plain.get());
  EXPECT_EQ(fleet.pipeline_runs(), 2u);
  EXPECT_EQ(fleet.build_cache_hits(), 0u);

  core::BuildOptions label_mode;
  label_mode.instrument.label_mode = true;
  auto labeled = fleet.build(kTinyApp, "tiny", label_mode);
  EXPECT_NE(labeled.get(), instrumented.get());
  EXPECT_EQ(fleet.pipeline_runs(), 3u);
}

TEST(FleetBuildCache, DistinctSourcesBuildSeparately) {
  Fleet fleet;
  auto a = fleet.build(kTinyApp, "tiny");
  std::string other = kTinyApp;
  other.insert(other.find("mov.b #'x'"), "nop\n    ");
  auto b = fleet.build(other, "tiny");
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(fleet.pipeline_runs(), 2u);
}

// Regression: the cache key must cover a prebuilt ROM's *image bytes*,
// not just its config. Two ROMs built from different configs (so their
// code differs) but relabelled with identical configs used to alias to
// one cache entry, flashing the second device with the first ROM.
TEST(FleetBuildCache, PrebuiltRomImageBytesAreKeyed) {
  core::RomInfo rom_a = core::build_rom();
  core::RomConfig bigger;
  bigger.table_capacity = 32;  // different layout -> different ROM code
  core::RomInfo rom_b = core::build_rom(bigger);
  ASSERT_NE(rom_a.unit.image.bytes(), rom_b.unit.image.bytes());
  rom_b.config = rom_a.config;  // configs now alias; only bytes differ

  core::BuildOptions with_a;
  with_a.prebuilt_rom = &rom_a;
  core::BuildOptions with_b;
  with_b.prebuilt_rom = &rom_b;

  Fleet fleet;
  auto a = fleet.build(kTinyApp, "tiny", with_a);
  auto b = fleet.build(kTinyApp, "tiny", with_b);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(fleet.pipeline_runs(), 2u);
  // Each cached build carries the ROM it was actually given.
  EXPECT_EQ(a->rom.unit.image.bytes(), rom_a.unit.image.bytes());
  EXPECT_EQ(b->rom.unit.image.bytes(), rom_b.unit.image.bytes());

  // The same prebuilt ROM is still a cache hit, not a rebuild.
  auto a2 = fleet.build(kTinyApp, "tiny", with_a);
  EXPECT_EQ(a2.get(), a.get());
  EXPECT_EQ(fleet.pipeline_runs(), 2u);
}

// ------------------------------------------------------------- registry

TEST(FleetRegistry, ProvisionManyFromOnePipelineRun) {
  Fleet fleet;
  for (int i = 0; i < 8; ++i) {
    DeviceSession& dev =
        fleet.provision("node-" + std::to_string(i), kTinyApp, "tiny",
                        EnforcementPolicy::kEilidHw);
    auto run = dev.run_to_symbol("halt", 100000);
    EXPECT_EQ(run.cause, sim::StopCause::kBreakpoint);
    EXPECT_EQ(dev.violation_count(), 0u);
    EXPECT_EQ(dev.machine().uart().tx_text(), "xx");
  }
  EXPECT_EQ(fleet.size(), 8u);
  EXPECT_EQ(fleet.pipeline_runs(), 1u);
  EXPECT_EQ(fleet.build_cache_hits(), 7u);
  // All sessions share the identical immutable build.
  EXPECT_EQ(fleet.at("node-0").shared_build().get(),
            fleet.at("node-7").shared_build().get());
}

TEST(FleetRegistry, DuplicateIdThrowsTyped) {
  Fleet fleet;
  fleet.provision("dup", kTinyApp, "tiny", EnforcementPolicy::kCasu);
  EXPECT_THROW(
      fleet.provision("dup", kTinyApp, "tiny", EnforcementPolicy::kCasu),
      FleetError);
}

TEST(FleetRegistry, UnknownIdAndDecommission) {
  Fleet fleet;
  EXPECT_EQ(fleet.find("ghost"), nullptr);
  EXPECT_THROW(fleet.at("ghost"), FleetError);
  fleet.provision("gone", kTinyApp, "tiny", EnforcementPolicy::kCfaBaseline);
  EXPECT_TRUE(fleet.verifier().enrolled("gone"));
  fleet.decommission("gone");
  EXPECT_EQ(fleet.size(), 0u);
  EXPECT_FALSE(fleet.verifier().enrolled("gone"));
}

TEST(FleetRegistry, EilidPolicyRejectsPlainBuild) {
  Fleet fleet;
  auto plain = fleet.build(kTinyApp, "tiny", {.eilid = false});
  EXPECT_THROW(fleet.deploy("mismatch", plain, EnforcementPolicy::kEilidHw),
               FleetError);
  // FleetError stays catchable through the legacy hierarchy.
  EXPECT_THROW(fleet.deploy("mismatch", plain, EnforcementPolicy::kEilidHw),
               ConfigError);
}

// Regression: deploy is exception-safe. When enrollment rejects the
// device after the session was registered, the registration is rolled
// back, and at no point does the verifier keep a DeviceSession* the
// fleet does not own (the old enroll-before-register order leaked a
// dangling pointer into the verifier if a later step threw).
TEST(FleetRegistry, FailedDeployLeavesNoTrace) {
  Fleet fleet;
  auto build = fleet.build(kTinyApp, "tiny", {.eilid = false});

  // Occupy the verifier slot behind the fleet's back with a standalone
  // session, so the fleet's own enroll attempt is rejected.
  SessionOptions standalone_options;
  standalone_options.attest_key = fleet.device_key("clash");
  DeviceSession standalone("clash", build, EnforcementPolicy::kCfaBaseline,
                           standalone_options);
  fleet.verifier().enroll(standalone);

  EXPECT_THROW(
      fleet.deploy("clash", build, EnforcementPolicy::kCfaBaseline),
      FleetError);

  // The failed deploy is invisible: no registry entry, no count, and
  // the verifier still serves the session it actually knows.
  EXPECT_EQ(fleet.find("clash"), nullptr);
  EXPECT_EQ(fleet.size(), 0u);
  EXPECT_TRUE(fleet.sessions().empty());
  EXPECT_TRUE(fleet.verifier().enrolled("clash"));
  auto sweep = fleet.verifier().verify_all();
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_TRUE(sweep[0].attested);
  EXPECT_TRUE(sweep[0].mac_ok);

  // The id becomes deployable once the standalone claim is withdrawn.
  fleet.verifier().withdraw("clash");
  DeviceSession& redeployed =
      fleet.deploy("clash", build, EnforcementPolicy::kCfaBaseline);
  EXPECT_EQ(fleet.find("clash"), &redeployed);
  EXPECT_EQ(fleet.size(), 1u);
}

TEST(FleetRegistry, UnknownSymbolThrowsTyped) {
  Fleet fleet;
  DeviceSession& dev =
      fleet.provision("sym", kTinyApp, "tiny", EnforcementPolicy::kCasu);
  EXPECT_THROW(dev.symbol("nonexistent"), FleetError);
}

// ------------------------------------------------------ policy behavior

// The same stack-smash exploit lands differently per policy: kNone and
// kCasu devices are hijacked, the kCfaBaseline device is hijacked but
// convicted at the next attestation, the kEilidHw device resets before
// the hijacked return is ever used.
TEST(FleetPolicies, HijackOutcomePerPolicy) {
  const auto& app = apps::vuln_gateway();
  Fleet fleet;

  auto hijack = [&](DeviceSession& dev) {
    dev.machine().uart().feed(
        attacks::overflow_ret_payload(dev.symbol("unlock")));
    dev.run_to_symbol("halt", app.cycle_budget);
    return dev.machine().uart().tx_text().find('U') != std::string::npos;
  };

  DeviceSession& none = fleet.provision("gw-none", app.source, app.name,
                                        EnforcementPolicy::kNone);
  EXPECT_EQ(none.hw_monitor(), nullptr);
  EXPECT_EQ(none.cfa_monitor(), nullptr);
  EXPECT_TRUE(hijack(none));

  DeviceSession& casu = fleet.provision("gw-casu", app.source, app.name,
                                        EnforcementPolicy::kCasu);
  EXPECT_NE(casu.hw_monitor(), nullptr);
  EXPECT_TRUE(hijack(casu));  // code reuse defeats CASU alone

  DeviceSession& cfa =
      fleet.provision("gw-cfa", app.source, app.name,
                      EnforcementPolicy::kCfaBaseline,
                      {.cfa = {.log_capacity = 8192}});
  ASSERT_NE(cfa.cfa_monitor(), nullptr);
  EXPECT_TRUE(hijack(cfa));  // detection is not prevention...
  auto verdict = fleet.verifier().attest(cfa);
  EXPECT_TRUE(verdict.mac_ok);
  EXPECT_TRUE(verdict.seq_ok);
  EXPECT_FALSE(verdict.path_ok);  // ...but the verifier convicts the log
  ASSERT_TRUE(verdict.first_bad.has_value());
  EXPECT_EQ(verdict.first_bad->to, cfa.symbol("unlock"));

  DeviceSession& eilid =
      fleet.provision("gw-eilid", app.source, app.name,
                      EnforcementPolicy::kEilidHw, {.halt_on_reset = true});
  EXPECT_FALSE(hijack(eilid));
  EXPECT_GT(eilid.violation_count(), 0u);
  EXPECT_EQ(eilid.last_reset_reason(), "cfi-return-mismatch");

  // Both plain-policy devices shared one build; EILID built once more.
  EXPECT_EQ(fleet.pipeline_runs(), 2u);
}

// A session with no CFA monitor has no evidence to collect: attest()
// reports attested = false (never ok()) rather than aborting a mixed
// sweep, while explicit enroll() of such a session is still an error.
TEST(FleetPolicies, AttestingNonCfaSessionReportsUnattested) {
  Fleet fleet;
  DeviceSession& dev =
      fleet.provision("plain", kTinyApp, "tiny", EnforcementPolicy::kCasu);

  auto verdict = fleet.verifier().attest(dev);
  EXPECT_EQ(verdict.device_id, "plain");
  EXPECT_FALSE(verdict.attested);
  EXPECT_FALSE(verdict.mac_ok);
  EXPECT_FALSE(verdict.seq_ok);
  EXPECT_FALSE(verdict.path_ok);
  EXPECT_FALSE(verdict.ok());
  // The non-CFA device was not silently enrolled into sweeps.
  EXPECT_FALSE(fleet.verifier().enrolled("plain"));
  EXPECT_TRUE(fleet.verifier().verify_all().empty());

  EXPECT_THROW(fleet.verifier().enroll(dev), FleetError);
}

// ----------------------------------------------------- verifier service

// Two sessions share one cached build but enforce independently: a
// hijack on (and power cycle of) one device must not perturb the
// other's attestation replay state or sequence numbers.
TEST(VerifierServiceTest, ReplayStateIsolatedBetweenSessions) {
  const auto& app = apps::vuln_gateway();
  Fleet fleet;
  // halt_on_reset keeps the victim parked at its post-hijack reset, so
  // its log holds the hijack evidence rather than thousands of
  // post-reboot polling edges.
  SessionOptions big_log{.halt_on_reset = true,
                         .cfa = {.log_capacity = 8192}};
  DeviceSession& victim = fleet.provision(
      "victim", app.source, app.name, EnforcementPolicy::kCfaBaseline, big_log);
  DeviceSession& healthy = fleet.provision(
      "healthy", app.source, app.name, EnforcementPolicy::kCfaBaseline,
      big_log);
  ASSERT_EQ(victim.shared_build().get(), healthy.shared_build().get());

  // Distinct devices MAC with distinct derived keys.
  EXPECT_NE(fleet.device_key("victim"), fleet.device_key("healthy"));

  victim.machine().uart().feed(
      attacks::overflow_ret_payload(victim.symbol("unlock")));
  healthy.machine().uart().feed(attacks::benign_payload());

  victim.run_to_symbol("halt", app.cycle_budget);
  healthy.run_to_symbol("halt", app.cycle_budget);

  auto round1 = fleet.verifier().verify_all();
  ASSERT_EQ(round1.size(), 2u);
  for (const auto& r : round1) {
    EXPECT_TRUE(r.mac_ok) << r.device_id;
    EXPECT_TRUE(r.seq_ok) << r.device_id;
    if (r.device_id == "victim") {
      EXPECT_FALSE(r.path_ok);
    } else {
      EXPECT_TRUE(r.path_ok) << r.device_id;
    }
  }

  // Enforcement reset on the victim: power-cycle it and run it clean.
  victim.machine().uart().clear_tx();
  victim.power_cycle();
  victim.machine().uart().feed(attacks::benign_payload());
  victim.run_to_symbol("halt", app.cycle_budget);
  healthy.run(5000);

  // The healthy device's replay continues mid-stream with the next
  // sequence number; the victim's restart is accepted because its log
  // carries the reset marker.
  auto round2 = fleet.verifier().verify_all();
  for (const auto& r : round2) {
    EXPECT_TRUE(r.mac_ok) << r.device_id;
    EXPECT_TRUE(r.seq_ok) << r.device_id;
    EXPECT_TRUE(r.path_ok) << r.device_id;
    EXPECT_EQ(r.seq, 1u) << r.device_id;
  }
}

// A report replayed to the verifier out of sequence is flagged even
// though its MAC is genuine.
TEST(VerifierServiceTest, SequenceGapFlagged) {
  const auto& app = apps::vuln_gateway();
  Fleet fleet;
  DeviceSession& dev =
      fleet.provision("seq", app.source, app.name,
                      EnforcementPolicy::kCfaBaseline,
                      {.cfa = {.log_capacity = 8192}});
  dev.machine().uart().feed(attacks::benign_payload());
  dev.run(20000);

  // A report the verifier never sees: the device emitted it (seq 0),
  // but it was lost in transit.
  (void)dev.cfa_monitor()->take_report(/*nonce=*/999,
                                       dev.machine().cycles());
  dev.run(20000);
  auto verdict = fleet.verifier().attest(dev);
  EXPECT_TRUE(verdict.mac_ok);
  EXPECT_FALSE(verdict.seq_ok);  // seq 1 arrived where 0 was expected
}

}  // namespace
}  // namespace eilid
