// HMAC-SHA256 (RFC 2104 / FIPS 198-1), plus constant-time comparison.
// Used by the CASU secure-update protocol and the CFA attestation engine.
#ifndef EILID_CRYPTO_HMAC_H
#define EILID_CRYPTO_HMAC_H

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "crypto/sha256.h"

namespace eilid::crypto {

// Incremental HMAC-SHA256: stream the message through update() and
// call finish() once. finish() re-arms the object with the same key,
// so one instance can MAC a sequence of messages without re-deriving
// the pads. Lets callers (e.g. the CFA report MAC) stream large
// messages instead of materializing a contiguous byte vector.
class HmacSha256 {
 public:
  explicit HmacSha256(std::span<const uint8_t> key);

  void update(std::span<const uint8_t> data) { inner_.update(data); }
  Digest finish();

 private:
  std::array<uint8_t, Sha256::kBlockSize> ipad_;
  std::array<uint8_t, Sha256::kBlockSize> opad_;
  Sha256 inner_;
};

// MAC = HMAC-SHA256(key, message).
Digest hmac_sha256(std::span<const uint8_t> key, std::span<const uint8_t> message);
Digest hmac_sha256(std::string_view key, std::string_view message);

// Constant-time digest equality; RoT code must never early-exit on a
// MAC mismatch (timing side channel on the verifier path).
bool digest_equal(const Digest& a, const Digest& b);

// Simple KDF used to derive per-purpose device keys from a master key:
// HMAC(master, label). Mirrors how VRASED-family RoTs separate the
// attestation key from the update key.
Digest derive_key(std::span<const uint8_t> master, std::string_view label);

}  // namespace eilid::crypto

#endif  // EILID_CRYPTO_HMAC_H
