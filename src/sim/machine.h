// The simulated device: CPU + bus + peripherals + attached hardware
// monitors, with the reset behaviour CASU/EILID rely on (violation ->
// wipe volatile state -> restart from the reset vector).
#ifndef EILID_SIM_MACHINE_H
#define EILID_SIM_MACHINE_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/bus.h"
#include "sim/cpu.h"
#include "sim/monitor.h"
#include "sim/peripherals.h"
#include "sim/reset.h"

namespace eilid::sim {

enum class StopCause : uint8_t {
  kCycleBudget,   // ran out of max_cycles
  kBreakpoint,    // reached a host breakpoint address
  kDeviceReset,   // a reset occurred and halt_on_reset is set
  kIdle,          // CPU is off with no enabled interrupt source
};

struct RunResult {
  StopCause cause = StopCause::kCycleBudget;
  uint64_t cycles = 0;        // cycles consumed by this run() call
  uint16_t stop_pc = 0;
};

class Machine {
 public:
  explicit Machine(double clock_hz = 8e6);

  Bus& bus() { return bus_; }
  const Bus& bus() const { return bus_; }
  Cpu& cpu() { return cpu_; }
  TimerA& timer() { return timer_; }
  Adc& adc() { return adc_; }
  GpioPort& port1() { return port1_; }
  GpioPort& port2() { return port2_; }
  Uart& uart() { return uart_; }
  Ultrasonic& ranger() { return ranger_; }
  Lcd& lcd() { return lcd_; }

  // Monitors are owned by the caller (they usually outlive the run and
  // are inspected afterwards). Order of attachment = order of checks.
  void add_monitor(Monitor* monitor);

  // Copy raw bytes into backing memory (image loading).
  void load(uint16_t addr, std::span<const uint8_t> bytes);

  // Attach a predecoded image matching the bytes currently flashed
  // (call after every load). The CPU skips interpretive decode for PCs
  // the image covers until a store lands in the code range (see
  // Bus::code_generation()). Shared fleet-wide: all devices flashed
  // from one build point at one immutable table.
  void attach_decoded_image(std::shared_ptr<const isa::DecodedImage> image);

  // Additionally attach the build's superblock table (requires a
  // decoded image attached from the same flashed state): the run loop
  // then dispatches whole straight-line runs per iteration whenever no
  // attached monitor wants per-step callouts and no interrupt could
  // become deliverable mid-run. Invalidation is the decode-cache rule:
  // any store at or above the code floor drops the device back to
  // per-instruction (and, once the decoded snapshot is stale,
  // interpretive) execution.
  void attach_block_image(std::shared_ptr<const isa::BlockImage> blocks);

  // Power-on: reset CPU from the vector table, notify monitors.
  void power_on();

  // Execute until a stop condition. Breakpoints pause *before* the
  // instruction at the breakpoint address executes.
  RunResult run(uint64_t max_cycles);
  RunResult run_until(uint16_t breakpoint_pc, uint64_t max_cycles);

  // When true (default false) run() returns at the first device reset
  // instead of letting the device reboot and continue.
  void set_halt_on_reset(bool halt) { halt_on_reset_ = halt; }

  uint64_t cycles() const { return cycles_; }
  double clock_hz() const { return clock_hz_; }
  double micros(uint64_t cycles) const { return 1e6 * static_cast<double>(cycles) / clock_hz_; }

  const std::vector<ResetEvent>& resets() const { return resets_; }
  // Resets excluding the initial power-on, i.e. enforcement actions.
  size_t violation_count() const {
    return resets_.empty() ? 0 : resets_.size() - 1;
  }

  // How many superblocks the run loop dispatched (fast-path engagement
  // telemetry; the differential tests assert this is nonzero under the
  // superblock engine and zero elsewhere).
  uint64_t blocks_executed() const { return cpu_.blocks_executed(); }

 private:
  // Steps one instruction or services one interrupt; returns false when
  // the device is idle (CPU off, nothing pending).
  bool step_once();
  // Attempts one superblock dispatch at the current PC. Returns false
  // (nothing happened; caller must step_once) when block dispatch is
  // unavailable: no valid block table, a monitor wants per-step
  // callouts, an interrupt is pending and deliverable, the CPU is off,
  // or a violation latched outside stepping (update-engine paths).
  bool try_run_block(uint16_t breakpoint_pc, uint64_t cycle_budget);
  // Retire notification shared by both execution paths: per-step
  // callouts go only to monitors that want them; the control-transfer
  // callout fires for every monitor whenever to_pc != fallthrough.
  void notify_retire(uint16_t from_pc, uint16_t to_pc, uint16_t fallthrough);
  void do_reset(ResetReason reason, uint16_t pc);
  bool interrupts_allowed(uint16_t pc) const;
  std::optional<ResetReason> first_pending_violation() const;

  double clock_hz_;
  Bus bus_;
  Cpu cpu_;
  TimerA timer_;
  Adc adc_;
  GpioPort port1_;
  GpioPort port2_;
  Uart uart_;
  Ultrasonic ranger_;
  Lcd lcd_;
  std::vector<Monitor*> monitors_;
  std::vector<Monitor*> step_monitors_;  // subset with wants_step()
  std::vector<ResetEvent> resets_;
  uint64_t cycles_ = 0;
  bool halt_on_reset_ = false;
  bool reset_this_step_ = false;
};

}  // namespace eilid::sim

#endif  // EILID_SIM_MACHINE_H
