// Reproduces the paper's §VI micro numbers: per-call instrumentation
// overhead (store ~11.8us, check ~13.4us, pair ~25.2us at the paper's
// clock; 26 / 29 instructions for store / check). We measure the
// actual simulated store and check paths cycle-accurately, then run
// host-side throughput benchmarks (google-benchmark) for the build
// pipeline and the simulator.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "src/apps/apps.h"
#include "src/eilid/fleet.h"

using namespace eilid;

namespace {

// Micro app calling the EILIDsw stubs directly; labels t0..t3 bracket
// the store and check paths.
std::string micro_source(const core::RomInfo& rom) {
  auto equ = [&](const char* name) {
    return ".equ " + std::string(name) + ", " +
           std::to_string(rom.unit.symbols.at(name)) + "\n";
  };
  std::string s;
  s += equ("NS_EILID_store_ra");
  s += equ("NS_EILID_check_ra");
  s += R"(.org 0xe000
main:
    mov #0x1000, r1
    mov #0x1234, r6
t0:
    call #NS_EILID_store_ra
t1:
    mov #0x1234, r6
t2:
    call #NS_EILID_check_ra
t3:
    nop
halt:
    jmp halt
.vector 15, main
.end
)";
  return s;
}

struct PathCost {
  uint64_t cycles;
  uint64_t instructions;
};

void measure() {
  core::RomInfo rom = core::build_rom();
  core::BuildResult build;
  build.rom = rom;
  build.app = masm::assemble_text(micro_source(rom), "micro");
  // A hand-assembled build (the stubs are called directly, nothing to
  // instrument), flashed onto a standalone full-EILID session.
  DeviceSession device("micro", std::make_shared<const core::BuildResult>(
                                    std::move(build)),
                       EnforcementPolicy::kEilidHw);

  auto run_to = [&](const char* sym) {
    auto r = device.run_to_symbol(sym, 100000);
    if (r.cause != sim::StopCause::kBreakpoint) {
      std::printf("  micro app failed to reach %s\n", sym);
      std::exit(1);
    }
  };

  run_to("t0");
  uint64_t c0 = device.machine().cycles();
  uint64_t i0 = device.machine().cpu().instructions_retired();
  run_to("t1");
  uint64_t c1 = device.machine().cycles();
  uint64_t i1 = device.machine().cpu().instructions_retired();
  run_to("t2");
  run_to("t3");
  uint64_t c3 = device.machine().cycles();
  uint64_t i3 = device.machine().cpu().instructions_retired();
  run_to("halt");
  if (device.machine().violation_count() != 0) {
    std::printf("  unexpected violation during micro measurement\n");
    std::exit(1);
  }

  // Include the argument-load mov (2 cycles, 1 instruction) that the
  // instrumenter inserts before each stub call.
  PathCost store{c1 - c0 + 2, i1 - i0 + 1};
  PathCost check{c3 - (c1 + 2), i3 - i1};  // t1..t3 spans mov + call path

  double mhz = device.machine().clock_hz() / 1e6;
  std::printf("EILIDsw micro costs (simulated, %.1f MHz):\n", mhz);
  std::printf("  %-28s %4llu cycles  %3llu instructions  %6.2f us\n",
              "store path (P1 store_ra)",
              static_cast<unsigned long long>(store.cycles),
              static_cast<unsigned long long>(store.instructions),
              store.cycles / mhz);
  std::printf("  %-28s %4llu cycles  %3llu instructions  %6.2f us\n",
              "check path (P1 check_ra)",
              static_cast<unsigned long long>(check.cycles),
              static_cast<unsigned long long>(check.instructions),
              check.cycles / mhz);
  std::printf("  %-28s %4llu cycles  %3llu instructions  %6.2f us\n",
              "per protected call (pair)",
              static_cast<unsigned long long>(store.cycles + check.cycles),
              static_cast<unsigned long long>(store.instructions +
                                              check.instructions),
              (store.cycles + check.cycles) / mhz);
  std::printf(
      "  paper: store 11.8 us, check 13.4 us, pair ~25.2 us (26/29 added\n"
      "  instructions); ratios match -- absolute us depend on the clock.\n\n");
}

// A fresh Fleet per iteration keeps the content-hash cache cold, so
// this measures the full three-iteration pipeline through the public
// facade (Fleet construction itself is negligible).
void BM_BuildPipelineEilid(benchmark::State& state) {
  static const core::RomInfo rom = core::build_rom();
  const auto& app = apps::table4_apps()[0];
  core::BuildOptions options;
  options.prebuilt_rom = &rom;
  options.verify_convergence = false;
  for (auto _ : state) {
    Fleet fleet;
    benchmark::DoNotOptimize(fleet.build(app.source, app.name, options));
  }
}
BENCHMARK(BM_BuildPipelineEilid);

void BM_BuildPipelineOriginal(benchmark::State& state) {
  const auto& app = apps::table4_apps()[0];
  core::BuildOptions options;
  options.eilid = false;
  for (auto _ : state) {
    Fleet fleet;
    benchmark::DoNotOptimize(fleet.build(app.source, app.name, options));
  }
}
BENCHMARK(BM_BuildPipelineOriginal);

// One cached build, a fresh session per iteration: flash + power-on +
// run-to-halt is the measured cost (the fleet path devices take).
void BM_SimulateLightSensor(benchmark::State& state) {
  const auto& app = apps::app_by_name("light_sensor");
  Fleet fleet;
  auto build = fleet.build(app.source, app.name);
  for (auto _ : state) {
    DeviceSession device("bench", build, EnforcementPolicy::kEilidHw);
    app.setup(device.machine());
    auto r = device.run_to_symbol("halt", 8 * app.cycle_budget);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SimulateLightSensor);

}  // namespace

int main(int argc, char** argv) {
  measure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
