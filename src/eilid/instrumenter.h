// EILIDinst: the compile-time assembly instrumenter (paper §IV-A).
//
// Passes:
//   P1  before every direct call: load the return address into r6 and
//       call NS_EILID_store_ra (Fig. 3); before every ret: load the
//       on-stack return address and call NS_EILID_check_ra (Fig. 4).
//   P2  at every ISR prologue: save r6/r7, load the saved interrupt
//       context and call NS_EILID_store_rfi (Fig. 5); before reti:
//       reload context, call NS_EILID_check_rfi, restore r6/r7
//       (Fig. 6).
//   P3  after boot (first instruction of the reset handler, which must
//       set up the stack pointer): call NS_EILID_init, register every
//       function entry with NS_EILID_store_ind (Fig. 7); before every
//       indirect call: validate the target with NS_EILID_check_ind and
//       store the return address (Fig. 8).
//
// Return addresses are numeric (taken from the previous iteration's
// listing -- the paper's three-iteration flow, Fig. 2) or assembler
// labels (single-pass mode, used as a compile-time ablation).
//
// Deviations from the paper, documented in DESIGN.md:
//   - ISR context offsets follow real MSP430 interrupt-entry layout
//     (SR at 0(SP), PC at 2(SP)) rather than Fig. 5's 0/-2 offsets.
//   - ISR instrumentation saves/restores r6 and r7: without this, an
//     interrupt arriving between an argument load and its veneer call
//     would corrupt CFI metadata of the interrupted sequence.
//   - Indirect call sites also store the return address (required for
//     the subsequent ret to pass P1; Fig. 8 omits it for brevity).
#ifndef EILID_EILID_INSTRUMENTER_H
#define EILID_EILID_INSTRUMENTER_H

#include <map>
#include <string>
#include <vector>

#include "eilid/config.h"
#include "eilid/rom_builder.h"
#include "masm/listing.h"

namespace eilid::core {

struct SiteCounts {
  int direct_calls = 0;
  int returns = 0;
  int isr_prologues = 0;
  int isr_epilogues = 0;
  int indirect_calls = 0;
  int functions_registered = 0;
  int spills = 0;

  int total() const {
    return direct_calls + returns + isr_prologues + isr_epilogues +
           indirect_calls;
  }
};

struct InstrumentResult {
  std::vector<std::string> lines;  // the instrumented source
  SiteCounts sites;
  std::vector<std::string> warnings;
};

class Instrumenter {
 public:
  // `rom_symbols` is the symbol table of the assembled EILIDsw image;
  // the instrumenter resolves the NS_EILID_* entry stubs from it.
  Instrumenter(InstrumentConfig config,
               std::map<std::string, uint16_t> rom_symbols)
      : config_(config), rom_symbols_(std::move(rom_symbols)) {}

  // Instrument `original`. In numeric mode, `prev_listing` must be the
  // listing of the previous build iteration (original build for the
  // first instrumentation); in label mode it may be null.
  InstrumentResult instrument(const std::vector<std::string>& original,
                              const masm::Listing* prev_listing) const;

 private:
  InstrumentConfig config_;
  std::map<std::string, uint16_t> rom_symbols_;
};

}  // namespace eilid::core

#endif  // EILID_EILID_INSTRUMENTER_H
