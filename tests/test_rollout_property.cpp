// Property tests for staged-rollout determinism: random plans (wave
// sizes, budgets, holds, rate limits) over random mixed-version fleets
// with seeded failures (tampered transports, out-of-band-diverged
// devices) must produce
//
//   1. pooled wave-by-wave reports bit-identical to the serial run's
//      on an identically constructed fleet, and
//   2. halt decisions that are a pure function of the per-wave
//      verdicts: recomputing failures/allowances from the reported
//      outcomes alone reproduces exactly the halted / waves_applied /
//      per-wave within_budget the scheduler decided.
//
// Every case is reproducible from its printed seed.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "eilid/fleet.h"
#include "eilid/rollout.h"

namespace eilid {
namespace {

// Firmware generations with genuinely different layouts (the
// emit-call count shifts every later address).
std::string firmware(int generation) {
  std::string s = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
)";
  for (int i = 0; i < generation + 1; ++i) s += "    call #emit\n";
  s += R"(halt:
    jmp halt
emit:
    mov.b #')";
  s += static_cast<char>('0' + generation);
  s += R"(', &UART_TX
    ret
.vector 15, main
.end
)";
  return s;
}

struct GeneratedCase {
  size_t devices = 0;
  std::set<size_t> forged;    // devices whose transport is tampered
  std::set<size_t> diverged;  // devices patched out of band
  RolloutPlan plan;
};

std::string device_id(size_t i) {
  // Zero-padded so lexicographic enrollment-id order == deploy order.
  std::string n = std::to_string(i);
  return "dev-" + std::string(n.size() < 2 ? 2 - n.size() : 0, '0') + n;
}

GeneratedCase generate(uint64_t seed) {
  common::SeededRng rng(seed);
  GeneratedCase c;
  c.devices = static_cast<size_t>(rng.range(6, 16));
  for (size_t i = 0; i < c.devices; ++i) {
    if (rng.chance(1, 5)) {
      c.forged.insert(i);
    } else if (rng.chance(1, 8)) {
      c.diverged.insert(i);
    }
  }

  // Random holds: up to 2 devices pinned.
  const int held = rng.range(0, 2);
  std::set<size_t> held_set;
  while (static_cast<int>(held_set.size()) < held) {
    held_set.insert(rng.below(c.devices));
  }
  if (!held_set.empty()) {
    HoldSpec hold{"ab", {}};
    for (size_t i : held_set) hold.device_ids.push_back(device_id(i));
    c.plan.holds.push_back(std::move(hold));
  }

  // Random waves: fractional cuts, last one widening to the rest half
  // the time.
  const int waves = rng.range(1, 4);
  const double cuts[] = {0.25, 0.4, 0.6, 1.0};
  for (int w = 0; w < waves; ++w) {
    WaveSpec wave;
    wave.fraction = (w == waves - 1 && rng.chance(1, 2))
                        ? 1.0
                        : cuts[rng.range(0, 3)];
    c.plan.waves.push_back(wave);
  }

  c.plan.budget.max_count = static_cast<size_t>(rng.range(0, 2));
  if (rng.chance(1, 2)) c.plan.budget.max_fraction = 0.25;
  c.plan.max_in_flight = static_cast<size_t>(rng.range(0, 3));
  return c;
}

struct RunState {
  std::unique_ptr<Fleet> fleet;
  RolloutReport report;
};

RunState run_case(const GeneratedCase& c, bool pooled) {
  RunState state;
  state.fleet = std::make_unique<Fleet>();
  Fleet& fleet = *state.fleet;

  // Mixed-version fleet: even devices on generation 1, odd on 2; one
  // campaign heals both onto generation 3.
  for (size_t i = 0; i < c.devices; ++i) {
    DeviceSession& dev =
        fleet.provision(device_id(i), firmware(i % 2 == 0 ? 1 : 2), "fw",
                        EnforcementPolicy::kCfaBaseline);
    dev.run_to_symbol("halt", 100000);
  }

  for (size_t i : c.diverged) {
    DeviceSession& dev = fleet.at(device_id(i));
    const crypto::Digest key = fleet.update_key(dev.id());
    casu::UpdateAuthority authority(
        std::span<const uint8_t>(key.data(), key.size()));
    EXPECT_EQ(dev.apply_update(authority.make_package(
                  0xFB00, dev.firmware_version() + 1, {0x03, 0x43})),
              casu::UpdateStatus::kApplied);
  }

  CampaignOptions options;
  std::set<std::string> forged_ids;
  for (size_t i : c.forged) forged_ids.insert(device_id(i));
  options.tamper = [forged_ids](const DeviceSession& dev,
                                casu::UpdatePackage& package) {
    if (forged_ids.count(dev.id()) != 0) package.mac[0] ^= 0xFF;
  };

  CampaignScheduler scheduler = fleet.plan_rollout(
      fleet.build(firmware(3), "fw", {.eilid = false}), c.plan, options);
  if (pooled) {
    common::ThreadPool pool(4);
    state.report = scheduler.run(pool);
  } else {
    state.report = scheduler.run();
  }
  return state;
}

class RolloutPlans : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RolloutPlans, PooledReportBitIdenticalToSerial) {
  const uint64_t seed = GetParam();
  const GeneratedCase c = generate(seed);
  RunState serial = run_case(c, /*pooled=*/false);
  RunState pooled = run_case(c, /*pooled=*/true);
  EXPECT_TRUE(serial.report == pooled.report) << "seed " << seed;

  // Determinism holds wave by wave, not just in aggregate.
  ASSERT_EQ(serial.report.waves.size(), pooled.report.waves.size())
      << "seed " << seed;
  for (size_t w = 0; w < serial.report.waves.size(); ++w) {
    EXPECT_TRUE(serial.report.waves[w] == pooled.report.waves[w])
        << "seed " << seed << " wave " << w;
  }
}

TEST_P(RolloutPlans, HaltDecisionIsPureFunctionOfWaveVerdicts) {
  const uint64_t seed = GetParam();
  const GeneratedCase c = generate(seed);
  RunState state = run_case(c, /*pooled=*/(seed % 2) == 0);
  const RolloutReport& report = state.report;
  ASSERT_EQ(report.waves.size(), c.plan.waves.size()) << "seed " << seed;

  // Replay the scheduler's decision procedure from the reported
  // per-wave outcomes alone.
  bool halted = false;
  size_t applied = 0;
  for (const WaveOutcome& wave : report.waves) {
    EXPECT_EQ(wave.applied, !halted) << "seed " << seed << " " << wave.name;
    EXPECT_EQ(wave.allowance, c.plan.budget.allowance(wave.device_ids.size()))
        << "seed " << seed << " " << wave.name;
    if (!wave.applied) {
      EXPECT_TRUE(wave.updates.empty() && wave.gate.empty())
          << "seed " << seed << " " << wave.name;
      continue;
    }
    ++applied;
    std::set<std::string> failed;
    for (const UpdateOutcome& update : wave.updates) {
      if (!update.ok()) failed.insert(update.device_id);
    }
    for (const VerifierService::AttestResult& verdict : wave.gate) {
      if (verdict.attested && !verdict.ok()) failed.insert(verdict.device_id);
    }
    EXPECT_EQ(wave.failures, failed.size())
        << "seed " << seed << " " << wave.name;
    EXPECT_EQ(wave.within_budget, wave.failures <= wave.allowance)
        << "seed " << seed << " " << wave.name;
    if (!wave.within_budget) halted = true;
  }
  EXPECT_EQ(report.halted, halted) << "seed " << seed;
  EXPECT_EQ(report.waves_applied, applied) << "seed " << seed;
  EXPECT_EQ(report.halt_reason.empty(), !halted) << "seed " << seed;

  // Held devices never moved, whatever the plan rolled.
  for (const HoldSpec& hold : c.plan.holds) {
    for (const std::string& id : hold.device_ids) {
      EXPECT_NE(state.fleet->at(id).shared_build().get(),
                state.fleet->build(firmware(3), "fw", {.eilid = false}).get())
          << "seed " << seed << " " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RolloutPlans,
                         ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace eilid
