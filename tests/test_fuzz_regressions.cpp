// Every divergence the scenario fuzzer has found, pinned as a
// regression test next to the root cause. Convention: each test names
// the seed that first exposed the bug (reproducible via
//   bench_fuzz_soak --seed <seed> --programs 1 --mutations 1
// at the commit before the fix), states the root cause in one line,
// and asserts the minimal behavior that the fix guarantees.
#include <gtest/gtest.h>

#include "cfa/attestation.h"
#include "cfa/cfg.h"
#include "crypto/sha256.h"
#include "eilid/fleet.h"
#include "eilid/session.h"
#include "fuzz/attack_mutator.h"
#include "fuzz/harness.h"
#include "sim/machine.h"

namespace eilid::fuzz {
namespace {

crypto::Digest test_key() {
  crypto::Digest key{};
  key.fill(0x6B);
  return key;
}

constexpr uint64_t kNonce = 0xF00DF00DF00DF00Dull;

// A monitor with a tiny exercised path and matching CFG, so the benign
// report verifies clean end to end (mac_ok && path_ok) and any
// rejection in the tests below is attributable to the tamper alone.
struct Fixture {
  cfa::CfaMonitor monitor{test_key()};
  cfa::Cfg cfg;

  Fixture() {
    cfg.jump_edges.insert(cfa::Cfg::edge(0xE010, 0xE020));
    monitor.on_control_transfer(0xE010, 0xE020, 0xE012);
  }
};

// Found by the fuzzer at seed 0x1 (every seed reproduced it):
// "report tamper 'cycle-bump' accepted by the verifier". Root cause:
// CfaMonitor::mac_report authenticated only nonce|seq|edges, leaving
// Report.cycle outside the MAC, so a man-in-the-middle could backdate
// or postdate when the evidence was emitted without detection. Fixed
// by widening the MAC'd header to nonce|seq|cycle|dropped.
TEST(FuzzRegressions, ReportCycleFieldIsAuthenticated) {
  Fixture fx;
  const cfa::Report benign = fx.monitor.take_report(kNonce, /*cycle=*/12345);

  cfa::CfaVerifier clean_verifier(fx.cfg, test_key());
  const auto clean = clean_verifier.verify(benign, kNonce);
  ASSERT_TRUE(clean.mac_ok);
  ASSERT_TRUE(clean.path_ok);

  AttackMutator mutator(1);
  const auto tampered = mutator.tamper_report(benign, ReportTamper::kCycleBump);
  ASSERT_TRUE(tampered.has_value());
  ASSERT_NE(tampered->cycle, benign.cycle);
  cfa::CfaVerifier verifier(fx.cfg, test_key());
  EXPECT_FALSE(verifier.verify(*tampered, kNonce).mac_ok);
}

// Found by the fuzzer at seed 0x1 (same run, same root cause as the
// cycle bump): "report tamper 'dropped-bump' accepted by the
// verifier". An attacker who zeroes (or inflates) Report.dropped can
// hide that the on-device log overflowed -- i.e. that evidence was
// lost -- which is exactly the signal the verifier uses to size the
// next attestation window.
TEST(FuzzRegressions, ReportDroppedFieldIsAuthenticated) {
  Fixture fx;
  const cfa::Report benign = fx.monitor.take_report(kNonce, 12345);

  AttackMutator mutator(2);
  const auto tampered =
      mutator.tamper_report(benign, ReportTamper::kDroppedBump);
  ASSERT_TRUE(tampered.has_value());
  ASSERT_NE(tampered->dropped, benign.dropped);
  cfa::CfaVerifier verifier(fx.cfg, test_key());
  EXPECT_FALSE(verifier.verify(*tampered, kNonce).mac_ok);
}

// The fix in one assertion: the MAC is a function of every header
// field the verifier consumes, so no field can change independently.
TEST(FuzzRegressions, MacCoversEveryHeaderField) {
  Fixture fx;
  const cfa::Report benign = fx.monitor.take_report(kNonce, 12345);

  cfa::Report r = benign;
  r.seq += 1;
  EXPECT_NE(cfa::CfaMonitor::mac_report(test_key(), kNonce, r), benign.mac);
  r = benign;
  r.cycle += 1;
  EXPECT_NE(cfa::CfaMonitor::mac_report(test_key(), kNonce, r), benign.mac);
  r = benign;
  r.dropped += 1;
  EXPECT_NE(cfa::CfaMonitor::mac_report(test_key(), kNonce, r), benign.mac);
  EXPECT_NE(cfa::CfaMonitor::mac_report(test_key(), kNonce + 1, benign),
            benign.mac);
  EXPECT_EQ(cfa::CfaMonitor::mac_report(test_key(), kNonce, benign),
            benign.mac);
}

// Belt and braces over the whole tamper family: every kind the mutator
// can produce against this report must fail authentication.
TEST(FuzzRegressions, EveryApplicableReportTamperFailsTheMac) {
  Fixture fx;
  const cfa::Report benign = fx.monitor.take_report(kNonce, 12345);

  AttackMutator mutator(3);
  for (ReportTamper kind : kAllReportTampers) {
    const auto tampered = mutator.tamper_report(benign, kind);
    if (!tampered.has_value()) continue;  // needs edges this report lacks
    cfa::CfaVerifier verifier(fx.cfg, test_key());
    EXPECT_FALSE(verifier.verify(*tampered, kNonce).mac_ok)
        << report_tamper_name(kind);
  }
}

// Found by the fuzzer at seed 0x17b: "eilid-hw/interpretive: did not
// reach halt" — a *benign* instrumented program was convicted with
// kShadowStackOverflow at the first timer interrupt and reset-looped
// past any budget. Root cause: the reserved-register spill emitted
// `push r5 / <insn> / pop r5`, leaving a one-instruction window where
// r5 (the register-backed shadow-stack index) held the application's
// value; an IRQ landing there made the instrumented ISR prologue's
// store_rfi index the shadow stack with garbage. Fixed in the
// instrumenter by re-targeting the write at a scratch register seeded
// from r5 (`push rS / mov r5, rS / <insn with r5 -> rS> / pop rS`),
// so r5 is valid at every instruction boundary. This test hammers the
// window directly: a tight loop of r5 writes under a fast timer lands
// interrupts at every phase of the rewrite.
TEST(FuzzRegressions, IrqDuringReservedR5WriteDoesNotConvictBenignCode) {
  const std::string src = R"(.equ TIMER_CTL, 0x0100
.equ TIMER_CCR0, 0x0102
.equ TIMER_FLAGS, 0x0106
.org 0xE000
main:
    mov #0x1000, r1
    mov #251, &TIMER_CCR0
    mov #3, &TIMER_CTL
    eint
    mov #2000, r15
loop:
    mov #1234, r5
    xor #7, r5
    swpb r5
    dec r15
    jnz loop
    dint
    clr &TIMER_CTL
halt:
    jmp halt
timer_isr:
    clr &TIMER_FLAGS
    reti
.vector 15, main
.vector 8, timer_isr
.end
)";
  Fleet fleet;
  const auto build = fleet.build(src, "fuzz-regress-r5-irq", {});
  DeviceSession dev("r5-irq", build, EnforcementPolicy::kEilidHw, {});
  const sim::RunResult rr = dev.run_to_symbol("halt", 2'000'000);
  EXPECT_EQ(rr.cause, sim::StopCause::kBreakpoint);
  EXPECT_EQ(dev.violation_count(), 0u);
}

// The generated program that exposed the spill-window bug, replayed
// end to end through oracle 1 (it rolls r5-writing ops AND a timer
// IRQ): all engines and policies must agree and terminate.
TEST(FuzzRegressions, SpillWindowSeedRunsCleanThroughTheHarness) {
  DifferentialHarness harness;
  HarnessReport report;
  harness.check_program(0x17b, report);
  for (const std::string& failure : report.failures) {
    ADD_FAILURE() << failure;
  }
  EXPECT_EQ(report.engine_runs, 12);
}

// Found by the fuzzer at mutation seed 53 (`bench_fuzz_soak --seed 53
// --programs 0 --mutations 1` spun forever at 100% host CPU). Root
// cause: Machine::step_once's low-power branch early-returned whenever
// *any* interrupt line was pending -- but dispatch additionally
// requires GIE and the monitors' consent, so a diverted jump that
// landed on bytes decoding to an SR write with CPUOFF set and GIE
// clear (timer line already pending) advanced zero cycles per
// iteration and no budget could end the run. Fixed by making the wake
// test match the dispatch test exactly; a masked sleep now burns
// simulated idle time until the caller's budget expires, mirroring
// real hardware (which sleeps forever) without hanging the host.
TEST(FuzzRegressions, MaskedSleepWithPendingIrqHonorsTheCycleBudget) {
  // Start the timer, spin past its first expiry so the line is
  // pending, then enter CPUOFF without ever setting GIE.
  const std::string src = R"(.equ TIMER_CTL, 0x0100
.equ TIMER_CCR0, 0x0102
.org 0xE000
main:
    mov #0x1000, r1
    mov #50, &TIMER_CCR0
    mov #3, &TIMER_CTL
    mov #200, r15
wait:
    dec r15
    jnz wait
    bis #0x10, r2
halt:
    jmp halt
timer_isr:
    reti
.vector 15, main
.vector 8, timer_isr
.end
)";
  Fleet fleet;
  const auto build = fleet.build(src, "fuzz-regress-masked-sleep",
                                 {.eilid = false});
  DeviceSession dev("masked-sleep", build, EnforcementPolicy::kCfaBaseline, {});
  const sim::RunResult rr = dev.machine().run(100'000);
  EXPECT_EQ(rr.cause, sim::StopCause::kCycleBudget);
  EXPECT_GE(rr.cycles, 100'000u);
}

// The hang reproduced through the front door: mutation seed 53's full
// battery must terminate (pre-fix it never returned, so any completion
// at all is the regression signal; the oracle checks ride along).
TEST(FuzzRegressions, MaskedSleepSeedRunsTheFullMutationBattery) {
  HarnessOptions options;
  options.seed = 53;
  DifferentialHarness harness(options);
  HarnessReport report;
  harness.check_mutation(options.seed, report);
  for (const std::string& failure : report.failures) {
    ADD_FAILURE() << failure;
  }
  EXPECT_GT(report.mutation_cases, 0);
  EXPECT_EQ(report.convicted + report.refused, report.mutation_cases);
}

// The original reproduce handle, end to end: the seed that exposed the
// bug now runs the full mutation battery (diverted jumps, repointed
// tables, tampered reports, flipped packages, corrupted chunks) with
// zero divergences.
TEST(FuzzRegressions, OriginalFailingSeedRunsCleanThroughTheHarness) {
  HarnessOptions options;
  options.seed = 1;
  DifferentialHarness harness(options);
  HarnessReport report;
  harness.check_mutation(options.seed, report);
  for (const std::string& failure : report.failures) {
    ADD_FAILURE() << failure;
  }
  EXPECT_GT(report.mutation_cases, 0);
  EXPECT_EQ(report.convicted + report.refused, report.mutation_cases);
}

}  // namespace
}  // namespace eilid::fuzz
