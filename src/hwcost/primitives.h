// FPGA resource cost model for monitor hardware, targeting 6-input-LUT
// fabrics (the paper synthesises for a Basys3 Artix-7).
//
// Cost assumptions (documented, deliberately simple):
//   - k-bit equality comparator: XNOR reduction, ceil(k/6)+1 LUTs for
//     k > 6, 1 LUT otherwise; 0 FFs.
//   - k-bit magnitude comparator (>=): carry-chain compare, ceil(k/4)
//     LUTs; 0 FFs.
//   - k-bit range check (lo <= x <= hi): two magnitude comparators
//     plus an AND (absorbed into the second LUT).
//   - k-bit register: k FFs, 0 LUTs (control absorbed).
//   - FSM with s states and t transition product terms:
//     ceil(log2 s) FFs, t LUTs.
//   - glue: explicit LUT count.
#ifndef EILID_HWCOST_PRIMITIVES_H
#define EILID_HWCOST_PRIMITIVES_H

#include <string>
#include <vector>

namespace eilid::hwcost {

struct Cost {
  int luts = 0;
  int ffs = 0;

  Cost operator+(const Cost& other) const {
    return {luts + other.luts, ffs + other.ffs};
  }
  Cost& operator+=(const Cost& other) {
    luts += other.luts;
    ffs += other.ffs;
    return *this;
  }
};

Cost eq_comparator(int width);
Cost magnitude_comparator(int width);
Cost range_check(int width);
Cost reg(int width);
Cost fsm(int states, int transition_terms);
Cost glue(int luts);

// A named line item in a monitor's bill of materials.
struct BomItem {
  std::string name;
  Cost cost;
};

struct BillOfMaterials {
  std::string design;
  std::vector<BomItem> items;

  Cost total() const {
    Cost t;
    for (const auto& item : items) t += item.cost;
    return t;
  }
};

}  // namespace eilid::hwcost

#endif  // EILID_HWCOST_PRIMITIVES_H
