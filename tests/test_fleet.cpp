// The Fleet facade: build-cache identity, N-device provisioning,
// policy-switched enforcement, and VerifierService state isolation
// between sessions that share one cached build.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "attacks/attack.h"
#include "common/error.h"
#include "eilid/fleet.h"

namespace eilid {
namespace {

const char* kTinyApp = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
    call #emit
    call #emit
halt:
    jmp halt
emit:
    mov.b #'x', &UART_TX
    ret
.vector 15, main
.end
)";

// ---------------------------------------------------------------- cache

TEST(FleetBuildCache, SameSourceBuildsOnce) {
  Fleet fleet;
  auto a = fleet.build(kTinyApp, "tiny");
  auto b = fleet.build(kTinyApp, "tiny");
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(fleet.pipeline_runs(), 1u);
  EXPECT_EQ(fleet.build_cache_hits(), 1u);
  EXPECT_EQ(fleet.build_cache_size(), 1u);
}

TEST(FleetBuildCache, DistinctOptionsBuildSeparately) {
  Fleet fleet;
  auto instrumented = fleet.build(kTinyApp, "tiny");
  auto plain = fleet.build(kTinyApp, "tiny", {.eilid = false});
  EXPECT_NE(instrumented.get(), plain.get());
  EXPECT_EQ(fleet.pipeline_runs(), 2u);
  EXPECT_EQ(fleet.build_cache_hits(), 0u);

  core::BuildOptions label_mode;
  label_mode.instrument.label_mode = true;
  auto labeled = fleet.build(kTinyApp, "tiny", label_mode);
  EXPECT_NE(labeled.get(), instrumented.get());
  EXPECT_EQ(fleet.pipeline_runs(), 3u);
}

TEST(FleetBuildCache, DistinctSourcesBuildSeparately) {
  Fleet fleet;
  auto a = fleet.build(kTinyApp, "tiny");
  std::string other = kTinyApp;
  other.insert(other.find("mov.b #'x'"), "nop\n    ");
  auto b = fleet.build(other, "tiny");
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(fleet.pipeline_runs(), 2u);
}

// Regression: the cache key must cover a prebuilt ROM's *image bytes*,
// not just its config. Two ROMs built from different configs (so their
// code differs) but relabelled with identical configs used to alias to
// one cache entry, flashing the second device with the first ROM.
TEST(FleetBuildCache, PrebuiltRomImageBytesAreKeyed) {
  core::RomInfo rom_a = core::build_rom();
  core::RomConfig bigger;
  bigger.table_capacity = 32;  // different layout -> different ROM code
  core::RomInfo rom_b = core::build_rom(bigger);
  ASSERT_NE(rom_a.unit.image.bytes(), rom_b.unit.image.bytes());
  rom_b.config = rom_a.config;  // configs now alias; only bytes differ

  core::BuildOptions with_a;
  with_a.prebuilt_rom = &rom_a;
  core::BuildOptions with_b;
  with_b.prebuilt_rom = &rom_b;

  Fleet fleet;
  auto a = fleet.build(kTinyApp, "tiny", with_a);
  auto b = fleet.build(kTinyApp, "tiny", with_b);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(fleet.pipeline_runs(), 2u);
  // Each cached build carries the ROM it was actually given.
  EXPECT_EQ(a->rom.unit.image.bytes(), rom_a.unit.image.bytes());
  EXPECT_EQ(b->rom.unit.image.bytes(), rom_b.unit.image.bytes());

  // The same prebuilt ROM is still a cache hit, not a rebuild.
  auto a2 = fleet.build(kTinyApp, "tiny", with_a);
  EXPECT_EQ(a2.get(), a.get());
  EXPECT_EQ(fleet.pipeline_runs(), 2u);
}

// ------------------------------------------------------------- registry

TEST(FleetRegistry, ProvisionManyFromOnePipelineRun) {
  Fleet fleet;
  for (int i = 0; i < 8; ++i) {
    DeviceSession& dev =
        fleet.provision("node-" + std::to_string(i), kTinyApp, "tiny",
                        EnforcementPolicy::kEilidHw);
    auto run = dev.run_to_symbol("halt", 100000);
    EXPECT_EQ(run.cause, sim::StopCause::kBreakpoint);
    EXPECT_EQ(dev.violation_count(), 0u);
    EXPECT_EQ(dev.machine().uart().tx_text(), "xx");
  }
  EXPECT_EQ(fleet.size(), 8u);
  EXPECT_EQ(fleet.pipeline_runs(), 1u);
  EXPECT_EQ(fleet.build_cache_hits(), 7u);
  // All sessions share the identical immutable build.
  EXPECT_EQ(fleet.at("node-0").shared_build().get(),
            fleet.at("node-7").shared_build().get());
}

TEST(FleetRegistry, DuplicateIdThrowsTyped) {
  Fleet fleet;
  fleet.provision("dup", kTinyApp, "tiny", EnforcementPolicy::kCasu);
  EXPECT_THROW(
      fleet.provision("dup", kTinyApp, "tiny", EnforcementPolicy::kCasu),
      FleetError);
}

TEST(FleetRegistry, UnknownIdAndDecommission) {
  Fleet fleet;
  EXPECT_EQ(fleet.find("ghost"), nullptr);
  EXPECT_THROW(fleet.at("ghost"), FleetError);
  fleet.provision("gone", kTinyApp, "tiny", EnforcementPolicy::kCfaBaseline);
  EXPECT_TRUE(fleet.verifier().enrolled("gone"));
  fleet.decommission("gone");
  EXPECT_EQ(fleet.size(), 0u);
  EXPECT_FALSE(fleet.verifier().enrolled("gone"));
}

TEST(FleetRegistry, EilidPolicyRejectsPlainBuild) {
  Fleet fleet;
  auto plain = fleet.build(kTinyApp, "tiny", {.eilid = false});
  EXPECT_THROW(fleet.deploy("mismatch", plain, EnforcementPolicy::kEilidHw),
               FleetError);
  // FleetError stays catchable through the legacy hierarchy.
  EXPECT_THROW(fleet.deploy("mismatch", plain, EnforcementPolicy::kEilidHw),
               ConfigError);
}

// Regression: deploy is exception-safe. When enrollment rejects the
// device after the session was registered, the registration is rolled
// back, and at no point does the verifier keep a DeviceSession* the
// fleet does not own (the old enroll-before-register order leaked a
// dangling pointer into the verifier if a later step threw).
TEST(FleetRegistry, FailedDeployLeavesNoTrace) {
  Fleet fleet;
  auto build = fleet.build(kTinyApp, "tiny", {.eilid = false});

  // Occupy the verifier slot behind the fleet's back with a standalone
  // session, so the fleet's own enroll attempt is rejected.
  SessionOptions standalone_options;
  standalone_options.attest_key = fleet.device_key("clash");
  DeviceSession standalone("clash", build, EnforcementPolicy::kCfaBaseline,
                           standalone_options);
  fleet.verifier().enroll(standalone);

  EXPECT_THROW(
      fleet.deploy("clash", build, EnforcementPolicy::kCfaBaseline),
      FleetError);

  // The failed deploy is invisible: no registry entry, no count, and
  // the verifier still serves the session it actually knows.
  EXPECT_EQ(fleet.find("clash"), nullptr);
  EXPECT_EQ(fleet.size(), 0u);
  EXPECT_TRUE(fleet.sessions().empty());
  EXPECT_TRUE(fleet.verifier().enrolled("clash"));
  auto sweep = fleet.verifier().verify_all();
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_TRUE(sweep[0].attested);
  EXPECT_TRUE(sweep[0].mac_ok);

  // The id becomes deployable once the standalone claim is withdrawn.
  fleet.verifier().withdraw("clash");
  DeviceSession& redeployed =
      fleet.deploy("clash", build, EnforcementPolicy::kCfaBaseline);
  EXPECT_EQ(fleet.find("clash"), &redeployed);
  EXPECT_EQ(fleet.size(), 1u);
}

TEST(FleetRegistry, UnknownSymbolThrowsTyped) {
  Fleet fleet;
  DeviceSession& dev =
      fleet.provision("sym", kTinyApp, "tiny", EnforcementPolicy::kCasu);
  EXPECT_THROW(dev.symbol("nonexistent"), FleetError);
}

// ------------------------------------------------------ policy behavior

// The same stack-smash exploit lands differently per policy: kNone and
// kCasu devices are hijacked, the kCfaBaseline device is hijacked but
// convicted at the next attestation, the kEilidHw device resets before
// the hijacked return is ever used.
TEST(FleetPolicies, HijackOutcomePerPolicy) {
  const auto& app = apps::vuln_gateway();
  Fleet fleet;

  auto hijack = [&](DeviceSession& dev) {
    dev.machine().uart().feed(
        attacks::overflow_ret_payload(dev.symbol("unlock")));
    dev.run_to_symbol("halt", app.cycle_budget);
    return dev.machine().uart().tx_text().find('U') != std::string::npos;
  };

  DeviceSession& none = fleet.provision("gw-none", app.source, app.name,
                                        EnforcementPolicy::kNone);
  EXPECT_EQ(none.hw_monitor(), nullptr);
  EXPECT_EQ(none.cfa_monitor(), nullptr);
  EXPECT_TRUE(hijack(none));

  DeviceSession& casu = fleet.provision("gw-casu", app.source, app.name,
                                        EnforcementPolicy::kCasu);
  EXPECT_NE(casu.hw_monitor(), nullptr);
  EXPECT_TRUE(hijack(casu));  // code reuse defeats CASU alone

  DeviceSession& cfa =
      fleet.provision("gw-cfa", app.source, app.name,
                      EnforcementPolicy::kCfaBaseline,
                      {.cfa = {.log_capacity = 8192}});
  ASSERT_NE(cfa.cfa_monitor(), nullptr);
  EXPECT_TRUE(hijack(cfa));  // detection is not prevention...
  auto verdict = fleet.verifier().attest(cfa);
  EXPECT_TRUE(verdict.mac_ok);
  EXPECT_TRUE(verdict.seq_ok);
  EXPECT_FALSE(verdict.path_ok);  // ...but the verifier convicts the log
  ASSERT_TRUE(verdict.first_bad.has_value());
  EXPECT_EQ(verdict.first_bad->to, cfa.symbol("unlock"));

  DeviceSession& eilid =
      fleet.provision("gw-eilid", app.source, app.name,
                      EnforcementPolicy::kEilidHw, {.halt_on_reset = true});
  EXPECT_FALSE(hijack(eilid));
  EXPECT_GT(eilid.violation_count(), 0u);
  EXPECT_EQ(eilid.last_reset_reason(), "cfi-return-mismatch");

  // Both plain-policy devices shared one build; EILID built once more.
  EXPECT_EQ(fleet.pipeline_runs(), 2u);
}

// A session with no CFA monitor has no evidence to collect: attest()
// reports attested = false (never ok()) rather than aborting a mixed
// sweep, while explicit enroll() of such a session is still an error.
TEST(FleetPolicies, AttestingNonCfaSessionReportsUnattested) {
  Fleet fleet;
  DeviceSession& dev =
      fleet.provision("plain", kTinyApp, "tiny", EnforcementPolicy::kCasu);

  auto verdict = fleet.verifier().attest(dev);
  EXPECT_EQ(verdict.device_id, "plain");
  EXPECT_FALSE(verdict.attested);
  EXPECT_FALSE(verdict.mac_ok);
  EXPECT_FALSE(verdict.seq_ok);
  EXPECT_FALSE(verdict.path_ok);
  EXPECT_FALSE(verdict.ok());
  // The non-CFA device was not silently enrolled into sweeps.
  EXPECT_FALSE(fleet.verifier().enrolled("plain"));
  EXPECT_TRUE(fleet.verifier().verify_all().empty());

  EXPECT_THROW(fleet.verifier().enroll(dev), FleetError);
}

// ----------------------------------------------------- verifier service

// Two sessions share one cached build but enforce independently: a
// hijack on (and power cycle of) one device must not perturb the
// other's attestation replay state or sequence numbers.
TEST(VerifierServiceTest, ReplayStateIsolatedBetweenSessions) {
  const auto& app = apps::vuln_gateway();
  Fleet fleet;
  // halt_on_reset keeps the victim parked at its post-hijack reset, so
  // its log holds the hijack evidence rather than thousands of
  // post-reboot polling edges.
  SessionOptions big_log{.halt_on_reset = true,
                         .cfa = {.log_capacity = 8192}};
  DeviceSession& victim = fleet.provision(
      "victim", app.source, app.name, EnforcementPolicy::kCfaBaseline, big_log);
  DeviceSession& healthy = fleet.provision(
      "healthy", app.source, app.name, EnforcementPolicy::kCfaBaseline,
      big_log);
  ASSERT_EQ(victim.shared_build().get(), healthy.shared_build().get());

  // Distinct devices MAC with distinct derived keys.
  EXPECT_NE(fleet.device_key("victim"), fleet.device_key("healthy"));

  victim.machine().uart().feed(
      attacks::overflow_ret_payload(victim.symbol("unlock")));
  healthy.machine().uart().feed(attacks::benign_payload());

  victim.run_to_symbol("halt", app.cycle_budget);
  healthy.run_to_symbol("halt", app.cycle_budget);

  auto round1 = fleet.verifier().verify_all();
  ASSERT_EQ(round1.size(), 2u);
  for (const auto& r : round1) {
    EXPECT_TRUE(r.mac_ok) << r.device_id;
    EXPECT_TRUE(r.seq_ok) << r.device_id;
    if (r.device_id == "victim") {
      EXPECT_FALSE(r.path_ok);
    } else {
      EXPECT_TRUE(r.path_ok) << r.device_id;
    }
  }

  // Enforcement reset on the victim: power-cycle it and run it clean.
  victim.machine().uart().clear_tx();
  victim.power_cycle();
  victim.machine().uart().feed(attacks::benign_payload());
  victim.run_to_symbol("halt", app.cycle_budget);
  healthy.run(5000);

  // The healthy device's replay continues mid-stream with the next
  // sequence number; the victim's restart is accepted because its log
  // carries the reset marker.
  auto round2 = fleet.verifier().verify_all();
  for (const auto& r : round2) {
    EXPECT_TRUE(r.mac_ok) << r.device_id;
    EXPECT_TRUE(r.seq_ok) << r.device_id;
    EXPECT_TRUE(r.path_ok) << r.device_id;
    EXPECT_EQ(r.seq, 1u) << r.device_id;
  }
}

// ----------------------------------------------------- update campaigns

// Firmware v1/v2 pair whose control-flow graphs genuinely differ (v2
// adds a call, shifting every address after it): replaying v1 evidence
// against v2's CFG would convict, so these catch any epoch mix-up.
const char* kFwV1 = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
    call #emit
    call #emit
halt:
    jmp halt
emit:
    mov.b #'1', &UART_TX
    ret
.vector 15, main
.end
)";

const char* kFwV2 = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
    call #emit
    call #emit
    call #emit
halt:
    jmp halt
emit:
    mov.b #'2', &UART_TX
    ret
.vector 15, main
.end
)";

// The full build-transition lifecycle: the campaign moves every device
// to the target build, bumps its own version, keeps it predecoded, and
// the next attestation verifies pre-update evidence against the old
// CFG and post-update evidence against the new one -- in one report.
TEST(UpdateCampaignTest, BuildTransitionUpdatesAttestAndStayPredecoded) {
  Fleet fleet;
  constexpr int kDevices = 4;
  for (int i = 0; i < kDevices; ++i) {
    DeviceSession& dev =
        fleet.provision("fw-" + std::to_string(i), kFwV1, "fw",
                        EnforcementPolicy::kCfaBaseline);
    // v1 evidence accumulates and is deliberately NOT attested before
    // the update: the single post-update report must span the epoch.
    dev.run_to_symbol("halt", 100000);
    EXPECT_EQ(dev.machine().uart().tx_text(), "11");
  }

  UpdateCampaign campaign = fleet.stage_update(kFwV2, "fw", {.eilid = false});
  // Capture one device's genuine package to replay after the rollout.
  casu::UpdatePackage captured = campaign.package_for(fleet.at("fw-0"));

  auto outcomes = campaign.roll_out();
  ASSERT_EQ(outcomes.size(), static_cast<size_t>(kDevices));
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.result, UpdateResult::kApplied) << outcome.device_id;
    EXPECT_EQ(outcome.version_before, 0u);
    EXPECT_EQ(outcome.version_after, 1u);
    EXPECT_TRUE(outcome.build_swapped);
    EXPECT_TRUE(outcome.cfg_staged);
    EXPECT_GT(outcome.payload_bytes, 0u);
  }
  // One campaign, one target build, shared by every session.
  EXPECT_EQ(fleet.pipeline_runs(), 2u);
  for (auto* dev : fleet.sessions()) {
    EXPECT_EQ(dev->shared_build().get(), campaign.target_build().get());
    EXPECT_EQ(dev->firmware_version(), 1u);
  }

  for (auto* dev : fleet.sessions()) {
    dev->machine().uart().clear_tx();
    dev->run_to_symbol("halt", 100000);
    EXPECT_EQ(dev->machine().uart().tx_text(), "222") << dev->id();
    // No permanent interpretive fall-back: the session decodes from
    // the target build's shared table.
    EXPECT_TRUE(dev->machine().cpu().decode_cache_valid()) << dev->id();
    EXPECT_EQ(dev->machine().cpu().decoded_image(),
              campaign.target_build()->decoded_image.get());
  }

  // One report per device covering [v1 edges, update, reset, v2 edges]:
  // clean only if the verifier swaps CFGs at the marker.
  for (const auto& verdict : fleet.verifier().verify_all()) {
    EXPECT_TRUE(verdict.ok()) << verdict.device_id << " first_bad="
                              << (verdict.first_bad ? verdict.first_bad->to : 0);
  }

  // Anti-rollback is per device: the captured (genuine, version-1)
  // package is stale for fw-0 now and must be refused.
  EXPECT_EQ(fleet.at("fw-0").apply_update(captured),
            casu::UpdateStatus::kRollback);
  // A second identical campaign is a fleet-wide no-op.
  for (const auto& outcome :
       fleet.stage_update(kFwV2, "fw", {.eilid = false}).roll_out()) {
    EXPECT_EQ(outcome.result, UpdateResult::kAlreadyCurrent);
  }
}

// A hijack that happened *before* an update must still be convicted by
// the post-update attestation: the epoch swap must not launder old
// evidence.
TEST(UpdateCampaignTest, PreUpdateHijackStillConvictedAfterUpdate) {
  const auto& app = apps::vuln_gateway();
  Fleet fleet;
  DeviceSession& dev = fleet.provision(
      "victim", app.source, app.name, EnforcementPolicy::kCfaBaseline,
      {.halt_on_reset = true, .cfa = {.log_capacity = 8192}});
  dev.machine().uart().feed(
      attacks::overflow_ret_payload(dev.symbol("unlock")));
  dev.run_to_symbol("halt", app.cycle_budget);
  uint16_t unlock = dev.symbol("unlock");

  // Vendor ships a patched gateway (an extra nop shifts the layout).
  std::string patched = app.source;
  patched.insert(patched.find("recv_packet:"), "    nop\n");
  auto outcome =
      fleet.stage_update(patched, app.name, {.eilid = false}).apply_to(dev);
  EXPECT_EQ(outcome.result, UpdateResult::kApplied);

  auto verdict = fleet.verifier().attest(dev);
  EXPECT_TRUE(verdict.mac_ok);
  EXPECT_FALSE(verdict.path_ok);  // the old-epoch evidence convicts
  ASSERT_TRUE(verdict.first_bad.has_value());
  EXPECT_EQ(verdict.first_bad->to, unlock);
}

// An update the verifier did not sanction (a valid package applied
// outside any campaign) leaves an epoch marker with no staged CFG: the
// next attestation flags the code change instead of trusting it.
TEST(UpdateCampaignTest, UnsanctionedUpdateFlaggedAtAttestation) {
  Fleet fleet;
  DeviceSession& dev =
      fleet.provision("rogue", kFwV1, "fw", EnforcementPolicy::kCfaBaseline);
  dev.run_to_symbol("halt", 100000);

  const crypto::Digest key = fleet.update_key("rogue");
  casu::UpdateAuthority authority(
      std::span<const uint8_t>(key.data(), key.size()));
  ASSERT_EQ(dev.apply_update(authority.make_package(0xE800, 1, {0x03, 0x43})),
            casu::UpdateStatus::kApplied);

  auto verdict = fleet.verifier().attest(dev);
  EXPECT_TRUE(verdict.mac_ok);
  EXPECT_TRUE(verdict.seq_ok);
  EXPECT_FALSE(verdict.path_ok);
  ASSERT_TRUE(verdict.first_bad.has_value());
  EXPECT_TRUE(verdict.first_bad->update);
}

// Forged campaign packages are refused per device and the device heals
// by reset; the fleet's remaining devices update normally.
TEST(UpdateCampaignTest, ForgedPackageHealsDeviceWithoutPerturbingFleet) {
  Fleet fleet;
  DeviceSession& good =
      fleet.provision("good", kFwV1, "fw", EnforcementPolicy::kCfaBaseline);
  DeviceSession& bad =
      fleet.provision("bad", kFwV1, "fw", EnforcementPolicy::kCfaBaseline);
  good.run_to_symbol("halt", 100000);
  bad.run_to_symbol("halt", 100000);

  UpdateCampaign campaign = fleet.stage_update(kFwV2, "fw", {.eilid = false});
  casu::UpdatePackage forged = campaign.package_for(bad);
  forged.mac[0] ^= 0xFF;
  EXPECT_EQ(bad.apply_update(forged), casu::UpdateStatus::kBadMac);
  bad.machine().run(100);
  EXPECT_EQ(bad.last_reset_reason(), "update-auth");
  EXPECT_EQ(bad.firmware_version(), 0u);

  auto outcome = campaign.apply_to(good);
  EXPECT_EQ(outcome.result, UpdateResult::kApplied);
  good.machine().uart().clear_tx();
  good.run_to_symbol("halt", 100000);
  EXPECT_EQ(good.machine().uart().tx_text(), "222");
  for (const auto& verdict : fleet.verifier().verify_all()) {
    EXPECT_TRUE(verdict.mac_ok) << verdict.device_id;
    EXPECT_TRUE(verdict.seq_ok) << verdict.device_id;
  }
}

// A build-to-build diff is only applicable while the device's PMEM
// still equals the from-image. A device patched out of band must be
// refused -- applying the diff would leave memory matching neither
// build while the session adopts the target's predecoded table.
TEST(UpdateCampaignTest, DivergedDeviceRefusedCleanDeviceUpdates) {
  Fleet fleet;
  DeviceSession& diverged = fleet.provision("diverged", kFwV1, "fw",
                                            EnforcementPolicy::kCfaBaseline);
  DeviceSession& clean =
      fleet.provision("clean", kFwV1, "fw", EnforcementPolicy::kCfaBaseline);
  diverged.run_to_symbol("halt", 100000);
  clean.run_to_symbol("halt", 100000);

  // Out-of-band (but validly MAC'd) patch: the device's PMEM no longer
  // matches its recorded build.
  const crypto::Digest key = fleet.update_key("diverged");
  casu::UpdateAuthority authority(
      std::span<const uint8_t>(key.data(), key.size()));
  ASSERT_EQ(
      diverged.apply_update(authority.make_package(0xE800, 1, {0x03, 0x43})),
      casu::UpdateStatus::kApplied);

  UpdateCampaign campaign = fleet.stage_update(kFwV2, "fw", {.eilid = false});
  auto outcome = campaign.apply_to(diverged);
  EXPECT_EQ(outcome.result, UpdateResult::kImageMismatch);
  EXPECT_FALSE(outcome.build_swapped);
  EXPECT_EQ(diverged.firmware_version(), 1u);  // nothing newly applied
  EXPECT_NE(diverged.shared_build().get(), campaign.target_build().get());

  // The shared diff cache does not taint the clean device on the same
  // from-build.
  auto clean_outcome = campaign.apply_to(clean);
  EXPECT_EQ(clean_outcome.result, UpdateResult::kApplied);
}

// Records every retired-instruction transition, fall-through included.
class TraceMonitor : public sim::Monitor {
 public:
  struct Step {
    uint16_t from, to, fallthrough;
    bool operator==(const Step&) const = default;
  };
  void on_step(uint16_t from_pc, uint16_t to_pc,
               uint16_t fallthrough) override {
    steps_.push_back({from_pc, to_pc, fallthrough});
  }
  const std::vector<Step>& steps() const { return steps_; }

 private:
  std::vector<Step> steps_;
};

// Across an update, the predecoded core (old table -> interpretive
// window during the patch -> new build's table) and the pure
// interpretive core retire bit-identical traces and produce identical
// attestation verdicts.
TEST(UpdateCampaignTest, PostUpdatePredecodedMatchesInterpretive) {
  struct VariantResult {
    std::vector<TraceMonitor::Step> steps;
    std::string tx;
    uint64_t cycles = 0;
    bool verdict_ok = false;
    uint32_t seq = 0;
    size_t edges = 0;
  };
  auto run_variant = [&](ExecutionEngine engine) {
    Fleet fleet;
    SessionOptions options;
    options.engine = engine;
    DeviceSession& dev = fleet.provision(
        "dev", kFwV1, "fw", EnforcementPolicy::kCfaBaseline, options);
    TraceMonitor trace;
    dev.machine().add_monitor(&trace);
    dev.run_to_symbol("halt", 100000);
    auto outcome =
        fleet.stage_update(kFwV2, "fw", {.eilid = false}).apply_to(dev);
    EXPECT_EQ(outcome.result, UpdateResult::kApplied);
    dev.run_to_symbol("halt", 100000);
    EXPECT_EQ(dev.machine().cpu().decode_cache_valid(),
              engine != ExecutionEngine::kInterpretive);
    auto verdict = fleet.verifier().attest(dev);
    VariantResult r;
    r.steps = trace.steps();
    r.tx = dev.machine().uart().tx_text();
    r.cycles = dev.machine().cycles();
    r.verdict_ok = verdict.ok();
    r.seq = verdict.seq;
    r.edges = verdict.edges;
    return r;
  };

  VariantResult cached = run_variant(ExecutionEngine::kPredecoded);
  VariantResult interp = run_variant(ExecutionEngine::kInterpretive);
  VariantResult block = run_variant(ExecutionEngine::kSuperblock);
  ASSERT_FALSE(cached.steps.empty());
  EXPECT_EQ(cached.steps, interp.steps);
  EXPECT_EQ(cached.tx, interp.tx);
  EXPECT_EQ(cached.cycles, interp.cycles);
  EXPECT_TRUE(cached.verdict_ok);
  EXPECT_TRUE(interp.verdict_ok);
  EXPECT_EQ(cached.seq, interp.seq);
  EXPECT_EQ(cached.edges, interp.edges);
  EXPECT_EQ(block.steps, interp.steps);
  EXPECT_EQ(block.tx, interp.tx);
  EXPECT_EQ(block.cycles, interp.cycles);
  EXPECT_TRUE(block.verdict_ok);
  EXPECT_EQ(block.seq, interp.seq);
  EXPECT_EQ(block.edges, interp.edges);
}

// A transition whose images differ outside PMEM (here: instrumented
// target with an EILIDsw ROM vs plain from-build with none) cannot be
// expressed as a CASU update and is reported, not applied.
TEST(UpdateCampaignTest, NonPmemDifferenceIsIncompatible) {
  Fleet fleet;
  DeviceSession& dev =
      fleet.provision("plain", kFwV1, "fw", EnforcementPolicy::kCasu);
  auto instrumented = fleet.build(kFwV2, "fw");  // eilid build, has ROM
  UpdateCampaign campaign = fleet.stage_update(instrumented);
  auto outcome = campaign.apply_to(dev);
  EXPECT_EQ(outcome.result, UpdateResult::kIncompatible);
  EXPECT_FALSE(outcome.build_swapped);
  EXPECT_EQ(dev.firmware_version(), 0u);
  EXPECT_THROW(campaign.package_for(dev), FleetError);
}

// A report replayed to the verifier out of sequence is flagged even
// though its MAC is genuine.
TEST(VerifierServiceTest, SequenceGapFlagged) {
  const auto& app = apps::vuln_gateway();
  Fleet fleet;
  DeviceSession& dev =
      fleet.provision("seq", app.source, app.name,
                      EnforcementPolicy::kCfaBaseline,
                      {.cfa = {.log_capacity = 8192}});
  dev.machine().uart().feed(attacks::benign_payload());
  dev.run(20000);

  // A report the verifier never sees: the device emitted it (seq 0),
  // but it was lost in transit.
  (void)dev.cfa_monitor()->take_report(/*nonce=*/999,
                                       dev.machine().cycles());
  dev.run(20000);
  auto verdict = fleet.verifier().attest(dev);
  EXPECT_TRUE(verdict.mac_ok);
  EXPECT_FALSE(verdict.seq_ok);  // seq 1 arrived where 0 was expected
}

}  // namespace
}  // namespace eilid
