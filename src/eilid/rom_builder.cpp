#include "eilid/rom_builder.h"

#include "common/error.h"
#include "common/hex.h"
#include "sim/reset.h"

namespace eilid::core {
namespace {

// The ROM reports failed CFI checks by storing a reason code to the
// violation register; CASU hardware resets the device on that store.
std::string viol_store(uint16_t code) {
  return "    mov #" + std::to_string(code) + ", &" +
         hex16(sim::mmio::kViolationReg) + "\n";
}

}  // namespace

std::string generate_rom_source(const RomConfig& cfg) {
  const uint16_t cap = cfg.effective_shadow_capacity();
  if (cap < 4) throw ConfigError("shadow stack capacity too small");
  if (cfg.shadow_base_addr() + 2 * cap >
      cfg.secure_base + cfg.secure_size) {
    throw ConfigError("secure DMEM layout exceeds region");
  }

  std::string s;
  s += "; EILIDsw -- trusted shadow-stack software (generated)\n";
  s += "; sections: entry (single gate) / body (S_EILID_*) / leave\n";
  s += ".equ TBL_COUNT, " + hex16(cfg.tbl_count_addr()) + "\n";
  s += ".equ TBL_LOCK, " + hex16(cfg.tbl_lock_addr()) + "\n";
  s += ".equ SHADOW_IDX, " + hex16(cfg.idx_addr()) + "\n";
  s += ".equ TBL_BASE, " + hex16(cfg.tbl_base_addr()) + "\n";
  s += ".equ SHADOW_BASE, " + hex16(cfg.shadow_base_addr()) + "\n";
  s += ".equ SHADOW_CAP, " + std::to_string(cap) + "\n";
  s += ".equ SHADOW_CAP_M1, " + std::to_string(cap - 1) + "\n";
  s += ".equ TBL_CAP, " + std::to_string(cfg.table_capacity) + "\n";
  s += ".org " + hex16(sim::kRomStart) + "\n";

  // --- entry section: the NS_* selector stubs. This is the only ROM
  // range the hardware lets non-secure code jump into; interrupts are
  // masked from here on, so r4 is never live in application code. ---
  s += "S_ENTRY:\n";
  for (int selector = 0; selector < 8; ++selector) {
    s += std::string(kVeneerNames[selector]) + ":\n";
    s += "    mov #" + std::to_string(selector) + ", r4\n";
    s += "    jmp S_DISPATCH\n";
  }

  // --- dispatch (paper Fig. 9a, step 1->2). ---
  s += "S_DISPATCH:\n";
  s += "    cmp #1, r4\n    jz S_EILID_store_ra\n";
  s += "    cmp #2, r4\n    jz S_EILID_check_ra\n";
  s += "    cmp #3, r4\n    jz S_EILID_store_rfi\n";
  s += "    cmp #4, r4\n    jz S_EILID_check_rfi\n";
  s += "    cmp #5, r4\n    jz S_EILID_store_ind\n";
  s += "    cmp #6, r4\n    jz S_EILID_check_ind\n";
  s += "    tst r4\n    jz S_EILID_init\n";
  s += "    cmp #7, r4\n    jz S_EILID_lock\n";
  s += viol_store(sim::viol::kSelector);

  // --- body section. ---
  // Two codegen variants (paper §V-B ablation):
  //  - register index (default): r5 holds the entry count; computing
  //    the slot needs no memory access ("improving performance").
  //  - memory-backed index: the count lives at SHADOW_IDX; r5 is not
  //    touched at all, freeing it for the application.
  const bool mem_idx = cfg.memory_backed_index;

  s += "S_EILID_init:\n";
  if (mem_idx) {
    s += "    clr &SHADOW_IDX\n";
  } else {
    s += "    clr r5\n";
  }
  s += "    clr &TBL_COUNT\n";
  s += "    clr &TBL_LOCK\n";
  s += "    jmp S_LEAVE\n";

  // P1 store: push r6 (return address) onto the shadow stack.
  s += "S_EILID_store_ra:\n";
  if (mem_idx) {
    s += "    mov &SHADOW_IDX, r4\n";
    s += "    cmp #SHADOW_CAP, r4\n";
    s += "    jge V_OVERFLOW\n";
    s += "    rla r4\n";
    s += "    mov r6, SHADOW_BASE(r4)\n";
    s += "    inc &SHADOW_IDX\n";
  } else {
    s += "    cmp #SHADOW_CAP, r5\n";
    s += "    jge V_OVERFLOW\n";
    s += "    mov r5, r4\n";
    s += "    rla r4\n";
    s += "    mov r6, SHADOW_BASE(r4)\n";
    s += "    inc r5\n";
  }
  s += "    jmp S_LEAVE\n";

  // P1 check: pop and compare against r6.
  s += "S_EILID_check_ra:\n";
  if (mem_idx) {
    s += "    mov &SHADOW_IDX, r4\n";
    s += "    tst r4\n";
    s += "    jz V_UNDERFLOW\n";
    s += "    dec r4\n";
    s += "    mov r4, &SHADOW_IDX\n";
    s += "    rla r4\n";
  } else {
    s += "    tst r5\n";
    s += "    jz V_UNDERFLOW\n";
    s += "    dec r5\n";
    s += "    mov r5, r4\n";
    s += "    rla r4\n";
  }
  s += "    cmp SHADOW_BASE(r4), r6\n";
  s += "    jnz V_RA\n";
  s += "    jmp S_LEAVE\n";

  // P2 store: push interrupt context (r6 = saved PC, r7 = saved SR).
  s += "S_EILID_store_rfi:\n";
  if (mem_idx) {
    s += "    mov &SHADOW_IDX, r4\n";
    s += "    cmp #SHADOW_CAP_M1, r4\n";
    s += "    jge V_OVERFLOW\n";
    s += "    rla r4\n";
    s += "    mov r6, SHADOW_BASE(r4)\n";
    s += "    mov r7, SHADOW_BASE+2(r4)\n";
    s += "    incd &SHADOW_IDX\n";
  } else {
    s += "    cmp #SHADOW_CAP_M1, r5\n";
    s += "    jge V_OVERFLOW\n";
    s += "    mov r5, r4\n";
    s += "    rla r4\n";
    s += "    mov r6, SHADOW_BASE(r4)\n";
    s += "    mov r7, SHADOW_BASE+2(r4)\n";
    s += "    incd r5\n";
  }
  s += "    jmp S_LEAVE\n";

  // P2 check: pop both context words and compare.
  s += "S_EILID_check_rfi:\n";
  if (mem_idx) {
    s += "    mov &SHADOW_IDX, r4\n";
    s += "    cmp #2, r4\n";
    s += "    jl V_UNDERFLOW\n";
    s += "    decd r4\n";
    s += "    mov r4, &SHADOW_IDX\n";
    s += "    rla r4\n";
  } else {
    s += "    cmp #2, r5\n";
    s += "    jl V_UNDERFLOW\n";
    s += "    decd r5\n";
    s += "    mov r5, r4\n";
    s += "    rla r4\n";
  }
  s += "    cmp SHADOW_BASE(r4), r6\n";
  s += "    jnz V_RFI\n";
  s += "    cmp SHADOW_BASE+2(r4), r7\n";
  s += "    jnz V_RFI\n";
  s += "    jmp S_LEAVE\n";

  // P3 registration: append r6 to the function-entry table.
  s += "S_EILID_store_ind:\n";
  s += "    tst &TBL_LOCK\n";
  s += "    jnz V_IND\n";
  s += "    mov &TBL_COUNT, r4\n";
  s += "    cmp #TBL_CAP, r4\n";
  s += "    jge V_TBLFULL\n";
  s += "    rla r4\n";
  s += "    mov r6, TBL_BASE(r4)\n";
  s += "    inc &TBL_COUNT\n";
  s += "    jmp S_LEAVE\n";

  // P3 check: linear search for r6 in the table.
  s += "S_EILID_check_ind:\n";
  s += "    mov &TBL_COUNT, r4\n";
  s += "S_ci_loop:\n";
  s += "    tst r4\n";
  s += "    jz V_IND\n";
  s += "    dec r4\n";
  s += "    mov r4, r7\n";
  s += "    rla r7\n";
  s += "    cmp TBL_BASE(r7), r6\n";
  s += "    jz S_LEAVE\n";
  s += "    jmp S_ci_loop\n";

  // Hardening extension: freeze the table after boot registration.
  s += "S_EILID_lock:\n";
  s += "    mov #1, &TBL_LOCK\n";
  s += "    jmp S_LEAVE\n";

  // Violation reporters (each store resets the device immediately).
  s += "V_RA:\n" + viol_store(sim::viol::kRa);
  s += "V_RFI:\n" + viol_store(sim::viol::kRfi);
  s += "V_IND:\n" + viol_store(sim::viol::kInd);
  s += "V_OVERFLOW:\n" + viol_store(sim::viol::kOverflow);
  s += "V_UNDERFLOW:\n" + viol_store(sim::viol::kUnderflow);
  s += "V_TBLFULL:\n" + viol_store(sim::viol::kTableFull);

  // --- leave section (paper Fig. 9a, step 3): the only legal exit. ---
  s += "S_LEAVE:\n";
  s += "    clr r4\n";
  s += "    ret\n";
  s += "S_ROM_END:\n";
  return s;
}

RomInfo build_rom(const RomConfig& config) {
  RomInfo info;
  info.config = config;
  std::string source = generate_rom_source(config);
  info.unit = masm::assemble_text(source, "eilidsw");
  info.entry_start = info.unit.symbols.at("S_ENTRY");
  info.entry_end = static_cast<uint16_t>(info.unit.symbols.at("S_DISPATCH") - 2);
  info.leave_start = info.unit.symbols.at("S_LEAVE");
  info.leave_end = static_cast<uint16_t>(info.unit.symbols.at("S_ROM_END") - 2);
  return info;
}

}  // namespace eilid::core
