// Quickstart: the EILID library in one file, through the Fleet API.
//
//   1. Write an MSP430 application (assembly, as EILIDinst consumes).
//   2. Provision it onto fleet devices under two enforcement policies:
//      kCasu (original build, CASU invariants only) and kEilidHw (the
//      three-iteration instrumented build of Fig. 2). The fleet's
//      build cache runs each pipeline exactly once.
//   3. Run all four devices and compare cost.
//   4. Corrupt a return address at run time: the CASU device is
//      hijacked, the EILID device resets in real time.
//
// Build tree: ./build/examples/quickstart
#include <cstdio>

#include "src/attacks/attack.h"
#include "src/eilid/fleet.h"

using namespace eilid;

namespace {

// A tiny sensor loop: read the ADC, accumulate, report over UART.
const char* kApp = R"(.equ ADC_CTL, 0x0110
.equ ADC_MEM, 0x0112
.equ ADC_STAT, 0x0114
.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1         ; set up the stack
    mov #8, r10             ; eight samples
loop:
    call #sample            ; r9 = reading
    add r9, r11
    mov.b r9, &UART_TX
    dec r10
    jnz loop
halt:
    jmp halt

sample:
    mov #0x100, &ADC_CTL    ; start conversion, channel 0
s_wait:
    tst &ADC_STAT
    jz s_wait
    mov &ADC_MEM, r9
    ret

.vector 15, main
.end
)";

void run_device(Fleet& fleet, const char* label, const char* device_id,
                EnforcementPolicy policy, bool attack) {
  DeviceSession& device = fleet.provision(device_id, kApp, "quickstart",
                                          policy, {.halt_on_reset = true});
  device.machine().adc().set_channel_series(0, {10, 20, 30, 40, 50, 60, 70, 80});

  attacks::AttackEngine engine(device.machine());
  if (attack) {
    // On the 3rd call of sample(), overwrite its saved return address
    // (top of stack) with `halt` -- a minimal control-flow hijack.
    attacks::Attack a;
    a.name = "ret-overwrite";
    a.trigger = {attacks::Trigger::Kind::kAtPcHit, device.symbol("sample"), 3};
    attacks::MemWrite w;
    w.sp_relative = true;
    w.addr = 0;
    w.value = device.symbol("halt");
    a.writes = {w};
    engine.schedule(a);
  }

  auto result = device.run_to_symbol("halt", 100000);
  std::printf("%-28s | %4zu B | %6llu cycles | %zu samples out | %s\n", label,
              device.build().binary_size(),
              static_cast<unsigned long long>(result.cycles),
              device.machine().uart().tx_log().size(),
              device.violation_count()
                  ? ("RESET: " + device.last_reset_reason()).c_str()
                  : "clean run");
}

}  // namespace

int main() {
  Fleet fleet;
  std::printf("EILID quickstart\n");
  std::printf("%-28s | %-6s | %-12s | %-14s | %s\n", "configuration", "size",
              "time", "output", "outcome");
  for (int i = 0; i < 100; ++i) std::putchar('-');
  std::putchar('\n');
  run_device(fleet, "original", "qs-plain", EnforcementPolicy::kCasu, false);
  run_device(fleet, "EILID", "qs-eilid", EnforcementPolicy::kEilidHw, false);
  run_device(fleet, "original + ret attack", "qs-plain-attacked",
             EnforcementPolicy::kCasu, true);
  run_device(fleet, "EILID + ret attack", "qs-eilid-attacked",
             EnforcementPolicy::kEilidHw, true);
  std::printf(
      "\nThe attacked original device silently loses five samples (the "
      "hijacked\nreturn skipped the rest of the loop); the EILID device "
      "catches the corrupt\nreturn address in S_EILID_check_ra and resets "
      "before it is ever used.\n");
  std::printf("(4 devices provisioned from %zu pipeline runs -- the fleet "
              "build cache served %zu hits.)\n",
              fleet.pipeline_runs(), fleet.build_cache_hits());
  return 0;
}
