#include "eilid/transport.h"

#include <utility>
#include <vector>

namespace eilid {

namespace {

// One chunk in flight. `orig` is the sender's logical chunk ordinal,
// kept outside the (tamperable) chunk itself so ack bookkeeping stays
// truthful even when an adversary rewrites the index field.
struct Flight {
  size_t orig = 0;
  casu::TransferChunk chunk;
};

void corrupt_in_flight(casu::TransferChunk& chunk, common::SeededRng& rng) {
  // Line noise: flip one payload byte. The checksum is now stale, so
  // the receiver NACKs (kCorrupt) and the sender retransmits -- this
  // is the fault the transport CRC exists for.
  if (!chunk.payload.empty()) {
    chunk.payload[rng.below(chunk.payload.size())] ^=
        static_cast<uint8_t>(1u << rng.below(8));
  } else {
    chunk.checksum ^= 1;
  }
}

}  // namespace

DeliveryResult deliver_update(DeviceSession& session,
                              const casu::UpdatePackage& package,
                              const TransportOptions& options) {
  common::SeededRng rng =
      common::SeededRng::keyed(options.seed, session.id());
  const std::vector<casu::TransferChunk> chunks =
      casu::chunk_package(package, options.chunk_size);
  const FaultSpec& faults = options.faults;

  DeliveryResult out;
  std::vector<bool> acked(chunks.size(), false);
  std::vector<bool> sent_once(chunks.size(), false);
  size_t acked_count = 0;

  // Resume negotiation: ask the receiver which chunks of *this*
  // transfer (content-addressed by the package MAC) it already holds.
  // A device interrupted mid-transfer -- retry budget, power loss,
  // unreachable -- picks up where it left off instead of restarting.
  uint32_t accepted = 0;  // receiver-side accepts, power-loss counter
  const std::vector<bool> staged = session.staged_update_chunks(package.mac);
  if (staged.size() == chunks.size()) {
    for (size_t i = 0; i < staged.size(); ++i) {
      if (!staged[i]) continue;
      acked[i] = true;
      ++acked_count;
      ++accepted;
    }
    if (acked_count > 0) out.resumed = true;
  }

  bool power_loss_armed = faults.power_loss_at_chunk.has_value();
  std::vector<Flight> delayed;  // in the pipe, arrives next round
  auto per_mille = [&rng](uint32_t rate) {
    return rate != 0 && rng.chance(static_cast<int>(rate), 1000);
  };

  for (uint32_t round = 0;
       round < options.max_rounds && acked_count < chunks.size(); ++round) {
    if (!session.online()) {
      // Radio off: this round's retransmissions and anything already
      // in the pipe are lost. The round still burns retry budget --
      // an unreachable device exhausts it and comes back kInterrupted
      // for HealthMonitor to resume later.
      delayed.clear();
      continue;
    }
    std::vector<Flight> wire = std::move(delayed);
    delayed.clear();
    std::vector<Flight> reordered;
    for (size_t i = 0; i < chunks.size(); ++i) {
      if (acked[i]) continue;
      Flight flight{i, chunks[i]};
      ++out.chunks_sent;
      if (sent_once[i]) out.bytes_retransmitted += chunks[i].payload.size();
      sent_once[i] = true;
      if (options.tamper_chunk) options.tamper_chunk(session, flight.chunk);
      // Fault rolls in fixed order so the stream is identical no
      // matter which faults are enabled at other rates.
      if (per_mille(faults.drop_per_mille)) continue;
      if (per_mille(faults.corrupt_per_mille)) {
        corrupt_in_flight(flight.chunk, rng);
      }
      if (per_mille(faults.duplicate_per_mille)) wire.push_back(flight);
      if (per_mille(faults.reorder_per_mille)) {
        reordered.push_back(std::move(flight));
      } else if (per_mille(faults.delay_per_mille)) {
        delayed.push_back(std::move(flight));
      } else {
        wire.push_back(std::move(flight));
      }
    }
    wire.insert(wire.end(), std::make_move_iterator(reordered.begin()),
                std::make_move_iterator(reordered.end()));

    for (Flight& flight : wire) {
      switch (session.receive_update_chunk(flight.chunk)) {
        case casu::ChunkAck::kAccepted:
        case casu::ChunkAck::kComplete:
          ++accepted;
          break;
        case casu::ChunkAck::kDuplicate:
          break;  // already staged: counts as acked below, not accepted
        case casu::ChunkAck::kCorrupt:
        case casu::ChunkAck::kMalformed:
          continue;  // NACK: stays un-acked, retransmits next round
      }
      if (!acked[flight.orig]) {
        acked[flight.orig] = true;
        ++acked_count;
      }
      if (power_loss_armed && accepted >= *faults.power_loss_at_chunk) {
        // The device dies at this chunk boundary. Its staged slot is
        // non-volatile, so nothing is lost but the rest of this
        // round's traffic; the next round is the resumed attempt.
        power_loss_armed = false;
        session.power_cycle();
        ++out.attempts;
        out.resumed = true;
        break;
      }
    }
  }

  if (acked_count < chunks.size()) {
    // Retry budget exhausted with the transfer incomplete. The staged
    // chunks survive on the device: a later delivery of the same
    // package (same MAC) resumes instead of restarting.
    out.status = casu::UpdateStatus::kInterrupted;
    return out;
  }

  out.status = session.finalize_update(faults.power_loss_mid_apply);
  if (out.status == casu::UpdateStatus::kInterrupted) {
    // The injected supply failure fired mid-replay (the transfer was
    // complete, so nothing else returns kInterrupted here). The reboot
    // that follows real power loss runs the bootloader recovery, which
    // finishes the journal -- the swap completes at boot.
    ++out.attempts;
    session.power_cycle();
    out.status = session.firmware_version() == package.version
                     ? casu::UpdateStatus::kApplied
                     : casu::UpdateStatus::kInterrupted;
  }
  return out;
}

}  // namespace eilid
