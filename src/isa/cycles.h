// MSP430 instruction timing, after the MSP430x1xx Family User's Guide
// (SLAU049, Tables 3-14..3-16). The paper's run-time numbers are cycle
// counts scaled by the device clock, so faithful per-addressing-mode
// timing is what makes Table IV's run-time column meaningful.
#ifndef EILID_ISA_CYCLES_H
#define EILID_ISA_CYCLES_H

#include <cstdint>

#include "isa/instruction.h"

namespace eilid::isa {

// Cycles consumed by one execution of `insn`. Jumps cost 2 taken or
// not. Constant-generator immediates time like register sources.
unsigned instruction_cycles(const Instruction& insn);

// Fixed costs used by the interrupt machinery.
inline constexpr unsigned kInterruptAcceptCycles = 6;
inline constexpr unsigned kRetiCycles = 5;

}  // namespace eilid::isa

#endif  // EILID_ISA_CYCLES_H
