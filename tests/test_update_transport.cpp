// Lossy-transport OTA scenario matrix: chunked delivery over a faulty
// pipe (drop / corrupt / duplicate / reorder / delay), bounded retry
// with resume, and the power-loss guarantees -- a reset at ANY chunk
// boundary or mid-apply point leaves the device attestable on exactly
// one of {old build, new build}, never half-flashed, and a resumed
// campaign converges to kApplied. Plus the adversarial multipliers:
// forged chunks, replayed chunk streams, interleaved campaigns, and
// the pooled == serial determinism contract over all of it.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "casu/update.h"
#include "common/thread_pool.h"
#include "eilid/fleet.h"
#include "eilid/health.h"
#include "eilid/rollout.h"
#include "eilid/transport.h"

namespace eilid {
namespace {

// Firmware generations with genuinely different layouts (the
// emit-call count shifts every later address).
std::string firmware(int generation) {
  std::string s = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
)";
  for (int i = 0; i < generation + 1; ++i) s += "    call #emit\n";
  s += R"(halt:
    jmp halt
emit:
    mov.b #')";
  s += static_cast<char>('0' + generation);
  s += R"(', &UART_TX
    ret
.vector 15, main
.end
)";
  return s;
}

std::string device_id(size_t i) {
  // Zero-padded so lexicographic enrollment-id order == deploy order.
  std::string n = std::to_string(i);
  return "dev-" + std::string(n.size() < 2 ? 2 - n.size() : 0, '0') + n;
}

// N CFA-baseline devices on firmware(0), each run to halt so sweeps
// have evidence to judge.
void provision_fleet(Fleet& fleet, size_t devices) {
  for (size_t i = 0; i < devices; ++i) {
    DeviceSession& dev =
        fleet.provision(device_id(i), firmware(0), "fw",
                        EnforcementPolicy::kCfaBaseline,
                        {.cfa = {.log_capacity = 65536}});
    dev.run_to_symbol("halt", 100000);
  }
}

TransportOptions clean_pipe(size_t chunk_size = 24) {
  TransportOptions t;
  t.chunk_size = chunk_size;
  return t;
}

// ------------------------------------------------------------- delivery

TEST(TransportScenarios, CleanPipeDeliversChunkedUpdate) {
  Fleet fleet;
  provision_fleet(fleet, 3);
  CampaignOptions options;
  options.transport = clean_pipe(32);
  UpdateCampaign campaign =
      fleet.stage_update(firmware(1), "fw", {.eilid = false}, options);
  for (const UpdateOutcome& out : campaign.roll_out()) {
    EXPECT_EQ(out.result, UpdateResult::kApplied) << out.device_id;
    EXPECT_EQ(out.attempts, 1u);
    EXPECT_FALSE(out.resumed);
    EXPECT_EQ(out.bytes_retransmitted, 0u);
    EXPECT_EQ(out.version_after, 1u);
    EXPECT_TRUE(out.build_swapped);
  }
  for (const auto& verdict : fleet.verifier().verify_all()) {
    EXPECT_TRUE(verdict.ok()) << verdict.device_id;
  }
  DeviceSession& dev = fleet.at(device_id(0));
  dev.machine().uart().clear_tx();
  dev.run_to_symbol("halt", 100000);
  EXPECT_EQ(dev.machine().uart().tx_text(), "11");
}

TEST(TransportScenarios, LossyPipeConvergesAndRetransmits) {
  Fleet fleet;
  provision_fleet(fleet, 4);
  CampaignOptions options;
  TransportOptions transport = clean_pipe(16);
  transport.seed = 0x10551;
  transport.max_rounds = 64;
  transport.faults = {.drop_per_mille = 200,
                      .corrupt_per_mille = 100,
                      .duplicate_per_mille = 100,
                      .reorder_per_mille = 150,
                      .delay_per_mille = 100};
  options.transport = transport;
  UpdateCampaign campaign =
      fleet.stage_update(firmware(1), "fw", {.eilid = false}, options);

  size_t retransmitted = 0;
  for (const UpdateOutcome& out : campaign.roll_out()) {
    EXPECT_EQ(out.result, UpdateResult::kApplied) << out.device_id;
    EXPECT_EQ(out.version_after, 1u);
    retransmitted += out.bytes_retransmitted;
  }
  // At these rates some chunk somewhere was certainly retransmitted
  // (the run is seeded, so this is a fixed fact, not a probability).
  EXPECT_GT(retransmitted, 0u);
  for (const auto& verdict : fleet.verifier().verify_all()) {
    EXPECT_TRUE(verdict.ok()) << verdict.device_id;
  }
}

// ------------------------------------------------------ power-loss matrix

// A reset at EVERY chunk boundary: the device must come back attestable
// on its old build (the staged slot holds partial progress, PMEM is
// untouched), and re-delivering the same campaign must RESUME -- ship
// only the missing chunks -- and converge to kApplied.
TEST(PowerLossMatrix, EveryChunkBoundaryLeavesBootableImage) {
  constexpr size_t kChunkSize = 24;
  // One probe fleet to learn the chunk count of this transition.
  size_t total_chunks = 0;
  {
    Fleet probe;
    provision_fleet(probe, 1);
    UpdateCampaign campaign =
        probe.stage_update(firmware(1), "fw", {.eilid = false});
    total_chunks =
        casu::chunk_package(campaign.package_for(probe.at(device_id(0))),
                            kChunkSize)
            .size();
  }
  ASSERT_GE(total_chunks, 3u);

  Fleet fleet;
  provision_fleet(fleet, total_chunks);
  for (size_t k = 1; k <= total_chunks; ++k) {
    DeviceSession& dev = fleet.at(device_id(k - 1));
    CampaignOptions options;
    TransportOptions transport = clean_pipe(kChunkSize);
    transport.max_rounds = 1;  // the loss ends this delivery attempt
    transport.faults.power_loss_at_chunk = static_cast<uint32_t>(k);
    options.transport = transport;
    UpdateCampaign campaign =
        fleet.stage_update(firmware(1), "fw", {.eilid = false}, options);
    const UpdateOutcome first = campaign.apply_to(dev);

    if (k < total_chunks) {
      // Interrupted mid-transfer: still the old build, old version,
      // attestable -- and exactly k chunks staged for the resume.
      EXPECT_EQ(first.result, UpdateResult::kInterrupted) << "k=" << k;
      EXPECT_EQ(dev.firmware_version(), 0u);
      EXPECT_FALSE(first.build_swapped);
      const casu::UpdatePackage pkg = campaign.package_for(dev);
      size_t staged = 0;
      for (bool have : dev.staged_update_chunks(pkg.mac)) staged += have;
      EXPECT_EQ(staged, k) << "k=" << k;
    } else {
      // Power loss at the LAST boundary: the transfer is complete, so
      // the post-reset attempt finalizes and commits.
      EXPECT_EQ(first.result, UpdateResult::kApplied) << "k=" << k;
      EXPECT_EQ(first.attempts, 2u);
      EXPECT_TRUE(first.resumed);
    }
    EXPECT_TRUE(fleet.verifier().attest(dev).ok()) << "k=" << k;

    if (k < total_chunks) {
      // Re-deliver over a clean pipe: resumes, converges.
      CampaignOptions retry;
      retry.transport = clean_pipe(kChunkSize);
      const UpdateOutcome second =
          fleet.stage_update(firmware(1), "fw", {.eilid = false}, retry)
              .apply_to(dev);
      EXPECT_EQ(second.result, UpdateResult::kApplied) << "k=" << k;
      EXPECT_TRUE(second.resumed) << "k=" << k;
    }
    EXPECT_EQ(dev.firmware_version(), 1u) << "k=" << k;
    EXPECT_TRUE(fleet.verifier().attest(dev).ok()) << "k=" << k;
    dev.machine().uart().clear_tx();
    dev.run_to_symbol("halt", 100000);
    EXPECT_EQ(dev.machine().uart().tx_text(), "11") << "k=" << k;
  }
}

// A reset at EVERY mid-apply point: the supply fails after N regions of
// the commit replay. The journal is non-volatile and replay idempotent,
// so the boot that follows finishes the swap -- the device lands on
// exactly the new build with anti-rollback state consistent.
TEST(PowerLossMatrix, EveryMidApplyPointRecoversAtBoot) {
  size_t region_count = 0;
  {
    Fleet probe;
    provision_fleet(probe, 1);
    UpdateCampaign campaign =
        probe.stage_update(firmware(1), "fw", {.eilid = false});
    region_count = campaign.package_for(probe.at(device_id(0))).regions.size();
  }
  ASSERT_GE(region_count, 1u);

  Fleet fleet;
  provision_fleet(fleet, region_count + 1);
  for (size_t cut = 0; cut <= region_count; ++cut) {
    DeviceSession& dev = fleet.at(device_id(cut));
    CampaignOptions options;
    TransportOptions transport = clean_pipe(24);
    transport.faults.power_loss_mid_apply = cut;
    options.transport = transport;
    const UpdateOutcome out =
        fleet.stage_update(firmware(1), "fw", {.eilid = false}, options)
            .apply_to(dev);
    EXPECT_EQ(out.result, UpdateResult::kApplied) << "cut=" << cut;
    // A cut short of the last region really interrupted the replay and
    // was healed by the boot-time recovery; a cut past the end never
    // fired.
    EXPECT_EQ(out.attempts, cut < region_count ? 2u : 1u) << "cut=" << cut;
    EXPECT_EQ(out.version_after, 1u);
    EXPECT_TRUE(out.build_swapped);
    EXPECT_EQ(dev.firmware_version(), 1u);
    EXPECT_TRUE(fleet.verifier().attest(dev).ok()) << "cut=" << cut;
    dev.machine().uart().clear_tx();
    dev.run_to_symbol("halt", 100000);
    EXPECT_EQ(dev.machine().uart().tx_text(), "11") << "cut=" << cut;
  }
}

TEST(TransportScenarios, UnreachableDeviceInterruptsThenLaterConverges) {
  Fleet fleet;
  provision_fleet(fleet, 1);
  DeviceSession& dev = fleet.at(device_id(0));
  dev.set_online(false);

  CampaignOptions options;
  TransportOptions transport = clean_pipe(24);
  transport.max_rounds = 4;
  options.transport = transport;
  UpdateCampaign campaign =
      fleet.stage_update(firmware(1), "fw", {.eilid = false}, options);
  const UpdateOutcome offline = campaign.apply_to(dev);
  EXPECT_EQ(offline.result, UpdateResult::kInterrupted);
  EXPECT_FALSE(offline.resumed);  // nothing ever reached the device
  EXPECT_EQ(dev.firmware_version(), 0u);

  dev.set_online(true);
  const UpdateOutcome online = campaign.apply_to(dev);
  EXPECT_EQ(online.result, UpdateResult::kApplied);
  EXPECT_EQ(dev.firmware_version(), 1u);
}

// --------------------------------------------------------- adversaries

// Forge EVERY chunk index in turn, with a recomputed (valid) transport
// checksum: the pipe accepts the forgery, and the package MAC kills it
// at reassembly -- kBadMac, version untouched, and the device heals to
// a clean apply afterwards.
TEST(TransportScenarios, ForgedChunkAnyIndexDiesAtPackageMac) {
  constexpr size_t kChunkSize = 32;
  size_t total_chunks = 0;
  {
    Fleet probe;
    provision_fleet(probe, 1);
    UpdateCampaign campaign =
        probe.stage_update(firmware(1), "fw", {.eilid = false});
    total_chunks =
        casu::chunk_package(campaign.package_for(probe.at(device_id(0))),
                            kChunkSize)
            .size();
  }

  Fleet fleet;
  provision_fleet(fleet, total_chunks);
  for (size_t forged = 0; forged < total_chunks; ++forged) {
    DeviceSession& dev = fleet.at(device_id(forged));
    CampaignOptions options;
    TransportOptions transport = clean_pipe(kChunkSize);
    transport.tamper_chunk = [forged](const DeviceSession&,
                                      casu::TransferChunk& chunk) {
      if (chunk.index != forged) return;
      chunk.payload[0] ^= 0xA5;
      chunk.checksum = casu::chunk_checksum(chunk);  // adversary, not noise
    };
    options.transport = transport;
    const UpdateOutcome out =
        fleet.stage_update(firmware(1), "fw", {.eilid = false}, options)
            .apply_to(dev);
    EXPECT_EQ(out.result, UpdateResult::kBadMac) << "forged=" << forged;
    EXPECT_EQ(out.version_after, 0u);
    EXPECT_FALSE(out.build_swapped);
    EXPECT_EQ(dev.firmware_version(), 0u);

    // The forgery consumed the staged transfer; a clean delivery
    // starts fresh and applies.
    CampaignOptions retry;
    retry.transport = clean_pipe(kChunkSize);
    const UpdateOutcome clean =
        fleet.stage_update(firmware(1), "fw", {.eilid = false}, retry)
            .apply_to(dev);
    EXPECT_EQ(clean.result, UpdateResult::kApplied) << "forged=" << forged;
    EXPECT_FALSE(clean.resumed);
    EXPECT_TRUE(fleet.verifier().attest(dev).ok()) << "forged=" << forged;
  }
}

// Replaying a captured chunk stream reassembles a bit-perfect package
// whose version the device has already consumed: anti-rollback rejects
// it at finalize, exactly like the unchunked path.
TEST(TransportScenarios, ReplayedChunkStreamIsRolledBack) {
  Fleet fleet;
  provision_fleet(fleet, 1);
  DeviceSession& dev = fleet.at(device_id(0));
  CampaignOptions options;
  options.transport = clean_pipe(24);
  UpdateCampaign campaign =
      fleet.stage_update(firmware(1), "fw", {.eilid = false}, options);
  const std::vector<casu::TransferChunk> captured =
      casu::chunk_package(campaign.package_for(dev), 24);
  ASSERT_EQ(campaign.apply_to(dev).result, UpdateResult::kApplied);
  ASSERT_EQ(dev.firmware_version(), 1u);

  // Replay the captured stream wholesale.
  for (const casu::TransferChunk& chunk : captured) {
    const casu::ChunkAck ack = dev.receive_update_chunk(chunk);
    EXPECT_TRUE(ack == casu::ChunkAck::kAccepted ||
                ack == casu::ChunkAck::kComplete);
  }
  EXPECT_EQ(dev.finalize_update(), casu::UpdateStatus::kRollback);
  EXPECT_EQ(dev.firmware_version(), 1u);  // counter never moved
}

// Two campaigns racing for one device: chunks are content-addressed by
// package MAC, so the later campaign's first chunk preempts the staged
// transfer -- the streams can never splice into a franken-image.
TEST(TransportScenarios, InterleavedCampaignsPreemptCleanly) {
  Fleet fleet;
  provision_fleet(fleet, 1);
  DeviceSession& dev = fleet.at(device_id(0));

  UpdateCampaign to_v1 = fleet.stage_update(firmware(1), "fw", {.eilid = false});
  UpdateCampaign to_v2 = fleet.stage_update(firmware(2), "fw", {.eilid = false});
  const std::vector<casu::TransferChunk> v1_chunks =
      casu::chunk_package(to_v1.package_for(dev), 24);
  const std::vector<casu::TransferChunk> v2_chunks =
      casu::chunk_package(to_v2.package_for(dev), 24);
  ASSERT_GE(v1_chunks.size(), 2u);

  // Half of v1 lands...
  for (size_t i = 0; i < v1_chunks.size() / 2; ++i) {
    ASSERT_EQ(dev.receive_update_chunk(v1_chunks[i]), casu::ChunkAck::kAccepted);
  }
  EXPECT_FALSE(dev.staged_update_chunks(v1_chunks[0].transfer_id).empty());

  // ...then one chunk of v2 preempts the whole staged transfer.
  ASSERT_EQ(dev.receive_update_chunk(v2_chunks[0]), casu::ChunkAck::kAccepted);
  EXPECT_TRUE(dev.staged_update_chunks(v1_chunks[0].transfer_id).empty());

  // A v2 delivery now RESUMES from that one staged chunk and applies.
  CampaignOptions options;
  options.transport = clean_pipe(24);
  const UpdateOutcome out =
      fleet.stage_update(firmware(2), "fw", {.eilid = false}, options)
          .apply_to(dev);
  EXPECT_EQ(out.result, UpdateResult::kApplied);
  EXPECT_TRUE(out.resumed);
  EXPECT_EQ(dev.firmware_version(), 1u);
  dev.machine().uart().clear_tx();
  dev.run_to_symbol("halt", 100000);
  EXPECT_EQ(dev.machine().uart().tx_text(), "222");
}

// ----------------------------------------------------------- determinism

// The whole point of keying fault streams by (seed, device_id): a
// pooled rollout over a lossy pipe must produce outcomes bit-identical
// to the serial rollout's -- attempts, resumes and retransmit counts
// included (UpdateOutcome's defaulted operator== covers the new
// fields).
TEST(TransportScenarios, PooledLossyRolloutBitIdenticalToSerial) {
  CampaignOptions options;
  TransportOptions transport = clean_pipe(16);
  transport.seed = 0xd15c0;
  transport.max_rounds = 64;
  transport.faults = {.drop_per_mille = 150,
                      .corrupt_per_mille = 80,
                      .duplicate_per_mille = 60,
                      .reorder_per_mille = 100,
                      .delay_per_mille = 60};
  options.transport = transport;

  auto run = [&](common::ThreadPool* pool) {
    Fleet fleet;
    provision_fleet(fleet, 12);
    fleet.at(device_id(3)).set_online(false);  // one device unreachable
    UpdateCampaign campaign =
        fleet.stage_update(firmware(1), "fw", {.eilid = false}, options);
    return pool ? campaign.roll_out(*pool) : campaign.roll_out();
  };

  const std::vector<UpdateOutcome> serial = run(nullptr);
  common::ThreadPool pool(8);
  const std::vector<UpdateOutcome> pooled = run(&pool);
  ASSERT_EQ(serial.size(), pooled.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pooled[i]) << serial[i].device_id;
  }
  // The unreachable device reads kInterrupted in both runs.
  EXPECT_EQ(serial[3].result, UpdateResult::kInterrupted);
}

// ------------------------------------------------------------- rollout

// A halt during transfer: wave devices interrupted mid-transfer count
// as failures, the plan halts, and the affected devices sit on their
// old build with staged progress -- a later scheduler run RESUMES them
// to convergence.
TEST(RolloutTransport, HaltDuringTransferLeavesWaveResumable) {
  Fleet fleet;
  provision_fleet(fleet, 4);

  CampaignOptions lossy;
  TransportOptions transport = clean_pipe(24);
  transport.max_rounds = 1;
  transport.faults.power_loss_at_chunk = 2;  // dies after 2 chunks, every device
  lossy.transport = transport;
  RolloutPlan plan;
  plan.waves = {{.name = "canary", .device_ids = {device_id(0), device_id(1)}},
                {.name = "rest", .fraction = 1.0}};
  const RolloutReport halted =
      fleet.plan_rollout(fleet.build(firmware(1), "fw", {.eilid = false}),
                         plan, lossy)
          .run();
  EXPECT_TRUE(halted.halted);
  EXPECT_EQ(halted.waves_applied, 1u);
  for (const UpdateOutcome& out : halted.waves[0].updates) {
    EXPECT_EQ(out.result, UpdateResult::kInterrupted) << out.device_id;
  }
  // Mid-transfer devices still run the old build; the second wave was
  // never touched.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fleet.at(device_id(i)).firmware_version(), 0u);
  }

  // A fresh scheduler over a clean pipe resumes the canaries (staged
  // chunks survive) and carries the plan to completion.
  CampaignOptions clean;
  clean.transport = clean_pipe(24);
  const RolloutReport resumed =
      fleet.plan_rollout(fleet.build(firmware(1), "fw", {.eilid = false}),
                         plan, clean)
          .run();
  EXPECT_FALSE(resumed.halted);
  EXPECT_EQ(resumed.waves_applied, 2u);
  for (const UpdateOutcome& out : resumed.waves[0].updates) {
    EXPECT_EQ(out.result, UpdateResult::kApplied) << out.device_id;
    EXPECT_TRUE(out.resumed) << out.device_id;
  }
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fleet.at(device_id(i)).firmware_version(), 1u);
  }
}

// --------------------------------------------------------- self-healing

// An unreachable-then-reachable device: its interrupted transfer stays
// staged through quarantine and the remediation reflash, so the healing
// re-update RESUMES the transfer instead of restarting it.
TEST(SelfHealingTransport, RemediationResumesInterruptedTransfer) {
  Fleet fleet;
  provision_fleet(fleet, 2);
  DeviceSession& dev = fleet.at(device_id(1));

  // Interrupt a transfer on dev-01: power loss after 2 chunks, one
  // round -- kInterrupted with 2 chunks staged.
  CampaignOptions lossy;
  TransportOptions transport = clean_pipe(24);
  transport.max_rounds = 1;
  transport.faults.power_loss_at_chunk = 2;
  lossy.transport = transport;
  UpdateCampaign interrupted =
      fleet.stage_update(firmware(1), "fw", {.eilid = false}, lossy);
  ASSERT_EQ(interrupted.apply_to(dev).result, UpdateResult::kInterrupted);

  HealthMonitor health(fleet, {.heartbeat = {.period = 100},
                               .policy = {.staleness_threshold = 150}});
  CampaignOptions clean;
  clean.transport = clean_pipe(24);
  health.stage_remediation(
      fleet.stage_update(firmware(1), "fw", {.eilid = false}, clean));

  // Clean beat, then the device drops off the network long enough to
  // go stale: quarantined, but unreachable -- remediation cannot act.
  HealthReport report = health.run_until(100);
  EXPECT_TRUE(report.newly_quarantined.empty());
  dev.set_online(false);
  report = health.run_until(300);
  ASSERT_EQ(report.newly_quarantined.size(), 1u);
  EXPECT_EQ(report.newly_quarantined[0].device_id, device_id(1));
  ASSERT_EQ(report.remediations.size(), 1u);
  EXPECT_FALSE(report.remediations[0].reachable);

  // Back online: the next pass reflashes and re-updates -- and the
  // re-update resumes the staged transfer rather than starting over.
  dev.set_online(true);
  report = health.run_until(400);
  ASSERT_EQ(report.remediations.size(), 1u);
  const RemediationOutcome& healed = report.remediations[0];
  EXPECT_EQ(healed.device_id, device_id(1));
  EXPECT_TRUE(healed.reachable);
  EXPECT_EQ(healed.update.result, UpdateResult::kApplied);
  EXPECT_TRUE(healed.update.resumed);
  EXPECT_TRUE(healed.healed);
  EXPECT_EQ(dev.firmware_version(), 1u);
  EXPECT_EQ(health.quarantined().size(), 0u);
}

}  // namespace
}  // namespace eilid
