// Attack-injection engine modeling the paper's adversary (§III-B):
// full knowledge of the software, arbitrary *data-memory* tampering at
// run time (stack/heap/globals), no physical attacks. The engine
// attaches as a monitor and performs scheduled writes -- but only to
// regular RAM: secure DMEM, ROM and PMEM writes are architecturally
// impossible for a memory-corruption adversary on an EILID device
// (the engine refuses to model them).
#ifndef EILID_ATTACKS_ATTACK_H
#define EILID_ATTACKS_ATTACK_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "sim/monitor.h"

namespace eilid::attacks {

struct MemWrite {
  uint16_t addr = 0;       // absolute, or offset when sp_relative
  uint16_t value = 0;
  bool byte = false;
  bool sp_relative = false;  // addr = SP + offset at fire time
};

// When the corruption fires.
struct Trigger {
  enum class Kind : uint8_t {
    kAtPc,     // just before the instruction at `pc` executes
    kAtPcHit,  // the n-th time `pc` is about to execute
  };
  Kind kind = Kind::kAtPc;
  uint16_t pc = 0;
  unsigned hit = 1;
};

struct Attack {
  std::string name;
  Trigger trigger;
  std::vector<MemWrite> writes;
};

class AttackEngine : public sim::Monitor {
 public:
  explicit AttackEngine(sim::Machine& machine) : machine_(machine) {
    machine.add_monitor(this);
  }

  // Schedule an attack; throws eilid::ConfigError if an absolute write
  // targets memory a data-corruption adversary cannot reach.
  void schedule(Attack attack);

  size_t fired_count() const { return fired_; }
  bool all_fired() const { return fired_ == attacks_.size(); }
  // Machine cycle at which the most recent attack fired.
  uint64_t last_fire_cycle() const { return last_fire_cycle_; }

  // sim::Monitor
  bool on_fetch(uint16_t pc) override;
  void on_device_reset() override {}  // attacks do not re-arm after reset

 private:
  void fire(const Attack& attack);

  sim::Machine& machine_;
  std::vector<Attack> attacks_;
  std::vector<bool> done_;
  std::vector<unsigned> hits_;
  size_t fired_ = 0;
  uint64_t last_fire_cycle_ = 0;
};

// --- Exploit payload builders for the vuln_gateway app. ---

// UART packet that overflows recv_packet's 8-byte stack buffer and
// overwrites the saved return address with `target`.
std::vector<uint8_t> overflow_ret_payload(uint16_t target);

// Benign packet (fits the buffer).
std::vector<uint8_t> benign_payload();

}  // namespace eilid::attacks

#endif  // EILID_ATTACKS_ATTACK_H
