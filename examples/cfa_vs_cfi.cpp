// The paper's motivating comparison, executable: a control-flow
// attestation (CFA) device detects a hijack only when the verifier
// next attests -- after the malicious code already ran -- while the
// EILID device prevents the hijack outright. Uses the same exploit on
// both fleet devices; the fleet's VerifierService owns the CFA
// device's key, nonces and replay state.
#include <cstdio>

#include "src/apps/apps.h"
#include "src/attacks/attack.h"
#include "src/eilid/fleet.h"

using namespace eilid;

int main() {
  const auto& app = apps::vuln_gateway();
  Fleet fleet;

  // --- CFA device: unprotected app + logging monitor + verifier. ---
  // Generous on-device log so no evidence is lost to overflow (with the
  // default 256-edge log the hijack edge is dropped before the first
  // report -- run bench_ablation_cfa_latency for that effect).
  DeviceSession& cfa_device =
      fleet.provision("gw-cfa", app.source, app.name,
                      EnforcementPolicy::kCfaBaseline,
                      {.cfa = {.log_capacity = 8192}});

  cfa_device.machine().uart().feed(
      attacks::overflow_ret_payload(cfa_device.symbol("unlock")));

  std::printf("== CFA device ==\n");
  bool detected = false;
  for (int window = 0; window < 8 && !detected; ++window) {
    cfa_device.run(25000);  // attestation window
    bool hijack_visible =
        cfa_device.machine().uart().tx_text().find('U') != std::string::npos;
    auto result = fleet.verifier().attest(cfa_device);
    std::printf("  window %d: %4zu edges logged, hijack already ran: %-3s, "
                "verifier says: %s\n",
                window, result.edges, hijack_visible ? "YES" : "no",
                result.path_ok ? "path ok" : "PATH VIOLATION");
    if (!result.path_ok) {
      detected = true;
      std::printf("  -> bad edge 0x%04x -> 0x%04x reported %llu cycles into "
                  "the run; the attacker's code finished long before.\n",
                  result.first_bad->from, result.first_bad->to,
                  static_cast<unsigned long long>(result.cycle));
    }
  }

  // --- EILID device: same exploit. ---
  std::printf("\n== EILID device ==\n");
  DeviceSession& eilid_device =
      fleet.provision("gw-eilid", app.source, app.name,
                      EnforcementPolicy::kEilidHw, {.halt_on_reset = true});
  eilid_device.machine().uart().feed(
      attacks::overflow_ret_payload(eilid_device.symbol("unlock")));
  eilid_device.run_to_symbol("halt", 200000);
  bool hijacked =
      eilid_device.machine().uart().tx_text().find('U') != std::string::npos;
  std::printf("  hijack ran: %s; device reset: %s\n", hijacked ? "YES" : "no",
              eilid_device.violation_count()
                  ? eilid_device.last_reset_reason().c_str()
                  : "none");
  std::printf(
      "\nCFA is after-the-fact evidence; EILID is a real-time countermeasure\n"
      "-- the exact gap the paper sets out to close (§I).\n");
  return 0;
}
