// Reproduces Table III: the general-purpose registers EILID reserves
// and their roles, cross-checked against the generated EILIDsw ROM
// (every reserved register must actually appear in the trusted code;
// no other general-purpose register may be clobbered by it).
#include <cstdio>
#include <string>

#include "src/eilid/config.h"
#include "src/eilid/rom_builder.h"

using namespace eilid::core;

int main() {
  std::printf("Table III: reserved registers for EILID\n");
  std::printf("%-10s %s\n", "Registers", "Description");
  for (int i = 0; i < 70; ++i) std::putchar('-');
  std::putchar('\n');
  std::printf("%-10s %s\n", "r4",
              "Used as the S_EILID function selector (argument of "
              "S_EILID_init())");
  std::printf("%-10s %s\n", "r5",
              "Used as a pointer to the shadow stack's current index");
  std::printf("%-10s %s\n", "r6, r7",
              "Used as arguments of other S_EILID functions");

  // Cross-check against the generated trusted software.
  std::string rom = generate_rom_source(RomConfig{});
  auto uses = [&](const std::string& reg) {
    return rom.find(reg) != std::string::npos;
  };
  std::printf("\ncross-check vs generated EILIDsw:\n");
  std::printf("  r4 used: %s, r5 used: %s, r6 used: %s, r7 used: %s\n",
              uses("r4") ? "yes" : "NO", uses("r5") ? "yes" : "NO",
              uses("r6") ? "yes" : "NO", uses("r7") ? "yes" : "NO");
  bool clean = true;
  for (int r = 8; r <= 15; ++r) {
    if (uses("r" + std::to_string(r))) {
      std::printf("  UNEXPECTED: ROM touches r%d\n", r);
      clean = false;
    }
  }
  std::printf("  r8..r15 untouched by EILIDsw: %s\n", clean ? "yes" : "NO");
  return clean ? 0 : 1;
}
