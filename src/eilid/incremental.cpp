#include "eilid/incremental.h"

#include <algorithm>

#include "common/error.h"

namespace eilid {

void fold(AttestSummary& summary,
          const VerifierService::AttestResult& result) {
  summary.device_id = result.device_id;
  summary.attested = summary.attested && result.attested;
  summary.mac_ok = summary.mac_ok && result.mac_ok;
  summary.seq_ok = summary.seq_ok && result.seq_ok;
  summary.edges += result.edges;
  summary.dropped += result.dropped;
  // Sticky conviction: the first failing slice pins the verdict. The
  // first bad edge is the same edge the barrier sweep would name --
  // every edge before it replayed clean, in order, so the replay state
  // at that point is identical under any slicing.
  if (summary.path_ok && !result.path_ok) {
    summary.path_ok = false;
    summary.first_bad = result.first_bad;
  }
}

IncrementalVerifier::IncrementalVerifier(Fleet& fleet,
                                         IncrementalOptions options)
    : fleet_(&fleet), options_(options) {
  if (options_.period == 0) {
    throw FleetError("incremental verifier: period must be nonzero");
  }
}

size_t IncrementalVerifier::max_edges_per_slice() const {
  if (options_.max_bytes_per_slice == 0) return 0;  // unbounded
  const size_t edges = options_.max_bytes_per_slice / cfa::LoggedEdge::kWireBytes;
  return edges == 0 ? 1 : edges;  // a positive byte budget drains >= 1
}

IncrementalVerifier::WindowReport IncrementalVerifier::run_until(
    Tick deadline) {
  return run(deadline, nullptr);
}

IncrementalVerifier::WindowReport IncrementalVerifier::run_until(
    Tick deadline, common::ThreadPool& pool) {
  return run(deadline, &pool);
}

IncrementalVerifier::WindowReport IncrementalVerifier::run(
    Tick deadline, common::ThreadPool* pool) {
  FleetClock& clock = fleet_->clock();
  WindowReport report;
  report.from = clock.now();
  if (!scheduled_ || next_round_ < report.from) {
    // First run, or the driver advanced the clock elsewhere (a
    // heartbeat window, a rollout soak) past the pending round:
    // re-anchor the cadence at now instead of replaying a backlog of
    // degenerate rounds all at the same (already-reached) tick.
    next_round_ = report.from + options_.period;
    scheduled_ = true;
  }
  const size_t max_edges = max_edges_per_slice();

  while (next_round_ <= deadline) {
    clock.advance_to(next_round_);
    Round round;
    round.tick = next_round_;

    // Re-snapshot the watched set each round (CFA-capable sessions in
    // device-id order) so deployments mid-window join the rotation.
    std::vector<DeviceSession*> watched;
    for (DeviceSession* session : fleet_->sessions()) {
      if (session->cfa_monitor() != nullptr) watched.push_back(session);
    }
    std::sort(watched.begin(), watched.end(),
              [](const DeviceSession* a, const DeviceSession* b) {
                return a->id() < b->id();
              });

    if (!watched.empty()) {
      // Resume the cyclic id-order walk strictly after the cursor. The
      // cursor advances past *examined* devices, not just sliced ones,
      // so a run of offline devices cannot stall the rotation.
      size_t start = 0;
      while (start < watched.size() && watched[start]->id() <= cursor_) {
        ++start;
      }
      const size_t budget = options_.max_devices_per_tick == 0
                                ? watched.size()
                                : options_.max_devices_per_tick;
      std::vector<DeviceSession*> picked;
      for (size_t examined = 0;
           examined < watched.size() && picked.size() < budget; ++examined) {
        DeviceSession* session = watched[(start + examined) % watched.size()];
        cursor_ = session->id();
        if (session->online()) picked.push_back(session);
      }

      round.slices.resize(picked.size());
      if (pool != nullptr) {
        // Slices land by rotation index: workers interleave but the
        // round -- and every fold below -- is bit-identical to the
        // serial one (per-device evidence and replay state are
        // private; attest_slice takes the device's own lock).
        pool->parallel_for(picked.size(), [&](size_t i) {
          round.slices[i] =
              fleet_->verifier().attest_slice(*picked[i], max_edges);
        });
      } else {
        for (size_t i = 0; i < picked.size(); ++i) {
          round.slices[i] =
              fleet_->verifier().attest_slice(*picked[i], max_edges);
        }
      }

      std::lock_guard<std::mutex> lock(mu_);
      for (const VerifierService::AttestResult& slice : round.slices) {
        fold(summaries_[slice.device_id], slice);
      }
    }

    report.rounds.push_back(std::move(round));
    next_round_ += options_.period;
  }

  clock.advance_to(deadline);
  report.until = clock.now();
  return report;
}

std::vector<AttestSummary> IncrementalVerifier::summaries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AttestSummary> out;
  out.reserve(summaries_.size());
  for (const auto& [id, summary] : summaries_) {
    (void)id;
    out.push_back(summary);
  }
  return out;
}

AttestSummary IncrementalVerifier::summary(
    const std::string& device_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = summaries_.find(device_id);
  return it == summaries_.end() ? AttestSummary{} : it->second;
}

}  // namespace eilid
