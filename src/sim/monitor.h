// Hardware-monitor interface: bus snooping (inherited from BusWatcher)
// plus PC-transition and interrupt visibility. CASU and EILID hardware
// are implemented against this interface; so is the test tracer.
#ifndef EILID_SIM_MONITOR_H
#define EILID_SIM_MONITOR_H

#include <optional>

#include "sim/bus.h"
#include "sim/reset.h"

namespace eilid::sim {

class Monitor : public BusWatcher {
 public:
  // A violation latched by this monitor; the machine resets the device
  // and records the reason.
  virtual std::optional<ResetReason> pending_violation() const {
    return std::nullopt;
  }
  virtual void clear_violation() {}

  // Notification that the device reset (monitors re-arm their state).
  virtual void on_device_reset() {}

  // Interrupt gating: EILID masks interrupts while the PC is inside the
  // secure ROM (atomicity of S_EILID functions).
  virtual bool allow_interrupt(uint16_t current_pc) {
    (void)current_pc;
    return true;
  }

  // Fired when the CPU vectors to an ISR.
  virtual void on_interrupt(int vector_index, uint16_t from_pc, uint16_t to_pc) {
    (void)vector_index;
    (void)from_pc;
    (void)to_pc;
  }

  // Fired after each retired instruction with the PC transition.
  // `fallthrough` is the already-decoded fall-through address of the
  // instruction at from_pc (== from_pc when nothing decoded): a step
  // with to_pc != fallthrough is a control transfer, so monitors spot
  // transfers by comparing two integers instead of re-decoding the
  // instruction stream.
  virtual void on_step(uint16_t from_pc, uint16_t to_pc, uint16_t fallthrough) {
    (void)from_pc;
    (void)to_pc;
    (void)fallthrough;
  }
};

}  // namespace eilid::sim

#endif  // EILID_SIM_MONITOR_H
