#include "isa/operand.h"

#include "isa/registers.h"

namespace eilid::isa {

std::optional<CgEncoding> constant_generator(int32_t value) {
  // -1 may arrive as the 16-bit pattern 0xFFFF.
  if (value == 0xFFFF) value = -1;
  switch (value) {
    case 0:
      return CgEncoding{kCG2, 0};
    case 1:
      return CgEncoding{kCG2, 1};
    case 2:
      return CgEncoding{kCG2, 2};
    case -1:
      return CgEncoding{kCG2, 3};
    case 4:
      return CgEncoding{kSR, 2};
    case 8:
      return CgEncoding{kSR, 3};
    default:
      return std::nullopt;
  }
}

std::optional<int32_t> constant_from_cg(uint8_t reg, uint8_t as) {
  if (reg == kCG2) {
    switch (as) {
      case 0: return 0;
      case 1: return 1;
      case 2: return 2;
      case 3: return -1;
    }
  }
  if (reg == kSR) {
    if (as == 2) return 4;
    if (as == 3) return 8;
  }
  return std::nullopt;
}

}  // namespace eilid::isa
