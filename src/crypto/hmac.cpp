#include "crypto/hmac.h"

#include <array>

namespace eilid::crypto {

HmacSha256::HmacSha256(std::span<const uint8_t> key) {
  constexpr size_t kBlock = Sha256::kBlockSize;
  std::array<uint8_t, kBlock> k0{};

  if (key.size() > kBlock) {
    Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), k0.begin());
  } else {
    std::copy(key.begin(), key.end(), k0.begin());
  }

  for (size_t i = 0; i < kBlock; ++i) {
    ipad_[i] = static_cast<uint8_t>(k0[i] ^ 0x36);
    opad_[i] = static_cast<uint8_t>(k0[i] ^ 0x5c);
  }
  inner_.update(std::span<const uint8_t>(ipad_.data(), ipad_.size()));
}

Digest HmacSha256::finish() {
  Digest inner_digest = inner_.finish();  // finish() resets inner_
  Sha256 outer;
  outer.update(std::span<const uint8_t>(opad_.data(), opad_.size()));
  outer.update(
      std::span<const uint8_t>(inner_digest.data(), inner_digest.size()));
  inner_.update(std::span<const uint8_t>(ipad_.data(), ipad_.size()));  // re-arm
  return outer.finish();
}

Digest hmac_sha256(std::span<const uint8_t> key, std::span<const uint8_t> message) {
  HmacSha256 mac(key);
  mac.update(message);
  return mac.finish();
}

Digest hmac_sha256(std::string_view key, std::string_view message) {
  return hmac_sha256(
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(key.data()), key.size()),
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(message.data()),
                               message.size()));
}

bool digest_equal(const Digest& a, const Digest& b) {
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc = static_cast<uint8_t>(acc | (a[i] ^ b[i]));
  return acc == 0;
}

Digest derive_key(std::span<const uint8_t> master, std::string_view label) {
  return hmac_sha256(master,
                     std::span<const uint8_t>(
                         reinterpret_cast<const uint8_t*>(label.data()), label.size()));
}

}  // namespace eilid::crypto
