// Parsed representation of one assembly source line, before symbol
// resolution. The instrumenter (src/eilid) pattern-matches on
// statements; the assembler lowers them to machine words.
#ifndef EILID_MASM_STATEMENT_H
#define EILID_MASM_STATEMENT_H

#include <cstdint>
#include <string>
#include <vector>

namespace eilid::masm {

// A numeric expression: `literal`, `symbol`, or `symbol +/- literal`.
// '$' names the address of the statement that uses it.
struct Expr {
  std::string symbol;  // empty for pure literals
  int32_t offset = 0;

  bool is_literal() const { return symbol.empty(); }
  static Expr literal(int32_t v) { return {"", v}; }
  static Expr sym(std::string s, int32_t off = 0) { return {std::move(s), off}; }
};

// An operand as written, e.g. "#0x200", "r6", "2(r1)", "&0x0122",
// "@r4+", "loop".
struct OperandExpr {
  enum class Kind : uint8_t {
    kReg,          // r6
    kImmediate,    // #expr
    kIndexed,      // expr(Rn)
    kIndirect,     // @Rn
    kIndirectInc,  // @Rn+
    kAbsolute,     // &expr
    kSymbolic,     // bare expr (PC-relative memory operand, or jump target)
  };
  Kind kind = Kind::kReg;
  uint8_t reg = 0;
  Expr expr;
};

struct Statement {
  enum class Kind : uint8_t { kEmpty, kInstruction, kDirective };

  Kind kind = Kind::kEmpty;
  std::string label;  // label defined on this line ("" if none)

  // kInstruction:
  std::string mnemonic;  // lowercase, suffix stripped (may be emulated)
  bool byte_suffix = false;
  std::vector<OperandExpr> operands;

  // kDirective:
  std::string directive;          // lowercase, without the leading dot
  std::vector<std::string> args;  // raw comma-split argument strings

  int line_no = 0;
  std::string text;  // original source (without comment), for listings
};

}  // namespace eilid::masm

#endif  // EILID_MASM_STATEMENT_H
