#include "attacks/attack.h"

#include "common/error.h"
#include "common/hex.h"
#include "sim/memory_map.h"

namespace eilid::attacks {

void AttackEngine::schedule(Attack attack) {
  for (const auto& w : attack.writes) {
    if (!w.sp_relative && !sim::is_ram(w.addr)) {
      throw ConfigError(
          "attack write outside data RAM at " + hex16(w.addr) +
          ": a memory-corruption adversary cannot reach PMEM/ROM/secure DMEM");
    }
  }
  attacks_.push_back(std::move(attack));
  done_.push_back(false);
  hits_.push_back(0);
}

void AttackEngine::fire(const Attack& attack) {
  // The adversary's write happens "between" instructions: raw stores
  // model memory corruption achieved through a data-oriented exploit.
  for (const auto& w : attack.writes) {
    uint16_t addr = w.addr;
    if (w.sp_relative) {
      addr = static_cast<uint16_t>(machine_.cpu().sp() + w.addr);
      if (!sim::is_ram(addr)) continue;  // exploit window not reachable
    }
    if (w.byte) {
      machine_.bus().raw_store_byte(addr, static_cast<uint8_t>(w.value));
    } else {
      machine_.bus().raw_store_word(addr, w.value);
    }
  }
  ++fired_;
  last_fire_cycle_ = machine_.cycles();
}

bool AttackEngine::on_fetch(uint16_t pc) {
  for (size_t i = 0; i < attacks_.size(); ++i) {
    if (done_[i]) continue;
    const auto& a = attacks_[i];
    if (a.trigger.pc != pc) continue;
    if (a.trigger.kind == Trigger::Kind::kAtPc) {
      done_[i] = true;
      fire(a);
    } else if (++hits_[i] == a.trigger.hit) {
      done_[i] = true;
      fire(a);
    }
  }
  return true;
}

std::vector<uint8_t> overflow_ret_payload(uint16_t target) {
  // recv_packet: buf[8] at SP, saved return address at SP+8.
  std::vector<uint8_t> p;
  p.push_back(10);  // len: 8 filler + 2 bytes of return address
  for (int i = 0; i < 8; ++i) p.push_back(0x41);
  p.push_back(static_cast<uint8_t>(target));  // little endian
  p.push_back(static_cast<uint8_t>(target >> 8));
  return p;
}

std::vector<uint8_t> benign_payload() { return {4, 'p', 'i', 'n', 'g'}; }

}  // namespace eilid::attacks
