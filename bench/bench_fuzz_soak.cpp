// Scenario-fuzzer soak: generative workloads + attack mutators through
// the differential harness (src/fuzz/harness.h). Every generated
// program runs under all four enforcement policies x all three
// execution engines demanding bit-identical state and attestation
// evidence, pooled-vs-serial verifier sweeps must agree verdict for
// verdict, and every mutated case (diverted jumps, gadget-repointed
// dispatch tables, tampered reports, bit-flipped packages, corrupted
// chunk streams) must be convicted or refused. Any divergence FAILS
// the bench and prints the reproducing seed on stderr.
//
// Reproduce a failure:
//   bench_fuzz_soak --seed 0x<printed seed> --programs 1 --mutations 1
// then minimize it with DifferentialHarness::shrink (see
// tests/test_fuzz_regressions.cpp for pinned examples).
//
// Usage: bench_fuzz_soak [--smoke] [--seed N] [--programs N] [--mutations N]
//   --smoke: the CI-sized bounded corpus (500 programs x 3 engines x 4
//   policies, plus >= 200 mutated cases); default is the larger local
//   soak.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/fuzz/harness.h"

using namespace eilid;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  fuzz::HarnessOptions options;
  options.programs = 2000;
  options.mutations = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      options.programs = 500;
      options.mutations = 24;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--programs") == 0 && i + 1 < argc) {
      options.programs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--mutations") == 0 && i + 1 < argc) {
      options.mutations = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--seed N] [--programs N] "
                   "[--mutations N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("Scenario-fuzzer soak (%s: %d programs, %d mutation seeds, "
              "base seed 0x%llx)\n",
              smoke ? "smoke" : "full", options.programs, options.mutations,
              static_cast<unsigned long long>(options.seed));

  fuzz::DifferentialHarness harness(options);
  const auto t0 = clock_type::now();
  const fuzz::HarnessReport report = harness.run();
  const double wall_ms = ms_since(t0);

  std::printf("\n%-28s %d\n", "programs checked", report.programs);
  std::printf("%-28s %d\n", "engine x policy runs", report.engine_runs);
  std::printf("%-28s %d\n", "mutated cases", report.mutation_cases);
  std::printf("%-28s %d\n", "  convicted by CFA replay", report.convicted);
  std::printf("%-28s %d\n", "  refused up front", report.refused);
  std::printf("%-28s %zu\n", "divergences", report.failures.size());
  std::printf("%-28s %.1f ms\n", "wall clock", wall_ms);

  // The run only counts if it exercised what it claims: when a flag
  // combination (or a mutator planning drought) shrinks the corpus
  // below the advertised floor, fail loudly instead of gating green on
  // a near-empty sweep. Floors apply to the named presets, not to
  // explicit --programs/--mutations reproduce runs.
  bool ok = report.ok();
  if (smoke) {
    if (report.programs < 500 || report.mutation_cases < 200) {
      std::printf("!! smoke corpus floor violated: %d programs, %d mutated "
                  "cases (need >= 500 / >= 200)\n",
                  report.programs, report.mutation_cases);
      ok = false;
    }
  }

  FILE* json = std::fopen("BENCH_fuzz_soak.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"fuzz_soak\",\n  \"mode\": \"%s\",\n"
                 "  \"seed\": %llu,\n"
                 "  \"rows\": [\n"
                 "    {\"policy\": \"all\", \"programs\": %d, "
                 "\"engine_runs\": %d, \"mutation_cases\": %d, "
                 "\"convicted\": %d, \"refused\": %d, \"wall_ms\": %.1f}\n"
                 "  ],\n  \"ok\": %s\n}\n",
                 smoke ? "smoke" : "full",
                 static_cast<unsigned long long>(options.seed),
                 report.programs, report.engine_runs, report.mutation_cases,
                 report.convicted, report.refused, wall_ms,
                 ok ? "true" : "false");
    std::fclose(json);
  }

  if (!ok && !report.failures.empty()) {
    std::fprintf(stderr,
                 "\nreproduce: bench_fuzz_soak --seed <failing seed above> "
                 "--programs 1 --mutations 1\n");
  }
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
