// EILIDsw generator: produces the trusted-software ROM image as real
// MSP430 assembly (entry / body / leave sections, paper Fig. 9a). The
// routines execute on the simulator, so their instruction counts and
// cycle costs are measured properties, not assumptions.
#ifndef EILID_EILID_ROM_BUILDER_H
#define EILID_EILID_ROM_BUILDER_H

#include <string>

#include "eilid/config.h"
#include "masm/assembler.h"

namespace eilid::core {

struct RomInfo {
  masm::AssembledUnit unit;    // assembled EILIDsw
  uint16_t entry_start = 0;    // entry section: the NS_* selector stubs
  uint16_t entry_end = 0;      // (inclusive; the only legal ROM entries)
  uint16_t leave_start = 0;    // leave section range (legal exit source)
  uint16_t leave_end = 0;
  RomConfig config;
};

// Generate the EILIDsw assembly text (useful for docs/inspection).
std::string generate_rom_source(const RomConfig& config);

// Generate and assemble EILIDsw.
RomInfo build_rom(const RomConfig& config = {});

}  // namespace eilid::core

#endif  // EILID_EILID_ROM_BUILDER_H
