// Resilient OTA walkthrough, in three acts, all deterministic (every
// fault roll comes from a stream keyed by (seed, device_id) -- rerun
// it and the same chunks drop on the same devices):
//
//   Act 1 -- a campaign over a hostile pipe. Firmware ships to a small
//   fleet in 24-byte chunks over a transport that drops, corrupts,
//   duplicates, reorders and delays. Corrupted chunks are NACKed by
//   the transport checksum and retransmitted; the package MAC still
//   authenticates the reassembled whole. Every device converges to the
//   new build; the per-device attempt/retransmit counts show what the
//   pipe cost.
//
//   Act 2 -- power loss, twice. First mid-transfer: the supply fails
//   at a chunk boundary, the device reboots on its old image (staged
//   chunks live in a non-volatile slot, PMEM is untouched), and the
//   re-delivered campaign RESUMES -- it ships only the missing chunks.
//   Then mid-apply: the supply fails between two regions of the commit
//   replay; the non-volatile journal is finished idempotently by the
//   bootloader half at the next boot, inside the same delivery call.
//   Neither cut ever leaves a half-flashed device observable.
//
//   Act 3 -- an adversary in the pipe. A forged chunk with a freshly
//   recomputed transport checksum sails through reassembly and dies at
//   the package MAC: kBadMac, the monitor latches, the version stays
//   put. The device heals by reset and a clean delivery applies.
#include <cstdio>
#include <string>

#include "src/eilid/fleet.h"
#include "src/eilid/transport.h"
#include "src/eilid/update.h"

using namespace eilid;

namespace {

std::string app_version(char marker) {
  std::string s = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
    mov.b #')";
  s += marker;
  s += R"(', &UART_TX
halt:
    jmp halt
.vector 15, main
.end
)";
  return s;
}

Fleet& provision(Fleet& fleet, int devices) {
  for (int i = 0; i < devices; ++i) {
    DeviceSession& dev = fleet.provision(
        "node-" + std::to_string(i), app_version('1'), "fw",
        EnforcementPolicy::kCfaBaseline, {.cfa = {.log_capacity = 65536}});
    dev.run_to_symbol("halt", 10000);
  }
  return fleet;
}

void print_outcome(const UpdateOutcome& out) {
  std::printf("  %s: %s, %u attempt%s%s, %zu bytes retransmitted\n",
              out.device_id.c_str(),
              std::string(update_result_name(out.result)).c_str(),
              out.attempts, out.attempts == 1 ? "" : "s",
              out.resumed ? " (resumed)" : "", out.bytes_retransmitted);
}

void act_one() {
  std::printf("=== Act 1: campaign over a lossy pipe ===\n");
  Fleet fleet;
  provision(fleet, 4);

  CampaignOptions options;
  TransportOptions transport;
  transport.chunk_size = 24;
  transport.seed = 0xC0FFEE;
  transport.max_rounds = 64;
  transport.faults = {.drop_per_mille = 200,
                      .corrupt_per_mille = 100,
                      .duplicate_per_mille = 100,
                      .reorder_per_mille = 150,
                      .delay_per_mille = 100};
  options.transport = transport;

  UpdateCampaign campaign =
      fleet.stage_update(app_version('2'), "fw", {.eilid = false}, options);
  for (const UpdateOutcome& out : campaign.roll_out()) print_outcome(out);
  for (const auto& verdict : fleet.verifier().verify_all()) {
    std::printf("  attest %s: %s\n", verdict.device_id.c_str(),
                verdict.ok() ? "ok" : "CONVICTED");
  }
}

void act_two() {
  std::printf("\n=== Act 2: power loss mid-transfer, then mid-apply ===\n");
  Fleet fleet;
  provision(fleet, 2);

  // --- mid-transfer: the supply fails after 2 of the chunks have
  // landed (8-byte chunks keep the boundary well short of the end).
  DeviceSession& cut_transfer = fleet.at("node-0");
  CampaignOptions interrupted;
  TransportOptions transport;
  transport.chunk_size = 8;
  transport.max_rounds = 1;  // the reboot ends this delivery attempt
  transport.faults.power_loss_at_chunk = 2;
  interrupted.transport = transport;
  UpdateCampaign campaign =
      fleet.stage_update(app_version('2'), "fw", {.eilid = false},
                         interrupted);
  const UpdateOutcome first = campaign.apply_to(cut_transfer);
  print_outcome(first);
  size_t staged = 0;
  for (bool have :
       cut_transfer.staged_update_chunks(campaign.package_for(cut_transfer).mac)) {
    staged += have;
  }
  std::printf("  rebooted on v%u with %zu chunks staged; attest %s\n",
              cut_transfer.firmware_version(), staged,
              fleet.verifier().attest(cut_transfer).ok() ? "ok" : "CONVICTED");

  CampaignOptions clean;
  clean.transport = TransportOptions{.chunk_size = 8};
  const UpdateOutcome resumed =
      fleet.stage_update(app_version('2'), "fw", {.eilid = false}, clean)
          .apply_to(cut_transfer);
  print_outcome(resumed);  // resumed: only the missing chunks shipped

  // --- mid-apply: the supply fails during the commit replay itself.
  DeviceSession& cut_apply = fleet.at("node-1");
  CampaignOptions mid_apply;
  mid_apply.transport = TransportOptions{.chunk_size = 24};
  mid_apply.transport->faults.power_loss_mid_apply = 0;  // before region 1
  const UpdateOutcome healed =
      fleet.stage_update(app_version('2'), "fw", {.eilid = false}, mid_apply)
          .apply_to(cut_apply);
  print_outcome(healed);  // 2 attempts: the boot-time recovery finished it
  std::printf("  journal replayed at boot; now on v%u, attest %s\n",
              cut_apply.firmware_version(),
              fleet.verifier().attest(cut_apply).ok() ? "ok" : "CONVICTED");
}

void act_three() {
  std::printf("\n=== Act 3: forged chunk dies at the package MAC ===\n");
  Fleet fleet;
  provision(fleet, 1);
  DeviceSession& dev = fleet.at("node-0");

  CampaignOptions forged;
  forged.transport = TransportOptions{.chunk_size = 24};
  forged.transport->tamper_chunk = [](const DeviceSession&,
                                      casu::TransferChunk& chunk) {
    if (chunk.index != 1) return;
    chunk.payload[0] ^= 0xA5;
    chunk.checksum = casu::chunk_checksum(chunk);  // adversary, not noise
  };
  const UpdateOutcome attack =
      fleet.stage_update(app_version('2'), "fw", {.eilid = false}, forged)
          .apply_to(dev);
  print_outcome(attack);
  std::printf("  still v%u; monitor latched, device heals by reset\n",
              dev.firmware_version());

  dev.power_cycle();
  CampaignOptions clean;
  clean.transport = TransportOptions{.chunk_size = 24};
  const UpdateOutcome recovered =
      fleet.stage_update(app_version('2'), "fw", {.eilid = false}, clean)
          .apply_to(dev);
  print_outcome(recovered);

  dev.machine().uart().clear_tx();
  dev.power_cycle();
  dev.run_to_symbol("halt", 10000);
  std::printf("  node-0 now transmits '%c'\n",
              dev.machine().uart().tx_text()[0]);
}

}  // namespace

int main() {
  act_one();
  act_two();
  act_three();
  return 0;
}
