// The memory bus: a 64 KB von Neumann address space with memory-mapped
// peripherals and *veto-capable* watchers.
//
// Watchers model bus-snooping hardware (CASU / EILID monitors). They
// see every CPU access before it commits and may deny it; a denied
// write never lands (this is how CASU guarantees PMEM immutability --
// the violating store is suppressed and the device resets).
#ifndef EILID_SIM_BUS_H
#define EILID_SIM_BUS_H

#include <array>
#include <cstdint>
#include <vector>

#include "sim/memory_map.h"

namespace eilid::sim {

// A memory-mapped peripheral occupying a register address range.
class Peripheral {
 public:
  virtual ~Peripheral() = default;

  // Register interface (addresses are absolute).
  virtual uint16_t read(uint16_t addr) = 0;
  virtual void write(uint16_t addr, uint16_t value) = 0;

  // Advance the peripheral's clock by `cycles` CPU cycles.
  virtual void tick(uint64_t cycles) { (void)cycles; }

  // Asserted interrupt line (vector index), or -1.
  virtual int pending_irq() const { return -1; }
  virtual void ack_irq() {}

  // Restore power-on state.
  virtual void reset() {}

  // Address range [first, last] this peripheral claims.
  virtual uint16_t first_addr() const = 0;
  virtual uint16_t last_addr() const = 0;
};

// Bus-snooping hardware monitor. Return false from an on_* hook to
// deny the access; record the violation reason internally (the machine
// queries the monitor afterwards).
class BusWatcher {
 public:
  virtual ~BusWatcher() = default;
  // Instruction fetch beginning at pc (fires once per instruction).
  virtual bool on_fetch(uint16_t pc) {
    (void)pc;
    return true;
  }
  virtual bool on_read(uint16_t addr, uint16_t pc) {
    (void)addr;
    (void)pc;
    return true;
  }
  virtual bool on_write(uint16_t addr, uint16_t value, bool byte, uint16_t pc) {
    (void)addr;
    (void)value;
    (void)byte;
    (void)pc;
    return true;
  }
};

class Bus {
 public:
  Bus();

  // --- CPU-visible accesses (watched, peripheral-aware). ---
  // `pc` attributes the access to the currently executing instruction.
  // Denied reads return 0xFFFF; denied writes are dropped. Either sets
  // access_denied() until cleared.
  uint16_t read_word(uint16_t addr, uint16_t pc);
  uint8_t read_byte(uint16_t addr, uint16_t pc);
  void write_word(uint16_t addr, uint16_t value, uint16_t pc);
  void write_byte(uint16_t addr, uint8_t value, uint16_t pc);

  // Instruction-fetch notification; false if a watcher denied it.
  bool notify_fetch(uint16_t pc);

  bool access_denied() const { return access_denied_; }
  void clear_access_denied() { access_denied_ = false; }

  // --- Raw accesses (image loading, decode, host inspection). ---
  // No watchers, no peripherals: backing memory only.
  uint16_t raw_word(uint16_t addr) const;
  uint8_t raw_byte(uint16_t addr) const { return mem_[addr]; }
  void raw_store_word(uint16_t addr, uint16_t value);
  void raw_store_byte(uint16_t addr, uint8_t value) { mem_[addr] = value; }

  // --- Wiring. ---
  void add_watcher(BusWatcher* watcher) { watchers_.push_back(watcher); }
  void add_peripheral(Peripheral* peripheral);
  void tick_peripherals(uint64_t cycles);
  int pending_irq() const;  // highest-priority asserted line, or -1
  void ack_irq(int line);
  void reset_peripherals();

  // Zero RAM and secure RAM (CASU reset wipes volatile state; PMEM and
  // ROM persist).
  void wipe_volatile();

 private:
  Peripheral* peripheral_at(uint16_t addr) const;
  bool check_read(uint16_t addr, uint16_t pc);
  bool check_write(uint16_t addr, uint16_t value, bool byte, uint16_t pc);

  std::array<uint8_t, 0x10000> mem_{};
  std::vector<BusWatcher*> watchers_;
  std::vector<Peripheral*> peripherals_;
  bool access_denied_ = false;
};

}  // namespace eilid::sim

#endif  // EILID_SIM_BUS_H
