// CASU authenticated software update.
//
// CASU's only path for modifying PMEM is an update authorised by a MAC
// computed with a device-unique key and bound to a monotonic version
// (anti-rollback). The transport and the device-side MAC computation
// are modeled at the engine level: verification logic (HMAC-SHA256,
// version check) is real; the bytes are applied to PMEM under an open
// monitor session, mirroring the ROM update routine's effect.
#ifndef EILID_CASU_UPDATE_H
#define EILID_CASU_UPDATE_H

#include <cstdint>
#include <span>
#include <vector>

#include "casu/monitor.h"
#include "crypto/hmac.h"
#include "sim/machine.h"

namespace eilid::casu {

struct UpdatePackage {
  uint16_t target_addr = 0;
  uint32_t version = 0;
  std::vector<uint8_t> payload;
  crypto::Digest mac{};
};

enum class UpdateStatus : uint8_t {
  kApplied,
  kBadMac,
  kRollback,       // version <= current version
  kBadRegion,      // payload does not fit in PMEM
};

class UpdateEngine {
 public:
  // `device_key` is the master key provisioned at manufacture; the
  // update key is derived as HMAC(master, "casu-update").
  UpdateEngine(std::span<const uint8_t> device_key, CasuMonitor& monitor);

  // Authority (verifier) side: build a correctly MAC'd package.
  UpdatePackage make_package(uint16_t target_addr, uint32_t version,
                             std::vector<uint8_t> payload) const;

  // Device side: verify and apply. On kBadMac the monitor latches an
  // update-auth violation so the device resets (CASU heals on abuse).
  UpdateStatus apply(sim::Machine& machine, const UpdatePackage& package);

  uint32_t current_version() const { return version_; }

 private:
  crypto::Digest mac_for(const UpdatePackage& package) const;

  crypto::Digest update_key_;
  CasuMonitor& monitor_;
  uint32_t version_ = 0;
};

}  // namespace eilid::casu

#endif  // EILID_CASU_UPDATE_H
