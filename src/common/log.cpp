#include "common/log.h"

#include <cstdio>

namespace eilid {
namespace {
LogLevel g_level = LogLevel::kWarning;

void emit(const char* tag, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_warning(const std::string& msg) {
  if (g_level >= LogLevel::kWarning) emit("warn", msg);
}
void log_info(const std::string& msg) {
  if (g_level >= LogLevel::kInfo) emit("info", msg);
}
void log_debug(const std::string& msg) {
  if (g_level >= LogLevel::kDebug) emit("debug", msg);
}

}  // namespace eilid
