#include "masm/image.h"

#include "common/error.h"
#include "common/hex.h"

namespace eilid::masm {

void MemoryImage::emit_byte(uint16_t addr, uint8_t value) {
  auto [it, inserted] = bytes_.emplace(addr, value);
  (void)it;
  if (!inserted) {
    throw LinkError("overlapping emission at " + hex16(addr));
  }
}

void MemoryImage::emit_word(uint16_t addr, uint16_t value) {
  emit_byte(addr, static_cast<uint8_t>(value));
  emit_byte(static_cast<uint16_t>(addr + 1), static_cast<uint8_t>(value >> 8));
}

uint8_t MemoryImage::byte_at(uint16_t addr) const {
  auto it = bytes_.find(addr);
  return it == bytes_.end() ? 0 : it->second;
}

uint16_t MemoryImage::word_at(uint16_t addr) const {
  return static_cast<uint16_t>(byte_at(addr) |
                               (byte_at(static_cast<uint16_t>(addr + 1)) << 8));
}

void MemoryImage::merge(const MemoryImage& other) {
  for (auto [addr, value] : other.bytes_) emit_byte(addr, value);
}

std::vector<MemoryImage::Chunk> MemoryImage::chunks() const {
  std::vector<Chunk> out;
  for (auto [addr, value] : bytes_) {
    if (!out.empty() &&
        static_cast<uint32_t>(out.back().base) + out.back().data.size() == addr) {
      out.back().data.push_back(value);
    } else {
      out.push_back({addr, {value}});
    }
  }
  return out;
}

}  // namespace eilid::masm
