#include "casu/monitor.h"

namespace eilid::casu {

using sim::ResetReason;

bool CasuMonitor::violate(ResetReason reason) {
  if (!violation_) violation_ = reason;
  return false;
}

sim::ResetReason CasuMonitor::map_violation_code(uint16_t code) {
  switch (code) {
    case sim::viol::kRa: return ResetReason::kCfiReturnMismatch;
    case sim::viol::kRfi: return ResetReason::kCfiRfiMismatch;
    case sim::viol::kInd: return ResetReason::kCfiIndirectCallViolation;
    case sim::viol::kOverflow: return ResetReason::kShadowStackOverflow;
    case sim::viol::kUnderflow: return ResetReason::kShadowStackUnderflow;
    case sim::viol::kTableFull: return ResetReason::kIndTableFull;
    case sim::viol::kSelector: return ResetReason::kBadSelector;
    default: return ResetReason::kBadSelector;
  }
}

bool CasuMonitor::on_fetch(uint16_t pc) {
  // W^X: executable regions are PMEM and secure ROM only.
  if (!sim::is_pmem(pc) && !in_rom(pc)) {
    return violate(ResetReason::kDmemExecViolation);
  }

  if (config_.rom_present && prev_fetch_valid_) {
    const bool now_rom = in_rom(pc);
    const bool was_rom = in_rom(prev_fetch_pc_);
    if (now_rom && !was_rom &&
        !(pc >= config_.entry_start && pc <= config_.entry_end)) {
      prev_fetch_pc_ = pc;
      return violate(ResetReason::kRomEntryViolation);
    }
    if (!now_rom && was_rom && !in_leave(prev_fetch_pc_)) {
      prev_fetch_pc_ = pc;
      return violate(ResetReason::kRomExitViolation);
    }
  }
  prev_fetch_pc_ = pc;
  prev_fetch_valid_ = true;
  return true;
}

bool CasuMonitor::on_read(uint16_t addr, uint16_t pc) {
  if (in_key(addr) && !in_rom(pc)) {
    return violate(ResetReason::kSecureRamAccessViolation);
  }
  return true;
}

bool CasuMonitor::on_write(uint16_t addr, uint16_t value, bool byte, uint16_t pc) {
  (void)byte;
  if (in_rom(addr)) {
    return violate(ResetReason::kRomWriteViolation);
  }
  if (sim::is_pmem(addr)) {
    if (update_session_ && in_rom(pc)) return true;
    return violate(ResetReason::kPmemWriteViolation);
  }
  if (addr == sim::mmio::kViolationReg) {
    if (in_rom(pc)) {
      // EILIDsw reporting a failed CFI check: hardware resets with the
      // software-provided reason.
      return violate(map_violation_code(value));
    }
    return violate(ResetReason::kPrivilegedMmioViolation);
  }
  if (addr == sim::mmio::kUpdateCtrl && !in_rom(pc)) {
    return violate(ResetReason::kPrivilegedMmioViolation);
  }
  return true;
}

void CasuMonitor::on_device_reset() {
  violation_.reset();
  update_session_ = false;
  prev_fetch_valid_ = false;
}

bool CasuMonitor::allow_interrupt(uint16_t current_pc) {
  // Atomicity of trusted code: interrupts stay pending while the CPU
  // executes inside secure ROM.
  return !(config_.rom_present && in_rom(current_pc));
}

}  // namespace eilid::casu
