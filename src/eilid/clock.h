// Fleet time: a deterministic, injectable simulated clock. Nothing in
// the fleet engine reads wall-clock time -- every time-driven behavior
// (heartbeat cadence, staleness thresholds, soak windows) is measured
// in simulated ticks of one FleetClock, advanced explicitly by whoever
// drives the fleet (a test, a bench, the HealthMonitor loop). That is
// what makes time-driven control flow testable at all: a frozen clock
// means *nothing* happens (no spurious staleness, no flaky deadlines),
// and two runs that advance the clock identically make identical
// decisions, bit for bit.
//
// The tick unit is deliberately abstract (a test may treat it as a
// millisecond, a bench as a second); only differences and thresholds
// ever matter. Ticks are monotonic: the clock only moves forward.
//
// Thread-safety: now()/advance()/advance_to() are atomic and safe from
// any thread -- concurrent actors (a heartbeat loop racing a soaking
// rollout) may both push time forward; advance_to() is a monotonic max,
// so time never runs backwards under any interleaving. Determinism
// claims (bit-identical reports) apply to single-driver usage, same as
// the pooled==serial contract elsewhere: one actor owns time, many may
// read it.
#ifndef EILID_EILID_CLOCK_H
#define EILID_EILID_CLOCK_H

#include <atomic>
#include <cstdint>

namespace eilid {

// Simulated fleet time, in abstract ticks since fleet construction.
using Tick = uint64_t;

class FleetClock {
 public:
  FleetClock() = default;
  FleetClock(const FleetClock&) = delete;
  FleetClock& operator=(const FleetClock&) = delete;

  Tick now() const { return now_.load(std::memory_order_acquire); }

  // Move time forward by `delta` ticks; returns the new now().
  Tick advance(Tick delta);

  // Move time forward to `deadline` if it is in the future (monotonic
  // max -- a deadline already in the past is a no-op); returns now().
  Tick advance_to(Tick deadline);

 private:
  std::atomic<Tick> now_{0};
};

}  // namespace eilid

#endif  // EILID_EILID_CLOCK_H
