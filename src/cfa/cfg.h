// Static control-flow graph extraction from an assembled unit. The CFA
// verifier replays logged edges against this CFG; the same structures
// back the attack demos' ground truth.
#ifndef EILID_CFA_CFG_H
#define EILID_CFA_CFG_H

#include <cstdint>
#include <map>
#include <set>

#include "masm/assembler.h"

namespace eilid::cfa {

struct CallSite {
  bool indirect = false;
  uint16_t target = 0;    // direct target (0 for indirect)
  uint16_t return_addr = 0;  // address of the next instruction
};

struct Cfg {
  // Instruction start addresses (for decoding sanity).
  std::set<uint16_t> code_addrs;
  // Direct branch edges: jumps (taken), br #imm.
  std::set<uint32_t> jump_edges;  // (from << 16) | to
  // Call sites by address.
  std::map<uint16_t, CallSite> call_sites;
  // Return instructions (mov @sp+, pc).
  std::set<uint16_t> ret_addrs;
  // Return-from-interrupt instructions.
  std::set<uint16_t> reti_addrs;
  // Legal indirect-call targets (declared functions + direct targets).
  std::set<uint16_t> call_targets;
  // ISR entry points (vector table handlers except reset).
  std::set<uint16_t> isr_entries;
  uint16_t reset_entry = 0;

  static uint32_t edge(uint16_t from, uint16_t to) {
    return (static_cast<uint32_t>(from) << 16) | to;
  }
  bool has_jump_edge(uint16_t from, uint16_t to) const {
    return jump_edges.count(edge(from, to)) != 0;
  }
};

Cfg extract_cfg(const masm::AssembledUnit& unit);

}  // namespace eilid::cfa

#endif  // EILID_CFA_CFG_H
