// Fleet health: periodic attestation heartbeats, per-device freshness,
// quarantine, and automated remediation -- the subsystem that makes the
// fleet *self-healing*. PAISA-style: verifiers judge not just whether a
// device's evidence verifies but *when* it last did; a device that
// silently stops announcing is exactly as suspect as one that convicts.
//
// Three layers, all driven by the fleet's deterministic FleetClock
// (eilid/clock.h) -- no wall clock anywhere, so nothing flakes:
//
//   - HeartbeatScheduler: drives periodic per-device attestation sweeps
//     on a configurable cadence (plus a deterministic per-device jitter
//     phase so a fleet's heartbeats don't all land on one tick),
//     maintaining a FreshnessRecord per CFA-capable device:
//     last_attested_tick, last_ok_tick, misses, convicted. An offline
//     device (DeviceSession::set_online(false) -- the announcement
//     stops arriving) records a miss and its freshness decays.
//   - assess(): the quarantine decision, a *pure function* of one
//     freshness record, the current tick and the policy (property-
//     tested: no hidden state, same inputs -> same verdict). A device
//     is quarantined when its last clean verdict is older than the
//     staleness threshold (stale or missing announcements) or when its
//     most recent evidence convicted it.
//   - HealthMonitor: owns the scheduler, a latched quarantine set, and
//     an optional staged remediation campaign. run_until() advances
//     fleet time, fires due heartbeats, quarantines stale/convicted
//     devices, and -- when a remediation campaign is staged --
//     remediates every quarantined device with no operator action:
//     reflash (factory reset to the recorded image, so even a device
//     diverged by a rogue patch becomes updatable again), re-update
//     through the ordinary UpdateCampaign machinery (fresh epoch
//     marker, replay-CFG swap), then an immediate re-attestation.
//     A clean verdict releases the device from quarantine; anything
//     else (still offline, refused update, convicting evidence) keeps
//     it quarantined for the next pass.
//
//   eilid::Fleet fleet;                       // fleet.clock() is time
//   ... provision kCfaBaseline devices ...
//   eilid::HealthMonitor health(fleet, {.heartbeat = {.period = 100},
//                                       .policy = {.staleness_threshold = 300}});
//   health.stage_remediation(fleet.stage_update(golden_build));
//   auto report = health.run_until(fleet.clock().now() + 1000);
//   // stale/convicted devices are already quarantined, reset,
//   // re-updated and re-attested -- report says exactly what healed.
//
// Concurrency contract: run_until(pool) fans each beat's sweep and the
// remediation pass out with the same per-device DeviceSession::mutex()
// locking as VerifierService::verify_all and UpdateCampaign::apply_to;
// its HealthReport is bit-identical to the serial run_until()'s, and
// repeated runs at the same seed and clock schedule are bit-identical
// to each other. Remediation can never race an in-flight campaign on a
// device: both funnel through UpdateCampaign::apply_to, which holds the
// device's session mutex from package verification through CFG-epoch
// staging, so the two updates serialize per device and each one's
// outcome is decided entirely under the lock. A scheduler/monitor
// object itself is single-driver: one run_until at a time.
#ifndef EILID_EILID_HEALTH_H
#define EILID_EILID_HEALTH_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "eilid/clock.h"
#include "eilid/fleet.h"
#include "eilid/update.h"

namespace eilid {

struct HeartbeatOptions {
  // Cadence between one device's heartbeats, in simulated ticks.
  Tick period = 100;
  // Deterministic per-device phase offset in [0, jitter], derived from
  // (jitter_seed, device id) via common::SeededRng::keyed -- the same
  // fleet at the same seed always beats on the same schedule, but the
  // fleet's devices don't all sweep on the same tick.
  Tick jitter = 0;
  uint64_t jitter_seed = 0x48b5a1f2;
  // Exponential backoff for unreachable devices: after k consecutive
  // missed beats the next heartbeat is scheduled period << min(k,
  // max_backoff_exponent) ticks out (first miss doubles the wait), so
  // a dead device costs O(log) due-beats per window instead of one per
  // period -- at 10k devices with a few percent offline, that is the
  // difference between the scheduler's beat loop scaling with the
  // fleet or with its *reachable* fraction. Any evidence (a verdict,
  // or note_remediated) snaps the cadence back to `period`. 0 disables
  // (every miss reschedules one period out, the pre-backoff behavior).
  // Deterministic: backoff is a pure function of the miss run, so the
  // pooled==serial and same-seed reproducibility contracts hold.
  uint32_t max_backoff_exponent = 0;
};

// Everything the quarantine decision may consult, per device. Owned by
// the HeartbeatScheduler; mirrors (and is cross-checkable against) the
// verifier's own VerifierService::Freshness bookkeeping.
struct FreshnessRecord {
  std::string device_id;
  Tick enrolled_tick = 0;       // when the scheduler first saw the device
  Tick next_due = 0;            // next scheduled heartbeat
  Tick last_attested_tick = 0;  // evidence last collected (any verdict)
  Tick last_ok_tick = 0;        // verdict last came back ok()
  uint32_t heartbeats = 0;      // beats that produced evidence
  uint32_t misses = 0;          // due beats the device was offline for
  uint32_t consecutive_misses = 0;  // current unbroken miss run (drives
                                    // the backoff exponent; reset by
                                    // any evidence)
  bool ever_attested = false;
  bool ever_ok = false;
  bool convicted = false;  // most recent evidence convicted the device

  bool operator==(const FreshnessRecord&) const = default;
};

// One due tick's sweep: every device whose heartbeat fell on `tick`.
struct HeartbeatBeat {
  Tick tick = 0;
  // Verdicts for the online due devices, in enrollment-id order (the
  // subset-sweep contract).
  std::vector<VerifierService::AttestResult> verdicts;
  std::vector<std::string> missed;  // offline due devices, sorted

  bool operator==(const HeartbeatBeat&) const = default;
};

struct HeartbeatReport {
  Tick from = 0;   // clock at run_until entry
  Tick until = 0;  // clock at return (== the requested deadline)
  std::vector<HeartbeatBeat> beats;  // in tick order

  bool operator==(const HeartbeatReport&) const = default;
};

// Drives periodic attestation sweeps. Watches every CFA-capable
// session in the fleet's registry (non-CFA devices emit no
// announcements and are not judged); devices deployed after
// construction join on the next run_until, decommissioned devices are
// pruned (decommission must not race a run, per the fleet contract).
class HeartbeatScheduler {
 public:
  explicit HeartbeatScheduler(Fleet& fleet, HeartbeatOptions options = {});

  // Advance fleet time to `deadline`, firing every due heartbeat on the
  // way in deterministic (tick, device-id) order. Each beat sweeps the
  // online due devices via the verifier's subset sweep (per-device
  // locking; the pooled overload fans the sweep out and returns a
  // bit-identical report) and updates the freshness records.
  HeartbeatReport run_until(Tick deadline);
  HeartbeatReport run_until(Tick deadline, common::ThreadPool& pool);

  // Snapshot of every watched device's record, sorted by device id.
  std::vector<FreshnessRecord> records() const;
  // One device's record (value-initialized when unwatched).
  FreshnessRecord record(const std::string& device_id) const;

  // Fold a successful remediation into the schedule: the device just
  // produced a clean verdict at `tick`, so its freshness restarts
  // (HealthMonitor calls this; the next regular beat stays scheduled).
  void note_remediated(const std::string& device_id, Tick tick);

  const HeartbeatOptions& options() const { return options_; }

 private:
  HeartbeatReport run(Tick deadline, common::ThreadPool* pool);
  Tick phase_for(const std::string& device_id) const;

  Fleet* fleet_;
  HeartbeatOptions options_;
  mutable std::mutex mu_;  // guards records_
  std::map<std::string, FreshnessRecord> records_;
};

// When (and why) a device must be pulled from service.
enum class QuarantineReason : uint8_t {
  kNone,       // healthy: fresh, clean evidence
  kStale,      // announcements stale or missing past the threshold
  kConvicted,  // most recent evidence convicted the device
  // Terminal: automated remediation was tried max_heal_attempts times
  // over the device's lifetime (across releases and re-quarantines) and
  // the device still is not healthy. The monitor stops spending
  // remediation passes on it; only operator action (decommission, or
  // redeploying under a new id) clears the state. Never returned by
  // assess() -- escalation is a monitor decision, not a freshness one.
  kEscalated,
};

std::string_view quarantine_reason_name(QuarantineReason reason);

struct HealthPolicy {
  // A device whose last clean verdict (or enrollment, if it never had
  // one) is more than this many ticks old is quarantined as stale.
  Tick staleness_threshold = 300;
  // Quarantine on a convicting verdict (not just on silence).
  bool quarantine_convicted = true;
  // Lifetime cap on automated remediation attempts per device; once a
  // device has burned this many failed attempts it escalates to the
  // terminal kEscalated state instead of being remediated again. The
  // count survives a successful heal, so a device stuck in a
  // heal -> re-convict cycle cannot consume remediation passes forever.
  // 0 means unbounded (the pre-escalation behavior).
  uint32_t max_heal_attempts = 0;
};

// THE quarantine decision: a pure function of one freshness record, the
// current tick and the policy. No other state may influence it -- the
// property suite re-invokes it on copied records and on randomly
// generated ones and demands identical answers. Conviction outranks
// staleness; a frozen clock (now == enrolled_tick, nothing ever swept)
// quarantines nothing.
QuarantineReason assess(const FreshnessRecord& record, Tick now,
                        const HealthPolicy& policy);

struct QuarantineEntry {
  std::string device_id;
  QuarantineReason reason = QuarantineReason::kNone;
  Tick since = 0;  // tick the device entered quarantine
  uint32_t remediation_attempts = 0;

  bool operator==(const QuarantineEntry&) const = default;
};

// One automated remediation attempt: reflash -> re-update -> re-attest.
struct RemediationOutcome {
  std::string device_id;
  QuarantineReason reason = QuarantineReason::kNone;
  Tick tick = 0;
  bool reachable = false;  // offline devices cannot be remediated
  UpdateOutcome update;    // the re-update (kAlreadyCurrent is fine)
  VerifierService::AttestResult verdict;  // the post-remediation sweep
  bool healed = false;     // update ok() and verdict ok(): released

  bool operator==(const RemediationOutcome&) const = default;
};

struct HealthReport {
  HeartbeatReport heartbeats;
  // Devices quarantined by this pass, sorted by id (devices already in
  // quarantine are not re-reported).
  std::vector<QuarantineEntry> newly_quarantined;
  // One attempt per quarantined device this pass (remediation staged
  // only; escalated devices get none), sorted by id.
  std::vector<RemediationOutcome> remediations;
  // Devices that crossed max_heal_attempts this pass and became
  // terminal (entries carry reason == kEscalated), sorted by id.
  std::vector<QuarantineEntry> escalated;
  size_t quarantined_after = 0;  // quarantine population at return
                                 // (escalated devices included)

  bool operator==(const HealthReport&) const = default;
};

struct HealthOptions {
  HeartbeatOptions heartbeat;
  HealthPolicy policy;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(Fleet& fleet, HealthOptions options = {});

  // Advance fleet time to `deadline`: heartbeats fire on cadence,
  // stale/convicted devices enter quarantine, and every quarantined
  // device gets one remediation attempt (when a campaign is staged).
  // The pooled overload returns a bit-identical report.
  HealthReport run_until(Tick deadline);
  HealthReport run_until(Tick deadline, common::ThreadPool& pool);

  // Stage the campaign remediation re-updates devices with (normally
  // Fleet::stage_update onto the fleet's golden build). Until one is
  // staged, quarantined devices stay quarantined.
  void stage_remediation(UpdateCampaign campaign);

  std::vector<QuarantineEntry> quarantined() const;  // sorted by id
  std::vector<FreshnessRecord> records() const { return scheduler_.records(); }
  HeartbeatScheduler& scheduler() { return scheduler_; }
  const HealthOptions& options() const { return options_; }

 private:
  HealthReport run(Tick deadline, common::ThreadPool* pool);
  RemediationOutcome remediate_one(const QuarantineEntry& entry, Tick now);

  Fleet* fleet_;
  HealthOptions options_;
  HeartbeatScheduler scheduler_;
  mutable std::mutex mu_;  // guards quarantine_ and heal_attempts_
  std::map<std::string, QuarantineEntry> quarantine_;
  // Lifetime failed-remediation count per device id. Deliberately NOT
  // erased when a device heals and leaves quarantine_ -- the
  // max_heal_attempts budget is per device lifetime, which is what
  // breaks the heal -> re-convict forever-loop. Pruned only when the
  // scheduler stops watching the id (decommission).
  std::map<std::string, uint32_t> heal_attempts_;
  std::optional<UpdateCampaign> remediation_;
};

}  // namespace eilid

#endif  // EILID_EILID_HEALTH_H
