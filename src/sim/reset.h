// Device reset causes. A reset is *normal simulated behaviour* (it is
// EILID's enforcement action), so it is data, not an exception.
#ifndef EILID_SIM_RESET_H
#define EILID_SIM_RESET_H

#include <cstdint>
#include <string>

namespace eilid::sim {

enum class ResetReason : uint8_t {
  kPowerOn = 0,
  kIllegalInstruction,
  // CASU invariants.
  kPmemWriteViolation,     // store into program memory outside an update
  kDmemExecViolation,      // W^X: instruction fetch from RAM / peripherals
  kRomWriteViolation,      // store into secure ROM
  kRomEntryViolation,      // jump into ROM not through the entry gate
  kRomExitViolation,       // leaving ROM not through the leave section
  kPrivilegedMmioViolation,  // app touched a ROM-only control register
  kUpdateAuthFailure,      // secure update MAC mismatch
  kUpdateRollback,         // secure update replayed an old version
  // EILID secure-memory extension.
  kSecureRamAccessViolation,  // shadow-stack access with PC outside ROM
  // CFI checks performed by EILIDsw (reported through the violation
  // register; codes below are what the ROM writes).
  kCfiReturnMismatch,
  kCfiRfiMismatch,
  kCfiIndirectCallViolation,
  kShadowStackOverflow,
  kShadowStackUnderflow,
  kIndTableFull,
  kBadSelector,
};

std::string reset_reason_name(ResetReason reason);

// Codes the ROM writes to mmio::kViolationReg, mapped onto ResetReason
// by the EILID monitor. Shared between the ROM generator and monitor.
namespace viol {
inline constexpr uint16_t kRa = 1;
inline constexpr uint16_t kRfi = 2;
inline constexpr uint16_t kInd = 3;
inline constexpr uint16_t kOverflow = 4;
inline constexpr uint16_t kUnderflow = 5;
inline constexpr uint16_t kTableFull = 6;
inline constexpr uint16_t kSelector = 7;
}  // namespace viol

struct ResetEvent {
  uint64_t cycle = 0;
  uint16_t pc = 0;  // pc of the violating instruction (0 for power-on)
  ResetReason reason = ResetReason::kPowerOn;
};

}  // namespace eilid::sim

#endif  // EILID_SIM_RESET_H
