// Ablation (paper §IV-A): P3 entry-table policy. The paper registers
// *all* functions ("enumerates entry points of all functions");
// address-taken-only registration shrinks the table -- fewer valid
// targets for a forward-edge attacker and a shorter linear search.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/attacks/attack.h"
#include "src/eilid/instrumenter.h"

using namespace eilid;
using namespace eilid::bench;

namespace {

struct PolicyStats {
  size_t binary = 0;
  int registered = 0;
  double micros = 0;
  bool ok = false;
};

PolicyStats run_policy(Fleet& fleet, const apps::AppSpec& app,
                       core::TablePolicy policy) {
  core::BuildOptions options;
  options.instrument.table_policy = policy;
  auto build = fleet.build(app.source, app.name, options);
  DeviceSession& device =
      fleet.deploy(app.name + "-policy-" +
                       std::to_string(static_cast<int>(policy)),
                   build, EnforcementPolicy::kEilidHw);
  device.machine().uart().feed(attacks::benign_payload());
  auto run = device.run_to_symbol("halt", 8 * app.cycle_budget);
  PolicyStats s;
  s.binary = build->binary_size();
  s.registered = build->report.sites.functions_registered;
  s.micros = device.machine().micros(run.cycles);
  s.ok = run.cause == sim::StopCause::kBreakpoint &&
         device.violation_count() == 0;
  return s;
}

}  // namespace

int main() {
  std::printf("Ablation: P3 entry-table policy (vuln_gateway: one declared "
              "handler, several direct-call targets)\n\n");
  std::printf("%-16s | %-10s | %-12s | %-12s | %s\n", "Policy", "entries",
              "binary B", "runtime us", "attack surface");
  print_rule(84);
  const auto& app = apps::vuln_gateway();

  Fleet fleet;
  PolicyStats taken = run_policy(fleet, app, core::TablePolicy::kAddressTaken);
  PolicyStats all = run_policy(fleet, app, core::TablePolicy::kAllFunctions);
  if (!taken.ok || !all.ok) {
    std::printf("RUN FAILED\n");
    return 1;
  }
  std::printf("%-16s | %10d | %12zu | %12.1f | %d indirect-callable targets\n",
              "address-taken", taken.registered, taken.binary, taken.micros,
              taken.registered);
  std::printf("%-16s | %10d | %12zu | %12.1f | %d indirect-callable targets\n",
              "all-functions", all.registered, all.binary, all.micros,
              all.registered);
  std::printf(
      "\nThe paper's all-functions table lets a forward-edge attacker pick\n"
      "any of %d functions; address-taken registration confines it to the\n"
      "%d declared handlers (the function-level granularity limitation the\n"
      "paper acknowledges in §IV-A, made smaller).\n",
      all.registered, taken.registered);
  return 0;
}
