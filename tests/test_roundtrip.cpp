// Cross-layer properties:
//   - every instruction of every assembled Table IV app disassembles to
//     text that the assembler re-encodes to the identical bytes
//     (disassembler <-> assembler round trip over real programs);
//   - the full EILID stack also works with the memory-backed shadow
//     index (ablation configuration) on real workloads.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "eilid/device.h"
#include "eilid/pipeline.h"
#include "isa/decoder.h"
#include "isa/disasm.h"
#include "masm/assembler.h"

namespace eilid {
namespace {

class AppRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(AppRoundTrip, DisassembleReassembleIdentical) {
  const auto& app = apps::app_by_name(GetParam());
  core::BuildResult build = core::build_app(app.source, app.name,
                                            {.eilid = false});
  int checked = 0;
  for (size_t i = 0; i < build.app.listing.lines.size(); ++i) {
    const auto& line = build.app.listing.lines[i];
    if (!line.is_instruction || line.bytes.size() < 2) continue;
    std::array<uint16_t, 3> words{};
    for (size_t w = 0; w < 3 && 2 * w + 1 < line.bytes.size(); ++w) {
      words[w] = static_cast<uint16_t>(line.bytes[2 * w] |
                                       (line.bytes[2 * w + 1] << 8));
    }
    auto decoded = isa::decode(words, line.address);
    ASSERT_TRUE(decoded.has_value()) << "undecodable at " << line.address;

    // Reassemble the disassembly at the same address; bytes must match.
    std::string text = isa::disassemble(*decoded);
    char org[32];
    std::snprintf(org, sizeof(org), ".org 0x%04x\n", line.address);
    auto reunit = masm::assemble_text(std::string(org) + text + "\n", "rt");
    ASSERT_EQ(reunit.image.size_bytes(), 2u * decoded->size_words)
        << text << " at " << line.address;
    for (unsigned w = 0; w < decoded->size_words; ++w) {
      EXPECT_EQ(reunit.image.word_at(static_cast<uint16_t>(line.address + 2 * w)),
                words[w])
          << text << " word " << w;
    }
    ++checked;
  }
  EXPECT_GT(checked, 20) << "expected a substantial instruction count";
}

INSTANTIATE_TEST_SUITE_P(
    Apps, AppRoundTrip,
    ::testing::Values("light_sensor", "ultrasonic_ranger", "fire_sensor",
                      "syringe_pump", "temp_sensor", "charlieplexing",
                      "lcd_sensor", "vuln_gateway"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

class MemIndexApps : public ::testing::TestWithParam<const char*> {};

TEST_P(MemIndexApps, RunCleanWithMemoryBackedIndex) {
  const auto& app = apps::app_by_name(GetParam());
  core::BuildOptions options;
  options.rom.memory_backed_index = true;
  core::BuildResult build = core::build_app(app.source, app.name, options);
  core::Device device(build);
  app.setup(device.machine());
  auto r = device.run_to_symbol("halt", 8 * app.cycle_budget);
  EXPECT_EQ(r.cause, sim::StopCause::kBreakpoint);
  EXPECT_EQ(device.machine().violation_count(), 0u);
  EXPECT_EQ(app.check(device.machine()), "");
}

INSTANTIATE_TEST_SUITE_P(
    Apps, MemIndexApps,
    ::testing::Values("light_sensor", "syringe_pump", "lcd_sensor"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

TEST(RomSource, BothIndexVariantsDifferOnlyInIndexing) {
  core::RomConfig reg_cfg;
  core::RomConfig mem_cfg;
  mem_cfg.memory_backed_index = true;
  std::string reg_src = core::generate_rom_source(reg_cfg);
  std::string mem_src = core::generate_rom_source(mem_cfg);
  EXPECT_NE(reg_src, mem_src);
  EXPECT_NE(mem_src.find("SHADOW_IDX"), std::string::npos);
  // Register variant keeps the index in r5 and never loads SHADOW_IDX.
  EXPECT_EQ(reg_src.find("mov &SHADOW_IDX"), std::string::npos);
}

}  // namespace
}  // namespace eilid
