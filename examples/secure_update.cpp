// CASU authenticated software update (the substrate EILID builds on):
// PMEM is immutable except through MAC'd, version-monotonic update
// packages. Shows a legitimate update changing the behaviour of a
// fleet-provisioned device, a forged package being rejected (device
// heals by reset), and rollback protection.
#include <cstdio>
#include <vector>

#include "src/casu/update.h"
#include "src/eilid/fleet.h"

using namespace eilid;

namespace {

std::string app_version(char marker) {
  std::string s = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
    mov.b #')";
  s += marker;
  s += R"(', &UART_TX
halt:
    jmp halt
.vector 15, main
.end
)";
  return s;
}

std::vector<uint8_t> image_bytes(const masm::MemoryImage& image,
                                 uint16_t base, size_t len) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i < len; ++i) {
    out.push_back(image.byte_at(static_cast<uint16_t>(base + i)));
  }
  return out;
}

char boot_and_read(DeviceSession& device) {
  device.machine().uart().clear_tx();
  device.power_cycle();
  device.run_to_symbol("halt", 10000);
  auto tx = device.machine().uart().tx_text();
  return tx.empty() ? '?' : tx[0];
}

}  // namespace

int main() {
  std::vector<uint8_t> device_key(32, 0x5A);

  Fleet fleet;
  DeviceSession& device = fleet.provision(
      "field-unit", app_version('1'), "fw", EnforcementPolicy::kEilidHw);
  casu::UpdateEngine engine(device_key, *device.hw_monitor());

  std::printf("boot v1: device transmits '%c'\n", boot_and_read(device));

  // Authority builds firmware v2 and a MAC'd package for it.
  auto v2 = fleet.build(app_version('2'), "fw");
  auto payload = image_bytes(v2->app.image, 0xE000, 64);
  auto pkg = engine.make_package(0xE000, /*version=*/1, payload);
  auto status = engine.apply(device.machine(), pkg);
  std::printf("apply signed v2 package: %s\n",
              status == casu::UpdateStatus::kApplied ? "applied" : "REJECTED");
  std::printf("boot v2: device transmits '%c'\n", boot_and_read(device));

  // A forged package (bit-flipped MAC) must be rejected and the device
  // must heal (reset) rather than run tampered code.
  auto forged = engine.make_package(0xE000, 2, payload);
  forged.mac[0] ^= 0xFF;
  status = engine.apply(device.machine(), forged);
  std::printf("apply forged package: %s\n",
              status == casu::UpdateStatus::kBadMac ? "rejected (bad MAC)"
                                                    : "ACCEPTED?!");
  device.machine().run(100);  // the latched violation resets the device
  std::printf("device healed: last reset reason = %s\n",
              sim::reset_reason_name(device.machine().resets().back().reason)
                  .c_str());

  // Rollback to version 1 is refused even with a valid MAC.
  auto rollback = engine.make_package(0xE000, 1, payload);
  status = engine.apply(device.machine(), rollback);
  std::printf("apply valid-but-old package: %s\n",
              status == casu::UpdateStatus::kRollback ? "rejected (rollback)"
                                                      : "ACCEPTED?!");

  // And a direct PMEM write from software is impossible outside an
  // update session -- demonstrated by the monitor veto.
  device.machine().bus().write_word(0xE000, 0xDEAD, /*pc=*/0xE010);
  std::printf("direct PMEM store from app code: %s\n",
              device.machine().bus().access_denied() ? "denied by CASU"
                                                     : "WROTE?!");
  return 0;
}
