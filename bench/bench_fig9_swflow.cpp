// Reproduces Fig. 9: the EILIDsw software flow (non-secure -> entry ->
// body -> leave -> non-secure) and the shadow-stack layout, traced
// from an actual simulated secure-state round trip.
#include <cstdio>

#include "src/common/hex.h"
#include "src/eilid/fleet.h"
#include "src/eilid/inspect.h"
#include "src/sim/monitor.h"

using namespace eilid;

namespace {

// Captures every PC the device fetches, annotated by ROM section.
class FlowTracer : public sim::Monitor {
 public:
  FlowTracer(const core::RomInfo& rom) : rom_(rom) {}

  bool on_fetch(uint16_t pc) override {
    const char* section = "app";
    if (pc >= rom_.entry_start && pc <= rom_.entry_end) {
      section = "entry";
    } else if (pc >= rom_.leave_start && pc <= rom_.leave_end) {
      section = "leave";
    } else if (pc >= sim::kRomStart && pc <= sim::kRomEnd) {
      section = "body";
    }
    if (section != last_section_) {
      transitions_.push_back({pc, section});
      last_section_ = section;
    }
    return true;
  }

  struct Transition {
    uint16_t pc;
    const char* section;
  };
  const std::vector<Transition>& transitions() const { return transitions_; }

 private:
  const core::RomInfo& rom_;
  const char* last_section_ = "";
  std::vector<Transition> transitions_;
};

const char* kApp = R"(.org 0xe000
main:
    mov #0x1000, r1
    call #foo
    call #foo
halt:
    jmp halt
foo:
    ret
.vector 15, main
.end
)";

}  // namespace

int main() {
  Fleet fleet;
  DeviceSession& device =
      fleet.provision("flow", kApp, "flow", EnforcementPolicy::kEilidHw);
  const core::BuildResult& build = device.build();
  FlowTracer tracer(build.rom);
  device.machine().add_monitor(&tracer);

  device.run_to_symbol("halt", 10000);

  std::printf("Fig. 9(a): EILID software flow (one store_ra round trip):\n");
  int shown = 0;
  for (const auto& t : tracer.transitions()) {
    std::printf("  %-5s @ %s\n", t.section, hex16(t.pc).c_str());
    if (++shown == 9) break;  // app -> entry -> body -> leave -> app x2
  }

  core::ShadowInspector inspector(device);
  std::printf("\nFig. 9(b): shadow-stack layout after both calls returned:\n");
  std::printf("  base %s, index register r5 = %u (stack empty again)\n",
              hex16(build.rom.config.shadow_base_addr()).c_str(),
              inspector.depth());
  std::printf("  slot addressing: base + 2*r5 (r5 increments on store, "
              "decrements on check)\n");
  std::printf("  device resets observed: %zu (must be 0)\n",
              device.violation_count());
  return device.violation_count() == 0 ? 0 : 1;
}
