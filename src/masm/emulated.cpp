#include "masm/emulated.h"

#include <unordered_map>

#include "common/error.h"
#include "isa/registers.h"

namespace eilid::masm {
namespace {

OperandExpr reg_operand(uint8_t reg) {
  OperandExpr op;
  op.kind = OperandExpr::Kind::kReg;
  op.reg = reg;
  return op;
}

OperandExpr imm_operand(int32_t value) {
  OperandExpr op;
  op.kind = OperandExpr::Kind::kImmediate;
  op.expr = Expr::literal(value);
  return op;
}

OperandExpr indirect_inc_operand(uint8_t reg) {
  OperandExpr op;
  op.kind = OperandExpr::Kind::kIndirectInc;
  op.reg = reg;
  return op;
}

struct NoOperandForm {
  const char* mnemonic;
  // Expansion: mnemonic + fixed operands.
  const char* real;
  int32_t imm;      // source immediate (kUseSpPop means @sp+ source)
  uint8_t dst_reg;  // destination register
};

constexpr int32_t kUseSpPop = INT32_MIN;

constexpr NoOperandForm kNoOperand[] = {
    {"ret", "mov", kUseSpPop, isa::kPC},
    {"nop", "mov", 0, isa::kCG2},
    {"clrc", "bic", 1, isa::kSR},
    {"setc", "bis", 1, isa::kSR},
    {"clrz", "bic", 2, isa::kSR},
    {"setz", "bis", 2, isa::kSR},
    {"clrn", "bic", 4, isa::kSR},
    {"setn", "bis", 4, isa::kSR},
    {"dint", "bic", 8, isa::kSR},
    {"eint", "bis", 8, isa::kSR},
};

struct OneOperandForm {
  const char* mnemonic;
  const char* real;
  int32_t imm;  // source immediate; kUseSpPop = @sp+; kUseDst = duplicate dst
};

constexpr int32_t kUseDst = INT32_MIN + 1;

constexpr OneOperandForm kOneOperand[] = {
    {"pop", "mov", kUseSpPop},
    {"clr", "mov", 0},
    {"inc", "add", 1},
    {"incd", "add", 2},
    {"dec", "sub", 1},
    {"decd", "sub", 2},
    {"adc", "addc", 0},
    {"sbc", "subc", 0},
    {"dadc", "dadd", 0},
    {"tst", "cmp", 0},
    {"inv", "xor", -1},
    {"rla", "add", kUseDst},
    {"rlc", "addc", kUseDst},
};

}  // namespace

bool is_emulated(const std::string& mnemonic) {
  for (const auto& f : kNoOperand) {
    if (mnemonic == f.mnemonic) return true;
  }
  for (const auto& f : kOneOperand) {
    if (mnemonic == f.mnemonic) return true;
  }
  return mnemonic == "br";
}

bool expand_emulated(Statement& stmt, const std::string& file) {
  const std::string& m = stmt.mnemonic;

  for (const auto& f : kNoOperand) {
    if (m != f.mnemonic) continue;
    if (!stmt.operands.empty()) {
      throw AsmError(file, stmt.line_no, m + " takes no operands");
    }
    stmt.mnemonic = f.real;
    if (f.imm == kUseSpPop) {
      stmt.operands.push_back(indirect_inc_operand(isa::kSP));
    } else {
      stmt.operands.push_back(imm_operand(f.imm));
    }
    stmt.operands.push_back(reg_operand(f.dst_reg));
    return true;
  }

  for (const auto& f : kOneOperand) {
    if (m != f.mnemonic) continue;
    if (stmt.operands.size() != 1) {
      throw AsmError(file, stmt.line_no, m + " takes exactly one operand");
    }
    OperandExpr dst = stmt.operands[0];
    stmt.mnemonic = f.real;
    stmt.operands.clear();
    if (f.imm == kUseSpPop) {
      stmt.operands.push_back(indirect_inc_operand(isa::kSP));
    } else if (f.imm == kUseDst) {
      stmt.operands.push_back(dst);  // add dst, dst
    } else {
      stmt.operands.push_back(imm_operand(f.imm));
    }
    stmt.operands.push_back(dst);
    return true;
  }

  if (m == "br") {
    if (stmt.operands.size() != 1) {
      throw AsmError(file, stmt.line_no, "br takes exactly one operand");
    }
    // br dst == mov dst, pc. "br #addr" and "br Rn" are the common
    // forms; a bare symbol ("br label") is treated as "br #label",
    // matching assembler convention.
    OperandExpr target = stmt.operands[0];
    if (target.kind == OperandExpr::Kind::kSymbolic) {
      target.kind = OperandExpr::Kind::kImmediate;
    }
    stmt.mnemonic = "mov";
    stmt.operands.clear();
    stmt.operands.push_back(target);
    stmt.operands.push_back(reg_operand(isa::kPC));
    return true;
  }

  return false;
}

}  // namespace eilid::masm
