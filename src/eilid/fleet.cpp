#include "eilid/fleet.h"

#include <algorithm>

#include "cfa/cfg.h"
#include "common/error.h"

namespace eilid {

// ------------------------------------------------------------------
// VerifierService
// ------------------------------------------------------------------

void VerifierService::enroll(DeviceSession& session) {
  if (session.cfa_monitor() == nullptr) {
    throw FleetError("verifier: session '" + session.id() +
                     "' has no CFA monitor (policy " +
                     std::string(enforcement_policy_name(session.policy())) +
                     "); only kCfaBaseline devices attest");
  }
  auto [it, inserted] = devices_.try_emplace(
      session.id(),
      DeviceState{&session,
                  cfa::CfaVerifier(cfa::extract_cfg(session.build().app),
                                   session.options().attest_key),
                  0});
  if (!inserted) {
    throw FleetError("verifier: device '" + session.id() +
                     "' is already enrolled");
  }
  (void)it;
}

VerifierService::AttestResult VerifierService::attest(DeviceSession& session) {
  if (!enrolled(session.id())) enroll(session);
  DeviceState& state = devices_.at(session.id());

  AttestResult out;
  out.device_id = session.id();
  out.attested = true;

  const uint64_t nonce = nonce_counter_++;
  cfa::Report report =
      session.cfa_monitor()->take_report(nonce, session.machine().cycles());
  out.seq = report.seq;
  out.cycle = report.cycle;
  out.edges = report.edges.size();
  out.dropped = report.dropped;
  out.seq_ok = report.seq == state.expected_seq;
  state.expected_seq = report.seq + 1;

  cfa::CfaVerifier::Result v = state.verifier.verify(report, nonce);
  out.mac_ok = v.mac_ok;
  out.path_ok = v.path_ok;
  out.first_bad = v.first_bad;
  return out;
}

std::vector<VerifierService::AttestResult> VerifierService::verify_all() {
  std::vector<AttestResult> out;
  out.reserve(devices_.size());
  for (auto& [id, state] : devices_) {
    (void)id;
    out.push_back(attest(*state.session));
  }
  return out;
}

// ------------------------------------------------------------------
// Fleet
// ------------------------------------------------------------------

namespace {

// Content hash of everything that determines a BuildResult. Two
// provisioning calls with the same source and build shape share one
// pipeline run through this key.
crypto::Digest build_key(const std::string& source, const std::string& name,
                         const core::BuildOptions& o) {
  const core::RomConfig& rom =
      o.prebuilt_rom != nullptr ? o.prebuilt_rom->config : o.rom;
  const core::InstrumentConfig& in = o.instrument;
  std::string meta = "eilid-build-v1|" + name + "|";
  auto flag = [&meta](bool b) { meta += b ? '1' : '0'; };
  auto num = [&meta](uint64_t v) { meta += std::to_string(v) + ","; };
  flag(o.eilid);
  flag(o.verify_convergence);
  flag(o.prebuilt_rom != nullptr);
  flag(in.backward_edge);
  flag(in.interrupt_edge);
  flag(in.forward_edge);
  flag(in.lock_table);
  flag(in.label_mode);
  flag(in.spill_reserved);
  num(static_cast<uint64_t>(in.table_policy));
  num(rom.secure_base);
  num(rom.secure_size);
  num(rom.table_capacity);
  num(rom.shadow_capacity);
  flag(rom.memory_backed_index);
  meta += '|';

  crypto::Sha256 h;
  h.update(meta);
  h.update(source);
  return h.finish();
}

}  // namespace

Fleet::Fleet(FleetOptions options) : options_(std::move(options)) {}

std::shared_ptr<const core::BuildResult> Fleet::build(
    const std::string& source, const std::string& name,
    const core::BuildOptions& options) {
  const crypto::Digest key = build_key(source, name, options);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++pipeline_runs_;
  auto result = std::make_shared<const core::BuildResult>(
      core::build_app(source, name, options));
  cache_.emplace(key, result);
  return result;
}

crypto::Digest Fleet::device_key(const std::string& device_id) const {
  return crypto::derive_key(
      std::span<const uint8_t>(options_.master_key.data(),
                               options_.master_key.size()),
      "attest:" + device_id);
}

DeviceSession& Fleet::deploy(const std::string& device_id,
                             std::shared_ptr<const core::BuildResult> build,
                             EnforcementPolicy policy, SessionOptions options) {
  if (by_id_.count(device_id) != 0) {
    throw FleetError("fleet: device id '" + device_id + "' already deployed");
  }
  options.attest_key = device_key(device_id);
  auto session = std::make_unique<DeviceSession>(device_id, std::move(build),
                                                 policy, options);
  DeviceSession& ref = *session;
  // Enroll before registering: if the verifier rejects the device the
  // fleet must not be left holding a session whose deploy failed.
  if (policy == EnforcementPolicy::kCfaBaseline) verifier_.enroll(ref);
  sessions_.push_back(std::move(session));
  by_id_.emplace(device_id, &ref);
  return ref;
}

DeviceSession& Fleet::provision(const std::string& device_id,
                                const std::string& source,
                                const std::string& name,
                                EnforcementPolicy policy,
                                SessionOptions options) {
  core::BuildOptions build_options;
  build_options.eilid = policy == EnforcementPolicy::kEilidHw;
  return deploy(device_id, build(source, name, build_options), policy, options);
}

DeviceSession* Fleet::find(const std::string& device_id) {
  auto it = by_id_.find(device_id);
  return it == by_id_.end() ? nullptr : it->second;
}

DeviceSession& Fleet::at(const std::string& device_id) {
  DeviceSession* session = find(device_id);
  if (session == nullptr) {
    throw FleetError("fleet: unknown device id '" + device_id + "'");
  }
  return *session;
}

void Fleet::decommission(const std::string& device_id) {
  DeviceSession& session = at(device_id);
  verifier_.withdraw(device_id);
  by_id_.erase(device_id);
  sessions_.erase(
      std::find_if(sessions_.begin(), sessions_.end(),
                   [&session](const std::unique_ptr<DeviceSession>& s) {
                     return s.get() == &session;
                   }));
}

}  // namespace eilid
