// MSP430 addressing modes and operand representation.
//
// Source operands use the 2-bit As field plus register number; the
// constant generators (r2 with As>=2, r3 with any As) encode the six
// common constants -1, 0, 1, 2, 4, 8 without an extension word. The
// encoder chooses constant-generator encodings automatically; the
// decoder reports them back as plain immediates so that
// encode(decode(x)) == x holds for all legal words.
#ifndef EILID_ISA_OPERAND_H
#define EILID_ISA_OPERAND_H

#include <cstdint>
#include <optional>

namespace eilid::isa {

enum class AddrMode : uint8_t {
  kRegister,     // Rn         As=00 / Ad=0
  kIndexed,      // X(Rn)      As=01 / Ad=1
  kSymbolic,     // ADDR       X(PC): extension word holds ADDR - (&extword)
  kAbsolute,     // &ADDR      X(SR): extension word holds ADDR
  kIndirect,     // @Rn        As=10 (source only)
  kIndirectInc,  // @Rn+       As=11 (source only)
  kImmediate,    // #N         @PC+ (source only)
};

struct Operand {
  AddrMode mode = AddrMode::kRegister;
  uint8_t reg = 0;    // register field (meaningless for immediate/absolute)
  int32_t value = 0;  // index X, immediate N, or absolute address

  // True when this operand occupies an extension word in its canonical
  // (non-constant-generator) encoding.
  bool needs_ext_word() const {
    switch (mode) {
      case AddrMode::kIndexed:
      case AddrMode::kSymbolic:
      case AddrMode::kAbsolute:
      case AddrMode::kImmediate:
        return true;
      default:
        return false;
    }
  }

  static Operand make_reg(uint8_t reg) { return {AddrMode::kRegister, reg, 0}; }
  static Operand make_imm(int32_t value) { return {AddrMode::kImmediate, 0, value}; }
  static Operand make_indexed(uint8_t reg, int32_t offset) {
    return {AddrMode::kIndexed, reg, offset};
  }
  static Operand make_absolute(uint16_t addr) {
    return {AddrMode::kAbsolute, 0, static_cast<int32_t>(addr)};
  }
  static Operand make_indirect(uint8_t reg) { return {AddrMode::kIndirect, reg, 0}; }
  static Operand make_indirect_inc(uint8_t reg) {
    return {AddrMode::kIndirectInc, reg, 0};
  }
  static Operand make_symbolic(uint16_t addr) {
    return {AddrMode::kSymbolic, 0, static_cast<int32_t>(addr)};
  }

  bool operator==(const Operand&) const = default;
};

// If `value` is representable by a constant generator, returns the
// (reg, as) encoding; otherwise nullopt. Values: 0,1,2 via r3 As=0..2,
// -1 via r3 As=3, 4 via r2 As=2, 8 via r2 As=3.
struct CgEncoding {
  uint8_t reg;
  uint8_t as;
};
std::optional<CgEncoding> constant_generator(int32_t value);

// Reverse mapping used by the decoder: (reg, as) -> constant, if the
// pair denotes a generated constant.
std::optional<int32_t> constant_from_cg(uint8_t reg, uint8_t as);

}  // namespace eilid::isa

#endif  // EILID_ISA_OPERAND_H
