#include "isa/decoder.h"

#include "isa/registers.h"

namespace eilid::isa {
namespace {

// Decode a source operand given its As/reg fields. `next` is the index
// of the next unconsumed extension word in `words`; `ext_addr` is that
// word's byte address.
std::optional<Operand> decode_src(uint8_t as, uint8_t reg,
                                  const std::array<uint16_t, 3>& words,
                                  unsigned& next, uint16_t address) {
  if (auto constant = constant_from_cg(reg, as)) {
    return Operand::make_imm(*constant);
  }
  switch (as) {
    case 0:
      return Operand::make_reg(reg);
    case 1: {
      uint16_t ext = words[next];
      uint16_t ext_addr = static_cast<uint16_t>(address + 2 * next);
      ++next;
      if (reg == kPC) {
        return Operand::make_symbolic(static_cast<uint16_t>(ext + ext_addr));
      }
      if (reg == kSR) return Operand::make_absolute(ext);
      return Operand::make_indexed(reg, static_cast<int16_t>(ext));
    }
    case 2:
      return Operand::make_indirect(reg);
    case 3:
      if (reg == kPC) {
        uint16_t ext = words[next];
        ++next;
        return Operand::make_imm(ext);
      }
      return Operand::make_indirect_inc(reg);
    default:
      return std::nullopt;
  }
}

std::optional<Operand> decode_dst(uint8_t ad, uint8_t reg,
                                  const std::array<uint16_t, 3>& words,
                                  unsigned& next, uint16_t address) {
  if (ad == 0) return Operand::make_reg(reg);
  uint16_t ext = words[next];
  uint16_t ext_addr = static_cast<uint16_t>(address + 2 * next);
  ++next;
  if (reg == kPC) return Operand::make_symbolic(static_cast<uint16_t>(ext + ext_addr));
  if (reg == kSR) return Operand::make_absolute(ext);
  return Operand::make_indexed(reg, static_cast<int16_t>(ext));
}

constexpr Opcode kDoubleOps[12] = {
    Opcode::kMov, Opcode::kAdd, Opcode::kAddc, Opcode::kSubc,
    Opcode::kSub, Opcode::kCmp, Opcode::kDadd, Opcode::kBit,
    Opcode::kBic, Opcode::kBis, Opcode::kXor,  Opcode::kAnd};

constexpr Opcode kSingleOps[7] = {Opcode::kRrc, Opcode::kSwpb, Opcode::kRra,
                                  Opcode::kSxt, Opcode::kPush, Opcode::kCall,
                                  Opcode::kReti};

constexpr Opcode kJumpOps[8] = {Opcode::kJnz, Opcode::kJz, Opcode::kJnc,
                                Opcode::kJc,  Opcode::kJn, Opcode::kJge,
                                Opcode::kJl,  Opcode::kJmp};

// Core decode, before the off-the-top-of-memory check in decode().
std::optional<Decoded> decode_impl(std::array<uint16_t, 3> words,
                                   uint16_t address) {
  const uint16_t w = words[0];
  const uint16_t top = static_cast<uint16_t>(w >> 12);

  Decoded out;
  out.address = address;

  if (top >= 0x4) {
    // Format I.
    Instruction insn;
    insn.op = kDoubleOps[top - 4];
    insn.byte_mode = (w & 0x40) != 0;
    uint8_t sreg = static_cast<uint8_t>((w >> 8) & 0xF);
    uint8_t as = static_cast<uint8_t>((w >> 4) & 0x3);
    uint8_t ad = static_cast<uint8_t>((w >> 7) & 0x1);
    uint8_t dreg = static_cast<uint8_t>(w & 0xF);
    unsigned next = 1;
    auto src = decode_src(as, sreg, words, next, address);
    if (!src) return std::nullopt;
    auto dst = decode_dst(ad, dreg, words, next, address);
    if (!dst) return std::nullopt;
    insn.src = *src;
    insn.dst = *dst;
    out.insn = insn;
    out.size_words = static_cast<uint8_t>(next);
    return out;
  }

  if (top == 0x2 || top == 0x3) {
    // Jump format.
    Instruction insn;
    insn.op = kJumpOps[(w >> 10) & 0x7];
    int16_t offset = static_cast<int16_t>(w & 0x3FF);
    if (offset & 0x200) offset = static_cast<int16_t>(offset - 0x400);
    insn.jump_offset = offset;
    out.insn = insn;
    out.size_words = 1;
    return out;
  }

  if ((w & 0xFC00) == 0x1000) {
    // Format II.
    uint8_t minor = static_cast<uint8_t>((w >> 7) & 0x7);
    if (minor > 6) return std::nullopt;
    Instruction insn;
    insn.op = kSingleOps[minor];
    insn.byte_mode = (w & 0x40) != 0;
    if (!opcode_info(insn.op).allows_byte && insn.byte_mode) return std::nullopt;
    uint8_t as = static_cast<uint8_t>((w >> 4) & 0x3);
    uint8_t reg = static_cast<uint8_t>(w & 0xF);
    unsigned next = 1;
    if (insn.op == Opcode::kReti) {
      insn.src = Operand::make_reg(0);
    } else {
      auto src = decode_src(as, reg, words, next, address);
      if (!src) return std::nullopt;
      insn.src = *src;
      // rrc/rra/swpb/sxt need a writable operand; immediate is illegal.
      if (insn.op != Opcode::kPush && insn.op != Opcode::kCall &&
          insn.src.mode == AddrMode::kImmediate) {
        return std::nullopt;
      }
    }
    out.insn = insn;
    out.size_words = static_cast<uint8_t>(next);
    return out;
  }

  return std::nullopt;  // 0x0xxx and 0x14xx..0x1Fxx are unassigned
}

}  // namespace

std::optional<Decoded> decode(std::array<uint16_t, 3> words, uint16_t address) {
  auto out = decode_impl(words, address);
  // An instruction whose extension words would lie past the top of the
  // 16-bit address space is illegal: fetching them would wrap through
  // address 0 and decode unrelated bytes. (An instruction *ending*
  // exactly at 0x10000 is fine; only its fall-through wraps, which is
  // architectural PC arithmetic.)
  if (out && static_cast<uint32_t>(address) + 2u * out->size_words > 0x10000u) {
    return std::nullopt;
  }
  return out;
}

}  // namespace eilid::isa
