// Simulator-core throughput: simulated instructions per wall-clock
// second (MIPS), per enforcement policy, as a THREE-WAY engine oracle:
// interpretive vs predecoded (per-instruction table dispatch) vs
// superblock (block-granular dispatch) -- plus a fleet sweep driving
// many devices from a thread pool. This seeds the bench trajectory for
// the hot loop: every future perf PR must beat the table this emits
// (BENCH_sim_throughput.json).
//
// Correctness gates (the bench FAILS on any violation):
//   - per policy, all three engines retire the same instruction count
//     over the same simulated cycles and their retired-instruction
//     traces (from, to, fallthrough per step) have identical
//     fingerprints,
//   - for kCfaBaseline, the attestation verdicts of all three runs are
//     identical (same seq/mac_ok/seq_ok/path_ok/edges/dropped),
//   - the superblock timed run actually dispatched blocks (the fast
//     path engaged; a silently-degraded run would gate green on
//     identity while measuring nothing).
// Wall-clock numbers are reported but not gated (host-dependent); the
// CI regression gate (scripts/check_bench_regression.py) compares the
// emitted speedups against the committed baseline instead.
//
// Usage: bench_sim_throughput [--smoke]   (--smoke: CI-sized workload)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/eilid/fleet.h"
#include "src/sim/monitor.h"

using namespace eilid;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

// Decode-heavy compute kernel: tight ALU loop + calls + RAM traffic,
// running forever (the cycle budget bounds each run). Instrumentable,
// so the same source serves every policy including kEilidHw.
const char* kKernelSource = R"(.org 0xE000
main:
    mov #0x1000, r1
    clr r12
    clr r13
loop:
    mov #8, r11
inner:
    add r11, r12
    xor r12, r13
    rra r13
    swpb r12
    inc r13
    dec r11
    jnz inner
    call #mix
    mov r12, &0x0280
    add &0x0280, r13
    jmp loop
mix:
    push r12
    xor r13, r12
    rra r12
    pop r12
    ret
.vector 15, main
)";

// FNV-1a fingerprint over every (from, to, fallthrough) step tuple.
// Deliberately a wants_step() monitor: attaching it pins the machine
// to per-instruction execution under every engine, so the traced runs
// compare the engines' architectural effects, not their dispatch.
class TraceFingerprint : public sim::Monitor {
 public:
  void on_step(uint16_t from_pc, uint16_t to_pc, uint16_t fallthrough) override {
    mix(from_pc);
    mix(to_pc);
    mix(fallthrough);
    ++steps_;
  }
  uint64_t hash() const { return hash_; }
  uint64_t steps() const { return steps_; }

 private:
  void mix(uint16_t v) {
    hash_ ^= v;
    hash_ *= 0x100000001b3ull;
  }
  uint64_t hash_ = 0xcbf29ce484222325ull;
  uint64_t steps_ = 0;
};

constexpr EnforcementPolicy kPolicies[] = {
    EnforcementPolicy::kNone, EnforcementPolicy::kCasu,
    EnforcementPolicy::kCfaBaseline, EnforcementPolicy::kEilidHw};

constexpr ExecutionEngine kEngines[] = {ExecutionEngine::kInterpretive,
                                        ExecutionEngine::kPredecoded,
                                        ExecutionEngine::kSuperblock};

struct ModeRun {
  double wall_ms = 0;
  uint64_t instructions = 0;
  uint64_t sim_cycles = 0;
  uint64_t blocks = 0;  // superblocks dispatched in the timed run
  uint64_t trace_hash = 0;
  uint64_t trace_steps = 0;
  std::string verdict;  // kCfaBaseline only
  double mips() const {
    return wall_ms > 0 ? static_cast<double>(instructions) / (wall_ms * 1e3)
                       : 0.0;
  }
};

std::string verdict_fingerprint(const VerifierService::AttestResult& r) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%d|%u|%llu|%d|%d|%d|%zu|%u", r.attested,
                r.seq, static_cast<unsigned long long>(r.cycle), r.mac_ok,
                r.seq_ok, r.path_ok, r.edges, r.dropped);
  return buf;
}

// One (policy, engine) measurement: a timed run without tracing, then
// a short traced run for the cross-engine fingerprint gate.
ModeRun run_mode(Fleet& fleet, std::shared_ptr<const core::BuildResult> build,
                 EnforcementPolicy policy, ExecutionEngine engine,
                 uint64_t timed_cycles, uint64_t traced_cycles, int* serial) {
  auto device_id = [&](const char* kind) {
    return std::string(enforcement_policy_name(policy)) + "-" + kind + "-" +
           std::string(execution_engine_name(engine)) + "-" +
           std::to_string((*serial)++);
  };
  ModeRun out;
  {
    DeviceSession& dev =
        fleet.deploy(device_id("timed"), build, policy,
                     {.cfa = {.log_capacity = 1 << 12}, .engine = engine});
    auto t0 = clock_type::now();
    dev.run(timed_cycles);
    out.wall_ms = ms_since(t0);
    out.instructions = dev.machine().cpu().instructions_retired();
    out.sim_cycles = dev.machine().cycles();
    out.blocks = dev.machine().blocks_executed();
    if (policy == EnforcementPolicy::kCfaBaseline) {
      out.verdict = verdict_fingerprint(fleet.verifier().attest(dev));
    }
  }
  {
    DeviceSession& dev =
        fleet.deploy(device_id("traced"), build, policy,
                     {.cfa = {.log_capacity = 1 << 12}, .engine = engine});
    TraceFingerprint trace;
    dev.machine().add_monitor(&trace);
    dev.run(traced_cycles);
    out.trace_hash = trace.hash();
    out.trace_steps = trace.steps();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const uint64_t timed_cycles = smoke ? 2'000'000 : 40'000'000;
  const uint64_t traced_cycles = smoke ? 500'000 : 2'000'000;
  const size_t fleet_devices = smoke ? 32 : 256;
  const size_t fleet_threads = 8;
  const uint64_t fleet_cycles = smoke ? 500'000 : 4'000'000;

  Fleet fleet;
  auto plain = fleet.build(kKernelSource, "spin_kernel", {.eilid = false});
  auto instrumented = fleet.build(kKernelSource, "spin_kernel", {.eilid = true});

  std::printf("Simulator core throughput (%s: %llu cycles/run)\n\n",
              smoke ? "smoke" : "full",
              static_cast<unsigned long long>(timed_cycles));
  std::printf("%-13s | %-11s | %-11s | %-11s | %-8s | %-8s | %-6s | %s\n",
              "policy", "interp MIPS", "predec MIPS", "superb MIPS", "pre x",
              "blk x", "trace", "verdict");
  for (int i = 0; i < 92; ++i) std::putchar('-');
  std::putchar('\n');

  bool ok = true;
  int serial = 0;
  std::string policy_json;
  for (EnforcementPolicy policy : kPolicies) {
    auto build = policy == EnforcementPolicy::kEilidHw ? instrumented : plain;
    ModeRun runs[3];
    for (size_t e = 0; e < 3; ++e) {
      runs[e] = run_mode(fleet, build, policy, kEngines[e], timed_cycles,
                         traced_cycles, &serial);
    }
    const ModeRun& interp = runs[0];
    const ModeRun& predec = runs[1];
    const ModeRun& superb = runs[2];

    bool trace_ok = true;
    bool verdict_ok = true;
    for (const ModeRun& r : {predec, superb}) {
      trace_ok = trace_ok && r.trace_hash == interp.trace_hash &&
                 r.trace_steps == interp.trace_steps &&
                 r.instructions == interp.instructions &&
                 r.sim_cycles == interp.sim_cycles;
      verdict_ok = verdict_ok && r.verdict == interp.verdict;
    }
    // The superblock run must actually have engaged block dispatch
    // (and the other two engines must not have).
    const bool engaged_ok =
        superb.blocks > 0 && interp.blocks == 0 && predec.blocks == 0;
    ok = ok && trace_ok && verdict_ok && engaged_ok;
    if (!engaged_ok) {
      std::printf("  !! %s: block dispatch engagement wrong "
                  "(interp %llu, predec %llu, superblock %llu blocks)\n",
                  std::string(enforcement_policy_name(policy)).c_str(),
                  static_cast<unsigned long long>(interp.blocks),
                  static_cast<unsigned long long>(predec.blocks),
                  static_cast<unsigned long long>(superb.blocks));
    }

    const double pre_speedup =
        interp.mips() > 0 ? predec.mips() / interp.mips() : 0.0;
    const double blk_speedup =
        interp.mips() > 0 ? superb.mips() / interp.mips() : 0.0;
    std::printf("%-13s | %11.1f | %11.1f | %11.1f | %7.2fx | %7.2fx | %-6s | %s\n",
                std::string(enforcement_policy_name(policy)).c_str(),
                interp.mips(), predec.mips(), superb.mips(), pre_speedup,
                blk_speedup, trace_ok ? "same" : "DIFFER",
                verdict_ok ? "same" : "DIFFER");

    char row[640];
    std::snprintf(
        row, sizeof(row),
        "    {\"policy\": \"%s\", \"instructions\": %llu, \"sim_cycles\": "
        "%llu, \"mips_interpretive\": %.1f, \"mips_predecoded\": %.1f, "
        "\"mips_superblock\": %.1f, \"speedup\": %.2f, "
        "\"speedup_superblock\": %.2f, \"blocks\": %llu, "
        "\"trace_identical\": %s, \"verdict_identical\": %s},\n",
        std::string(enforcement_policy_name(policy)).c_str(),
        static_cast<unsigned long long>(superb.instructions),
        static_cast<unsigned long long>(superb.sim_cycles), interp.mips(),
        predec.mips(), superb.mips(), pre_speedup, blk_speedup,
        static_cast<unsigned long long>(superb.blocks),
        trace_ok ? "true" : "false", verdict_ok ? "true" : "false");
    policy_json += row;
  }
  if (!policy_json.empty()) policy_json.resize(policy_json.size() - 2);

  // --- fleet sweep: N devices, shared builds, pooled drive ----------
  // Deployed with default SessionOptions, i.e. the superblock engine:
  // the sweep measures the shipping configuration.
  std::vector<DeviceSession*> devices;
  devices.reserve(fleet_devices);
  for (size_t i = 0; i < fleet_devices; ++i) {
    EnforcementPolicy policy = kPolicies[i % 4];
    auto build = policy == EnforcementPolicy::kEilidHw ? instrumented : plain;
    devices.push_back(&fleet.deploy("fleet-" + std::to_string(i), build, policy,
                                    {.cfa = {.log_capacity = 1 << 12}}));
  }
  common::ThreadPool pool(fleet_threads);
  auto tf = clock_type::now();
  pool.parallel_for(devices.size(), [&](size_t i) {
    std::lock_guard<std::mutex> lock(devices[i]->mutex());
    devices[i]->run(fleet_cycles);
  });
  double fleet_ms = ms_since(tf);
  uint64_t fleet_instructions = 0;
  for (DeviceSession* dev : devices) {
    fleet_instructions += dev->machine().cpu().instructions_retired();
  }
  double fleet_mips =
      fleet_ms > 0 ? static_cast<double>(fleet_instructions) / (fleet_ms * 1e3)
                   : 0.0;
  std::printf("\nfleet sweep: %zu devices x %llu cycles on %zu threads: "
              "%.1f ms, aggregate %.1f MIPS\n",
              fleet_devices, static_cast<unsigned long long>(fleet_cycles),
              fleet_threads, fleet_ms, fleet_mips);

  FILE* json = std::fopen("BENCH_sim_throughput.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"sim_throughput\",\n  \"mode\": \"%s\",\n"
                 "  \"cycles_per_run\": %llu,\n  \"policies\": [\n%s\n  ],\n"
                 "  \"fleet\": {\"devices\": %zu, \"threads\": %zu, "
                 "\"cycles_per_device\": %llu, \"wall_ms\": %.1f, "
                 "\"aggregate_mips\": %.1f},\n  \"ok\": %s\n}\n",
                 smoke ? "smoke" : "full",
                 static_cast<unsigned long long>(timed_cycles), policy_json.c_str(),
                 fleet_devices, fleet_threads,
                 static_cast<unsigned long long>(fleet_cycles), fleet_ms,
                 fleet_mips, ok ? "true" : "false");
    std::fclose(json);
  }

  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
