// Deterministic PRNG (splitmix64) for property tests, workload stimulus
// and attack fuzzing. Not cryptographic -- crypto lives in src/crypto.
// Determinism matters: every test and benchmark must be reproducible
// from a printed seed.
#ifndef EILID_COMMON_RNG_H
#define EILID_COMMON_RNG_H

#include <cstdint>

namespace eilid {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next 64 random bits (splitmix64).
  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) { return next() % bound; }

  // Uniform in [lo, hi] inclusive.
  int range(int lo, int hi) {
    return lo + static_cast<int>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  uint16_t u16() { return static_cast<uint16_t>(next()); }
  uint8_t u8() { return static_cast<uint8_t>(next()); }

  // Bernoulli with probability num/den.
  bool chance(int num, int den) { return static_cast<int>(below(static_cast<uint64_t>(den))) < num; }

 private:
  uint64_t state_;
};

}  // namespace eilid

#endif  // EILID_COMMON_RNG_H
