// EILID hardware: CASU hardware plus the secure-memory extension for
// the shadow stack (paper §III-A -- "derived from CASU ... except for
// the secure memory extension reserved for the shadow stack"). The
// secure DMEM region is readable/writable only while the PC is inside
// the secure ROM; any other access is denied and resets the device.
#ifndef EILID_EILID_HW_MONITOR_H
#define EILID_EILID_HW_MONITOR_H

#include "casu/monitor.h"

namespace eilid::core {

struct EilidHwConfig {
  casu::CasuConfig casu;
  uint16_t secure_ram_start = sim::kSecureRamStart;
  uint16_t secure_ram_end = sim::kSecureRamEnd;
};

class EilidHwMonitor : public casu::CasuMonitor {
 public:
  explicit EilidHwMonitor(EilidHwConfig config = {})
      : casu::CasuMonitor(config.casu), config_(config) {}

  bool on_read(uint16_t addr, uint16_t pc) override {
    if (in_secure_ram(addr) && !in_rom(pc)) {
      return violate(sim::ResetReason::kSecureRamAccessViolation);
    }
    return casu::CasuMonitor::on_read(addr, pc);
  }

  bool on_write(uint16_t addr, uint16_t value, bool byte, uint16_t pc) override {
    if (in_secure_ram(addr) && !in_rom(pc)) {
      return violate(sim::ResetReason::kSecureRamAccessViolation);
    }
    return casu::CasuMonitor::on_write(addr, value, byte, pc);
  }

  bool in_secure_ram(uint16_t addr) const {
    return addr >= config_.secure_ram_start && addr <= config_.secure_ram_end;
  }

 private:
  EilidHwConfig config_;
};

}  // namespace eilid::core

#endif  // EILID_EILID_HW_MONITOR_H
