// Memory map of the simulated EILID device (see DESIGN.md §4).
//
// The layout mirrors an openMSP430 configuration with CASU's secure ROM
// and EILID's secure-DMEM extension. The shadow-stack base 0x2000
// matches the worked example in the paper's Fig. 9(b).
#ifndef EILID_SIM_MEMORY_MAP_H
#define EILID_SIM_MEMORY_MAP_H

#include <cstdint>

namespace eilid::sim {

// Peripheral / special-function register space.
inline constexpr uint16_t kPeriphStart = 0x0000;
inline constexpr uint16_t kPeriphEnd = 0x01FF;

// Data memory (RAM). The main stack conventionally starts at
// kStackTop and grows down.
inline constexpr uint16_t kRamStart = 0x0200;
inline constexpr uint16_t kRamEnd = 0x0FFF;
inline constexpr uint16_t kStackTop = 0x1000;  // first address above RAM

// Secure DMEM: indirect-call table + shadow stack (EILID hardware
// extension; 256 bytes as in the paper, §V).
inline constexpr uint16_t kSecureRamStart = 0x2000;
inline constexpr uint16_t kSecureRamEnd = 0x20FF;

// Secure ROM housing CASU update code and EILIDsw.
inline constexpr uint16_t kRomStart = 0xA000;
inline constexpr uint16_t kRomEnd = 0xAFFF;

// Program memory (application flash), including the vector table.
inline constexpr uint16_t kPmemStart = 0xE000;
inline constexpr uint16_t kPmemEnd = 0xFFFF;

// Interrupt vector table: 16 word entries.
inline constexpr uint16_t kVectorBase = 0xFFE0;
inline constexpr int kNumVectors = 16;
inline constexpr int kResetVectorIndex = 15;  // word at 0xFFFE
inline constexpr uint16_t kResetVectorAddr = 0xFFFE;

// Peripheral register addresses.
namespace mmio {
// CASU/EILID control block (privileged: writable only from secure ROM).
inline constexpr uint16_t kViolationReg = 0x0190;  // write -> reset, value = reason
inline constexpr uint16_t kUpdateCtrl = 0x0192;    // CASU secure-update session
// Timer A.
inline constexpr uint16_t kTimerCtl = 0x0100;   // bit0 enable, bit1 irq-enable, bit2 clear
inline constexpr uint16_t kTimerCcr0 = 0x0102;  // compare value
inline constexpr uint16_t kTimerCount = 0x0104; // current counter
inline constexpr uint16_t kTimerFlags = 0x0106; // bit0 = compare hit (write 0 to clear)
// ADC (channels: 0=light, 1=temperature, 2=flame, 3=generic).
inline constexpr uint16_t kAdcCtl = 0x0110;   // write channel|0x100 to start
inline constexpr uint16_t kAdcMem = 0x0112;   // last conversion result
inline constexpr uint16_t kAdcStat = 0x0114;  // bit0 = conversion done
// GPIO port 1.
inline constexpr uint16_t kP1In = 0x0120;
inline constexpr uint16_t kP1Out = 0x0122;
inline constexpr uint16_t kP1Dir = 0x0124;
// GPIO port 2.
inline constexpr uint16_t kP2In = 0x0128;
inline constexpr uint16_t kP2Out = 0x012A;
inline constexpr uint16_t kP2Dir = 0x012C;
// UART.
inline constexpr uint16_t kUartTx = 0x0130;
inline constexpr uint16_t kUartRx = 0x0132;
inline constexpr uint16_t kUartStat = 0x0134;  // bit0 rx-avail, bit1 tx-ready
// Ultrasonic ranger.
inline constexpr uint16_t kUsTrig = 0x0140;   // write 1 to emit ping
inline constexpr uint16_t kUsEcho = 0x0142;   // echo pulse width (cycles)
inline constexpr uint16_t kUsStat = 0x0144;   // bit0 = echo ready
// LCD controller (HD44780-style command/data capture).
inline constexpr uint16_t kLcdCmd = 0x0150;
inline constexpr uint16_t kLcdData = 0x0152;
}  // namespace mmio

// Interrupt lines (vector indices). Higher index = higher priority.
namespace irq {
inline constexpr int kGpio = 4;
inline constexpr int kUartRx = 6;
inline constexpr int kAdc = 7;
inline constexpr int kTimer = 8;
}  // namespace irq

inline bool in_range(uint16_t addr, uint16_t lo, uint16_t hi) {
  return addr >= lo && addr <= hi;
}
inline bool is_ram(uint16_t addr) { return in_range(addr, kRamStart, kRamEnd); }
inline bool is_secure_ram(uint16_t addr) {
  return in_range(addr, kSecureRamStart, kSecureRamEnd);
}
inline bool is_rom(uint16_t addr) { return in_range(addr, kRomStart, kRomEnd); }
inline bool is_pmem(uint16_t addr) { return addr >= kPmemStart; }
inline bool is_periph(uint16_t addr) { return addr <= kPeriphEnd; }

}  // namespace eilid::sim

#endif  // EILID_SIM_MEMORY_MAP_H
