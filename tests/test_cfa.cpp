// CFA baseline tests: CFG extraction, log integrity (MAC), stateful
// replay verification, overflow accounting and reset-marker handling.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "attacks/attack.h"
#include "cfa/attestation.h"
#include "cfa/cfg.h"
#include "eilid/device.h"
#include "eilid/pipeline.h"

namespace eilid::cfa {
namespace {

crypto::Digest key() {
  crypto::Digest k{};
  k.fill(0x33);
  return k;
}

core::BuildResult plain_build(const apps::AppSpec& app) {
  return core::build_app(app.source, app.name, {.eilid = false});
}

TEST(Cfg, ExtractsSitesFromVulnGateway) {
  auto build = plain_build(apps::vuln_gateway());
  Cfg cfg = extract_cfg(build.app);
  EXPECT_GT(cfg.code_addrs.size(), 20u);
  EXPECT_GE(cfg.call_sites.size(), 4u);  // recv_packet, read_byte x2, act...
  EXPECT_GE(cfg.ret_addrs.size(), 4u);
  EXPECT_GE(cfg.jump_edges.size(), 3u);
  EXPECT_EQ(cfg.reset_entry, build.app.symbols.at("main"));
  // Indirect-call site exists (call r13 in act).
  bool has_indirect = false;
  for (const auto& [addr, site] : cfg.call_sites) {
    has_indirect = has_indirect || site.indirect;
  }
  EXPECT_TRUE(has_indirect);
  // .func blink is a legal target.
  EXPECT_TRUE(cfg.call_targets.count(build.app.symbols.at("blink")));
}

TEST(Cfa, LegalRunVerifiesAcrossReports) {
  const auto& app = apps::app_by_name("temp_sensor");
  auto build = plain_build(app);
  core::Device device(build);
  CfaMonitor monitor(key(), {.log_capacity = 1u << 16});
  device.machine().add_monitor(&monitor);
  app.setup(device.machine());
  CfaVerifier verifier(extract_cfg(build.app), key());

  uint64_t nonce = 100;
  for (int slice = 0; slice < 6; ++slice) {
    device.machine().run(5000);
    Report report = monitor.take_report(nonce, device.machine().cycles());
    auto result = verifier.verify(report, nonce);
    ++nonce;
    EXPECT_TRUE(result.mac_ok);
    EXPECT_TRUE(result.path_ok) << "false positive in slice " << slice;
  }
}

TEST(Cfa, LegalIsrRunVerifies) {
  const auto& app = apps::app_by_name("light_sensor");
  auto build = plain_build(app);
  core::Device device(build);
  CfaMonitor monitor(key(), {.log_capacity = 1u << 16});
  device.machine().add_monitor(&monitor);
  app.setup(device.machine());
  device.run_to_symbol("halt", 8 * app.cycle_budget);

  Report report = monitor.take_report(5, device.machine().cycles());
  bool saw_irq = false;
  for (const auto& e : report.edges) saw_irq = saw_irq || e.irq;
  EXPECT_TRUE(saw_irq) << "timer ISR edges must be logged";
  CfaVerifier verifier(extract_cfg(build.app), key());
  auto result = verifier.verify(report, 5);
  EXPECT_TRUE(result.mac_ok);
  EXPECT_TRUE(result.path_ok);
}

TEST(Cfa, HijackDetectedInReplay) {
  const auto& app = apps::vuln_gateway();
  auto build = plain_build(app);
  core::Device device(build);
  CfaMonitor monitor(key(), {.log_capacity = 1u << 16});
  device.machine().add_monitor(&monitor);
  uint16_t unlock = device.symbol("unlock");
  device.machine().uart().feed(attacks::overflow_ret_payload(unlock));
  device.run_to_symbol("halt", 200000);

  Report report = monitor.take_report(6, device.machine().cycles());
  CfaVerifier verifier(extract_cfg(build.app), key());
  auto result = verifier.verify(report, 6);
  EXPECT_TRUE(result.mac_ok);
  EXPECT_FALSE(result.path_ok);
  ASSERT_TRUE(result.first_bad.has_value());
  EXPECT_EQ(result.first_bad->to, unlock);
}

TEST(Cfa, TamperedReportFailsMac) {
  const auto& app = apps::app_by_name("temp_sensor");
  auto build = plain_build(app);
  core::Device device(build);
  CfaMonitor monitor(key(), {});
  device.machine().add_monitor(&monitor);
  app.setup(device.machine());
  device.machine().run(3000);
  Report report = monitor.take_report(7, device.machine().cycles());
  ASSERT_FALSE(report.edges.empty());
  report.edges[0].to ^= 4;  // a compromised prover rewrites history
  CfaVerifier verifier(extract_cfg(build.app), key());
  auto result = verifier.verify(report, 7);
  EXPECT_FALSE(result.mac_ok);
}

TEST(Cfa, WrongNonceFailsMac) {
  const auto& app = apps::app_by_name("temp_sensor");
  auto build = plain_build(app);
  core::Device device(build);
  CfaMonitor monitor(key(), {});
  device.machine().add_monitor(&monitor);
  device.machine().run(2000);
  Report report = monitor.take_report(8, device.machine().cycles());
  CfaVerifier verifier(extract_cfg(build.app), key());
  EXPECT_FALSE(verifier.verify(report, 9).mac_ok);  // replayed old report
}

TEST(Cfa, OverflowDropsAreCounted) {
  const auto& app = apps::app_by_name("charlieplexing");
  auto build = plain_build(app);
  core::Device device(build);
  CfaMonitor monitor(key(), {.log_capacity = 16});
  device.machine().add_monitor(&monitor);
  device.run_to_symbol("halt", 8 * app.cycle_budget);
  Report report = monitor.take_report(9, device.machine().cycles());
  EXPECT_EQ(report.edges.size(), 16u);
  EXPECT_GT(report.dropped, 0u);
}

TEST(Cfa, ResetMarkerResynchronisesReplay) {
  // Trigger an enforcement reset mid-run; the log must contain a reset
  // marker and the verifier must resync (no false positive afterwards).
  const auto& app = apps::vuln_gateway();
  auto build = plain_build(app);
  core::Device device(build);  // reboots after reset
  CfaMonitor monitor(key(), {.log_capacity = 1u << 16});
  device.machine().add_monitor(&monitor);
  // Exploit redirecting into RAM: CASU W^X resets the device.
  device.machine().uart().feed(attacks::overflow_ret_payload(0x0300));
  device.run_to_symbol("halt", 400000);
  EXPECT_GE(device.machine().violation_count(), 1u);

  Report report = monitor.take_report(10, device.machine().cycles());
  bool saw_reset = false;
  for (const auto& e : report.edges) saw_reset = saw_reset || e.reset;
  EXPECT_TRUE(saw_reset);
  CfaVerifier verifier(extract_cfg(build.app), key());
  auto result = verifier.verify(report, 10);
  EXPECT_TRUE(result.mac_ok);
  // The pre-reset hijack edge (ret into RAM) must be flagged.
  EXPECT_FALSE(result.path_ok);
  ASSERT_TRUE(result.first_bad.has_value());
  EXPECT_EQ(result.first_bad->to, 0x0300);
}

}  // namespace
}  // namespace eilid::cfa
