#include "sim/bus.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace eilid::sim {

Bus::Bus() = default;

void Bus::add_peripheral(Peripheral* peripheral) {
  for (auto* existing : peripherals_) {
    if (peripheral->first_addr() <= existing->last_addr() &&
        existing->first_addr() <= peripheral->last_addr()) {
      throw ConfigError("peripheral address ranges overlap");
    }
  }
  if (peripheral->last_addr() > kPeriphEnd) {
    throw ConfigError("peripheral range extends past the peripheral space");
  }
  peripherals_.push_back(peripheral);
  for (uint32_t a = peripheral->first_addr(); a <= peripheral->last_addr(); ++a) {
    periph_map_[a] = peripheral;
  }
  irq_dirty_ = true;
  horizon_dirty_ = true;
}

bool Bus::check_read(uint16_t addr, uint16_t pc) {
  for (auto* w : watchers_) {
    if (!w->on_read(addr, pc)) {
      access_denied_ = true;
      return false;
    }
  }
  return true;
}

bool Bus::check_write(uint16_t addr, uint16_t value, bool byte, uint16_t pc) {
  for (auto* w : watchers_) {
    if (!w->on_write(addr, value, byte, pc)) {
      access_denied_ = true;
      return false;
    }
  }
  return true;
}

bool Bus::notify_fetch_slow(uint16_t pc) {
  for (auto* w : watchers_) {
    if (!w->on_fetch(pc)) {
      access_denied_ = true;
      return false;
    }
  }
  return true;
}

uint16_t Bus::periph_read_word(uint16_t addr) {
  flush_ticks();  // the register must reflect all cycles retired so far
  irq_dirty_ = true;  // register reads can move irq state (rx consume)
  horizon_dirty_ = true;
  periph_touched_ = true;
  if (auto* p = peripheral_at(addr)) return p->read(addr);
  return 0;
}

uint8_t Bus::periph_read_byte(uint16_t addr) {
  flush_ticks();
  irq_dirty_ = true;
  horizon_dirty_ = true;
  periph_touched_ = true;
  if (auto* p = peripheral_at(addr)) {
    uint16_t v = p->read(addr & 0xFFFE);
    return (addr & 1) ? static_cast<uint8_t>(v >> 8) : static_cast<uint8_t>(v);
  }
  return 0;
}

void Bus::periph_write(uint16_t addr, uint16_t value) {
  flush_ticks();
  irq_dirty_ = true;  // register writes can enable/clear irq sources
  horizon_dirty_ = true;
  periph_touched_ = true;
  if (auto* p = peripheral_at(addr)) p->write(addr, value);
}

void Bus::raw_store_bytes(uint16_t addr, std::span<const uint8_t> bytes) {
  if (bytes.empty()) return;
  mem_.store_bytes(addr, bytes.data(), bytes.size());
  const size_t until_top = static_cast<size_t>(0x10000 - addr);
  const uint32_t last = addr + static_cast<uint32_t>(bytes.size()) - 1;
  if (last >= kRomStart || bytes.size() > until_top) ++code_generation_;
}

int Bus::compute_pending_irq() const {
  int best = -1;
  for (auto* p : peripherals_) {
    int line = p->pending_irq();
    if (line > best) best = line;  // higher vector index = higher priority
  }
  return best;
}

void Bus::ack_irq(int line) {
  irq_dirty_ = true;
  horizon_dirty_ = true;
  for (auto* p : peripherals_) {
    if (p->pending_irq() == line) {
      p->ack_irq();
      return;
    }
  }
}

void Bus::reset_peripherals() {
  irq_dirty_ = true;
  horizon_dirty_ = true;
  for (auto* p : peripherals_) p->reset();
}

void Bus::wipe_volatile() {
  mem_.zero_range(kRamStart, kRamEnd);
  mem_.zero_range(kSecureRamStart, kSecureRamEnd);
}

}  // namespace eilid::sim
