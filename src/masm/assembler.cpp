#include "masm/assembler.h"

#include <optional>

#include "common/error.h"
#include "common/hex.h"
#include "common/strings.h"
#include "isa/encoder.h"
#include "isa/opcodes.h"
#include "isa/registers.h"
#include "masm/emulated.h"
#include "masm/parser.h"

namespace eilid::masm {
namespace {

struct SizedStatement {
  Statement stmt;
  uint16_t address = 0;
  unsigned size_bytes = 0;
  bool emits = false;
};

std::string unescape(const std::string& quoted, const std::string& file,
                     int line_no) {
  std::string t = trim(quoted);
  if (t.size() < 2 || t.front() != '"' || t.back() != '"') {
    throw AsmError(file, line_no, "expected quoted string");
  }
  std::string out;
  for (size_t i = 1; i + 1 < t.size(); ++i) {
    char c = t[i];
    if (c == '\\' && i + 2 < t.size()) {
      ++i;
      switch (t[i]) {
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case '0': out.push_back('\0'); break;
        case '\\': out.push_back('\\'); break;
        case '"': out.push_back('"'); break;
        default:
          throw AsmError(file, line_no, std::string("bad escape: \\") + t[i]);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

class Unit {
 public:
  Unit(const std::vector<std::string>& lines, std::string name)
      : name_(std::move(name)) {
    pass1(lines);
    pass2();
  }

  AssembledUnit take() && {
    AssembledUnit out;
    out.name = name_;
    out.image = std::move(image_);
    out.listing = std::move(listing_);
    out.symbols = std::move(symbols_);
    out.globals = std::move(globals_);
    out.func_symbols = std::move(func_symbols_);
    out.vectors = std::move(vectors_);
    return out;
  }

 private:
  void define_symbol(const std::string& sym, uint16_t value, int line_no) {
    auto [it, inserted] = symbols_.emplace(sym, value);
    (void)it;
    if (!inserted) {
      throw AsmError(name_, line_no, "duplicate symbol: " + sym);
    }
  }

  uint16_t resolve(const Expr& expr, uint16_t here, int line_no) const {
    if (expr.is_literal()) return static_cast<uint16_t>(expr.offset);
    uint16_t base;
    if (expr.symbol == "$") {
      base = here;
    } else {
      auto it = symbols_.find(expr.symbol);
      if (it == symbols_.end()) {
        throw AsmError(name_, line_no, "undefined symbol: " + expr.symbol);
      }
      base = it->second;
    }
    return static_cast<uint16_t>(base + expr.offset);
  }

  // Whether an operand expression occupies an extension word; symbolic
  // immediates never compress to constant generators (see header).
  static bool needs_ext(const OperandExpr& op) {
    using K = OperandExpr::Kind;
    switch (op.kind) {
      case K::kReg:
      case K::kIndirect:
      case K::kIndirectInc:
        return false;
      case K::kImmediate:
        if (op.expr.is_literal() &&
            isa::constant_generator(op.expr.offset).has_value()) {
          return false;
        }
        return true;
      case K::kIndexed:
      case K::kAbsolute:
      case K::kSymbolic:
        return true;
    }
    return true;
  }

  unsigned instruction_size(const Statement& stmt) const {
    auto op = isa::opcode_from_mnemonic(stmt.mnemonic);
    if (!op) {
      throw AsmError(name_, stmt.line_no, "unknown mnemonic: " + stmt.mnemonic);
    }
    const auto& info = isa::opcode_info(*op);
    switch (info.format) {
      case isa::Format::kJump:
        if (stmt.operands.size() != 1) {
          throw AsmError(name_, stmt.line_no, stmt.mnemonic + " needs one operand");
        }
        return 2;
      case isa::Format::kSingle: {
        if (*op == isa::Opcode::kReti) {
          if (!stmt.operands.empty()) {
            throw AsmError(name_, stmt.line_no, "reti takes no operands");
          }
          return 2;
        }
        if (stmt.operands.size() != 1) {
          throw AsmError(name_, stmt.line_no, stmt.mnemonic + " needs one operand");
        }
        return 2 + (needs_ext(stmt.operands[0]) ? 2u : 0u);
      }
      case isa::Format::kDouble: {
        if (stmt.operands.size() != 2) {
          throw AsmError(name_, stmt.line_no, stmt.mnemonic + " needs two operands");
        }
        return 2 + (needs_ext(stmt.operands[0]) ? 2u : 0u) +
               (needs_ext(stmt.operands[1]) ? 2u : 0u);
      }
    }
    return 2;
  }

  // Lower a resolved operand expression to an ISA operand.
  isa::Operand lower(const OperandExpr& op, uint16_t here, int line_no) const {
    using K = OperandExpr::Kind;
    switch (op.kind) {
      case K::kReg:
        return isa::Operand::make_reg(op.reg);
      case K::kImmediate: {
        if (op.expr.is_literal()) return isa::Operand::make_imm(op.expr.offset);
        return isa::Operand::make_imm(resolve(op.expr, here, line_no));
      }
      case K::kIndexed: {
        int32_t x = op.expr.is_literal()
                        ? op.expr.offset
                        : static_cast<int16_t>(resolve(op.expr, here, line_no));
        return isa::Operand::make_indexed(op.reg, x);
      }
      case K::kIndirect:
        return isa::Operand::make_indirect(op.reg);
      case K::kIndirectInc:
        return isa::Operand::make_indirect_inc(op.reg);
      case K::kAbsolute:
        return isa::Operand::make_absolute(resolve(op.expr, here, line_no));
      case K::kSymbolic:
        return isa::Operand::make_symbolic(resolve(op.expr, here, line_no));
    }
    throw AsmError(name_, line_no, "unreachable operand kind");
  }

  void pass1(const std::vector<std::string>& lines) {
    uint32_t lc = 0;
    bool org_seen = false;
    bool ended = false;
    int line_no = 0;
    for (const auto& raw : lines) {
      ++line_no;
      if (ended) break;
      Statement stmt = parse_line(raw, name_, line_no);
      if (stmt.kind == Statement::Kind::kInstruction) {
        expand_emulated(stmt, name_);
      }

      SizedStatement sized;
      sized.address = static_cast<uint16_t>(lc);

      if (!stmt.label.empty()) {
        define_symbol(stmt.label, static_cast<uint16_t>(lc), line_no);
      }

      switch (stmt.kind) {
        case Statement::Kind::kEmpty:
          break;
        case Statement::Kind::kInstruction: {
          if (!org_seen) {
            throw AsmError(name_, line_no, "code before .org");
          }
          if (lc % 2 != 0) {
            throw AsmError(name_, line_no,
                           "instruction at odd address (insert .align 2 "
                           "after odd-sized data)");
          }
          sized.size_bytes = instruction_size(stmt);
          sized.emits = true;
          break;
        }
        case Statement::Kind::kDirective: {
          const std::string& d = stmt.directive;
          if (d == "org") {
            if (stmt.args.size() != 1) {
              throw AsmError(name_, line_no, ".org needs one literal argument");
            }
            Expr e = parse_expr(stmt.args[0], name_, line_no);
            if (!e.is_literal()) {
              throw AsmError(name_, line_no, ".org argument must be literal");
            }
            lc = static_cast<uint16_t>(e.offset);
            sized.address = static_cast<uint16_t>(lc);
            org_seen = true;
            // A label on the .org line binds to the *new* address.
            if (!stmt.label.empty()) symbols_[stmt.label] = static_cast<uint16_t>(lc);
          } else if (d == "word") {
            sized.size_bytes = static_cast<unsigned>(2 * stmt.args.size());
            sized.emits = true;
          } else if (d == "byte") {
            sized.size_bytes = static_cast<unsigned>(stmt.args.size());
            sized.emits = true;
          } else if (d == "ascii" || d == "asciz") {
            std::string s = unescape(stmt.args.empty() ? "\"\"" : stmt.args[0],
                                     name_, line_no);
            sized.size_bytes =
                static_cast<unsigned>(s.size() + (d == "asciz" ? 1 : 0));
            sized.emits = true;
          } else if (d == "space") {
            Expr e = parse_expr(stmt.args.at(0), name_, line_no);
            if (!e.is_literal() || e.offset < 0) {
              throw AsmError(name_, line_no, ".space needs a literal size");
            }
            sized.size_bytes = static_cast<unsigned>(e.offset);
            sized.emits = true;
          } else if (d == "align") {
            Expr e = parse_expr(stmt.args.at(0), name_, line_no);
            if (!e.is_literal() || e.offset <= 0) {
              throw AsmError(name_, line_no, ".align needs a literal boundary");
            }
            unsigned boundary = static_cast<unsigned>(e.offset);
            sized.size_bytes = static_cast<unsigned>((boundary - lc % boundary) % boundary);
            sized.emits = sized.size_bytes > 0;
          } else if (d == "equ") {
            if (stmt.args.size() != 2) {
              throw AsmError(name_, line_no, ".equ NAME, VALUE");
            }
            Expr e = parse_expr(stmt.args[1], name_, line_no);
            uint16_t value = e.is_literal()
                                 ? static_cast<uint16_t>(e.offset)
                                 : resolve(e, static_cast<uint16_t>(lc), line_no);
            define_symbol(stmt.args[0], value, line_no);
          } else if (d == "global") {
            for (const auto& g : stmt.args) globals_.push_back(g);
          } else if (d == "func") {
            for (const auto& f : stmt.args) func_symbols_.push_back(f);
          } else if (d == "vector") {
            if (stmt.args.size() != 2) {
              throw AsmError(name_, line_no, ".vector SLOT, HANDLER");
            }
            Expr slot = parse_expr(stmt.args[0], name_, line_no);
            if (!slot.is_literal() || slot.offset < 0 || slot.offset > 15) {
              throw AsmError(name_, line_no, "vector slot must be 0..15");
            }
            vectors_[slot.offset] = stmt.args[1];
          } else if (d == "end") {
            ended = true;
          } else {
            throw AsmError(name_, line_no, "unknown directive: ." + d);
          }
          break;
        }
      }
      lc += sized.size_bytes;
      if (lc > 0x10000) {
        throw AsmError(name_, line_no, "location counter overflowed 64KB");
      }
      sized.stmt = std::move(stmt);
      sized_.push_back(std::move(sized));
    }
  }

  void pass2() {
    listing_.unit_name = name_;
    for (const auto& sized : sized_) {
      const Statement& stmt = sized.stmt;
      ListingLine line;
      line.line_no = stmt.line_no;
      line.address = sized.address;
      line.source = stmt.text;
      line.label = stmt.label;

      if (stmt.kind == Statement::Kind::kInstruction) {
        line.is_instruction = true;
        line.mnemonic = stmt.mnemonic;
        auto opcode = *isa::opcode_from_mnemonic(stmt.mnemonic);
        const auto& info = isa::opcode_info(opcode);
        isa::Instruction insn;
        insn.op = opcode;
        insn.byte_mode = stmt.byte_suffix;
        isa::EncodeOptions opts;

        if (info.format == isa::Format::kJump) {
          const auto& target_op = stmt.operands[0];
          uint16_t target;
          if (target_op.kind == OperandExpr::Kind::kSymbolic ||
              target_op.kind == OperandExpr::Kind::kImmediate) {
            target = resolve(target_op.expr, sized.address, stmt.line_no);
          } else {
            throw AsmError(name_, stmt.line_no, "bad jump target");
          }
          int32_t delta = static_cast<int32_t>(target) -
                          (static_cast<int32_t>(sized.address) + 2);
          if (delta % 2 != 0) {
            throw AsmError(name_, stmt.line_no, "odd jump target");
          }
          int32_t words = delta / 2;
          if (words < -512 || words > 511) {
            throw AsmError(name_, stmt.line_no,
                           "jump out of range (" + std::to_string(delta) +
                               " bytes); use br");
          }
          insn.jump_offset = static_cast<int16_t>(words);
        } else if (info.format == isa::Format::kSingle) {
          if (opcode != isa::Opcode::kReti) {
            insn.src = lower(stmt.operands[0], sized.address, stmt.line_no);
            opts.allow_cg = !needs_ext(stmt.operands[0]) ||
                            insn.src.mode != isa::AddrMode::kImmediate;
          }
        } else {
          insn.src = lower(stmt.operands[0], sized.address, stmt.line_no);
          insn.dst = lower(stmt.operands[1], sized.address, stmt.line_no);
          opts.allow_cg = !needs_ext(stmt.operands[0]) ||
                          insn.src.mode != isa::AddrMode::kImmediate;
        }

        std::vector<uint16_t> words;
        try {
          words = isa::encode(insn, sized.address, opts);
        } catch (const Error& e) {
          throw AsmError(name_, stmt.line_no, e.what());
        }
        if (2 * words.size() != sized.size_bytes) {
          throw AsmError(name_, stmt.line_no,
                         "internal sizing mismatch (pass1 " +
                             std::to_string(sized.size_bytes) + "B, pass2 " +
                             std::to_string(2 * words.size()) + "B)");
        }
        uint16_t addr = sized.address;
        for (uint16_t w : words) {
          image_.emit_word(addr, w);
          line.bytes.push_back(static_cast<uint8_t>(w));
          line.bytes.push_back(static_cast<uint8_t>(w >> 8));
          addr = static_cast<uint16_t>(addr + 2);
        }
      } else if (stmt.kind == Statement::Kind::kDirective && sized.emits) {
        const std::string& d = stmt.directive;
        uint16_t addr = sized.address;
        auto emit = [&](uint8_t b) {
          image_.emit_byte(addr, b);
          line.bytes.push_back(b);
          addr = static_cast<uint16_t>(addr + 1);
        };
        if (d == "word") {
          for (const auto& arg : stmt.args) {
            Expr e = parse_expr(arg, name_, stmt.line_no);
            uint16_t v = resolve(e, sized.address, stmt.line_no);
            emit(static_cast<uint8_t>(v));
            emit(static_cast<uint8_t>(v >> 8));
          }
        } else if (d == "byte") {
          for (const auto& arg : stmt.args) {
            Expr e = parse_expr(arg, name_, stmt.line_no);
            uint16_t v = resolve(e, sized.address, stmt.line_no);
            emit(static_cast<uint8_t>(v));
          }
        } else if (d == "ascii" || d == "asciz") {
          std::string s = unescape(stmt.args.empty() ? "\"\"" : stmt.args[0],
                                   name_, stmt.line_no);
          for (char c : s) emit(static_cast<uint8_t>(c));
          if (d == "asciz") emit(0);
        } else if (d == "space" || d == "align") {
          for (unsigned i = 0; i < sized.size_bytes; ++i) emit(0);
        }
      }

      listing_.lines.push_back(std::move(line));
    }

    // Install interrupt vectors.
    for (const auto& [slot, handler] : vectors_) {
      auto it = symbols_.find(handler);
      if (it == symbols_.end()) {
        throw AsmError(name_, 0, "vector handler undefined: " + handler);
      }
      image_.emit_word(static_cast<uint16_t>(0xFFE0 + 2 * slot), it->second);
    }

    listing_.symbols = symbols_;
  }

  std::string name_;
  std::vector<SizedStatement> sized_;
  std::map<std::string, uint16_t> symbols_;
  std::vector<std::string> globals_;
  std::vector<std::string> func_symbols_;
  std::map<int, std::string> vectors_;
  MemoryImage image_;
  Listing listing_;
};

}  // namespace

AssembledUnit assemble(const std::vector<std::string>& lines,
                       const std::string& unit_name) {
  return Unit(lines, unit_name).take();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

AssembledUnit assemble_text(const std::string& text, const std::string& unit_name) {
  return assemble(split_lines(text), unit_name);
}

}  // namespace eilid::masm
