// A small fixed-size thread pool: one shared FIFO queue, a fixed set
// of workers, no work stealing. This is all the fleet engine needs --
// fleet work items (simulate a device window, attest one device) are
// coarse enough that a single locked queue never becomes the
// bottleneck, and FIFO keeps scheduling deterministic enough to reason
// about in tests.
//
//   common::ThreadPool pool(4);
//   pool.parallel_for(devices.size(), [&](size_t i) {
//     drive(devices[i]);
//   });
//
// parallel_for() blocks the calling thread until every index has run
// (the caller does not execute work items itself, so a pool of N uses
// exactly N workers) and rethrows the first exception a work item
// threw. submit() enqueues fire-and-forget work; the destructor drains
// the queue before joining.
#ifndef EILID_COMMON_THREAD_POOL_H
#define EILID_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eilid::common {

class ThreadPool {
 public:
  // 0 workers means std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return workers_.size(); }

  // Enqueue one task. Tasks run in FIFO order across the workers. An
  // exception a task throws is swallowed (fire-and-forget has nobody
  // to rethrow to); use parallel_for() when failures must propagate.
  void submit(std::function<void()> task);

  // Run fn(0) .. fn(n-1) across the workers and block until all have
  // finished. Indices are claimed atomically, so the iteration order
  // interleaves but every index runs exactly once. If any invocation
  // throws, the remaining unclaimed indices are abandoned and the
  // first exception is rethrown here. Not reentrant: must not be
  // called from inside a pool task of the same pool.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace eilid::common

#endif  // EILID_COMMON_THREAD_POOL_H
