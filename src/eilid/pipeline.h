// The EILID build pipeline: the paper's three-iteration instrumented
// compile flow (Fig. 2).
//
//   build 1: assemble the original source            -> app_1.lst
//   build 2: instrument(original, app_1.lst)         -> app_2.lst
//   build 3: instrument(original, app_2.lst)         -> final image
//
// Iteration 3's addresses are final because instrumentation size is
// independent of the numeric values it embeds; a convergence check
// verifies this. Label mode (ablation) needs a single build.
#ifndef EILID_EILID_PIPELINE_H
#define EILID_EILID_PIPELINE_H

#include <memory>
#include <string>
#include <vector>

#include "casu/update.h"
#include "eilid/instrumenter.h"
#include "eilid/rom_builder.h"
#include "isa/block_image.h"
#include "isa/decoded_image.h"
#include "masm/assembler.h"

namespace eilid::core {

struct BuildOptions {
  bool eilid = true;  // false: plain (original) build, single pass
  InstrumentConfig instrument;
  RomConfig rom;
  bool verify_convergence = true;  // assert iteration-3 fixpoint
  // EILIDsw is device firmware, built once per deployment, not per app
  // compile; benches pass a prebuilt ROM to keep compile-time honest.
  const RomInfo* prebuilt_rom = nullptr;
};

struct IterationStats {
  size_t source_lines = 0;
  size_t image_bytes = 0;
};

struct BuildResult {
  masm::AssembledUnit app;   // final application unit
  RomInfo rom;               // EILIDsw (empty unit when !eilid)
  InstrumentResult report;   // last instrumentation pass
  std::vector<IterationStats> iterations;  // Fig. 2 growth data
  bool converged = true;
  // Predecoded view of the flashed code regions (secure ROM + PMEM),
  // built once here and shared read-only by every device flashed with
  // this build -- the fleet's build cache therefore decodes each ROM
  // exactly once, however many sessions run it. See
  // isa::DecodedImage / Machine::attach_decoded_image for the
  // invalidation rule.
  std::shared_ptr<const isa::DecodedImage> decoded_image;
  // Superblock table derived from the decoded image: per-PC straight-
  // line run lengths with pre-summed cycles and terminator kinds, for
  // block-granular dispatch (see isa::BlockImage and
  // Machine::attach_block_image). Shares the decoded image's
  // fleet-wide build-once lifetime and invalidation rule.
  std::shared_ptr<const isa::BlockImage> block_image;
  // The full 64 KiB flashed snapshot (== flat_memory(*this)), built
  // once here and attached as every session's copy-on-write base image
  // (sim::PagedMemory): N devices of one build share these bytes and
  // privately own only the pages they dirty. Same build-once lifetime
  // as the decode tables.
  std::shared_ptr<const std::vector<uint8_t>> flat_image;

  size_t binary_size() const { return app.image.size_bytes(); }
};

// Build an application from source text. Throws on assembly or
// instrumentation errors.
BuildResult build_app(const std::string& source, const std::string& name,
                      const BuildOptions& options = {});

// Full 64 KiB address-space snapshot of the flashed build (app + ROM
// over zero-filled backing store) -- exactly what a freshly loaded
// device's memory holds. The predecoder and the update differ both
// read builds through this one definition.
std::vector<uint8_t> flat_memory(const BuildResult& build);

// Byte diff between two builds' flashed images, expressed as the
// coalesced PMEM write regions an authenticated update must apply to
// move a device from `from` to `to`. A difference outside PMEM (a
// different EILIDsw ROM, bytes below the flash floor) cannot be
// expressed as a CASU update at all: the transition is marked
// incompatible and carries no regions.
struct ImageDiff {
  bool compatible = true;
  uint16_t first_incompatible = 0;  // lowest differing non-PMEM address
  std::vector<casu::UpdateRegion> regions;
  size_t payload_bytes = 0;
};

ImageDiff diff_builds(const BuildResult& from, const BuildResult& to);

}  // namespace eilid::core

#endif  // EILID_EILID_PIPELINE_H
