#include "sim/peripherals.h"

namespace eilid::sim {

// --- TimerA ---

uint16_t TimerA::read(uint16_t addr) {
  switch (addr) {
    case mmio::kTimerCtl: return ctl_;
    case mmio::kTimerCcr0: return ccr0_;
    case mmio::kTimerCount: return count_;
    case mmio::kTimerFlags: return flags_;
    default: return 0;
  }
}

void TimerA::write(uint16_t addr, uint16_t value) {
  switch (addr) {
    case mmio::kTimerCtl:
      ctl_ = value;
      if (value & 0x4) {
        count_ = 0;
        sub_cycles_ = 0;
        ctl_ &= static_cast<uint16_t>(~0x4);
      }
      break;
    case mmio::kTimerCcr0:
      ccr0_ = value;
      break;
    case mmio::kTimerCount:
      count_ = value;
      break;
    case mmio::kTimerFlags:
      flags_ = value & 0x1 ? flags_ : 0;  // writing 0 clears the compare flag
      if ((value & 0x1) == 0) irq_latched_ = false;
      break;
    default:
      break;
  }
}

bool TimerA::tick(uint64_t cycles) {
  if ((ctl_ & 0x1) == 0) return false;
  const bool was_latched = irq_latched_;
  unsigned shift = 3u * ((ctl_ >> 4) & 0x3);  // /1, /8, /64, /512
  sub_cycles_ += cycles;
  uint64_t steps = sub_cycles_ >> shift;
  sub_cycles_ -= steps << shift;
  while (steps-- > 0) {
    if (++count_ >= ccr0_ && ccr0_ != 0) {
      count_ = 0;
      flags_ |= 0x1;
      if (ctl_ & 0x2) irq_latched_ = true;
    }
  }
  return irq_latched_ != was_latched;
}

int TimerA::pending_irq() const { return irq_latched_ ? irq::kTimer : -1; }

uint64_t TimerA::cycles_to_irq() const {
  if ((ctl_ & 0x1) == 0 || (ctl_ & 0x2) == 0 || ccr0_ == 0) return kIrqNever;
  if (irq_latched_) return 0;  // already asserted (conservative)
  // Counter steps remaining until ++count_ >= ccr0_ fires, then back
  // through the prescaler: the assertion lands on the tick whose
  // cumulative cycles cover (steps << shift) - sub_cycles_.
  const unsigned shift = 3u * ((ctl_ >> 4) & 0x3);
  const uint64_t steps = ccr0_ > count_ ? static_cast<uint64_t>(ccr0_ - count_)
                                        : 1;
  const uint64_t cycles = steps << shift;
  return cycles > sub_cycles_ ? cycles - sub_cycles_ : 1;
}

void TimerA::reset() {
  ctl_ = 0;
  ccr0_ = 0xFFFF;
  count_ = 0;
  flags_ = 0;
  sub_cycles_ = 0;
  irq_latched_ = false;
}

// --- Adc ---

void Adc::set_channel_series(int channel, std::vector<uint16_t> series) {
  series_[channel] = std::move(series);
  series_pos_[channel] = 0;
}

uint16_t Adc::read(uint16_t addr) {
  switch (addr) {
    case mmio::kAdcMem:
      return mem_;
    case mmio::kAdcStat:
      return done_ ? 1 : 0;
    case mmio::kAdcCtl:
      return static_cast<uint16_t>(active_channel_ | (busy_ ? 0x8000 : 0));
    default:
      return 0;
  }
}

void Adc::write(uint16_t addr, uint16_t value) {
  if (addr != mmio::kAdcCtl) return;
  if (value & 0x100) {
    active_channel_ = value & 0x3;
    busy_ = true;
    done_ = false;
    remaining_ = kConversionCycles;
  }
}

bool Adc::tick(uint64_t cycles) {
  if (!busy_) return false;
  if (cycles >= remaining_) {
    busy_ = false;
    done_ = true;
    auto& s = series_[active_channel_];
    if (s.empty()) {
      mem_ = 0;
    } else {
      mem_ = s[series_pos_[active_channel_] % s.size()];
      ++series_pos_[active_channel_];
    }
    ++conversions_;
  } else {
    remaining_ -= cycles;
  }
  return false;  // the ADC has no interrupt line
}

void Adc::reset() {
  mem_ = 0;
  busy_ = false;
  done_ = false;
  active_channel_ = 0;
  remaining_ = 0;
  // Stimulus series persist across device resets (they model the
  // physical environment, not device state).
}

// --- GpioPort ---

uint16_t GpioPort::read(uint16_t addr) {
  if (addr == in_addr_) return in_;
  if (addr == out_addr_) return out_;
  if (addr == dir_addr_) return dir_;
  return 0;
}

void GpioPort::write(uint16_t addr, uint16_t value) {
  if (addr == out_addr_) {
    uint8_t v = static_cast<uint8_t>(value);
    if (v != out_) trace_.push_back({now_, v});
    out_ = v;
  } else if (addr == dir_addr_) {
    dir_ = static_cast<uint8_t>(value);
  }
}

void GpioPort::reset() {
  out_ = 0;
  dir_ = 0;
  // Input reflects the external world; keep it. Trace kept for host.
}

// --- Uart ---

uint16_t Uart::read(uint16_t addr) {
  switch (addr) {
    case mmio::kUartRx: {
      if (rx_pos_ < rx_.size()) return rx_[rx_pos_++];
      return 0;
    }
    case mmio::kUartStat: {
      uint16_t s = 0x2;  // tx always ready
      if (rx_pos_ < rx_.size()) s |= 0x1;
      if (irq_enable_) s |= 0x4;
      return s;
    }
    default:
      return 0;
  }
}

void Uart::write(uint16_t addr, uint16_t value) {
  if (addr == mmio::kUartTx) {
    tx_.push_back(static_cast<uint8_t>(value));
  } else if (addr == mmio::kUartStat) {
    irq_enable_ = (value & 0x4) != 0;
  }
}

int Uart::pending_irq() const {
  return (irq_enable_ && rx_pos_ < rx_.size()) ? irq::kUartRx : -1;
}

void Uart::reset() {
  irq_enable_ = false;
  // rx queue and tx log persist: they model the outside link partner.
}

void Uart::feed(const std::string& bytes) {
  rx_.insert(rx_.end(), bytes.begin(), bytes.end());
}

void Uart::feed(const std::vector<uint8_t>& bytes) {
  rx_.insert(rx_.end(), bytes.begin(), bytes.end());
}

// --- Ultrasonic ---

uint16_t Ultrasonic::read(uint16_t addr) {
  switch (addr) {
    case mmio::kUsEcho: return echo_;
    case mmio::kUsStat: return ready_ ? 1 : 0;
    default: return 0;
  }
}

void Ultrasonic::write(uint16_t addr, uint16_t value) {
  if (addr == mmio::kUsTrig && (value & 1)) {
    busy_ = true;
    ready_ = false;
    uint16_t mm = distances_.empty() ? 0 : distances_[pos_ % distances_.size()];
    ++pos_;
    // Model a fixed transducer turnaround plus distance-proportional
    // flight time; the echo *width* is what the app reads.
    remaining_ = 100 + static_cast<uint64_t>(mm) * 4;
    echo_ = static_cast<uint16_t>(
        std::min<uint64_t>(0xFFFF, static_cast<uint64_t>(mm) * kCyclesPerMm));
    ++pings_;
  }
}

bool Ultrasonic::tick(uint64_t cycles) {
  if (!busy_) return false;
  if (cycles >= remaining_) {
    busy_ = false;
    ready_ = true;
  } else {
    remaining_ -= cycles;
  }
  return false;  // the ranger has no interrupt line
}

void Ultrasonic::reset() {
  busy_ = false;
  ready_ = false;
  echo_ = 0;
  remaining_ = 0;
}

// --- Lcd ---

uint16_t Lcd::read(uint16_t addr) {
  (void)addr;
  return 0;  // never busy
}

void Lcd::write(uint16_t addr, uint16_t value) {
  stream_.push_back({addr == mmio::kLcdData, static_cast<uint8_t>(value)});
}

std::string Lcd::text() const {
  std::string out;
  for (const auto& item : stream_) {
    if (item.is_data) out.push_back(static_cast<char>(item.value));
  }
  return out;
}

}  // namespace eilid::sim
