#include "sim/paged_memory.h"

#include <cstring>

namespace eilid::sim {

namespace {

// The one all-zero page every blank or wiped page reads through; a
// 10k-device fleet's un-written RAM is this single array.
const std::array<uint8_t, PagedMemory::kPageBytes> kZeroPage{};

}  // namespace

PagedMemory::PagedMemory() { read_.fill(kZeroPage.data()); }

const uint8_t* PagedMemory::base_page(size_t page) const {
  return base_ != nullptr ? base_->data() + page * kPageBytes
                          : kZeroPage.data();
}

uint8_t* PagedMemory::materialize(size_t page) {
  uint8_t* fresh;
  if (!free_.empty()) {
    fresh = free_.back();
    free_.pop_back();
  } else {
    pages_.push_back(std::make_unique<std::array<uint8_t, kPageBytes>>());
    fresh = pages_.back()->data();
  }
  std::memcpy(fresh, read_[page], kPageBytes);
  read_[page] = fresh;
  write_[page] = fresh;
  return fresh;
}

void PagedMemory::release(size_t page, const uint8_t* view) {
  if (write_[page] != nullptr) {
    free_.push_back(write_[page]);
    write_[page] = nullptr;
  }
  read_[page] = view;
}

void PagedMemory::attach_base(
    std::shared_ptr<const std::vector<uint8_t>> base) {
  base_ = std::move(base);
  for (size_t page = 0; page < kPageCount; ++page) {
    if (write_[page] == nullptr) read_[page] = base_page(page);
  }
}

void PagedMemory::reset_range_to_base(uint16_t first, uint16_t last) {
  size_t addr = first;
  const size_t end = static_cast<size_t>(last) + 1;
  while (addr < end) {
    const size_t page = addr >> 8;
    const size_t page_start = page * kPageBytes;
    const size_t page_end = page_start + kPageBytes;
    if (addr == page_start && end >= page_end) {
      release(page, base_page(page));
      addr = page_end;
    } else {
      // Partial page: restore only the covered bytes, keep the rest.
      const size_t stop = end < page_end ? end : page_end;
      uint8_t* dst = write_[page];
      if (dst == nullptr) dst = materialize(page);
      std::memcpy(dst + (addr - page_start), base_page(page) + (addr - page_start),
                  stop - addr);
      addr = stop;
    }
  }
}

void PagedMemory::zero_range(uint16_t first, uint16_t last) {
  size_t addr = first;
  const size_t end = static_cast<size_t>(last) + 1;
  while (addr < end) {
    const size_t page = addr >> 8;
    const size_t page_start = page * kPageBytes;
    const size_t page_end = page_start + kPageBytes;
    if (addr == page_start && end >= page_end) {
      release(page, kZeroPage.data());
      addr = page_end;
    } else {
      const size_t stop = end < page_end ? end : page_end;
      uint8_t* dst = write_[page];
      if (dst == nullptr) dst = materialize(page);
      std::memset(dst + (addr - page_start), 0, stop - addr);
      addr = stop;
    }
  }
}

void PagedMemory::reclaim_identical(uint16_t first, uint16_t last) {
  const size_t first_page = first >> 8;
  const size_t last_page = last >> 8;
  for (size_t page = first_page; page <= last_page; ++page) {
    if (write_[page] == nullptr) continue;
    const uint8_t* shared = base_page(page);
    if (std::memcmp(write_[page], shared, kPageBytes) == 0) {
      release(page, shared);
    }
  }
}

void PagedMemory::store_bytes(uint16_t addr, const uint8_t* bytes,
                              size_t len) {
  while (len != 0) {
    const size_t page = addr >> 8;
    const size_t off = addr & 0xFF;
    const size_t chunk = len < kPageBytes - off ? len : kPageBytes - off;
    uint8_t* dst = write_[page];
    if (dst == nullptr) {
      if (off == 0 && chunk == kPageBytes) {
        // Whole-page overwrite: the materialize copy would be clobbered
        // immediately; grab a page without priming it.
        if (!free_.empty()) {
          dst = free_.back();
          free_.pop_back();
        } else {
          pages_.push_back(
              std::make_unique<std::array<uint8_t, kPageBytes>>());
          dst = pages_.back()->data();
        }
        read_[page] = dst;
        write_[page] = dst;
      } else {
        dst = materialize(page);
      }
    }
    std::memcpy(dst + off, bytes, chunk);
    bytes += chunk;
    len -= chunk;
    addr = static_cast<uint16_t>(addr + chunk);  // wraps through 0
  }
}

}  // namespace eilid::sim
