#include "fuzz/harness.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <exception>
#include <iterator>
#include <memory>
#include <set>
#include <span>
#include <tuple>
#include <utility>

#include "cfa/cfg.h"
#include "common/thread_pool.h"
#include "eilid/fleet.h"
#include "eilid/session.h"
#include "sim/memory_map.h"

namespace eilid::fuzz {
namespace {

constexpr ExecutionEngine kEngines[] = {
    ExecutionEngine::kInterpretive,
    ExecutionEngine::kPredecoded,
    ExecutionEngine::kSuperblock,
};

constexpr uint64_t kNonce = 0xF00DF00DF00DF00Dull;

// One fixed key for every standalone session: cross-engine MAC
// identity is only meaningful when all three engines MAC with the same
// key over the same nonce.
crypto::Digest fixed_key() {
  crypto::Digest d{};
  d.fill(0x6B);
  return d;
}

struct FinalState {
  std::array<uint16_t, 16> regs{};
  uint64_t cycles = 0;
  uint64_t retired = 0;
  std::vector<std::tuple<uint64_t, uint16_t, uint8_t>> resets;
  std::vector<uint16_t> ram;

  bool operator==(const FinalState&) const = default;
};

FinalState capture(sim::Machine& m) {
  FinalState out;
  for (int i = 0; i < 16; ++i) {
    out.regs[static_cast<size_t>(i)] = m.cpu().reg(i);
  }
  out.cycles = m.cycles();
  out.retired = m.cpu().instructions_retired();
  for (const sim::ResetEvent& e : m.resets()) {
    out.resets.emplace_back(e.cycle, e.pc, static_cast<uint8_t>(e.reason));
  }
  // The generator's whole RAM footprint: the ISR counter (0x0260) and
  // the kMemRw scratch window (0x0300 + 2*slot, slot < 24).
  for (uint16_t a = 0x0260; a < 0x0340; a += 2) {
    out.ram.push_back(m.bus().raw_word(a));
  }
  return out;
}

SessionOptions standalone_options(ExecutionEngine engine) {
  SessionOptions opt;
  opt.engine = engine;
  // Never drop benign evidence: a generated program logs far fewer
  // edges than this, so dropped != 0 on a benign run is a real bug,
  // not an undersized log.
  opt.cfa.log_capacity = size_t{1} << 15;
  opt.attest_key = fixed_key();
  opt.update_key = fixed_key();
  return opt;
}

std::string seed_tag(uint64_t seed) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seed 0x%016llx",
                static_cast<unsigned long long>(seed));
  return buf;
}

void add_failure(HarnessReport& report, uint64_t seed,
                 const std::string& what) {
  report.failures.push_back(seed_tag(seed) + ": " + what);
}

bool reports_equal(const cfa::Report& a, const cfa::Report& b) {
  return a.seq == b.seq && a.cycle == b.cycle && a.dropped == b.dropped &&
         a.edges == b.edges && a.mac == b.mac;
}

// AttestResult minus device_id: the pooled and serial cohorts carry
// different ids by construction, and everything else must match.
auto verdict_key(const VerifierService::AttestResult& r) {
  return std::tie(r.attested, r.seq, r.cycle, r.tick, r.mac_ok, r.seq_ok,
                  r.path_ok, r.edges, r.dropped, r.first_bad, r.remaining);
}

// Exercised dispatch-table slots: every kCallIndirect op sits in main,
// and main executes start-to-halt, so each named slot is dispatched
// through on every benign run.
std::vector<int> exercised_slots(const ProgramSpec& spec) {
  std::set<int> slots;
  for (const Op& op : spec.functions.front().ops) {
    if (op.kind == Op::Kind::kCallIndirect) slots.insert(op.a);
  }
  return {slots.begin(), slots.end()};
}

}  // namespace

void DifferentialHarness::check_program(uint64_t seed,
                                        HarnessReport& report) try {
  const ProgramSpec spec = ProgramGenerator(options_.generator).generate(seed);
  const std::string source = spec.render();
  Fleet fleet;
  const auto plain = fleet.build(source, spec.name(), {.eilid = false});
  const auto instr = fleet.build(source, spec.name() + "-eilid", {});

  // Oracle 1: three engines, bit-identical, under every policy.
  struct PolicyCase {
    EnforcementPolicy policy;
    bool instrumented;
  };
  const PolicyCase cases[] = {
      {EnforcementPolicy::kNone, false},
      {EnforcementPolicy::kCasu, false},
      {EnforcementPolicy::kCfaBaseline, false},
      {EnforcementPolicy::kEilidHw, true},
  };
  for (const PolicyCase& pc : cases) {
    const auto& build = pc.instrumented ? instr : plain;
    const uint64_t budget =
        options_.benign_budget * (pc.instrumented ? 4 : 1);
    std::vector<FinalState> states;
    std::vector<cfa::Report> cfa_reports;
    for (ExecutionEngine engine : kEngines) {
      DeviceSession dev(spec.name(), build, pc.policy,
                        standalone_options(engine));
      const sim::RunResult rr = dev.run_to_symbol("halt", budget);
      ++report.engine_runs;
      const std::string tag = std::string(enforcement_policy_name(pc.policy)) +
                              "/" +
                              std::string(execution_engine_name(engine));
      if (rr.cause != sim::StopCause::kBreakpoint) {
        add_failure(report, seed, tag + ": did not reach halt in " +
                                      std::to_string(budget) + " cycles");
        return;  // final states of a truncated run prove nothing
      }
      if (dev.violation_count() != 0) {
        add_failure(report, seed,
                    tag + ": benign program tripped enforcement (" +
                        dev.last_reset_reason() + ")");
      }
      states.push_back(capture(dev.machine()));
      if (dev.cfa_monitor() != nullptr) {
        cfa_reports.push_back(
            dev.cfa_monitor()->take_report(kNonce, dev.machine().cycles()));
      }
    }
    for (size_t i = 1; i < states.size(); ++i) {
      if (!(states[i] == states[0])) {
        add_failure(report, seed,
                    std::string(enforcement_policy_name(pc.policy)) +
                        ": final state diverges between " +
                        std::string(execution_engine_name(kEngines[0])) +
                        " and " +
                        std::string(execution_engine_name(kEngines[i])));
      }
    }
    for (size_t i = 1; i < cfa_reports.size(); ++i) {
      if (!reports_equal(cfa_reports[i], cfa_reports[0])) {
        add_failure(report, seed,
                    "CFA evidence diverges between engines under " +
                        std::string(enforcement_policy_name(pc.policy)));
      }
    }
    if (!cfa_reports.empty()) {
      if (cfa_reports[0].dropped != 0) {
        add_failure(report, seed, "benign run overflowed the CFA log");
      }
      cfa::CfaVerifier verifier(cfa::extract_cfg(plain->app), fixed_key());
      const auto res = verifier.verify(cfa_reports[0], kNonce);
      if (!res.mac_ok || !res.path_ok) {
        add_failure(report, seed,
                    std::string("clean evidence failed verification (") +
                        (res.mac_ok ? "path" : "mac") + ")");
      }
    }
  }

  // Oracle 2: pooled == serial sweep over identical cohorts.
  std::vector<DeviceSession*> serial_cohort, pooled_cohort;
  for (size_t i = 0; i < std::size(kEngines); ++i) {
    const std::string suffix = std::to_string(i);
    serial_cohort.push_back(&fleet.deploy("a" + suffix, plain,
                                          EnforcementPolicy::kCfaBaseline,
                                          standalone_options(kEngines[i])));
    pooled_cohort.push_back(&fleet.deploy("b" + suffix, plain,
                                          EnforcementPolicy::kCfaBaseline,
                                          standalone_options(kEngines[i])));
  }
  for (DeviceSession* dev : serial_cohort) {
    dev->run_to_symbol("halt", options_.benign_budget);
  }
  for (DeviceSession* dev : pooled_cohort) {
    dev->run_to_symbol("halt", options_.benign_budget);
  }
  const auto serial = fleet.verifier().verify_all(serial_cohort);
  common::ThreadPool pool(4);
  const auto pooled = fleet.verifier().verify_all(pooled_cohort, pool);
  if (serial.size() != pooled.size()) {
    add_failure(report, seed, "pooled sweep returned a different cohort size");
  } else {
    for (size_t i = 0; i < serial.size(); ++i) {
      if (!serial[i].ok()) {
        add_failure(report, seed,
                    "serial sweep convicted a benign device " +
                        serial[i].device_id);
      }
      if (verdict_key(serial[i]) != verdict_key(pooled[i])) {
        add_failure(report, seed,
                    "pooled and serial sweep verdicts diverge at index " +
                        std::to_string(i));
      }
    }
  }
} catch (const std::exception& e) {
  add_failure(report, seed, std::string("exception: ") + e.what());
}

void DifferentialHarness::check_mutation(uint64_t seed,
                                         HarnessReport& report) try {
  const ProgramSpec spec = ProgramGenerator(options_.generator).generate(seed);
  const std::string source = spec.render();
  Fleet fleet;
  const auto plain = fleet.build(source, spec.name(), {.eilid = false});
  const cfa::Cfg cfg = cfa::extract_cfg(plain->app);
  AttackMutator mutator(seed);

  // Benign evidence: exercised-edge selection for the jump family and
  // the corpus for report tampering.
  const auto benign_session_options =
      standalone_options(ExecutionEngine::kSuperblock);
  cfa::Report benign;
  {
    DeviceSession dev(spec.name(), plain, EnforcementPolicy::kCfaBaseline,
                      benign_session_options);
    dev.run_to_symbol("halt", options_.benign_budget);
    benign = dev.cfa_monitor()->take_report(kNonce, dev.machine().cycles());
  }

  // Run one PMEM patch under kCfaBaseline and demand the replay
  // convicts. The patch goes through raw_store_word, which bumps the
  // bus code generation, so every engine decodes the mutated bytes.
  const auto expect_conviction = [&](const PmemPatch& patch,
                                     const char* family) {
    ++report.mutation_cases;
    DeviceSession dev(spec.name(), plain, EnforcementPolicy::kCfaBaseline,
                      benign_session_options);
    dev.machine().bus().raw_store_word(patch.addr, patch.new_word);
    dev.run_to_symbol("halt", options_.mutated_budget);
    const cfa::Report evidence =
        dev.cfa_monitor()->take_report(kNonce, dev.machine().cycles());
    cfa::CfaVerifier verifier(cfg, fixed_key());
    const auto res = verifier.verify(evidence, kNonce);
    if (res.mac_ok && res.path_ok) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "%s at 0x%04X (-> 0x%04X) escaped conviction", family,
                    patch.addr, patch.new_to);
      add_failure(report, seed, buf);
    } else {
      ++report.convicted;
    }
  };

  if (const auto plan = mutator.plan_jump_diversion(plain->app, cfg, benign)) {
    expect_conviction(*plan, "jump diversion");
  }

  const std::vector<int> slots = exercised_slots(spec);
  if (!slots.empty()) {
    const int slot =
        slots[common::SeededRng(seed ^ 0x7ab1eull).below(slots.size())];
    if (const auto plan = mutator.plan_table_diversion(plain->app, cfg, slot)) {
      expect_conviction(*plan, "table diversion");
    }

    // The same table attack against the instrumented build: EILID's P3
    // indirect-call check must refuse the gadget in real time, before
    // any corrupted transfer retires.
    const auto instr = fleet.build(source, spec.name() + "-eilid", {});
    const cfa::Cfg instr_cfg = cfa::extract_cfg(instr->app);
    if (const auto plan =
            mutator.plan_table_diversion(instr->app, instr_cfg, slot)) {
      ++report.mutation_cases;
      DeviceSession dev(spec.name(), instr, EnforcementPolicy::kEilidHw,
                        standalone_options(ExecutionEngine::kSuperblock));
      dev.machine().set_halt_on_reset(true);
      dev.machine().bus().raw_store_word(plan->addr, plan->new_word);
      dev.run_to_symbol("halt", options_.mutated_budget * 4);
      if (dev.violation_count() > 0) {
        ++report.refused;
      } else {
        add_failure(report, seed, "gadget dispatch escaped EILID's P3 check");
      }
    }
  }

  // Report tampering in transit: every kind must fail verification.
  for (ReportTamper kind : kAllReportTampers) {
    const auto tampered = mutator.tamper_report(benign, kind);
    if (!tampered.has_value()) continue;
    ++report.mutation_cases;
    cfa::CfaVerifier verifier(cfg, fixed_key());
    const auto res = verifier.verify(*tampered, kNonce);
    if (res.mac_ok && res.path_ok) {
      add_failure(report, seed,
                  "report tamper '" + std::string(report_tamper_name(kind)) +
                      "' accepted by the verifier");
    } else {
      ++report.refused;
    }
  }

  // Update-package and chunk-transport tampering. The payload is the
  // bytes already flashed at the start of PMEM (a no-op patch), so the
  // *only* thing distinguishing accept from refuse is authentication.
  std::vector<uint8_t> payload;
  for (uint16_t a = sim::kPmemStart; a < sim::kPmemStart + 8; ++a) {
    payload.push_back(plain->app.image.byte_at(a));
  }
  const crypto::Digest key = fixed_key();
  casu::UpdateAuthority authority{std::span<const uint8_t>(key)};
  const casu::UpdatePackage package =
      authority.make_package(sim::kPmemStart, 1, payload);

  {
    std::vector<uint8_t> bytes = casu::serialize_package(package);
    mutator.flip_package_bit(bytes);
    ++report.mutation_cases;
    const auto parsed = casu::parse_package(bytes);
    if (!parsed.has_value()) {
      ++report.refused;  // structural damage: refused before any MAC
    } else {
      DeviceSession dev(spec.name(), plain, EnforcementPolicy::kCasu,
                        standalone_options(ExecutionEngine::kSuperblock));
      const casu::UpdateStatus st = dev.apply_update(*parsed);
      if (st == casu::UpdateStatus::kApplied) {
        add_failure(report, seed, "bit-flipped update package applied");
      } else {
        ++report.refused;
      }
    }
  }

  {
    // Replay of an already-applied version: anti-rollback must refuse.
    ++report.mutation_cases;
    DeviceSession dev(spec.name(), plain, EnforcementPolicy::kCasu,
                      standalone_options(ExecutionEngine::kSuperblock));
    const casu::UpdateStatus first = dev.apply_update(package);
    const casu::UpdateStatus second = dev.apply_update(package);
    if (first == casu::UpdateStatus::kApplied &&
        second == casu::UpdateStatus::kRollback) {
      ++report.refused;
    } else {
      add_failure(report, seed,
                  std::string("package replay not refused (first ") +
                      std::string(casu::update_status_name(first)) +
                      ", second " +
                      std::string(casu::update_status_name(second)) + ")");
    }
  }

  const std::vector<casu::TransferChunk> chunks =
      casu::chunk_package(package, 7);
  const auto fresh_casu = [&]() {
    return std::make_unique<DeviceSession>(
        spec.name(), plain, EnforcementPolicy::kCasu,
        standalone_options(ExecutionEngine::kSuperblock));
  };

  {
    // Adversarial forge: checksum recomputed, so transport accepts
    // every chunk and the package MAC must catch it at finalize.
    ++report.mutation_cases;
    std::vector<casu::TransferChunk> forged = chunks;
    const size_t victim =
        common::SeededRng(seed ^ 0xf043eull).below(forged.size());
    mutator.flip_chunk_payload(forged[victim], true);
    auto dev = fresh_casu();
    for (const auto& c : forged) dev->receive_update_chunk(c);
    const casu::UpdateStatus st = dev->finalize_update();
    if (st == casu::UpdateStatus::kApplied) {
      add_failure(report, seed, "forged chunk stream applied");
    } else {
      ++report.refused;
    }
  }

  {
    // Line noise: the corrupted chunk is NACKed, the retransmit of the
    // original completes the transfer, and the finalize applies.
    ++report.mutation_cases;
    std::vector<casu::TransferChunk> noisy = chunks;
    const size_t victim = common::SeededRng(seed ^ 0xc0ffeeull)
                              .below(noisy.size());
    mutator.flip_chunk_payload(noisy[victim], false);
    auto dev = fresh_casu();
    bool nacked = false;
    for (size_t i = 0; i < noisy.size(); ++i) {
      const casu::ChunkAck ack = dev->receive_update_chunk(noisy[i]);
      if (i == victim) nacked = (ack == casu::ChunkAck::kCorrupt);
    }
    if (!nacked) {
      add_failure(report, seed, "corrupted chunk not NACKed");
    } else {
      ++report.refused;
      dev->receive_update_chunk(chunks[victim]);
      if (dev->finalize_update() != casu::UpdateStatus::kApplied) {
        add_failure(report, seed,
                    "retransmit after a NACKed chunk failed to finalize");
      }
    }
  }

  {
    // Inconsistent geometry with a valid checksum.
    ++report.mutation_cases;
    casu::TransferChunk bad = chunks[0];
    mutator.scramble_chunk_geometry(bad);
    auto dev = fresh_casu();
    if (dev->receive_update_chunk(bad) == casu::ChunkAck::kMalformed) {
      ++report.refused;
    } else {
      add_failure(report, seed, "malformed chunk geometry accepted");
    }
  }

  {
    // Truncation: incomplete transfers never finalize, and the staged
    // map names exactly the missing chunk for resume.
    ++report.mutation_cases;
    auto dev = fresh_casu();
    for (size_t i = 0; i + 1 < chunks.size(); ++i) {
      dev->receive_update_chunk(chunks[i]);
    }
    if (dev->finalize_update() != casu::UpdateStatus::kInterrupted) {
      add_failure(report, seed, "truncated transfer finalized");
    } else {
      ++report.refused;
      const std::vector<bool> map =
          dev->staged_update_chunks(package.mac);
      if (map.empty() || map.back() ||
          static_cast<size_t>(std::count(map.begin(), map.end(), true)) !=
              chunks.size() - 1) {
        add_failure(report, seed, "resume map does not name the missing chunk");
      }
    }
  }
} catch (const std::exception& e) {
  add_failure(report, seed, std::string("exception: ") + e.what());
}

HarnessReport DifferentialHarness::run() {
  HarnessReport report;
  const auto flush_failures = [&](size_t from) {
    for (size_t i = from; i < report.failures.size(); ++i) {
      std::fprintf(stderr, "fuzz: FAIL %s\n", report.failures[i].c_str());
    }
  };
  for (int i = 0; i < options_.programs; ++i) {
    const size_t before = report.failures.size();
    check_program(options_.seed + static_cast<uint64_t>(i), report);
    ++report.programs;
    flush_failures(before);
  }
  // Mutation seeds share the program-seed base: a failing seed printed
  // above reproduces with `--seed <it> --programs 1 --mutations 1`
  // regardless of which half it came from.
  for (int i = 0; i < options_.mutations; ++i) {
    const size_t before = report.failures.size();
    check_mutation(options_.seed + static_cast<uint64_t>(i), report);
    flush_failures(before);
  }
  return report;
}

ProgramSpec DifferentialHarness::shrink(
    ProgramSpec spec,
    const std::function<bool(const ProgramSpec&)>& reproduces) const {
  bool progress = true;
  while (progress) {
    progress = false;
    for (ProgramSpec& candidate : shrink_candidates(spec)) {
      if (reproduces(candidate)) {
        spec = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return spec;
}

}  // namespace eilid::fuzz
