// Deterministic lossy transport for OTA campaigns: the pipe between an
// update authority and a device, with every fault a real radio link
// has -- drops, corruption (line noise), duplication, reordering,
// delay -- plus the two faults that define OTA robustness: the device
// losing power at an arbitrary chunk boundary, and losing power in the
// middle of the A/B apply itself.
//
// Everything is driven by one common::SeededRng stream keyed
// (seed, device_id): the fault schedule for a device depends only on
// the seed and its id, never on scheduling -- a pooled rollout's
// outcomes are bit-identical to a serial rollout's, which is what lets
// the determinism gates cover the transport path at all.
//
// The split of responsibilities mirrors production OTA stacks
// (mcuboot-style A/B slots):
//
//   deliver_update() is the *sender* loop: chunk the MAC'd package
//   (casu::chunk_package), negotiate resume from the receiver's staged
//   chunk map, then retransmit un-acked chunks in bounded rounds. Each
//   round models one ack-timeout window; in simulated time the
//   exponential backoff between rounds collapses to nothing, so the
//   bound is expressed purely in rounds (TransportOptions.max_rounds).
//
//   casu::UpdateEngine is the *receiver*: per-chunk checksum NACKs,
//   non-volatile staging, and the two-phase verify-then-commit with a
//   power-loss-proof journal (see casu/update.h). The transport never
//   weakens a security property -- a forged chunk survives the pipe
//   only to die at the package MAC.
//
// Faults are per-transmission Bernoulli trials in parts-per-mille.
// power_loss_at_chunk / power_loss_mid_apply are one-shot injection
// hooks, not random: tests sweep them across every chunk boundary and
// every region boundary to prove that *no* reset point can brick the
// device.
#ifndef EILID_EILID_TRANSPORT_H
#define EILID_EILID_TRANSPORT_H

#include <cstdint>
#include <functional>
#include <optional>

#include "casu/update.h"
#include "common/rng.h"
#include "eilid/session.h"

namespace eilid {

// Fault schedule for one delivery. The per-mille rates are evaluated
// once per chunk transmission, in a fixed order (drop, corrupt,
// duplicate, reorder, delay), from the (seed, device_id) stream.
struct FaultSpec {
  uint32_t drop_per_mille = 0;       // chunk vanishes in flight
  uint32_t corrupt_per_mille = 0;    // payload byte flips; the stale
                                     // checksum makes the receiver NACK
  uint32_t duplicate_per_mille = 0;  // chunk arrives twice
  uint32_t reorder_per_mille = 0;    // chunk arrives after the rest of
                                     // this round's traffic
  uint32_t delay_per_mille = 0;      // chunk arrives in the *next*
                                     // round instead of this one

  // One-shot: the device loses power the moment its receiver has
  // accepted this many chunks (counted across the whole delivery,
  // including chunks staged before a resume). The rest of the round's
  // traffic is lost; staged progress survives (non-volatile slot) and
  // the sender resumes in the next round.
  std::optional<uint32_t> power_loss_at_chunk;
  // One-shot: the supply fails after this many regions of the commit
  // replay have been written (see UpdateEngine::finalize_transfer).
  // The delivery power-cycles the device; recover_after_reset()
  // finishes the journal at that boot, and the delivery reports
  // kApplied -- the device was never observably half-flashed.
  std::optional<size_t> power_loss_mid_apply;
};

struct TransportOptions {
  size_t chunk_size = 48;   // payload bytes per chunk
  uint64_t seed = 0;        // fault-stream seed, keyed per device id
  uint32_t max_rounds = 32; // retransmission rounds before giving up
                            // (the transfer stays staged for resume)
  FaultSpec faults;
  // Adversary-on-the-wire hook: invoked with every chunk transmission
  // (retransmits included) after the sender computed its checksum;
  // whatever it leaves behind is what the pipe carries. An adversary
  // who recomputes the checksum gets the chunk *staged* -- and the
  // forgery then fails the package MAC at finalize (kBadMac, monitor
  // latch), which is the content of the forged-chunk scenarios. Same
  // determinism/thread-safety contract as CampaignOptions.tamper.
  std::function<void(const DeviceSession&, casu::TransferChunk&)> tamper_chunk;
};

// What one deliver_update() call did. `status` is the receiver's final
// verdict: kInterrupted means the retry budget ran out (or the device
// was offline) with the transfer incomplete -- the staged progress
// survives, and a later delivery of the *same* package resumes.
struct DeliveryResult {
  casu::UpdateStatus status = casu::UpdateStatus::kInterrupted;
  uint32_t attempts = 1;          // 1 + power-loss interruptions healed
                                  // within this call
  bool resumed = false;           // continued a previously staged
                                  // transfer (prior call or power loss)
  size_t chunks_sent = 0;         // transmissions, retransmits included
  size_t bytes_retransmitted = 0; // payload bytes sent beyond the
                                  // first transmission of each chunk
};

// Run the full sender loop against `session`'s receiver. The caller
// holds session.mutex() (UpdateCampaign::apply_to does; hold it
// yourself when driving a session a concurrent sweep can see). On
// kApplied the device's PMEM and version counter are committed; the
// caller still owns the build swap / CFG staging half, exactly as for
// DeviceSession::apply_update.
DeliveryResult deliver_update(DeviceSession& session,
                              const casu::UpdatePackage& package,
                              const TransportOptions& options);

}  // namespace eilid

#endif  // EILID_EILID_TRANSPORT_H
