// ROP gadget finder: enumerates code-reuse gadgets in an assembled
// image (short instruction runs ending in ret / call Rn / br Rn). Used
// by the attack demo to show that enough reusable code exists for
// return-oriented programming -- which EILID's P1 makes unusable.
#ifndef EILID_ATTACKS_GADGETS_H
#define EILID_ATTACKS_GADGETS_H

#include <cstdint>
#include <string>
#include <vector>

#include "masm/image.h"

namespace eilid::attacks {

struct Gadget {
  uint16_t addr = 0;
  int length = 0;            // instructions including the terminator
  std::string text;          // "mov @sp+, r9 ; ret"
  bool ends_in_ret = false;  // else: indirect call/branch
};

// Scan every decodable instruction offset in [start, end] of the image
// and return gadgets of at most `max_len` instructions.
std::vector<Gadget> find_gadgets(const masm::MemoryImage& image,
                                 uint16_t start, uint16_t end,
                                 int max_len = 3);

}  // namespace eilid::attacks

#endif  // EILID_ATTACKS_GADGETS_H
