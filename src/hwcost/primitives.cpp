#include "hwcost/primitives.h"

namespace eilid::hwcost {

Cost eq_comparator(int width) {
  if (width <= 6) return {1, 0};
  return {(width + 5) / 6 + 1, 0};
}

Cost magnitude_comparator(int width) { return {(width + 3) / 4, 0}; }

Cost range_check(int width) {
  Cost two = magnitude_comparator(width) + magnitude_comparator(width);
  return two;  // the AND folds into the final compare LUT
}

Cost reg(int width) { return {0, width}; }

Cost fsm(int states, int transition_terms) {
  int state_bits = 1;
  while ((1 << state_bits) < states) ++state_bits;
  return {transition_terms, state_bits};
}

Cost glue(int luts) { return {luts, 0}; }

}  // namespace eilid::hwcost
