// MSP430 CPU core: 16 registers, fetch/decode/execute, status flags,
// interrupt entry. Timing follows src/isa/cycles.h.
//
// The CPU is deliberately unaware of CASU/EILID: all enforcement
// happens in bus watchers, exactly as the paper's hardware monitors
// snoop CPU signals without modifying the core.
#ifndef EILID_SIM_CPU_H
#define EILID_SIM_CPU_H

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "isa/block_image.h"
#include "isa/decoded_image.h"
#include "isa/decoder.h"
#include "isa/registers.h"
#include "sim/bus.h"

namespace eilid::sim {

enum class StepStatus : uint8_t {
  kOk,
  kIllegal,  // undecodable instruction word
  kDenied,   // a bus watcher denied an access mid-instruction
};

struct StepOutcome {
  StepStatus status = StepStatus::kOk;
  unsigned cycles = 0;
  uint16_t pc = 0;  // address of the instruction that executed (or faulted)
  // Fall-through address of the decoded instruction (pc when nothing
  // decoded). Monitors compare this against the PC after the step to
  // spot control transfers without re-decoding.
  uint16_t next_pc = 0;
};

// Result of one superblock dispatch (Cpu::run_block).
struct BlockRun {
  // False when the fast path was unavailable (no valid block table at
  // the current PC, an IRQ could assert or deliver mid-block, a
  // violation already latched): nothing executed, the caller must take
  // the per-instruction path. All other fields are meaningless.
  bool executed = false;
  StepStatus status = StepStatus::kOk;
  uint64_t cycles = 0;  // total cycles retired by the run
  unsigned steps = 0;   // instructions retired
  uint16_t last_pc = 0;  // pc of the final instruction attempted
  uint16_t last_next = 0;  // its fall-through (monitor notification)
};

class Cpu {
 public:
  explicit Cpu(Bus& bus) : bus_(bus) {}

  // Load PC from the reset vector and clear registers.
  void power_on_reset();

  // Execute a single instruction.
  StepOutcome step();

  // Execute one straight-line run (superblock) starting at the current
  // PC: one table lookup and one generation/IRQ-budget check up front,
  // then a tight retire loop with batched cycle accounting (cycles are
  // accrued to the bus's tick debt and flushed at block exit, so any
  // mid-block peripheral register access still observes exact time).
  // The run ends early -- always at an instruction boundary, and every
  // PC is itself a valid block entry, so nothing is lost -- when:
  //   - the next instruction sits at `breakpoint_pc` (host breakpoint),
  //   - retired cycles reach `cycle_budget` (run() budget exhaustion),
  //   - a store invalidated the code generation (self-modifying code:
  //     the very next instruction must re-decode from memory),
  //   - a peripheral register was touched (interrupt state may have
  //     changed instantly),
  //   - a watcher denied an access (status kDenied, device will reset).
  // With `chain` set (the machine passes it when no monitor needs a
  //  per-transfer callout) and no bus watchers attached, the run keeps
  //  going across block boundaries: after a terminator retires it
  //  re-dispatches from wherever PC landed, re-checking the same
  //  refusal conditions (generation, peripheral touch, CPUOFF, IRQ
  //  horizon, breakpoint, budget) that gate a fresh dispatch.
  BlockRun run_block(uint16_t breakpoint_pc, uint64_t cycle_budget, bool chain);

  // Attach the build's shared superblock table. Must be called AFTER
  // set_decoded_image with tables built from the same flashed bytes
  // (set_decoded_image drops any previously attached block table to
  // enforce the ordering). Null detaches and disables block dispatch.
  void set_block_image(std::shared_ptr<const isa::BlockImage> blocks) {
    blocks_ = std::move(blocks);
    rebuild_engine_ranges();
  }
  const isa::BlockImage* block_image() const { return blocks_.get(); }
  uint64_t blocks_executed() const { return blocks_executed_; }

  // Attach a predecoded image built from the bytes currently flashed.
  // The CPU consults it for PCs inside its ranges and falls back to
  // interpretive decode elsewhere. The attachment is valid only while
  // no store lands in the code range: the bus's code-generation
  // counter is snapshotted here and checked every step, so a device
  // that scribbles on its own code (possible under kNone) re-decodes
  // from memory and stays architecturally correct.
  void set_decoded_image(std::shared_ptr<const isa::DecodedImage> image) {
    image_ = std::move(image);
    image_generation_ = bus_.code_generation();
    // A block table derived from some earlier decode snapshot must not
    // pair with this image; the caller re-attaches a matching one next
    // (see Machine::attach_block_image) or runs without block dispatch.
    blocks_.reset();
    rebuild_engine_ranges();
  }
  const isa::DecodedImage* decoded_image() const { return image_.get(); }
  bool decode_cache_valid() const {
    return image_ != nullptr && bus_.code_generation() == image_generation_;
  }
  uint64_t decode_cache_hits() const { return decode_cache_hits_; }
  uint64_t decode_cache_misses() const { return decode_cache_misses_; }

  // Hardware interrupt entry: push PC and SR, clear SR (except SCG0),
  // load the handler address from the vector table. Returns cycles.
  unsigned service_interrupt(int vector_index);

  uint16_t reg(int i) const { return regs_[static_cast<size_t>(i)]; }
  void set_reg(int i, uint16_t v);
  uint16_t pc() const { return regs_[isa::kPC]; }
  uint16_t sp() const { return regs_[isa::kSP]; }
  uint16_t sr() const { return regs_[isa::kSR]; }

  bool gie() const { return (sr() & isa::sr::kGIE) != 0; }
  bool cpu_off() const { return (sr() & isa::sr::kCpuOff) != 0; }

  uint64_t instructions_retired() const { return instructions_retired_; }

 private:
  struct DstRef {
    bool is_reg = true;
    uint8_t reg = 0;
    uint16_t ea = 0;
  };

  // Interpretive decode of the instruction at `pc` from backing memory.
  std::optional<isa::Decoded> interpret_decode(uint16_t pc) const;

  uint16_t read_src(const isa::Operand& op, bool byte);
  DstRef resolve_dst(const isa::Operand& op);
  uint16_t read_at(const DstRef& ref, bool byte);
  void write_at(const DstRef& ref, bool byte, uint16_t value);
  void push_word(uint16_t value);
  uint16_t pop_word();

  void exec_double(const isa::Instruction& insn);
  void exec_single(const isa::Instruction& insn, uint16_t insn_pc);
  void exec_jump(const isa::Decoded& decoded);

  // Zip of the block and decoded tables' identical ranges, so block
  // dispatch resolves both entries with one range scan. Empty unless
  // both tables are attached and their ranges align.
  struct EngineRange {
    uint16_t first;
    uint16_t last;
    const isa::BlockImage::Entry* blocks;
    const isa::DecodedImage::Entry* decoded;
  };
  void rebuild_engine_ranges();

  void set_flag(uint16_t bit, bool on);
  // Replace all four status bits in one SR update (every ALU op writes
  // all four; doing it as four read-modify-writes was measurable in
  // the block-dispatch hot loop).
  void set_nzcv(bool n, bool z, bool c, bool v);
  bool flag(uint16_t bit) const { return (sr() & bit) != 0; }
  // Flag helper for add-with-carry style ops (sub is add of ~src).
  uint16_t add_and_flags(uint16_t a, uint16_t b, unsigned carry_in, bool byte);

  Bus& bus_;
  std::array<uint16_t, isa::kNumRegs> regs_{};
  uint16_t cur_pc_ = 0;  // pc of the executing instruction (bus attribution)
  uint64_t instructions_retired_ = 0;
  std::shared_ptr<const isa::DecodedImage> image_;
  std::shared_ptr<const isa::BlockImage> blocks_;
  std::vector<EngineRange> engine_ranges_;
  uint64_t image_generation_ = 0;
  uint64_t decode_cache_hits_ = 0;
  uint64_t decode_cache_misses_ = 0;
  uint64_t blocks_executed_ = 0;
};

}  // namespace eilid::sim

#endif  // EILID_SIM_CPU_H
