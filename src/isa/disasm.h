// Disassembler producing canonical text that the assembler (src/masm)
// accepts back verbatim -- round-tripping is a tested property and is
// what lets the instrumenter splice generated code into listings.
#ifndef EILID_ISA_DISASM_H
#define EILID_ISA_DISASM_H

#include <string>

#include "isa/decoder.h"
#include "isa/instruction.h"

namespace eilid::isa {

// "mov #0x1234, r5" / "call #0xe000" / "jnz $-0x0006".
// Jump targets are rendered PC-relative ("$+N") because the bare
// instruction does not know label names.
std::string disassemble(const Instruction& insn);

// Same, but with jumps resolved to absolute targets using the decode
// address: "jnz 0xe012".
std::string disassemble(const Decoded& decoded);

std::string operand_text(const Operand& op);

}  // namespace eilid::isa

#endif  // EILID_ISA_DISASM_H
