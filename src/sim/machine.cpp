#include "sim/machine.h"

namespace eilid::sim {

Machine::Machine(double clock_hz)
    : clock_hz_(clock_hz),
      cpu_(bus_),
      port1_(mmio::kP1In, mmio::kP1Out, mmio::kP1Dir),
      port2_(mmio::kP2In, mmio::kP2Out, mmio::kP2Dir) {
  bus_.add_peripheral(&timer_);
  bus_.add_peripheral(&adc_);
  bus_.add_peripheral(&port1_);
  bus_.add_peripheral(&port2_);
  bus_.add_peripheral(&uart_);
  bus_.add_peripheral(&ranger_);
  bus_.add_peripheral(&lcd_);
}

void Machine::add_monitor(Monitor* monitor) {
  monitors_.push_back(monitor);
  bus_.add_watcher(monitor);
  // Tracers and other per-step consumers can attach mid-life (the
  // bench bolts a trace fingerprint onto an already-deployed device);
  // recompute the step subset so block dispatch stands down for them.
  step_monitors_.clear();
  for (auto* m : monitors_) {
    if (m->wants_step()) step_monitors_.push_back(m);
  }
}

void Machine::load(uint16_t addr, std::span<const uint8_t> bytes) {
  bus_.raw_store_bytes(addr, bytes);
}

void Machine::attach_decoded_image(
    std::shared_ptr<const isa::DecodedImage> image) {
  cpu_.set_decoded_image(std::move(image));
}

void Machine::attach_block_image(
    std::shared_ptr<const isa::BlockImage> blocks) {
  cpu_.set_block_image(std::move(blocks));
}

void Machine::power_on() {
  cpu_.power_on_reset();
  resets_.push_back({cycles_, 0, ResetReason::kPowerOn});
  for (auto* m : monitors_) m->on_device_reset();
}

bool Machine::interrupts_allowed(uint16_t pc) const {
  for (auto* m : monitors_) {
    if (!m->allow_interrupt(pc)) return false;
  }
  return true;
}

std::optional<ResetReason> Machine::first_pending_violation() const {
  for (auto* m : monitors_) {
    if (auto v = m->pending_violation()) return v;
  }
  return std::nullopt;
}

void Machine::do_reset(ResetReason reason, uint16_t pc) {
  // Pre-violation time already passed; deliver it before the wipe.
  bus_.flush_ticks();
  resets_.push_back({cycles_, pc, reason});
  bus_.wipe_volatile();
  bus_.reset_peripherals();
  bus_.clear_access_denied();
  for (auto* m : monitors_) {
    m->clear_violation();
    m->on_device_reset();
  }
  cpu_.power_on_reset();
  cycles_ += 4;  // brown-out / reset latency
  reset_this_step_ = true;
}

bool Machine::step_once() {
  reset_this_step_ = false;
  // Settle any tick debt left by preceding superblocks: the IRQ check
  // below and this step's own tick must observe exact peripheral time.
  bus_.flush_ticks();

  // Interrupt dispatch (level-triggered, priority = vector index).
  int line = bus_.pending_irq();
  if (line >= 0 && cpu_.gie() && interrupts_allowed(cpu_.pc())) {
    uint16_t from = cpu_.pc();
    unsigned cycles = cpu_.service_interrupt(line);
    bus_.ack_irq(line);
    cycles_ += cycles;
    bus_.tick_peripherals(cycles);
    for (auto* m : monitors_) m->on_interrupt(line, from, cpu_.pc());
    if (auto v = first_pending_violation()) {
      do_reset(*v, from);
    }
    return true;
  }

  if (cpu_.cpu_off()) {
    // Low-power mode: burn time until a *deliverable* interrupt wakes
    // the core. The wake test must match the dispatch test above
    // exactly: a line that is pending but cannot be dispatched (GIE
    // clear, or a monitor defers it) is a terminal sleep on real
    // hardware, and only the caller's cycle budget bounds it here.
    // Found by the scenario fuzzer (mutation seed 53): a diverted jump
    // landed on bytes decoding to an SR write with CPUOFF set and GIE
    // clear while the timer line was pending, and the old early-return
    // (`pending_irq() >= 0` alone) spun forever without advancing
    // cycles -- a host livelock no budget could end.
    if (bus_.pending_irq() >= 0 && cpu_.gie() &&
        interrupts_allowed(cpu_.pc())) {
      return true;  // will dispatch next step
    }
    uint64_t idle_chunk = 16;
    cycles_ += idle_chunk;
    bus_.tick_peripherals(idle_chunk);
    return true;
  }

  StepOutcome outcome = cpu_.step();
  cycles_ += outcome.cycles;
  bus_.tick_peripherals(outcome.cycles);
  notify_retire(outcome.pc, cpu_.pc(), outcome.next_pc);

  if (outcome.status == StepStatus::kIllegal) {
    do_reset(ResetReason::kIllegalInstruction, outcome.pc);
    return true;
  }
  if (auto v = first_pending_violation()) {
    do_reset(*v, outcome.pc);
    return true;
  }
  if (outcome.status == StepStatus::kDenied) {
    // A watcher denied an access but latched no specific reason
    // (defensive default -- monitors normally always latch one).
    do_reset(ResetReason::kIllegalInstruction, outcome.pc);
    return true;
  }
  return true;
}

void Machine::notify_retire(uint16_t from_pc, uint16_t to_pc,
                            uint16_t fallthrough) {
  for (auto* m : step_monitors_) m->on_step(from_pc, to_pc, fallthrough);
  if (to_pc != fallthrough) {
    // Non-sequential transfer (or a faulted fetch, where to == from !=
    // fallthrough). Fires under every engine: interior instructions of
    // a superblock are sequential by construction, so only its final
    // instruction can reach here -- the same edges per-step execution
    // reports.
    for (auto* m : monitors_) m->on_control_transfer(from_pc, to_pc, fallthrough);
  }
}

bool Machine::try_run_block(uint16_t breakpoint_pc, uint64_t cycle_budget) {
  if (!step_monitors_.empty()) return false;
  if (cpu_.cpu_off()) return false;
  // A deliverable (or monitor-deferred) pending interrupt must go
  // through step_once's dispatch logic before any instruction retires.
  // Outstanding tick debt could be hiding one -- but only if it reaches
  // the tick-assertion horizon; below it, the cached pending state is
  // authoritative and the flush (a virtual sweep of every peripheral)
  // can wait for a real observation point.
  if (cpu_.gie()) {
    if (bus_.tick_debt() >= bus_.cycles_until_irq()) bus_.flush_ticks();
    if (bus_.pending_irq() >= 0) return false;
  }
  // Violations latched outside stepping (update-engine auth failures /
  // rollback) reset after exactly one more instruction interpretively;
  // keep that timing.
  if (!monitors_.empty() && first_pending_violation()) return false;

  // With no monitors attached at all there is nobody to notify per
  // control transfer, so the CPU may chain blocks internally and only
  // surface at observation points.
  BlockRun run = cpu_.run_block(breakpoint_pc, cycle_budget, monitors_.empty());
  if (!run.executed) return false;
  reset_this_step_ = false;
  cycles_ += run.cycles;
  if (run.steps > 0 || run.status == StepStatus::kDenied) {
    notify_retire(run.last_pc, cpu_.pc(), run.last_next);
  }
  if (run.status == StepStatus::kDenied) {
    if (auto v = first_pending_violation()) {
      do_reset(*v, run.last_pc);
    } else {
      do_reset(ResetReason::kIllegalInstruction, run.last_pc);
    }
  }
  return true;
}

RunResult Machine::run(uint64_t max_cycles) {
  return run_until(0xFFFF, max_cycles);  // 0xFFFF is never a fetch address
}

RunResult Machine::run_until(uint16_t breakpoint_pc, uint64_t max_cycles) {
  RunResult result;
  // Host stimulus injected since the last run (Uart::feed, ADC series,
  // GPIO inputs) bypasses the bus; make the irq cache observe it.
  bus_.invalidate_irq_cache();
  uint64_t start = cycles_;
  while (cycles_ - start < max_cycles) {
    if (cpu_.pc() == breakpoint_pc && !cpu_.cpu_off()) {
      result.cause = StopCause::kBreakpoint;
      break;
    }
    if (!try_run_block(breakpoint_pc, max_cycles - (cycles_ - start))) {
      step_once();
    }
    if (reset_this_step_ && halt_on_reset_) {
      result.cause = StopCause::kDeviceReset;
      break;
    }
  }
  // Settle superblock tick debt before handing control back: the host
  // (tests, verifier sweeps, stimulus injection) must observe exact
  // peripheral time between runs.
  bus_.flush_ticks();
  result.cycles = cycles_ - start;
  result.stop_pc = cpu_.pc();
  return result;
}

}  // namespace eilid::sim
