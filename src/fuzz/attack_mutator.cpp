#include "fuzz/attack_mutator.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "attacks/gadgets.h"
#include "sim/memory_map.h"

namespace eilid::fuzz {

std::string_view report_tamper_name(ReportTamper kind) {
  switch (kind) {
    case ReportTamper::kEdgeTargetFlip: return "edge-target-flip";
    case ReportTamper::kEdgeDrop: return "edge-drop";
    case ReportTamper::kEdgeDuplicate: return "edge-duplicate";
    case ReportTamper::kEdgeSwap: return "edge-swap";
    case ReportTamper::kSeqBump: return "seq-bump";
    case ReportTamper::kCycleBump: return "cycle-bump";
    case ReportTamper::kDroppedBump: return "dropped-bump";
  }
  return "?";
}

std::optional<PmemPatch> AttackMutator::plan_jump_diversion(
    const masm::AssembledUnit& unit, const cfa::Cfg& cfg,
    const cfa::Report& benign) {
  // Exercised candidates: logged synchronous edges that replay as jump
  // edges and whose source word is jump-format (this also excludes
  // `br #imm`, which shares the jump-edge rule but not the encoding).
  struct Cand {
    uint16_t from, to, word;
  };
  std::vector<Cand> cands;
  std::set<uint32_t> seen;
  for (const cfa::LoggedEdge& e : benign.edges) {
    if (e.irq || e.reset || e.update) continue;
    if (!cfg.has_jump_edge(e.from, e.to)) continue;
    if (!unit.image.contains(e.from)) continue;
    const uint16_t w = unit.image.word_at(e.from);
    if ((w & 0xE000) != 0x2000) continue;
    if (!seen.insert(cfa::Cfg::edge(e.from, e.to)).second) continue;
    cands.push_back({e.from, e.to, w});
  }
  if (cands.empty()) return std::nullopt;
  const Cand c = cands[rng_.below(cands.size())];

  std::vector<uint16_t> targets;
  for (uint16_t a : cfg.code_addrs) {
    const int off = (static_cast<int>(a) - (static_cast<int>(c.from) + 2)) / 2;
    if (off < -512 || off > 511) continue;
    if (a == c.to) continue;  // the legitimate target
    // A jump to its own fall-through takes the branch to exactly where
    // not taking it lands: no control-transfer callout fires, nothing
    // is logged, and the "attack" would leave no evidence to convict.
    if (a == static_cast<uint16_t>(c.from + 2)) continue;
    if (cfg.has_jump_edge(c.from, a)) continue;  // still a legal edge
    targets.push_back(a);
  }
  if (targets.empty()) return std::nullopt;
  const uint16_t nt = targets[rng_.below(targets.size())];
  const int off = (static_cast<int>(nt) - (static_cast<int>(c.from) + 2)) / 2;

  PmemPatch p;
  p.addr = c.from;
  p.old_word = c.word;
  // Keep the opcode + condition bits: the mutated branch triggers at
  // the same dynamic instant the benign one did, so the first taken
  // instance logs the diverted edge before anything else can diverge.
  p.new_word = static_cast<uint16_t>((c.word & 0xFC00) |
                                     (static_cast<uint16_t>(off) & 0x3FF));
  p.from = c.from;
  p.old_to = c.to;
  p.new_to = nt;
  return p;
}

std::optional<PmemPatch> AttackMutator::plan_table_diversion(
    const masm::AssembledUnit& unit, const cfa::Cfg& cfg, int slot) {
  const auto it = unit.symbols.find("tab_" + std::to_string(slot));
  if (it == unit.symbols.end()) return std::nullopt;
  const uint16_t tab_addr = it->second;
  if (!unit.image.contains(tab_addr)) return std::nullopt;
  const uint16_t old_target = unit.image.word_at(tab_addr);

  // Scan PMEM below the vector table for gadget entry points that are
  // not sanctioned call targets: the classic code-reuse redirection a
  // dispatch-table overwrite buys.
  const auto gadgets = attacks::find_gadgets(
      unit.image, sim::kPmemStart, static_cast<uint16_t>(sim::kVectorBase - 1));
  std::vector<uint16_t> bad;
  for (const attacks::Gadget& g : gadgets) {
    if (g.addr % 2 != 0) continue;
    if (cfg.call_targets.count(g.addr) != 0) continue;
    if (g.addr == old_target || g.addr == tab_addr) continue;
    bad.push_back(g.addr);
  }
  if (bad.empty()) return std::nullopt;

  PmemPatch p;
  p.addr = tab_addr;
  p.old_word = old_target;
  p.new_word = bad[rng_.below(bad.size())];
  p.from = tab_addr;
  p.old_to = old_target;
  p.new_to = p.new_word;
  return p;
}

std::optional<cfa::Report> AttackMutator::tamper_report(
    const cfa::Report& report, ReportTamper kind) {
  cfa::Report t = report;
  switch (kind) {
    case ReportTamper::kEdgeTargetFlip: {
      if (t.edges.empty()) return std::nullopt;
      cfa::LoggedEdge& e = t.edges[rng_.below(t.edges.size())];
      e.to ^= static_cast<uint16_t>(1u << rng_.below(16));
      return t;
    }
    case ReportTamper::kEdgeDrop: {
      if (t.edges.empty()) return std::nullopt;
      t.edges.erase(t.edges.begin() +
                    static_cast<long>(rng_.below(t.edges.size())));
      return t;
    }
    case ReportTamper::kEdgeDuplicate: {
      if (t.edges.empty()) return std::nullopt;
      const size_t i = rng_.below(t.edges.size());
      t.edges.insert(t.edges.begin() + static_cast<long>(i), t.edges[i]);
      return t;
    }
    case ReportTamper::kEdgeSwap: {
      if (t.edges.size() < 2) return std::nullopt;
      for (int tries = 0; tries < 32; ++tries) {
        const size_t i = rng_.below(t.edges.size());
        const size_t j = rng_.below(t.edges.size());
        if (i != j && !(t.edges[i] == t.edges[j])) {
          std::swap(t.edges[i], t.edges[j]);
          return t;
        }
      }
      return std::nullopt;  // all edges identical: a swap changes nothing
    }
    case ReportTamper::kSeqBump:
      t.seq += 1;
      return t;
    case ReportTamper::kCycleBump:
      t.cycle += 1 + rng_.below(1000);
      return t;
    case ReportTamper::kDroppedBump:
      t.dropped += 1 + static_cast<uint32_t>(rng_.below(8));
      return t;
  }
  return std::nullopt;
}

size_t AttackMutator::flip_package_bit(std::vector<uint8_t>& bytes) {
  const size_t bit = rng_.below(bytes.size() * 8);
  bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  return bit;
}

void AttackMutator::flip_chunk_payload(casu::TransferChunk& chunk,
                                       bool fix_checksum) {
  if (chunk.payload.empty()) {
    chunk.checksum ^= 1;  // nothing else to corrupt
    return;
  }
  const size_t bit = rng_.below(chunk.payload.size() * 8);
  chunk.payload[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  if (fix_checksum) chunk.checksum = casu::chunk_checksum(chunk);
}

void AttackMutator::scramble_chunk_geometry(casu::TransferChunk& chunk) {
  // index >= total is inconsistent regardless of receiver state; the
  // checksum is recomputed so the transport CRC cannot mask the check
  // under test.
  chunk.index = chunk.total;
  chunk.checksum = casu::chunk_checksum(chunk);
}

}  // namespace eilid::fuzz
