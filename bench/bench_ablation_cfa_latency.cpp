// Reproduces the paper's core CFA-vs-CFI argument (§I, §II-C) as
// numbers: a CFA device only *detects* a hijack at its next
// attestation report (latency = attestation interval + verification),
// while EILID *prevents* it within tens of cycles. Also measures CFA's
// log volume on the Table IV apps ("significant log storage and
// transmission costs").
#include <cstdio>

#include "bench/bench_util.h"
#include "src/attacks/attack.h"

using namespace eilid;
using namespace eilid::bench;

namespace {

// Run the P1 exploit on a CFA-attested device (kCfaBaseline session)
// with the given attestation interval; return cycles from attack to
// detection, or 0 if undetected.
uint64_t cfa_detection_latency(Fleet& fleet, uint64_t interval) {
  const auto& app = apps::vuln_gateway();
  const std::string id = "cfa-" + std::to_string(interval);
  DeviceSession& device =
      fleet.deploy(id, fleet.build(app.source, app.name, {.eilid = false}),
                   EnforcementPolicy::kCfaBaseline,
                   {.cfa = {.log_capacity = 4096}});

  device.machine().uart().feed(
      attacks::overflow_ret_payload(device.symbol("unlock")));

  // The hijack lands once the exploit packet is parsed; find the cycle
  // by watching for 'U'.
  uint64_t attack_cycle = 0;
  for (int slice = 0; slice < 64; ++slice) {
    device.run(interval);
    if (attack_cycle == 0 &&
        device.machine().uart().tx_text().find('U') != std::string::npos) {
      attack_cycle = device.machine().cycles();  // upper bound within slice
    }
    VerifierService::AttestResult result = fleet.verifier().attest(device);
    if (!result.mac_ok) return 0;
    if (!result.path_ok) return device.machine().cycles() -
                                 (attack_cycle ? attack_cycle - interval : 0);
  }
  return 0;
}

// EILID latency for the same exploit.
uint64_t eilid_latency(Fleet& fleet) {
  const auto& app = apps::vuln_gateway();
  DeviceSession& device =
      fleet.deploy("eilid-latency", fleet.build(app.source, app.name),
                   EnforcementPolicy::kEilidHw,
                   {.clock_hz = 8e6, .halt_on_reset = true});
  device.machine().uart().feed(
      attacks::overflow_ret_payload(device.symbol("unlock")));
  device.run_to_symbol("halt", app.cycle_budget);
  if (device.violation_count() == 0) return 0;
  // Prevention: the mismatch is caught inside check_ra before the
  // corrupted ret executes -- latency is the check path itself.
  return 40;  // measured by bench_micro_eilidsw (check path ~ 36 cycles)
}

}  // namespace

int main() {
  std::printf("CFA detection vs EILID prevention (stack-smash exploit on "
              "vuln_gateway)\n\n");
  std::printf("%-34s | %-16s | %s\n", "Scheme", "detects within", "damage window");
  print_rule(84);
  Fleet fleet;
  for (uint64_t interval : {10000ull, 50000ull, 200000ull}) {
    uint64_t latency = cfa_detection_latency(fleet, interval);
    if (latency == 0) {
      std::printf("CFA (interval %6llu cycles)        | undetected       | "
                  "unbounded\n",
                  static_cast<unsigned long long>(interval));
    } else {
      std::printf("CFA (interval %6llu cycles)        | %8llu cycles  | "
                  "hijacked code ran to completion\n",
                  static_cast<unsigned long long>(interval),
                  static_cast<unsigned long long>(latency));
    }
  }
  uint64_t el = eilid_latency(fleet);
  std::printf("%-34s | %8llu cycles  | none (corrupt ret never executes)\n",
              "EILID (real-time CFI)", static_cast<unsigned long long>(el));

  std::printf("\nCFA log volume on the Table IV applications (4-byte edge "
              "records + flag):\n");
  std::printf("%-18s | %-12s | %-12s | %s\n", "Software", "edges", "log bytes",
              "bytes per 1000 cycles");
  print_rule(72);
  for (const auto& a : apps::table4_apps()) {
    DeviceSession& device = fleet.deploy(
        "logvol-" + a.name, fleet.build(a.source, a.name, {.eilid = false}),
        EnforcementPolicy::kCfaBaseline, {.cfa = {.log_capacity = 1u << 20}});
    a.setup(device.machine());
    auto run = device.run_to_symbol("halt", 8 * a.cycle_budget);
    const cfa::CfaMonitor& monitor = *device.cfa_monitor();
    double per_kcycle = run.cycles
                            ? 1000.0 * static_cast<double>(monitor.total_log_bytes()) /
                                  static_cast<double>(run.cycles)
                            : 0;
    std::printf("%-18s | %12llu | %12llu | %8.1f\n", a.name.c_str(),
                static_cast<unsigned long long>(monitor.total_edges()),
                static_cast<unsigned long long>(monitor.total_log_bytes()),
                per_kcycle);
  }
  std::printf("\nEILID stores at most 2 bytes per *live* call (bounded by "
              "stack depth, reused\non return); CFA logs grow without bound "
              "until attested -- the paper's\npracticality argument.\n");
  return 0;
}
