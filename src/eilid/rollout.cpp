#include "eilid/rollout.h"

#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "common/error.h"

namespace eilid {

namespace {

// The one definition of a wave's display name -- validation errors,
// report entries and halt reasons all agree on it.
std::string wave_label(const WaveSpec& spec, size_t index) {
  return spec.name.empty() ? "wave-" + std::to_string(index + 1) : spec.name;
}

}  // namespace

CampaignScheduler::CampaignScheduler(Fleet& fleet, UpdateCampaign campaign,
                                     RolloutPlan plan)
    : fleet_(&fleet), campaign_(std::move(campaign)), plan_(std::move(plan)) {
  if (plan_.waves.empty()) {
    throw FleetError("rollout plan: no waves");
  }
}

CampaignScheduler::Resolved CampaignScheduler::resolve() const {
  // One registry snapshot (deployment order) anchors the whole
  // resolution, so membership is a pure function of the plan and that
  // snapshot -- serial and pooled runs can never disagree on it.
  const std::vector<DeviceSession*> snapshot = fleet_->sessions();
  std::map<std::string, DeviceSession*> by_id;
  for (DeviceSession* session : snapshot) by_id.emplace(session->id(), session);

  std::set<std::string> held;
  for (const HoldSpec& hold : plan_.holds) {
    for (const std::string& id : hold.device_ids) {
      if (by_id.count(id) == 0) {
        throw FleetError("rollout plan: hold '" + hold.name +
                         "' names unknown device id '" + id + "'");
      }
      held.insert(id);
    }
  }

  Resolved resolved;
  resolved.held.assign(held.begin(), held.end());

  std::set<std::string> claimed;
  for (size_t w = 0; w < plan_.waves.size(); ++w) {
    const WaveSpec& spec = plan_.waves[w];
    const std::string label = wave_label(spec, w);
    const bool explicit_ids = !spec.device_ids.empty();
    // != 0.0, not > 0.0: a negative fraction must classify as a
    // (malformed) fractional wave so the range error below names the
    // actual mistake, and an explicit wave carrying a stray fraction
    // gets the exactly-one error either way.
    const bool fractional = spec.fraction != 0.0;
    if (explicit_ids == fractional) {
      throw FleetError("rollout plan: wave '" + label +
                       "' must set exactly one of device_ids or fraction");
    }
    if (spec.fraction < 0.0 || spec.fraction > 1.0) {
      throw FleetError("rollout plan: wave '" + label +
                       "' fraction must be in [0, 1]");
    }
    std::vector<DeviceSession*> members;
    if (explicit_ids) {
      for (const std::string& id : spec.device_ids) {
        auto it = by_id.find(id);
        if (it == by_id.end()) {
          throw FleetError("rollout plan: wave '" + label +
                           "' names unknown device id '" + id + "'");
        }
        if (held.count(id) != 0) continue;  // pinned cohorts are skipped
        if (!claimed.insert(id).second) {
          throw FleetError("rollout plan: device id '" + id +
                           "' is claimed by two waves");
        }
        members.push_back(it->second);
      }
    } else {
      // The eligible remainder, in deployment order.
      std::vector<DeviceSession*> eligible;
      for (DeviceSession* session : snapshot) {
        if (held.count(session->id()) == 0 &&
            claimed.count(session->id()) == 0) {
          eligible.push_back(session);
        }
      }
      size_t take =
          spec.fraction >= 1.0
              ? eligible.size()
              : static_cast<size_t>(std::ceil(
                    spec.fraction * static_cast<double>(eligible.size())));
      take = std::min(take, eligible.size());
      for (size_t i = 0; i < take; ++i) {
        claimed.insert(eligible[i]->id());
        members.push_back(eligible[i]);
      }
    }
    resolved.waves.push_back(std::move(members));
  }
  return resolved;
}

std::vector<UpdateOutcome> CampaignScheduler::apply_wave(
    const std::vector<DeviceSession*>& wave, common::ThreadPool* pool) {
  std::vector<UpdateOutcome> out(wave.size());
  if (pool == nullptr) {
    for (size_t i = 0; i < wave.size(); ++i) {
      out[i] = campaign_.apply_to(*wave[i]);
    }
    return out;
  }
  // Rate limit: at most max_in_flight devices mid-update at once --
  // the wave is fed to the pool in chunks. Chunking only changes
  // scheduling, never outcomes (each device's result depends on its
  // own state alone), so pooled stays outcome-identical to serial.
  const size_t limit = plan_.max_in_flight == 0 ? wave.size()
                                                : plan_.max_in_flight;
  for (size_t base = 0; base < wave.size(); base += limit) {
    const size_t chunk = std::min(limit, wave.size() - base);
    pool->parallel_for(chunk, [&](size_t i) {
      out[base + i] = campaign_.apply_to(*wave[base + i]);
    });
  }
  return out;
}

RolloutReport CampaignScheduler::execute(common::ThreadPool* pool) {
  const Resolved resolved = resolve();
  FleetClock& clock = fleet_->clock();
  RolloutReport report;
  report.held = resolved.held;

  // rollback_on_halt needs each touched device's *prior* build -- the
  // session re-points at the target on a successful apply, so capture
  // the mapping before each wave runs.
  std::map<DeviceSession*, std::shared_ptr<const core::BuildResult>>
      prior_builds;

  for (size_t w = 0; w < plan_.waves.size(); ++w) {
    const std::vector<DeviceSession*>& members = resolved.waves[w];
    WaveOutcome wave;
    wave.name = wave_label(plan_.waves[w], w);
    wave.device_ids.reserve(members.size());
    for (DeviceSession* session : members) {
      wave.device_ids.push_back(session->id());
    }
    wave.allowance = plan_.budget.allowance(members.size());

    if (report.halted) {
      // Halted plans still report later waves (membership, allowance)
      // so operators can see what was *not* touched.
      report.waves.push_back(std::move(wave));
      continue;
    }

    if (plan_.rollback_on_halt) {
      for (DeviceSession* session : members) {
        prior_builds.emplace(session, session->shared_build());
      }
    }

    wave.updates = apply_wave(members, pool);
    wave.applied_tick = clock.now();
    if (plan_.soak_ticks > 0) {
      // Immediate post-apply sweep: the update itself must already
      // attest clean before the wave earns its soak window.
      wave.soak_gate = pool == nullptr
                           ? fleet_->verifier().verify_all(members)
                           : fleet_->verifier().verify_all(members, *pool);
    }
    if (plan_.probe) plan_.probe(members, pool);
    if (plan_.soak_ticks > 0) {
      // Soak: let the probed (new) firmware age for soak_ticks of
      // fleet time, then re-sweep. Evidence produced *since* the first
      // sweep -- the probe's -- is what this gate judges, so a
      // compromise that only fires once the new build runs is caught
      // here rather than after promotion.
      clock.advance(plan_.soak_ticks);
      wave.soaked_until = clock.now();
    }
    wave.gate = pool == nullptr
                    ? fleet_->verifier().verify_all(members)
                    : fleet_->verifier().verify_all(members, *pool);
    wave.gated_tick = clock.now();

    // A device fails its wave on a rejected/refused update or a
    // conviction at either gate; a device failing several ways counts
    // once.
    std::set<std::string> failed;
    for (const UpdateOutcome& update : wave.updates) {
      if (!update.ok()) failed.insert(update.device_id);
    }
    for (const VerifierService::AttestResult& verdict : wave.soak_gate) {
      if (verdict.attested && !verdict.ok()) failed.insert(verdict.device_id);
    }
    for (const VerifierService::AttestResult& verdict : wave.gate) {
      if (verdict.attested && !verdict.ok()) failed.insert(verdict.device_id);
    }
    wave.failures = failed.size();
    wave.applied = true;
    wave.within_budget = wave.failures <= wave.allowance;
    ++report.waves_applied;
    if (!wave.within_budget) {
      report.halted = true;
      report.halt_reason =
          "wave '" + wave.name + "' breached failure budget: " +
          std::to_string(wave.failures) + " failed > " +
          std::to_string(wave.allowance) + " allowed";
    }
    report.waves.push_back(std::move(wave));
  }

  if (report.halted && plan_.rollback_on_halt) {
    roll_back(report, resolved.waves, prior_builds, pool);
  }
  return report;
}

void CampaignScheduler::roll_back(
    RolloutReport& report,
    const std::vector<std::vector<DeviceSession*>>& waves,
    const std::map<DeviceSession*,
                   std::shared_ptr<const core::BuildResult>>& prior_builds,
    common::ThreadPool* pool) {
  report.rolled_back = true;
  report.rollback_tick = fleet_->clock().now();

  // One reverse campaign per distinct prior build (a mixed-version
  // fleet rolled forward from several builds rolls back to several),
  // built with the forward campaign's own options so the transport --
  // tamper hook included -- is the same in both directions. Campaigns
  // are symmetric (eilid/update.h): the reverse package carries each
  // device's *next* anti-rollback version and a fresh epoch marker, so
  // this is an ordinary authenticated update that happens to restore
  // old bytes.
  std::map<const core::BuildResult*, UpdateCampaign> reverse;
  for (size_t w = 0; w < report.waves.size(); ++w) {
    WaveOutcome& wave = report.waves[w];
    if (!wave.applied) continue;
    const std::vector<DeviceSession*>& members = waves[w];
    wave.rollbacks.resize(members.size());
    wave.rolled_back.assign(members.size(), false);

    const size_t limit =
        plan_.max_in_flight == 0 ? members.size() : plan_.max_in_flight;
    for (size_t base = 0; base < members.size(); base += limit) {
      const size_t chunk = std::min(limit, members.size() - base);
      auto reverse_one = [&](size_t i) {
        DeviceSession* session = members[base + i];
        UpdateCampaign& campaign = reverse.at(
            prior_builds.at(session).get());
        wave.rollbacks[base + i] = campaign.apply_to(*session);
        wave.rolled_back[base + i] =
            wave.rollbacks[base + i].build_swapped;
      };
      // Stage the chunk's campaigns before fanning out (the map must
      // not rehash under concurrent readers).
      for (size_t i = 0; i < chunk; ++i) {
        const auto& prior = prior_builds.at(members[base + i]);
        if (reverse.count(prior.get()) == 0) {
          reverse.emplace(prior.get(),
                          fleet_->stage_update(prior, campaign_.options()));
        }
      }
      if (pool == nullptr) {
        for (size_t i = 0; i < chunk; ++i) reverse_one(i);
      } else {
        pool->parallel_for(chunk, reverse_one);
      }
    }
  }
}

RolloutReport CampaignScheduler::run() { return execute(nullptr); }

RolloutReport CampaignScheduler::run(common::ThreadPool& pool) {
  return execute(&pool);
}

}  // namespace eilid
