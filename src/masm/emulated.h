// MSP430 emulated-instruction expansion (ret, pop, br, nop, clr, inc,
// tst, ...). Emulated forms are pure assembler sugar over Format-I/II
// encodings; expanding them before sizing keeps the rest of the
// assembler ignorant of them.
#ifndef EILID_MASM_EMULATED_H
#define EILID_MASM_EMULATED_H

#include <string>

#include "masm/statement.h"

namespace eilid::masm {

// If stmt.mnemonic is an emulated instruction, rewrite the statement
// in place into its real form and return true. Throws eilid::AsmError
// on arity mistakes (`ret r5`, `pop` with no operand, ...).
bool expand_emulated(Statement& stmt, const std::string& file);

// True if `mnemonic` names an emulated instruction.
bool is_emulated(const std::string& mnemonic);

}  // namespace eilid::masm

#endif  // EILID_MASM_EMULATED_H
