// The public API of the library: a Fleet owns everything needed to
// operate many simulated devices as one session --
//
//   - a content-hash-keyed build cache: identical (source, options)
//     pairs run the three-iteration pipeline exactly once and share
//     one immutable BuildResult across every device flashed with it --
//     including one shared isa::DecodedImage (the ROM predecoded once
//     per build) and one shared isa::BlockImage (its superblock
//     suffix table: for every PC, the straight-line run to the first
//     hazard). A fleet of N devices on one build decodes each
//     instruction once and discovers each basic block once, at build
//     time, total; every session's hot loop then retires whole blocks
//     with one generation/IRQ check per block. A session falls back
//     to per-instruction interpretive decode only for PCs outside
//     flash or after a store lands in the code range, which bumps the
//     bus's code-generation counter -- CASU-enforced devices never
//     do. SessionOptions.engine selects kInterpretive, kPredecoded or
//     kSuperblock (the default) per session; traces, final state and
//     CFA evidence are bit-identical across all three (the bench and
//     tests/test_superblock.cpp gate it),
//   - a device registry provisioning N DeviceSessions from cached
//     builds, each wired per its EnforcementPolicy,
//   - a VerifierService multiplexing attestation across sessions with
//     per-device keys, nonces and replay state, plus a batched
//     verify_all() sweep,
//   - update campaigns (stage_update() -> eilid::UpdateCampaign):
//     CASU's authenticated, anti-rollback software update as a *build
//     transition* -- each device moves from its own current cached
//     build to the target via a MAC'd package diffed between the two
//     images, keyed and versioned per device. A successful update
//     atomically swaps the session onto the target build (shared
//     decoded + block tables, symbols) and stages a replay-CFG swap with the
//     verifier at the epoch marker the device logged, so pre-update
//     evidence replays against the old CFG and post-update evidence
//     against the new,
//   - staged rollouts (plan_rollout() -> eilid::CampaignScheduler,
//     src/eilid/rollout.h): canary waves, percentage cuts, held A/B
//     cohorts, failure budgets and rate limits layered over a
//     campaign. Each wave applies, runs an optional workload probe,
//     then passes an attestation *gate* -- a verifier subset sweep
//     over just that wave -- and the plan promotes to the next wave
//     only while failures stay within budget. Attestation verdicts
//     drive fleet control flow here, not just reporting. Plans may
//     soak each wave (advance the fleet clock and re-sweep before
//     promoting) and, with rollback_on_halt, automatically stage
//     reverse campaigns that walk every touched device back to its
//     prior build when the budget trips,
//   - fleet time and health (clock()/src/eilid/clock.h,
//     src/eilid/health.h): every Fleet owns one deterministic
//     FleetClock -- simulated ticks, advanced only by schedulers,
//     never wall time -- and every attestation verdict is stamped
//     with it. A HeartbeatScheduler sweeps the fleet on a fixed
//     cadence (deterministic per-device phase jitter) maintaining
//     per-device freshness records; a HealthMonitor quarantines
//     devices whose last good attestation goes stale or that a sweep
//     convicts, and remediates them automatically -- reflash from the
//     recorded build, re-update onto a staged golden campaign, and
//     release only on a clean verdict. Convictions drive remediation,
//     not just reports.
//
//   eilid::Fleet fleet;
//   auto& dev = fleet.provision("door-7", source, "gateway",
//                               eilid::EnforcementPolicy::kEilidHw);
//   dev.run_to_symbol("halt", 200000);
//   if (dev.violation_count() > 0) { /* hijack prevented in real time */ }
//
// Concurrency model
// -----------------
// The fleet engine is built to be driven from a thread pool
// (common::ThreadPool); the contract is:
//
//   Thread-safe (internally synchronized):
//     - Fleet::build()/provision()/deploy(): the build cache is
//       single-flight -- concurrent builds of the same content hash
//       run the pipeline once and every caller shares the one result;
//       the device registry is sharded by device-id hash, so deploys
//       of distinct ids proceed in parallel.
//     - Fleet::find()/at()/size()/sessions()/decommission() against
//       concurrent deploys of *other* ids.
//     - VerifierService::enroll()/attest()/verify_all()/enrolled():
//       each attestation locks its DeviceSession (per-device locking),
//       so disjoint devices attest in parallel and the same device is
//       never attested twice at once. The subset verify_all(sessions)
//       overloads keep the same contract: a wave gate and a concurrent
//       whole-fleet sweep serialize per device and interleave across
//       devices.
//     - apps::run_workload_all(): drives disjoint sessions
//       concurrently, taking each session's lock for the duration.
//     - UpdateCampaign::apply_to()/roll_out(): each device updates
//       under its own session lock (diff cache shared, internally
//       locked), so a pooled rollout, a concurrent attestation sweep
//       and concurrent workload drivers interleave per device; the
//       pooled rollout's outcomes are identical to the serial one's.
//       The CFG epoch is staged while the device's lock is still held,
//       so a sweep can never drain an update marker the verifier has
//       not been told about.
//     - CampaignScheduler::run(pool): wave applies, probes, gate
//       sweeps, soak re-sweeps and halt rollbacks all ride the
//       per-device locks above; the pooled run's report is
//       bit-identical to the serial run()'s. The scheduler object
//       itself is not shared across threads -- one run at a time per
//       scheduler.
//     - IncrementalVerifier::run_until() (src/eilid/incremental.h):
//       windowed attestation rounds drain bounded slices via
//       VerifierService::attest_slice under the same per-device
//       session locks as verify_all, so a rolling window interleaves
//       safely with heartbeat sweeps, rollouts and workload drivers;
//       the pooled window's folded summaries are bit-identical to the
//       serial window's AND to a barrier verify_all over the same
//       evidence. One run_until at a time per verifier object
//       (summaries() may be read concurrently).
//     - HeartbeatScheduler::run_until()/HealthMonitor::run_until():
//       heartbeat sweeps are verify_all subset sweeps (per-device
//       locks), so they interleave safely with a concurrent rollout;
//       remediation holds the device's session lock across its
//       reflash and funnels its re-update through
//       UpdateCampaign::apply_to(), the same lock an in-flight
//       campaign takes -- so healing a device can never race a
//       campaign mid-update on that device. FleetClock is atomic and
//       monotonic (advance_to never moves time backwards). Like the
//       campaign scheduler, one run at a time per monitor object.
//
//   Requires external synchronization:
//     - A DeviceSession itself is single-threaded: do not call run()/
//       power_cycle()/machine() on one session from two threads. Hold
//       DeviceSession::mutex() when driving a session that a
//       concurrent attestation sweep may also touch (run_workload_all
//       and VerifierService already do).
//     - decommission()/withdraw() of a device must not race attest()/
//       verify_all() or any use of that device's session pointer: the
//       registry hands out raw DeviceSession pointers that die with
//       decommission. Quiesce sweeps first. Likewise, lifecycle calls
//       for the *same* id (deploy vs decommission) must be externally
//       ordered -- a device cannot be retired while it is still being
//       deployed.
//
// The legacy single-device entry points (core::build_app + core::Device)
// remain as deprecated shims over this layer.
#ifndef EILID_EILID_FLEET_H
#define EILID_EILID_FLEET_H

#include <array>
#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "crypto/hmac.h"
#include "eilid/clock.h"
#include "eilid/session.h"
#include "eilid/update.h"

namespace eilid {

class CampaignScheduler;
struct RolloutPlan;

// Verifier half of the CFA baseline, fleet-wide: one instance tracks
// every enrolled device's MAC key, challenge nonce and stateful path
// replay *independently*, so one device's compromise (or power cycle)
// never perturbs another's attestation history.
class VerifierService {
 public:
  struct AttestResult {
    std::string device_id;
    bool attested = false;  // false: session has no CFA monitor, so no
                            // report could be collected (mac/seq/path
                            // are meaningless and left false)
    uint32_t seq = 0;
    uint64_t cycle = 0;     // device cycle at report emission
    Tick tick = 0;          // fleet time at verification (0 when the
                            // service has no clock attached) -- the
                            // freshness primitive: health monitoring
                            // judges *when* evidence last verified, not
                            // just whether it did
    bool mac_ok = false;
    bool seq_ok = false;   // report sequence number was the expected one
    bool path_ok = false;  // replayed log stayed inside the CFG
    size_t edges = 0;
    uint32_t dropped = 0;  // evidence lost to on-device log overflow
    std::optional<cfa::LoggedEdge> first_bad;
    // Edges still held on-device after this drain: 0 for the barrier
    // sweep (which drains everything); a bounded attest_slice() leaves
    // the remainder for the next slice. The incremental verifier uses
    // this to tell a caught-up device from one mid-drain.
    size_t remaining = 0;

    bool ok() const { return attested && mac_ok && seq_ok && path_ok; }

    // Field-wise equality: the rollout determinism gates (pooled wave
    // gate == serial wave gate) compare whole verdicts, so a new field
    // is covered automatically.
    bool operator==(const AttestResult&) const = default;
  };

  // Register a session for attestation: extracts the CFG from its
  // build and initialises fresh per-device replay state. Throws
  // eilid::FleetError when the session has no CFA monitor or is
  // already enrolled. attest() enrolls on first contact
  // automatically. The service keeps a reference for verify_all(): an
  // enrolled session must outlive the service or be withdraw()n first
  // (Fleet::decommission does this for fleet-owned sessions).
  void enroll(DeviceSession& session);
  bool enrolled(const std::string& device_id) const;

  // Challenge one device now: fresh nonce, drain its log, check MAC +
  // sequence + path. Replay state persists across calls. A session
  // with no CFA monitor is not an error -- there is simply no evidence
  // to collect -- so the result comes back with attested = false
  // (ok() false) and the session is not enrolled.
  AttestResult attest(DeviceSession& session);

  // Bounded variant: drain at most `max_edges` edges (0 = everything,
  // == attest()). Same nonce/MAC/sequence/replay semantics per report
  // -- a sequence of slices replays exactly the evidence one barrier
  // drain would, in order, against the same persistent replay state,
  // so a hijack is convicted at the same edge (see
  // eilid::IncrementalVerifier, which schedules these). Freshness
  // bookkeeping counts every slice as an announcement.
  AttestResult attest_slice(DeviceSession& session, size_t max_edges);

  // Batched sweep over every enrolled device, in enrollment-id order.
  // The overload fans the sweep out across the pool's workers with
  // per-device locking; its results are identical to the serial sweep
  // (same verdicts, same enrollment-id order) because every device's
  // replay state and sequence window are independent and nonces only
  // feed the per-report MAC.
  std::vector<AttestResult> verify_all();
  std::vector<AttestResult> verify_all(common::ThreadPool& pool);

  // Subset sweep: attest exactly `sessions` (a rollout wave, a canary
  // cohort) instead of every enrolled device -- devices outside the
  // subset are not swept, so a wave gate never drains evidence from
  // devices still on the old build. Results come back in
  // enrollment-id order regardless of the input order, matching the
  // whole-fleet sweep's contract, and each attestation takes the
  // device's session mutex, so a subset sweep interleaves safely with
  // a concurrent full sweep or workload driver. A session with no CFA
  // monitor yields an attested = false entry (never ok()); an
  // un-enrolled CFA session is enrolled on first contact, exactly like
  // attest(). Throws eilid::FleetError on a null session or a
  // duplicate device id in the subset. The pooled overload fans out
  // with per-device locking and returns results identical to the
  // serial subset sweep.
  std::vector<AttestResult> verify_all(
      const std::vector<DeviceSession*>& sessions);
  std::vector<AttestResult> verify_all(
      const std::vector<DeviceSession*>& sessions, common::ThreadPool& pool);

  // Forget a device (its session is going away). Must not race a
  // sweep or attest() of the same device.
  void withdraw(const std::string& device_id);

  // Stamp every subsequent verdict with `clock`'s tick at verification
  // (AttestResult::tick; 0 when never attached). Fleet attaches its own
  // clock at construction; call at most once, before any attestation --
  // the pointer must outlive the service.
  void attach_clock(const FleetClock* clock) { clock_ = clock; }

  // Freshness bookkeeping, updated on every sweep that touches the
  // device (attest/verify_all/subset gates alike): when evidence last
  // arrived and when it last verified clean. The eilid::HealthMonitor
  // layers staleness thresholds and quarantine on top of these.
  struct Freshness {
    Tick last_attested_tick = 0;  // evidence last collected (any verdict)
    Tick last_ok_tick = 0;        // verdict last came back ok()
    uint32_t reports = 0;         // attestations performed
    bool ever_attested = false;
    bool ever_ok = false;
    bool convicted = false;  // most recent verdict was a conviction

    bool operator==(const Freshness&) const = default;
  };
  // Freshness for one device id (value-initialized when the device has
  // never been swept). Safe against concurrent sweeps.
  Freshness freshness(const std::string& device_id) const;

  // Sanction the code change `session` just logged: stage a replay-CFG
  // swap to the CFG of the session's *current* build (shared via the
  // per-build cache), taking effect when the device's evidence stream
  // reaches its update marker. Caller must hold session.mutex()
  // (UpdateCampaign does). Returns false -- and stages nothing -- for
  // a session with no CFA monitor, one this service has not enrolled,
  // or one whose id is enrolled against a different live session.
  bool stage_cfg_swap(DeviceSession& session);

 private:
  struct DeviceState {
    DeviceSession* session = nullptr;
    cfa::CfaVerifier verifier;
    uint32_t expected_seq = 0;
  };

  // Build fresh replay state for a session. Throws when it has no CFA
  // monitor. The CFG is extracted once per distinct build (cfg_cache_)
  // and shared read-only by every device flashed from it; neither the
  // cache lookup nor a miss's extraction holds mu_.
  DeviceState make_state(DeviceSession& session);
  std::shared_ptr<const cfa::Cfg> cfg_for(DeviceSession& session);
  // The per-device attestation body; callers hold no service lock.
  // `session` is the device whose log is drained -- normally
  // state.session, but attest() passes the caller's session so an
  // aliased id can never present another device's evidence.
  // `max_edges` bounds the drain (0 = everything).
  AttestResult attest_device(DeviceState& state, DeviceSession& session,
                             size_t max_edges);
  AttestResult attest_with_budget(DeviceSession& session, size_t max_edges);
  std::vector<DeviceState*> sweep_snapshot();
  // Validated copy of a subset in enrollment-id order (throws on null
  // pointers and duplicate ids) -- the one definition both subset
  // sweep flavors share.
  static std::vector<DeviceSession*> ordered_subset(
      const std::vector<DeviceSession*>& sessions);

  mutable std::mutex mu_;  // guards devices_ (the map structure only;
                           // per-device state is guarded by the
                           // session's own mutex)
  std::map<std::string, DeviceState> devices_;
  // Extracted CFG per build. The weak pin detects a dead build (and a
  // recycled key address); stale entries are pruned on every miss, so
  // the cache never outgrows the set of live builds by more than the
  // garbage accrued since the last extraction. Enrolled devices keep
  // their own shared_ptr via CfaVerifier, so eviction is always safe.
  std::mutex cfg_mu_;
  std::map<const core::BuildResult*,
           std::pair<std::weak_ptr<const core::BuildResult>,
                     std::shared_ptr<const cfa::Cfg>>>
      cfg_cache_;
  std::atomic<uint64_t> nonce_counter_{1};

  const FleetClock* clock_ = nullptr;  // set once, before attestation
  // Guarded by fresh_mu_, not the per-device session lock: freshness is
  // read by health monitors while sweeps are in flight elsewhere.
  mutable std::mutex fresh_mu_;
  std::map<std::string, Freshness> freshness_;
};

struct FleetOptions {
  // Master key provisioned at manufacture; per-device attestation keys
  // are derived as HMAC(master, "attest:" + device_id) and per-device
  // update keys as HMAC(master, "update:" + device_id).
  std::vector<uint8_t> master_key = std::vector<uint8_t>(32, 0x5A);
};

class Fleet {
 public:
  explicit Fleet(FleetOptions options = {});

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // --- build cache -------------------------------------------------
  // Build (or fetch) the app for (source, name, options). The result
  // is immutable and shared by every session deployed from it.
  // Single-flight: when two threads request the same content hash
  // concurrently, one runs the pipeline and the other blocks until
  // the shared result is ready (counted as a cache hit). A build that
  // throws is evicted, so a later call retries.
  std::shared_ptr<const core::BuildResult> build(
      const std::string& source, const std::string& name,
      const core::BuildOptions& options = {});

  size_t pipeline_runs() const { return pipeline_runs_.load(); }
  size_t build_cache_hits() const { return cache_hits_.load(); }
  size_t build_cache_size() const;

  // --- device registry ---------------------------------------------
  // Flash a cached build onto a new device. Throws eilid::FleetError
  // on a duplicate id or a policy/build mismatch. kCfaBaseline
  // sessions are auto-enrolled with the verifier. Exception-safe: a
  // deploy that fails at any step (construction, duplicate id,
  // enrollment) leaves neither the registry nor the verifier holding
  // the half-deployed session.
  DeviceSession& deploy(const std::string& device_id,
                        std::shared_ptr<const core::BuildResult> build,
                        EnforcementPolicy policy, SessionOptions options = {});

  // Convenience: build (cached) + deploy. BuildOptions are derived
  // from the policy: only kEilidHw instruments.
  DeviceSession& provision(const std::string& device_id,
                           const std::string& source, const std::string& name,
                           EnforcementPolicy policy,
                           SessionOptions options = {});

  DeviceSession* find(const std::string& device_id);
  DeviceSession& at(const std::string& device_id);  // throws FleetError
  void decommission(const std::string& device_id);
  size_t size() const { return count_.load(); }
  // Snapshot of the registry in deployment order. The pointers stay
  // valid until the corresponding device is decommissioned.
  std::vector<DeviceSession*> sessions() const;

  // --- update campaigns --------------------------------------------
  // Stage a secure update of fleet sessions onto `target` (normally a
  // build() result, so campaigns ride the same content-hash cache).
  // The returned campaign rolls packages out per device -- see
  // eilid/update.h for the lifecycle and concurrency contract. The
  // target's build shape must match the devices' (same RomConfig /
  // instrumentation); a transition whose images differ outside PMEM is
  // reported per device as UpdateResult::kIncompatible.
  UpdateCampaign stage_update(std::shared_ptr<const core::BuildResult> target,
                              CampaignOptions options = {});
  // Convenience: build (cached) the target from source first.
  UpdateCampaign stage_update(const std::string& source,
                              const std::string& name,
                              const core::BuildOptions& build_options = {},
                              CampaignOptions options = {});

  // --- staged rollouts ---------------------------------------------
  // Wrap a campaign in a CampaignScheduler executing `plan`: canary
  // waves with attestation gates, failure budgets, held A/B cohorts
  // and rate limits -- see eilid/rollout.h for the plan grammar,
  // report shape and concurrency contract. Callers include
  // eilid/rollout.h for the returned type.
  CampaignScheduler plan_rollout(UpdateCampaign campaign, RolloutPlan plan);
  // Convenience: stage the target build into a campaign first.
  CampaignScheduler plan_rollout(
      std::shared_ptr<const core::BuildResult> target, RolloutPlan plan,
      CampaignOptions options = {});

  VerifierService& verifier() { return verifier_; }

  // The fleet's simulated clock (see eilid/clock.h). Every time-driven
  // subsystem -- heartbeat cadences, staleness thresholds, rollout soak
  // windows -- reads this one clock, and attestation verdicts are
  // stamped with its tick (AttestResult::tick). The fleet never
  // advances it on its own: the driver (test, bench, HealthMonitor
  // loop) owns time, which is why nothing here can flake.
  FleetClock& clock() { return clock_; }
  const FleetClock& clock() const { return clock_; }

  // The key a given device MACs its attestation reports with.
  crypto::Digest device_key(const std::string& device_id) const;
  // The device-unique key a given device's secure updates are
  // authenticated against.
  crypto::Digest update_key(const std::string& device_id) const;

 private:
  // Registry shard: deploys/lookups of ids that hash to different
  // shards never contend on a lock.
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<DeviceSession>> sessions;
  };
  static constexpr size_t kShardCount = 16;

  Shard& shard_for(const std::string& device_id);
  const Shard& shard_for(const std::string& device_id) const;

  FleetOptions options_;

  // Build cache: content hash -> shared future of the one pipeline
  // run for that hash (single-flight).
  using BuildFuture =
      std::shared_future<std::shared_ptr<const core::BuildResult>>;
  mutable std::mutex cache_mu_;
  std::map<crypto::Digest, BuildFuture> cache_;
  std::atomic<size_t> cache_hits_{0};
  std::atomic<size_t> pipeline_runs_{0};

  std::array<Shard, kShardCount> shards_;
  std::atomic<size_t> count_{0};
  mutable std::mutex order_mu_;
  std::vector<DeviceSession*> order_;  // deployment order

  FleetClock clock_;  // declared before verifier_: the verifier holds a
                      // pointer to it for its whole life
  VerifierService verifier_;
};

}  // namespace eilid

#endif  // EILID_EILID_FLEET_H
