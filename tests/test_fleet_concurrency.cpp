// The parallel fleet engine under contention (run these under
// ThreadSanitizer -- the CI tsan job does): single-flight build cache,
// sharded registry, concurrent attestation with per-device locking,
// and the determinism contract of the pooled verify_all() sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "eilid/fleet.h"
#include "eilid/health.h"

namespace eilid {
namespace {

const char* kTinyApp = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
    call #emit
    call #emit
halt:
    jmp halt
emit:
    mov.b #'x', &UART_TX
    ret
.vector 15, main
.end
)";

// ------------------------------------------------------------- pool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  common::ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstError) {
  common::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](size_t i) {
                                   if (i == 7) {
                                     throw FleetError("boom");
                                   }
                                 }),
               FleetError);
  // The pool survives a failed sweep.
  std::atomic<size_t> ran{0};
  pool.parallel_for(64, [&](size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 64u);
}

// ------------------------------------------------- single-flight cache

// Many threads race provision() of the same source: exactly one
// pipeline run, every session flashed from the one shared result.
TEST(FleetConcurrency, ConcurrentProvisionIsSingleFlight) {
  Fleet fleet;
  constexpr size_t kDevices = 16;
  common::ThreadPool pool(8);
  std::vector<DeviceSession*> devices(kDevices);
  pool.parallel_for(kDevices, [&](size_t i) {
    devices[i] =
        &fleet.provision("node-" + std::to_string(i), kTinyApp, "tiny",
                         EnforcementPolicy::kEilidHw);
  });

  EXPECT_EQ(fleet.pipeline_runs(), 1u);
  EXPECT_EQ(fleet.build_cache_hits(), kDevices - 1);
  EXPECT_EQ(fleet.build_cache_size(), 1u);
  EXPECT_EQ(fleet.size(), kDevices);
  EXPECT_EQ(fleet.sessions().size(), kDevices);
  for (size_t i = 0; i < kDevices; ++i) {
    EXPECT_EQ(devices[i]->shared_build().get(),
              devices[0]->shared_build().get());
    EXPECT_EQ(fleet.find("node-" + std::to_string(i)), devices[i]);
  }
}

// A racing duplicate id is rejected exactly once and leaves the one
// winner deployed.
TEST(FleetConcurrency, ConcurrentDuplicateDeployOneWinner) {
  Fleet fleet;
  auto build = fleet.build(kTinyApp, "tiny", {.eilid = false});
  std::atomic<size_t> rejected{0};
  common::ThreadPool pool(8);
  pool.parallel_for(8, [&](size_t) {
    try {
      fleet.deploy("contested", build, EnforcementPolicy::kCfaBaseline);
    } catch (const FleetError&) {
      ++rejected;
    }
  });
  EXPECT_EQ(rejected.load(), 7u);
  EXPECT_EQ(fleet.size(), 1u);
  EXPECT_TRUE(fleet.verifier().enrolled("contested"));
}

// --------------------------------------------------------- attestation

// Disjoint devices attest concurrently; every verdict is clean and
// per-device sequence tracking never cross-talks.
TEST(FleetConcurrency, ConcurrentAttestDisjointDevices) {
  Fleet fleet;
  constexpr size_t kDevices = 12;
  std::vector<DeviceSession*> devices;
  for (size_t i = 0; i < kDevices; ++i) {
    DeviceSession& dev =
        fleet.provision("cfa-" + std::to_string(i), kTinyApp, "tiny",
                        EnforcementPolicy::kCfaBaseline);
    dev.run_to_symbol("halt", 100000);
    devices.push_back(&dev);
  }

  common::ThreadPool pool(8);
  constexpr int kRounds = 4;
  std::vector<VerifierService::AttestResult> verdicts(kDevices);
  for (int round = 0; round < kRounds; ++round) {
    pool.parallel_for(kDevices, [&](size_t i) {
      verdicts[i] = fleet.verifier().attest(*devices[i]);
    });
    for (size_t i = 0; i < kDevices; ++i) {
      EXPECT_TRUE(verdicts[i].ok()) << verdicts[i].device_id;
      EXPECT_EQ(verdicts[i].seq, static_cast<uint32_t>(round))
          << verdicts[i].device_id;
    }
  }
}

// Simulation and attestation race on the same devices: per-device
// locking keeps both sides coherent (this is the TSan-interesting
// case; verdict contents depend on interleaving, so only invariants
// are checked).
TEST(FleetConcurrency, WorkloadsRaceAttestationSweeps) {
  const auto& app = apps::app_by_name("temp_sensor");
  Fleet fleet;
  constexpr size_t kDevices = 8;
  std::vector<apps::FleetWorkload> work;
  for (size_t i = 0; i < kDevices; ++i) {
    DeviceSession& dev = fleet.provision(
        "racer-" + std::to_string(i), app.source, app.name,
        EnforcementPolicy::kCfaBaseline, {.cfa = {.log_capacity = 65536}});
    work.push_back({&dev, &app, 0});
  }

  common::ThreadPool workers(4);
  common::ThreadPool sweeper(2);
  std::atomic<bool> done{false};
  std::atomic<size_t> sweeps{0};
  std::thread attestor([&] {
    while (!done.load()) {
      for (const auto& verdict : fleet.verifier().verify_all(sweeper)) {
        EXPECT_TRUE(verdict.attested) << verdict.device_id;
        EXPECT_TRUE(verdict.mac_ok) << verdict.device_id;
        EXPECT_TRUE(verdict.seq_ok) << verdict.device_id;
      }
      ++sweeps;
    }
  });
  auto outcomes = apps::run_workload_all(work, workers);
  // Under heavy parallel test load the workloads can win the race
  // outright; hold the attestor open until it has finished at least
  // one full sweep so the >= 1 assertion below is load-independent.
  while (sweeps.load() == 0) std::this_thread::yield();
  done.store(true);
  attestor.join();

  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.reached_halt);
    EXPECT_TRUE(outcome.check_failure.empty()) << outcome.check_failure;
  }
  EXPECT_GE(sweeps.load(), 1u);
}

// ------------------------------------------------------- verify_all()

// The pooled sweep is a drop-in for the serial one: identical verdict
// tuples in identical enrollment-id order, for any worker count.
TEST(FleetConcurrency, VerifyAllMatchesSerialSweep) {
  const auto& app = apps::app_by_name("light_sensor");

  auto build_fleet = [&](Fleet& fleet) {
    std::vector<DeviceSession*> devices;
    for (int i = 0; i < 10; ++i) {
      DeviceSession& dev = fleet.provision(
          "dev-" + std::to_string(i), app.source, app.name,
          EnforcementPolicy::kCfaBaseline, {.cfa = {.log_capacity = 65536}});
      apps::run_workload(dev, app);
      devices.push_back(&dev);
    }
    return devices;
  };

  Fleet serial_fleet;
  Fleet pooled_fleet;
  build_fleet(serial_fleet);
  build_fleet(pooled_fleet);

  common::ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    auto serial = serial_fleet.verifier().verify_all();
    auto pooled = pooled_fleet.verifier().verify_all(pool);
    ASSERT_EQ(serial.size(), pooled.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].device_id, pooled[i].device_id) << i;
      EXPECT_EQ(serial[i].attested, pooled[i].attested) << i;
      EXPECT_EQ(serial[i].seq, pooled[i].seq) << i;
      EXPECT_EQ(serial[i].cycle, pooled[i].cycle) << i;
      EXPECT_EQ(serial[i].mac_ok, pooled[i].mac_ok) << i;
      EXPECT_EQ(serial[i].seq_ok, pooled[i].seq_ok) << i;
      EXPECT_EQ(serial[i].path_ok, pooled[i].path_ok) << i;
      EXPECT_EQ(serial[i].edges, pooled[i].edges) << i;
      EXPECT_EQ(serial[i].dropped, pooled[i].dropped) << i;
      EXPECT_TRUE(pooled[i].ok()) << pooled[i].device_id;
    }
    // Enrollment-id order, regardless of worker interleaving.
    for (size_t i = 1; i < pooled.size(); ++i) {
      EXPECT_LT(pooled[i - 1].device_id, pooled[i].device_id);
    }
  }
}

// The subset sweep (a rollout wave gate) keeps the whole-fleet sweep's
// contract: enrollment-id ordering regardless of input order, pooled
// results identical to serial, and coverage of exactly the subset --
// devices outside it are not drained.
TEST(FleetConcurrency, SubsetSweepMatchesSerialAndKeepsOrder) {
  const auto& app = apps::app_by_name("light_sensor");

  auto build_fleet = [&](Fleet& fleet) {
    for (int i = 0; i < 10; ++i) {
      DeviceSession& dev = fleet.provision(
          "dev-" + std::to_string(i), app.source, app.name,
          EnforcementPolicy::kCfaBaseline, {.cfa = {.log_capacity = 65536}});
      apps::run_workload(dev, app);
    }
  };
  Fleet serial_fleet;
  Fleet pooled_fleet;
  build_fleet(serial_fleet);
  build_fleet(pooled_fleet);

  // Every other device, deliberately in reverse deployment order.
  auto pick = [](Fleet& fleet) {
    std::vector<DeviceSession*> subset;
    for (int i = 8; i >= 0; i -= 2) {
      subset.push_back(&fleet.at("dev-" + std::to_string(i)));
    }
    return subset;
  };

  common::ThreadPool pool(4);
  auto serial = serial_fleet.verifier().verify_all(pick(serial_fleet));
  auto pooled = pooled_fleet.verifier().verify_all(pick(pooled_fleet), pool);
  ASSERT_EQ(serial.size(), 5u);
  ASSERT_EQ(pooled.size(), 5u);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i] == pooled[i]) << serial[i].device_id;
    EXPECT_TRUE(pooled[i].ok()) << pooled[i].device_id;
    EXPECT_EQ(pooled[i].device_id, "dev-" + std::to_string(2 * i));
  }
  for (size_t i = 1; i < pooled.size(); ++i) {
    EXPECT_LT(pooled[i - 1].device_id, pooled[i].device_id);
  }

  // Unswept devices kept their evidence: the next full sweep still
  // sees every device at its own expected sequence number.
  for (const auto& verdict : pooled_fleet.verifier().verify_all()) {
    EXPECT_TRUE(verdict.ok()) << verdict.device_id;
    const bool swept_before = (verdict.device_id[4] - '0') % 2 == 0;
    EXPECT_EQ(verdict.seq, swept_before ? 1u : 0u) << verdict.device_id;
  }

  // Malformed subsets are typed errors, not UB.
  DeviceSession& dup = serial_fleet.at("dev-0");
  EXPECT_THROW(serial_fleet.verifier().verify_all(
                   std::vector<DeviceSession*>{&dup, &dup}),
               FleetError);
  EXPECT_THROW(serial_fleet.verifier().verify_all(
                   std::vector<DeviceSession*>{nullptr}),
               FleetError);
}

// A rollout wave gate racing a concurrent whole-fleet sweep (this is
// the TSan-interesting case for the subset overload): both drain the
// same devices' logs and advance the same replay state, so per-device
// locking must serialize them per device while they interleave across
// devices. Devices are parked, so every interleaving yields clean
// verdicts.
TEST(FleetConcurrency, WaveGateRacesFullSweep) {
  Fleet fleet;
  constexpr size_t kDevices = 12;
  for (size_t i = 0; i < kDevices; ++i) {
    DeviceSession& dev =
        fleet.provision("gate-" + std::to_string(i), kTinyApp, "tiny",
                        EnforcementPolicy::kCfaBaseline);
    dev.run_to_symbol("halt", 100000);
  }
  // The wave: the first half of the fleet.
  std::vector<DeviceSession*> wave;
  for (size_t i = 0; i < kDevices / 2; ++i) {
    wave.push_back(&fleet.at("gate-" + std::to_string(i)));
  }

  common::ThreadPool sweep_pool(2);
  common::ThreadPool gate_pool(2);
  std::atomic<bool> done{false};
  std::atomic<size_t> sweeps{0};
  std::thread attestor([&] {
    while (!done.load()) {
      for (const auto& verdict : fleet.verifier().verify_all(sweep_pool)) {
        EXPECT_TRUE(verdict.ok()) << verdict.device_id;
      }
      ++sweeps;
    }
  });
  for (int round = 0; round < 50; ++round) {
    auto gate = fleet.verifier().verify_all(wave, gate_pool);
    ASSERT_EQ(gate.size(), wave.size());
    for (size_t i = 0; i < gate.size(); ++i) {
      EXPECT_TRUE(gate[i].ok()) << gate[i].device_id;
      if (i > 0) EXPECT_LT(gate[i - 1].device_id, gate[i].device_id);
    }
  }
  // The gates must genuinely have raced at least one full sweep.
  while (sweeps.load() == 0) std::this_thread::yield();
  done.store(true);
  attestor.join();
  EXPECT_GE(sweeps.load(), 1u);
}

// --------------------------------------------------- update campaigns

const char* kTinyAppV2 = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
    call #emit
    call #emit
    call #emit
halt:
    jmp halt
emit:
    mov.b #'y', &UART_TX
    ret
.vector 15, main
.end
)";

// The acceptance-scale campaign: 64 devices complete a staged update
// through Fleet::stage_update(); the pooled rollout's outcomes are
// identical to the serial rollout's, every updated device attests ok()
// against the new CFG, runs predecoded, and refuses a replayed
// old-version package.
TEST(FleetConcurrency, PooledCampaignMatchesSerialRollout) {
  constexpr size_t kDevices = 64;

  auto build_fleet = [&](Fleet& fleet) {
    for (size_t i = 0; i < kDevices; ++i) {
      DeviceSession& dev =
          fleet.provision("node-" + std::to_string(i), kTinyApp, "tiny",
                          EnforcementPolicy::kCfaBaseline);
      dev.run_to_symbol("halt", 100000);
    }
  };
  Fleet serial_fleet;
  Fleet pooled_fleet;
  build_fleet(serial_fleet);
  build_fleet(pooled_fleet);

  UpdateCampaign serial_campaign =
      serial_fleet.stage_update(kTinyAppV2, "tiny", {.eilid = false});
  UpdateCampaign pooled_campaign =
      pooled_fleet.stage_update(kTinyAppV2, "tiny", {.eilid = false});
  // A genuine pre-rollout package, replayed per device after the fact.
  casu::UpdatePackage replayed =
      pooled_campaign.package_for(pooled_fleet.at("node-7"));

  common::ThreadPool pool(8);
  auto serial = serial_campaign.roll_out();
  auto pooled = pooled_campaign.roll_out(pool);

  ASSERT_EQ(serial.size(), kDevices);
  ASSERT_EQ(pooled.size(), kDevices);
  for (size_t i = 0; i < kDevices; ++i) {
    EXPECT_TRUE(serial[i] == pooled[i]) << serial[i].device_id;
    EXPECT_EQ(pooled[i].result, UpdateResult::kApplied) << i;
  }
  // Target built once per fleet; every session swapped onto it.
  EXPECT_EQ(pooled_fleet.pipeline_runs(), 2u);
  for (auto* dev : pooled_fleet.sessions()) {
    EXPECT_EQ(dev->shared_build().get(),
              pooled_campaign.target_build().get());
    dev->machine().uart().clear_tx();
    dev->run_to_symbol("halt", 100000);
    EXPECT_EQ(dev->machine().uart().tx_text(), "yyy") << dev->id();
    EXPECT_TRUE(dev->machine().cpu().decode_cache_valid()) << dev->id();
  }
  for (const auto& verdict : pooled_fleet.verifier().verify_all(pool)) {
    EXPECT_TRUE(verdict.ok()) << verdict.device_id;
  }
  EXPECT_EQ(pooled_fleet.at("node-7").apply_update(replayed),
            casu::UpdateStatus::kRollback);
}

// A pooled campaign racing a continuous attestation sweep: per-device
// locking keeps every verdict clean -- the CFG epoch is staged under
// the same session lock that logs the marker, so no sweep can drain an
// unsanctioned marker (this is the TSan-interesting case).
TEST(FleetConcurrency, CampaignRacesAttestationSweeps) {
  Fleet fleet;
  constexpr size_t kDevices = 12;
  for (size_t i = 0; i < kDevices; ++i) {
    DeviceSession& dev =
        fleet.provision("racer-" + std::to_string(i), kTinyApp, "tiny",
                        EnforcementPolicy::kCfaBaseline);
    dev.run_to_symbol("halt", 100000);
  }

  UpdateCampaign campaign =
      fleet.stage_update(kTinyAppV2, "tiny", {.eilid = false});
  common::ThreadPool rollout_pool(4);
  common::ThreadPool sweep_pool(2);
  std::atomic<bool> done{false};
  std::atomic<size_t> sweeps{0};
  std::thread attestor([&] {
    while (!done.load()) {
      for (const auto& verdict : fleet.verifier().verify_all(sweep_pool)) {
        EXPECT_TRUE(verdict.attested) << verdict.device_id;
        EXPECT_TRUE(verdict.mac_ok) << verdict.device_id;
        EXPECT_TRUE(verdict.seq_ok) << verdict.device_id;
        EXPECT_TRUE(verdict.path_ok) << verdict.device_id;
      }
      ++sweeps;
    }
  });
  auto outcomes = campaign.roll_out(rollout_pool);
  // As above: don't let a fast rollout beat the attestor to zero
  // sweeps under load.
  while (sweeps.load() == 0) std::this_thread::yield();
  done.store(true);
  attestor.join();

  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.result, UpdateResult::kApplied) << outcome.device_id;
    EXPECT_TRUE(outcome.cfg_staged) << outcome.device_id;
  }
  EXPECT_GE(sweeps.load(), 1u);
  for (const auto& verdict : fleet.verifier().verify_all()) {
    EXPECT_TRUE(verdict.ok()) << verdict.device_id;
  }
}

// Heartbeat sweeps race a pooled campaign rollout (the TSan-interesting
// case for the health layer): the scheduler's beats are subset sweeps
// riding the same per-device locks as the updates, and the campaign
// stages each device's CFG epoch under the very lock that logs the
// marker -- so no beat, whatever the interleaving, can ever drain an
// unsanctioned marker. Every heartbeat verdict during the race must
// therefore be clean, and the freshness records stay coherent.
TEST(FleetConcurrency, HeartbeatSweepsRaceRollout) {
  Fleet fleet;
  constexpr size_t kDevices = 12;
  for (size_t i = 0; i < kDevices; ++i) {
    DeviceSession& dev =
        fleet.provision("beat-" + std::to_string(i), kTinyApp, "tiny",
                        EnforcementPolicy::kCfaBaseline);
    dev.run_to_symbol("halt", 100000);
  }
  UpdateCampaign campaign =
      fleet.stage_update(kTinyAppV2, "tiny", {.eilid = false});

  HeartbeatScheduler heartbeat(fleet,
                               {.period = 5, .jitter = 3, .jitter_seed = 11});
  common::ThreadPool beat_pool(2);
  common::ThreadPool rollout_pool(4);
  std::atomic<bool> done{false};
  std::atomic<size_t> beats{0};
  std::thread driver([&] {
    Tick deadline = 0;
    while (!done.load()) {
      deadline += 100;
      const HeartbeatReport report = heartbeat.run_until(deadline, beat_pool);
      for (const auto& beat : report.beats) {
        for (const auto& verdict : beat.verdicts) {
          EXPECT_TRUE(verdict.attested) << verdict.device_id;
          EXPECT_TRUE(verdict.mac_ok) << verdict.device_id;
          EXPECT_TRUE(verdict.seq_ok) << verdict.device_id;
          EXPECT_TRUE(verdict.path_ok) << verdict.device_id;
        }
      }
      beats += report.beats.size();
    }
  });
  auto outcomes = campaign.roll_out(rollout_pool);
  // Don't let a fast rollout beat the driver to zero beats under load.
  while (beats.load() == 0) std::this_thread::yield();
  done.store(true);
  driver.join();

  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.result, UpdateResult::kApplied) << outcome.device_id;
    EXPECT_TRUE(outcome.cfg_staged) << outcome.device_id;
  }
  EXPECT_GE(beats.load(), 1u);
  for (const FreshnessRecord& record : heartbeat.records()) {
    EXPECT_FALSE(record.convicted) << record.device_id;
    EXPECT_TRUE(record.ever_ok) << record.device_id;
    EXPECT_EQ(record.misses, 0u) << record.device_id;
  }
  for (const auto& verdict : fleet.verifier().verify_all()) {
    EXPECT_TRUE(verdict.ok()) << verdict.device_id;
  }
}

}  // namespace
}  // namespace eilid
