#include "masm/parser.h"

#include "common/error.h"
#include "common/hex.h"
#include "common/strings.h"
#include "isa/registers.h"

namespace eilid::masm {
namespace {

std::string strip_comment(const std::string& raw) {
  // ';' starts a comment unless inside a quoted string.
  bool in_quote = false;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '"') in_quote = !in_quote;
    if (raw[i] == ';' && !in_quote) return raw.substr(0, i);
  }
  return raw;
}

[[noreturn]] void fail(const std::string& file, int line_no, const std::string& msg) {
  throw AsmError(file, line_no, msg);
}

}  // namespace

Expr parse_expr(const std::string& text, const std::string& file, int line_no) {
  std::string t = trim(text);
  if (t.empty()) fail(file, line_no, "empty expression");

  // Character literal: 'A'
  if (t.size() == 3 && t.front() == '\'' && t.back() == '\'') {
    return Expr::literal(static_cast<unsigned char>(t[1]));
  }

  // Pure number?
  try {
    return Expr::literal(static_cast<int32_t>(parse_number(t)));
  } catch (const std::invalid_argument&) {
    // fall through: symbol form
  }

  // symbol, $, symbol+lit, symbol-lit. Find the last +/- that is not
  // part of a leading sign (symbols cannot start with +/-).
  size_t split = std::string::npos;
  for (size_t i = 1; i < t.size(); ++i) {
    if (t[i] == '+' || t[i] == '-') {
      split = i;
      break;  // first infix operator; offsets are single terms
    }
  }
  std::string sym = (split == std::string::npos) ? t : trim(t.substr(0, split));
  int32_t off = 0;
  if (split != std::string::npos) {
    std::string rest = trim(t.substr(split + 1));
    int32_t v;
    try {
      v = static_cast<int32_t>(parse_number(rest));
    } catch (const std::invalid_argument&) {
      fail(file, line_no, "bad expression offset: " + rest);
    }
    off = (t[split] == '-') ? -v : v;
  }
  if (sym != "$" && !is_identifier(sym)) {
    fail(file, line_no, "bad symbol: '" + sym + "'");
  }
  return Expr::sym(sym, off);
}

OperandExpr parse_operand(const std::string& text, const std::string& file,
                          int line_no) {
  std::string t = trim(text);
  if (t.empty()) fail(file, line_no, "empty operand");
  OperandExpr op;

  if (t[0] == '#') {
    op.kind = OperandExpr::Kind::kImmediate;
    op.expr = parse_expr(t.substr(1), file, line_no);
    return op;
  }
  if (t[0] == '&') {
    op.kind = OperandExpr::Kind::kAbsolute;
    op.expr = parse_expr(t.substr(1), file, line_no);
    return op;
  }
  if (t[0] == '@') {
    std::string inner = trim(t.substr(1));
    bool inc = false;
    if (!inner.empty() && inner.back() == '+') {
      inc = true;
      inner = trim(inner.substr(0, inner.size() - 1));
    }
    // Tolerate "@(r1)" (the paper's Fig. 4 spelling) as "@r1".
    if (inner.size() >= 2 && inner.front() == '(' && inner.back() == ')') {
      inner = trim(inner.substr(1, inner.size() - 2));
    }
    int reg = isa::parse_reg(inner);
    if (reg < 0) fail(file, line_no, "bad indirect register: '" + inner + "'");
    op.kind = inc ? OperandExpr::Kind::kIndirectInc : OperandExpr::Kind::kIndirect;
    op.reg = static_cast<uint8_t>(reg);
    return op;
  }
  // Indexed: expr(Rn) -- the operand ends with "(rN)".
  if (t.back() == ')') {
    size_t open = t.rfind('(');
    if (open == std::string::npos) fail(file, line_no, "unbalanced ')': " + t);
    std::string reg_text = trim(t.substr(open + 1, t.size() - open - 2));
    int reg = isa::parse_reg(reg_text);
    if (reg < 0) fail(file, line_no, "bad index register: '" + reg_text + "'");
    std::string idx = trim(t.substr(0, open));
    op.kind = OperandExpr::Kind::kIndexed;
    op.reg = static_cast<uint8_t>(reg);
    op.expr = idx.empty() ? Expr::literal(0) : parse_expr(idx, file, line_no);
    return op;
  }
  // Plain register?
  if (int reg = isa::parse_reg(t); reg >= 0) {
    op.kind = OperandExpr::Kind::kReg;
    op.reg = static_cast<uint8_t>(reg);
    return op;
  }
  // Bare expression: symbolic memory operand / jump target.
  op.kind = OperandExpr::Kind::kSymbolic;
  op.expr = parse_expr(t, file, line_no);
  return op;
}

Statement parse_line(const std::string& raw, const std::string& file, int line_no) {
  Statement stmt;
  stmt.line_no = line_no;
  std::string body = trim(strip_comment(raw));
  stmt.text = body;
  if (body.empty()) return stmt;

  // Leading label(s): "name:" -- only one per line in practice.
  {
    size_t colon = body.find(':');
    if (colon != std::string::npos) {
      std::string head = trim(body.substr(0, colon));
      if (is_identifier(head)) {
        stmt.label = head;
        body = trim(body.substr(colon + 1));
        if (body.empty()) return stmt;
      }
    }
  }

  if (body[0] == '.') {
    stmt.kind = Statement::Kind::kDirective;
    size_t sp = body.find_first_of(" \t");
    stmt.directive = to_lower(body.substr(1, sp == std::string::npos
                                                 ? std::string::npos
                                                 : sp - 1));
    if (sp != std::string::npos) {
      std::string rest = trim(body.substr(sp + 1));
      if (stmt.directive == "ascii" || stmt.directive == "asciz") {
        stmt.args.push_back(rest);  // keep the quoted string intact
      } else {
        stmt.args = split_operands(rest);
      }
    }
    return stmt;
  }

  stmt.kind = Statement::Kind::kInstruction;
  size_t sp = body.find_first_of(" \t");
  std::string mnemonic = to_lower(sp == std::string::npos ? body : body.substr(0, sp));
  if (ends_with(mnemonic, ".b")) {
    stmt.byte_suffix = true;
    mnemonic = mnemonic.substr(0, mnemonic.size() - 2);
  } else if (ends_with(mnemonic, ".w")) {
    mnemonic = mnemonic.substr(0, mnemonic.size() - 2);
  }
  stmt.mnemonic = mnemonic;
  if (sp != std::string::npos) {
    for (const auto& piece : split_operands(trim(body.substr(sp + 1)))) {
      stmt.operands.push_back(parse_operand(piece, file, line_no));
    }
  }
  return stmt;
}

}  // namespace eilid::masm
