// Reproduces Fig. 10: hardware overhead (additional LUTs and
// registers) of EILID vs prior CFI/CFA systems, plus this repo's
// structural estimate of the EILID monitor derived from the invariants
// the simulated hardware actually enforces.
#include <cstdio>

#include "src/hwcost/literature.h"
#include "src/hwcost/monitor_model.h"

using namespace eilid::hwcost;

namespace {

void bar(int value, int scale) {
  int n = value / scale;
  if (n > 60) n = 60;
  for (int i = 0; i < n; ++i) std::putchar('#');
  std::printf(" %d\n", value);
}

}  // namespace

int main() {
  std::printf("Fig. 10(a): additional LUTs over the base core\n");
  for (const auto& t : techniques()) {
    if (t.extra_luts < 0) continue;
    std::printf("  %-10s (%-16s)%s ", t.name.c_str(), t.platform.c_str(),
                t.approximate ? "~" : " ");
    bar(t.extra_luts, 70);
  }
  std::printf("\nFig. 10(b): additional registers over the base core\n");
  for (const auto& t : techniques()) {
    if (t.extra_regs < 0) continue;
    std::printf("  %-10s (%-16s)%s ", t.name.c_str(), t.platform.c_str(),
                t.approximate ? "~" : " ");
    bar(t.extra_regs, 150);
  }
  std::printf("\n('~' marks approximate values read from the original "
              "papers; Tiny-CFA, ACFA and EILID are the exact numbers "
              "stated in the EILID paper.)\n");

  std::printf("\nEILID percentages over openMSP430 (paper: +5.3%% LUTs, "
              "+4.9%% registers):\n  +99/%d LUTs = %.1f%%   +34/%d regs = "
              "%.1f%%\n",
              kOpenMsp430Luts, 100.0 * 99 / kOpenMsp430Luts, kOpenMsp430Regs,
              100.0 * 34 / kOpenMsp430Regs);

  std::printf("\nStructural estimate from this repo's monitor model:\n");
  for (const BillOfMaterials& bom :
       {casu_monitor_bom(), eilid_extension_bom(), eilid_full_bom()}) {
    Cost total = bom.total();
    std::printf("  %-45s %4d LUTs %4d FFs\n", bom.design.c_str(), total.luts,
                total.ffs);
  }
  std::printf("  (paper-reported EILID total:                   99 LUTs   34 "
              "FFs; the\n   structural model counts only the checks "
              "implemented in src/casu + src/eilid.)\n");

  BillOfMaterials full = eilid_full_bom();
  std::printf("\nBill of materials (EILID hardware):\n");
  for (const auto& item : full.items) {
    std::printf("    %-42s %3d LUTs %3d FFs\n", item.name.c_str(),
                item.cost.luts, item.cost.ffs);
  }
  return 0;
}
