#include "eilid/update.h"

#include "common/error.h"
#include "common/hex.h"
#include "eilid/fleet.h"

namespace eilid {

std::string_view update_result_name(UpdateResult result) {
  switch (result) {
    case UpdateResult::kApplied: return "applied";
    case UpdateResult::kAlreadyCurrent: return "already-current";
    case UpdateResult::kBadMac: return "bad-mac";
    case UpdateResult::kRollback: return "rollback";
    case UpdateResult::kBadRegion: return "bad-region";
    case UpdateResult::kIncompatible: return "incompatible";
    case UpdateResult::kImageMismatch: return "image-mismatch";
    case UpdateResult::kInterrupted: return "interrupted";
  }
  return "?";
}

UpdateCampaign::UpdateCampaign(Fleet& fleet,
                               std::shared_ptr<const core::BuildResult> target,
                               CampaignOptions options)
    : fleet_(&fleet),
      target_(std::move(target)),
      options_(options),
      diffs_(std::make_shared<DiffCache>()) {
  if (!target_) {
    throw FleetError("update campaign: null target build");
  }
}

UpdateCampaign::FromState UpdateCampaign::diff_from(
    const std::shared_ptr<const core::BuildResult>& from) {
  // Diffing is two 64 KiB flattens plus a byte compare -- cheap enough
  // to run under the cache lock; the common case (every device on one
  // from-build) computes it once and the rest of a pooled rollout hits
  // the cache.
  std::lock_guard<std::mutex> lock(diffs_->mu);
  auto it = diffs_->diffs.find(from.get());
  if (it != diffs_->diffs.end()) return it->second;
  FromState state;
  state.from = from;
  state.diff = std::make_shared<const core::ImageDiff>(
      core::diff_builds(*from, *target_));
  state.from_flat =
      std::make_shared<const std::vector<uint8_t>>(core::flat_memory(*from));
  diffs_->diffs.emplace(from.get(), state);
  return state;
}

casu::UpdatePackage UpdateCampaign::package_locked(
    DeviceSession& session, const core::ImageDiff& diff) const {
  const crypto::Digest key = fleet_->update_key(session.id());
  casu::UpdateAuthority authority(
      std::span<const uint8_t>(key.data(), key.size()));
  return authority.make_package(session.firmware_version() + 1, diff.regions);
}

casu::UpdatePackage UpdateCampaign::package_for(DeviceSession& session) {
  std::lock_guard<std::mutex> lock(session.mutex());
  FromState state = diff_from(session.shared_build());
  if (!state.diff->compatible) {
    throw FleetError("update campaign: transition for device '" + session.id() +
                     "' is not expressible as a CASU update (non-PMEM bytes "
                     "differ at " +
                     hex16(state.diff->first_incompatible) + ")");
  }
  return package_locked(session, *state.diff);
}

UpdateOutcome UpdateCampaign::apply_locked(DeviceSession& session) {
  UpdateOutcome out;
  out.device_id = session.id();
  out.version_before = session.firmware_version();
  out.version_after = out.version_before;

  if (session.shared_build().get() == target_.get()) {
    out.result = UpdateResult::kAlreadyCurrent;
    return out;
  }
  if (session.policy() == EnforcementPolicy::kEilidHw &&
      target_->rom.unit.image.size_bytes() == 0) {
    out.result = UpdateResult::kIncompatible;
    return out;
  }
  FromState state = diff_from(session.shared_build());
  if (!state.diff->compatible) {
    out.result = UpdateResult::kIncompatible;
    return out;
  }
  // The diff maps cached image A to cached image B, so it is only
  // applicable while the device's flashed code still *is* image A. A
  // device patched out of band (a validly-MAC'd rogue package, kNone
  // self-modification) has diverged: applying the diff would leave
  // memory matching neither build while adopt_build would hand the CPU
  // B's predecoded table -- silent table/memory skew. Refuse instead,
  // before anything is applied. The scan covers both predecoded ranges
  // (secure ROM and PMEM): ROM is load-time image content for every
  // legitimate device, but a kNone device could have scribbled there.
  const sim::Bus& bus = session.machine().bus();
  const std::pair<size_t, size_t> code_ranges[] = {
      {sim::kRomStart, sim::kRomEnd}, {sim::kPmemStart, 0xFFFF}};
  for (const auto& [first, last] : code_ranges) {
    for (size_t addr = first; addr <= last; ++addr) {
      if (bus.raw_byte(static_cast<uint16_t>(addr)) !=
          (*state.from_flat)[addr]) {
        out.result = UpdateResult::kImageMismatch;
        return out;
      }
    }
  }

  casu::UpdatePackage package = package_locked(session, *state.diff);
  // The transport between authority and device is where an adversary
  // lives; the hook mutates what the device actually receives. It runs
  // before chunking, so on the lossy path a tampered package is what
  // gets chunked -- and what fails the MAC after reassembly.
  if (options_.tamper) options_.tamper(session, package);
  out.regions = package.regions.size();
  out.payload_bytes = state.diff->payload_bytes;
  casu::UpdateStatus status;
  if (options_.transport.has_value()) {
    DeliveryResult delivery =
        deliver_update(session, package, *options_.transport);
    status = delivery.status;
    out.attempts = delivery.attempts;
    out.resumed = delivery.resumed;
    out.bytes_retransmitted = delivery.bytes_retransmitted;
  } else {
    status = session.apply_update(package);
  }
  switch (status) {
    case casu::UpdateStatus::kApplied:
      out.result = UpdateResult::kApplied;
      break;
    case casu::UpdateStatus::kBadMac:
      out.result = UpdateResult::kBadMac;
      return out;
    case casu::UpdateStatus::kRollback:
      out.result = UpdateResult::kRollback;
      return out;
    case casu::UpdateStatus::kBadRegion:
      out.result = UpdateResult::kBadRegion;
      return out;
    case casu::UpdateStatus::kInterrupted:
      out.result = UpdateResult::kInterrupted;
      return out;
  }
  out.version_after = session.firmware_version();

  // The device's PMEM is now byte-identical to the target image: swap
  // the session onto the target build (shared predecoded table,
  // symbols), then stage the verifier's CFG swap *while still holding
  // the session mutex* -- a concurrent attestation sweep can therefore
  // never drain the epoch marker before the new CFG is staged for it.
  session.adopt_build(target_);
  out.build_swapped = true;
  out.cfg_staged = fleet_->verifier().stage_cfg_swap(session);
  if (options_.power_cycle) session.power_cycle();
  return out;
}

UpdateOutcome UpdateCampaign::apply_to(DeviceSession& session) {
  std::lock_guard<std::mutex> lock(session.mutex());
  return apply_locked(session);
}

std::vector<UpdateOutcome> UpdateCampaign::roll_out() {
  return roll_out(fleet_->sessions());
}

std::vector<UpdateOutcome> UpdateCampaign::roll_out(common::ThreadPool& pool) {
  return roll_out(fleet_->sessions(), pool);
}

std::vector<UpdateOutcome> UpdateCampaign::roll_out(
    const std::vector<DeviceSession*>& sessions) {
  std::vector<UpdateOutcome> out;
  out.reserve(sessions.size());
  for (DeviceSession* session : sessions) out.push_back(apply_to(*session));
  return out;
}

std::vector<UpdateOutcome> UpdateCampaign::roll_out(
    const std::vector<DeviceSession*>& sessions, common::ThreadPool& pool) {
  // Workers fill outcomes by input index: interleaved execution,
  // deterministic output -- each device's package, version and verdict
  // depend only on that device's own state.
  std::vector<UpdateOutcome> out(sessions.size());
  pool.parallel_for(sessions.size(),
                    [&](size_t i) { out[i] = apply_to(*sessions[i]); });
  return out;
}

}  // namespace eilid
