// Fleet at 10k: copy-on-write device memory + incremental windowed
// attestation, measured together at the scale that motivated them.
//
// One mixed-policy fleet (5/8 CFA-baseline, 1/8 CASU, 1/8 unprotected,
// 1/8 EILID-hw; a sprinkle of the CFA devices diverged by a rogue
// validly-MAC'd patch) is built three times -- SEQUENTIALLY, so peak
// memory stays one fleet's worth -- and its evidence verified three
// ways over the same scenario (boot workload, then a rolling
// four-wave update campaign interleaved with verification):
//
//   barrier          -- VerifierService::verify_all full drains,
//   windowed-serial  -- IncrementalVerifier bounded slices on the
//                       rolling FleetClock schedule,
//   windowed-pooled  -- the same window fanned over a thread pool.
//
// Correctness gates (the bench FAILS on any violation):
//   - per-device folded AttestSummary maps are bit-identical across
//     all three variants (hijacks convicted at the same first edge,
//     campaign epoch markers honored mid-window),
//   - exactly the diverged devices convict,
//   - resident bytes/device: the fleet-wide mean stays under
//     kMeanResidentGate and the worst device under kMaxResidentGate --
//     the copy-on-write memory diet, gated absolutely (a flat design
//     costs 65536 B/device before logs).
//
// Results land in BENCH_fleet_10k.json (committed at the repo root; CI
// re-runs --smoke and scripts/check_bench_regression.py compares
// speedup_* ratios and resident_* absolutes against the baseline).
//
// Usage: bench_fleet_10k [--smoke]   (--smoke: 512 devices; full: 10000)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/eilid/fleet.h"
#include "src/eilid/health.h"
#include "src/eilid/incremental.h"

using namespace eilid;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

std::string firmware(int generation) {
  std::string s = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
)";
  for (int i = 0; i < generation + 1; ++i) s += "    call #emit\n";
  s += R"(halt:
    jmp halt
emit:
    mov.b #')";
  s += static_cast<char>('0' + generation);
  s += R"(', &UART_TX
    ret
.vector 15, main
.end
)";
  return s;
}

std::string device_id(size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "dev-%05zu", i);
  return buf;
}

EnforcementPolicy policy_for(size_t i) {
  switch (i % 8) {
    case 5: return EnforcementPolicy::kCasu;
    case 6: return EnforcementPolicy::kNone;
    case 7: return EnforcementPolicy::kEilidHw;
    default: return EnforcementPolicy::kCfaBaseline;
  }
}

bool is_cfa(size_t i) {
  return policy_for(i) == EnforcementPolicy::kCfaBaseline;
}
// Rogue validly-MAC'd out-of-band patch: convicts at the next drain.
bool diverged(size_t i) { return is_cfa(i) && i % 97 == 13; }
// Unreachable during the heartbeat window: exercises the exponential
// backoff path at fleet scale. CFA devices only (the heartbeat
// scheduler watches attestation-capable sessions), disjoint from the
// diverged set.
bool unreachable(size_t i) {
  return is_cfa(i) && i % 211 == 71 && !diverged(i);
}

constexpr size_t kWaves = 4;
constexpr uint64_t kHaltSpin = 300;  // halt-loop cycles -> log edges
// Heartbeat window start: a fixed tick past anything the drain phases
// can reach, so all variants beat on identical absolute schedules.
constexpr Tick kHeartbeatStart = 1 << 20;
// Memory-diet gates, in private bytes per device (pages + page tables
// + CFA log arena). A flat memory design starts at 65536 B before any
// log; the COW fleet must average far under that.
constexpr double kMeanResidentGate = 16384.0;
constexpr size_t kMaxResidentGate = 32768;

enum class Variant { kBarrier, kWindowedSerial, kWindowedPooled };

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kBarrier: return "barrier";
    case Variant::kWindowedSerial: return "windowed-serial";
    case Variant::kWindowedPooled: return "windowed-pooled";
  }
  return "?";
}

struct RowResult {
  Variant variant = Variant::kBarrier;
  double provision_ms = 0;
  double verify_ms = 0;     // all verification over the whole scenario
  double heartbeat_ms = 0;  // the backoff heartbeat window
  size_t devices = 0;
  size_t cfa_devices = 0;
  size_t convicted = 0;
  uint64_t edges = 0;  // total evidence replayed
  double resident_mean = 0;  // bytes/device at the pre-drain peak
  size_t resident_max = 0;
  bool gates_ok = true;
  std::map<std::string, AttestSummary> summaries;
  std::vector<FreshnessRecord> heartbeat_records;
};

void fail(RowResult& row, const char* what) {
  std::printf("  !! %s: %s\n", variant_name(row.variant), what);
  row.gates_ok = false;
}

void provision(Fleet& fleet, size_t devices, RowResult& row) {
  for (size_t i = 0; i < devices; ++i) {
    DeviceSession& dev =
        fleet.provision(device_id(i), firmware(0), "fw", policy_for(i),
                        {.cfa = {.log_capacity = 65536}});
    dev.run_to_symbol("halt", 100000);
    dev.run(kHaltSpin);
  }
  for (size_t i = 0; i < devices; ++i) {
    if (!diverged(i)) continue;
    DeviceSession& dev = fleet.at(device_id(i));
    const crypto::Digest key = fleet.update_key(device_id(i));
    casu::UpdateAuthority authority(
        std::span<const uint8_t>(key.data(), key.size()));
    if (dev.apply_update(authority.make_package(
            0xE800, dev.firmware_version() + 1, {0x03, 0x43})) !=
        casu::UpdateStatus::kApplied) {
      fail(row, "rogue package refused");
    }
  }
}

// Fold one barrier sweep into the per-device summary map.
void fold_sweep(std::map<std::string, AttestSummary>& acc,
                const std::vector<VerifierService::AttestResult>& results) {
  for (const auto& r : results) fold(acc[r.device_id], r);
}

// Drive the windowed verifier until no CFA device holds evidence.
bool drain_windowed(Fleet& fleet, IncrementalVerifier& verifier,
                    common::ThreadPool* pool) {
  for (int guard = 0; guard < 100000; ++guard) {
    bool pending = false;
    for (DeviceSession* s : fleet.sessions()) {
      if (s->cfa_monitor() != nullptr && s->cfa_monitor()->log_size() > 0) {
        pending = true;
        break;
      }
    }
    if (!pending) return true;
    const Tick next = fleet.clock().now() + verifier.options().period;
    if (pool == nullptr) {
      verifier.run_until(next);
    } else {
      verifier.run_until(next, *pool);
    }
  }
  return false;
}

RowResult run_variant(Variant variant, size_t devices, size_t threads) {
  RowResult row;
  row.variant = variant;
  row.devices = devices;
  common::ThreadPool pool(threads);
  common::ThreadPool* windowed_pool =
      variant == Variant::kWindowedPooled ? &pool : nullptr;

  auto t0 = clock_type::now();
  Fleet fleet;
  provision(fleet, devices, row);
  row.provision_ms = ms_since(t0);

  // Memory-diet snapshot at the pre-drain peak: boot workload run,
  // every CFA log still resident.
  {
    size_t total = 0;
    for (DeviceSession* dev : fleet.sessions()) {
      const size_t bytes = dev->resident_memory_bytes();
      total += bytes;
      if (bytes > row.resident_max) row.resident_max = bytes;
    }
    row.resident_mean =
        static_cast<double>(total) / static_cast<double>(devices);
  }

  // Campaign waves: the updatable CFA devices in id order, quartered.
  // (Diverged devices would kImageMismatch the diff; health remediation
  // owns those -- see bench_fleet_health.)
  std::vector<std::string> wave_pool;
  for (size_t i = 0; i < devices; ++i) {
    if (is_cfa(i) && !diverged(i)) {
      wave_pool.push_back(device_id(i));
      ++row.cfa_devices;
    }
    if (is_cfa(i) && diverged(i)) ++row.cfa_devices;
  }
  auto golden = fleet.build(firmware(1), "fw", {.eilid = false});

  IncrementalOptions window_options = {
      .period = 10,
      .max_devices_per_tick = devices / 16 + 1,
      .max_bytes_per_slice = 128 * cfa::LoggedEdge::kWireBytes};
  IncrementalVerifier windowed(fleet, window_options);

  t0 = clock_type::now();
  // Phase 0: boot evidence (diverged devices convict here).
  if (variant == Variant::kBarrier) {
    fold_sweep(row.summaries, fleet.verifier().verify_all());
  } else if (!drain_windowed(fleet, windowed, windowed_pool)) {
    fail(row, "windowed verifier never drained boot evidence");
  }

  // Heartbeat window: PAISA-style periodic announcements over the
  // whole fleet, with a slice of devices unreachable so the
  // exponential backoff path runs at scale. The clock is normalized to
  // a fixed tick first so the three variants (whose drains consumed
  // different numbers of rounds) beat on identical absolute schedules
  // -- the records are then gated bit-identical across variants.
  {
    fleet.clock().advance_to(kHeartbeatStart);
    for (size_t i = 0; i < devices; ++i) {
      if (unreachable(i)) fleet.at(device_id(i)).set_online(false);
    }
    HeartbeatScheduler heartbeats(
        fleet, {.period = 50, .jitter = 20, .max_backoff_exponent = 4});
    auto hb0 = clock_type::now();
    if (windowed_pool == nullptr) {
      heartbeats.run_until(kHeartbeatStart + 1000);
    } else {
      heartbeats.run_until(kHeartbeatStart + 1000, *windowed_pool);
    }
    row.heartbeat_ms = ms_since(hb0);
    row.heartbeat_records = heartbeats.records();
    for (size_t i = 0; i < devices; ++i) {
      if (unreachable(i)) fleet.at(device_id(i)).set_online(true);
    }
    size_t backed_off = 0;
    for (const FreshnessRecord& record : row.heartbeat_records) {
      if (record.misses > 0) {
        ++backed_off;
        // 20 periods fit in the window; backoff must have collapsed
        // the miss run to a handful of due beats.
        if (record.misses > 6) fail(row, "backoff did not engage");
      } else if (record.heartbeats == 0) {
        fail(row, "reachable device never beat");
      }
    }
    size_t expect_offline = 0;
    for (size_t i = 0; i < devices; ++i) {
      if (unreachable(i)) ++expect_offline;
    }
    if (backed_off != expect_offline) {
      fail(row, "offline device count wrong in heartbeat records");
    }
  }

  // Rolling campaign: each wave updates a quarter of the fleet, then
  // verification drains the epoch markers plus the new generation's
  // evidence -- mid-window for the incremental variants.
  UpdateCampaign campaign = fleet.stage_update(golden);
  for (size_t wave = 0; wave < kWaves; ++wave) {
    const size_t begin = wave * wave_pool.size() / kWaves;
    const size_t end = (wave + 1) * wave_pool.size() / kWaves;
    for (size_t w = begin; w < end; ++w) {
      DeviceSession& dev = fleet.at(wave_pool[w]);
      UpdateOutcome outcome = campaign.apply_to(dev);
      if (!outcome.ok()) fail(row, "campaign wave update refused");
      dev.power_cycle();  // reboot into the shifted image
      dev.run_to_symbol("halt", 100000);
      dev.run(kHaltSpin);
    }
    if (variant == Variant::kBarrier) {
      fold_sweep(row.summaries, fleet.verifier().verify_all());
    } else if (!drain_windowed(fleet, windowed, windowed_pool)) {
      fail(row, "windowed verifier never drained a wave");
    }
  }
  row.verify_ms = ms_since(t0);

  if (variant != Variant::kBarrier) {
    for (const AttestSummary& s : windowed.summaries()) {
      row.summaries[s.device_id] = s;
    }
  }
  for (const auto& [id, summary] : row.summaries) {
    (void)id;
    row.edges += summary.edges;
    if (summary.convicted()) ++row.convicted;
  }

  // Conviction membership: exactly the diverged devices.
  std::set<std::string> expect;
  for (size_t i = 0; i < devices; ++i) {
    if (diverged(i)) expect.insert(device_id(i));
  }
  std::set<std::string> got;
  for (const auto& [id, summary] : row.summaries) {
    if (summary.convicted()) got.insert(id);
  }
  if (got != expect) fail(row, "conviction membership wrong");

  if (row.resident_mean > kMeanResidentGate) {
    fail(row, "mean resident bytes/device over gate");
  }
  if (row.resident_max > kMaxResidentGate) {
    fail(row, "max resident bytes/device over gate");
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const size_t devices = smoke ? 512 : 10000;
  const size_t threads = 4;

  std::vector<RowResult> rows;
  // Sequential by design: one fleet resident at a time bounds the
  // bench's own peak memory to a single 10k fleet.
  rows.push_back(run_variant(Variant::kBarrier, devices, threads));
  rows.push_back(run_variant(Variant::kWindowedSerial, devices, threads));
  rows.push_back(run_variant(Variant::kWindowedPooled, devices, threads));
  const RowResult& barrier = rows[0];

  std::printf("Fleet 10k (%s): %zu devices (%zu CFA), 4-wave rolling "
              "campaign, windowed slices of %zu edges\n",
              smoke ? "smoke" : "full", devices, barrier.cfa_devices,
              size_t{128});
  std::printf("%16s | %12s | %10s | %12s | %10s | %9s\n", "variant",
              "provision ms", "verify ms", "verdict edges", "convicted",
              "speedup");
  bool ok = true;
  for (const RowResult& row : rows) {
    std::printf("%16s | %12.2f | %10.2f | %12llu | %10zu | %8.2fx\n",
                variant_name(row.variant), row.provision_ms, row.verify_ms,
                static_cast<unsigned long long>(row.edges), row.convicted,
                row.verify_ms > 0 ? barrier.verify_ms / row.verify_ms : 0.0);
    if (!row.gates_ok) {
      std::printf("  !! %s: correctness gate failed\n",
                  variant_name(row.variant));
      ok = false;
    }
    if (!(row.summaries == barrier.summaries)) {
      std::printf("  !! %s: summaries diverge from the barrier sweep\n",
                  variant_name(row.variant));
      ok = false;
    }
    if (!(row.heartbeat_records == barrier.heartbeat_records)) {
      std::printf("  !! %s: heartbeat records diverge across variants\n",
                  variant_name(row.variant));
      ok = false;
    }
  }
  std::printf("resident bytes/device at peak: mean %.0f, max %zu "
              "(flat design: 65536 + log)\n",
              barrier.resident_mean, barrier.resident_max);

  std::string rows_json;
  for (const RowResult& row : rows) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"policy\": \"%s\", \"provision_ms\": %.2f, "
        "\"verify_ms\": %.2f, \"heartbeat_ms\": %.2f, "
        "\"edges\": %llu, \"convicted\": %zu, "
        "\"resident_bytes_per_device\": %.0f, "
        "\"resident_bytes_per_device_max\": %zu, "
        "\"speedup_resident_vs_flat\": %.2f, "
        "\"speedup_vs_barrier\": %.2f, \"gates_ok\": %s},\n",
        variant_name(row.variant), row.provision_ms, row.verify_ms,
        row.heartbeat_ms,
        static_cast<unsigned long long>(row.edges), row.convicted,
        row.resident_mean, row.resident_max,
        row.resident_mean > 0 ? 65536.0 / row.resident_mean : 0.0,
        row.verify_ms > 0 ? barrier.verify_ms / row.verify_ms : 0.0,
        row.gates_ok ? "true" : "false");
    rows_json += buf;
  }
  if (!rows_json.empty()) rows_json.resize(rows_json.size() - 2);
  FILE* json = std::fopen("BENCH_fleet_10k.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"fleet_10k\",\n  \"mode\": \"%s\",\n"
                 "  \"devices\": %zu,\n  \"rows\": [\n%s\n  ],\n"
                 "  \"ok\": %s\n}\n",
                 smoke ? "smoke" : "full", devices, rows_json.c_str(),
                 ok ? "true" : "false");
    std::fclose(json);
  }

  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
