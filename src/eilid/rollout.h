// Staged-rollout orchestration over update campaigns: the first
// subsystem where attestation verdicts feed back into fleet control
// flow instead of just being reported. A RolloutPlan is an ordered
// list of waves -- explicit device sets or percentage cuts of the
// registry -- plus named A/B cohorts *held* on their current build,
// a per-plan FailureBudget, and an optional rate limit. The
// CampaignScheduler executes the plan wave by wave:
//
//   1. apply the campaign to the wave's devices (under the existing
//      per-device session locks; at most max_in_flight at once),
//   2. run the wave probe, if any (normally a workload driver, so the
//      gate judges evidence from the *new* firmware actually running),
//   3. run the attestation gate: a VerifierService subset sweep over
//      just that wave (devices still on the old build are not swept),
//   4. promote to the next wave only while the number of failed
//      devices stays within the budget; on a breach the scheduler
//      halts, later waves stay on their current build, and the report
//      carries per-wave outcomes plus the halt reason.
//
// A device fails its wave when its update outcome is not ok()
// (forged/tampered package, rollback, image mismatch, incompatible
// transition) or when its gate verdict convicts it (attested but not
// ok() -- e.g. a control-flow hijack the CFA log reveals). Held
// devices are never updated, never swept, and never counted.
//
// Two time-driven extensions ride the fleet's deterministic clock
// (eilid/clock.h):
//
//   - Soak windows (plan.soak_ticks > 0): after a wave applies and
//     passes an immediate post-apply sweep, the scheduler runs the
//     probe, advances fleet time by soak_ticks, and re-sweeps the wave
//     before promoting -- a compromise that only manifests once the
//     new firmware has actually run (the classic time-bomb canary) is
//     caught by the *second* sweep, and both sweeps' verdicts count
//     against the budget. Waves stamp applied/gated ticks either way.
//   - Automatic rollback on halt (plan.rollback_on_halt): when a wave
//     breaches its budget, every device the halted run already moved
//     to the target build is driven *back* to the exact build it ran
//     before its wave -- a genuine reverse campaign per distinct prior
//     build (core::diff_builds is symmetric; see eilid/update.h), with
//     fresh epoch markers and replay-CFG swaps back, so rolled-back
//     devices keep attesting clean. No operator action, no special
//     downgrade path.
//
//   eilid::RolloutPlan plan;
//   plan.holds = {{"ab-cohort", {"unit-f", "unit-g"}}};
//   plan.waves = {{.name = "canary", .device_ids = {"unit-a"}},
//                 {.name = "rest", .fraction = 1.0}};
//   plan.soak_ticks = 50;          // re-sweep 50 ticks after apply
//   plan.rollback_on_halt = true;  // a halt undoes the partial rollout
//   auto report = fleet.plan_rollout(v2, plan).run(pool);
//   if (report.halted) { /* canary burned; the fleet rolled back */ }
//
// Concurrency contract: run(pool) applies updates, probes and gates
// over the pool with the same per-device locking as
// UpdateCampaign::roll_out() and VerifierService::verify_all(); its
// report is bit-identical to the serial run()'s -- wave membership is
// resolved up front from the plan and the registry snapshot, every
// per-device outcome depends only on that device's own state, and the
// halt decision is a pure function of the per-wave verdicts.
#ifndef EILID_EILID_ROLLOUT_H
#define EILID_EILID_ROLLOUT_H

#include <algorithm>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "eilid/fleet.h"
#include "eilid/update.h"

namespace eilid {

// How many failed devices one wave may absorb before the plan halts:
// an absolute count and/or a fraction of the wave, whichever allows
// more. The default tolerates nothing.
struct FailureBudget {
  size_t max_count = 0;
  double max_fraction = 0.0;  // of the wave's size, floor()ed

  size_t allowance(size_t wave_size) const {
    const auto by_fraction =
        static_cast<size_t>(max_fraction * static_cast<double>(wave_size));
    return std::max(max_count, by_fraction);
  }
};

// One wave: either an explicit device set, or a fraction of the
// *eligible remainder* (registered devices not held and not claimed by
// an earlier wave, in deployment order; 1.0 takes everything left).
// Exactly one of the two must be set. Held devices named explicitly
// are skipped, not updated.
struct WaveSpec {
  std::string name;                     // "" -> "wave-<N>" in the report
  std::vector<std::string> device_ids;  // explicit membership ...
  double fraction = 0.0;                // ... or a cut of the remainder
};

// A named A/B cohort pinned to whatever build it currently runs. The
// scheduler must skip its devices: they join no wave, no gate sweeps
// them, and the report lists them so the hold is auditable.
struct HoldSpec {
  std::string name;
  std::vector<std::string> device_ids;
};

// Runs between a wave's apply and its attestation gate -- normally a
// workload driver (see apps::wave_workload) so freshly updated devices
// produce post-update evidence for the gate to judge. `pool` is null
// on a serial run. The probe must take each session's mutex() while
// driving it (apps::wave_workload does).
using WaveProbe =
    std::function<void(const std::vector<DeviceSession*>&,
                       common::ThreadPool*)>;

struct RolloutPlan {
  std::vector<WaveSpec> waves;
  FailureBudget budget;
  std::vector<HoldSpec> holds;
  // Max devices being updated at once within a wave (0 = no limit
  // beyond the pool's width). Serial runs are inherently 1-in-flight.
  size_t max_in_flight = 0;
  WaveProbe probe;  // optional
  // Soak window: after a wave applies (and passes its immediate
  // post-apply sweep), run the probe, advance the fleet clock by this
  // many ticks, and sweep the wave *again* before promoting. Both
  // sweeps count against the budget. 0 = no soak: one sweep, probe
  // before it (the original flow).
  Tick soak_ticks = 0;
  // On a budget breach, drive every device this run moved to the
  // target back to the exact build it ran before its wave (reverse
  // campaigns; see the header comment). Devices whose update never
  // swapped the build are left alone.
  bool rollback_on_halt = false;
};

// Per-wave slice of the report. Later waves of a halted plan are
// still reported (membership, allowance) with applied = false.
struct WaveOutcome {
  std::string name;
  std::vector<std::string> device_ids;  // resolved membership order
  std::vector<UpdateOutcome> updates;   // one per device, same order
  // Soaking plans only: the immediate post-apply sweep (before the
  // probe and the soak window). Empty when soak_ticks == 0.
  std::vector<VerifierService::AttestResult> soak_gate;
  // The promoting attestation gate over exactly this wave, in
  // enrollment-id order (the subset-sweep contract). With a soak
  // window this is the *re*-sweep after soaked firmware has run.
  std::vector<VerifierService::AttestResult> gate;
  // Fleet-clock stamps (0 on waves a halt left untouched).
  Tick applied_tick = 0;  // when the wave's updates were applied
  Tick gated_tick = 0;    // when the promoting gate swept
  Tick soaked_until = 0;  // clock after the soak window (0: no soak)
  // rollback_on_halt only: the reverse-campaign outcome per device,
  // parallel to device_ids (kAlreadyCurrent for devices whose forward
  // update never swapped the build), and whether that device's build
  // was actually swapped back. Empty on runs that never rolled back.
  std::vector<UpdateOutcome> rollbacks;
  std::vector<bool> rolled_back;
  size_t failures = 0;   // distinct devices failing update and/or gates
  size_t allowance = 0;  // budget.allowance(wave size)
  bool applied = false;  // campaign + gate ran on this wave
  bool within_budget = false;  // failures <= allowance (when applied)

  bool operator==(const WaveOutcome&) const = default;
};

struct RolloutReport {
  std::vector<WaveOutcome> waves;  // one per plan wave, in plan order
  std::vector<std::string> held;   // ids pinned by holds, sorted
  size_t waves_applied = 0;
  bool halted = false;
  std::string halt_reason;  // "" unless halted
  bool rolled_back = false;  // a halt triggered the automatic rollback
  Tick rollback_tick = 0;    // fleet clock when the rollback ran

  bool ok() const { return !halted; }
  bool operator==(const RolloutReport&) const = default;
};

// Executes one RolloutPlan over one UpdateCampaign. Created by
// Fleet::plan_rollout(). run() may be called repeatedly (a re-run
// sees devices already on the target as kAlreadyCurrent); each run
// resolves wave membership afresh against the current registry.
// Throws eilid::FleetError on a malformed plan: a wave with both (or
// neither) of device_ids/fraction, a fraction outside [0, 1], an
// unknown device id, or a device claimed by two waves.
class CampaignScheduler {
 public:
  const RolloutPlan& plan() const { return plan_; }
  const UpdateCampaign& campaign() const { return campaign_; }

  RolloutReport run();
  RolloutReport run(common::ThreadPool& pool);

 private:
  friend class Fleet;
  CampaignScheduler(Fleet& fleet, UpdateCampaign campaign, RolloutPlan plan);

  struct Resolved {
    std::vector<std::vector<DeviceSession*>> waves;
    std::vector<std::string> held;
  };
  Resolved resolve() const;
  RolloutReport execute(common::ThreadPool* pool);
  std::vector<UpdateOutcome> apply_wave(
      const std::vector<DeviceSession*>& wave, common::ThreadPool* pool);
  // Reverse every swapped device in `touched` (session -> the build it
  // ran before its wave) back onto that prior build, filling each
  // wave's rollbacks/rolled_back slots. Runs under the same chunked
  // max_in_flight fan-out as apply_wave.
  void roll_back(
      RolloutReport& report,
      const std::vector<std::vector<DeviceSession*>>& waves,
      const std::map<DeviceSession*,
                     std::shared_ptr<const core::BuildResult>>& prior_builds,
      common::ThreadPool* pool);

  Fleet* fleet_;
  UpdateCampaign campaign_;
  RolloutPlan plan_;
};

}  // namespace eilid

#endif  // EILID_EILID_ROLLOUT_H
