#include "common/strings.h"

#include <algorithm>
#include <cctype>

namespace eilid {

std::string trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_operands(std::string_view s) {
  std::vector<std::string> out;
  for (auto& piece : split(s, ',')) {
    auto t = trim(piece);
    if (!t.empty()) out.push_back(std::move(t));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '$';
  };
  auto body = [&](char c) { return head(c) || std::isdigit(static_cast<unsigned char>(c)); };
  if (!head(s[0])) return false;
  return std::all_of(s.begin() + 1, s.end(), body);
}

}  // namespace eilid
