// MSP430 opcode space: 12 double-operand (Format I), 7 single-operand
// (Format II) and 8 relative-jump instructions. Emulated mnemonics
// (ret, pop, br, nop, clr, ...) are expanded by the assembler front end
// (src/masm) and never appear at this layer.
#ifndef EILID_ISA_OPCODES_H
#define EILID_ISA_OPCODES_H

#include <cstdint>
#include <optional>
#include <string>

namespace eilid::isa {

enum class Format : uint8_t { kDouble, kSingle, kJump };

enum class Opcode : uint8_t {
  // Format I (two-operand); encoding nibble 0x4..0xF.
  kMov, kAdd, kAddc, kSubc, kSub, kCmp, kDadd, kBit, kBic, kBis, kXor, kAnd,
  // Format II (one-operand); encoded under 000100 prefix.
  kRrc, kSwpb, kRra, kSxt, kPush, kCall, kReti,
  // Conditional/unconditional jumps; encoded under 001 prefix.
  kJnz, kJz, kJnc, kJc, kJn, kJge, kJl, kJmp,
};

struct OpcodeInfo {
  Opcode op;
  Format format;
  const char* mnemonic;  // canonical lowercase spelling
  uint16_t bits;         // format-specific major opcode bits
  bool allows_byte;      // supports the .b suffix
};

// Metadata for every opcode; indexed by static_cast<size_t>(op).
const OpcodeInfo& opcode_info(Opcode op);

// Lookup by mnemonic (lowercase, no .b suffix). Also accepts the
// aliases jne (jnz), jeq (jz), jlo (jnc), jhs (jc).
std::optional<Opcode> opcode_from_mnemonic(const std::string& mnemonic);

inline bool is_jump(Opcode op) { return opcode_info(op).format == Format::kJump; }
inline bool is_single(Opcode op) { return opcode_info(op).format == Format::kSingle; }
inline bool is_double(Opcode op) { return opcode_info(op).format == Format::kDouble; }

}  // namespace eilid::isa

#endif  // EILID_ISA_OPCODES_H
