// CASU hardware monitor (De Oliveira Nunes et al., ICCAD'22), modeled
// at the bus-signal level. CASU guarantees:
//   - software immutability: no writes to PMEM except during an
//     authenticated update session driven from secure ROM,
//   - W^X: no instruction fetch from data memory,
//   - secure-ROM atomicity: ROM is entered only through a single gate,
//     left only through the leave section, never written, and
//     uninterruptible while executing,
//   - key isolation: the device key region is readable only by ROM.
// Violations latch a ResetReason and deny the access; the machine then
// resets the device -- CASU's enforcement action.
#ifndef EILID_CASU_MONITOR_H
#define EILID_CASU_MONITOR_H

#include <optional>

#include "sim/memory_map.h"
#include "sim/monitor.h"

namespace eilid::casu {

struct CasuConfig {
  uint16_t rom_start = sim::kRomStart;
  uint16_t rom_end = sim::kRomEnd;
  // Legal ROM entry section (EILIDsw's NS_* selector stubs). Jumps
  // into ROM may only land inside [entry_start, entry_end].
  uint16_t entry_start = sim::kRomStart;
  uint16_t entry_end = sim::kRomStart;
  // Legal exit source range (EILIDsw's `leave` section). Zero-width
  // range means "no legal exit" until configured.
  uint16_t leave_start = 0;
  uint16_t leave_end = 0;
  // Device-key region inside ROM (readable only while PC is in ROM).
  uint16_t key_start = 0xAFE0;
  uint16_t key_end = 0xAFFF;
  // False for devices with no trusted software installed (plain CASU
  // device running an uninstrumented app): ROM rules still protect the
  // region, but there is no entry gate to honour.
  bool rom_present = true;
};

class CasuMonitor : public sim::Monitor {
 public:
  explicit CasuMonitor(CasuConfig config = {}) : config_(config) {}

  const CasuConfig& config() const { return config_; }

  // --- sim::Monitor interface ---
  bool on_fetch(uint16_t pc) override;
  bool on_read(uint16_t addr, uint16_t pc) override;
  bool on_write(uint16_t addr, uint16_t value, bool byte, uint16_t pc) override;
  // All CASU enforcement snoops the bus (per-access hooks above);
  // per-instruction retire callouts are never consumed, so CASU-policed
  // devices stay eligible for superblock dispatch.
  bool wants_step() const override { return false; }
  std::optional<sim::ResetReason> pending_violation() const override {
    return violation_;
  }
  void clear_violation() override { violation_.reset(); }
  void on_device_reset() override;
  bool allow_interrupt(uint16_t current_pc) override;

  // --- secure-update session (driven by casu::UpdateEngine) ---
  void begin_update_session() { update_session_ = true; }
  void end_update_session() { update_session_ = false; }
  bool update_session_active() const { return update_session_; }

  // Latched by the update engine when a package MAC fails verification.
  void report_update_auth_failure() {
    if (!violation_) violation_ = sim::ResetReason::kUpdateAuthFailure;
  }

  // Latched by the update engine when a validly MAC'd package replays
  // an old version (anti-rollback): a genuine-looking but stale package
  // is an attack signal, so the device heals by reset like any other
  // update abuse.
  void report_update_rollback() {
    if (!violation_) violation_ = sim::ResetReason::kUpdateRollback;
  }

  bool in_rom(uint16_t addr) const {
    return addr >= config_.rom_start && addr <= config_.rom_end;
  }

 protected:
  // Latch a violation (first one wins within a step) and deny.
  bool violate(sim::ResetReason reason);

 private:
  bool in_leave(uint16_t addr) const {
    return addr >= config_.leave_start && addr <= config_.leave_end &&
           config_.leave_start != 0;
  }
  bool in_key(uint16_t addr) const {
    return addr >= config_.key_start && addr <= config_.key_end;
  }
  static sim::ResetReason map_violation_code(uint16_t code);

  CasuConfig config_;
  std::optional<sim::ResetReason> violation_;
  bool update_session_ = false;
  uint16_t prev_fetch_pc_ = 0;
  bool prev_fetch_valid_ = false;
};

}  // namespace eilid::casu

#endif  // EILID_CASU_MONITOR_H
