// Crypto substrate tests: SHA-256 against FIPS/NIST vectors,
// HMAC-SHA256 against RFC 4231, and structural properties.
#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace eilid::crypto {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: padding spills into a second block.
  std::string m(64, 'a');
  EXPECT_EQ(digest_hex(sha256(m)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, FinishResetsForReuse) {
  Sha256 h;
  h.update("abc");
  Digest first = h.finish();
  h.update("abc");
  Digest second = h.finish();
  EXPECT_EQ(first, second);
}

class Sha256Incremental : public ::testing::TestWithParam<int> {};

TEST_P(Sha256Incremental, SplitEqualsOneShot) {
  std::string msg;
  for (int i = 0; i < 200; ++i) msg.push_back(static_cast<char>('A' + i % 23));
  int split = GetParam();
  Sha256 h;
  h.update(msg.substr(0, static_cast<size_t>(split)));
  h.update(msg.substr(static_cast<size_t>(split)));
  EXPECT_EQ(h.finish(), sha256(msg)) << "split at " << split;
}

INSTANTIATE_TEST_SUITE_P(Splits, Sha256Incremental,
                         ::testing::Values(0, 1, 31, 32, 55, 56, 63, 64, 65,
                                           127, 128, 199, 200));

TEST(Hmac, Rfc4231Case1) {
  std::vector<uint8_t> key(20, 0x0b);
  auto mac = hmac_sha256(
      std::span<const uint8_t>(key.data(), key.size()),
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>("Hi There"), 8));
  EXPECT_EQ(digest_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  auto mac = hmac_sha256("Jefe", "what do ya want for nothing?");
  EXPECT_EQ(digest_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  std::vector<uint8_t> key(20, 0xaa);
  std::vector<uint8_t> msg(50, 0xdd);
  auto mac = hmac_sha256(std::span<const uint8_t>(key.data(), key.size()),
                         std::span<const uint8_t>(msg.data(), msg.size()));
  EXPECT_EQ(digest_hex(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  std::vector<uint8_t> key(131, 0xaa);
  auto mac = hmac_sha256(
      std::span<const uint8_t>(key.data(), key.size()),
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(
              "Test Using Larger Than Block-Size Key - Hash Key First"),
          54));
  EXPECT_EQ(digest_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DigestEqualDetectsDifference) {
  Digest a = sha256("x");
  Digest b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(Hmac, DerivedKeysAreDomainSeparated) {
  std::vector<uint8_t> master(32, 0x11);
  auto k1 = derive_key(std::span<const uint8_t>(master.data(), master.size()),
                       "casu-update");
  auto k2 = derive_key(std::span<const uint8_t>(master.data(), master.size()),
                       "cfa-attest");
  EXPECT_FALSE(digest_equal(k1, k2));
}

}  // namespace
}  // namespace eilid::crypto
