// Reproduces Table II: call/return/return-from-interrupt/indirect-call
// instructions on popular low-end MCU platforms, and verifies (for the
// MSP430 row) that our ISA layer actually implements each one.
#include <cstdio>

#include "src/common/error.h"
#include "src/isa/encoder.h"
#include "src/isa/opcodes.h"
#include "src/masm/assembler.h"

using namespace eilid;

namespace {

// Assemble a one-line body and return true if it encodes.
bool encodes(const std::string& line) {
  try {
    masm::assemble_text(".org 0xe000\n" + line + "\n", "probe");
    return true;
  } catch (const Error&) {
    return false;
  }
}

}  // namespace

int main() {
  std::printf("Table II: instruction set in low-end platforms\n");
  std::printf("%-18s %-8s %-8s %-22s %-14s\n", "Platform", "Call", "Return",
              "Return-from-Interrupt", "Indirect Call");
  for (int i = 0; i < 76; ++i) std::putchar('-');
  std::putchar('\n');
  std::printf("%-18s %-8s %-8s %-22s %-14s\n", "TI MSP430", "CALL", "RET",
              "RETI", "CALL");
  std::printf("%-18s %-8s %-8s %-22s %-14s\n", "AVR ATMega32", "CALL", "RET",
              "RETI", "RCALL, ICALL");
  std::printf("%-18s %-8s %-8s %-22s %-14s\n", "Microchip PIC16", "CALL",
              "RETURN", "RETFIE", "CALL, RCALL");

  std::printf("\nMSP430 row verified against this repo's ISA layer:\n");
  struct Probe {
    const char* what;
    const char* line;
  } probes[] = {
      {"CALL #imm (direct)", "call #0xe100"},
      {"RET", "ret"},
      {"RETI", "reti"},
      {"CALL Rn (indirect)", "call r13"},
      {"CALL @Rn (indirect)", "call @r12"},
  };
  bool all_ok = true;
  for (const auto& p : probes) {
    bool ok = encodes(p.line);
    all_ok = all_ok && ok;
    std::printf("  %-22s -> %s\n", p.what, ok ? "encodes" : "MISSING");
  }
  return all_ok ? 0 : 1;
}
