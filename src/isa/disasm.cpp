#include "isa/disasm.h"

#include "common/hex.h"
#include "isa/registers.h"

namespace eilid::isa {

std::string operand_text(const Operand& op) {
  switch (op.mode) {
    case AddrMode::kRegister:
      return reg_name(op.reg);
    case AddrMode::kIndexed: {
      int32_t x = op.value;
      std::string idx = (x < 0) ? ("-" + hex16(static_cast<uint16_t>(-x)))
                                : hex16(static_cast<uint16_t>(x));
      return idx + "(" + reg_name(op.reg) + ")";
    }
    case AddrMode::kSymbolic:
      return hex16(static_cast<uint16_t>(op.value));
    case AddrMode::kAbsolute:
      return "&" + hex16(static_cast<uint16_t>(op.value));
    case AddrMode::kIndirect:
      return "@" + reg_name(op.reg);
    case AddrMode::kIndirectInc:
      return "@" + reg_name(op.reg) + "+";
    case AddrMode::kImmediate: {
      int32_t v = op.value;
      if (v < 0) return "#-" + hex16(static_cast<uint16_t>(-v));
      return "#" + hex16(static_cast<uint16_t>(v));
    }
  }
  return "?";
}

namespace {

std::string mnemonic_text(const Instruction& insn) {
  std::string m = opcode_info(insn.op).mnemonic;
  if (insn.byte_mode) m += ".b";
  return m;
}

}  // namespace

std::string disassemble(const Instruction& insn) {
  const auto& info = opcode_info(insn.op);
  switch (info.format) {
    case Format::kJump: {
      // Offset relative to the instruction's own address, in bytes, as
      // "$+0xNN" (the '$' convention matches common MSP430 assemblers).
      int32_t delta = 2 + 2 * insn.jump_offset;
      std::string d = (delta < 0) ? ("$-" + hex16(static_cast<uint16_t>(-delta)))
                                  : ("$+" + hex16(static_cast<uint16_t>(delta)));
      return mnemonic_text(insn) + " " + d;
    }
    case Format::kSingle:
      if (insn.op == Opcode::kReti) return "reti";
      return mnemonic_text(insn) + " " + operand_text(insn.src);
    case Format::kDouble:
      return mnemonic_text(insn) + " " + operand_text(insn.src) + ", " +
             operand_text(insn.dst);
  }
  return "?";
}

std::string disassemble(const Decoded& decoded) {
  if (opcode_info(decoded.insn.op).format == Format::kJump) {
    return mnemonic_text(decoded.insn) + " " + hex16(decoded.jump_target());
  }
  return disassemble(decoded.insn);
}

}  // namespace eilid::isa
