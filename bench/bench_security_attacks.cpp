// Security evaluation (paper §III-C, P1-P3): runs the attack suite on
// an unprotected (CASU-only) device and on the EILID device, reporting
// outcome and real-time detection latency. All devices are provisioned
// from one Fleet, so the two vuln_gateway builds (plain, EILID) run
// the pipeline once each no matter how many scenarios reuse them. CFA
// comparisons live in bench_ablation_cfa_latency.
#include <cstdio>
#include <functional>
#include <string>

#include "src/apps/apps.h"
#include "src/attacks/attack.h"
#include "src/eilid/fleet.h"

using namespace eilid;

namespace {

Fleet g_fleet;
int g_device_counter = 0;

struct Outcome {
  bool hijacked = false;       // attacker goal reached
  bool detected = false;       // enforcement reset observed
  std::string reason;
  uint64_t latency_cycles = 0; // attack fire -> reset
};

DeviceSession& provision(const apps::AppSpec& app, bool eilid) {
  EnforcementPolicy policy =
      eilid ? EnforcementPolicy::kEilidHw : EnforcementPolicy::kCasu;
  std::string id = app.name + "-" + std::to_string(g_device_counter++);
  return g_fleet.provision(id, app.source, app.name, policy,
                           {.halt_on_reset = true});
}

// P1: UART stack-overflow exploit redirecting recv_packet's return to
// `unlock`. Hijack marker: 'U' on the UART.
Outcome run_p1(bool eilid) {
  const auto& app = apps::vuln_gateway();
  DeviceSession& device = provision(app, eilid);
  device.machine().uart().feed(
      attacks::overflow_ret_payload(device.symbol("unlock")));
  device.run_to_symbol("halt", app.cycle_budget);

  Outcome out;
  out.hijacked =
      device.machine().uart().tx_text().find('U') != std::string::npos;
  out.detected = device.violation_count() > 0;
  out.reason = device.last_reset_reason();
  return out;
}

// P2: tamper the saved interrupt context (return PC on the main stack)
// while the ISR body runs -- i.e. after the prologue stored it (the
// paper's P2: "the interrupt context stored on the main stack must
// remain intact while the ISR runs"). Hijack: the ISR "returns" to
// halt, truncating the run (fewer than 16 frames transmitted).
Outcome run_p2(bool eilid) {
  const auto& app = apps::app_by_name("light_sensor");
  DeviceSession& device = provision(app, eilid);
  app.setup(device.machine());

  attacks::AttackEngine engine(device.machine());
  attacks::Attack attack;
  attack.name = "isr-frame-tamper";
  attacks::MemWrite w;
  w.sp_relative = true;
  w.value = device.symbol("halt");
  if (eilid) {
    // Fire inside S_EILID_store_rfi: the prologue has pushed r6/r7 and
    // the veneer call pushed its return address, so the saved PC sits
    // at SP+8.
    attack.trigger = {attacks::Trigger::Kind::kAtPc,
                      device.build().rom.unit.symbols.at("S_EILID_store_rfi"),
                      1};
    w.addr = 8;
  } else {
    // No prologue on the plain device: saved PC at SP+2 at ISR entry.
    attack.trigger = {attacks::Trigger::Kind::kAtPc,
                      device.symbol("timer_isr"), 1};
    w.addr = 2;
  }
  attack.writes = {w};
  engine.schedule(attack);

  device.run_to_symbol("halt", app.cycle_budget);
  Outcome out;
  out.hijacked = device.machine().uart().tx_log().size() < 112 &&
                 device.violation_count() == 0;
  out.detected = device.violation_count() > 0;
  if (out.detected) {
    out.reason = device.last_reset_reason();
    out.latency_cycles =
        device.machine().resets().back().cycle - engine.last_fire_cycle();
  }
  return out;
}

// P3: overwrite the function pointer in RAM with `unlock` (not in the
// entry table). Hijack marker: 'U'.
Outcome run_p3(bool eilid) {
  const auto& app = apps::vuln_gateway();
  DeviceSession& device = provision(app, eilid);
  device.machine().uart().feed(attacks::benign_payload());

  attacks::AttackEngine engine(device.machine());
  attacks::Attack attack;
  attack.name = "fptr-hijack";
  attack.trigger = {attacks::Trigger::Kind::kAtPc, device.symbol("act"), 1};
  attacks::MemWrite w;
  w.addr = 0x0202;  // FPTR
  w.value = device.symbol("unlock");
  attack.writes = {w};
  engine.schedule(attack);

  device.run_to_symbol("halt", app.cycle_budget);
  Outcome out;
  out.hijacked =
      device.machine().uart().tx_text().find('U') != std::string::npos;
  out.detected = device.violation_count() > 0;
  if (out.detected) {
    out.reason = device.last_reset_reason();
    out.latency_cycles =
        device.machine().resets().back().cycle - engine.last_fire_cycle();
  }
  return out;
}

// Code injection: shellcode into RAM, return redirected into it. CASU
// W^X stops this on BOTH devices (EILID inherits it).
Outcome run_wx(bool eilid) {
  const auto& app = apps::vuln_gateway();
  DeviceSession& device = provision(app, eilid);
  // Redirect the overflowed return straight into RAM (0x0300), where
  // the adversary staged shellcode.
  device.machine().bus().raw_store_word(0x0300, 0x4303);  // nop
  device.machine().uart().feed(attacks::overflow_ret_payload(0x0300));
  device.run_to_symbol("halt", app.cycle_budget);

  Outcome out;
  out.detected = device.violation_count() > 0;
  out.reason = device.last_reset_reason();
  out.hijacked = !out.detected;
  return out;
}

void report(const char* name, const char* property,
            const std::function<Outcome(bool)>& scenario) {
  Outcome plain = scenario(false);
  Outcome eilid = scenario(true);
  std::printf("%-22s %-4s | %-11s %-22s | %-11s %-22s", name, property,
              plain.hijacked ? "HIJACKED" : (plain.detected ? "reset" : "no-op"),
              plain.detected ? plain.reason.c_str() : "-",
              eilid.hijacked ? "HIJACKED" : (eilid.detected ? "reset" : "no-op"),
              eilid.detected ? eilid.reason.c_str() : "-");
  if (eilid.detected && eilid.latency_cycles > 0) {
    std::printf(" | %llu cycles",
                static_cast<unsigned long long>(eilid.latency_cycles));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Security evaluation: attack outcomes (unprotected CASU device "
              "vs EILID device)\n");
  std::printf("%-22s %-4s | %-34s | %-34s | %s\n", "Attack", "Prop",
              "CASU-only device", "EILID device", "EILID latency");
  for (int i = 0; i < 120; ++i) std::putchar('-');
  std::putchar('\n');
  report("stack-smash return", "P1", run_p1);
  report("ISR frame tamper", "P2", run_p2);
  report("function-ptr hijack", "P3", run_p3);
  report("code injection (W^X)", "-", run_wx);
  std::printf("\nEILID stops every control-flow attack in real time (tens of "
              "cycles); the\nunprotected device is hijacked except for code "
              "injection, which CASU's W^X\nalready prevents (the paper's "
              "baseline guarantee).\n");
  std::printf("(%zu devices from %zu pipeline runs; the build cache served "
              "%zu hits.)\n",
              g_fleet.size(), g_fleet.pipeline_runs(),
              g_fleet.build_cache_hits());
  return 0;
}
