#include "eilid/session.h"

#include <span>
#include <utility>
#include <vector>

#include "common/error.h"
#include "sim/memory_map.h"

namespace eilid {

std::string_view enforcement_policy_name(EnforcementPolicy policy) {
  switch (policy) {
    case EnforcementPolicy::kNone: return "none";
    case EnforcementPolicy::kCasu: return "casu";
    case EnforcementPolicy::kCfaBaseline: return "cfa-baseline";
    case EnforcementPolicy::kEilidHw: return "eilid-hw";
  }
  return "?";
}

std::string_view execution_engine_name(ExecutionEngine engine) {
  switch (engine) {
    case ExecutionEngine::kInterpretive: return "interpretive";
    case ExecutionEngine::kPredecoded: return "predecoded";
    case ExecutionEngine::kSuperblock: return "superblock";
  }
  return "?";
}

namespace {

core::EilidHwConfig hw_config_for(const core::BuildResult& build) {
  core::EilidHwConfig cfg;
  if (build.rom.unit.image.size_bytes() == 0) {
    cfg.casu.rom_present = false;
  } else {
    cfg.casu.rom_present = true;
    cfg.casu.entry_start = build.rom.entry_start;
    cfg.casu.entry_end = build.rom.entry_end;
    cfg.casu.leave_start = build.rom.leave_start;
    cfg.casu.leave_end = build.rom.leave_end;
  }
  return cfg;
}

}  // namespace

DeviceSession::DeviceSession(std::string device_id,
                             std::shared_ptr<const core::BuildResult> build,
                             EnforcementPolicy policy, SessionOptions options)
    : id_(std::move(device_id)),
      build_(std::move(build)),
      policy_(policy),
      options_(options),
      machine_(options.clock_hz) {
  if (!build_) {
    throw FleetError("session '" + id_ + "': null build");
  }
  const bool rom_in_build = build_->rom.unit.image.size_bytes() != 0;
  if (policy_ == EnforcementPolicy::kEilidHw && !rom_in_build) {
    throw FleetError("session '" + id_ +
                     "': kEilidHw needs an instrumented build (EILIDsw "
                     "missing; build with BuildOptions.eilid = true)");
  }

  switch (policy_) {
    case EnforcementPolicy::kNone:
      break;
    case EnforcementPolicy::kCasu:
    case EnforcementPolicy::kCfaBaseline:
    case EnforcementPolicy::kEilidHw: {
      hw_monitor_ =
          std::make_unique<core::EilidHwMonitor>(hw_config_for(*build_));
      machine_.add_monitor(hw_monitor_.get());
      break;
    }
  }
  if (policy_ == EnforcementPolicy::kCfaBaseline) {
    cfa_monitor_ =
        std::make_unique<cfa::CfaMonitor>(options_.attest_key, options_.cfa);
    machine_.add_monitor(cfa_monitor_.get());
  }
  // The update engine is bound to this session's machine and monitor
  // for the session's whole life: an update aimed at this device can
  // never land anywhere else.
  update_engine_ = std::make_unique<casu::UpdateEngine>(
      std::span<const uint8_t>(options_.update_key.data(),
                               options_.update_key.size()),
      machine_, hw_monitor_.get());
  machine_.set_halt_on_reset(options_.halt_on_reset);

  // Flash by attaching the build's shared flat image as the machine's
  // copy-on-write base (sim::PagedMemory) instead of copying 64 KiB
  // per device: the bytes are identical to chunk-wise loads over
  // zeroed memory -- flat_memory() is chunks blitted over zeros -- but
  // N sessions of one build now share one image and privately own only
  // the pages they dirty. Builds made outside build_app may lack the
  // cached snapshot; take the one-off copy then.
  machine_.bus().attach_base_image(
      build_->flat_image != nullptr
          ? build_->flat_image
          : std::make_shared<const std::vector<uint8_t>>(
                core::flat_memory(*build_)));
  // Attach the build's shared execution tables *after* the flash (the
  // attachment snapshots the bus's code generation, so it must see the
  // flashed state). Every session of this build shares the same tables.
  attach_engine_tables();
  machine_.power_on();
}

void DeviceSession::attach_engine_tables() {
  if (options_.engine == ExecutionEngine::kInterpretive) return;
  if (build_->decoded_image != nullptr) {
    machine_.attach_decoded_image(build_->decoded_image);
  }
  if (options_.engine == ExecutionEngine::kSuperblock &&
      build_->block_image != nullptr) {
    machine_.attach_block_image(build_->block_image);
  }
}

uint16_t DeviceSession::symbol(const std::string& name) const {
  auto it = build_->app.symbols.find(name);
  if (it == build_->app.symbols.end()) {
    throw FleetError("session '" + id_ + "': unknown app symbol: " + name);
  }
  return it->second;
}

sim::RunResult DeviceSession::run_to_symbol(const std::string& name,
                                            uint64_t max_cycles) {
  return machine_.run_until(symbol(name), max_cycles);
}

casu::UpdateStatus DeviceSession::apply_update(
    const casu::UpdatePackage& package) {
  casu::UpdateStatus status = update_engine_->apply(package);
  if (status == casu::UpdateStatus::kApplied && cfa_monitor_ != nullptr) {
    cfa_monitor_->on_update_applied();
  }
  return status;
}

casu::ChunkAck DeviceSession::receive_update_chunk(
    const casu::TransferChunk& chunk) {
  return update_engine_->receive_chunk(chunk);
}

std::vector<bool> DeviceSession::staged_update_chunks(
    const crypto::Digest& transfer_id) const {
  return update_engine_->staged_chunk_map(transfer_id);
}

casu::UpdateStatus DeviceSession::finalize_update(
    std::optional<size_t> power_cut_after_regions) {
  casu::UpdateStatus status =
      update_engine_->finalize_transfer(power_cut_after_regions);
  if (status == casu::UpdateStatus::kApplied && cfa_monitor_ != nullptr) {
    cfa_monitor_->on_update_applied();
  }
  return status;
}

void DeviceSession::adopt_build(std::shared_ptr<const core::BuildResult> next) {
  if (!next) {
    throw FleetError("session '" + id_ + "': adopt_build with null build");
  }
  if (policy_ == EnforcementPolicy::kEilidHw &&
      next->rom.unit.image.size_bytes() == 0) {
    throw FleetError("session '" + id_ +
                     "': kEilidHw cannot adopt an uninstrumented build");
  }
  build_ = std::move(next);
  // Swap the machine's copy-on-write base onto the adopted build's
  // shared image. Content-preserving under this function's contract:
  // pages the update materialized hold exactly the target image's
  // bytes and shadow the base; un-owned pages held the old base, which
  // a compatible transition only differs from inside PMEM -- where the
  // update wrote (and so owns) every differing page. Reclaiming then
  // drops the update-written pages whose bytes the new base already
  // supplies, so a device's resident memory returns to near-zero after
  // a campaign instead of accreting one dirtied PMEM copy per update.
  // reflash() also restores against the adopted image from here on.
  sim::Bus& bus = machine_.bus();
  bus.attach_base_image(build_->flat_image != nullptr
                            ? build_->flat_image
                            : std::make_shared<const std::vector<uint8_t>>(
                                  core::flat_memory(*build_)));
  bus.reclaim_identical_pages(sim::kRomStart, sim::kRomEnd);
  bus.reclaim_identical_pages(sim::kPmemStart, 0xFFFF);
  // The update's stores bumped the bus code generation (as does the
  // base swap), so the CPU is running interpretively right now;
  // attaching the new build's shared tables re-snapshots the
  // generation and restores the session's configured engine -- against
  // tables that match the new bytes.
  attach_engine_tables();
}

std::string DeviceSession::last_reset_reason() const {
  if (machine_.violation_count() == 0) return "";
  return sim::reset_reason_name(machine_.resets().back().reason);
}

void DeviceSession::reflash() {
  // Restore the *entire* code ranges to the recorded build's flat
  // snapshot -- the copy-on-write base the session was flashed from,
  // the same bytes the update engine's kImageMismatch scan compares
  // against -- not just the image's chunks: a rogue patch may have
  // landed in PMEM the build never occupied, and those bytes must go
  // back to the flash default too or the device stays diverged. A
  // page-map reset, not a 64 KiB copy: every dirtied code page is
  // recycled and the range reads the shared image again. The reset
  // counts as a code store (generation bump); re-attaching the build's
  // shared table afterwards re-snapshots the generation, so the
  // restored device decodes from the build-time table again instead of
  // falling back to interpretive decode.
  machine_.bus().reset_range_to_base(sim::kRomStart, sim::kRomEnd);
  machine_.bus().reset_range_to_base(sim::kPmemStart, 0xFFFF);
  attach_engine_tables();
  power_cycle();
}

size_t DeviceSession::resident_memory_bytes() const {
  size_t bytes = machine_.bus().resident_memory_bytes();
  if (cfa_monitor_ != nullptr) bytes += cfa_monitor_->total_log_bytes();
  return bytes;
}

void DeviceSession::power_cycle() {
  // Mirrors Machine::do_reset minus the ResetEvent record: recording
  // one would count a host-driven power cycle as an enforcement
  // violation in violation_count().
  machine_.bus().wipe_volatile();
  machine_.bus().reset_peripherals();
  machine_.bus().clear_access_denied();
  if (hw_monitor_ != nullptr) {
    hw_monitor_->clear_violation();
    hw_monitor_->on_device_reset();
  }
  if (cfa_monitor_ != nullptr) {
    cfa_monitor_->clear_violation();
    cfa_monitor_->on_device_reset();
  }
  // The bootloader half of a power-loss-safe update runs before
  // application code: a commit journal left pending by a supply
  // failure mid-swap is idempotently replayed to completion now, and
  // the finished swap is logged as an update marker (after the reset
  // marker this reboot just logged -- the verifier's replay handles
  // the markers in log order either way).
  if (update_engine_->recover_after_reset() && cfa_monitor_ != nullptr) {
    cfa_monitor_->on_update_applied();
  }
  machine_.cpu().power_on_reset();
}

}  // namespace eilid
