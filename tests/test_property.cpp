// Property-based tests over randomly generated programs:
//   1. No false positives: any legal program (random acyclic call
//      graphs, random arithmetic, randomly timed timer interrupts)
//      runs to completion on the EILID device with zero resets.
//   2. No false negatives: corrupting a live return address at a
//      random call site is always caught before the return executes.
// Every case is reproducible from its printed seed.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "attacks/attack.h"
#include "common/rng.h"
#include "eilid/device.h"
#include "eilid/inspect.h"
#include "eilid/pipeline.h"

namespace eilid {
namespace {

struct GeneratedProgram {
  std::string source;
  int num_functions;
  bool has_isr;
};

// Random program: functions f0..fN-1 where fi only calls fj (j > i),
// ensuring termination without recursion (which EILID excludes, §VII).
GeneratedProgram generate(uint64_t seed) {
  common::SeededRng rng(seed);
  GeneratedProgram prog;
  prog.num_functions = rng.range(2, 7);
  prog.has_isr = rng.chance(1, 2);

  std::string s = ".org 0xe000\nmain:\n    mov #0x1000, r1\n";
  if (prog.has_isr) {
    // Period must exceed the instrumented ISR round-trip (~170 cycles)
    // or the device livelocks servicing interrupts -- true of real
    // hardware too, but not a "legal program" for this property.
    int period = rng.range(300, 900);
    s += "    mov #" + std::to_string(period) + ", &0x0102\n";
    s += "    mov #3, &0x0100\n    eint\n";
  }
  // main calls a random non-empty subset of functions.
  bool called_any = false;
  for (int f = 0; f < prog.num_functions; ++f) {
    if (rng.chance(2, 3)) {
      s += "    call #f" + std::to_string(f) + "\n";
      called_any = true;
    }
  }
  if (!called_any) s += "    call #f0\n";
  if (prog.has_isr) s += "    dint\n";
  s += "halt:\n    jmp halt\n";

  for (int f = 0; f < prog.num_functions; ++f) {
    s += "f" + std::to_string(f) + ":\n";
    int ops = rng.range(1, 5);
    int calls_left = 2;  // bound fan-out: call trees stay polynomial
    for (int o = 0; o < ops; ++o) {
      int reg = rng.range(8, 12);
      switch (rng.range(0, 3)) {
        case 0:
          s += "    add #" + std::to_string(rng.range(1, 100)) + ", r" +
               std::to_string(reg) + "\n";
          break;
        case 1:
          s += "    xor r" + std::to_string(rng.range(8, 12)) + ", r" +
               std::to_string(reg) + "\n";
          break;
        case 2:
          s += "    mov r" + std::to_string(reg) + ", &0x0" +
               std::to_string(300 + 2 * reg) + "\n";
          break;
        case 3:
          s += "    rla r" + std::to_string(reg) + "\n";
          break;
      }
      // Calls to strictly later functions only.
      if (f + 1 < prog.num_functions && calls_left > 0 && rng.chance(1, 3)) {
        --calls_left;
        s += "    call #f" +
             std::to_string(rng.range(f + 1, prog.num_functions - 1)) + "\n";
      }
    }
    s += "    ret\n";
  }

  if (prog.has_isr) {
    s += "isr:\n    inc &0x0330\n    reti\n.vector 8, isr\n";
  }
  s += ".vector 15, main\n.end\n";
  prog.source = s;
  return prog;
}

class LegalPrograms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LegalPrograms, NoFalsePositivesUnderEilid) {
  uint64_t seed = GetParam();
  GeneratedProgram prog = generate(seed);
  core::BuildResult build = core::build_app(prog.source, "gen", {});
  EXPECT_TRUE(build.converged) << "seed " << seed;
  core::Device device(build, {.halt_on_reset = true});
  auto r = device.run_to_symbol("halt", 2000000);
  EXPECT_EQ(r.cause, sim::StopCause::kBreakpoint)
      << "seed " << seed << " resets="
      << device.machine().violation_count()
      << (device.machine().resets().size() > 1
              ? " reason=" + sim::reset_reason_name(
                                 device.machine().resets().back().reason)
              : "");
  EXPECT_EQ(device.machine().violation_count(), 0u) << "seed " << seed;
  // After completion the shadow stack must be empty (LIFO balance).
  core::ShadowInspector inspector(device);
  EXPECT_EQ(inspector.depth(), 0u) << "seed " << seed;
}

TEST_P(LegalPrograms, OriginalAndEilidComputeSameResult) {
  uint64_t seed = GetParam();
  GeneratedProgram prog = generate(seed);
  auto run = [&](bool eilid) {
    core::BuildOptions options;
    options.eilid = eilid;
    core::BuildResult build = core::build_app(prog.source, "gen", options);
    core::Device device(build);
    device.run_to_symbol("halt", 2000000);
    // Observable state: the RAM words the program writes.
    std::vector<uint16_t> ram;
    for (uint16_t a = 0x0300; a < 0x0340; a += 2) {
      ram.push_back(device.machine().bus().raw_word(a));
    }
    return ram;
  };
  // ISR timing shifts under instrumentation change the interleaving of
  // isr counters; restrict the equivalence check to ISR-free programs.
  if (prog.has_isr) GTEST_SKIP() << "ISR programs: timing-dependent state";
  EXPECT_EQ(run(false), run(true)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LegalPrograms,
                         ::testing::Range<uint64_t>(1, 25));

class CorruptedReturns : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorruptedReturns, AlwaysCaughtBeforeUse) {
  uint64_t seed = GetParam();
  GeneratedProgram prog = generate(seed);
  core::BuildResult build = core::build_app(prog.source, "gen", {});
  core::Device device(build, {.halt_on_reset = true});

  // Corrupt the freshly pushed return address at the entry of a random
  // function (at its first instruction [SP] holds the return address).
  common::SeededRng rng(seed * 977);
  int victim = static_cast<int>(rng.below(
      static_cast<uint64_t>(prog.num_functions)));
  attacks::AttackEngine engine(device.machine());
  attacks::Attack attack;
  attack.trigger = {attacks::Trigger::Kind::kAtPcHit,
                    device.symbol("f" + std::to_string(victim)),
                    static_cast<unsigned>(rng.range(1, 2))};
  attacks::MemWrite w;
  w.sp_relative = true;
  w.addr = 0;
  // A target that is never a legitimate return address (the check
  // fires on the mismatch before the corrupt ret could even execute).
  w.value = 0xFFDC;
  attack.writes = {w};
  engine.schedule(attack);

  auto r = device.run_to_symbol("halt", 2000000);
  if (engine.fired_count() == 0) {
    GTEST_SKIP() << "victim f" << victim << " not reached often enough";
  }
  EXPECT_EQ(r.cause, sim::StopCause::kDeviceReset) << "seed " << seed;
  EXPECT_EQ(device.machine().resets().back().reason,
            sim::ResetReason::kCfiReturnMismatch)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptedReturns,
                         ::testing::Range<uint64_t>(100, 116));

}  // namespace
}  // namespace eilid
