// Fleet-native secure update campaign (CASU's authenticated update as
// a build transition): a fleet of attested devices moves from firmware
// v1 to v2 through Fleet::stage_update() -- per-device keys, per-device
// anti-rollback versions, and a replay-CFG swap staged with the
// verifier so the legitimate new code is NOT convicted as a hijack at
// the next attestation. Also shows a forged package being rejected
// (device heals by reset) and a captured old package being refused per
// device.
#include <cstdio>
#include <vector>

#include "src/eilid/fleet.h"

using namespace eilid;

namespace {

std::string app_version(char marker) {
  std::string s = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
    mov.b #')";
  s += marker;
  s += R"(', &UART_TX
halt:
    jmp halt
.vector 15, main
.end
)";
  return s;
}

char boot_and_read(DeviceSession& device) {
  device.machine().uart().clear_tx();
  device.power_cycle();
  device.run_to_symbol("halt", 10000);
  auto tx = device.machine().uart().tx_text();
  return tx.empty() ? '?' : tx[0];
}

}  // namespace

int main() {
  Fleet fleet;
  // Three field units on firmware v1, attested by the fleet verifier.
  // (kCfaBaseline provisions plain builds, so the campaign target is
  // built with the same shape.)
  for (const char* id : {"unit-a", "unit-b", "unit-c"}) {
    fleet.provision(id, app_version('1'), "fw",
                    EnforcementPolicy::kCfaBaseline);
  }
  for (auto* dev : fleet.sessions()) {
    std::printf("boot v1: %s transmits '%c'\n", dev->id().c_str(),
                boot_and_read(*dev));
  }
  for (const auto& verdict : fleet.verifier().verify_all()) {
    std::printf("attest v1: %s %s\n", verdict.device_id.c_str(),
                verdict.ok() ? "ok" : "FLAGGED?!");
  }

  // Authority stages firmware v2 as a build transition; the campaign
  // diffs the cached builds, MACs one package per device, stamps each
  // with that device's next version, swaps the build and stages the
  // verifier's CFG swap at the update boundary.
  UpdateCampaign campaign =
      fleet.stage_update(app_version('2'), "fw", {.eilid = false});
  // Capture unit-a's real v2 package first, to replay it later.
  casu::UpdatePackage captured = campaign.package_for(fleet.at("unit-a"));
  for (const auto& outcome : campaign.roll_out()) {
    std::printf("update %s: %s (v%u -> v%u, %zu bytes in %zu regions)\n",
                outcome.device_id.c_str(),
                std::string(update_result_name(outcome.result)).c_str(),
                outcome.version_before, outcome.version_after,
                outcome.payload_bytes, outcome.regions);
  }
  for (auto* dev : fleet.sessions()) {
    std::printf("boot v2: %s transmits '%c'\n", dev->id().c_str(),
                boot_and_read(*dev));
  }
  // The updated devices attest clean: the verifier replayed their
  // pre-update evidence against the old CFG and their post-update
  // evidence against the new one.
  for (const auto& verdict : fleet.verifier().verify_all()) {
    std::printf("attest v2: %s %s\n", verdict.device_id.c_str(),
                verdict.ok() ? "ok" : "FLAGGED?!");
  }

  // A forged package (the captured genuine v2 payload with a
  // bit-flipped MAC) must be rejected and the device must heal (reset)
  // rather than run tampered code.
  DeviceSession& victim = fleet.at("unit-a");
  casu::UpdatePackage forged = captured;
  forged.mac[0] ^= 0xFF;
  auto status = victim.apply_update(forged);
  std::printf("apply forged package: %s\n",
              status == casu::UpdateStatus::kBadMac ? "rejected (bad MAC)"
                                                    : "ACCEPTED?!");
  victim.machine().run(100);  // the latched violation resets the device
  std::printf("device healed: last reset reason = %s\n",
              victim.last_reset_reason().c_str());

  // The captured v1->v2 package is genuine, but its version is no
  // longer monotonic for unit-a: anti-rollback refuses it.
  status = victim.apply_update(captured);
  std::printf("replay captured package: %s\n",
              status == casu::UpdateStatus::kRollback ? "rejected (rollback)"
                                                      : "ACCEPTED?!");

  // And a direct PMEM write from software is impossible outside an
  // update session -- demonstrated by the monitor veto.
  victim.machine().bus().write_word(0xE000, 0xDEAD, /*pc=*/0xE010);
  std::printf("direct PMEM store from app code: %s\n",
              victim.machine().bus().access_denied() ? "denied by CASU"
                                                     : "WROTE?!");
  return 0;
}
