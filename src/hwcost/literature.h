// Comparison data for prior CFI/CFA systems: the feature matrix of the
// paper's Table I and the hardware-overhead bars of Fig. 10.
//
// Numbers for Tiny-CFA, ACFA and EILID are the exact values stated in
// the EILID paper (§VI); the remaining systems' values are approximate
// readings of Fig. 10's bars against their original papers, marked
// `approximate = true`. EILID's own cost can alternatively be computed
// structurally via hwcost::eilid_full_bom().
#ifndef EILID_HWCOST_LITERATURE_H
#define EILID_HWCOST_LITERATURE_H

#include <string>
#include <vector>

namespace eilid::hwcost {

enum class Method { kCfi, kCfa };

struct Technique {
  std::string name;
  Method method = Method::kCfi;
  bool realtime = false;        // RT: prevents at run time
  bool forward_edge = false;    // F-edge
  bool backward_edge = false;   // B-edge
  bool interrupt_safe = false;  // Interrupt column
  std::string platform;
  std::string summary;

  // Fig. 10 data (additional LUTs / registers over the base core);
  // negative = not reported on comparable hardware.
  int extra_luts = -1;
  int extra_regs = -1;
  bool approximate = false;
};

// Table I rows (prior work) plus EILID, in the paper's order.
const std::vector<Technique>& techniques();

// Baseline openMSP430 resource usage on the Basys3 target (the "+x%"
// percentages in §VI are relative to these).
inline constexpr int kOpenMsp430Luts = 1868;  // 99 LUTs == 5.3%
inline constexpr int kOpenMsp430Regs = 694;   // 34 regs == 4.9%

}  // namespace eilid::hwcost

#endif  // EILID_HWCOST_LITERATURE_H
