// DEPRECATED single-device entry point, kept as a thin shim so
// pre-Fleet code and tests continue to work. New code should use the
// eilid::Fleet facade, which adds a content-hash build cache, an
// N-device registry, policy-switched enforcement and a multiplexed
// attestation verifier:
//
//   #include "eilid/fleet.h"
//
//   eilid::Fleet fleet;
//   auto& dev = fleet.provision("door-7", source, "app",
//                               eilid::EnforcementPolicy::kEilidHw);
//   dev.run_to_symbol("halt", 1'000'000);
//   dev.violation_count();           // enforcement resets observed
//
// The legacy shape below maps onto it 1:1 -- Device(build) is a
// single DeviceSession with policy kEilidHw (instrumented build) or
// kCasu (plain build):
//
//   auto build = core::build_app(source, "app");   // no cache
//   core::Device device(build);                    // one session
//   device.machine().run(1'000'000);
#ifndef EILID_EILID_DEVICE_H
#define EILID_EILID_DEVICE_H

#include <memory>

#include "eilid/hw_monitor.h"
#include "eilid/pipeline.h"
#include "eilid/session.h"
#include "sim/machine.h"

namespace eilid::core {

struct DeviceOptions {
  double clock_hz = 8e6;
  bool halt_on_reset = false;  // stop run() at the first enforcement reset
};

class Device {
 public:
  explicit Device(const BuildResult& build, DeviceOptions options = {});

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  sim::Machine& machine() { return session_.machine(); }
  EilidHwMonitor& monitor() { return *session_.hw_monitor(); }
  const BuildResult& build() const { return session_.build(); }
  bool eilid_enabled() const { return session_.eilid_enabled(); }

  // Convenience: run until the given app symbol is reached (or the
  // cycle budget runs out). Throws if the symbol is unknown.
  sim::RunResult run_to_symbol(const std::string& symbol, uint64_t max_cycles);

  uint16_t symbol(const std::string& name) const;

 private:
  DeviceSession session_;
};

}  // namespace eilid::core

#endif  // EILID_EILID_DEVICE_H
