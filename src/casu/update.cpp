#include "casu/update.h"

#include "common/error.h"

namespace eilid::casu {

namespace {

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

// Cursor-based LE readers; each returns false on truncation.
struct Reader {
  std::span<const uint8_t> bytes;
  size_t pos = 0;

  bool u32(uint32_t& v) {
    if (bytes.size() - pos < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(bytes[pos + i]) << (8 * i);
    pos += 4;
    return true;
  }
  bool u16(uint16_t& v) {
    if (bytes.size() - pos < 2) return false;
    v = static_cast<uint16_t>(bytes[pos] | (bytes[pos + 1] << 8));
    pos += 2;
    return true;
  }
  bool blob(size_t n, std::vector<uint8_t>& out) {
    if (bytes.size() - pos < n) return false;
    out.assign(bytes.begin() + static_cast<ptrdiff_t>(pos),
               bytes.begin() + static_cast<ptrdiff_t>(pos + n));
    pos += n;
    return true;
  }
};

}  // namespace

size_t UpdatePackage::payload_bytes() const {
  size_t n = 0;
  for (const auto& region : regions) n += region.payload.size();
  return n;
}

std::string_view update_status_name(UpdateStatus status) {
  switch (status) {
    case UpdateStatus::kApplied: return "applied";
    case UpdateStatus::kBadMac: return "bad-mac";
    case UpdateStatus::kRollback: return "rollback";
    case UpdateStatus::kBadRegion: return "bad-region";
    case UpdateStatus::kInterrupted: return "interrupted";
  }
  return "?";
}

crypto::Digest package_mac(const crypto::Digest& update_key,
                           const UpdatePackage& package) {
  crypto::HmacSha256 mac(
      std::span<const uint8_t>(update_key.data(), update_key.size()));
  uint8_t header[4];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<uint8_t>(package.version >> (8 * i));
  }
  mac.update(std::span<const uint8_t>(header, sizeof(header)));
  for (const auto& region : package.regions) {
    const uint32_t len = static_cast<uint32_t>(region.payload.size());
    uint8_t rh[6];
    rh[0] = static_cast<uint8_t>(region.target_addr);
    rh[1] = static_cast<uint8_t>(region.target_addr >> 8);
    for (int i = 0; i < 4; ++i) rh[2 + i] = static_cast<uint8_t>(len >> (8 * i));
    mac.update(std::span<const uint8_t>(rh, sizeof(rh)));
    mac.update(std::span<const uint8_t>(region.payload.data(),
                                        region.payload.size()));
  }
  return mac.finish();
}

// --- wire format ----------------------------------------------------

std::vector<uint8_t> serialize_package(const UpdatePackage& package) {
  std::vector<uint8_t> out;
  out.reserve(8 + package.payload_bytes() + 6 * package.regions.size() +
              package.mac.size());
  put_u32(out, package.version);
  put_u32(out, static_cast<uint32_t>(package.regions.size()));
  for (const auto& region : package.regions) {
    put_u16(out, region.target_addr);
    put_u32(out, static_cast<uint32_t>(region.payload.size()));
    out.insert(out.end(), region.payload.begin(), region.payload.end());
  }
  out.insert(out.end(), package.mac.begin(), package.mac.end());
  return out;
}

std::optional<UpdatePackage> parse_package(std::span<const uint8_t> bytes) {
  Reader r{bytes};
  UpdatePackage pkg;
  uint32_t region_count = 0;
  if (!r.u32(pkg.version) || !r.u32(region_count)) return std::nullopt;
  // A region is at least 6 header bytes: an absurd count is structural
  // damage, refuse before reserving memory for it.
  if (region_count > bytes.size() / 6 + 1) return std::nullopt;
  pkg.regions.reserve(region_count);
  for (uint32_t i = 0; i < region_count; ++i) {
    UpdateRegion region;
    uint32_t len = 0;
    if (!r.u16(region.target_addr) || !r.u32(len)) return std::nullopt;
    if (!r.blob(len, region.payload)) return std::nullopt;
    pkg.regions.push_back(std::move(region));
  }
  std::vector<uint8_t> mac_bytes;
  if (!r.blob(pkg.mac.size(), mac_bytes)) return std::nullopt;
  std::copy(mac_bytes.begin(), mac_bytes.end(), pkg.mac.begin());
  if (r.pos != bytes.size()) return std::nullopt;  // trailing garbage
  return pkg;
}

uint64_t chunk_checksum(const TransferChunk& chunk) {
  // FNV-1a over every field but the checksum itself. Transport
  // integrity only -- detects line noise so the sender retransmits;
  // an adversary recomputes it trivially and is caught by the package
  // MAC at reassembly instead.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  for (uint8_t b : chunk.transfer_id) mix(b);
  for (uint32_t v : {chunk.index, chunk.total, chunk.offset, chunk.total_bytes}) {
    for (int i = 0; i < 4; ++i) mix(static_cast<uint8_t>(v >> (8 * i)));
  }
  for (uint8_t b : chunk.payload) mix(b);
  return h;
}

std::vector<TransferChunk> chunk_package(const UpdatePackage& package,
                                         size_t chunk_size) {
  if (chunk_size == 0) {
    throw ConfigError("chunk_package: chunk_size must be > 0");
  }
  const std::vector<uint8_t> bytes = serialize_package(package);
  const size_t total =
      bytes.empty() ? 1 : (bytes.size() + chunk_size - 1) / chunk_size;
  std::vector<TransferChunk> chunks;
  chunks.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    TransferChunk chunk;
    chunk.transfer_id = package.mac;
    chunk.index = static_cast<uint32_t>(i);
    chunk.total = static_cast<uint32_t>(total);
    chunk.offset = static_cast<uint32_t>(i * chunk_size);
    chunk.total_bytes = static_cast<uint32_t>(bytes.size());
    const size_t end = std::min(bytes.size(), (i + 1) * chunk_size);
    chunk.payload.assign(bytes.begin() + static_cast<ptrdiff_t>(i * chunk_size),
                         bytes.begin() + static_cast<ptrdiff_t>(end));
    chunk.checksum = chunk_checksum(chunk);
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

std::string_view chunk_ack_name(ChunkAck ack) {
  switch (ack) {
    case ChunkAck::kAccepted: return "accepted";
    case ChunkAck::kComplete: return "complete";
    case ChunkAck::kDuplicate: return "duplicate";
    case ChunkAck::kCorrupt: return "corrupt";
    case ChunkAck::kMalformed: return "malformed";
  }
  return "?";
}

// --- authority ------------------------------------------------------

UpdateAuthority::UpdateAuthority(std::span<const uint8_t> device_key)
    : update_key_(crypto::derive_key(device_key, "casu-update")) {}

UpdatePackage UpdateAuthority::make_package(
    uint32_t version, std::vector<UpdateRegion> regions) const {
  UpdatePackage pkg;
  pkg.version = version;
  pkg.regions = std::move(regions);
  pkg.mac = package_mac(update_key_, pkg);
  return pkg;
}

UpdatePackage UpdateAuthority::make_package(
    uint16_t target_addr, uint32_t version,
    std::vector<uint8_t> payload) const {
  std::vector<UpdateRegion> regions;
  regions.push_back({target_addr, std::move(payload)});
  return make_package(version, std::move(regions));
}

// --- engine ---------------------------------------------------------

UpdateEngine::UpdateEngine(std::span<const uint8_t> device_key,
                           sim::Machine& machine, CasuMonitor* monitor)
    : update_key_(crypto::derive_key(device_key, "casu-update")),
      machine_(machine),
      monitor_(monitor) {}

UpdateStatus UpdateEngine::apply(const UpdatePackage& package) {
  for (const auto& region : package.regions) {
    if (!sim::is_pmem(region.target_addr) ||
        region.target_addr + region.payload.size() > 0x10000) {
      return UpdateStatus::kBadRegion;
    }
  }
  crypto::Digest expected = package_mac(update_key_, package);
  if (!crypto::digest_equal(expected, package.mac)) {
    // Authentication failure is a monitored event: the ROM update
    // routine reports it and the device resets at the next step.
    if (monitor_ != nullptr) monitor_->report_update_auth_failure();
    return UpdateStatus::kBadMac;
  }
  if (package.version <= version_) {
    if (monitor_ != nullptr) monitor_->report_update_rollback();
    return UpdateStatus::kRollback;
  }
  if (monitor_ != nullptr) monitor_->begin_update_session();
  for (const auto& region : package.regions) {
    machine_.bus().raw_store_bytes(
        region.target_addr, std::span<const uint8_t>(region.payload.data(),
                                                     region.payload.size()));
  }
  if (monitor_ != nullptr) monitor_->end_update_session();
  version_ = package.version;
  return UpdateStatus::kApplied;
}

ChunkAck UpdateEngine::receive_chunk(const TransferChunk& chunk) {
  if (chunk_checksum(chunk) != chunk.checksum) return ChunkAck::kCorrupt;
  if (chunk.total == 0 || chunk.index >= chunk.total ||
      chunk.total_bytes == 0 ||
      static_cast<size_t>(chunk.offset) + chunk.payload.size() >
          chunk.total_bytes) {
    return ChunkAck::kMalformed;
  }
  // A chunk of a different transfer preempts the staged one: the pipe
  // carries one campaign at a time, and content addressing means the
  // two can never be spliced (interleaved campaigns: last sender wins,
  // the preempted transfer restarts from zero if it ever resumes).
  if (staged_.has_value() &&
      !crypto::digest_equal(staged_->id, chunk.transfer_id)) {
    staged_.reset();
  }
  if (!staged_.has_value()) {
    StagedTransfer fresh;
    fresh.id = chunk.transfer_id;
    fresh.total_chunks = chunk.total;
    fresh.total_bytes = chunk.total_bytes;
    fresh.bytes.assign(chunk.total_bytes, 0);
    fresh.received.assign(chunk.total, false);
    staged_.emplace(std::move(fresh));
  }
  StagedTransfer& staged = *staged_;
  if (chunk.total != staged.total_chunks ||
      chunk.total_bytes != staged.total_bytes) {
    return ChunkAck::kMalformed;  // same id, inconsistent geometry
  }
  if (staged.received[chunk.index]) return ChunkAck::kDuplicate;
  std::copy(chunk.payload.begin(), chunk.payload.end(),
            staged.bytes.begin() + chunk.offset);
  staged.received[chunk.index] = true;
  ++staged.received_count;
  return staged.complete() ? ChunkAck::kComplete : ChunkAck::kAccepted;
}

std::vector<bool> UpdateEngine::staged_chunk_map(
    const crypto::Digest& id) const {
  if (!staged_.has_value() || !crypto::digest_equal(staged_->id, id)) {
    return {};
  }
  return staged_->received;
}

bool UpdateEngine::transfer_complete() const {
  return staged_.has_value() && staged_->complete();
}

void UpdateEngine::abandon_transfer() { staged_.reset(); }

UpdateStatus UpdateEngine::finalize_transfer(
    std::optional<size_t> power_cut_after_regions) {
  if (!staged_.has_value() || !staged_->complete()) {
    return UpdateStatus::kInterrupted;  // nothing to finalize; staged kept
  }
  std::optional<UpdatePackage> parsed = parse_package(std::span<const uint8_t>(
      staged_->bytes.data(), staged_->bytes.size()));
  staged_.reset();  // every verdict below consumes the transfer
  if (!parsed.has_value()) {
    // Structurally damaged reassembly: the transport CRC passed (else
    // the chunk was NACKed), so this is tampering, not noise -- it
    // fails authentication like any forged package.
    if (monitor_ != nullptr) monitor_->report_update_auth_failure();
    return UpdateStatus::kBadMac;
  }
  UpdatePackage& package = *parsed;
  for (const auto& region : package.regions) {
    if (!sim::is_pmem(region.target_addr) ||
        region.target_addr + region.payload.size() > 0x10000) {
      return UpdateStatus::kBadRegion;
    }
  }
  crypto::Digest expected = package_mac(update_key_, package);
  if (!crypto::digest_equal(expected, package.mac)) {
    if (monitor_ != nullptr) monitor_->report_update_auth_failure();
    return UpdateStatus::kBadMac;
  }
  if (package.version <= version_) {
    if (monitor_ != nullptr) monitor_->report_update_rollback();
    return UpdateStatus::kRollback;
  }
  // Phase 1 done: the package is authentic and monotonic. Journal it
  // (non-volatile) so the swap survives any reset, then replay.
  journal_.emplace(CommitJournal{std::move(package)});
  return commit(power_cut_after_regions);
}

UpdateStatus UpdateEngine::commit(
    std::optional<size_t> power_cut_after_regions) {
  const UpdatePackage& package = journal_->package;
  if (monitor_ != nullptr) monitor_->begin_update_session();
  size_t written = 0;
  for (const auto& region : package.regions) {
    if (power_cut_after_regions.has_value() &&
        written == *power_cut_after_regions) {
      // The supply fails mid-swap. The journal stays pending; the
      // half-written PMEM is never executed -- recover_after_reset()
      // replays the whole journal before application code runs.
      if (monitor_ != nullptr) monitor_->end_update_session();
      return UpdateStatus::kInterrupted;
    }
    machine_.bus().raw_store_bytes(
        region.target_addr, std::span<const uint8_t>(region.payload.data(),
                                                     region.payload.size()));
    ++written;
  }
  if (monitor_ != nullptr) monitor_->end_update_session();
  // The version bump and the journal retiring are the atomic commit
  // point: before it the device is (after recovery replay) the old
  // image with the old counter, after it the new image with the new.
  version_ = package.version;
  journal_.reset();
  return UpdateStatus::kApplied;
}

bool UpdateEngine::recover_after_reset() {
  if (!journal_.has_value()) return false;
  commit(std::nullopt);  // idempotent full replay; always completes
  return true;
}

}  // namespace eilid::casu
