// CASU substrate tests: the immutability/W^X/ROM-gate invariants and
// the authenticated update protocol.
#include <gtest/gtest.h>

#include <memory>

#include "casu/monitor.h"
#include "casu/update.h"
#include "eilid/device.h"
#include "eilid/pipeline.h"
#include "masm/assembler.h"

namespace eilid::casu {
namespace {

using sim::ResetReason;

struct DeviceUnderTest {
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<CasuMonitor> monitor;
};

DeviceUnderTest make_device(const std::string& body, CasuConfig cfg = {}) {
  std::string src =
      ".org 0xe000\nstart:\n    mov #0x1000, r1\n" + body +
      "halt:\n    jmp halt\n.vector 15, start\n";
  auto unit = masm::assemble_text(src, "casu");
  DeviceUnderTest d;
  d.machine = std::make_unique<sim::Machine>();
  cfg.rom_present = false;  // bare CASU device unless a test injects ROM
  d.monitor = std::make_unique<CasuMonitor>(cfg);
  d.machine->add_monitor(d.monitor.get());
  for (const auto& chunk : unit.image.chunks()) {
    d.machine->load(chunk.base, chunk.data);
  }
  d.machine->power_on();
  d.machine->set_halt_on_reset(true);
  return d;
}

TEST(Casu, PmemWriteFromAppResets) {
  auto d = make_device("    mov #0xdead, &0xe100\n");
  auto r = d.machine->run(1000);
  EXPECT_EQ(r.cause, sim::StopCause::kDeviceReset);
  EXPECT_EQ(d.machine->resets().back().reason, ResetReason::kPmemWriteViolation);
  // The store must not have landed (immutability, not just detection).
  EXPECT_NE(d.machine->bus().raw_word(0xE100), 0xDEAD);
}

TEST(Casu, RamWriteIsFine) {
  auto d = make_device("    mov #0xdead, &0x0300\n");
  auto r = d.machine->run(1000);
  EXPECT_EQ(r.cause, sim::StopCause::kCycleBudget);
  EXPECT_EQ(d.machine->violation_count(), 0u);
  EXPECT_EQ(d.machine->bus().raw_word(0x0300), 0xDEAD);
}

TEST(Casu, ExecFromRamResets) {
  auto d = make_device(R"(    mov #0x4303, &0x0300
    br #0x0300
)");
  auto r = d.machine->run(1000);
  EXPECT_EQ(r.cause, sim::StopCause::kDeviceReset);
  EXPECT_EQ(d.machine->resets().back().reason, ResetReason::kDmemExecViolation);
}

TEST(Casu, RomWriteResets) {
  auto d = make_device("    mov #1, &0xa100\n");
  d.machine->run(1000);
  EXPECT_EQ(d.machine->resets().back().reason, ResetReason::kRomWriteViolation);
}

TEST(Casu, ViolationRegFromAppIsPrivileged) {
  auto d = make_device("    mov #1, &0x0190\n");
  d.machine->run(1000);
  EXPECT_EQ(d.machine->resets().back().reason,
            ResetReason::kPrivilegedMmioViolation);
}

TEST(Casu, KeyRegionUnreadableFromApp) {
  auto d = make_device("    mov &0xafe0, r10\n");
  d.machine->run(1000);
  EXPECT_EQ(d.machine->resets().back().reason,
            ResetReason::kSecureRamAccessViolation);
}

TEST(Casu, RomEntryGateEnforced) {
  // A device WITH trusted ROM: jumping into the middle of the ROM body
  // (past the entry section) must reset.
  core::BuildResult build = core::build_app(
      ".org 0xe000\nmain:\n    mov #0x1000, r1\nhalt:\n    jmp halt\n"
      ".vector 15, main\n.end\n",
      "gate");
  uint16_t body_addr = build.rom.unit.symbols.at("S_EILID_store_ra");
  std::string attack_src =
      ".org 0xe000\nmain:\n    mov #0x1000, r1\n    br #" +
      std::to_string(body_addr) + "\nhalt:\n    jmp halt\n.vector 15, main\n";
  core::BuildResult attack = core::build_app(attack_src, "gate2",
                                             {.eilid = false});
  attack.rom = build.rom;  // same trusted ROM
  core::Device device(attack, {.halt_on_reset = true});
  auto r = device.machine().run(1000);
  EXPECT_EQ(r.cause, sim::StopCause::kDeviceReset);
  EXPECT_EQ(device.machine().resets().back().reason,
            ResetReason::kRomEntryViolation);
}

TEST(Casu, RomEntryThroughStubIsLegal) {
  core::BuildResult build = core::build_app(
      ".org 0xe000\nmain:\n    mov #0x1000, r1\n    call #foo\nhalt:\n"
      "    jmp halt\nfoo:\n    ret\n.vector 15, main\n.end\n",
      "legal");
  core::Device device(build, {.halt_on_reset = true});
  auto r = device.run_to_symbol("halt", 5000);
  EXPECT_EQ(r.cause, sim::StopCause::kBreakpoint);
  EXPECT_EQ(device.machine().violation_count(), 0u);
}

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    build_ = core::build_app(
        ".org 0xe000\nmain:\n    mov #0x1000, r1\nhalt:\n    jmp halt\n"
        ".vector 15, main\n.end\n",
        "app");
    device_ = std::make_unique<core::Device>(build_);
    // Receiver side is bound to the device's machine and monitor at
    // construction: there is no way to aim it at another machine.
    engine_ = std::make_unique<UpdateEngine>(key_span(), device_->machine(),
                                             &device_->monitor());
  }

  std::span<const uint8_t> key_span() const {
    return std::span<const uint8_t>(key_.data(), key_.size());
  }

  std::vector<uint8_t> key_ = std::vector<uint8_t>(32, 0x77);
  core::BuildResult build_;
  std::unique_ptr<core::Device> device_;
  std::unique_ptr<UpdateEngine> engine_;
};

TEST_F(UpdateTest, ValidUpdateApplies) {
  UpdateAuthority authority(key_span());
  auto pkg = authority.make_package(0xE800, 1, {0x11, 0x22, 0x33});
  EXPECT_EQ(engine_->apply(pkg), UpdateStatus::kApplied);
  EXPECT_EQ(device_->machine().bus().raw_byte(0xE800), 0x11);
  EXPECT_EQ(engine_->current_version(), 1u);
}

TEST_F(UpdateTest, MultiRegionPackageAppliesAtomically) {
  UpdateAuthority authority(key_span());
  auto pkg = authority.make_package(
      1, {{0xE800, {0x11, 0x22}}, {0xF000, {0x33}}, {0xFF00, {0x44, 0x55}}});
  EXPECT_EQ(pkg.payload_bytes(), 5u);
  EXPECT_EQ(engine_->apply(pkg), UpdateStatus::kApplied);
  EXPECT_EQ(device_->machine().bus().raw_byte(0xE801), 0x22);
  EXPECT_EQ(device_->machine().bus().raw_byte(0xF000), 0x33);
  EXPECT_EQ(device_->machine().bus().raw_byte(0xFF01), 0x55);
  EXPECT_EQ(engine_->current_version(), 1u);
}

TEST_F(UpdateTest, TamperedPayloadRejectedAndDeviceHeals) {
  UpdateAuthority authority(key_span());
  auto pkg = authority.make_package(0xE800, 1, {0x11, 0x22, 0x33});
  pkg.regions[0].payload[0] = 0x99;  // tampered in transit
  EXPECT_EQ(engine_->apply(pkg), UpdateStatus::kBadMac);
  EXPECT_NE(device_->machine().bus().raw_byte(0xE800), 0x99);
  device_->machine().run(100);
  EXPECT_EQ(device_->machine().resets().back().reason,
            ResetReason::kUpdateAuthFailure);
}

TEST_F(UpdateTest, RollbackRejectedAndLatchesViolation) {
  UpdateAuthority authority(key_span());
  auto v2 = authority.make_package(0xE800, 2, {0xAA});
  EXPECT_EQ(engine_->apply(v2), UpdateStatus::kApplied);
  auto v1 = authority.make_package(0xE802, 1, {0xBB});
  EXPECT_EQ(engine_->apply(v1), UpdateStatus::kRollback);
  auto v2b = authority.make_package(0xE802, 2, {0xBB});
  EXPECT_EQ(engine_->apply(v2b), UpdateStatus::kRollback);
  // A validly MAC'd but stale package is an attack signal: the device
  // heals by reset, like any other update abuse.
  device_->machine().run(100);
  EXPECT_EQ(device_->machine().resets().back().reason,
            ResetReason::kUpdateRollback);
}

TEST_F(UpdateTest, NonPmemTargetRejected) {
  UpdateAuthority authority(key_span());
  auto pkg = authority.make_package(0x0300, 1, {0x11});
  EXPECT_EQ(engine_->apply(pkg), UpdateStatus::kBadRegion);
  // A bad region hiding behind valid ones poisons the whole package:
  // nothing is applied.
  auto mixed = authority.make_package(1, {{0xE800, {0x11}}, {0x0300, {0x22}}});
  EXPECT_EQ(engine_->apply(mixed), UpdateStatus::kBadRegion);
  EXPECT_NE(device_->machine().bus().raw_byte(0xE800), 0x11);
}

TEST_F(UpdateTest, WrongKeyRejected) {
  std::vector<uint8_t> other_key(32, 0x78);
  UpdateAuthority rogue(
      std::span<const uint8_t>(other_key.data(), other_key.size()));
  auto pkg = rogue.make_package(0xE800, 1, {0x11});
  EXPECT_EQ(engine_->apply(pkg), UpdateStatus::kBadMac);
}

// Regression: the anti-rollback version counter is per device, not
// per host. Updating one device must never advance (or be blocked by)
// another device's version state.
TEST_F(UpdateTest, VersionStateIsPerDevice) {
  core::Device other(build_);
  UpdateEngine other_engine(key_span(), other.machine(), &other.monitor());
  UpdateAuthority authority(key_span());

  // Device A reaches version 3.
  EXPECT_EQ(engine_->apply(authority.make_package(0xE800, 3, {0xAA})),
            UpdateStatus::kApplied);
  // Device B is still at 0: version 1 is monotonic *for it*.
  EXPECT_EQ(other_engine.apply(authority.make_package(0xE800, 1, {0xBB})),
            UpdateStatus::kApplied);
  EXPECT_EQ(engine_->current_version(), 3u);
  EXPECT_EQ(other_engine.current_version(), 1u);
  // And the bytes landed on the right machines.
  EXPECT_EQ(device_->machine().bus().raw_byte(0xE800), 0xAA);
  EXPECT_EQ(other.machine().bus().raw_byte(0xE800), 0xBB);
}

}  // namespace
}  // namespace eilid::casu
