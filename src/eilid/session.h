// One provisioned simulated device: a machine wired with the monitor
// stack its enforcement policy demands, running one cached build. A
// DeviceSession is what `eilid::Fleet` hands out; it unifies the
// previously ad-hoc wiring of EilidHwMonitor (EILID), CasuMonitor
// (CASU-only baseline) and CfaMonitor (attestation baseline) behind a
// single policy switch, so examples/benches/tests compare devices by
// changing one enum instead of re-plumbing monitors.
//
// Memory model (the fleet-at-10k diet): a session does not own a flat
// 64KiB image. Its bus is backed by sim::PagedMemory -- 256-byte pages
// copy-on-write over the build's shared immutable flat image
// (core::BuildResult::flat_image), materialized lazily on first write.
// reflash() and adopt_build() are page-map resets against the (new)
// base image rather than 64KiB copies, wipe_volatile() zero-fills by
// page, and resident_memory_bytes() reports only the pages this device
// actually dirtied plus its CFA log arena -- so 10k sessions of one
// build cost near one shared image, not 10k copies. Reads/writes keep
// their inline fast paths and the three execution engines stay
// bit-identical over paged memory (tests/test_fleet_scale.cpp).
#ifndef EILID_EILID_SESSION_H
#define EILID_EILID_SESSION_H

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "casu/update.h"
#include "cfa/attestation.h"
#include "crypto/sha256.h"
#include "eilid/hw_monitor.h"
#include "eilid/pipeline.h"
#include "sim/machine.h"

namespace eilid {

// What hardware (if any) polices the device, §II-C's comparison axis:
// EILID *prevents* hijacks in real time; a CFA baseline merely logs
// them for the verifier to *detect* at the next attestation.
enum class EnforcementPolicy : uint8_t {
  kNone,         // bare machine, no monitors: fully unprotected
  kCasu,         // CASU invariants only (PMEM immutability, W^X, ROM gates)
  kCfaBaseline,  // CASU + LO-FAT/ACFA-style logging monitor + verifier
  kEilidHw,      // CASU + secure-DMEM extension + EILIDsw (needs an
                 // instrumented build)
};

std::string_view enforcement_policy_name(EnforcementPolicy policy);

// Which simulator core drives the device. All three engines are
// architecturally identical -- retired-instruction traces, cycle
// counts, CFA edge logs and MACs, and enforcement verdicts match
// bit-for-bit -- and differ only in dispatch granularity:
//   kInterpretive -- decode every instruction from backing memory
//     (the original core; the always-correct fallback every other
//     engine degrades to when its tables go stale),
//   kPredecoded   -- per-instruction dispatch from the build's shared
//     decoded table (PR 3),
//   kSuperblock   -- block-granular dispatch from the build's shared
//     superblock table: one bounds/generation check and one batched
//     cycle/tick account per straight-line run, with interrupt
//     delivery re-checked at block boundaries (a mid-block IRQ horizon
//     refuses the block, so delivery still lands at the architecturally
//     correct instruction).
// Any store at or above the code floor invalidates the shared tables
// (Bus::code_generation) and drops the device to interpretive decode
// until a fresh table is attached -- the self-modifying-code rule that
// has held since the decoded table landed.
enum class ExecutionEngine : uint8_t {
  kInterpretive,
  kPredecoded,
  kSuperblock,
};

std::string_view execution_engine_name(ExecutionEngine engine);

struct SessionOptions {
  double clock_hz = 8e6;
  bool halt_on_reset = false;  // stop run() at the first enforcement reset
  cfa::CfaConfig cfa;          // kCfaBaseline: on-device log sizing
  // Per-device attestation MAC key. Fleet derives it from its master
  // key; standalone sessions may set it directly.
  crypto::Digest attest_key{};
  // Per-device secure-update key (the device-unique key CASU's update
  // protocol authenticates against). Fleet derives it from its master
  // key; standalone sessions may set it directly.
  crypto::Digest update_key{};
  // Simulator core selection (see ExecutionEngine): which of the
  // build's shared tables the session attaches. Every differential
  // gate in the benches compares all three as a three-way oracle.
  ExecutionEngine engine = ExecutionEngine::kSuperblock;
};

class DeviceSession {
 public:
  // Throws eilid::FleetError when the policy and build disagree
  // (kEilidHw without EILIDsw in the build).
  DeviceSession(std::string device_id,
                std::shared_ptr<const core::BuildResult> build,
                EnforcementPolicy policy, SessionOptions options = {});

  DeviceSession(const DeviceSession&) = delete;
  DeviceSession& operator=(const DeviceSession&) = delete;

  const std::string& id() const { return id_; }
  EnforcementPolicy policy() const { return policy_; }
  const SessionOptions& options() const { return options_; }
  const core::BuildResult& build() const { return *build_; }
  std::shared_ptr<const core::BuildResult> shared_build() const {
    return build_;
  }
  sim::Machine& machine() { return machine_; }

  // Monitors installed by the policy; null when absent (kNone has
  // neither, only kCfaBaseline has a CFA monitor).
  core::EilidHwMonitor* hw_monitor() { return hw_monitor_.get(); }
  cfa::CfaMonitor* cfa_monitor() { return cfa_monitor_.get(); }

  bool eilid_enabled() const { return policy_ == EnforcementPolicy::kEilidHw; }

  // Throws eilid::FleetError if the symbol is unknown.
  uint16_t symbol(const std::string& name) const;

  sim::RunResult run(uint64_t max_cycles) { return machine_.run(max_cycles); }
  sim::RunResult run_to_symbol(const std::string& name, uint64_t max_cycles);

  // Enforcement outcome shorthand.
  size_t violation_count() const { return machine_.violation_count(); }
  // Name of the most recent enforcement reset ("" when the device never
  // enforced).
  std::string last_reset_reason() const;

  // --- authenticated update (CASU substrate) ------------------------
  // This device's anti-rollback firmware version: 0 as provisioned,
  // bumped by every applied package. Owned by the session -- each
  // device counts independently, never shared across a fleet.
  uint32_t firmware_version() const { return update_engine_->current_version(); }

  // Verify and apply a package against this device's own machine,
  // monitor and version counter (the engine is bound to them at
  // construction, so an update can never land on a different device
  // than the one whose monitor polices it). On kApplied a kCfaBaseline
  // session also logs the epoch-boundary marker the verifier swaps
  // replay CFGs at. Applying a package does NOT re-point the session's
  // build -- that is the build-transition half, see adopt_build() and
  // eilid::UpdateCampaign. Hold mutex() when a concurrent sweep may
  // touch this device.
  casu::UpdateStatus apply_update(const casu::UpdatePackage& package);

  // --- chunked lossy-transport receiver (see eilid/transport.h) -----
  // Thin forwarders to this device's UpdateEngine (same binding
  // guarantees as apply_update; hold mutex() under the same rules).
  // The staged transfer and the commit journal are modeled as
  // non-volatile: both survive power_cycle()/reflash(), like an
  // inactive mcuboot image slot.
  casu::ChunkAck receive_update_chunk(const casu::TransferChunk& chunk);
  std::vector<bool> staged_update_chunks(
      const crypto::Digest& transfer_id) const;
  // Verify and two-phase-commit the staged transfer
  // (UpdateEngine::finalize_transfer, including the power-cut
  // injection hook); on kApplied a kCfaBaseline session logs the
  // epoch-boundary update marker exactly like apply_update. When the
  // cut fires (kInterrupted, journal pending), the reboot that follows
  // real power loss is modeled by calling power_cycle(), whose boot
  // path finishes the commit.
  casu::UpdateStatus finalize_update(
      std::optional<size_t> power_cut_after_regions = std::nullopt);

  // Re-point the session at `next` after an applied update has made
  // the device's PMEM byte-identical to next's image (the caller --
  // normally UpdateCampaign -- guarantees that; the ROM must be
  // unchanged). Re-attaches next's shared predecoded table, so the
  // device keeps decoding from a build-time table instead of falling
  // back to interpretive decode forever, and future symbol lookups
  // resolve against the new code. Throws eilid::FleetError on a
  // policy/build mismatch or a null build.
  void adopt_build(std::shared_ptr<const core::BuildResult> next);

  // Power-cycle the device: volatile state and monitor latches clear
  // (an enforcement reset); the CFA log deliberately survives with a
  // reset marker (ACFA keeps evidence in attested memory), and the
  // verifier's replay state is untouched -- it lives off-device.
  void power_cycle();

  // Factory recovery: restore the flashed code regions (PMEM + secure
  // ROM) byte-for-byte from the session's *recorded* build, re-attach
  // its shared predecoded table, then power_cycle(). This is the
  // "reset" half of fleet remediation -- a device that diverged from
  // its recorded image (rogue but validly-MAC'd patch, kNone
  // self-modification) is put back onto a known image so a subsequent
  // build-transition update is applicable again (no kImageMismatch).
  // Like power_cycle(), the CFA log survives with a reset marker.
  void reflash();

  // Simulated reachability. An offline device stops producing the
  // periodic attestation announcements fleet health is built on: its
  // heartbeats are recorded as misses (its freshness goes stale) and
  // remediation cannot touch it until it returns. Pure fault-injection
  // state -- the simulated machine itself keeps running; direct
  // attest()/verify_all() calls are unaffected (the transport they
  // model is the challenge-response path, whose loss is modeled by
  // simply not calling them). Thread-safe.
  bool online() const { return online_.load(std::memory_order_acquire); }
  void set_online(bool online) {
    online_.store(online, std::memory_order_release);
  }

  // Private memory this device costs beyond its build's shared
  // artifacts: the machine's materialized copy-on-write pages and page
  // tables (sim::PagedMemory) plus the CFA monitor's resident log
  // arena. The bench_fleet_10k per-device gate reads this; the shared
  // flat image, decode tables and CFG are counted once per build, not
  // here.
  size_t resident_memory_bytes() const;

  // Per-device lock for fleet-level concurrency. A session is itself
  // single-threaded; when several fleet actors may touch the same
  // device at once (a workload driver simulating it, an attestation
  // sweep draining its log), each takes this mutex for the duration.
  // VerifierService::attest/verify_all and apps::run_workload_all
  // already do; hold it yourself when hand-driving a session that a
  // concurrent sweep can see.
  std::mutex& mutex() const { return mu_; }

 private:
  // (Re-)attach the build's shared execution tables per options_.engine
  // -- decoded image for kPredecoded, decoded + superblock tables for
  // kSuperblock, neither for kInterpretive. Must run after every flash
  // of the code regions (construction, adopt_build, reflash): the
  // attachment snapshots the bus code generation.
  void attach_engine_tables();

  std::string id_;
  mutable std::mutex mu_;
  std::shared_ptr<const core::BuildResult> build_;
  EnforcementPolicy policy_;
  SessionOptions options_;
  sim::Machine machine_;
  std::unique_ptr<core::EilidHwMonitor> hw_monitor_;
  std::unique_ptr<cfa::CfaMonitor> cfa_monitor_;
  std::unique_ptr<casu::UpdateEngine> update_engine_;
  std::atomic<bool> online_{true};
};

}  // namespace eilid

#endif  // EILID_EILID_SESSION_H
