// Reproduces Figs. 3-8: the instrumentation patterns, shown as real
// before/after output of this repo's EILIDinst on the paper's example
// shapes (function call, return, ISR entry/exit, main-entry function
// registration, indirect call).
#include <cstdio>
#include <string>

#include "src/eilid/instrumenter.h"
#include "src/eilid/pipeline.h"
#include "src/masm/assembler.h"

using namespace eilid;

namespace {

const char* kExample = R"(.org 0xe000
.func bar
main:
    mov #0x1000, r1
    call #foo                   ; Fig. 3: direct call
    mov #bar, r13
    call r13                    ; Fig. 8: indirect call
halt:
    jmp halt

foo:
    mov #1, r10
    ret                         ; Fig. 4: function return

bar:
    mov #2, r10
    ret

isr:                            ; Fig. 5: ISR entry point
    inc r11
    reti                        ; Fig. 6: ISR return

.vector 15, main
.vector 8, isr
.end
)";

}  // namespace

int main() {
  core::RomInfo rom = core::build_rom();
  core::InstrumentConfig cfg;
  core::Instrumenter inst(cfg, rom.unit.symbols);

  auto original = masm::split_lines(kExample);
  masm::AssembledUnit build1 = masm::assemble(original, "example_1");
  core::InstrumentResult result = inst.instrument(original, &build1.listing);

  std::printf("Figs. 3-8: EILIDinst instrumentation patterns\n\n");
  std::printf("---- original ----\n");
  for (const auto& line : original) std::printf("%s\n", line.c_str());
  std::printf("\n---- instrumented (iteration 2; addresses shift once more "
              "in iteration 3) ----\n");
  for (const auto& line : result.lines) std::printf("%s\n", line.c_str());

  std::printf("\nsites: %d direct calls, %d returns, %d ISR prologues, %d "
              "ISR epilogues, %d indirect calls, %d functions registered\n",
              result.sites.direct_calls, result.sites.returns,
              result.sites.isr_prologues, result.sites.isr_epilogues,
              result.sites.indirect_calls, result.sites.functions_registered);
  return 0;
}
