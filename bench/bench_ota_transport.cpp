// Lossy-transport OTA throughput: a fleet of CFA-attested devices is
// moved to the next firmware over the chunked simulated pipe, once per
// (thread count x loss rate) cell -- threads in {1, 2, 4, 8}, chunk
// drop rates in {0, 1%, 5%} (0 / 10 / 50 per mille, with corruption at
// half the drop rate riding along). The 1-thread row of each loss rate
// drives the serial rollout; the others fan out over
// common::ThreadPool with per-device locking. Fault streams are keyed
// per device (common::SeededRng::keyed(seed, device_id)), which is
// what the determinism gate exercises at scale.
//
// Correctness gates (the bench FAILS on any violation):
//   - every delivery converges to kApplied within the retry budget,
//     at every loss rate,
//   - post-rollout, every device attests ok() against the new CFG,
//   - lossy rows really retransmitted (the pipe was not a no-op),
//   - each pooled row's outcome tuples -- attempts, resumes and
//     retransmit counts included -- are identical to that loss rate's
//     serial row, in input order (transport determinism).
// Rollout times are reported but not gated (host-dependent); the
// committed JSON gates only speedup *ratios* via
// scripts/check_bench_regression.py.
//
// Results land in BENCH_ota_transport.json (committed at the repo
// root; regenerate with a full-mode Release run).
//
// Usage: bench_ota_transport [--smoke]   (--smoke: CI-sized fleet)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/eilid/fleet.h"
#include "src/eilid/transport.h"

using namespace eilid;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

// Generations differ by hundreds of unrolled calls, so the build diff
// spans most of the image (`emit` shifts, re-pointing every call site)
// and each delivery ships dozens of chunks -- enough per-device work
// for the thread-scaling ratios to mean something.
std::string firmware(int generation) {
  std::string s = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
)";
  for (int i = 0; i < 128 * (generation + 1); ++i) s += "    call #emit\n";
  s += R"(halt:
    jmp halt
emit:
    mov.b #')";
  s += static_cast<char>('0' + generation);
  s += R"(', &UART_TX
    ret
.vector 15, main
.end
)";
  return s;
}

constexpr uint32_t kLossPerMille[] = {0, 10, 50};
constexpr size_t kLossRates = sizeof(kLossPerMille) / sizeof(kLossPerMille[0]);

struct CellResult {
  double rollout_ms = 0;
  size_t applied = 0;
  size_t attest_ok = 0;
  size_t bytes_retransmitted = 0;
  std::vector<UpdateOutcome> outcomes;  // compared field-wise across rows
};

CellResult run_cell_once(size_t threads, size_t devices,
                         uint32_t loss_per_mille) {
  CellResult cell;
  const bool serial = threads == 1;
  common::ThreadPool pool(threads);

  Fleet fleet;
  for (size_t i = 0; i < devices; ++i) {
    DeviceSession& dev =
        fleet.provision("dev-" + std::to_string(i), firmware(1), "fw",
                        EnforcementPolicy::kCfaBaseline);
    dev.run_to_symbol("halt", 100000);
  }

  CampaignOptions options;
  TransportOptions transport;
  transport.chunk_size = 32;
  transport.seed = 0x07A0 + loss_per_mille;
  transport.max_rounds = 64;
  transport.faults = {.drop_per_mille = loss_per_mille,
                      .corrupt_per_mille = loss_per_mille / 2};
  options.transport = transport;
  UpdateCampaign campaign =
      fleet.stage_update(firmware(2), "fw", {.eilid = false}, options);

  auto t0 = clock_type::now();
  std::vector<UpdateOutcome> outcomes =
      serial ? campaign.roll_out() : campaign.roll_out(pool);
  cell.rollout_ms = ms_since(t0);

  for (const auto& outcome : outcomes) {
    if (outcome.result == UpdateResult::kApplied && outcome.build_swapped) {
      ++cell.applied;
    }
    cell.bytes_retransmitted += outcome.bytes_retransmitted;
  }
  cell.outcomes = std::move(outcomes);
  std::vector<VerifierService::AttestResult> verdicts =
      serial ? fleet.verifier().verify_all()
             : fleet.verifier().verify_all(pool);
  for (const auto& verdict : verdicts) {
    if (verdict.ok()) ++cell.attest_ok;
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const size_t devices = smoke ? 64 : 256;
  const size_t kThreadCounts[] = {1, 2, 4, 8};

  // cells[loss][row] -- each loss rate has its own serial baseline.
  // Min-of-5, with the repeats INTERLEAVED across cells (every cell
  // samples every stretch of host-frequency weather, so the speedup
  // ratios feeding the committed regression gate stay stable). Repeats
  // must produce bit-identical outcomes -- same seed, same fleet --
  // checked as one more determinism gate; a divergence zeroes the
  // cell's applied count, which fails the run below.
  std::vector<std::vector<CellResult>> cells(kLossRates);
  for (int repeat = 0; repeat < 5; ++repeat) {
    for (size_t l = 0; l < kLossRates; ++l) {
      for (size_t r = 0; r < 4; ++r) {
        CellResult next =
            run_cell_once(kThreadCounts[r], devices, kLossPerMille[l]);
        if (repeat == 0) {
          cells[l].push_back(std::move(next));
          continue;
        }
        CellResult& best = cells[l][r];
        if (next.outcomes != best.outcomes) {
          std::printf("  !! threads=%zu loss=%upm: repeat %d diverged from "
                      "repeat 0\n",
                      kThreadCounts[r], kLossPerMille[l], repeat);
          best.applied = 0;
        }
        if (next.rollout_ms < best.rollout_ms) {
          best.rollout_ms = next.rollout_ms;
        }
      }
    }
  }

  std::printf("OTA transport (%s): %zu devices, chunked lossy pipe, "
              "drop rates 0%%/1%%/5%%\n",
              smoke ? "smoke" : "full", devices);
  std::printf("%7s |", "threads");
  for (uint32_t pm : kLossPerMille) std::printf("  loss %2u%% ms | speedup |", pm / 10);
  std::printf("\n");

  bool ok = true;
  std::string rows_json;
  for (size_t r = 0; r < 4; ++r) {
    const size_t threads = kThreadCounts[r];
    std::printf("%7zu |", threads);
    char buf[256];
    std::snprintf(buf, sizeof(buf), "    {\"threads\": %zu", threads);
    rows_json += buf;
    bool gates_ok = true;
    for (size_t l = 0; l < kLossRates; ++l) {
      const CellResult& cell = cells[l][r];
      const CellResult& base = cells[l][0];
      const double speedup =
          cell.rollout_ms > 0 ? base.rollout_ms / cell.rollout_ms : 0.0;
      std::printf("  %11.2f | %6.2fx |", cell.rollout_ms, speedup);
      std::snprintf(buf, sizeof(buf),
                    ", \"loss%u_ms\": %.2f, \"speedup_loss%u\": %.2f",
                    kLossPerMille[l] / 10, cell.rollout_ms,
                    kLossPerMille[l] / 10, speedup);
      rows_json += buf;

      if (cell.applied != devices || cell.attest_ok != devices) {
        std::printf("\n  !! threads=%zu loss=%upm: %zu/%zu applied, "
                    "%zu attested ok\n",
                    threads, kLossPerMille[l], cell.applied, devices,
                    cell.attest_ok);
        gates_ok = false;
      }
      if (kLossPerMille[l] > 0 && cell.bytes_retransmitted == 0) {
        std::printf("\n  !! threads=%zu loss=%upm: no retransmissions -- "
                    "the lossy pipe did nothing\n",
                    threads, kLossPerMille[l]);
        gates_ok = false;
      }
      if (cell.outcomes != base.outcomes) {
        std::printf("\n  !! threads=%zu loss=%upm: outcomes diverge from "
                    "the serial row\n",
                    threads, kLossPerMille[l]);
        gates_ok = false;
      }
    }
    std::printf("\n");
    std::snprintf(buf, sizeof(buf), ", \"gates_ok\": %s},\n",
                  gates_ok ? "true" : "false");
    rows_json += buf;
    ok = ok && gates_ok;
  }
  if (!rows_json.empty()) rows_json.resize(rows_json.size() - 2);
  std::printf("retransmitted at 5%% loss (serial): %zu bytes over %zu "
              "devices\n",
              cells[2][0].bytes_retransmitted, devices);
  std::printf("outcomes per cell identical across all thread counts: %s\n",
              ok ? "yes" : "NO");

  FILE* json = std::fopen("BENCH_ota_transport.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"ota_transport\",\n  \"mode\": \"%s\",\n"
                 "  \"devices\": %zu,\n  \"rows\": [\n%s\n  ],\n"
                 "  \"ok\": %s\n}\n",
                 smoke ? "smoke" : "full", devices, rows_json.c_str(),
                 ok ? "true" : "false");
    std::fclose(json);
  }
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
