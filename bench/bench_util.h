// Shared helpers for the per-table/figure benchmark binaries.
#ifndef EILID_BENCH_BENCH_UTIL_H
#define EILID_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <string>

#include "apps/apps.h"
#include "eilid/fleet.h"

namespace eilid::bench {

struct AppRun {
  size_t binary_size = 0;
  uint64_t cycles = 0;
  double micros = 0.0;
  size_t violations = 0;
  bool reached_halt = false;
};

// Build (original or EILID) and run one Table IV app to its halt label
// on a single-device fleet session.
inline AppRun run_app(const apps::AppSpec& app, bool eilid,
                      core::BuildOptions options = {}) {
  options.eilid = eilid;
  Fleet fleet;
  DeviceSession& device = fleet.deploy(
      app.name, fleet.build(app.source, app.name, options),
      eilid ? EnforcementPolicy::kEilidHw : EnforcementPolicy::kCasu);
  apps::WorkloadOutcome run = apps::run_workload(device, app);
  AppRun out;
  out.binary_size = device.build().binary_size();
  out.cycles = run.cycles;
  out.micros = device.machine().micros(run.cycles);
  out.violations = run.violations;
  out.reached_halt = run.reached_halt;
  return out;
}

// Average wall-clock milliseconds of the build pipeline over `iters`
// iterations (the paper averages compile time over 50 runs). EILIDsw
// is prebuilt (device firmware, not part of app compilation) and the
// pipeline runs the paper's exact three iterations (no extra
// convergence pass).
inline double measure_compile_ms(const apps::AppSpec& app, bool eilid,
                                 int iters = 50) {
  using clock = std::chrono::steady_clock;
  static const core::RomInfo rom = core::build_rom();
  core::BuildOptions options;
  options.eilid = eilid;
  options.prebuilt_rom = &rom;
  options.verify_convergence = false;
  auto start = clock::now();
  for (int i = 0; i < iters; ++i) {
    core::BuildResult build = core::build_app(app.source, app.name, options);
    (void)build;
  }
  auto elapsed = std::chrono::duration<double, std::milli>(clock::now() - start);
  return elapsed.count() / iters;
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline double pct(double base, double with) {
  return base == 0 ? 0.0 : 100.0 * (with - base) / base;
}

}  // namespace eilid::bench

#endif  // EILID_BENCH_BENCH_UTIL_H
