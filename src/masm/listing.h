// Assembly listing (.lst): per-statement addresses and emitted bytes.
// This is the artefact EILIDinst consumes to learn final instruction
// addresses across the paper's three-iteration build (Fig. 2).
#ifndef EILID_MASM_LISTING_H
#define EILID_MASM_LISTING_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eilid::masm {

struct ListingLine {
  int line_no = 0;          // 1-based source line number
  uint16_t address = 0;     // location counter at this statement
  std::vector<uint8_t> bytes;  // emitted bytes (empty for non-emitting lines)
  bool is_instruction = false;
  std::string mnemonic;     // post-expansion mnemonic (real ISA form)
  std::string source;       // source text (comment stripped)
  std::string label;        // label defined on this line, if any
};

struct Listing {
  std::string unit_name;
  std::vector<ListingLine> lines;
  std::map<std::string, uint16_t> symbols;

  // msp430-gcc-like text rendering:
  //   e000: 3140 0010    mov #0x1000, r1
  std::string render() const;

  // Address of the statement following the listing line at `index`
  // (the "next address" an instrumented call site's return lands on).
  uint16_t next_address(size_t index) const;
};

}  // namespace eilid::masm

#endif  // EILID_MASM_LISTING_H
