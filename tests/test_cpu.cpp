// CPU core semantics: arithmetic and flags, addressing modes, stack
// operations, byte mode, interrupts and timing.
#include <gtest/gtest.h>

#include <memory>

#include "isa/registers.h"
#include "masm/assembler.h"
#include "sim/machine.h"

namespace eilid::sim {
namespace {

namespace sr = isa::sr;

// Assemble `body` at 0xE000 with a halt loop and run to completion.
std::unique_ptr<Machine> run_snippet(const std::string& body,
                                     uint64_t max_cycles = 100000) {
  std::string src = ".org 0xe000\nstart:\n" + body + "\nhalt:\n    jmp halt\n" +
                    ".vector 15, start\n";
  auto unit = masm::assemble_text(src, "snippet");
  auto machine = std::make_unique<Machine>();
  for (const auto& chunk : unit.image.chunks()) {
    machine->load(chunk.base, chunk.data);
  }
  machine->power_on();
  machine->run_until(unit.symbols.at("halt"), max_cycles);
  return machine;
}

TEST(Cpu, MovAndImmediates) {
  auto m = run_snippet("    mov #0x1234, r10\n    mov r10, r11\n");
  EXPECT_EQ(m->cpu().reg(10), 0x1234);
  EXPECT_EQ(m->cpu().reg(11), 0x1234);
}

TEST(Cpu, AddSetsCarryAndOverflow) {
  auto m = run_snippet(R"(    mov #0x7fff, r10
    add #1, r10
    mov r2, r11             ; capture SR
    mov #0xffff, r12
    add #1, r12
    mov r2, r13
)");
  EXPECT_EQ(m->cpu().reg(10), 0x8000);
  EXPECT_TRUE(m->cpu().reg(11) & sr::kV) << "0x7fff+1 overflows";
  EXPECT_TRUE(m->cpu().reg(11) & sr::kN);
  EXPECT_FALSE(m->cpu().reg(11) & sr::kC);
  EXPECT_EQ(m->cpu().reg(12), 0x0000);
  EXPECT_TRUE(m->cpu().reg(13) & sr::kC) << "0xffff+1 carries";
  EXPECT_TRUE(m->cpu().reg(13) & sr::kZ);
}

TEST(Cpu, SubAndCmpBorrowSemantics) {
  auto m = run_snippet(R"(    mov #5, r10
    sub #7, r10             ; 5-7 = -2, borrow -> C clear
    mov r2, r11
    mov #7, r12
    cmp #5, r12             ; 7-5: no borrow -> C set, result discarded
    mov r2, r13
)");
  EXPECT_EQ(m->cpu().reg(10), 0xFFFE);
  EXPECT_FALSE(m->cpu().reg(11) & sr::kC);
  EXPECT_TRUE(m->cpu().reg(11) & sr::kN);
  EXPECT_EQ(m->cpu().reg(12), 7);
  EXPECT_TRUE(m->cpu().reg(13) & sr::kC);
}

TEST(Cpu, AddcUsesCarryChain) {
  // 32-bit add: 0x0001FFFF + 1 via add/addc.
  auto m = run_snippet(R"(    mov #0xffff, r10        ; low
    mov #0x0001, r11        ; high
    add #1, r10
    addc #0, r11
)");
  EXPECT_EQ(m->cpu().reg(10), 0x0000);
  EXPECT_EQ(m->cpu().reg(11), 0x0002);
}

TEST(Cpu, DaddBcdArithmetic) {
  auto m = run_snippet(R"(    clrc
    mov #0x0199, r10
    dadd #0x0001, r10       ; BCD: 199 + 1 = 200
)");
  EXPECT_EQ(m->cpu().reg(10), 0x0200);
}

TEST(Cpu, LogicOpsAndFlags) {
  auto m = run_snippet(R"(    mov #0x0ff0, r10
    and #0x00ff, r10        ; 0x00f0
    mov r2, r11
    mov #0x00f0, r12
    xor #0x00f0, r12        ; zero
    mov r2, r13
    mov #0xffff, r14
    bic #0x00ff, r14
    bis #0x0001, r14
)");
  EXPECT_EQ(m->cpu().reg(10), 0x00F0);
  EXPECT_TRUE(m->cpu().reg(11) & sr::kC) << "AND sets C = ~Z";
  EXPECT_EQ(m->cpu().reg(12), 0);
  EXPECT_TRUE(m->cpu().reg(13) & sr::kZ);
  EXPECT_FALSE(m->cpu().reg(13) & sr::kC);
  EXPECT_EQ(m->cpu().reg(14), 0xFF01);
}

TEST(Cpu, ShiftsAndSwpbSxt) {
  auto m = run_snippet(R"(    mov #0x8003, r10
    rra r10                 ; arithmetic: sign preserved, C = old LSB
    mov r2, r11
    mov #0x1234, r12
    swpb r12
    mov #0x0080, r13
    sxt r13
    clrc
    mov #0x0001, r14
    rrc r14                 ; C<-1, result 0
    mov r2, r15
)");
  EXPECT_EQ(m->cpu().reg(10), 0xC001);
  EXPECT_TRUE(m->cpu().reg(11) & sr::kC);
  EXPECT_EQ(m->cpu().reg(12), 0x3412);
  EXPECT_EQ(m->cpu().reg(13), 0xFF80);
  EXPECT_EQ(m->cpu().reg(14), 0x0000);
  EXPECT_TRUE(m->cpu().reg(15) & sr::kC);
}

TEST(Cpu, ByteOperationsClearHighByte) {
  auto m = run_snippet(R"(    mov #0xffff, r10
    mov.b #0x12, r10        ; byte write to register clears high byte
    mov #0xabcd, r11
    mov r11, &0x0200
    mov.b &0x0200, r12
    add.b #0x40, r12        ; byte add, flags on 8 bits
)");
  EXPECT_EQ(m->cpu().reg(10), 0x0012);
  EXPECT_EQ(m->cpu().reg(12), 0x000D);
}

TEST(Cpu, MemoryByteAccessesAreByteGranular) {
  auto m = run_snippet(R"(    mov #0x1122, &0x0200
    mov.b #0xff, &0x0200    ; low byte only
)");
  EXPECT_EQ(m->bus().raw_word(0x0200), 0x11FF);
}

TEST(Cpu, AddressingModesIndexedIndirectAutoinc) {
  auto m = run_snippet(R"(    mov #0x0200, r10
    mov #0x1111, 0(r10)
    mov #0x2222, 2(r10)
    mov @r10+, r11
    mov @r10+, r12
    mov #0x0200, r13
    mov 2(r13), r14
)");
  EXPECT_EQ(m->cpu().reg(11), 0x1111);
  EXPECT_EQ(m->cpu().reg(12), 0x2222);
  EXPECT_EQ(m->cpu().reg(10), 0x0204) << "autoincrement by 2 per word";
  EXPECT_EQ(m->cpu().reg(14), 0x2222);
}

TEST(Cpu, ByteAutoincrementStepsByOneExceptSp) {
  auto m = run_snippet(R"(    mov #0x0200, r10
    mov #0x4142, &0x0200
    mov.b @r10+, r11
    mov.b @r10+, r12
)");
  EXPECT_EQ(m->cpu().reg(11), 0x42);  // little endian low byte first
  EXPECT_EQ(m->cpu().reg(12), 0x41);
  EXPECT_EQ(m->cpu().reg(10), 0x0202);
}

TEST(Cpu, CallRetAndStackDiscipline) {
  auto m = run_snippet(R"(    mov #0x1000, r1
    call #func
    mov r1, r14             ; SP must be balanced
    jmp halt
func:
    mov r1, r13             ; SP inside function (after push of RA)
    ret
)");
  EXPECT_EQ(m->cpu().reg(13), 0x0FFE);
  EXPECT_EQ(m->cpu().reg(14), 0x1000);
}

TEST(Cpu, PushPopRoundTrip) {
  auto m = run_snippet(R"(    mov #0x1000, r1
    mov #0xBEEF, r10
    push r10
    clr r10
    pop r10
)");
  EXPECT_EQ(m->cpu().reg(10), 0xBEEF);
  EXPECT_EQ(m->cpu().reg(1), 0x1000);
}

TEST(Cpu, ConditionalJumpsSignedUnsigned) {
  auto m = run_snippet(R"(    clr r10
    mov #0xfffe, r11        ; -2 signed, 65534 unsigned
    cmp #5, r11             ; r11 - 5
    jl signed_less          ; signed: -2 < 5
    mov #1, r10
signed_less:
    clr r12
    cmp #5, r11
    jnc unsigned_less       ; unsigned: 65534 >= 5 -> C set, not taken
    mov #1, r12
unsigned_less:
)");
  EXPECT_EQ(m->cpu().reg(10), 0) << "jl must be taken (signed)";
  EXPECT_EQ(m->cpu().reg(12), 1) << "jnc must not be taken (unsigned)";
}

TEST(Cpu, WritesToR3Discarded) {
  auto m = run_snippet("    mov #0x1234, r3\n    mov r3, r10\n");
  EXPECT_EQ(m->cpu().reg(10), 0) << "r3 reads as constant 0";
}

TEST(Cpu, IllegalInstructionResets) {
  // 0x0000 is unassigned: executing it resets the device.
  std::string src = ".org 0xe000\nstart:\n    .word 0x0000\n.vector 15, start\n";
  auto unit = masm::assemble_text(src, "ill");
  Machine m;
  for (const auto& chunk : unit.image.chunks()) m.load(chunk.base, chunk.data);
  m.power_on();
  m.set_halt_on_reset(true);
  auto r = m.run(1000);
  EXPECT_EQ(r.cause, StopCause::kDeviceReset);
  EXPECT_EQ(m.resets().back().reason, ResetReason::kIllegalInstruction);
}

TEST(Cpu, InterruptEntryAndReti) {
  auto m = run_snippet(R"(    mov #0x1000, r1
    mov #50, &0x0102        ; TIMER_CCR0
    mov #3, &0x0100         ; enable + irq
    eint
wait:
    tst r10
    jz wait
    dint
func_done:
    mov r1, r14
    jmp halt
isr:
    mov #1, r10
    reti
.vector 8, isr
)",
                       20000);
  EXPECT_EQ(m->cpu().reg(10), 1) << "ISR must have run";
  EXPECT_EQ(m->cpu().reg(14), 0x1000) << "RETI must rebalance the stack";
}

TEST(Cpu, InterruptsMaskedWithoutGie) {
  auto m = run_snippet(R"(    mov #0x1000, r1
    mov #50, &0x0102
    mov #3, &0x0100         ; timer fires, but GIE is off
    mov #200, r11
spin:
    dec r11
    jnz spin
)",
                      20000);
  EXPECT_EQ(m->cpu().reg(10), 0) << "ISR must not run with GIE clear";
}

TEST(Cpu, CycleAccountingKnownSequence) {
  // mov #imm, r10 (2) + add r10, r11 (1) + jmp (2): verify run cycles.
  std::string src =
      ".org 0xe000\nstart:\n    mov #0x1234, r10\n    add r10, r11\nhalt:\n"
      "    jmp halt\n.vector 15, start\n";
  auto unit = masm::assemble_text(src, "cyc");
  Machine m;
  for (const auto& chunk : unit.image.chunks()) m.load(chunk.base, chunk.data);
  m.power_on();
  auto r = m.run_until(unit.symbols.at("halt"), 1000);
  EXPECT_EQ(r.cause, StopCause::kBreakpoint);
  EXPECT_EQ(r.cycles, 3u);
  EXPECT_DOUBLE_EQ(m.micros(8), 1.0);  // 8 cycles at 8 MHz = 1 us
}

}  // namespace
}  // namespace eilid::sim
