#include "sim/bus.h"

#include "common/error.h"

namespace eilid::sim {

Bus::Bus() = default;

Peripheral* Bus::peripheral_at(uint16_t addr) const {
  for (auto* p : peripherals_) {
    if (addr >= p->first_addr() && addr <= p->last_addr()) return p;
  }
  return nullptr;
}

void Bus::add_peripheral(Peripheral* peripheral) {
  for (auto* existing : peripherals_) {
    if (peripheral->first_addr() <= existing->last_addr() &&
        existing->first_addr() <= peripheral->last_addr()) {
      throw ConfigError("peripheral address ranges overlap");
    }
  }
  peripherals_.push_back(peripheral);
}

bool Bus::check_read(uint16_t addr, uint16_t pc) {
  for (auto* w : watchers_) {
    if (!w->on_read(addr, pc)) {
      access_denied_ = true;
      return false;
    }
  }
  return true;
}

bool Bus::check_write(uint16_t addr, uint16_t value, bool byte, uint16_t pc) {
  for (auto* w : watchers_) {
    if (!w->on_write(addr, value, byte, pc)) {
      access_denied_ = true;
      return false;
    }
  }
  return true;
}

uint16_t Bus::read_word(uint16_t addr, uint16_t pc) {
  addr &= 0xFFFE;  // word accesses are even-aligned (LSB ignored, as in hw)
  if (!check_read(addr, pc)) return 0xFFFF;
  if (is_periph(addr)) {
    if (auto* p = peripheral_at(addr)) return p->read(addr);
    return 0;
  }
  return raw_word(addr);
}

uint8_t Bus::read_byte(uint16_t addr, uint16_t pc) {
  if (!check_read(addr, pc)) return 0xFF;
  if (is_periph(addr)) {
    if (auto* p = peripheral_at(addr)) {
      uint16_t v = p->read(addr & 0xFFFE);
      return (addr & 1) ? static_cast<uint8_t>(v >> 8) : static_cast<uint8_t>(v);
    }
    return 0;
  }
  return mem_[addr];
}

void Bus::write_word(uint16_t addr, uint16_t value, uint16_t pc) {
  addr &= 0xFFFE;
  if (!check_write(addr, value, /*byte=*/false, pc)) return;
  if (is_periph(addr)) {
    if (auto* p = peripheral_at(addr)) p->write(addr, value);
    return;
  }
  raw_store_word(addr, value);
}

void Bus::write_byte(uint16_t addr, uint8_t value, uint16_t pc) {
  if (!check_write(addr, value, /*byte=*/true, pc)) return;
  if (is_periph(addr)) {
    if (auto* p = peripheral_at(addr & 0xFFFE)) p->write(addr & 0xFFFE, value);
    return;
  }
  mem_[addr] = value;
}

bool Bus::notify_fetch(uint16_t pc) {
  for (auto* w : watchers_) {
    if (!w->on_fetch(pc)) {
      access_denied_ = true;
      return false;
    }
  }
  return true;
}

uint16_t Bus::raw_word(uint16_t addr) const {
  addr &= 0xFFFE;
  return static_cast<uint16_t>(mem_[addr] |
                               (static_cast<uint16_t>(mem_[addr + 1]) << 8));
}

void Bus::raw_store_word(uint16_t addr, uint16_t value) {
  addr &= 0xFFFE;
  mem_[addr] = static_cast<uint8_t>(value);
  mem_[addr + 1] = static_cast<uint8_t>(value >> 8);
}

void Bus::tick_peripherals(uint64_t cycles) {
  for (auto* p : peripherals_) p->tick(cycles);
}

int Bus::pending_irq() const {
  int best = -1;
  for (auto* p : peripherals_) {
    int line = p->pending_irq();
    if (line > best) best = line;  // higher vector index = higher priority
  }
  return best;
}

void Bus::ack_irq(int line) {
  for (auto* p : peripherals_) {
    if (p->pending_irq() == line) {
      p->ack_irq();
      return;
    }
  }
}

void Bus::reset_peripherals() {
  for (auto* p : peripherals_) p->reset();
}

void Bus::wipe_volatile() {
  for (uint32_t a = kRamStart; a <= kRamEnd; ++a) mem_[a] = 0;
  for (uint32_t a = kSecureRamStart; a <= kSecureRamEnd; ++a) mem_[a] = 0;
}

}  // namespace eilid::sim
