#include "sim/reset.h"

namespace eilid::sim {

std::string reset_reason_name(ResetReason reason) {
  switch (reason) {
    case ResetReason::kPowerOn: return "power-on";
    case ResetReason::kIllegalInstruction: return "illegal-instruction";
    case ResetReason::kPmemWriteViolation: return "pmem-write";
    case ResetReason::kDmemExecViolation: return "dmem-exec";
    case ResetReason::kRomWriteViolation: return "rom-write";
    case ResetReason::kRomEntryViolation: return "rom-entry";
    case ResetReason::kRomExitViolation: return "rom-exit";
    case ResetReason::kPrivilegedMmioViolation: return "privileged-mmio";
    case ResetReason::kUpdateAuthFailure: return "update-auth";
    case ResetReason::kUpdateRollback: return "update-rollback";
    case ResetReason::kSecureRamAccessViolation: return "secure-ram-access";
    case ResetReason::kCfiReturnMismatch: return "cfi-return-mismatch";
    case ResetReason::kCfiRfiMismatch: return "cfi-rfi-mismatch";
    case ResetReason::kCfiIndirectCallViolation: return "cfi-indirect-call";
    case ResetReason::kShadowStackOverflow: return "shadow-stack-overflow";
    case ResetReason::kShadowStackUnderflow: return "shadow-stack-underflow";
    case ResetReason::kIndTableFull: return "ind-table-full";
    case ResetReason::kBadSelector: return "bad-selector";
  }
  return "unknown";
}

}  // namespace eilid::sim
