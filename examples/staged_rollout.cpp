// Canary-then-widen walkthrough: a fleet moves to new firmware through
// a staged RolloutPlan -- a 2-device canary wave, then the rest of the
// fleet, with an A/B cohort held back on v1 for comparison and an
// attestation gate after every wave. A second, adversarial plan shows
// the failure budget doing its job: a forged package in the canary
// halts the rollout before the wide wave, so the bulk of the fleet
// never sees the bad campaign.
#include <cstdio>
#include <mutex>
#include <vector>

#include "src/eilid/fleet.h"
#include "src/eilid/rollout.h"

using namespace eilid;

namespace {

std::string app_version(char marker) {
  std::string s = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
    mov.b #')";
  s += marker;
  s += R"(', &UART_TX
halt:
    jmp halt
.vector 15, main
.end
)";
  return s;
}

void print_report(const char* title, const RolloutReport& report) {
  std::printf("%s\n", title);
  for (const WaveOutcome& wave : report.waves) {
    std::printf("  wave '%s' (%zu devices): %s, %zu failed / %zu allowed\n",
                wave.name.c_str(), wave.device_ids.size(),
                wave.applied ? "applied" : "NOT APPLIED", wave.failures,
                wave.allowance);
    for (const UpdateOutcome& update : wave.updates) {
      std::printf("    update %s: %s (v%u -> v%u)\n",
                  update.device_id.c_str(),
                  std::string(update_result_name(update.result)).c_str(),
                  update.version_before, update.version_after);
    }
    for (const auto& verdict : wave.gate) {
      std::printf("    gate   %s: %s\n", verdict.device_id.c_str(),
                  verdict.ok() ? "attests ok" : "CONVICTED");
    }
  }
  if (report.halted) {
    std::printf("  HALTED: %s\n", report.halt_reason.c_str());
  } else {
    std::printf("  completed: %zu/%zu waves applied\n", report.waves_applied,
                report.waves.size());
  }
}

// Probe: run every wave device between its update and its gate, so
// the gate judges evidence from the new firmware actually executing.
void drive_wave(const std::vector<DeviceSession*>& wave,
                common::ThreadPool*) {
  for (DeviceSession* dev : wave) {
    std::lock_guard<std::mutex> lock(dev->mutex());
    dev->machine().run(64);  // absorb any latched enforcement reset
    dev->run_to_symbol("halt", 10000);
  }
}

}  // namespace

int main() {
  Fleet fleet;
  // Eight field units on v1; unit-6/unit-7 are the pinned A/B cohort.
  for (int i = 0; i < 8; ++i) {
    DeviceSession& dev =
        fleet.provision("unit-" + std::to_string(i), app_version('1'), "fw",
                        EnforcementPolicy::kCfaBaseline);
    dev.run_to_symbol("halt", 10000);
  }

  RolloutPlan plan;
  plan.holds = {{"ab-cohort", {"unit-6", "unit-7"}}};
  plan.waves = {{.name = "canary", .device_ids = {"unit-0", "unit-1"}},
                {.name = "rest", .fraction = 1.0}};
  plan.probe = drive_wave;  // budget defaults to zero tolerance

  // --- v2: a clean canary-then-widen rollout. ---
  auto v2 = fleet.build(app_version('2'), "fw", {.eilid = false});
  print_report("rollout to v2 (clean):",
               fleet.plan_rollout(v2, plan).run());

  // --- v3: the canary's transport is compromised; budget 0 halts the
  // plan before the wide wave ever applies. ---
  auto v3 = fleet.build(app_version('3'), "fw", {.eilid = false});
  CampaignOptions compromised;
  compromised.tamper = [](const DeviceSession& dev,
                          casu::UpdatePackage& package) {
    if (dev.id() == "unit-0") package.mac[0] ^= 0xFF;
  };
  print_report("rollout to v3 (forged canary, budget 0):",
               fleet.plan_rollout(v3, plan, compromised).run());

  // The wide wave never moved: unit-2..5 still run v2, and the held
  // A/B cohort still runs v1.
  for (auto* dev : fleet.sessions()) {
    dev->machine().uart().clear_tx();
    dev->power_cycle();
    dev->run_to_symbol("halt", 10000);
    std::printf("%s now transmits '%c'\n", dev->id().c_str(),
                dev->machine().uart().tx_text()[0]);
  }
  return 0;
}
