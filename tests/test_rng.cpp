// common::SeededRng: the one deterministic randomness source every
// scheduler, property test and (now) the scenario fuzzer sits on. The
// degenerate-bound cases matter most: below(0) used to be a modulo by
// zero (undefined behavior), reachable from range(lo, hi) with hi < lo
// -- exactly the shape a fuzzer's computed bounds produce on empty
// intervals.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "common/error.h"
#include "common/rng.h"

namespace eilid::common {
namespace {

TEST(SeededRng, BelowZeroBoundThrowsInsteadOfDividingByZero) {
  SeededRng rng(1);
  EXPECT_THROW(rng.below(0), ConfigError);
  // The failed draw must not have consumed state: the stream continues
  // exactly where a clean rng of the same seed is.
  SeededRng fresh(1);
  EXPECT_THROW(fresh.below(0), ConfigError);
  EXPECT_EQ(rng.next(), SeededRng(1).next());
}

TEST(SeededRng, RangeRejectsEmptyInterval) {
  SeededRng rng(2);
  EXPECT_THROW(rng.range(5, 4), ConfigError);
  EXPECT_THROW(rng.range(0, -1), ConfigError);
  EXPECT_THROW(rng.range(100, -100), ConfigError);
}

TEST(SeededRng, RangeCoversInclusiveBounds) {
  SeededRng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen, (std::set<int>{-2, -1, 0, 1, 2}));
  // Degenerate-but-legal single-point interval.
  EXPECT_EQ(rng.range(7, 7), 7);
  EXPECT_EQ(rng.range(-3, -3), -3);
}

TEST(SeededRng, BelowStaysInBound) {
  SeededRng rng(4);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(SeededRng, KeyedStreamsAreStableAndDistinct) {
  // keyed() must be a pure function of (seed, key) -- platform-stable
  // FNV-1a, no std::hash -- and distinct keys must give distinct
  // streams.
  auto a1 = SeededRng::keyed(42, "device-a").next();
  auto a2 = SeededRng::keyed(42, "device-a").next();
  auto b = SeededRng::keyed(42, "device-b").next();
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

}  // namespace
}  // namespace eilid::common
