#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <utility>

namespace eilid::common {

ThreadPool::ThreadPool(size_t workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: submitted work always runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      // A fire-and-forget task has nobody to rethrow to; letting the
      // exception escape would std::terminate the process. parallel_for
      // tasks never get here (they capture and rethrow to the caller).
    }
  }
}

void ThreadPool::parallel_for(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;

  // One chunky task per worker; each claims indices until none remain.
  struct Sweep {
    std::atomic<size_t> next{0};
    size_t n;
    const std::function<void(size_t)>* fn;
    std::mutex mu;
    std::condition_variable done_cv;
    size_t tasks_left;
    std::exception_ptr first_error;
  };
  Sweep sweep;
  sweep.n = n;
  sweep.fn = &fn;
  const size_t tasks = workers_.size() < n ? workers_.size() : n;
  sweep.tasks_left = tasks;

  for (size_t t = 0; t < tasks; ++t) {
    submit([&sweep] {
      for (;;) {
        const size_t i = sweep.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= sweep.n) break;
        try {
          (*sweep.fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(sweep.mu);
          if (!sweep.first_error) {
            sweep.first_error = std::current_exception();
          }
          // Abandon unclaimed indices: later fetch_adds land past n.
          sweep.next.store(sweep.n, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(sweep.mu);
      if (--sweep.tasks_left == 0) sweep.done_cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(sweep.mu);
  sweep.done_cv.wait(lock, [&sweep] { return sweep.tasks_left == 0; });
  if (sweep.first_error) std::rethrow_exception(sweep.first_error);
}

}  // namespace eilid::common
