#include "eilid/device.h"

namespace eilid::core {

Device::Device(const BuildResult& build, DeviceOptions options)
    : session_("legacy-device", std::make_shared<const BuildResult>(build),
               build.rom.unit.image.size_bytes() != 0
                   ? EnforcementPolicy::kEilidHw
                   : EnforcementPolicy::kCasu,
               {.clock_hz = options.clock_hz,
                .halt_on_reset = options.halt_on_reset}) {}

uint16_t Device::symbol(const std::string& name) const {
  return session_.symbol(name);
}

sim::RunResult Device::run_to_symbol(const std::string& name,
                                     uint64_t max_cycles) {
  return session_.run_to_symbol(name, max_cycles);
}

}  // namespace eilid::core
