#include "cfa/attestation.h"

namespace eilid::cfa {

LoggedEdge* CfaMonitor::grow_chunk() {
  if (!free_chunks_.empty()) {
    chunks_.push_back(std::move(free_chunks_.back()));
    free_chunks_.pop_back();
  } else {
    chunks_.push_back(std::make_unique<LoggedEdge[]>(kChunkEdges));
  }
  return chunks_.back().get();
}

void CfaMonitor::log_edge(LoggedEdge edge) {
  ++total_edges_;
  if (count_ >= config_.log_capacity) {
    ++dropped_;  // the paper's "voluminous logs" problem, made visible
    return;
  }
  const size_t pos = head_ + count_;
  const size_t chunk = pos / kChunkEdges;
  LoggedEdge* slab =
      chunk < chunks_.size() ? chunks_[chunk].get() : grow_chunk();
  slab[pos % kChunkEdges] = edge;
  ++count_;
}

void CfaMonitor::on_control_transfer(uint16_t from_pc, uint16_t to_pc,
                                     uint16_t fallthrough) {
  // The machine only fires this when to_pc != fallthrough -- exactly
  // the predicate the per-step hook used to apply itself -- so every
  // invocation is a loggable transfer. (Illegal-instruction steps have
  // fallthrough == from_pc == to_pc and are never reported here.)
  (void)fallthrough;
  log_edge({from_pc, to_pc, false});
}

void CfaMonitor::on_interrupt(int vector_index, uint16_t from_pc,
                              uint16_t to_pc) {
  (void)vector_index;
  log_edge({from_pc, to_pc, true});
}

void CfaMonitor::on_device_reset() {
  // Keep the accumulated evidence; mark the discontinuity.
  LoggedEdge marker;
  marker.reset = true;
  log_edge(marker);
}

void CfaMonitor::on_update_applied() {
  LoggedEdge marker;
  marker.update = true;
  log_edge(marker);
}

crypto::Digest CfaMonitor::mac_report(const crypto::Digest& key, uint64_t nonce,
                                      const Report& report) {
  // Stream the report through an incremental HMAC instead of
  // materializing a header|edges byte vector: a drained 2^17-edge
  // log would otherwise allocate ~640 KB per report just to hash it.
  //
  // The header authenticates *every* field the verifier consumes:
  // nonce (8) | seq (4) | cycle (8) | dropped (4), little-endian.
  // Found by the scenario fuzzer (tests/test_fuzz_regressions.cpp):
  // the original header stopped at seq, so a man-in-the-middle could
  // bump cycle (backdating when evidence was emitted) or zero dropped
  // (hiding log overflow) without failing authentication.
  crypto::HmacSha256 mac(std::span<const uint8_t>(key.data(), key.size()));
  uint8_t header[24];
  for (int i = 0; i < 8; ++i) header[i] = static_cast<uint8_t>(nonce >> (8 * i));
  for (int i = 0; i < 4; ++i) {
    header[8 + i] = static_cast<uint8_t>(report.seq >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    header[12 + i] = static_cast<uint8_t>(report.cycle >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    header[20 + i] = static_cast<uint8_t>(report.dropped >> (8 * i));
  }
  mac.update(std::span<const uint8_t>(header, sizeof(header)));
  // Batch edge records through a block-sized buffer so Sha256::update
  // sees chunks, not per-edge dribbles. 64 records is a multiple of
  // the SHA-256 block size for the current 5-byte record.
  uint8_t buf[64 * LoggedEdge::kWireBytes];
  size_t fill = 0;
  for (const auto& e : report.edges) {
    buf[fill++] = static_cast<uint8_t>(e.from);
    buf[fill++] = static_cast<uint8_t>(e.from >> 8);
    buf[fill++] = static_cast<uint8_t>(e.to);
    buf[fill++] = static_cast<uint8_t>(e.to >> 8);
    buf[fill++] = static_cast<uint8_t>((e.irq ? 1 : 0) | (e.reset ? 2 : 0) |
                                       (e.update ? 4 : 0));
    if (fill == sizeof(buf)) {
      mac.update(std::span<const uint8_t>(buf, fill));
      fill = 0;
    }
  }
  if (fill != 0) mac.update(std::span<const uint8_t>(buf, fill));
  return mac.finish();
}

Report CfaMonitor::take_report(uint64_t nonce, uint64_t device_cycle,
                               size_t max_edges) {
  Report r;
  r.seq = seq_++;
  r.cycle = device_cycle;
  // Overflow drops ride the first report that drains them: a bounded
  // slice sequence reports the same total drop count as the one
  // unbounded report would have.
  r.dropped = dropped_;
  dropped_ = 0;
  const size_t take =
      max_edges == 0 ? count_ : (max_edges < count_ ? max_edges : count_);
  r.edges.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    const size_t pos = head_ + i;
    r.edges.push_back(chunks_[pos / kChunkEdges][pos % kChunkEdges]);
  }
  head_ += take;
  count_ -= take;
  // Recycle fully-drained leading chunks; a fully-drained log resets
  // the cursor so the arena's steady state is independent of history.
  while (head_ >= kChunkEdges) {
    free_chunks_.push_back(std::move(chunks_.front()));
    chunks_.erase(chunks_.begin());
    head_ -= kChunkEdges;
  }
  if (count_ == 0) {
    while (!chunks_.empty()) {
      free_chunks_.push_back(std::move(chunks_.back()));
      chunks_.pop_back();
    }
    head_ = 0;
  }
  r.mac = mac_report(key_, nonce, r);
  return r;
}

bool CfaVerifier::replay_edge(const LoggedEdge& edge) {
  if (edge.update) {
    // Code epoch boundary: legitimate only if the verifier sanctioned
    // an update for this device (stage_cfg_swap / queue_cfg_swap). The
    // old CFG -- and the call/irq expectations pointing into the old
    // code -- die here; replay continues against the new build's CFG.
    if (pending_cfgs_.empty()) return false;
    cfg_ = std::move(pending_cfgs_.front());
    pending_cfgs_.pop_front();
    call_stack_.clear();
    irq_stack_.clear();
    return true;
  }
  if (edge.reset) {
    // Device rebooted: discard replay state, execution restarts clean.
    call_stack_.clear();
    irq_stack_.clear();
    return true;
  }
  if (edge.irq) {
    if (cfg_->isr_entries.count(edge.to) == 0) return false;
    irq_stack_.push_back(edge.from);  // resume point
    return true;
  }
  // Direct jump/branch edge?
  if (cfg_->has_jump_edge(edge.from, edge.to)) return true;
  // Call site?
  auto call = cfg_->call_sites.find(edge.from);
  if (call != cfg_->call_sites.end()) {
    if (call->second.indirect) {
      if (cfg_->call_targets.count(edge.to) == 0) return false;
    } else if (call->second.target != edge.to) {
      return false;
    }
    call_stack_.push_back(call->second.return_addr);
    return true;
  }
  // Return?
  if (cfg_->ret_addrs.count(edge.from) != 0) {
    if (call_stack_.empty() || call_stack_.back() != edge.to) return false;
    call_stack_.pop_back();
    return true;
  }
  // Return from interrupt?
  if (cfg_->reti_addrs.count(edge.from) != 0) {
    if (irq_stack_.empty() || irq_stack_.back() != edge.to) return false;
    irq_stack_.pop_back();
    return true;
  }
  return false;
}

CfaVerifier::Result CfaVerifier::verify(const Report& report, uint64_t nonce) {
  Result result;
  crypto::Digest expected = CfaMonitor::mac_report(key_, nonce, report);
  result.mac_ok = crypto::digest_equal(expected, report.mac);
  if (!result.mac_ok) return result;

  result.path_ok = true;
  for (const auto& edge : report.edges) {
    if (!replay_edge(edge)) {
      result.path_ok = false;
      result.first_bad = edge;
      break;
    }
  }
  return result;
}

void CfaVerifier::reset_replay() {
  call_stack_.clear();
  irq_stack_.clear();
  // Staged-but-unconsumed epoch swaps die with the replay state: a
  // fresh evidence stream starts from the device's current code, so a
  // stale queued CFG must not be consumed by some later, unrelated
  // update marker. cfg_ itself stays at the current epoch -- it tracks
  // what code the device runs, not how far replay got.
  pending_cfgs_.clear();
}

void CfaVerifier::queue_cfg_swap(std::shared_ptr<const Cfg> cfg) {
  pending_cfgs_.push_back(std::move(cfg));
}

}  // namespace eilid::cfa
