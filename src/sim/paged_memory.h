// Copy-on-write paged backing store for the 64 KiB device address
// space -- the memory-diet half of fleet scale. Every DeviceSession of
// a build boots byte-identical memory, so the Bus no longer owns a
// flat 64 KiB array: the address space is 256 pages of 256 bytes, each
// page either
//
//   - *shared*: a read-only view into the build's immutable flat image
//     (or the static zero page when no base is attached / the page was
//     wiped) -- costs nothing per device, or
//   - *owned*: a private 256-byte copy, materialized lazily by the
//     first store that lands on the page.
//
// Reads index a per-page pointer table that is always valid, so the
// inline read path costs one extra dependent load over the old flat
// array. Writes index a parallel table that is null until the page is
// owned; the miss path copies the current view into a recycled page
// and retries. Page granularity (256 B) divides every region boundary
// in the memory map, and word accesses are even-aligned, so no access
// ever straddles a page.
//
// Whole-image operations become page-map edits instead of 64 KiB
// copies: wipe_volatile() points RAM pages at the zero page,
// reflash() points the code pages back at the base image, and an
// adopted build swaps the base and reclaims owned pages whose bytes
// already match it. Owned pages are recycled through a free list, so a
// device that cycles write/wipe forever allocates a bounded set.
#ifndef EILID_SIM_PAGED_MEMORY_H
#define EILID_SIM_PAGED_MEMORY_H

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

namespace eilid::sim {

class PagedMemory {
 public:
  static constexpr size_t kPageBytes = 256;
  static constexpr size_t kPageCount = 0x10000 / kPageBytes;

  PagedMemory();

  // --- inline fast paths (the Bus's byte/word accessors) ------------
  uint8_t read(uint16_t addr) const {
    return read_[addr >> 8][addr & 0xFF];
  }
  // `addr` must be even (the Bus masks word addresses), so addr+1 stays
  // inside the same page.
  uint16_t read_word(uint16_t addr) const {
    const uint8_t* page = read_[addr >> 8];
    const size_t off = addr & 0xFF;
    return static_cast<uint16_t>(page[off] |
                                 (static_cast<uint16_t>(page[off + 1]) << 8));
  }
  void write(uint16_t addr, uint8_t value) {
    uint8_t* page = write_[addr >> 8];
    if (page == nullptr) page = materialize(addr >> 8);
    page[addr & 0xFF] = value;
  }
  void write_word(uint16_t addr, uint16_t value) {
    uint8_t* page = write_[addr >> 8];
    if (page == nullptr) page = materialize(addr >> 8);
    const size_t off = addr & 0xFF;
    page[off] = static_cast<uint8_t>(value);
    page[off + 1] = static_cast<uint8_t>(value >> 8);
  }

  // --- whole-image / page-map operations ----------------------------
  // Attach (or swap) the shared base image every non-owned page reads
  // through; null detaches (non-owned pages read zero). The image must
  // hold 65536 bytes; the pointer is held for the lifetime of the
  // attachment. Owned pages keep their private bytes -- swapping the
  // base never changes what an owned page reads.
  void attach_base(std::shared_ptr<const std::vector<uint8_t>> base);
  const std::shared_ptr<const std::vector<uint8_t>>& base() const {
    return base_;
  }

  // Point every page wholly inside [first, last] back at the base
  // image (zero when none), recycling owned pages; partial head/tail
  // pages are copied byte-wise. This is reflash: a 64 KiB restore for
  // the price of a few pointer stores.
  void reset_range_to_base(uint16_t first, uint16_t last);
  // Same shape, but the range reads zero afterwards (wipe_volatile:
  // volatile regions clear regardless of what the base holds there).
  void zero_range(uint16_t first, uint16_t last);
  // Recycle owned pages inside [first, last] whose bytes already equal
  // the base image's -- content-preserving by construction. Called
  // after an adopted build swaps the base: the update wrote exactly the
  // target image's bytes, so the pages it materialized match the new
  // base and can be dropped.
  void reclaim_identical(uint16_t first, uint16_t last);

  // Bulk store (image loading); wraps through address 0 like the
  // byte-at-a-time loop it models.
  void store_bytes(uint16_t addr, const uint8_t* bytes, size_t len);

  // --- accounting ---------------------------------------------------
  // Private bytes this instance holds beyond the shared base image:
  // materialized pages (owned + free-listed) plus the page tables.
  // The metric bench_fleet_10k gates per device.
  size_t resident_bytes() const {
    return pages_.size() * kPageBytes + sizeof(read_) + sizeof(write_);
  }
  size_t owned_pages() const { return pages_.size() - free_.size(); }

 private:
  uint8_t* materialize(size_t page);
  const uint8_t* base_page(size_t page) const;
  void release(size_t page, const uint8_t* view);

  std::array<const uint8_t*, kPageCount> read_;
  std::array<uint8_t*, kPageCount> write_{};
  std::shared_ptr<const std::vector<uint8_t>> base_;
  // Owned page storage. unique_ptr per page keeps addresses stable
  // while pages_ grows; retired pages go to free_ for reuse instead of
  // back to the allocator, so reset-heavy devices reach a steady state.
  std::vector<std::unique_ptr<std::array<uint8_t, kPageBytes>>> pages_;
  std::vector<uint8_t*> free_;
};

}  // namespace eilid::sim

#endif  // EILID_SIM_PAGED_MEMORY_H
