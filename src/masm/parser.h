// Line parser: assembly text -> Statement. Throws eilid::AsmError with
// file/line context on malformed input.
#ifndef EILID_MASM_PARSER_H
#define EILID_MASM_PARSER_H

#include <string>

#include "masm/statement.h"

namespace eilid::masm {

// Parse one source line. `file` and `line_no` are for error messages.
Statement parse_line(const std::string& raw, const std::string& file, int line_no);

// Parse an operand in isolation (used by the instrumenter when it
// synthesises code).
OperandExpr parse_operand(const std::string& text, const std::string& file,
                          int line_no);

// Parse `lit`, `sym`, `sym+lit`, `sym-lit`, `'c'`, `$`, `$+lit`.
Expr parse_expr(const std::string& text, const std::string& file, int line_no);

}  // namespace eilid::masm

#endif  // EILID_MASM_PARSER_H
