#include "casu/update.h"

namespace eilid::casu {

size_t UpdatePackage::payload_bytes() const {
  size_t n = 0;
  for (const auto& region : regions) n += region.payload.size();
  return n;
}

crypto::Digest package_mac(const crypto::Digest& update_key,
                           const UpdatePackage& package) {
  crypto::HmacSha256 mac(
      std::span<const uint8_t>(update_key.data(), update_key.size()));
  uint8_t header[4];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<uint8_t>(package.version >> (8 * i));
  }
  mac.update(std::span<const uint8_t>(header, sizeof(header)));
  for (const auto& region : package.regions) {
    const uint32_t len = static_cast<uint32_t>(region.payload.size());
    uint8_t rh[6];
    rh[0] = static_cast<uint8_t>(region.target_addr);
    rh[1] = static_cast<uint8_t>(region.target_addr >> 8);
    for (int i = 0; i < 4; ++i) rh[2 + i] = static_cast<uint8_t>(len >> (8 * i));
    mac.update(std::span<const uint8_t>(rh, sizeof(rh)));
    mac.update(std::span<const uint8_t>(region.payload.data(),
                                        region.payload.size()));
  }
  return mac.finish();
}

UpdateAuthority::UpdateAuthority(std::span<const uint8_t> device_key)
    : update_key_(crypto::derive_key(device_key, "casu-update")) {}

UpdatePackage UpdateAuthority::make_package(
    uint32_t version, std::vector<UpdateRegion> regions) const {
  UpdatePackage pkg;
  pkg.version = version;
  pkg.regions = std::move(regions);
  pkg.mac = package_mac(update_key_, pkg);
  return pkg;
}

UpdatePackage UpdateAuthority::make_package(
    uint16_t target_addr, uint32_t version,
    std::vector<uint8_t> payload) const {
  std::vector<UpdateRegion> regions;
  regions.push_back({target_addr, std::move(payload)});
  return make_package(version, std::move(regions));
}

UpdateEngine::UpdateEngine(std::span<const uint8_t> device_key,
                           sim::Machine& machine, CasuMonitor* monitor)
    : update_key_(crypto::derive_key(device_key, "casu-update")),
      machine_(machine),
      monitor_(monitor) {}

UpdateStatus UpdateEngine::apply(const UpdatePackage& package) {
  for (const auto& region : package.regions) {
    if (!sim::is_pmem(region.target_addr) ||
        region.target_addr + region.payload.size() > 0x10000) {
      return UpdateStatus::kBadRegion;
    }
  }
  crypto::Digest expected = package_mac(update_key_, package);
  if (!crypto::digest_equal(expected, package.mac)) {
    // Authentication failure is a monitored event: the ROM update
    // routine reports it and the device resets at the next step.
    if (monitor_ != nullptr) monitor_->report_update_auth_failure();
    return UpdateStatus::kBadMac;
  }
  if (package.version <= version_) {
    if (monitor_ != nullptr) monitor_->report_update_rollback();
    return UpdateStatus::kRollback;
  }
  if (monitor_ != nullptr) monitor_->begin_update_session();
  for (const auto& region : package.regions) {
    machine_.bus().raw_store_bytes(
        region.target_addr, std::span<const uint8_t>(region.payload.data(),
                                                     region.payload.size()));
  }
  if (monitor_ != nullptr) monitor_->end_update_session();
  version_ = package.version;
  return UpdateStatus::kApplied;
}

}  // namespace eilid::casu
