#include "eilid/device.h"

#include "common/error.h"

namespace eilid::core {

EilidHwConfig Device::make_hw_config(const BuildResult& build) {
  EilidHwConfig cfg;
  if (build.rom.unit.image.size_bytes() == 0) {
    cfg.casu.rom_present = false;
  } else {
    cfg.casu.rom_present = true;
    cfg.casu.entry_start = build.rom.entry_start;
    cfg.casu.entry_end = build.rom.entry_end;
    cfg.casu.leave_start = build.rom.leave_start;
    cfg.casu.leave_end = build.rom.leave_end;
  }
  return cfg;
}

Device::Device(const BuildResult& build, DeviceOptions options)
    : build_(build),
      machine_(options.clock_hz),
      monitor_(make_hw_config(build)),
      eilid_enabled_(build.rom.unit.image.size_bytes() != 0) {
  machine_.add_monitor(&monitor_);
  machine_.set_halt_on_reset(options.halt_on_reset);

  for (const auto& chunk : build_.app.image.chunks()) {
    machine_.load(chunk.base, chunk.data);
  }
  if (eilid_enabled_) {
    for (const auto& chunk : build_.rom.unit.image.chunks()) {
      machine_.load(chunk.base, chunk.data);
    }
  }
  machine_.power_on();
}

uint16_t Device::symbol(const std::string& name) const {
  auto it = build_.app.symbols.find(name);
  if (it == build_.app.symbols.end()) {
    throw ConfigError("unknown app symbol: " + name);
  }
  return it->second;
}

sim::RunResult Device::run_to_symbol(const std::string& name,
                                     uint64_t max_cycles) {
  return machine_.run_until(symbol(name), max_cycles);
}

}  // namespace eilid::core
