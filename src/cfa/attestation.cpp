#include "cfa/attestation.h"

#include "isa/decoder.h"

namespace eilid::cfa {

void CfaMonitor::log_edge(LoggedEdge edge) {
  ++total_edges_;
  if (log_.size() >= config_.log_capacity) {
    ++dropped_;  // the paper's "voluminous logs" problem, made visible
    return;
  }
  log_.push_back(edge);
}

void CfaMonitor::on_step(uint16_t from_pc, uint16_t to_pc) {
  // Determine the fall-through address by decoding the instruction that
  // just executed; anything else is a control transfer.
  std::array<uint16_t, 3> words = {
      bus_.raw_word(from_pc), bus_.raw_word(static_cast<uint16_t>(from_pc + 2)),
      bus_.raw_word(static_cast<uint16_t>(from_pc + 4))};
  auto decoded = isa::decode(words, from_pc);
  if (!decoded) return;
  if (to_pc != decoded->next_address()) {
    log_edge({from_pc, to_pc, false});
  }
}

void CfaMonitor::on_interrupt(int vector_index, uint16_t from_pc,
                              uint16_t to_pc) {
  (void)vector_index;
  log_edge({from_pc, to_pc, true});
}

void CfaMonitor::on_device_reset() {
  // Keep the accumulated evidence; mark the discontinuity.
  LoggedEdge marker;
  marker.reset = true;
  log_edge(marker);
}

crypto::Digest CfaMonitor::mac_report(const crypto::Digest& key, uint64_t nonce,
                                      uint32_t seq,
                                      const std::vector<LoggedEdge>& edges) {
  std::vector<uint8_t> msg;
  msg.reserve(12 + edges.size() * 5);
  for (int i = 0; i < 8; ++i) msg.push_back(static_cast<uint8_t>(nonce >> (8 * i)));
  for (int i = 0; i < 4; ++i) msg.push_back(static_cast<uint8_t>(seq >> (8 * i)));
  for (const auto& e : edges) {
    msg.push_back(static_cast<uint8_t>(e.from));
    msg.push_back(static_cast<uint8_t>(e.from >> 8));
    msg.push_back(static_cast<uint8_t>(e.to));
    msg.push_back(static_cast<uint8_t>(e.to >> 8));
    msg.push_back(static_cast<uint8_t>((e.irq ? 1 : 0) | (e.reset ? 2 : 0)));
  }
  return crypto::hmac_sha256(std::span<const uint8_t>(key.data(), key.size()),
                             std::span<const uint8_t>(msg.data(), msg.size()));
}

Report CfaMonitor::take_report(uint64_t nonce, uint64_t device_cycle) {
  Report r;
  r.seq = seq_++;
  r.cycle = device_cycle;
  r.dropped = dropped_;
  r.edges = std::move(log_);
  log_.clear();
  dropped_ = 0;
  r.mac = mac_report(key_, nonce, r.seq, r.edges);
  return r;
}

bool CfaVerifier::replay_edge(const LoggedEdge& edge) {
  if (edge.reset) {
    // Device rebooted: discard replay state, execution restarts clean.
    call_stack_.clear();
    irq_stack_.clear();
    return true;
  }
  if (edge.irq) {
    if (cfg_->isr_entries.count(edge.to) == 0) return false;
    irq_stack_.push_back(edge.from);  // resume point
    return true;
  }
  // Direct jump/branch edge?
  if (cfg_->has_jump_edge(edge.from, edge.to)) return true;
  // Call site?
  auto call = cfg_->call_sites.find(edge.from);
  if (call != cfg_->call_sites.end()) {
    if (call->second.indirect) {
      if (cfg_->call_targets.count(edge.to) == 0) return false;
    } else if (call->second.target != edge.to) {
      return false;
    }
    call_stack_.push_back(call->second.return_addr);
    return true;
  }
  // Return?
  if (cfg_->ret_addrs.count(edge.from) != 0) {
    if (call_stack_.empty() || call_stack_.back() != edge.to) return false;
    call_stack_.pop_back();
    return true;
  }
  // Return from interrupt?
  if (cfg_->reti_addrs.count(edge.from) != 0) {
    if (irq_stack_.empty() || irq_stack_.back() != edge.to) return false;
    irq_stack_.pop_back();
    return true;
  }
  return false;
}

CfaVerifier::Result CfaVerifier::verify(const Report& report, uint64_t nonce) {
  Result result;
  crypto::Digest expected =
      CfaMonitor::mac_report(key_, nonce, report.seq, report.edges);
  result.mac_ok = crypto::digest_equal(expected, report.mac);
  if (!result.mac_ok) return result;

  result.path_ok = true;
  for (const auto& edge : report.edges) {
    if (!replay_edge(edge)) {
      result.path_ok = false;
      result.first_bad = edge;
      break;
    }
  }
  return result;
}

void CfaVerifier::reset_replay() {
  call_stack_.clear();
  irq_stack_.clear();
}

}  // namespace eilid::cfa
