// Minimal leveled logger. Benchmarks and examples print their own
// tables; the logger is for diagnostics (instrumenter warnings, monitor
// violation reports) and is silent at default level.
#ifndef EILID_COMMON_LOG_H
#define EILID_COMMON_LOG_H

#include <string>

namespace eilid {

enum class LogLevel { kSilent = 0, kWarning = 1, kInfo = 2, kDebug = 3 };

// Process-wide threshold; messages above it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_warning(const std::string& msg);
void log_info(const std::string& msg);
void log_debug(const std::string& msg);

}  // namespace eilid

#endif  // EILID_COMMON_LOG_H
