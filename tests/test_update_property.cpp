// Property coverage for the update-result vocabulary and for the
// composition of the two adversary hooks: package-level tamper
// (CampaignOptions.tamper) must compose with chunked lossy transport
// -- a package tampered before chunking reassembles bit-perfectly and
// then fails the package MAC on the device (kBadMac), the device heals
// by reset, and pooled outcomes stay bit-identical to serial.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "casu/update.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "eilid/fleet.h"
#include "eilid/transport.h"

namespace eilid {
namespace {

// ------------------------------------------------------- name round-trips

// Exhaustive: every enumerator has a distinct, stable, non-placeholder
// name. A new enumerator that misses its switch case falls through to
// "?" and fails here.
TEST(UpdateNames, UpdateResultNameCoversEveryEnumerator) {
  const std::vector<std::pair<UpdateResult, std::string_view>> expected = {
      {UpdateResult::kApplied, "applied"},
      {UpdateResult::kAlreadyCurrent, "already-current"},
      {UpdateResult::kBadMac, "bad-mac"},
      {UpdateResult::kRollback, "rollback"},
      {UpdateResult::kBadRegion, "bad-region"},
      {UpdateResult::kIncompatible, "incompatible"},
      {UpdateResult::kImageMismatch, "image-mismatch"},
      {UpdateResult::kInterrupted, "interrupted"},
  };
  std::set<std::string_view> seen;
  for (const auto& [result, name] : expected) {
    EXPECT_EQ(update_result_name(result), name);
    EXPECT_NE(name, "?");
    seen.insert(update_result_name(result));
  }
  EXPECT_EQ(seen.size(), expected.size());  // names are distinct
}

TEST(UpdateNames, UpdateStatusNameCoversEveryEnumerator) {
  const std::vector<std::pair<casu::UpdateStatus, std::string_view>> expected =
      {
          {casu::UpdateStatus::kApplied, "applied"},
          {casu::UpdateStatus::kBadMac, "bad-mac"},
          {casu::UpdateStatus::kRollback, "rollback"},
          {casu::UpdateStatus::kBadRegion, "bad-region"},
          {casu::UpdateStatus::kInterrupted, "interrupted"},
      };
  std::set<std::string_view> seen;
  for (const auto& [status, name] : expected) {
    EXPECT_EQ(casu::update_status_name(status), name);
    seen.insert(casu::update_status_name(status));
  }
  EXPECT_EQ(seen.size(), expected.size());
}

TEST(UpdateNames, ChunkAckNameCoversEveryEnumerator) {
  const std::vector<std::pair<casu::ChunkAck, std::string_view>> expected = {
      {casu::ChunkAck::kAccepted, "accepted"},
      {casu::ChunkAck::kComplete, "complete"},
      {casu::ChunkAck::kDuplicate, "duplicate"},
      {casu::ChunkAck::kCorrupt, "corrupt"},
      {casu::ChunkAck::kMalformed, "malformed"},
  };
  std::set<std::string_view> seen;
  for (const auto& [ack, name] : expected) {
    EXPECT_EQ(casu::chunk_ack_name(ack), name);
    seen.insert(casu::chunk_ack_name(ack));
  }
  EXPECT_EQ(seen.size(), expected.size());
}

// Host-API misuse contract: a zero chunk size is a configuration
// error, not a silent one-empty-chunk transfer.
TEST(UpdateNames, ZeroChunkSizeThrows) {
  casu::UpdatePackage package;
  package.version = 1;
  package.regions.push_back({0xE000, {0x01, 0x02, 0x03}});
  EXPECT_THROW(casu::chunk_package(package, 0), ConfigError);
}

// ----------------------------------------------- tamper x chunking property

std::string firmware(int generation) {
  std::string s = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
)";
  for (int i = 0; i < generation + 1; ++i) s += "    call #emit\n";
  s += R"(halt:
    jmp halt
emit:
    mov.b #')";
  s += static_cast<char>('0' + generation);
  s += R"(', &UART_TX
    ret
.vector 15, main
.end
)";
  return s;
}

std::string device_id(size_t i) {
  std::string n = std::to_string(i);
  return "dev-" + std::string(n.size() < 2 ? 2 - n.size() : 0, '0') + n;
}

// Deterministic per-device tamper decision, recomputable by the test:
// roughly a third of the fleet gets one payload byte of its package
// flipped in transit (the MAC is left alone, so the forgery is
// detectable).
bool is_tampered(uint64_t seed, const std::string& id) {
  return common::SeededRng::keyed(seed, "tamper:" + id).chance(1, 3);
}

class TamperChunkingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TamperChunkingProperty, TamperComposesWithChunkingPooledEqualsSerial) {
  const uint64_t seed = GetParam();
  common::SeededRng rng(seed);
  const size_t devices = static_cast<size_t>(rng.range(4, 10));
  const size_t chunk_size = static_cast<size_t>(rng.range(1, 6)) * 8;

  CampaignOptions options;
  options.tamper = [seed](const DeviceSession& dev,
                          casu::UpdatePackage& package) {
    if (!is_tampered(seed, dev.id())) return;
    common::SeededRng r =
        common::SeededRng::keyed(seed, "flip:" + dev.id());
    casu::UpdateRegion& region =
        package.regions[r.below(package.regions.size())];
    region.payload[r.below(region.payload.size())] ^=
        static_cast<uint8_t>(1u << r.below(8));
  };
  TransportOptions transport;
  transport.chunk_size = chunk_size;
  transport.seed = seed;
  transport.max_rounds = 64;
  transport.faults = {.drop_per_mille = 100,
                      .corrupt_per_mille = 60,
                      .duplicate_per_mille = 50,
                      .reorder_per_mille = 80,
                      .delay_per_mille = 40};
  options.transport = transport;

  auto run = [&](common::ThreadPool* pool) {
    Fleet fleet;
    for (size_t i = 0; i < devices; ++i) {
      DeviceSession& dev =
          fleet.provision(device_id(i), firmware(0), "fw",
                          EnforcementPolicy::kCfaBaseline,
                          {.cfa = {.log_capacity = 65536}});
      dev.run_to_symbol("halt", 100000);
    }
    UpdateCampaign campaign =
        fleet.stage_update(firmware(1), "fw", {.eilid = false}, options);
    return pool ? campaign.roll_out(*pool) : campaign.roll_out();
  };

  const std::vector<UpdateOutcome> serial = run(nullptr);
  common::ThreadPool pool(6);
  const std::vector<UpdateOutcome> pooled = run(&pool);

  ASSERT_EQ(serial.size(), devices);
  ASSERT_EQ(pooled.size(), devices);
  for (size_t i = 0; i < devices; ++i) {
    EXPECT_EQ(serial[i], pooled[i]) << "seed " << seed << " " << device_id(i);
    // Tampering any part of the package makes the reassembled bytes
    // fail authentication -- chunking never launders a forgery.
    const UpdateResult expected = is_tampered(seed, device_id(i))
                                      ? UpdateResult::kBadMac
                                      : UpdateResult::kApplied;
    EXPECT_EQ(serial[i].result, expected)
        << "seed " << seed << " " << device_id(i);
    EXPECT_EQ(serial[i].version_after,
              expected == UpdateResult::kApplied ? 1u : 0u);
  }
}

// A tampered device heals by reset: power-cycle clears the latch and a
// clean re-delivery applies from scratch.
TEST(TamperChunkingHeals, TamperedDeviceHealsByResetThenApplies) {
  Fleet fleet;
  DeviceSession& dev =
      fleet.provision(device_id(0), firmware(0), "fw",
                      EnforcementPolicy::kCfaBaseline,
                      {.cfa = {.log_capacity = 65536}});
  dev.run_to_symbol("halt", 100000);

  CampaignOptions tampered;
  tampered.tamper = [](const DeviceSession&, casu::UpdatePackage& package) {
    package.regions[0].payload[0] ^= 0x80;
  };
  tampered.transport = TransportOptions{.chunk_size = 24};
  ASSERT_EQ(fleet.stage_update(firmware(1), "fw", {.eilid = false}, tampered)
                .apply_to(dev)
                .result,
            UpdateResult::kBadMac);
  EXPECT_EQ(dev.firmware_version(), 0u);

  dev.power_cycle();  // CASU heals on abuse: reset clears the latch
  CampaignOptions clean;
  clean.transport = TransportOptions{.chunk_size = 24};
  const UpdateOutcome out =
      fleet.stage_update(firmware(1), "fw", {.eilid = false}, clean)
          .apply_to(dev);
  EXPECT_EQ(out.result, UpdateResult::kApplied);
  EXPECT_FALSE(out.resumed);  // the forged transfer was not resumable
  EXPECT_EQ(dev.firmware_version(), 1u);
  EXPECT_TRUE(fleet.verifier().attest(dev).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TamperChunkingProperty,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace eilid
