// Reproduces Table IV: EILID software overhead (compile time, binary
// size, running time) for the seven evaluation applications, original
// vs EILID-instrumented, with per-app and average percentages.
//
// Expected shape (paper, openMSP430 @ Basys3): compile time +26..44 %
// (driven by the three-iteration build), binary size +5..22 %, running
// time +2.6..13.2 %, averages 34.30 % / 10.78 % / 7.35 %. Absolute
// values differ (host machine; simulated 8 MHz clock) -- see
// EXPERIMENTS.md.
#include <cstdio>

#include "bench/bench_util.h"

using namespace eilid;
using namespace eilid::bench;

int main() {
  std::printf("Table IV: EILID software overhead (7 applications)\n");
  std::printf("%-18s | %-26s | %-24s | %-28s\n", "Software",
              "Compile-time (ms)", "Binary size (bytes)", "Running time (us)");
  std::printf("%-18s | %8s %8s %7s | %7s %7s %7s | %9s %9s %7s\n", "",
              "orig", "eilid", "diff%", "orig", "eilid", "diff%", "orig",
              "eilid", "diff%");
  print_rule(110);

  double sum_compile = 0, sum_size = 0, sum_time = 0;
  int n = 0;
  for (const auto& app : apps::table4_apps()) {
    AppRun orig = run_app(app, /*eilid=*/false);
    AppRun inst = run_app(app, /*eilid=*/true);
    double c_orig = measure_compile_ms(app, false);
    double c_inst = measure_compile_ms(app, true);

    if (!orig.reached_halt || !inst.reached_halt || orig.violations ||
        inst.violations) {
      std::printf("%-18s | RUN FAILED (halt=%d/%d violations=%zu/%zu)\n",
                  app.name.c_str(), orig.reached_halt, inst.reached_halt,
                  orig.violations, inst.violations);
      continue;
    }

    double dc = pct(c_orig, c_inst);
    double ds = pct(static_cast<double>(orig.binary_size),
                    static_cast<double>(inst.binary_size));
    double dt = pct(orig.micros, inst.micros);
    sum_compile += dc;
    sum_size += ds;
    sum_time += dt;
    ++n;

    std::printf(
        "%-18s | %8.3f %8.3f %6.2f%% | %7zu %7zu %6.2f%% | %9.1f %9.1f "
        "%6.2f%%\n",
        app.name.c_str(), c_orig, c_inst, dc, orig.binary_size,
        inst.binary_size, ds, orig.micros, inst.micros, dt);
  }
  print_rule(110);
  if (n > 0) {
    std::printf("%-18s | %8s %8s %6.2f%% | %7s %7s %6.2f%% | %9s %9s %6.2f%%\n",
                "Average overhead", "", "", sum_compile / n, "", "",
                sum_size / n, "", "", sum_time / n);
  }
  std::printf(
      "\npaper averages: compile +34.30%%, binary +10.78%%, runtime +7.35%%\n");
  return 0;
}
