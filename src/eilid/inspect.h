// Host-side inspector for EILID's secure DMEM (tests and examples
// peek at the shadow stack / indirect-call table via raw bus access --
// something the simulated CPU itself is forbidden to do).
#ifndef EILID_EILID_INSPECT_H
#define EILID_EILID_INSPECT_H

#include <cstdint>
#include <vector>

#include "eilid/config.h"
#include "eilid/device.h"
#include "eilid/session.h"

namespace eilid::core {

class ShadowInspector {
 public:
  explicit ShadowInspector(Device& device)
      : machine_(device.machine()), cfg_(device.build().rom.config) {}
  explicit ShadowInspector(DeviceSession& session)
      : machine_(session.machine()), cfg_(session.build().rom.config) {}

  // Number of live shadow entries (r5, or the memory-backed index).
  uint16_t depth() const {
    if (cfg_.memory_backed_index) {
      return machine_.bus().raw_word(cfg_.idx_addr());
    }
    return machine_.cpu().reg(kIndexReg);
  }

  uint16_t entry(uint16_t i) const {
    return machine_.bus().raw_word(
        static_cast<uint16_t>(cfg_.shadow_base_addr() + 2 * i));
  }

  std::vector<uint16_t> entries() const {
    std::vector<uint16_t> out;
    for (uint16_t i = 0; i < depth(); ++i) out.push_back(entry(i));
    return out;
  }

  uint16_t table_count() const {
    return machine_.bus().raw_word(cfg_.tbl_count_addr());
  }
  bool table_locked() const {
    return machine_.bus().raw_word(cfg_.tbl_lock_addr()) != 0;
  }
  uint16_t table_entry(uint16_t i) const {
    return machine_.bus().raw_word(
        static_cast<uint16_t>(cfg_.tbl_base_addr() + 2 * i));
  }

 private:
  sim::Machine& machine_;
  RomConfig cfg_;
};

}  // namespace eilid::core

#endif  // EILID_EILID_INSPECT_H
