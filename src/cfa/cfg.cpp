#include "cfa/cfg.h"

#include "isa/decoder.h"
#include "isa/registers.h"
#include "sim/memory_map.h"

namespace eilid::cfa {
namespace {

bool is_ret(const isa::Instruction& insn) {
  return insn.op == isa::Opcode::kMov &&
         insn.src.mode == isa::AddrMode::kIndirectInc &&
         insn.src.reg == isa::kSP &&
         insn.dst.mode == isa::AddrMode::kRegister && insn.dst.reg == isa::kPC;
}

bool is_br_imm(const isa::Instruction& insn) {
  return insn.op == isa::Opcode::kMov &&
         insn.src.mode == isa::AddrMode::kImmediate &&
         insn.dst.mode == isa::AddrMode::kRegister && insn.dst.reg == isa::kPC;
}

}  // namespace

Cfg extract_cfg(const masm::AssembledUnit& unit) {
  Cfg cfg;

  for (size_t i = 0; i < unit.listing.lines.size(); ++i) {
    const auto& line = unit.listing.lines[i];
    if (!line.is_instruction || line.bytes.size() < 2) continue;
    std::array<uint16_t, 3> words{};
    for (size_t w = 0; w < 3 && 2 * w + 1 < line.bytes.size(); ++w) {
      words[w] = static_cast<uint16_t>(line.bytes[2 * w] |
                                       (line.bytes[2 * w + 1] << 8));
    }
    auto decoded = isa::decode(words, line.address);
    if (!decoded) continue;
    cfg.code_addrs.insert(line.address);
    const auto& insn = decoded->insn;

    if (isa::opcode_info(insn.op).format == isa::Format::kJump) {
      cfg.jump_edges.insert(Cfg::edge(line.address, decoded->jump_target()));
      continue;
    }
    if (insn.op == isa::Opcode::kCall) {
      CallSite site;
      site.return_addr = decoded->next_address();
      if (insn.src.mode == isa::AddrMode::kImmediate) {
        site.target = static_cast<uint16_t>(insn.src.value);
        cfg.call_targets.insert(site.target);
      } else {
        site.indirect = true;
      }
      cfg.call_sites.emplace(line.address, site);
      continue;
    }
    if (is_ret(insn)) {
      cfg.ret_addrs.insert(line.address);
      continue;
    }
    if (insn.op == isa::Opcode::kReti) {
      cfg.reti_addrs.insert(line.address);
      continue;
    }
    if (is_br_imm(insn)) {
      cfg.jump_edges.insert(
          Cfg::edge(line.address, static_cast<uint16_t>(insn.src.value)));
      continue;
    }
  }

  for (const auto& f : unit.func_symbols) {
    auto it = unit.symbols.find(f);
    if (it != unit.symbols.end()) cfg.call_targets.insert(it->second);
  }
  for (const auto& [slot, handler] : unit.vectors) {
    auto it = unit.symbols.find(handler);
    if (it == unit.symbols.end()) continue;
    if (slot == sim::kResetVectorIndex) {
      cfg.reset_entry = it->second;
    } else {
      cfg.isr_entries.insert(it->second);
    }
  }
  return cfg;
}

}  // namespace eilid::cfa
