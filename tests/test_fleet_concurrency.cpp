// The parallel fleet engine under contention (run these under
// ThreadSanitizer -- the CI tsan job does): single-flight build cache,
// sharded registry, concurrent attestation with per-device locking,
// and the determinism contract of the pooled verify_all() sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "eilid/fleet.h"

namespace eilid {
namespace {

const char* kTinyApp = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
    call #emit
    call #emit
halt:
    jmp halt
emit:
    mov.b #'x', &UART_TX
    ret
.vector 15, main
.end
)";

// ------------------------------------------------------------- pool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  common::ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstError) {
  common::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](size_t i) {
                                   if (i == 7) {
                                     throw FleetError("boom");
                                   }
                                 }),
               FleetError);
  // The pool survives a failed sweep.
  std::atomic<size_t> ran{0};
  pool.parallel_for(64, [&](size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 64u);
}

// ------------------------------------------------- single-flight cache

// Many threads race provision() of the same source: exactly one
// pipeline run, every session flashed from the one shared result.
TEST(FleetConcurrency, ConcurrentProvisionIsSingleFlight) {
  Fleet fleet;
  constexpr size_t kDevices = 16;
  common::ThreadPool pool(8);
  std::vector<DeviceSession*> devices(kDevices);
  pool.parallel_for(kDevices, [&](size_t i) {
    devices[i] =
        &fleet.provision("node-" + std::to_string(i), kTinyApp, "tiny",
                         EnforcementPolicy::kEilidHw);
  });

  EXPECT_EQ(fleet.pipeline_runs(), 1u);
  EXPECT_EQ(fleet.build_cache_hits(), kDevices - 1);
  EXPECT_EQ(fleet.build_cache_size(), 1u);
  EXPECT_EQ(fleet.size(), kDevices);
  EXPECT_EQ(fleet.sessions().size(), kDevices);
  for (size_t i = 0; i < kDevices; ++i) {
    EXPECT_EQ(devices[i]->shared_build().get(),
              devices[0]->shared_build().get());
    EXPECT_EQ(fleet.find("node-" + std::to_string(i)), devices[i]);
  }
}

// A racing duplicate id is rejected exactly once and leaves the one
// winner deployed.
TEST(FleetConcurrency, ConcurrentDuplicateDeployOneWinner) {
  Fleet fleet;
  auto build = fleet.build(kTinyApp, "tiny", {.eilid = false});
  std::atomic<size_t> rejected{0};
  common::ThreadPool pool(8);
  pool.parallel_for(8, [&](size_t) {
    try {
      fleet.deploy("contested", build, EnforcementPolicy::kCfaBaseline);
    } catch (const FleetError&) {
      ++rejected;
    }
  });
  EXPECT_EQ(rejected.load(), 7u);
  EXPECT_EQ(fleet.size(), 1u);
  EXPECT_TRUE(fleet.verifier().enrolled("contested"));
}

// --------------------------------------------------------- attestation

// Disjoint devices attest concurrently; every verdict is clean and
// per-device sequence tracking never cross-talks.
TEST(FleetConcurrency, ConcurrentAttestDisjointDevices) {
  Fleet fleet;
  constexpr size_t kDevices = 12;
  std::vector<DeviceSession*> devices;
  for (size_t i = 0; i < kDevices; ++i) {
    DeviceSession& dev =
        fleet.provision("cfa-" + std::to_string(i), kTinyApp, "tiny",
                        EnforcementPolicy::kCfaBaseline);
    dev.run_to_symbol("halt", 100000);
    devices.push_back(&dev);
  }

  common::ThreadPool pool(8);
  constexpr int kRounds = 4;
  std::vector<VerifierService::AttestResult> verdicts(kDevices);
  for (int round = 0; round < kRounds; ++round) {
    pool.parallel_for(kDevices, [&](size_t i) {
      verdicts[i] = fleet.verifier().attest(*devices[i]);
    });
    for (size_t i = 0; i < kDevices; ++i) {
      EXPECT_TRUE(verdicts[i].ok()) << verdicts[i].device_id;
      EXPECT_EQ(verdicts[i].seq, static_cast<uint32_t>(round))
          << verdicts[i].device_id;
    }
  }
}

// Simulation and attestation race on the same devices: per-device
// locking keeps both sides coherent (this is the TSan-interesting
// case; verdict contents depend on interleaving, so only invariants
// are checked).
TEST(FleetConcurrency, WorkloadsRaceAttestationSweeps) {
  const auto& app = apps::app_by_name("temp_sensor");
  Fleet fleet;
  constexpr size_t kDevices = 8;
  std::vector<apps::FleetWorkload> work;
  for (size_t i = 0; i < kDevices; ++i) {
    DeviceSession& dev = fleet.provision(
        "racer-" + std::to_string(i), app.source, app.name,
        EnforcementPolicy::kCfaBaseline, {.cfa = {.log_capacity = 65536}});
    work.push_back({&dev, &app, 0});
  }

  common::ThreadPool workers(4);
  common::ThreadPool sweeper(2);
  std::atomic<bool> done{false};
  std::atomic<size_t> sweeps{0};
  std::thread attestor([&] {
    while (!done.load()) {
      for (const auto& verdict : fleet.verifier().verify_all(sweeper)) {
        EXPECT_TRUE(verdict.attested) << verdict.device_id;
        EXPECT_TRUE(verdict.mac_ok) << verdict.device_id;
        EXPECT_TRUE(verdict.seq_ok) << verdict.device_id;
      }
      ++sweeps;
    }
  });
  auto outcomes = apps::run_workload_all(work, workers);
  done.store(true);
  attestor.join();

  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.reached_halt);
    EXPECT_TRUE(outcome.check_failure.empty()) << outcome.check_failure;
  }
  EXPECT_GE(sweeps.load(), 1u);
}

// ------------------------------------------------------- verify_all()

// The pooled sweep is a drop-in for the serial one: identical verdict
// tuples in identical enrollment-id order, for any worker count.
TEST(FleetConcurrency, VerifyAllMatchesSerialSweep) {
  const auto& app = apps::app_by_name("light_sensor");

  auto build_fleet = [&](Fleet& fleet) {
    std::vector<DeviceSession*> devices;
    for (int i = 0; i < 10; ++i) {
      DeviceSession& dev = fleet.provision(
          "dev-" + std::to_string(i), app.source, app.name,
          EnforcementPolicy::kCfaBaseline, {.cfa = {.log_capacity = 65536}});
      apps::run_workload(dev, app);
      devices.push_back(&dev);
    }
    return devices;
  };

  Fleet serial_fleet;
  Fleet pooled_fleet;
  build_fleet(serial_fleet);
  build_fleet(pooled_fleet);

  common::ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    auto serial = serial_fleet.verifier().verify_all();
    auto pooled = pooled_fleet.verifier().verify_all(pool);
    ASSERT_EQ(serial.size(), pooled.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].device_id, pooled[i].device_id) << i;
      EXPECT_EQ(serial[i].attested, pooled[i].attested) << i;
      EXPECT_EQ(serial[i].seq, pooled[i].seq) << i;
      EXPECT_EQ(serial[i].cycle, pooled[i].cycle) << i;
      EXPECT_EQ(serial[i].mac_ok, pooled[i].mac_ok) << i;
      EXPECT_EQ(serial[i].seq_ok, pooled[i].seq_ok) << i;
      EXPECT_EQ(serial[i].path_ok, pooled[i].path_ok) << i;
      EXPECT_EQ(serial[i].edges, pooled[i].edges) << i;
      EXPECT_EQ(serial[i].dropped, pooled[i].dropped) << i;
      EXPECT_TRUE(pooled[i].ok()) << pooled[i].device_id;
    }
    // Enrollment-id order, regardless of worker interleaving.
    for (size_t i = 1; i < pooled.size(); ++i) {
      EXPECT_LT(pooled[i - 1].device_id, pooled[i].device_id);
    }
  }
}

}  // namespace
}  // namespace eilid
