// Quickstart: the EILID library in one file.
//
//   1. Write an MSP430 application (assembly, as EILIDinst consumes).
//   2. Build it twice: original, and EILID-instrumented through the
//      three-iteration pipeline (Fig. 2 of the paper).
//   3. Run both on the simulated CASU/EILID device and compare cost.
//   4. Corrupt a return address at run time: the original device is
//      hijacked, the EILID device resets in real time.
//
// Build tree: ./build/examples/quickstart
#include <cstdio>

#include "src/attacks/attack.h"
#include "src/eilid/device.h"
#include "src/eilid/pipeline.h"

using namespace eilid;

namespace {

// A tiny sensor loop: read the ADC, accumulate, report over UART.
const char* kApp = R"(.equ ADC_CTL, 0x0110
.equ ADC_MEM, 0x0112
.equ ADC_STAT, 0x0114
.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1         ; set up the stack
    mov #8, r10             ; eight samples
loop:
    call #sample            ; r9 = reading
    add r9, r11
    mov.b r9, &UART_TX
    dec r10
    jnz loop
halt:
    jmp halt

sample:
    mov #0x100, &ADC_CTL    ; start conversion, channel 0
s_wait:
    tst &ADC_STAT
    jz s_wait
    mov &ADC_MEM, r9
    ret

.vector 15, main
.end
)";

void run_device(const char* label, bool eilid, bool attack) {
  core::BuildOptions options;
  options.eilid = eilid;
  core::BuildResult build = core::build_app(kApp, "quickstart", options);
  core::Device device(build, {.clock_hz = 8e6, .halt_on_reset = true});
  device.machine().adc().set_channel_series(0, {10, 20, 30, 40, 50, 60, 70, 80});

  attacks::AttackEngine engine(device.machine());
  if (attack) {
    // On the 3rd call of sample(), overwrite its saved return address
    // (top of stack) with `halt` -- a minimal control-flow hijack.
    attacks::Attack a;
    a.name = "ret-overwrite";
    a.trigger = {attacks::Trigger::Kind::kAtPcHit, device.symbol("sample"), 3};
    attacks::MemWrite w;
    w.sp_relative = true;
    w.addr = 0;
    w.value = device.symbol("halt");
    a.writes = {w};
    engine.schedule(a);
  }

  auto result = device.run_to_symbol("halt", 100000);
  std::printf("%-28s | %4zu B | %6llu cycles | %zu samples out | %s\n", label,
              build.binary_size(),
              static_cast<unsigned long long>(result.cycles),
              device.machine().uart().tx_log().size(),
              device.machine().violation_count()
                  ? ("RESET: " + sim::reset_reason_name(
                                     device.machine().resets().back().reason))
                        .c_str()
                  : "clean run");
}

}  // namespace

int main() {
  std::printf("EILID quickstart\n");
  std::printf("%-28s | %-6s | %-12s | %-14s | %s\n", "configuration", "size",
              "time", "output", "outcome");
  for (int i = 0; i < 100; ++i) std::putchar('-');
  std::putchar('\n');
  run_device("original", false, false);
  run_device("EILID", true, false);
  run_device("original + ret attack", false, true);
  run_device("EILID + ret attack", true, true);
  std::printf(
      "\nThe attacked original device silently loses five samples (the "
      "hijacked\nreturn skipped the rest of the loop); the EILID device "
      "catches the corrupt\nreturn address in S_EILID_check_ra and resets "
      "before it is ever used.\n");
  return 0;
}
