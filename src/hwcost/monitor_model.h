// Structural cost models of the CASU and EILID hardware monitors. The
// bill of materials mirrors, check by check, what src/casu/monitor.cpp
// and src/eilid/hw_monitor.h implement -- so the LUT/FF estimate is
// derived from the *actual* enforced invariants, not hand-tuned.
#ifndef EILID_HWCOST_MONITOR_MODEL_H
#define EILID_HWCOST_MONITOR_MODEL_H

#include "hwcost/primitives.h"

namespace eilid::hwcost {

// CASU alone: W^X, PMEM immutability, ROM gate, update session, reset.
BillOfMaterials casu_monitor_bom();

// EILID's *additional* hardware on top of CASU: the secure-DMEM
// (shadow stack) access checks and the violation-code capture. The
// paper reports this as +99 LUTs / +34 registers over openMSP430.
BillOfMaterials eilid_extension_bom();

// CASU + EILID extension (the full monitor of an EILID device).
BillOfMaterials eilid_full_bom();

}  // namespace eilid::hwcost

#endif  // EILID_HWCOST_MONITOR_MODEL_H
