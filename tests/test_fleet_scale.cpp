// Fleet at 10k scale: the copy-on-write paged device memory
// (sim::PagedMemory behind Bus) and the incremental windowed verifier
// (eilid::IncrementalVerifier). The two invariants everything here
// gates:
//
//   1. Paged memory is observationally identical to the old flat
//      64 KiB array -- under random writes, resets, reflashes,
//      wipe_volatile, base swaps and self-modifying code, across all
//      three execution engines -- while a device's resident bytes stay
//      proportional to what it *dirtied*, not to the address space.
//   2. Windowed slice-by-slice verification folds to verdicts
//      bit-identical to the barrier verify_all() on the same evidence
//      (serial and pooled), convicting a hijack at the same edge.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "casu/update.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "eilid/fleet.h"
#include "eilid/health.h"
#include "eilid/incremental.h"
#include "eilid/pipeline.h"
#include "sim/memory_map.h"
#include "sim/paged_memory.h"

namespace eilid {
namespace {

// Firmware generations with genuinely different layouts (the
// emit-call count shifts every later address).
std::string firmware(int generation) {
  std::string s = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
)";
  for (int i = 0; i < generation + 1; ++i) s += "    call #emit\n";
  s += R"(halt:
    jmp halt
emit:
    mov.b #')";
  s += static_cast<char>('0' + generation);
  s += R"(', &UART_TX
    ret
.vector 15, main
.end
)";
  return s;
}

std::string device_id(size_t i) {
  std::string n = std::to_string(i);
  return "dev-" + std::string(n.size() < 2 ? 2 - n.size() : 0, '0') + n;
}

void provision_fleet(Fleet& fleet, size_t devices) {
  for (size_t i = 0; i < devices; ++i) {
    DeviceSession& dev =
        fleet.provision(device_id(i), firmware(0), "fw",
                        EnforcementPolicy::kCfaBaseline,
                        {.cfa = {.log_capacity = 65536}});
    dev.run_to_symbol("halt", 100000);
  }
}

// Rogue-but-validly-MAC'd out-of-band patch: the device applies it (the
// MAC verifies), logs an epoch marker no campaign sanctioned, and the
// next sweep convicts the unexplained code change (path_ok = false).
void diverge_out_of_band(Fleet& fleet, const std::string& id) {
  DeviceSession& dev = fleet.at(id);
  const crypto::Digest key = fleet.update_key(id);
  casu::UpdateAuthority authority(
      std::span<const uint8_t>(key.data(), key.size()));
  ASSERT_EQ(dev.apply_update(authority.make_package(
                0xE800, dev.firmware_version() + 1, {0x03, 0x43})),
            casu::UpdateStatus::kApplied);
}

// ---------------------------------------------------- PagedMemory

// The COW pager against a flat 64 KiB reference array, under a random
// mix of every mutation the Bus can issue. After every operation the
// entire address space must read identically.
TEST(PagedMemoryTest, MatchesFlatReferenceUnderRandomOperations) {
  auto base = std::make_shared<const std::vector<uint8_t>>([] {
    std::vector<uint8_t> image(0x10000, 0);
    common::SeededRng fill(11);
    for (size_t i = 0xE000; i < 0x10000; ++i) image[i] = fill.u8();
    return image;
  }());
  auto base2 = std::make_shared<const std::vector<uint8_t>>([] {
    std::vector<uint8_t> image(0x10000, 0);
    common::SeededRng fill(12);
    for (size_t i = 0xA000; i < 0x10000; ++i) image[i] = fill.u8();
    return image;
  }());

  sim::PagedMemory mem;
  std::vector<uint8_t> ref(0x10000, 0);
  auto sync_ref_to = [&ref](const std::vector<uint8_t>& img) { ref = img; };

  mem.attach_base(base);
  sync_ref_to(*base);

  common::SeededRng rng(0xF1EE7);
  for (int op = 0; op < 4000; ++op) {
    switch (rng.below(100)) {
      default: {  // byte write (the common case)
        const uint16_t addr = rng.u16();
        const uint8_t value = rng.u8();
        mem.write(addr, value);
        ref[addr] = value;
        break;
      }
      case 0: case 1: case 2: case 3: case 4:
      case 5: case 6: case 7: case 8: case 9: {  // word write
        const uint16_t addr = rng.u16() & 0xFFFE;
        const uint16_t value = rng.u16();
        mem.write_word(addr, value);
        ref[addr] = static_cast<uint8_t>(value & 0xFF);
        ref[addr + 1] = static_cast<uint8_t>(value >> 8);
        break;
      }
      case 10: case 11: case 12: case 13: {  // bulk store, may wrap 0xFFFF
        const uint16_t addr = rng.u16();
        std::vector<uint8_t> bytes(1 + rng.below(700));
        for (auto& b : bytes) b = rng.u8();
        mem.store_bytes(addr, bytes.data(), bytes.size());
        for (size_t i = 0; i < bytes.size(); ++i) {
          ref[static_cast<uint16_t>(addr + i)] = bytes[i];
        }
        break;
      }
      case 14: case 15: {  // wipe_volatile analog
        mem.zero_range(sim::kRamStart, sim::kRamEnd);
        mem.zero_range(sim::kSecureRamStart, sim::kSecureRamEnd);
        std::fill(ref.begin() + sim::kRamStart,
                  ref.begin() + sim::kRamEnd + 1, 0);
        std::fill(ref.begin() + sim::kSecureRamStart,
                  ref.begin() + sim::kSecureRamEnd + 1, 0);
        break;
      }
      case 16: case 17: {  // reflash analog (partial-page boundaries too)
        const uint16_t first = 0xE000 + (rng.u16() & 0x0FFF);
        const uint16_t last =
            static_cast<uint16_t>(first + rng.below(0x10000 - first));
        mem.reset_range_to_base(first, last);
        const auto& img = *mem.base();
        std::copy(img.begin() + first, img.begin() + last + 1,
                  ref.begin() + first);
        break;
      }
      case 18: {  // adopt_build analog: swap base, reclaim clean pages
        const auto& next = mem.base() == base ? base2 : base;
        // A base swap alone changes what un-owned pages read; mirror by
        // materializing everything first (write-back), which the pager
        // must treat as all-owned and therefore swap-invariant.
        for (uint32_t page = 0; page < 0x100; ++page) {
          const uint16_t addr = static_cast<uint16_t>(page << 8);
          mem.write(addr, mem.read(addr));
        }
        mem.attach_base(next);
        mem.reclaim_identical(0x0000, 0xFFFF);
        break;
      }
      case 19: {  // reclaim is a pure storage optimization
        mem.reclaim_identical(rng.u16(), 0xFFFF);
        break;
      }
    }
    if (op % 97 == 0 || op == 3999) {
      for (uint32_t a = 0; a < 0x10000; ++a) {
        ASSERT_EQ(mem.read(static_cast<uint16_t>(a)),
                  ref[static_cast<uint16_t>(a)])
            << "op " << op << " addr " << a;
      }
    }
  }
  // Residency stays page-proportional: the tables plus at most one
  // owned copy of the address space, never more.
  EXPECT_LE(mem.resident_bytes(),
            0x10000u + 2 * sizeof(void*) * sim::PagedMemory::kPageCount);
}

TEST(PagedMemoryTest, ResidencyTracksDirtiedPagesOnly) {
  auto base = std::make_shared<const std::vector<uint8_t>>(
      std::vector<uint8_t>(0x10000, 0xAB));
  sim::PagedMemory mem;
  mem.attach_base(base);
  const size_t tables = mem.resident_bytes();
  EXPECT_EQ(mem.owned_pages(), 0u);

  mem.write(0x0200, 1);    // one RAM page
  mem.write(0x0201, 2);    // same page: no growth
  mem.write(0xE000, 3);    // one PMEM page
  EXPECT_EQ(mem.owned_pages(), 2u);
  EXPECT_EQ(mem.resident_bytes(), tables + 2 * sim::PagedMemory::kPageBytes);

  // A page written back to its base value is reclaimable.
  mem.write(0xE000, 0xAB);
  mem.reclaim_identical(0xE000, 0xEFFF);
  EXPECT_EQ(mem.owned_pages(), 1u);

  // Full-page resets release; the recycled pages are reused, so the
  // arena's high-water mark -- not churn -- bounds residency.
  mem.reset_range_to_base(0x0200, 0x02FF);
  EXPECT_EQ(mem.owned_pages(), 0u);
  mem.write(0x0400, 9);
  EXPECT_EQ(mem.resident_bytes(), tables + 2 * sim::PagedMemory::kPageBytes);
}

// A provisioned device's private cost is a handful of dirtied pages,
// not the 64 KiB address space; reflash returns it to near-baseline.
TEST(PagedMemoryTest, SessionResidentBytesStayNearSharedImageCost) {
  Fleet fleet;
  provision_fleet(fleet, 2);
  DeviceSession& dev = fleet.at(device_id(0));
  const size_t resident = dev.resident_memory_bytes();
  // Page tables (~4 KiB) + a few RAM/stack pages + the CFA arena's
  // first chunk: far below a flat 64 KiB copy.
  EXPECT_LT(resident, 16384u);
  dev.reflash();
  EXPECT_LE(dev.resident_memory_bytes(), resident);
}

// ------------------------------------------- three-engine differential

// Random write/reset/reflash/self-modify sequences must leave all
// three engines in bit-identical states -- same retirement counts,
// registers, and full memory image -- on the paged memory exactly as
// they did on the flat array. kNone policy so self-modifying stores
// are legal.
TEST(PagedMemoryTest, EnginesStayBitIdenticalUnderResetsAndSelfModification) {
  constexpr ExecutionEngine kEngines[] = {ExecutionEngine::kInterpretive,
                                          ExecutionEngine::kPredecoded,
                                          ExecutionEngine::kSuperblock};
  std::vector<std::unique_ptr<Fleet>> fleets;
  std::vector<DeviceSession*> devs;
  for (ExecutionEngine engine : kEngines) {
    auto fleet = std::make_unique<Fleet>();
    devs.push_back(&fleet->provision("d", firmware(0), "fw",
                                     EnforcementPolicy::kNone,
                                     {.engine = engine}));
    fleets.push_back(std::move(fleet));
  }

  common::SeededRng script(0x5EED);
  for (int round = 0; round < 30; ++round) {
    const uint64_t budget = 200 + script.below(3000);
    const uint64_t action = script.below(6);
    const uint16_t addr = 0xE000 + (script.u16() & 0x1FFE);
    const uint16_t value = script.u16();
    for (DeviceSession* dev : devs) {
      dev->run(budget);
      switch (action) {
        case 0:
          dev->power_cycle();
          break;
        case 1:
          dev->reflash();
          break;
        case 2:
        case 3:
          // Self-modifying store into PMEM: bumps the code generation,
          // drops table-driven engines to interpretive decode.
          dev->machine().bus().raw_store_word(addr, value);
          break;
        default:
          break;
      }
    }
    for (size_t e = 1; e < devs.size(); ++e) {
      ASSERT_EQ(devs[e]->machine().cycles(), devs[0]->machine().cycles())
          << "round " << round;
      ASSERT_EQ(devs[e]->machine().cpu().instructions_retired(),
                devs[0]->machine().cpu().instructions_retired())
          << "round " << round;
      for (int r = 0; r < 16; ++r) {
        ASSERT_EQ(devs[e]->machine().cpu().reg(r),
                  devs[0]->machine().cpu().reg(r))
            << "round " << round << " r" << r;
      }
      for (uint32_t a = 0; a < 0x10000; a += 2) {
        ASSERT_EQ(devs[e]->machine().bus().raw_word(static_cast<uint16_t>(a)),
                  devs[0]->machine().bus().raw_word(static_cast<uint16_t>(a)))
            << "round " << round << " addr " << a;
      }
    }
  }
}

// --------------------------------------------------- CFA arena slices

TEST(CfaArenaTest, BoundedSlicesCarryExactlyTheBarrierEvidence) {
  // Two identical devices accumulate identical logs; drain one in one
  // unbounded report and the other in bounded slices.
  Fleet barrier_fleet;
  Fleet sliced_fleet;
  provision_fleet(barrier_fleet, 1);
  provision_fleet(sliced_fleet, 1);
  // Spin the halt loop: every `jmp halt` iteration logs an edge, so the
  // logs span several slices (and several arena chunks' worth over the
  // device's life).
  barrier_fleet.at(device_id(0)).run(600);
  sliced_fleet.at(device_id(0)).run(600);
  cfa::CfaMonitor* whole = barrier_fleet.at(device_id(0)).cfa_monitor();
  cfa::CfaMonitor* sliced = sliced_fleet.at(device_id(0)).cfa_monitor();
  ASSERT_GT(whole->log_size(), 10u);
  ASSERT_EQ(whole->log_size(), sliced->log_size());

  const uint64_t arena_before = sliced->total_log_bytes();
  EXPECT_GT(arena_before, 0u);

  cfa::Report full = whole->take_report(7, 0);
  std::vector<cfa::LoggedEdge> concatenated;
  uint32_t seq = 0;
  while (sliced->log_size() > 0) {
    cfa::Report slice = sliced->take_report(100 + seq, 0, 3);
    EXPECT_EQ(slice.seq, seq++);
    EXPECT_LE(slice.edges.size(), 3u);
    concatenated.insert(concatenated.end(), slice.edges.begin(),
                        slice.edges.end());
  }
  EXPECT_EQ(concatenated, full.edges);
  // Drained chunks recycle through the free list: the arena's resident
  // bytes never exceed the pre-drain high-water mark, and an emptied
  // log does not free-and-regrow.
  EXPECT_EQ(sliced->total_log_bytes(), arena_before);
}

// --------------------------------------- incremental windowed verdicts

// Fold every device's barrier verdicts (one verify_all per evidence
// phase) into summaries, keyed by id.
std::map<std::string, AttestSummary> fold_all(
    std::map<std::string, AttestSummary> acc,
    const std::vector<VerifierService::AttestResult>& results) {
  for (const auto& r : results) fold(acc[r.device_id], r);
  return acc;
}

// Drive the windowed verifier until every device's log is drained.
void drain_windowed(Fleet& fleet, IncrementalVerifier& verifier,
                    common::ThreadPool* pool) {
  for (int guard = 0; guard < 10000; ++guard) {
    bool pending = false;
    for (DeviceSession* s : fleet.sessions()) {
      if (s->cfa_monitor() != nullptr && s->cfa_monitor()->log_size() > 0) {
        pending = true;
        break;
      }
    }
    if (!pending) return;
    const Tick next = fleet.clock().now() + verifier.options().period;
    if (pool == nullptr) {
      verifier.run_until(next);
    } else {
      verifier.run_until(next, *pool);
    }
  }
  FAIL() << "windowed verifier never drained the fleet";
}

struct WindowedScenarioResult {
  std::map<std::string, AttestSummary> windowed;
  IncrementalVerifier::WindowReport serial_rounds;
};

// One evidence scenario, run identically against a barrier fleet and a
// windowed fleet: run to halt, hijack one device, update-campaign a
// second phase, run again. Returns both sides' folded summaries.
void run_identity_scenario(size_t devices, IncrementalOptions options,
                           common::ThreadPool* pool,
                           std::map<std::string, AttestSummary>& barrier_out,
                           std::map<std::string, AttestSummary>& windowed_out) {
  Fleet barrier_fleet;
  Fleet windowed_fleet;
  provision_fleet(barrier_fleet, devices);
  provision_fleet(windowed_fleet, devices);
  // Halt-loop iterations pad every device's log well past one slice
  // budget, so the windowed side genuinely slices.
  for (Fleet* fleet : {&barrier_fleet, &windowed_fleet}) {
    for (DeviceSession* dev : fleet->sessions()) dev->run(600);
  }
  diverge_out_of_band(barrier_fleet, device_id(1));
  diverge_out_of_band(windowed_fleet, device_id(1));

  std::map<std::string, AttestSummary> barrier;
  IncrementalVerifier windowed(windowed_fleet, options);

  // Phase 1: drain the boot evidence (and the unsanctioned epoch
  // marker on dev-01).
  barrier = fold_all(std::move(barrier), barrier_fleet.verifier().verify_all());
  drain_windowed(windowed_fleet, windowed, pool);

  // Phase 2: a sanctioned campaign moves every device to firmware(1);
  // its epoch markers land mid-window and must replay clean.
  for (Fleet* fleet : {&barrier_fleet, &windowed_fleet}) {
    // Plain (uninstrumented) target: the devices' kCfaBaseline builds
    // are plain, and the transition must match shapes.
    UpdateCampaign campaign =
        fleet->stage_update(firmware(1), "fw", {.eilid = false});
    for (DeviceSession* dev : fleet->sessions()) {
      // dev-01 diverged, so its image mismatches the campaign diff;
      // reflash it first, as remediation would.
      if (dev->id() == device_id(1)) {
        std::lock_guard<std::mutex> lock(dev->mutex());
        dev->reflash();
      }
      UpdateOutcome outcome = campaign.apply_to(*dev);
      ASSERT_TRUE(outcome.ok()) << dev->id();
      // Reboot into the new image (the old PC points into shifted
      // code); the reset marker lands after the epoch marker and both
      // replay clean mid-window.
      dev->power_cycle();
      dev->run_to_symbol("halt", 100000);
      dev->run(600);
    }
  }
  barrier = fold_all(std::move(barrier), barrier_fleet.verifier().verify_all());
  drain_windowed(windowed_fleet, windowed, pool);

  barrier_out = std::move(barrier);
  windowed_out.clear();
  for (const AttestSummary& s : windowed.summaries()) {
    windowed_out[s.device_id] = s;
  }
}

TEST(IncrementalVerifierTest, WindowedVerdictsMatchBarrierSweep) {
  std::map<std::string, AttestSummary> barrier;
  std::map<std::string, AttestSummary> windowed;
  run_identity_scenario(
      6,
      {.period = 5,
       .max_devices_per_tick = 2,
       .max_bytes_per_slice = 16 * cfa::LoggedEdge::kWireBytes},
      nullptr, barrier, windowed);

  ASSERT_EQ(barrier.size(), 6u);
  EXPECT_EQ(barrier, windowed);
  // The hijacked device convicted, at the same first bad edge both
  // ways; everyone else stayed clean.
  EXPECT_FALSE(barrier.at(device_id(1)).path_ok);
  ASSERT_TRUE(barrier.at(device_id(1)).first_bad.has_value());
  EXPECT_EQ(barrier.at(device_id(1)).first_bad,
            windowed.at(device_id(1)).first_bad);
  for (size_t i = 0; i < 6; ++i) {
    if (i == 1) continue;
    EXPECT_FALSE(barrier.at(device_id(i)).convicted()) << device_id(i);
    EXPECT_GT(barrier.at(device_id(i)).edges, 0u) << device_id(i);
  }
}

TEST(IncrementalVerifierTest, PooledWindowIsBitIdenticalToSerial) {
  const IncrementalOptions options = {
      .period = 5,
      .max_devices_per_tick = 3,
      .max_bytes_per_slice = 16 * cfa::LoggedEdge::kWireBytes};
  std::map<std::string, AttestSummary> barrier_serial;
  std::map<std::string, AttestSummary> serial;
  run_identity_scenario(5, options, nullptr, barrier_serial, serial);

  common::ThreadPool pool(4);
  std::map<std::string, AttestSummary> barrier_pooled;
  std::map<std::string, AttestSummary> pooled;
  run_identity_scenario(5, options, &pool, barrier_pooled, pooled);

  EXPECT_EQ(serial, pooled);
  EXPECT_EQ(barrier_serial, barrier_pooled);
  EXPECT_EQ(serial, barrier_serial);
}

TEST(IncrementalVerifierTest, RotationCoversEveryDeviceAndSkipsOffline) {
  Fleet fleet;
  provision_fleet(fleet, 5);
  fleet.at(device_id(2)).set_online(false);
  IncrementalVerifier windowed(
      fleet, {.period = 10, .max_devices_per_tick = 2,
              .max_bytes_per_slice = 0});
  // Three rounds of two: the cyclic rotation reaches all four online
  // devices and never touches the offline one.
  auto report = windowed.run_until(30);
  ASSERT_EQ(report.rounds.size(), 3u);
  for (const auto& round : report.rounds) {
    EXPECT_LE(round.slices.size(), 2u);
  }
  EXPECT_EQ(windowed.summary(device_id(2)), AttestSummary{});
  for (size_t i : {0u, 1u, 3u, 4u}) {
    EXPECT_GT(windowed.summary(device_id(i)).edges, 0u) << device_id(i);
  }
  // The offline device's log is untouched, waiting for its return.
  EXPECT_GT(fleet.at(device_id(2)).cfa_monitor()->log_size(), 0u);
}

// ------------------------------------------------- heartbeat backoff

TEST(HeartbeatBackoffTest, UnreachableDevicesBackOffExponentially) {
  Fleet fleet;
  provision_fleet(fleet, 2);
  fleet.at(device_id(1)).set_online(false);
  HeartbeatScheduler scheduler(fleet,
                               {.period = 10, .max_backoff_exponent = 3});
  // dev-00 beats every 10 ticks. dev-01 misses back off: due at 10,
  // then +20, +40, +80, then capped at +80.
  scheduler.run_until(400);
  const FreshnessRecord offline = scheduler.record(device_id(1));
  EXPECT_EQ(offline.misses, offline.consecutive_misses);
  // Misses at t = 10, 30, 70, 150, 230, 310, 390 -> 7 in 400 ticks;
  // without backoff it would be 40.
  EXPECT_EQ(offline.misses, 7u);
  EXPECT_EQ(offline.next_due, 470u);
  const FreshnessRecord online = scheduler.record(device_id(0));
  EXPECT_EQ(online.heartbeats, 40u);
  EXPECT_EQ(online.consecutive_misses, 0u);

  // The device comes back: one verdict snaps the cadence back to the
  // base period.
  fleet.at(device_id(1)).set_online(true);
  scheduler.run_until(475);
  const FreshnessRecord back = scheduler.record(device_id(1));
  EXPECT_EQ(back.consecutive_misses, 0u);
  EXPECT_EQ(back.next_due, 480u);
  EXPECT_EQ(back.heartbeats, 1u);
}

TEST(HeartbeatBackoffTest, BackoffScheduleIsDeterministicAndPoolInvariant) {
  auto run = [](common::ThreadPool* pool) {
    Fleet fleet;
    provision_fleet(fleet, 4);
    fleet.at(device_id(0)).set_online(false);
    fleet.at(device_id(3)).set_online(false);
    HeartbeatScheduler scheduler(
        fleet, {.period = 7, .jitter = 5, .max_backoff_exponent = 4});
    HeartbeatReport report = pool == nullptr ? scheduler.run_until(600)
                                             : scheduler.run_until(600, *pool);
    return std::make_pair(std::move(report), scheduler.records());
  };
  auto [report_a, records_a] = run(nullptr);
  auto [report_b, records_b] = run(nullptr);
  EXPECT_EQ(report_a, report_b);
  EXPECT_EQ(records_a, records_b);
  common::ThreadPool pool(4);
  auto [report_c, records_c] = run(&pool);
  EXPECT_EQ(report_a, report_c);
  EXPECT_EQ(records_a, records_c);
}

}  // namespace
}  // namespace eilid
