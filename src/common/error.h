// Exception hierarchy shared by all EILID modules.
//
// Toolchain-facing errors (assembler syntax errors, instrumenter
// failures, configuration mistakes) are reported with exceptions, per
// E.2: they are programmer/user errors that cannot be handled locally.
// Simulated-device outcomes (CPU resets, monitor violations) are NOT
// exceptions -- they are ordinary values (see sim::ResetReason), because
// a device reset is expected behaviour, not an error in the host program.
#ifndef EILID_COMMON_ERROR_H
#define EILID_COMMON_ERROR_H

#include <stdexcept>
#include <string>

namespace eilid {

// Root of the EILID exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Malformed assembly source: unknown mnemonic, bad operand, duplicate
// label, value out of range, etc. Carries file/line context.
class AsmError : public Error {
 public:
  AsmError(std::string file, int line, const std::string& message)
      : Error(file + ":" + std::to_string(line) + ": " + message),
        file_(std::move(file)),
        line_(line) {}

  const std::string& file() const { return file_; }
  int line() const { return line_; }

 private:
  std::string file_;
  int line_;
};

// Linker/image-builder errors: overlapping sections, image too large,
// undefined symbols at link time.
class LinkError : public Error {
 public:
  explicit LinkError(const std::string& what) : Error(what) {}
};

// Instrumenter errors: unresolvable call target, reserved-register
// conflict that cannot be spilled, shadow-stack budget exceeded.
class InstrumentError : public Error {
 public:
  explicit InstrumentError(const std::string& what) : Error(what) {}
};

// Misuse of a simulator/monitor API by the host program (not by the
// simulated software): invalid memory map, bad configuration.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

// Misuse of the Fleet/session facade: duplicate or unknown device ids,
// a policy/build mismatch (e.g. kEilidHw on an uninstrumented build),
// attesting a session that carries no attestation monitor. Derives
// from ConfigError so callers of the deprecated core::Device shim keep
// catching the type they always did.
class FleetError : public ConfigError {
 public:
  explicit FleetError(const std::string& what) : ConfigError(what) {}
};

}  // namespace eilid

#endif  // EILID_COMMON_ERROR_H
