#include "common/hex.h"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace eilid {

std::string hex16(uint16_t v) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%04x", v);
  return buf;
}

std::string hex8(uint8_t v) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%02x", v);
  return buf;
}

std::string hex16_bare(uint16_t v) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%04x", v);
  return buf;
}

std::string hexdump(std::span<const uint8_t> data, uint16_t base) {
  std::string out;
  for (size_t row = 0; row < data.size(); row += 16) {
    char head[16];
    std::snprintf(head, sizeof(head), "%04zx: ", static_cast<size_t>(base) + row);
    out += head;
    std::string ascii;
    for (size_t i = row; i < row + 16; ++i) {
      if (i < data.size()) {
        char cell[8];
        std::snprintf(cell, sizeof(cell), "%02x ", data[i]);
        out += cell;
        ascii += std::isprint(data[i]) ? static_cast<char>(data[i]) : '.';
      } else {
        out += "   ";
      }
    }
    out += "|" + ascii + "|\n";
  }
  return out;
}

uint32_t parse_number(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("empty number");
  size_t pos = 0;
  uint32_t value = 0;
  bool negative = false;
  std::string t = text;
  if (t[0] == '-') {
    negative = true;
    t = t.substr(1);
    if (t.empty()) throw std::invalid_argument("lone '-'");
  }
  if (t.size() > 2 && (t[0] == '0') && (t[1] == 'x' || t[1] == 'X')) {
    value = static_cast<uint32_t>(std::stoul(t.substr(2), &pos, 16));
    if (pos != t.size() - 2) throw std::invalid_argument("bad hex: " + text);
  } else if (t.size() > 1 && (t.back() == 'h' || t.back() == 'H')) {
    value = static_cast<uint32_t>(std::stoul(t.substr(0, t.size() - 1), &pos, 16));
    if (pos != t.size() - 1) throw std::invalid_argument("bad hex: " + text);
  } else {
    value = static_cast<uint32_t>(std::stoul(t, &pos, 10));
    if (pos != t.size()) throw std::invalid_argument("bad number: " + text);
  }
  if (negative) value = static_cast<uint32_t>(-static_cast<int32_t>(value));
  return value;
}

}  // namespace eilid
