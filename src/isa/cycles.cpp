#include "isa/cycles.h"

#include "isa/registers.h"

namespace eilid::isa {
namespace {

// Source-mode timing class: 0 = register/constant, 1 = @Rn,
// 2 = @Rn+ / #N, 3 = indexed/symbolic/absolute.
unsigned src_class(const Operand& op) {
  switch (op.mode) {
    case AddrMode::kRegister:
      return 0;
    case AddrMode::kIndirect:
      return 1;
    case AddrMode::kIndirectInc:
      return 2;
    case AddrMode::kImmediate:
      // Constant-generator immediates cost nothing extra.
      return constant_generator(op.value) ? 0 : 2;
    case AddrMode::kIndexed:
    case AddrMode::kSymbolic:
    case AddrMode::kAbsolute:
      return 3;
  }
  return 0;
}

bool is_mem_dst(const Operand& op) { return op.mode != AddrMode::kRegister; }

}  // namespace

unsigned instruction_cycles(const Instruction& insn) {
  const auto& info = opcode_info(insn.op);

  if (info.format == Format::kJump) return 2;

  if (info.format == Format::kSingle) {
    unsigned cls = src_class(insn.src);
    switch (insn.op) {
      case Opcode::kReti:
        return kRetiCycles;
      case Opcode::kPush: {
        // Rn=3 @Rn=4 @Rn+=5 #N=4 X/sym/&=5
        if (insn.src.mode == AddrMode::kImmediate && cls != 0) return 4;
        constexpr unsigned t[4] = {3, 4, 5, 5};
        return t[cls];
      }
      case Opcode::kCall: {
        // Rn=4 @Rn=4 @Rn+=5 #N=5 X/sym=5 &=6
        if (insn.src.mode == AddrMode::kAbsolute) return 6;
        constexpr unsigned t[4] = {4, 4, 5, 5};
        return t[cls];
      }
      default: {
        // rrc/rra/swpb/sxt: Rn=1 @Rn=3 @Rn+=3 X/sym/&=4
        constexpr unsigned t[4] = {1, 3, 3, 4};
        return t[cls];
      }
    }
  }

  // Format I.
  unsigned cls = src_class(insn.src);
  if (is_mem_dst(insn.dst)) {
    constexpr unsigned t[4] = {4, 5, 5, 6};
    return t[cls];
  }
  if (insn.dst.mode == AddrMode::kRegister && insn.dst.reg == kPC) {
    constexpr unsigned t[4] = {2, 2, 3, 3};
    return t[cls];
  }
  constexpr unsigned t[4] = {1, 2, 2, 3};
  return t[cls];
}

}  // namespace eilid::isa
