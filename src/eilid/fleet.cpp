#include "eilid/fleet.h"

#include <algorithm>
#include <functional>

#include "cfa/cfg.h"
#include "common/error.h"
#include "eilid/rollout.h"

namespace eilid {

// ------------------------------------------------------------------
// VerifierService
// ------------------------------------------------------------------

std::shared_ptr<const cfa::Cfg> VerifierService::cfg_for(
    DeviceSession& session) {
  const core::BuildResult* key = session.shared_build().get();
  {
    std::lock_guard<std::mutex> lock(cfg_mu_);
    auto it = cfg_cache_.find(key);
    if (it != cfg_cache_.end()) {
      if (!it->second.first.expired()) return it->second.second;
      cfg_cache_.erase(it);  // the build died; the address was recycled
    }
  }
  // Extraction is the expensive half of enrollment: do it unlocked. A
  // concurrent miss on the same build may extract twice; the first
  // insert wins and both get an equivalent immutable CFG.
  auto cfg = std::make_shared<const cfa::Cfg>(
      cfa::extract_cfg(session.build().app));
  std::lock_guard<std::mutex> lock(cfg_mu_);
  // Misses are already paying for an extraction; prune dead builds so
  // a long-lived service cycling through builds cannot accrete.
  for (auto it = cfg_cache_.begin(); it != cfg_cache_.end();) {
    it = it->second.first.expired() ? cfg_cache_.erase(it) : std::next(it);
  }
  auto [it, inserted] = cfg_cache_.try_emplace(
      key, std::weak_ptr<const core::BuildResult>(session.shared_build()),
      std::move(cfg));
  (void)inserted;
  return it->second.second;
}

VerifierService::DeviceState VerifierService::make_state(
    DeviceSession& session) {
  if (session.cfa_monitor() == nullptr) {
    throw FleetError("verifier: session '" + session.id() +
                     "' has no CFA monitor (policy " +
                     std::string(enforcement_policy_name(session.policy())) +
                     "); only kCfaBaseline devices attest");
  }
  return DeviceState{
      &session,
      cfa::CfaVerifier(cfg_for(session), session.options().attest_key), 0};
}

void VerifierService::enroll(DeviceSession& session) {
  DeviceState state = make_state(session);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = devices_.try_emplace(session.id(), std::move(state));
  (void)it;
  if (!inserted) {
    throw FleetError("verifier: device '" + session.id() +
                     "' is already enrolled");
  }
}

bool VerifierService::enrolled(const std::string& device_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return devices_.count(device_id) != 0;
}

void VerifierService::withdraw(const std::string& device_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    devices_.erase(device_id);
  }
  std::lock_guard<std::mutex> lock(fresh_mu_);
  freshness_.erase(device_id);
}

bool VerifierService::stage_cfg_swap(DeviceSession& session) {
  if (session.cfa_monitor() == nullptr) return false;
  // Extract (or fetch) the current build's CFG before taking mu_ --
  // cfg_for only touches cfg_mu_, which never nests with a session
  // mutex the caller holds.
  std::shared_ptr<const cfa::Cfg> cfg = cfg_for(session);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = devices_.find(session.id());
  if (it == devices_.end() || it->second.session != &session) return false;
  // The caller holds session.mutex(), which is exactly the lock that
  // guards this DeviceState's replay verifier.
  it->second.verifier.queue_cfg_swap(std::move(cfg));
  return true;
}

VerifierService::AttestResult VerifierService::attest(DeviceSession& session) {
  return attest_with_budget(session, 0);
}

VerifierService::AttestResult VerifierService::attest_slice(
    DeviceSession& session, size_t max_edges) {
  return attest_with_budget(session, max_edges);
}

VerifierService::AttestResult VerifierService::attest_with_budget(
    DeviceSession& session, size_t max_edges) {
  if (session.cfa_monitor() == nullptr) {
    // Nothing to challenge: no on-device evidence exists. Report the
    // gap instead of throwing so a sweep over a mixed-policy batch
    // degrades per device rather than aborting.
    AttestResult out;
    out.device_id = session.id();
    out.attested = false;
    return out;
  }
  DeviceState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = devices_.find(session.id());
    if (it != devices_.end()) state = &it->second;
  }
  if (state == nullptr) {
    // First contact: build the replay state outside mu_, then race to
    // insert it; a concurrent first contact may win, in which case its
    // state is the one that counts.
    DeviceState fresh = make_state(session);
    std::lock_guard<std::mutex> lock(mu_);
    state = &devices_.try_emplace(session.id(), std::move(fresh))
                 .first->second;
  }
  // Attest the session the caller handed us (not state->session: if a
  // distinct live session aliases an enrolled id, its own log must be
  // the evidence -- replaying somebody else's would let it impersonate
  // a healthy device).
  return attest_device(*state, session, max_edges);
}

VerifierService::AttestResult VerifierService::attest_device(
    DeviceState& state, DeviceSession& session, size_t max_edges) {
  // Per-device locking: DeviceState (replay verifier, expected_seq) is
  // guarded by its *enrolled* session's mutex, and the session being
  // drained by its own. They are the same object except when a caller
  // attests a live session aliasing an enrolled id; then both locks
  // are taken (std::lock, deadlock-free) so the sweep of the enrolled
  // device and the aliased attest can never race on the shared state.
  std::unique_lock<std::mutex> state_lock(state.session->mutex(),
                                          std::defer_lock);
  std::unique_lock<std::mutex> drain_lock(session.mutex(), std::defer_lock);
  if (state.session == &session) {
    state_lock.lock();
  } else {
    std::lock(state_lock, drain_lock);
  }

  AttestResult out;
  out.device_id = session.id();
  out.attested = true;
  out.tick = clock_ != nullptr ? clock_->now() : 0;

  const uint64_t nonce =
      nonce_counter_.fetch_add(1, std::memory_order_relaxed);
  cfa::Report report = session.cfa_monitor()->take_report(
      nonce, session.machine().cycles(), max_edges);
  out.remaining = session.cfa_monitor()->log_size();
  out.seq = report.seq;
  out.cycle = report.cycle;
  out.edges = report.edges.size();
  out.dropped = report.dropped;
  out.seq_ok = report.seq == state.expected_seq;
  state.expected_seq = report.seq + 1;

  cfa::CfaVerifier::Result v = state.verifier.verify(report, nonce);
  out.mac_ok = v.mac_ok;
  out.path_ok = v.path_ok;
  out.first_bad = v.first_bad;

  // Freshness bookkeeping: every sweep flavor funnels through here, so
  // last-seen/last-ok ticks cover full sweeps, subset gates and direct
  // attest() calls alike. Guarded by its own lock (not the session's):
  // health monitors read freshness while other devices are mid-sweep.
  {
    std::lock_guard<std::mutex> lock(fresh_mu_);
    Freshness& fresh = freshness_[out.device_id];
    fresh.last_attested_tick = out.tick;
    fresh.ever_attested = true;
    ++fresh.reports;
    if (out.ok()) {
      fresh.last_ok_tick = out.tick;
      fresh.ever_ok = true;
      fresh.convicted = false;
    } else {
      fresh.convicted = true;
    }
  }
  return out;
}

VerifierService::Freshness VerifierService::freshness(
    const std::string& device_id) const {
  std::lock_guard<std::mutex> lock(fresh_mu_);
  auto it = freshness_.find(device_id);
  return it == freshness_.end() ? Freshness{} : it->second;
}

// Snapshot of every enrolled device's state, in enrollment-id (map)
// order -- the one definition both sweep flavors share, so they can
// never diverge on what a sweep covers.
std::vector<VerifierService::DeviceState*> VerifierService::sweep_snapshot() {
  std::vector<DeviceState*> sweep;
  std::lock_guard<std::mutex> lock(mu_);
  sweep.reserve(devices_.size());
  for (auto& [id, state] : devices_) {
    (void)id;
    sweep.push_back(&state);
  }
  return sweep;
}

std::vector<VerifierService::AttestResult> VerifierService::verify_all() {
  std::vector<DeviceState*> sweep = sweep_snapshot();
  std::vector<AttestResult> out;
  out.reserve(sweep.size());
  for (DeviceState* state : sweep) {
    out.push_back(attest_device(*state, *state->session, 0));
  }
  return out;
}

std::vector<VerifierService::AttestResult> VerifierService::verify_all(
    common::ThreadPool& pool) {
  // Workers fill results by snapshot index: they interleave, but the
  // output order is deterministic and the verdicts match the serial
  // sweep because each device's evidence, replay state and sequence
  // window are private to it.
  std::vector<DeviceState*> sweep = sweep_snapshot();
  std::vector<AttestResult> out(sweep.size());
  pool.parallel_for(sweep.size(), [&](size_t i) {
    out[i] = attest_device(*sweep[i], *sweep[i]->session, 0);
  });
  return out;
}

std::vector<DeviceSession*> VerifierService::ordered_subset(
    const std::vector<DeviceSession*>& sessions) {
  std::vector<DeviceSession*> ordered;
  ordered.reserve(sessions.size());
  for (DeviceSession* session : sessions) {
    if (session == nullptr) {
      throw FleetError("verifier: subset sweep over a null session");
    }
    ordered.push_back(session);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const DeviceSession* a, const DeviceSession* b) {
              return a->id() < b->id();
            });
  for (size_t i = 1; i < ordered.size(); ++i) {
    if (ordered[i - 1]->id() == ordered[i]->id()) {
      throw FleetError("verifier: subset sweep lists device id '" +
                       ordered[i]->id() + "' twice");
    }
  }
  return ordered;
}

std::vector<VerifierService::AttestResult> VerifierService::verify_all(
    const std::vector<DeviceSession*>& sessions) {
  std::vector<DeviceSession*> ordered = ordered_subset(sessions);
  std::vector<AttestResult> out;
  out.reserve(ordered.size());
  // attest() is the per-device subset body: it degrades to an
  // attested = false entry for monitor-less sessions, enrolls CFA
  // sessions on first contact, and takes the per-device locks -- the
  // same semantics per device as the whole-fleet sweep.
  for (DeviceSession* session : ordered) out.push_back(attest(*session));
  return out;
}

std::vector<VerifierService::AttestResult> VerifierService::verify_all(
    const std::vector<DeviceSession*>& sessions, common::ThreadPool& pool) {
  std::vector<DeviceSession*> ordered = ordered_subset(sessions);
  std::vector<AttestResult> out(ordered.size());
  pool.parallel_for(ordered.size(),
                    [&](size_t i) { out[i] = attest(*ordered[i]); });
  return out;
}

// ------------------------------------------------------------------
// Fleet
// ------------------------------------------------------------------

namespace {

// Content hash of everything that determines a BuildResult. Two
// provisioning calls with the same source and build shape share one
// pipeline run through this key.
crypto::Digest build_key(const std::string& source, const std::string& name,
                         const core::BuildOptions& o) {
  const core::RomConfig& rom =
      o.prebuilt_rom != nullptr ? o.prebuilt_rom->config : o.rom;
  const core::InstrumentConfig& in = o.instrument;
  std::string meta = "eilid-build-v2|" + name + "|";
  auto flag = [&meta](bool b) { meta += b ? '1' : '0'; };
  auto num = [&meta](uint64_t v) { meta += std::to_string(v) + ","; };
  flag(o.eilid);
  flag(o.verify_convergence);
  flag(o.prebuilt_rom != nullptr);
  flag(in.backward_edge);
  flag(in.interrupt_edge);
  flag(in.forward_edge);
  flag(in.lock_table);
  flag(in.label_mode);
  flag(in.spill_reserved);
  num(static_cast<uint64_t>(in.table_policy));
  num(rom.secure_base);
  num(rom.secure_size);
  num(rom.table_capacity);
  num(rom.shadow_capacity);
  flag(rom.memory_backed_index);
  // A prebuilt ROM is part of the flashed result, so its *image bytes*
  // are part of the build's identity -- the config alone is not enough
  // (two ROMs can share a config yet differ in code), and aliasing
  // them would flash the second device with the first ROM.
  if (o.prebuilt_rom != nullptr) {
    const core::RomInfo& info = *o.prebuilt_rom;
    num(info.entry_start);
    num(info.entry_end);
    num(info.leave_start);
    num(info.leave_end);
    for (const auto& chunk : info.unit.image.chunks()) {
      num(chunk.base);
      num(chunk.data.size());
      meta.append(reinterpret_cast<const char*>(chunk.data.data()),
                  chunk.data.size());
    }
  }
  meta += '|';

  crypto::Sha256 h;
  h.update(meta);
  h.update(source);
  return h.finish();
}

}  // namespace

Fleet::Fleet(FleetOptions options) : options_(std::move(options)) {
  // The fleet's verifier stamps verdicts with fleet time; both live
  // exactly as long as the Fleet.
  verifier_.attach_clock(&clock_);
}

std::shared_ptr<const core::BuildResult> Fleet::build(
    const std::string& source, const std::string& name,
    const core::BuildOptions& options) {
  const crypto::Digest key = build_key(source, name, options);

  std::promise<std::shared_ptr<const core::BuildResult>> promise;
  BuildFuture future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++cache_hits_;
      future = it->second;
    } else {
      owner = true;
      future = promise.get_future().share();
      cache_.emplace(key, future);
      ++pipeline_runs_;
    }
  }
  if (owner) {
    try {
      promise.set_value(std::make_shared<const core::BuildResult>(
          core::build_app(source, name, options)));
    } catch (...) {
      // Evict so a later call retries; threads already waiting on this
      // flight observe the failure.
      {
        std::lock_guard<std::mutex> lock(cache_mu_);
        cache_.erase(key);
      }
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

size_t Fleet::build_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.size();
}

crypto::Digest Fleet::device_key(const std::string& device_id) const {
  return crypto::derive_key(
      std::span<const uint8_t>(options_.master_key.data(),
                               options_.master_key.size()),
      "attest:" + device_id);
}

crypto::Digest Fleet::update_key(const std::string& device_id) const {
  return crypto::derive_key(
      std::span<const uint8_t>(options_.master_key.data(),
                               options_.master_key.size()),
      "update:" + device_id);
}

UpdateCampaign Fleet::stage_update(
    std::shared_ptr<const core::BuildResult> target, CampaignOptions options) {
  return UpdateCampaign(*this, std::move(target), options);
}

UpdateCampaign Fleet::stage_update(const std::string& source,
                                   const std::string& name,
                                   const core::BuildOptions& build_options,
                                   CampaignOptions options) {
  return stage_update(build(source, name, build_options), options);
}

CampaignScheduler Fleet::plan_rollout(UpdateCampaign campaign,
                                      RolloutPlan plan) {
  return CampaignScheduler(*this, std::move(campaign), std::move(plan));
}

CampaignScheduler Fleet::plan_rollout(
    std::shared_ptr<const core::BuildResult> target, RolloutPlan plan,
    CampaignOptions options) {
  return plan_rollout(stage_update(std::move(target), std::move(options)),
                      std::move(plan));
}

Fleet::Shard& Fleet::shard_for(const std::string& device_id) {
  return shards_[std::hash<std::string>{}(device_id) % kShardCount];
}

const Fleet::Shard& Fleet::shard_for(const std::string& device_id) const {
  return shards_[std::hash<std::string>{}(device_id) % kShardCount];
}

DeviceSession& Fleet::deploy(const std::string& device_id,
                             std::shared_ptr<const core::BuildResult> build,
                             EnforcementPolicy policy, SessionOptions options) {
  Shard& shard = shard_for(device_id);
  {
    // Fast-fail a duplicate id before paying for session construction
    // (flash + power-on); the try_emplace below stays authoritative
    // for ids racing past this check.
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.sessions.count(device_id) != 0) {
      throw FleetError("fleet: device id '" + device_id +
                       "' already deployed");
    }
  }
  options.attest_key = device_key(device_id);
  options.update_key = update_key(device_id);
  auto session = std::make_unique<DeviceSession>(device_id, std::move(build),
                                                 policy, options);
  DeviceSession& ref = *session;

  // Enroll while the session is still privately owned, publish last:
  // a published session can then never be rolled back, so pointers
  // handed out by find()/sessions() stay valid until decommission, and
  // a rollback (enroll or publication failing) withdraws the
  // enrollment *before* the local unique_ptr destroys the session --
  // the verifier never holds a dangling DeviceSession* (the old
  // enroll-first code had no such rollback and leaked one if a later
  // step threw).
  bool enrolled_here = false;
  try {
    if (policy == EnforcementPolicy::kCfaBaseline) {
      verifier_.enroll(ref);
      enrolled_here = true;
    }
    // Publish shard entry and order_ slot in one critical section
    // (lock order: shard.mu, then order_mu_) so the two indexes stay
    // consistent for every concurrent observer. The order_ slot is
    // reserved before the shard insert: once the session is visible in
    // the shard, the remaining push_back cannot throw, so publication
    // is all-or-nothing.
    std::lock_guard<std::mutex> lock(shard.mu);
    std::lock_guard<std::mutex> order_lock(order_mu_);
    order_.reserve(order_.size() + 1);
    auto [it, inserted] = shard.sessions.try_emplace(device_id,
                                                     std::move(session));
    (void)it;
    if (!inserted) {
      throw FleetError("fleet: device id '" + device_id +
                       "' already deployed");
    }
    order_.push_back(&ref);
  } catch (...) {
    // Withdraw only what *this* deploy enrolled (an enrollment that
    // predates the call -- e.g. a standalone session claimed the id --
    // is not ours to undo). `session` may still own the object (publish
    // not reached / try_emplace failed), in which case it is destroyed
    // on unwind, after the withdraw.
    if (enrolled_here) verifier_.withdraw(device_id);
    throw;
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  return ref;
}

DeviceSession& Fleet::provision(const std::string& device_id,
                                const std::string& source,
                                const std::string& name,
                                EnforcementPolicy policy,
                                SessionOptions options) {
  core::BuildOptions build_options;
  build_options.eilid = policy == EnforcementPolicy::kEilidHw;
  return deploy(device_id, build(source, name, build_options), policy, options);
}

DeviceSession* Fleet::find(const std::string& device_id) {
  Shard& shard = shard_for(device_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.sessions.find(device_id);
  return it == shard.sessions.end() ? nullptr : it->second.get();
}

DeviceSession& Fleet::at(const std::string& device_id) {
  DeviceSession* session = find(device_id);
  if (session == nullptr) {
    throw FleetError("fleet: unknown device id '" + device_id + "'");
  }
  return *session;
}

std::vector<DeviceSession*> Fleet::sessions() const {
  std::lock_guard<std::mutex> lock(order_mu_);
  return order_;
}

void Fleet::decommission(const std::string& device_id) {
  Shard& shard = shard_for(device_id);
  std::unique_ptr<DeviceSession> doomed;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.sessions.find(device_id);
    if (it == shard.sessions.end()) {
      throw FleetError("fleet: unknown device id '" + device_id + "'");
    }
    doomed = std::move(it->second);
    shard.sessions.erase(it);
    // Same critical section as deploy's insert+push, so the order_
    // entry always exists here (the find guard is belt-and-braces
    // against any future path that publishes the indexes separately).
    std::lock_guard<std::mutex> order_lock(order_mu_);
    auto order_it = std::find(order_.begin(), order_.end(), doomed.get());
    if (order_it != order_.end()) order_.erase(order_it);
  }
  verifier_.withdraw(device_id);
  count_.fetch_sub(1, std::memory_order_relaxed);
  // `doomed` is destroyed last, after every index has forgotten it.
}

}  // namespace eilid
