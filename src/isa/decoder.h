// Machine words -> Instruction. The decoder is the single source of
// truth for instruction shape used by both the simulator's execute path
// and the static analyses (CFG extraction, instrumenter address fixup).
#ifndef EILID_ISA_DECODER_H
#define EILID_ISA_DECODER_H

#include <array>
#include <cstdint>
#include <optional>

#include "isa/instruction.h"

namespace eilid::isa {

struct Decoded {
  Instruction insn;
  uint16_t address = 0;    // byte address of the first word
  uint8_t size_words = 1;  // 1..3

  // Byte address of the next sequential instruction.
  uint16_t next_address() const {
    return static_cast<uint16_t>(address + 2 * size_words);
  }
  // Jump target (only meaningful for jump-format instructions).
  uint16_t jump_target() const {
    return static_cast<uint16_t>(address + 2 + 2 * insn.jump_offset);
  }
};

// Decode the instruction starting at `address` whose first up-to-three
// words are `words`. Returns nullopt for illegal encodings (the
// simulator maps that to an illegal-instruction trap).
std::optional<Decoded> decode(std::array<uint16_t, 3> words, uint16_t address);

}  // namespace eilid::isa

#endif  // EILID_ISA_DECODER_H
