// Peripheral model tests: timer prescaling and interrupts, ADC series,
// GPIO tracing, UART queues, ultrasonic echoes, LCD capture.
#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/machine.h"
#include "sim/memory_map.h"

namespace eilid::sim {
namespace {

TEST(Timer, CountsAndFlagsAtCompare) {
  TimerA timer;
  timer.write(mmio::kTimerCcr0, 100);
  timer.write(mmio::kTimerCtl, 0x1);  // enable, no irq
  timer.tick(99);
  EXPECT_EQ(timer.read(mmio::kTimerFlags), 0);
  timer.tick(1);
  EXPECT_EQ(timer.read(mmio::kTimerFlags), 1);
  EXPECT_EQ(timer.pending_irq(), -1) << "irq disabled";
}

TEST(Timer, PrescalerDividesBy8) {
  TimerA timer;
  timer.write(mmio::kTimerCcr0, 10);
  timer.write(mmio::kTimerCtl, 0x11);  // enable, prescale 8
  timer.tick(79);
  EXPECT_EQ(timer.read(mmio::kTimerFlags), 0);
  timer.tick(1);
  EXPECT_EQ(timer.read(mmio::kTimerFlags), 1);
}

TEST(Timer, IrqLatchAndAck) {
  TimerA timer;
  timer.write(mmio::kTimerCcr0, 4);
  timer.write(mmio::kTimerCtl, 0x3);
  timer.tick(4);
  EXPECT_EQ(timer.pending_irq(), irq::kTimer);
  timer.ack_irq();
  EXPECT_EQ(timer.pending_irq(), -1);
  timer.tick(4);
  EXPECT_EQ(timer.pending_irq(), irq::kTimer) << "re-latches at next compare";
}

TEST(Adc, ConversionTakesTimeAndCyclesSeries) {
  Adc adc;
  adc.set_channel_series(1, {100, 200});
  adc.write(mmio::kAdcCtl, 0x101);
  EXPECT_EQ(adc.read(mmio::kAdcStat), 0);
  adc.tick(Adc::kConversionCycles);
  EXPECT_EQ(adc.read(mmio::kAdcStat), 1);
  EXPECT_EQ(adc.read(mmio::kAdcMem), 100);
  adc.write(mmio::kAdcCtl, 0x101);
  adc.tick(Adc::kConversionCycles);
  EXPECT_EQ(adc.read(mmio::kAdcMem), 200);
  adc.write(mmio::kAdcCtl, 0x101);
  adc.tick(Adc::kConversionCycles);
  EXPECT_EQ(adc.read(mmio::kAdcMem), 100) << "series wraps";
  EXPECT_EQ(adc.conversions_done(), 3u);
}

TEST(Gpio, TracksOutputEdges) {
  GpioPort port(mmio::kP1In, mmio::kP1Out, mmio::kP1Dir);
  port.write(mmio::kP1Dir, 0xFF);
  port.tick(10);
  port.write(mmio::kP1Out, 0x01);
  port.tick(5);
  port.write(mmio::kP1Out, 0x01);  // no change: no edge
  port.write(mmio::kP1Out, 0x03);
  ASSERT_EQ(port.output_trace().size(), 2u);
  EXPECT_EQ(port.output_trace()[0].cycle, 10u);
  EXPECT_EQ(port.output_trace()[0].value, 0x01);
  EXPECT_EQ(port.output_trace()[1].value, 0x03);
  port.set_input(0xA5);
  EXPECT_EQ(port.read(mmio::kP1In), 0xA5);
}

TEST(Uart, FeedReadAndStatus) {
  Uart uart;
  EXPECT_EQ(uart.read(mmio::kUartStat) & 1, 0);
  uart.feed(std::string("AB"));
  EXPECT_EQ(uart.read(mmio::kUartStat) & 1, 1);
  EXPECT_EQ(uart.read(mmio::kUartRx), 'A');
  EXPECT_EQ(uart.read(mmio::kUartRx), 'B');
  EXPECT_EQ(uart.read(mmio::kUartStat) & 1, 0);
  uart.write(mmio::kUartTx, 'x');
  EXPECT_EQ(uart.tx_text(), "x");
}

TEST(Uart, IrqOnlyWhenEnabledAndPending) {
  Uart uart;
  uart.feed(std::string("Z"));
  EXPECT_EQ(uart.pending_irq(), -1);
  uart.write(mmio::kUartStat, 0x4);  // enable rx irq
  EXPECT_EQ(uart.pending_irq(), irq::kUartRx);
  uart.read(mmio::kUartRx);
  EXPECT_EQ(uart.pending_irq(), -1) << "level-triggered: drained";
}

TEST(Ultrasonic, EchoWidthProportionalToDistance) {
  Ultrasonic us;
  us.set_distances_mm({100, 200});
  us.write(mmio::kUsTrig, 1);
  EXPECT_EQ(us.read(mmio::kUsStat), 0);
  us.tick(100 + 100 * 4);
  EXPECT_EQ(us.read(mmio::kUsStat), 1);
  EXPECT_EQ(us.read(mmio::kUsEcho), 100 * Ultrasonic::kCyclesPerMm);
  us.write(mmio::kUsTrig, 1);
  us.tick(100 + 200 * 4);
  EXPECT_EQ(us.read(mmio::kUsEcho), 200 * Ultrasonic::kCyclesPerMm);
  EXPECT_EQ(us.pings(), 2u);
}

TEST(Lcd, CapturesCommandAndDataStream) {
  Lcd lcd;
  lcd.write(mmio::kLcdCmd, 0x38);
  lcd.write(mmio::kLcdData, 'H');
  lcd.write(mmio::kLcdData, 'i');
  ASSERT_EQ(lcd.stream().size(), 3u);
  EXPECT_FALSE(lcd.stream()[0].is_data);
  EXPECT_EQ(lcd.text(), "Hi");
}

TEST(Bus, PeripheralOverlapRejected) {
  Bus bus;
  TimerA t1, t2;
  bus.add_peripheral(&t1);
  EXPECT_THROW(bus.add_peripheral(&t2), ConfigError);
}

TEST(Machine, WipeVolatileClearsRamNotPmem) {
  Machine m;
  m.bus().raw_store_word(0x0300, 0x1234);      // RAM
  m.bus().raw_store_word(0x2000, 0x5678);      // secure RAM
  m.bus().raw_store_word(0xE000, 0x9ABC);      // PMEM
  m.bus().wipe_volatile();
  EXPECT_EQ(m.bus().raw_word(0x0300), 0);
  EXPECT_EQ(m.bus().raw_word(0x2000), 0);
  EXPECT_EQ(m.bus().raw_word(0xE000), 0x9ABC);
}

}  // namespace
}  // namespace eilid::sim
