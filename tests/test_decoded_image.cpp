// Predecoded-image layer: table construction, decode-cache coherence
// (a kNone device that rewrites its own code must invalidate the table
// and re-decode from memory with a bit-identical retired-instruction
// trace), fleet-wide sharing of one table per build, and the
// off-the-top-of-memory decode fix.
#include <gtest/gtest.h>

#include <vector>

#include "apps/apps.h"
#include "eilid/fleet.h"
#include "eilid/pipeline.h"
#include "isa/decoded_image.h"
#include "isa/encoder.h"
#include "sim/monitor.h"

namespace eilid {
namespace {

// Records every retired-instruction transition, fall-through included.
class TraceMonitor : public sim::Monitor {
 public:
  struct Step {
    uint16_t from, to, fallthrough;
    bool operator==(const Step&) const = default;
  };
  void on_step(uint16_t from_pc, uint16_t to_pc, uint16_t fallthrough) override {
    steps_.push_back({from_pc, to_pc, fallthrough});
  }
  const std::vector<Step>& steps() const { return steps_; }

 private:
  std::vector<Step> steps_;
};

// A program that patches its own kernel: the first `call #kernel` runs
// `inc r12`; the program then copies the word at SRCA (incd r13) over
// the word at DSTA and calls the kernel again. Only correct decode
// coherence yields r12 == 1 && r13 == 2: a stale predecoded entry
// would execute `inc r12` twice.
const char* kSelfPatchingSource = R"(.equ DSTA, 0xE080
.equ SRCA, 0xE084
.org 0xE000
main:
    mov #0x1000, r1
    call #kernel
    mov &SRCA, &DSTA
    call #kernel
halt:
    jmp halt
.org 0xE080
kernel:
    inc r12
    ret
    incd r13
    ret
.vector 15, main
)";

TEST(Decoder, RejectsInstructionRunningOffTopOfMemory) {
  // mov #0x1234, r10 -- a two-word instruction.
  isa::Instruction insn = isa::Instruction::double_op(
      isa::Opcode::kMov, isa::Operand::make_imm(0x1234),
      isa::Operand::make_reg(10));
  auto enc = isa::encode(insn, 0xFFFC);
  ASSERT_EQ(enc.size(), 2u);

  std::array<uint16_t, 3> words = {enc[0], enc[1], 0};
  // Ends exactly at the top of memory: legal.
  EXPECT_TRUE(isa::decode(words, 0xFFFC).has_value());
  // Its extension word would wrap through address 0: illegal.
  EXPECT_FALSE(isa::decode(words, 0xFFFE).has_value());
  // A one-word instruction at the very top stays legal.
  isa::Instruction one_word = isa::Instruction::double_op(
      isa::Opcode::kMov, isa::Operand::make_reg(4), isa::Operand::make_reg(5));
  auto enc1 = isa::encode(one_word, 0xFFFE);
  ASSERT_EQ(enc1.size(), 1u);
  EXPECT_TRUE(isa::decode({enc1[0], 0, 0}, 0xFFFE).has_value());
}

TEST(DecodedImage, EntriesMatchInterpretiveDecode) {
  core::BuildResult build = core::build_app(
      apps::app_by_name("temp_sensor").source, "temp_sensor", {.eilid = false});
  ASSERT_NE(build.decoded_image, nullptr);
  const isa::DecodedImage& image = *build.decoded_image;
  EXPECT_GT(image.decoded_count(), 0u);

  // Every covered entry agrees with a fresh interpretive decode of the
  // flashed bytes.
  std::vector<uint8_t> flat(0x10000, 0);
  for (const auto& chunk : build.app.image.chunks()) {
    std::copy(chunk.data.begin(), chunk.data.end(), flat.begin() + chunk.base);
  }
  size_t checked = 0;
  for (uint32_t pc = sim::kPmemStart; pc <= 0xFFFE; pc += 2) {
    const auto* entry = image.lookup(static_cast<uint16_t>(pc));
    ASSERT_NE(entry, nullptr);
    auto word_at = [&flat](uint32_t a) {
      return static_cast<uint16_t>(flat[a & 0xFFFF] |
                                   (flat[(a + 1) & 0xFFFF] << 8));
    };
    auto ref = isa::decode({word_at(pc), word_at(pc + 2), word_at(pc + 4)},
                           static_cast<uint16_t>(pc));
    if (!ref) {
      EXPECT_EQ(entry->size_words, 0) << "pc " << pc;
      continue;
    }
    ASSERT_NE(entry->size_words, 0) << "pc " << pc;
    EXPECT_EQ(entry->insn, ref->insn);
    EXPECT_EQ(entry->size_words, ref->size_words);
    EXPECT_EQ(entry->next_address, ref->next_address());
    ++checked;
  }
  EXPECT_GT(checked, 50u);

  // PCs outside every predecoded range force interpretive decode.
  EXPECT_EQ(image.lookup(0x0300), nullptr);  // RAM
  EXPECT_EQ(image.lookup(0x2000), nullptr);  // secure DMEM
}

TEST(DecodedImage, ControlTransferClassification) {
  using isa::Instruction;
  using isa::Opcode;
  using isa::Operand;
  EXPECT_TRUE(isa::is_control_transfer(Instruction::jump(Opcode::kJmp, 4)));
  EXPECT_TRUE(isa::is_control_transfer(
      Instruction::single(Opcode::kCall, Operand::make_imm(0xE000))));
  EXPECT_TRUE(isa::is_control_transfer(
      Instruction::single(Opcode::kReti, Operand::make_reg(0))));
  // br #addr == mov #addr, pc
  EXPECT_TRUE(isa::is_control_transfer(Instruction::double_op(
      Opcode::kMov, Operand::make_imm(0xE000), Operand::make_reg(isa::kPC))));
  EXPECT_FALSE(isa::is_control_transfer(Instruction::double_op(
      Opcode::kAdd, Operand::make_reg(4), Operand::make_reg(5))));
  EXPECT_FALSE(isa::is_control_transfer(
      Instruction::single(Opcode::kPush, Operand::make_reg(isa::kPC))));
}

TEST(DecodedImage, ControlTransferFlagCoversEveryObservedTransfer) {
  // Pin Entry.control_transfer to the runtime mechanism: every retired
  // step that left the fall-through path must start at an instruction
  // the table classified as a potential control transfer. (The
  // converse need not hold -- an untaken conditional jump falls
  // through.)
  Fleet fleet;
  const auto& app = apps::app_by_name("temp_sensor");
  auto build = fleet.build(app.source, app.name, {.eilid = false});
  DeviceSession& dev =
      fleet.deploy("ct-flag", build, EnforcementPolicy::kCasu);
  TraceMonitor trace;
  dev.machine().add_monitor(&trace);
  app.setup(dev.machine());
  dev.run_to_symbol("halt", 8 * app.cycle_budget);

  const isa::DecodedImage& image = *build->decoded_image;
  size_t transfers = 0;
  for (const auto& step : trace.steps()) {
    if (step.to == step.fallthrough) continue;
    ++transfers;
    const auto* entry = image.lookup(step.from);
    ASSERT_NE(entry, nullptr) << "pc " << step.from;
    EXPECT_TRUE(entry->control_transfer) << "pc " << step.from;
  }
  EXPECT_GT(transfers, 0u);
}

TEST(Fleet, SessionsOfOneBuildShareOneDecodedImage) {
  Fleet fleet;
  const auto& app = apps::app_by_name("temp_sensor");
  auto build = fleet.build(app.source, app.name, {.eilid = false});
  ASSERT_NE(build->decoded_image, nullptr);
  DeviceSession& a =
      fleet.deploy("share-a", build, EnforcementPolicy::kCasu);
  DeviceSession& b =
      fleet.deploy("share-b", build, EnforcementPolicy::kCasu);
  // One immutable table per build, shared by every session running it.
  EXPECT_EQ(a.build().decoded_image.get(), b.build().decoded_image.get());
  EXPECT_EQ(a.machine().cpu().decoded_image(), build->decoded_image.get());
  EXPECT_EQ(b.machine().cpu().decoded_image(), build->decoded_image.get());
}

TEST(DecodedImage, SelfModifyingCodeInvalidatesAndRedecodes) {
  auto build = std::make_shared<const core::BuildResult>(
      core::build_app(kSelfPatchingSource, "selfpatch", {.eilid = false}));

  auto run_one = [&](ExecutionEngine engine,
                     TraceMonitor& trace) -> DeviceSession* {
    static int n = 0;
    auto* session = new DeviceSession(
        "selfmod-" + std::to_string(n++), build, EnforcementPolicy::kNone,
        {.engine = engine});
    session->machine().add_monitor(&trace);
    auto result = session->run_to_symbol("halt", 10000);
    EXPECT_EQ(result.cause, sim::StopCause::kBreakpoint);
    return session;
  };

  TraceMonitor cached_trace;
  TraceMonitor interp_trace;
  TraceMonitor block_trace;
  std::unique_ptr<DeviceSession> cached(
      run_one(ExecutionEngine::kPredecoded, cached_trace));
  std::unique_ptr<DeviceSession> interp(
      run_one(ExecutionEngine::kInterpretive, interp_trace));
  std::unique_ptr<DeviceSession> block(
      run_one(ExecutionEngine::kSuperblock, block_trace));

  // The patch must have taken effect on all engines: stale decode would
  // leave r13 == 0 (and r12 == 2).
  for (DeviceSession* s : {cached.get(), interp.get(), block.get()}) {
    EXPECT_EQ(s->machine().cpu().reg(12), 1) << s->id();
    EXPECT_EQ(s->machine().cpu().reg(13), 2) << s->id();
  }

  // Bit-identical retired-instruction traces, fall-throughs included.
  ASSERT_FALSE(cached_trace.steps().empty());
  EXPECT_EQ(cached_trace.steps(), interp_trace.steps());
  EXPECT_EQ(cached_trace.steps(), block_trace.steps());

  // The cached run really used the table before the patch and really
  // abandoned it afterwards.
  const sim::Cpu& cached_cpu = cached->machine().cpu();
  EXPECT_GT(cached_cpu.decode_cache_hits(), 0u);
  EXPECT_GT(cached_cpu.decode_cache_misses(), 0u);
  EXPECT_FALSE(cached_cpu.decode_cache_valid());

  const sim::Cpu& interp_cpu = interp->machine().cpu();
  EXPECT_EQ(interp_cpu.decode_cache_hits(), 0u);
}

TEST(DecodedImage, CfaEvidenceIdenticalAcrossDecodePaths) {
  // The transfer-notification monitor must log exactly the edges the
  // re-decoding per-step monitor used to, under every engine -- the
  // superblock run has no tracer attached, so it genuinely exercises
  // block dispatch here.
  const auto& app = apps::app_by_name("charlieplexing");
  auto run_one = [&](ExecutionEngine engine) {
    Fleet fleet;
    DeviceSession& dev = fleet.deploy(
        "cfa-trace",
        fleet.build(app.source, app.name, {.eilid = false}),
        EnforcementPolicy::kCfaBaseline,
        {.cfa = {.log_capacity = 1u << 17}, .engine = engine});
    app.setup(dev.machine());
    dev.run_to_symbol("halt", 8 * app.cycle_budget);
    if (engine == ExecutionEngine::kSuperblock) {
      EXPECT_GT(dev.machine().blocks_executed(), 0u);
    } else {
      EXPECT_EQ(dev.machine().blocks_executed(), 0u);
    }
    return dev.cfa_monitor()->take_report(/*nonce=*/1,
                                          dev.machine().cycles());
  };
  cfa::Report cached = run_one(ExecutionEngine::kPredecoded);
  cfa::Report interp = run_one(ExecutionEngine::kInterpretive);
  cfa::Report block = run_one(ExecutionEngine::kSuperblock);
  ASSERT_FALSE(cached.edges.empty());
  EXPECT_EQ(cached.edges, interp.edges);
  EXPECT_EQ(cached.dropped, interp.dropped);
  EXPECT_EQ(cached.mac, interp.mac);  // same nonce, seq, edges, key
  EXPECT_EQ(block.edges, interp.edges);
  EXPECT_EQ(block.dropped, interp.dropped);
  EXPECT_EQ(block.mac, interp.mac);
}

}  // namespace
}  // namespace eilid
