// Device factory: wires a simulated machine, the EILID/CASU hardware
// monitor and the built images into a ready-to-run device. This is the
// main entry point users of the library interact with:
//
//   auto build = core::build_app(source, "app");
//   core::Device device(build);
//   device.machine().run(1'000'000);
#ifndef EILID_EILID_DEVICE_H
#define EILID_EILID_DEVICE_H

#include <memory>

#include "eilid/hw_monitor.h"
#include "eilid/pipeline.h"
#include "sim/machine.h"

namespace eilid::core {

struct DeviceOptions {
  double clock_hz = 8e6;
  bool halt_on_reset = false;  // stop run() at the first enforcement reset
};

class Device {
 public:
  explicit Device(const BuildResult& build, DeviceOptions options = {});

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  sim::Machine& machine() { return machine_; }
  EilidHwMonitor& monitor() { return monitor_; }
  const BuildResult& build() const { return build_; }
  bool eilid_enabled() const { return eilid_enabled_; }

  // Convenience: run until the given app symbol is reached (or the
  // cycle budget runs out). Throws if the symbol is unknown.
  sim::RunResult run_to_symbol(const std::string& symbol, uint64_t max_cycles);

  uint16_t symbol(const std::string& name) const;

 private:
  static EilidHwConfig make_hw_config(const BuildResult& build);

  BuildResult build_;
  sim::Machine machine_;
  EilidHwMonitor monitor_;
  bool eilid_enabled_;
};

}  // namespace eilid::core

#endif  // EILID_EILID_DEVICE_H
