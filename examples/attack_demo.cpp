// Attack walk-through on the vulnerable UART gateway: a real stack
// overflow exploited end-to-end (the adversary only sends bytes), plus
// a function-pointer hijack, on both enforcement policies. Also
// enumerates ROP gadgets to show the code-reuse surface that EILID's
// backward-edge CFI neutralises. Every device is provisioned through
// the Fleet facade; the vuln_gateway app is built once per policy and
// shared by all its devices via the build cache.
#include <cstdio>

#include "src/apps/apps.h"
#include "src/attacks/attack.h"
#include "src/attacks/gadgets.h"
#include "src/eilid/fleet.h"

using namespace eilid;

namespace {

void exploit_run(Fleet& fleet, EnforcementPolicy policy) {
  const auto& app = apps::vuln_gateway();
  const char* label =
      policy == EnforcementPolicy::kEilidHw ? "EILID" : "plain";
  DeviceSession& device =
      fleet.provision(std::string("smash-") + label, app.source, app.name,
                      policy, {.halt_on_reset = true});

  uint16_t unlock = device.symbol("unlock");
  std::printf("  [%s] sending packet: len=10, 8 filler bytes, return "
              "address -> unlock (0x%04x)\n",
              label, unlock);
  device.machine().uart().feed(attacks::overflow_ret_payload(unlock));
  device.run_to_symbol("halt", 200000);

  bool hijacked =
      device.machine().uart().tx_text().find('U') != std::string::npos;
  if (hijacked) {
    std::printf("  [%s] device transmitted 'U': unlock() executed -- "
                "HIJACKED\n",
                label);
  }
  if (device.violation_count() > 0) {
    std::printf("  [%s] device reset: %s\n", label,
                device.last_reset_reason().c_str());
  }
}

void fptr_run(Fleet& fleet, const char* device_id, uint16_t target,
              const char* what) {
  const auto& app = apps::vuln_gateway();
  DeviceSession& device =
      fleet.provision(device_id, app.source, app.name,
                      EnforcementPolicy::kEilidHw, {.halt_on_reset = true});
  device.machine().uart().feed(attacks::benign_payload());

  attacks::AttackEngine engine(device.machine());
  attacks::Attack a;
  a.name = "fptr";
  a.trigger = {attacks::Trigger::Kind::kAtPc, device.symbol("act"), 1};
  attacks::MemWrite w;
  w.addr = 0x0202;  // FPTR
  w.value = target;
  a.writes = {w};
  engine.schedule(a);
  device.run_to_symbol("halt", 200000);

  std::printf("  FPTR -> %s (0x%04x): %s\n", what, target,
              device.violation_count()
                  ? device.last_reset_reason().c_str()
                  : "allowed (target is in the entry table)");
}

}  // namespace

int main() {
  const auto& app = apps::vuln_gateway();
  Fleet fleet;
  auto plain = fleet.build(app.source, app.name, {.eilid = false});

  std::printf("== ROP surface ==\n");
  auto gadgets =
      attacks::find_gadgets(plain->app.image, 0xE000, 0xF000, /*max_len=*/3);
  int rets = 0;
  for (const auto& g : gadgets) rets += g.ends_in_ret ? 1 : 0;
  std::printf("  %zu gadgets in a %zu-byte binary (%d ending in ret); "
              "examples:\n",
              gadgets.size(), plain->binary_size(), rets);
  for (size_t i = 0; i < gadgets.size() && i < 4; ++i) {
    std::printf("    0x%04x: %s\n", gadgets[i].addr, gadgets[i].text.c_str());
  }

  std::printf("\n== P1: stack-smash exploit (adversary only sends bytes) ==\n");
  exploit_run(fleet, EnforcementPolicy::kCasu);
  exploit_run(fleet, EnforcementPolicy::kEilidHw);

  std::printf("\n== P3: function-pointer hijack on the EILID device ==\n");
  // One cached EILID build serves the probe lookups and both devices.
  auto eilid_build = fleet.build(app.source, app.name);
  fptr_run(fleet, "fptr-unlock", eilid_build->app.symbols.at("unlock"),
           "unlock (not registered)");
  fptr_run(fleet, "fptr-blink", eilid_build->app.symbols.at("blink"),
           "blink (registered .func)");
  std::printf(
      "\nFunction-level granularity, exactly as the paper states: redirecting\n"
      "to another *registered* entry is not detected (P3's stated limit),\n"
      "while any unregistered target resets the device.\n");
  std::printf("(%zu devices, %zu pipeline runs, %zu cache hits.)\n",
              fleet.size(), fleet.pipeline_runs(), fleet.build_cache_hits());
  return 0;
}
