// Adversarial scenario matrix for staged rollouts: every wave /
// budget / cohort path of the CampaignScheduler is proven under
// attack, not just on the happy path. The matrix crosses
//
//   fault   {clean wave, forged package in the canary, CFA hijack
//            detected at the wave gate, device diverged out-of-band
//            (kImageMismatch)}
// x budget  {zero (nothing tolerated), tolerant (one canary may burn)}
// x mode    {serial run(), pooled run(pool)}
//
// and asserts, per cell: which waves applied, whether (and why) the
// scheduler halted, that held A/B cohorts never moved, that the
// devices of never-applied waves still attest clean on the *old*
// build, and that the pooled run's report is bit-identical to the
// serial run's.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "apps/apps.h"
#include "attacks/attack.h"
#include "attacks/gadgets.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "eilid/fleet.h"
#include "eilid/rollout.h"

namespace eilid {
namespace {

enum class Fault { kClean, kForgedCanary, kHijackCanary, kDivergedCanary };

const char* fault_name(Fault fault) {
  switch (fault) {
    case Fault::kClean: return "clean";
    case Fault::kForgedCanary: return "forged";
    case Fault::kHijackCanary: return "hijack";
    case Fault::kDivergedCanary: return "diverged";
  }
  return "?";
}

constexpr const char* kVictim = "unit-0";

// Firmware v2 of the gateway: appends a (never-called) routine after
// the last function, so the transition is a genuine PMEM diff while
// every existing symbol keeps its address.
std::string gateway_v2() {
  std::string source = apps::vuln_gateway().source;
  const size_t pos = source.rfind(".vector");
  EXPECT_NE(pos, std::string::npos);
  source.insert(pos, "v2_tag:\n    ret\n");
  return source;
}

struct RunState {
  std::unique_ptr<Fleet> fleet;  // Fleet is move-averse; heap-pin it
  RolloutReport report;
  std::shared_ptr<const core::BuildResult> v1;
  std::shared_ptr<const core::BuildResult> target;
};

// One matrix cell: 8 gateway devices (unit-0..7), unit-6/7 pinned in
// an A/B hold, a 3-wave plan (explicit 2-device canary containing the
// victim, then 50% of the remainder, then the rest), the fault
// injected at the canary, and the plan executed serially or pooled.
RunState run_scenario(Fault fault, bool tolerant, bool pooled) {
  const apps::AppSpec& app = apps::vuln_gateway();
  RunState state;
  state.fleet = std::make_unique<Fleet>();
  Fleet& fleet = *state.fleet;

  for (int i = 0; i < 8; ++i) {
    DeviceSession& dev = fleet.provision(
        "unit-" + std::to_string(i), app.source, app.name,
        EnforcementPolicy::kCfaBaseline, {.cfa = {.log_capacity = 65536}});
    dev.machine().uart().feed(attacks::benign_payload());
    dev.run_to_symbol("halt", app.cycle_budget);
  }
  state.v1 = fleet.at(kVictim).shared_build();

  if (fault == Fault::kDivergedCanary) {
    // Out-of-band (but validly MAC'd) patch: the victim's PMEM no
    // longer matches its recorded build, so the campaign must refuse
    // the diff-based transition before anything is applied.
    DeviceSession& victim = fleet.at(kVictim);
    const crypto::Digest key = fleet.update_key(kVictim);
    casu::UpdateAuthority authority(
        std::span<const uint8_t>(key.data(), key.size()));
    EXPECT_EQ(victim.apply_update(authority.make_package(
                  0xFB00, victim.firmware_version() + 1, {0x03, 0x43})),
              casu::UpdateStatus::kApplied);
  }

  CampaignOptions campaign_options;
  if (fault == Fault::kForgedCanary) {
    campaign_options.tamper = [](const DeviceSession& dev,
                                 casu::UpdatePackage& package) {
      if (dev.id() == kVictim) package.mac[0] ^= 0xFF;
    };
  }
  state.target = fleet.build(gateway_v2(), "gateway-v2", {.eilid = false});

  RolloutPlan plan;
  plan.holds = {{"ab-hold", {"unit-6", "unit-7"}}};
  plan.waves = {{.name = "canary", .device_ids = {"unit-0", "unit-1"}},
                {.name = "early", .fraction = 0.5},
                {.name = "rest", .fraction = 1.0}};
  if (tolerant) plan.budget.max_fraction = 0.5;  // 2-device canary: 1 allowed
  plan.max_in_flight = 2;
  plan.probe = [fault, &app](const std::vector<DeviceSession*>& wave,
                             common::ThreadPool*) {
    // Deterministic probe (ignores the pool on purpose): drive every
    // wave device so the gate judges post-update evidence; on the
    // hijack scenario the victim is fed the stack-smash exploit
    // instead of benign traffic.
    for (DeviceSession* dev : wave) {
      std::lock_guard<std::mutex> lock(dev->mutex());
      // A device that rejected a tampered package is parked with a
      // latched violation; a few cycles let it heal by reset before
      // the workload drives it (run_to_symbol alone would return at
      // the parked breakpoint without stepping).
      dev->machine().run(64);
      if (fault == Fault::kHijackCanary && dev->id() == kVictim) {
        dev->machine().uart().feed(
            attacks::overflow_ret_payload(dev->symbol("unlock")));
        dev->run_to_symbol("halt", 8 * app.cycle_budget);
      } else {
        apps::run_workload(*dev, app);
      }
    }
  };

  CampaignScheduler scheduler =
      fleet.plan_rollout(state.target, plan, campaign_options);
  if (pooled) {
    common::ThreadPool pool(4);
    state.report = scheduler.run(pool);
  } else {
    state.report = scheduler.run();
  }
  return state;
}

class RolloutMatrix
    : public ::testing::TestWithParam<std::tuple<Fault, bool, bool>> {};

TEST_P(RolloutMatrix, WavesBudgetsAndHoldsBehave) {
  const auto [fault, tolerant, pooled] = GetParam();
  RunState state = run_scenario(fault, tolerant, pooled);
  Fleet& fleet = *state.fleet;
  const RolloutReport& report = state.report;

  // Membership resolution is a pure function of plan + registry.
  ASSERT_EQ(report.waves.size(), 3u);
  EXPECT_EQ(report.held, (std::vector<std::string>{"unit-6", "unit-7"}));
  EXPECT_EQ(report.waves[0].device_ids,
            (std::vector<std::string>{"unit-0", "unit-1"}));
  EXPECT_EQ(report.waves[1].device_ids,
            (std::vector<std::string>{"unit-2", "unit-3"}));
  EXPECT_EQ(report.waves[2].device_ids,
            (std::vector<std::string>{"unit-4", "unit-5"}));

  // Held A/B cohorts never move, in every cell of the matrix.
  for (const char* id : {"unit-6", "unit-7"}) {
    EXPECT_EQ(fleet.at(id).shared_build().get(), state.v1.get()) << id;
    EXPECT_EQ(fleet.at(id).firmware_version(), 0u) << id;
  }

  const bool faulted = fault != Fault::kClean;
  const bool expect_halt = faulted && !tolerant;
  EXPECT_EQ(report.halted, expect_halt) << fault_name(fault);
  EXPECT_EQ(report.ok(), !expect_halt);
  EXPECT_EQ(report.waves_applied, expect_halt ? 1u : 3u);

  // Canary wave: victim outcome per fault, budget arithmetic.
  const WaveOutcome& canary = report.waves[0];
  EXPECT_TRUE(canary.applied);
  EXPECT_EQ(canary.allowance, tolerant ? 1u : 0u);
  EXPECT_EQ(canary.failures, faulted ? 1u : 0u) << fault_name(fault);
  EXPECT_EQ(canary.within_budget, !expect_halt);
  ASSERT_EQ(canary.updates.size(), 2u);
  const UpdateOutcome& victim = canary.updates[0];  // membership order
  ASSERT_EQ(victim.device_id, kVictim);
  EXPECT_EQ(canary.updates[1].result, UpdateResult::kApplied);
  switch (fault) {
    case Fault::kClean:
    case Fault::kHijackCanary:
      EXPECT_EQ(victim.result, UpdateResult::kApplied);
      EXPECT_TRUE(victim.build_swapped);
      break;
    case Fault::kForgedCanary: {
      EXPECT_EQ(victim.result, UpdateResult::kBadMac);
      EXPECT_FALSE(victim.build_swapped);
      // The device latched the violation and healed by reset (the
      // probe ran it); it never ran tampered code.
      EXPECT_EQ(fleet.at(kVictim).last_reset_reason(), "update-auth");
      EXPECT_EQ(fleet.at(kVictim).shared_build().get(), state.v1.get());
      break;
    }
    case Fault::kDivergedCanary:
      EXPECT_EQ(victim.result, UpdateResult::kImageMismatch);
      EXPECT_FALSE(victim.build_swapped);
      EXPECT_EQ(fleet.at(kVictim).shared_build().get(), state.v1.get());
      break;
  }
  if (fault == Fault::kHijackCanary) {
    // The wave gate convicts the hijack: the exploit edge into
    // `unlock` is outside the CFG the verifier replays against.
    ASSERT_FALSE(canary.gate.empty());
    const VerifierService::AttestResult& verdict = canary.gate[0];
    ASSERT_EQ(verdict.device_id, kVictim);  // enrollment-id order
    EXPECT_TRUE(verdict.attested);
    EXPECT_TRUE(verdict.mac_ok);
    EXPECT_FALSE(verdict.path_ok);
    ASSERT_TRUE(verdict.first_bad.has_value());
    EXPECT_EQ(verdict.first_bad->to, fleet.at(kVictim).symbol("unlock"));
  }

  if (expect_halt) {
    EXPECT_NE(report.halt_reason.find("canary"), std::string::npos)
        << report.halt_reason;
    for (size_t w = 1; w < report.waves.size(); ++w) {
      EXPECT_FALSE(report.waves[w].applied);
      EXPECT_TRUE(report.waves[w].updates.empty());
      EXPECT_TRUE(report.waves[w].gate.empty());
    }
    // Never-applied waves: devices still on the old build, and they
    // still attest clean on it (subset sweep touches only them).
    std::vector<DeviceSession*> later = {
        &fleet.at("unit-2"), &fleet.at("unit-3"), &fleet.at("unit-4"),
        &fleet.at("unit-5")};
    for (DeviceSession* dev : later) {
      EXPECT_EQ(dev->shared_build().get(), state.v1.get()) << dev->id();
      EXPECT_EQ(dev->firmware_version(), 0u) << dev->id();
    }
    for (const auto& verdict : fleet.verifier().verify_all(later)) {
      EXPECT_TRUE(verdict.ok()) << verdict.device_id;
    }
  } else {
    EXPECT_TRUE(report.halt_reason.empty());
    for (size_t w = 1; w < report.waves.size(); ++w) {
      const WaveOutcome& wave = report.waves[w];
      EXPECT_TRUE(wave.applied);
      EXPECT_EQ(wave.failures, 0u);
      for (const UpdateOutcome& update : wave.updates) {
        EXPECT_EQ(update.result, UpdateResult::kApplied) << update.device_id;
      }
      for (const auto& verdict : wave.gate) {
        EXPECT_TRUE(verdict.ok()) << verdict.device_id;
      }
    }
    // Every waved device (bar a burned canary) runs the target now.
    const bool victim_stays = fault == Fault::kForgedCanary ||
                              fault == Fault::kDivergedCanary;
    for (int i = 0; i < 6; ++i) {
      DeviceSession& dev = fleet.at("unit-" + std::to_string(i));
      const core::BuildResult* expected =
          victim_stays && dev.id() == kVictim ? state.v1.get()
                                              : state.target.get();
      EXPECT_EQ(dev.shared_build().get(), expected) << dev.id();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RolloutMatrix,
    ::testing::Combine(::testing::Values(Fault::kClean, Fault::kForgedCanary,
                                         Fault::kHijackCanary,
                                         Fault::kDivergedCanary),
                       ::testing::Bool(),   // tolerant budget
                       ::testing::Bool()),  // pooled
    [](const auto& info) {
      return std::string(fault_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_tolerant" : "_budget0") +
             (std::get<2>(info.param) ? "_pooled" : "_serial");
    });

// The acceptance-criteria determinism half: for every fault x budget
// cell, the pooled run of the same plan produces a bit-identical
// report (per-wave outcomes, gate verdicts, halt reason) to the
// serial run on an identically constructed fleet.
class RolloutDeterminism
    : public ::testing::TestWithParam<std::tuple<Fault, bool>> {};

TEST_P(RolloutDeterminism, PooledReportBitIdenticalToSerial) {
  const auto [fault, tolerant] = GetParam();
  RunState serial = run_scenario(fault, tolerant, /*pooled=*/false);
  RunState pooled = run_scenario(fault, tolerant, /*pooled=*/true);
  EXPECT_TRUE(serial.report == pooled.report)
      << fault_name(fault) << (tolerant ? "/tolerant" : "/budget0");
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RolloutDeterminism,
    ::testing::Combine(::testing::Values(Fault::kClean, Fault::kForgedCanary,
                                         Fault::kHijackCanary,
                                         Fault::kDivergedCanary),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(fault_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_tolerant" : "_budget0");
    });

// The hijack scenario is not hypothetical: the gateway image carries
// enough ROP material (short runs ending in ret) for code reuse, which
// is exactly what the CFA wave gate convicts.
TEST(RolloutScenarios, GatewayImageHasRopGadgetsForTheHijack) {
  Fleet fleet;
  auto build =
      fleet.build(apps::vuln_gateway().source, "vuln_gateway", {.eilid = false});
  auto gadgets = attacks::find_gadgets(build->app.image, 0xE000, 0xF000);
  EXPECT_FALSE(gadgets.empty());
}

// apps::wave_workload is the stock probe: it drives every wave device
// between apply and gate (pooled via run_workload_all, serially under
// each session's lock), and it copies the spec -- a temporary AppSpec
// must be safe to pass.
TEST(RolloutScenarios, WaveWorkloadProbeDrivesWavesBetweenGates) {
  const apps::AppSpec& app = apps::app_by_name("light_sensor");
  Fleet fleet;
  for (int i = 0; i < 4; ++i) {
    fleet.provision("lw-" + std::to_string(i), app.source, app.name,
                    EnforcementPolicy::kCfaBaseline,
                    {.cfa = {.log_capacity = 65536}});
  }
  auto v2 = [&] {
    std::string source = app.source;
    source.insert(source.rfind(".vector"), "v2_tag:\n    ret\n");
    return fleet.build(source, "light_sensor-v2", {.eilid = false});
  }();

  RolloutPlan plan;
  plan.waves = {{.name = "canary", .fraction = 0.5},
                {.name = "rest", .fraction = 1.0}};
  plan.probe = apps::wave_workload(apps::AppSpec(app));  // temporary copy

  common::ThreadPool pool(4);
  RolloutReport report = fleet.plan_rollout(v2, plan).run(pool);
  EXPECT_FALSE(report.halted) << report.halt_reason;
  ASSERT_EQ(report.waves.size(), 2u);
  for (const WaveOutcome& wave : report.waves) {
    EXPECT_TRUE(wave.applied);
    ASSERT_EQ(wave.device_ids.size(), 2u);
    for (const UpdateOutcome& update : wave.updates) {
      EXPECT_EQ(update.result, UpdateResult::kApplied) << update.device_id;
    }
    for (const auto& verdict : wave.gate) {
      EXPECT_TRUE(verdict.ok()) << verdict.device_id;
      // The probe genuinely drove the device post-update: its gate
      // evidence carries the workload's control transfers.
      EXPECT_GT(verdict.edges, 0u) << verdict.device_id;
    }
  }
}

// Malformed plans are rejected up front, before any device is touched.
TEST(RolloutScenarios, MalformedPlansThrowTyped) {
  Fleet fleet;
  const apps::AppSpec& app = apps::vuln_gateway();
  fleet.provision("solo", app.source, app.name,
                  EnforcementPolicy::kCfaBaseline);
  auto target = fleet.build(gateway_v2(), "gateway-v2", {.eilid = false});

  EXPECT_THROW(fleet.plan_rollout(target, RolloutPlan{}), FleetError);

  RolloutPlan both;
  both.waves = {{.name = "bad", .device_ids = {"solo"}, .fraction = 0.5}};
  EXPECT_THROW(fleet.plan_rollout(target, both).run(), FleetError);

  RolloutPlan unknown;
  unknown.waves = {{.device_ids = {"ghost"}}};
  EXPECT_THROW(fleet.plan_rollout(target, unknown).run(), FleetError);

  RolloutPlan negative;
  negative.waves = {{.name = "neg", .fraction = -0.5}};
  EXPECT_THROW(fleet.plan_rollout(target, negative).run(), FleetError);

  RolloutPlan twice;
  twice.waves = {{.device_ids = {"solo"}}, {.device_ids = {"solo"}}};
  EXPECT_THROW(fleet.plan_rollout(target, twice).run(), FleetError);

  RolloutPlan ghost_hold;
  ghost_hold.waves = {{.fraction = 1.0}};
  ghost_hold.holds = {{"ab", {"ghost"}}};
  EXPECT_THROW(fleet.plan_rollout(target, ghost_hold).run(), FleetError);
}

}  // namespace
}  // namespace eilid
