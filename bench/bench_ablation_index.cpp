// Ablation (paper §V-B): register-backed shadow index (r5) vs a
// memory-backed index in secure DMEM. The paper keeps the index in r5
// to "obviate the need for memory access ... improving performance";
// this bench quantifies that choice: micro pair cost and full-app
// runtime, plus the freed register (no r5 spills needed).
#include <cstdio>

#include "bench/bench_util.h"

using namespace eilid;
using namespace eilid::bench;

int main() {
  std::printf("Ablation: shadow-stack index in r5 vs in secure DMEM\n\n");
  std::printf("%-18s | %-23s | %-23s | %s\n", "Software",
              "runtime us (r5 index)", "runtime us (mem index)", "mem vs r5");
  print_rule(90);

  double sum = 0;
  int n = 0;
  for (const auto& app : apps::table4_apps()) {
    core::BuildOptions reg_opts;
    AppRun reg_run = run_app(app, true, reg_opts);

    core::BuildOptions mem_opts;
    mem_opts.rom.memory_backed_index = true;
    AppRun mem_run = run_app(app, true, mem_opts);

    if (!reg_run.reached_halt || !mem_run.reached_halt || reg_run.violations ||
        mem_run.violations) {
      std::printf("%-18s | RUN FAILED\n", app.name.c_str());
      continue;
    }
    double d = pct(reg_run.micros, mem_run.micros);
    sum += d;
    ++n;
    std::printf("%-18s | %21.1f | %21.1f | %+6.2f%%\n", app.name.c_str(),
                reg_run.micros, mem_run.micros, d);
  }
  print_rule(90);
  if (n) std::printf("%-18s | %21s | %21s | %+6.2f%%\n", "Average", "", "", sum / n);
  std::printf(
      "\nThe register-backed index is faster (the paper's choice), at the\n"
      "price of reserving r5 forever and spilling application writes to "
      "it.\n");
  return 0;
}
