// Fleet-health throughput: heartbeat attestation sweeps and automated
// self-healing at fleet scale, driven entirely on the deterministic
// FleetClock. Per thread count in {1, 2, 4, 8} (1 = the serial paths):
//
//   1. cadence sweep -- a healthy fleet swept by HeartbeatScheduler at
//      periods {25, 50, 100} over a 1000-tick horizon; verdicts/sec
//      reported, every verdict must be ok() and the beat count must
//      match horizon/period exactly,
//   2. self-healing pass -- 1/8 of the fleet forced offline (goes
//      stale) and another 1/8 diverged by a rogue validly-MAC'd patch
//      (convicts at the first beat); the HealthMonitor must quarantine
//      exactly those devices, heal the convicted ones immediately
//      (reflash -> re-update onto the golden build -> clean verdict),
//      refuse to touch the unreachable ones until they come back, then
//      heal them too, ending with an empty quarantine and a fleet that
//      attests clean.
//
// Correctness gates (the bench FAILS on any violation): the membership
// checks above, plus determinism -- every thread count's sequence of
// HealthReports (and cadence HeartbeatReports) must be bit-identical
// to the serial row's, including the mid-scenario per-device staleness
// histogram (snapshotted right after the stale eighth is quarantined:
// exactly the devices past the policy threshold must sit in the
// over-threshold buckets).
//
// Results land in BENCH_fleet_health.json (committed at the repo root;
// CI re-runs the bench and scripts/check_bench_regression.py compares
// fresh numbers against the committed baseline).
//
// Usage: bench_fleet_health [--smoke]   (--smoke: CI-sized fleet)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/eilid/fleet.h"
#include "src/eilid/health.h"

using namespace eilid;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

std::string firmware(int generation) {
  std::string s = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
)";
  for (int i = 0; i < generation + 1; ++i) s += "    call #emit\n";
  s += R"(halt:
    jmp halt
emit:
    mov.b #')";
  s += static_cast<char>('0' + generation);
  s += R"(', &UART_TX
    ret
.vector 15, main
.end
)";
  return s;
}

std::string device_id(size_t i) {
  char buf[32];  // worst-case %zu needs more than 16 (-Wformat-truncation)
  std::snprintf(buf, sizeof(buf), "dev-%03zu", i);
  return buf;
}

bool forced_offline(size_t i) { return i % 8 == 3; }   // goes stale
bool forced_diverged(size_t i) { return i % 8 == 6; }  // convicts

constexpr Tick kCadences[] = {25, 50, 100};
constexpr Tick kHorizon = 1000;

// Staleness histogram bucket upper edges (ticks since the last clean
// verdict); the final bucket is everything past the last edge.
constexpr Tick kStalenessEdges[] = {50, 100, 200, 400};
constexpr size_t kStalenessBuckets =
    sizeof(kStalenessEdges) / sizeof(kStalenessEdges[0]) + 1;

struct RowResult {
  size_t threads = 0;
  double cadence_ms = 0;  // all three cadences, summed
  double heal_ms = 0;     // the four-pass self-healing scenario
  size_t verdicts = 0;    // cadence-sweep verdicts (for verdicts/sec)
  // Per-device staleness histogram, snapshotted after pass 2 (see
  // below): counts per kStalenessEdges bucket, last bucket = overflow.
  std::vector<size_t> staleness_hist;
  bool gates_ok = true;
  std::vector<HeartbeatReport> cadence_reports;  // compared across rows
  std::vector<HealthReport> heal_reports;        // ditto
};

void fail(RowResult& row, const char* what) {
  std::printf("  !! threads=%zu: %s\n", row.threads, what);
  row.gates_ok = false;
}

RowResult run_row(size_t threads, size_t devices) {
  RowResult row;
  row.threads = threads;
  const bool serial = threads == 1;
  common::ThreadPool pool(threads);

  Fleet fleet;
  for (size_t i = 0; i < devices; ++i) {
    DeviceSession& dev =
        fleet.provision(device_id(i), firmware(0), "fw",
                        EnforcementPolicy::kCfaBaseline,
                        {.cfa = {.log_capacity = 65536}});
    dev.run_to_symbol("halt", 100000);
  }
  auto gen0 = fleet.at(device_id(0)).shared_build();
  auto golden = fleet.build(firmware(1), "fw", {.eilid = false});

  // --- 1. cadence sweep over the healthy fleet -----------------------
  {
    auto t0 = clock_type::now();
    for (Tick period : kCadences) {
      HeartbeatScheduler scheduler(fleet, {.period = period});
      const Tick deadline = fleet.clock().now() + kHorizon;
      HeartbeatReport report =
          serial ? scheduler.run_until(deadline)
                 : scheduler.run_until(deadline, pool);
      if (report.beats.size() != kHorizon / period) {
        fail(row, "cadence beat count mismatch");
      }
      for (const HeartbeatBeat& beat : report.beats) {
        if (beat.verdicts.size() != devices || !beat.missed.empty()) {
          fail(row, "cadence sweep missed devices");
        }
        for (const auto& verdict : beat.verdicts) {
          if (!verdict.ok()) fail(row, "cadence verdict not ok");
        }
        row.verdicts += beat.verdicts.size();
      }
      row.cadence_reports.push_back(std::move(report));
    }
    row.cadence_ms = ms_since(t0);
  }

  // --- 2. self-healing: forced-stale + forced-conviction -------------
  std::set<std::string> offline_ids;
  std::set<std::string> diverged_ids;
  for (size_t i = 0; i < devices; ++i) {
    if (forced_offline(i)) {
      fleet.at(device_id(i)).set_online(false);
      offline_ids.insert(device_id(i));
    } else if (forced_diverged(i)) {
      DeviceSession& dev = fleet.at(device_id(i));
      const crypto::Digest key = fleet.update_key(device_id(i));
      casu::UpdateAuthority authority(
          std::span<const uint8_t>(key.data(), key.size()));
      if (dev.apply_update(authority.make_package(
              0xE800, dev.firmware_version() + 1, {0x03, 0x43})) !=
          casu::UpdateStatus::kApplied) {
        fail(row, "rogue package refused");
      }
      diverged_ids.insert(device_id(i));
    }
  }

  HealthMonitor health(fleet, {.heartbeat = {.period = 100, .jitter = 9,
                                             .jitter_seed = 42},
                               .policy = {.staleness_threshold = 250}});
  health.stage_remediation(fleet.stage_update(golden));
  const Tick t_start = fleet.clock().now();
  auto run_pass = [&](Tick deadline) {
    HealthReport report = serial ? health.run_until(deadline)
                                 : health.run_until(deadline, pool);
    row.heal_reports.push_back(report);
    return report;
  };
  auto quarantined_ids = [](const std::vector<QuarantineEntry>& entries) {
    std::set<std::string> ids;
    for (const auto& entry : entries) ids.insert(entry.device_id);
    return ids;
  };

  auto t0 = clock_type::now();
  // Pass 1: first beat. Diverged devices convict, quarantine, and heal
  // in one pass; offline devices miss but are not yet stale.
  HealthReport pass = run_pass(t_start + 150);
  if (quarantined_ids(pass.newly_quarantined) != diverged_ids) {
    fail(row, "pass 1: conviction quarantine membership wrong");
  }
  for (const auto& entry : pass.newly_quarantined) {
    if (entry.reason != QuarantineReason::kConvicted) {
      fail(row, "pass 1: conviction reason wrong");
    }
  }
  if (pass.remediations.size() != diverged_ids.size()) {
    fail(row, "pass 1: remediation count wrong");
  }
  for (const auto& heal : pass.remediations) {
    if (!heal.healed || heal.update.result != UpdateResult::kApplied ||
        !heal.verdict.ok()) {
      fail(row, "pass 1: convicted device did not heal");
    }
  }
  if (pass.quarantined_after != 0) fail(row, "pass 1: quarantine not empty");

  // Pass 2: the offline eighth ages past the staleness threshold. They
  // are quarantined but unreachable -- remediation must not pretend.
  pass = run_pass(t_start + 400);
  if (quarantined_ids(pass.newly_quarantined) != offline_ids) {
    fail(row, "pass 2: staleness quarantine membership wrong");
  }
  for (const auto& entry : pass.newly_quarantined) {
    if (entry.reason != QuarantineReason::kStale) {
      fail(row, "pass 2: staleness reason wrong");
    }
  }
  for (const auto& heal : pass.remediations) {
    if (heal.reachable || heal.healed) {
      fail(row, "pass 2: unreachable device 'remediated'");
    }
  }
  if (pass.quarantined_after != offline_ids.size()) {
    fail(row, "pass 2: stale devices not held in quarantine");
  }

  // Staleness histogram at the scenario's most contrasty moment: the
  // online seven-eighths beat clean moments ago, the offline eighth has
  // aged past the threshold. Staleness = ticks since the last clean
  // verdict (enrollment when there never was one).
  {
    const Tick now = fleet.clock().now();
    row.staleness_hist.assign(kStalenessBuckets, 0);
    size_t over_threshold = 0;
    for (const FreshnessRecord& record : health.records()) {
      const Tick anchor =
          record.ever_ok ? record.last_ok_tick : record.enrolled_tick;
      const Tick age = now >= anchor ? now - anchor : 0;
      size_t bucket = kStalenessBuckets - 1;
      for (size_t b = 0; b < kStalenessBuckets - 1; ++b) {
        if (age <= kStalenessEdges[b]) {
          bucket = b;
          break;
        }
      }
      ++row.staleness_hist[bucket];
      if (age > 250) ++over_threshold;  // the monitor's threshold
    }
    if (over_threshold != offline_ids.size()) {
      fail(row, "staleness histogram: over-threshold population wrong");
    }
  }

  // Pass 3: the stale devices come back online and heal -- reflash,
  // re-update onto the golden build, clean verdict, released.
  for (const std::string& id : offline_ids) fleet.at(id).set_online(true);
  pass = run_pass(t_start + 500);
  if (pass.remediations.size() != offline_ids.size()) {
    fail(row, "pass 3: remediation count wrong");
  }
  for (const auto& heal : pass.remediations) {
    if (!heal.healed || heal.update.result != UpdateResult::kApplied ||
        !heal.verdict.ok()) {
      fail(row, "pass 3: stale device did not heal");
    }
  }
  if (pass.quarantined_after != 0) fail(row, "pass 3: quarantine not empty");

  // Pass 4: steady state -- nothing new quarantines, every beat clean.
  pass = run_pass(t_start + 700);
  if (!pass.newly_quarantined.empty() || pass.quarantined_after != 0) {
    fail(row, "pass 4: steady state not clean");
  }
  for (const auto& beat : pass.heartbeats.beats) {
    for (const auto& verdict : beat.verdicts) {
      if (!verdict.ok()) fail(row, "pass 4: verdict not ok");
    }
  }
  row.heal_ms = ms_since(t0);

  // Healed devices genuinely run the golden build; untouched devices
  // were never moved off generation 0.
  for (size_t i = 0; i < devices; ++i) {
    DeviceSession& dev = fleet.at(device_id(i));
    const bool healed = forced_offline(i) || forced_diverged(i);
    if (dev.shared_build().get() != (healed ? golden.get() : gen0.get())) {
      fail(row, "final build placement wrong");
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const size_t devices = smoke ? 64 : 256;
  const size_t kThreadCounts[] = {1, 2, 4, 8};

  std::vector<RowResult> rows;
  for (size_t threads : kThreadCounts) {
    rows.push_back(run_row(threads, devices));
  }
  const RowResult& base = rows[0];

  std::printf("Fleet health (%s): %zu devices, cadences {25,50,100} over "
              "%llu ticks, 1/8 forced stale + 1/8 forced conviction\n",
              smoke ? "smoke" : "full", devices,
              static_cast<unsigned long long>(kHorizon));
  std::printf("%7s | %12s | %14s | %12s | %8s\n", "threads", "cadence ms",
              "self-heal ms", "verdicts/sec", "speedup");
  bool ok = true;
  for (const RowResult& row : rows) {
    std::printf("%7zu | %12.2f | %14.2f | %12.0f | %7.2fx\n", row.threads,
                row.cadence_ms, row.heal_ms,
                row.cadence_ms > 0
                    ? 1000.0 * static_cast<double>(row.verdicts) /
                          row.cadence_ms
                    : 0.0,
                row.cadence_ms > 0 ? base.cadence_ms / row.cadence_ms : 0.0);
    if (!row.gates_ok) {
      std::printf("  !! threads=%zu: correctness gate failed\n", row.threads);
      ok = false;
    }
    if (!(row.cadence_reports == base.cadence_reports) ||
        !(row.heal_reports == base.heal_reports) ||
        row.staleness_hist != base.staleness_hist) {
      std::printf("  !! threads=%zu: reports diverge from the serial row\n",
                  row.threads);
      ok = false;
    }
  }

  std::printf("staleness histogram after pass 2 (ticks since last clean "
              "verdict):\n");
  for (size_t b = 0; b < kStalenessBuckets; ++b) {
    if (b < kStalenessBuckets - 1) {
      std::printf("  <= %4llu: %zu\n",
                  static_cast<unsigned long long>(kStalenessEdges[b]),
                  base.staleness_hist[b]);
    } else {
      std::printf("   > %4llu: %zu\n",
                  static_cast<unsigned long long>(
                      kStalenessEdges[kStalenessBuckets - 2]),
                  base.staleness_hist[b]);
    }
  }
  std::printf("reports: %zu heartbeat + %zu health per row, bit-identical "
              "across all thread counts\n",
              base.cadence_reports.size(), base.heal_reports.size());

  std::string rows_json;
  for (const RowResult& row : rows) {
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"threads\": %zu, \"cadence_ms\": %.2f, \"heal_ms\": %.2f, "
        "\"verdicts_per_sec\": %.0f, \"speedup\": %.2f, \"gates_ok\": %s},\n",
        row.threads, row.cadence_ms, row.heal_ms,
        row.cadence_ms > 0
            ? 1000.0 * static_cast<double>(row.verdicts) / row.cadence_ms
            : 0.0,
        row.cadence_ms > 0 ? base.cadence_ms / row.cadence_ms : 0.0,
        row.gates_ok ? "true" : "false");
    rows_json += buf;
  }
  if (!rows_json.empty()) rows_json.resize(rows_json.size() - 2);
  std::string hist_json;
  for (size_t b = 0; b < kStalenessBuckets; ++b) {
    char buf[96];
    std::snprintf(
        buf, sizeof(buf), "    {\"le\": %s, \"count\": %zu},\n",
        b < kStalenessBuckets - 1
            ? std::to_string(kStalenessEdges[b]).c_str()
            : "null",
        base.staleness_hist[b]);
    hist_json += buf;
  }
  if (!hist_json.empty()) hist_json.resize(hist_json.size() - 2);
  FILE* json = std::fopen("BENCH_fleet_health.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"fleet_health\",\n  \"mode\": \"%s\",\n"
                 "  \"devices\": %zu,\n  \"rows\": [\n%s\n  ],\n"
                 "  \"staleness_histogram\": [\n%s\n  ],\n  \"ok\": %s\n}\n",
                 smoke ? "smoke" : "full", devices, rows_json.c_str(),
                 hist_json.c_str(), ok ? "true" : "false");
    std::fclose(json);
  }

  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
