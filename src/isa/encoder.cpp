#include "isa/encoder.h"

#include "common/error.h"
#include "common/hex.h"
#include "isa/registers.h"

namespace eilid::isa {
namespace {

struct EncodedOperand {
  uint8_t as;       // addressing bits (2 for src, 1 meaningful for dst)
  uint8_t reg;      // register field
  bool has_ext;     // occupies an extension word
  uint16_t ext;     // extension word value (if has_ext)
};

// Encode a source operand. `ext_addr` is the address the extension word
// would occupy (needed for symbolic displacement).
EncodedOperand encode_src(const Operand& op, uint16_t ext_addr, bool allow_cg) {
  switch (op.mode) {
    case AddrMode::kRegister:
      return {0, op.reg, false, 0};
    case AddrMode::kIndexed:
      if (op.reg == kPC || op.reg == kSR || op.reg == kCG2) {
        throw Error("indexed source may not use r0/r2/r3 (use symbolic/absolute)");
      }
      return {1, op.reg, true, static_cast<uint16_t>(op.value)};
    case AddrMode::kSymbolic:
      return {1, kPC, true,
              static_cast<uint16_t>(static_cast<uint16_t>(op.value) - ext_addr)};
    case AddrMode::kAbsolute:
      return {1, kSR, true, static_cast<uint16_t>(op.value)};
    case AddrMode::kIndirect:
      if (op.reg == kSR || op.reg == kCG2) {
        throw Error("@r2/@r3 are constant-generator encodings, not operands");
      }
      return {2, op.reg, false, 0};
    case AddrMode::kIndirectInc:
      if (op.reg == kPC || op.reg == kSR || op.reg == kCG2) {
        throw Error("@Rn+ source may not use r0/r2/r3");
      }
      return {3, op.reg, false, 0};
    case AddrMode::kImmediate: {
      if (allow_cg) {
        if (auto cg = constant_generator(op.value)) {
          return {cg->as, cg->reg, false, 0};
        }
      }
      return {3, kPC, true, static_cast<uint16_t>(op.value)};
    }
  }
  throw Error("unreachable: bad source mode");
}

EncodedOperand encode_dst(const Operand& op, uint16_t ext_addr) {
  switch (op.mode) {
    case AddrMode::kRegister:
      return {0, op.reg, false, 0};
    case AddrMode::kIndexed:
      if (op.reg == kPC || op.reg == kSR) {
        throw Error("indexed destination may not use r0/r2 (use symbolic/absolute)");
      }
      return {1, op.reg, true, static_cast<uint16_t>(op.value)};
    case AddrMode::kSymbolic:
      return {1, kPC, true,
              static_cast<uint16_t>(static_cast<uint16_t>(op.value) - ext_addr)};
    case AddrMode::kAbsolute:
      return {1, kSR, true, static_cast<uint16_t>(op.value)};
    default:
      throw Error("destination must be register/indexed/symbolic/absolute");
  }
}

}  // namespace

unsigned encoded_size_words(const Instruction& insn, EncodeOptions opts) {
  const auto& info = opcode_info(insn.op);
  const auto src_is_cg = [&](const Operand& op) {
    return opts.allow_cg && op.mode == AddrMode::kImmediate &&
           constant_generator(op.value).has_value();
  };
  switch (info.format) {
    case Format::kJump:
      return 1;
    case Format::kSingle: {
      if (insn.op == Opcode::kReti) return 1;
      if (src_is_cg(insn.src)) return 1;
      return 1 + (insn.src.needs_ext_word() ? 1u : 0u);
    }
    case Format::kDouble: {
      unsigned words = 1;
      if (insn.src.needs_ext_word() && !src_is_cg(insn.src)) ++words;
      if (insn.dst.needs_ext_word()) ++words;
      return words;
    }
  }
  return 1;
}

std::vector<uint16_t> encode(const Instruction& insn, uint16_t address,
                             EncodeOptions opts) {
  const auto& info = opcode_info(insn.op);
  if (insn.byte_mode && !info.allows_byte) {
    throw Error(std::string(info.mnemonic) + " has no byte form");
  }

  std::vector<uint16_t> words;
  switch (info.format) {
    case Format::kJump: {
      if (insn.jump_offset < -512 || insn.jump_offset > 511) {
        throw Error("jump offset out of range: " + std::to_string(insn.jump_offset));
      }
      words.push_back(static_cast<uint16_t>(
          0x2000 | (info.bits << 10) |
          (static_cast<uint16_t>(insn.jump_offset) & 0x3FF)));
      return words;
    }
    case Format::kSingle: {
      Operand src = insn.src;
      if (insn.op == Opcode::kReti) src = Operand::make_reg(0);
      auto enc = encode_src(src, static_cast<uint16_t>(address + 2), opts.allow_cg);
      words.push_back(static_cast<uint16_t>(
          0x1000 | (info.bits << 7) | (insn.byte_mode ? 0x40 : 0) |
          (enc.as << 4) | enc.reg));
      if (enc.has_ext) words.push_back(enc.ext);
      return words;
    }
    case Format::kDouble: {
      auto src = encode_src(insn.src, static_cast<uint16_t>(address + 2),
                            opts.allow_cg);
      // The destination extension word sits after the source's (if any).
      uint16_t dst_ext_addr =
          static_cast<uint16_t>(address + 2 + (src.has_ext ? 2 : 0));
      auto dst = encode_dst(insn.dst, dst_ext_addr);
      uint8_t ad = (dst.as != 0) ? 1 : 0;
      words.push_back(static_cast<uint16_t>(
          (static_cast<uint16_t>(info.bits) << 12) | (src.reg << 8) | (ad << 7) |
          (insn.byte_mode ? 0x40 : 0) | (src.as << 4) | dst.reg));
      if (src.has_ext) words.push_back(src.ext);
      if (dst.has_ext) words.push_back(dst.ext);
      return words;
    }
  }
  throw Error("unreachable: bad format");
}

}  // namespace eilid::isa
