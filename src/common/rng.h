// Deterministic PRNG (splitmix64) for property tests, workload stimulus,
// heartbeat jitter and attack fuzzing. Not cryptographic -- crypto lives
// in src/crypto. Determinism matters: every test, benchmark, and
// scheduler decision must be reproducible from a printed seed, and
// per-key streams (keyed()) must be stable across platforms -- no
// std::hash, whose value is implementation-defined.
#ifndef EILID_COMMON_RNG_H
#define EILID_COMMON_RNG_H

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.h"

namespace eilid::common {

class SeededRng {
 public:
  explicit SeededRng(uint64_t seed) : state_(seed) {}

  // A stream derived from (seed, key): the one deterministic source for
  // per-device decisions (heartbeat jitter phases) -- every holder of
  // the same seed computes the same stream for the same key, on any
  // platform (FNV-1a over the key bytes, not std::hash).
  static SeededRng keyed(uint64_t seed, std::string_view key) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : key) {
      h ^= static_cast<uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    return SeededRng(seed ^ h);
  }

  // Next 64 random bits (splitmix64).
  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0: an empty interval has no
  // sample to draw, and `next() % 0` is undefined behavior -- checked
  // here instead of left to the hardware, because every caller that
  // computes its bound (a range width, a container size) hits this
  // with exactly 0 on the empty edge case.
  uint64_t below(uint64_t bound) {
    if (bound == 0) throw ConfigError("SeededRng::below: bound must be > 0");
    return next() % bound;
  }

  // Uniform in [lo, hi] inclusive. hi must be >= lo (an empty interval
  // would otherwise feed below() a zero -- or, worse, a huge wrapped --
  // width).
  int range(int lo, int hi) {
    if (hi < lo) {
      throw ConfigError("SeededRng::range: empty interval [" +
                        std::to_string(lo) + ", " + std::to_string(hi) + "]");
    }
    const uint64_t width =
        static_cast<uint64_t>(static_cast<int64_t>(hi) - lo) + 1;
    return lo + static_cast<int>(below(width));
  }

  uint16_t u16() { return static_cast<uint16_t>(next()); }
  uint8_t u8() { return static_cast<uint8_t>(next()); }

  // Bernoulli with probability num/den.
  bool chance(int num, int den) { return static_cast<int>(below(static_cast<uint64_t>(den))) < num; }

 private:
  uint64_t state_;
};

}  // namespace eilid::common

namespace eilid {
// Historical name, kept so call sites read naturally inside
// namespace eilid; new code may use either spelling.
using Rng = common::SeededRng;
}  // namespace eilid

#endif  // EILID_COMMON_RNG_H
