// Hardware cost model tests: primitive monotonicity, bill-of-materials
// consistency with the paper's reported EILID numbers, and the Table I
// technique database invariants.
#include <gtest/gtest.h>

#include "hwcost/literature.h"
#include "hwcost/monitor_model.h"
#include "hwcost/primitives.h"

namespace eilid::hwcost {
namespace {

TEST(Primitives, WidthMonotonicity) {
  EXPECT_LE(eq_comparator(8).luts, eq_comparator(16).luts);
  EXPECT_LE(magnitude_comparator(8).luts, magnitude_comparator(16).luts);
  EXPECT_EQ(range_check(16).luts, 2 * magnitude_comparator(16).luts);
  EXPECT_EQ(reg(16).ffs, 16);
  EXPECT_EQ(reg(16).luts, 0);
  EXPECT_EQ(fsm(3, 6).ffs, 2);
  EXPECT_EQ(fsm(5, 6).ffs, 3);
}

TEST(MonitorModel, ExtensionIsSmallFractionOfCasu) {
  Cost casu = casu_monitor_bom().total();
  Cost ext = eilid_extension_bom().total();
  Cost full = eilid_full_bom().total();
  EXPECT_EQ(full.luts, casu.luts + ext.luts);
  EXPECT_EQ(full.ffs, casu.ffs + ext.ffs);
  EXPECT_LT(ext.luts, casu.luts) << "EILID adds little on top of CASU";
}

TEST(MonitorModel, SameOrderAsPaperNumbers) {
  // Paper: +99 LUTs, +34 registers. The structural model must land in
  // the same order of magnitude (factor 2 band), or the model has
  // diverged from the implemented checks.
  Cost full = eilid_full_bom().total();
  EXPECT_GE(full.luts, 50);
  EXPECT_LE(full.luts, 200);
  EXPECT_GE(full.ffs, 17);
  EXPECT_LE(full.ffs, 68);
}

TEST(Techniques, EilidIsUniqueRealtimeLowEnd) {
  int low_end_realtime = 0;
  bool found_eilid = false;
  for (const auto& t : techniques()) {
    if (t.name == "EILID") {
      found_eilid = true;
      EXPECT_TRUE(t.realtime);
      EXPECT_TRUE(t.forward_edge);
      EXPECT_TRUE(t.backward_edge);
      EXPECT_EQ(t.extra_luts, 99);
      EXPECT_EQ(t.extra_regs, 34);
      EXPECT_FALSE(t.approximate);
    }
    if (t.realtime && t.platform == "openMSP430") ++low_end_realtime;
  }
  EXPECT_TRUE(found_eilid);
  EXPECT_EQ(low_end_realtime, 1) << "Table I claim: EILID is the only one";
}

TEST(Techniques, OpenMsp430CfaNumbersMatchPaperText) {
  for (const auto& t : techniques()) {
    if (t.name == "Tiny-CFA") {
      EXPECT_EQ(t.extra_luts, 302);
      EXPECT_EQ(t.extra_regs, 44);
      EXPECT_FALSE(t.approximate);
    }
    if (t.name == "ACFA") {
      EXPECT_EQ(t.extra_luts, 501);
      EXPECT_EQ(t.extra_regs, 946);
      EXPECT_FALSE(t.approximate);
    }
  }
}

TEST(Techniques, EilidCheapestOnItsPlatform) {
  const Technique* eilid = nullptr;
  for (const auto& t : techniques()) {
    if (t.name == "EILID") eilid = &t;
  }
  ASSERT_NE(eilid, nullptr);
  for (const auto& t : techniques()) {
    if (t.extra_luts < 0 || t.name == "EILID") continue;
    EXPECT_LT(eilid->extra_luts, t.extra_luts) << "vs " << t.name;
    EXPECT_LT(eilid->extra_regs, t.extra_regs) << "vs " << t.name;
  }
  // Paper percentages: 99/1868 = 5.3%, 34/694 = 4.9%.
  EXPECT_NEAR(100.0 * 99 / kOpenMsp430Luts, 5.3, 0.05);
  EXPECT_NEAR(100.0 * 34 / kOpenMsp430Regs, 4.9, 0.05);
}

}  // namespace
}  // namespace eilid::hwcost
