// Seeded attack mutators for the scenario fuzzer: each perturbation is
// planned from evidence that the thing being corrupted was actually
// *exercised* -- a mutation of dead code or an unreferenced table slot
// would leave the benign behavior intact and prove nothing. The
// planners return what to patch (and what divergence it must provoke);
// the harness applies the patch through Bus::raw_store_word, which
// bumps the bus code generation so every engine -- interpretive,
// predecoded, superblock -- sees the mutated bytes, never a stale
// table.
//
// Families:
//   - PMEM control-flow diversion: rewrite an exercised direct jump's
//     10-bit offset, or repoint an exercised dispatch-table word at a
//     ROP gadget. The CFA verifier must convict the replay; EILID's
//     P3 check must refuse the gadget in real time.
//   - Attestation-report tampering: bit flips / drops / duplication /
//     reordering of logged edges, and header-field forgery (seq,
//     cycle, dropped). Every kind must fail the report MAC.
//   - Update-package tampering: any single-bit flip of the serialized
//     package must be refused (parse failure or kBadMac), and a replay
//     of an already-applied version must come back kRollback.
//   - Transfer-chunk tampering: line noise (bad checksum) is NACKed,
//     an adversarial forge (checksum recomputed) is caught by the
//     package MAC at finalize, inconsistent geometry is kMalformed,
//     truncation leaves the transfer resumable (kInterrupted).
#ifndef EILID_FUZZ_ATTACK_MUTATOR_H
#define EILID_FUZZ_ATTACK_MUTATOR_H

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "casu/update.h"
#include "cfa/attestation.h"
#include "cfa/cfg.h"
#include "common/rng.h"
#include "masm/assembler.h"

namespace eilid::fuzz {

// One planned PMEM word patch and the control transfer it diverts.
struct PmemPatch {
  uint16_t addr = 0;  // word address to overwrite
  uint16_t old_word = 0;
  uint16_t new_word = 0;
  uint16_t from = 0;  // transfer source the patch perturbs
  uint16_t old_to = 0;
  uint16_t new_to = 0;
};

enum class ReportTamper : uint8_t {
  kEdgeTargetFlip,  // flip one bit of a logged edge's target
  kEdgeDrop,        // delete one edge (hide evidence)
  kEdgeDuplicate,   // replay one edge
  kEdgeSwap,        // reorder two distinct edges
  kSeqBump,         // forge the report sequence number
  kCycleBump,       // forge the emission cycle
  kDroppedBump,     // forge the overflow-drop count
};

inline constexpr ReportTamper kAllReportTampers[] = {
    ReportTamper::kEdgeTargetFlip, ReportTamper::kEdgeDrop,
    ReportTamper::kEdgeDuplicate,  ReportTamper::kEdgeSwap,
    ReportTamper::kSeqBump,        ReportTamper::kCycleBump,
    ReportTamper::kDroppedBump,
};

std::string_view report_tamper_name(ReportTamper kind);

class AttackMutator {
 public:
  explicit AttackMutator(uint64_t seed) : rng_(seed) {}

  // Divert one direct jump the benign run exercised (a logged edge in
  // `benign` that is a Cfg jump edge whose source word is
  // jump-format). The new target is a real instruction start within
  // the 10-bit range, excluding the old target, the fall-through (a
  // jump to its own fall-through fires no control-transfer callout and
  // would leave no evidence), and any legitimate jump edge from the
  // same source. nullopt when the program offers no such jump.
  std::optional<PmemPatch> plan_jump_diversion(const masm::AssembledUnit& unit,
                                               const cfa::Cfg& cfg,
                                               const cfa::Report& benign);

  // Repoint dispatch-table slot `slot` ("tab_<slot>" in `unit`) at a
  // ROP gadget that is not a legal call target. The caller picks an
  // exercised slot (for generated programs: any slot an indirect call
  // in main names -- main runs start to halt, so every such slot is
  // dispatched through). nullopt when the unit lacks the symbol or no
  // disallowed gadget exists.
  std::optional<PmemPatch> plan_table_diversion(const masm::AssembledUnit& unit,
                                                const cfa::Cfg& cfg, int slot);

  // A tampered copy of `report` (the MAC is left as the device
  // computed it -- the forgery happens in transit). nullopt when the
  // report has nothing the kind needs (edge kinds on an empty report,
  // a swap with no two distinct edges).
  std::optional<cfa::Report> tamper_report(const cfa::Report& report,
                                           ReportTamper kind);

  // Flip one uniformly chosen bit of a serialized package. Returns the
  // flipped bit's index.
  size_t flip_package_bit(std::vector<uint8_t>& bytes);

  // Flip one payload bit of `chunk`. With fix_checksum the checksum is
  // recomputed (an adversarial forge that sails through the transport
  // CRC and must be caught by the package MAC); without it the flip
  // models line noise the receiver NACKs as kCorrupt.
  void flip_chunk_payload(casu::TransferChunk& chunk, bool fix_checksum);

  // Make the chunk's geometry inconsistent (index pushed past total)
  // with a valid checksum: the receiver must reject it as kMalformed
  // without touching the staged transfer.
  void scramble_chunk_geometry(casu::TransferChunk& chunk);

 private:
  common::SeededRng rng_;
};

}  // namespace eilid::fuzz

#endif  // EILID_FUZZ_ATTACK_MUTATOR_H
