// Reproduces Table I: CFA and CFI techniques from prior work, with
// real-time protection / forward-edge / backward-edge / interrupt
// support and platform -- EILID being the only real-time CFI for a
// low-end (openMSP430-class) device.
#include <cstdio>

#include "src/hwcost/literature.h"

using namespace eilid::hwcost;

int main() {
  std::printf("Table I: CFA and CFI techniques from prior work\n");
  std::printf("%-8s %-12s %-3s %-7s %-7s %-9s %-20s %s\n", "Method", "Work",
              "RT", "F-edge", "B-edge", "Interrupt", "Platform", "Summary");
  for (int i = 0; i < 118; ++i) std::putchar('-');
  std::putchar('\n');
  auto mark = [](bool b) { return b ? "yes" : "-"; };
  for (const auto& t : techniques()) {
    std::printf("%-8s %-12s %-3s %-7s %-7s %-9s %-20s %s\n",
                t.method == Method::kCfi ? "CFI" : "CFA", t.name.c_str(),
                mark(t.realtime), mark(t.forward_edge), mark(t.backward_edge),
                mark(t.interrupt_safe), t.platform.c_str(), t.summary.c_str());
  }
  std::printf(
      "\nEILID is the only entry combining real-time protection with a "
      "low-end (16-bit, MPU-less) platform.\n");
  return 0;
}
