#include "eilid/pipeline.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "sim/memory_map.h"

namespace eilid::core {

std::vector<uint8_t> flat_memory(const BuildResult& build) {
  std::vector<uint8_t> flat(0x10000, 0);
  auto blit = [&flat](const masm::MemoryImage& image) {
    for (const auto& chunk : image.chunks()) {
      std::copy(chunk.data.begin(), chunk.data.end(),
                flat.begin() + chunk.base);
    }
  };
  blit(build.app.image);
  if (build.rom.unit.image.size_bytes() != 0) blit(build.rom.unit.image);
  return flat;
}

ImageDiff diff_builds(const BuildResult& from, const BuildResult& to) {
  ImageDiff diff;
  const std::vector<uint8_t> a = flat_memory(from);
  const std::vector<uint8_t> b = flat_memory(to);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;
    const uint16_t addr = static_cast<uint16_t>(i);
    if (!sim::is_pmem(addr)) {
      diff.compatible = false;
      diff.first_incompatible = addr;
      diff.regions.clear();
      diff.payload_bytes = 0;
      return diff;
    }
    if (!diff.regions.empty() &&
        diff.regions.back().target_addr + diff.regions.back().payload.size() ==
            i) {
      diff.regions.back().payload.push_back(b[i]);
    } else {
      diff.regions.push_back({addr, {b[i]}});
    }
    ++diff.payload_bytes;
  }
  return diff;
}

namespace {

// Predecode the build's code regions once, from exactly the bytes a
// freshly flashed device holds.
std::shared_ptr<const isa::DecodedImage> predecode(
    const std::vector<uint8_t>& flat) {
  const isa::DecodedImage::Range ranges[] = {
      {sim::kRomStart, sim::kRomEnd},
      {sim::kPmemStart, 0xFFFE},
  };
  return std::make_shared<const isa::DecodedImage>(
      std::span<const uint8_t>(flat.data(), flat.size()),
      std::span<const isa::DecodedImage::Range>(ranges, 2));
}

// Build every shared per-build artifact: the flat flashed snapshot
// (the sessions' copy-on-write base), the decoded image derived from
// it, and the superblock table derived from that. Done once per build;
// every device flashed with this build shares the same three immutable
// objects.
void attach_images(BuildResult& result) {
  result.flat_image =
      std::make_shared<const std::vector<uint8_t>>(flat_memory(result));
  result.decoded_image = predecode(*result.flat_image);
  result.block_image =
      std::make_shared<const isa::BlockImage>(*result.decoded_image);
}

}  // namespace

BuildResult build_app(const std::string& source, const std::string& name,
                      const BuildOptions& options) {
  BuildResult result;
  std::vector<std::string> original = masm::split_lines(source);

  if (!options.eilid) {
    result.app = masm::assemble(original, name);
    result.iterations.push_back({original.size(), result.app.image.size_bytes()});
    attach_images(result);
    return result;
  }

  RomConfig rom_cfg = options.rom;
  if (options.prebuilt_rom != nullptr) {
    result.rom = *options.prebuilt_rom;
    rom_cfg = result.rom.config;
  } else {
    result.rom = build_rom(rom_cfg);
  }

  InstrumentConfig icfg = options.instrument;
  icfg.index_in_register = !rom_cfg.memory_backed_index;
  Instrumenter inst(icfg, result.rom.unit.symbols);

  if (icfg.label_mode) {
    // Single-pass ablation: return addresses are assembler labels.
    InstrumentResult ir = inst.instrument(original, nullptr);
    result.app = masm::assemble(ir.lines, name);
    result.report = std::move(ir);
    result.iterations.push_back({original.size(), result.app.image.size_bytes()});
    attach_images(result);
    return result;
  }

  // --- Iteration 1: plain build of the original source. ---
  masm::AssembledUnit build1 = masm::assemble(original, name + "_1");
  result.iterations.push_back({original.size(), build1.image.size_bytes()});

  // --- Iteration 2: instrument with iteration-1 addresses (stale). ---
  InstrumentResult inst2 = inst.instrument(original, &build1.listing);
  masm::AssembledUnit build2 = masm::assemble(inst2.lines, name + "_2");
  result.iterations.push_back({inst2.lines.size(), build2.image.size_bytes()});

  // --- Iteration 3: instrument with iteration-2 addresses (final). ---
  InstrumentResult inst3 = inst.instrument(original, &build2.listing);
  masm::AssembledUnit build3 = masm::assemble(inst3.lines, name);
  result.iterations.push_back({inst3.lines.size(), build3.image.size_bytes()});

  if (options.verify_convergence) {
    // A fourth instrumentation must reproduce iteration 3 exactly:
    // the layout of build2 and build3 agree, so the addresses read
    // from either listing are identical.
    InstrumentResult inst4 = inst.instrument(original, &build3.listing);
    result.converged = (inst4.lines == inst3.lines);
    if (!result.converged) {
      throw InstrumentError(
          "instrumented build did not converge after three iterations");
    }
  }

  result.app = std::move(build3);
  result.report = std::move(inst3);
  attach_images(result);
  return result;
}

}  // namespace eilid::core
