#include "sim/cpu.h"

#include "isa/cycles.h"

namespace eilid::sim {

using isa::AddrMode;
using isa::Opcode;
using isa::Operand;
namespace sr = isa::sr;

void Cpu::power_on_reset() {
  regs_.fill(0);
  regs_[isa::kPC] = bus_.raw_word(kResetVectorAddr);
}

void Cpu::set_reg(int i, uint16_t v) {
  if (i == isa::kPC) v &= 0xFFFE;
  regs_[static_cast<size_t>(i)] = v;
}

void Cpu::set_flag(uint16_t bit, bool on) {
  if (on) {
    regs_[isa::kSR] |= bit;
  } else {
    regs_[isa::kSR] &= static_cast<uint16_t>(~bit);
  }
}

void Cpu::set_nzcv(bool n, bool z, bool c, bool v) {
  constexpr uint16_t kMask = sr::kN | sr::kZ | sr::kC | sr::kV;
  regs_[isa::kSR] = static_cast<uint16_t>(
      (regs_[isa::kSR] & static_cast<uint16_t>(~kMask)) | (n ? sr::kN : 0) |
      (z ? sr::kZ : 0) | (c ? sr::kC : 0) | (v ? sr::kV : 0));
}

uint16_t Cpu::read_src(const Operand& op, bool byte) {
  const uint16_t mask = byte ? 0x00FF : 0xFFFF;
  switch (op.mode) {
    case AddrMode::kRegister:
      return regs_[op.reg] & mask;
    case AddrMode::kImmediate:
      return static_cast<uint16_t>(op.value) & mask;
    case AddrMode::kIndexed: {
      uint16_t ea = static_cast<uint16_t>(regs_[op.reg] + op.value);
      return byte ? bus_.read_byte(ea, cur_pc_) : bus_.read_word(ea, cur_pc_);
    }
    case AddrMode::kSymbolic:
    case AddrMode::kAbsolute: {
      uint16_t ea = static_cast<uint16_t>(op.value);
      return byte ? bus_.read_byte(ea, cur_pc_) : bus_.read_word(ea, cur_pc_);
    }
    case AddrMode::kIndirect: {
      uint16_t ea = regs_[op.reg];
      return byte ? bus_.read_byte(ea, cur_pc_) : bus_.read_word(ea, cur_pc_);
    }
    case AddrMode::kIndirectInc: {
      uint16_t ea = regs_[op.reg];
      uint16_t v = byte ? bus_.read_byte(ea, cur_pc_) : bus_.read_word(ea, cur_pc_);
      // SP always steps by 2 to stay word-aligned; others by access size.
      uint16_t inc = (!byte || op.reg == isa::kSP) ? 2 : 1;
      regs_[op.reg] = static_cast<uint16_t>(regs_[op.reg] + inc);
      return v;
    }
  }
  return 0;
}

Cpu::DstRef Cpu::resolve_dst(const Operand& op) {
  DstRef ref;
  switch (op.mode) {
    case AddrMode::kRegister:
      ref.is_reg = true;
      ref.reg = op.reg;
      return ref;
    case AddrMode::kIndexed:
      ref.is_reg = false;
      ref.ea = static_cast<uint16_t>(regs_[op.reg] + op.value);
      return ref;
    case AddrMode::kSymbolic:
    case AddrMode::kAbsolute:
      ref.is_reg = false;
      ref.ea = static_cast<uint16_t>(op.value);
      return ref;
    default:
      // Indirect modes are source-only; the decoder guarantees this.
      ref.is_reg = false;
      ref.ea = regs_[op.reg];
      return ref;
  }
}

uint16_t Cpu::read_at(const DstRef& ref, bool byte) {
  const uint16_t mask = byte ? 0x00FF : 0xFFFF;
  if (ref.is_reg) return regs_[ref.reg] & mask;
  return byte ? bus_.read_byte(ref.ea, cur_pc_) : bus_.read_word(ref.ea, cur_pc_);
}

void Cpu::write_at(const DstRef& ref, bool byte, uint16_t value) {
  if (ref.is_reg) {
    if (ref.reg == isa::kCG2) return;  // r3 destination: result discarded
    if (ref.reg == isa::kPC) value &= 0xFFFE;
    // Byte writes to a register clear the upper byte (architectural).
    regs_[ref.reg] = byte ? static_cast<uint16_t>(value & 0xFF) : value;
    return;
  }
  if (byte) {
    bus_.write_byte(ref.ea, static_cast<uint8_t>(value), cur_pc_);
  } else {
    bus_.write_word(ref.ea, value, cur_pc_);
  }
}

void Cpu::push_word(uint16_t value) {
  regs_[isa::kSP] = static_cast<uint16_t>(regs_[isa::kSP] - 2);
  bus_.write_word(regs_[isa::kSP], value, cur_pc_);
}

uint16_t Cpu::pop_word() {
  uint16_t v = bus_.read_word(regs_[isa::kSP], cur_pc_);
  regs_[isa::kSP] = static_cast<uint16_t>(regs_[isa::kSP] + 2);
  return v;
}

uint16_t Cpu::add_and_flags(uint16_t a, uint16_t b, unsigned carry_in, bool byte) {
  const unsigned width = byte ? 8 : 16;
  const uint16_t mask = byte ? 0x00FF : 0xFFFF;
  const uint16_t msb = byte ? 0x0080 : 0x8000;
  uint32_t sum = static_cast<uint32_t>(a & mask) + (b & mask) + carry_in;
  uint16_t result = static_cast<uint16_t>(sum & mask);
  // Signed overflow: both inputs same sign, result differs.
  bool v = ((~(a ^ b)) & (a ^ result) & msb) != 0;
  set_nzcv((result & msb) != 0, result == 0, (sum >> width) != 0, v);
  return result;
}

void Cpu::exec_double(const isa::Instruction& insn) {
  const bool byte = insn.byte_mode;
  const uint16_t mask = byte ? 0x00FF : 0xFFFF;
  const uint16_t msb = byte ? 0x0080 : 0x8000;

  uint16_t src = read_src(insn.src, byte);
  DstRef dst_ref = resolve_dst(insn.dst);

  switch (insn.op) {
    case Opcode::kMov:
      write_at(dst_ref, byte, src);
      return;
    case Opcode::kAdd: {
      uint16_t dst = read_at(dst_ref, byte);
      write_at(dst_ref, byte, add_and_flags(dst, src, 0, byte));
      return;
    }
    case Opcode::kAddc: {
      uint16_t dst = read_at(dst_ref, byte);
      write_at(dst_ref, byte, add_and_flags(dst, src, flag(sr::kC) ? 1 : 0, byte));
      return;
    }
    case Opcode::kSub: {
      uint16_t dst = read_at(dst_ref, byte);
      write_at(dst_ref, byte, add_and_flags(dst, (~src) & mask, 1, byte));
      return;
    }
    case Opcode::kSubc: {
      uint16_t dst = read_at(dst_ref, byte);
      write_at(dst_ref, byte,
               add_and_flags(dst, (~src) & mask, flag(sr::kC) ? 1 : 0, byte));
      return;
    }
    case Opcode::kCmp: {
      uint16_t dst = read_at(dst_ref, byte);
      add_and_flags(dst, (~src) & mask, 1, byte);
      return;
    }
    case Opcode::kDadd: {
      uint16_t dst = read_at(dst_ref, byte);
      unsigned carry = flag(sr::kC) ? 1 : 0;
      const int digits = byte ? 2 : 4;
      uint16_t result = 0;
      for (int d = 0; d < digits; ++d) {
        unsigned nibble = ((dst >> (4 * d)) & 0xF) + ((src >> (4 * d)) & 0xF) + carry;
        if (nibble > 9) {
          nibble = (nibble + 6) & 0xF;
          carry = 1;
        } else {
          carry = 0;
        }
        result |= static_cast<uint16_t>(nibble << (4 * d));
      }
      // V is architecturally undefined after DADD; we clear it.
      set_nzcv((result & msb) != 0, result == 0, carry != 0, false);
      write_at(dst_ref, byte, result);
      return;
    }
    case Opcode::kBit: {
      uint16_t dst = read_at(dst_ref, byte);
      uint16_t r = dst & src & mask;
      set_nzcv((r & msb) != 0, r == 0, r != 0, false);
      return;
    }
    case Opcode::kBic: {
      uint16_t dst = read_at(dst_ref, byte);
      write_at(dst_ref, byte, dst & static_cast<uint16_t>(~src) & mask);
      return;
    }
    case Opcode::kBis: {
      uint16_t dst = read_at(dst_ref, byte);
      write_at(dst_ref, byte, (dst | src) & mask);
      return;
    }
    case Opcode::kXor: {
      uint16_t dst = read_at(dst_ref, byte);
      uint16_t r = (dst ^ src) & mask;
      set_nzcv((r & msb) != 0, r == 0, r != 0,
               ((dst & msb) != 0) && ((src & msb) != 0));
      write_at(dst_ref, byte, r);
      return;
    }
    case Opcode::kAnd: {
      uint16_t dst = read_at(dst_ref, byte);
      uint16_t r = dst & src & mask;
      set_nzcv((r & msb) != 0, r == 0, r != 0, false);
      write_at(dst_ref, byte, r);
      return;
    }
    default:
      return;
  }
}

void Cpu::exec_single(const isa::Instruction& insn, uint16_t insn_pc) {
  (void)insn_pc;
  const bool byte = insn.byte_mode;
  const uint16_t mask = byte ? 0x00FF : 0xFFFF;
  const uint16_t msb = byte ? 0x0080 : 0x8000;

  switch (insn.op) {
    case Opcode::kPush: {
      uint16_t v = read_src(insn.src, byte);
      push_word(v & mask);
      return;
    }
    case Opcode::kCall: {
      uint16_t target = read_src(insn.src, /*byte=*/false);
      push_word(regs_[isa::kPC]);  // PC already points past the call
      regs_[isa::kPC] = target & 0xFFFE;
      return;
    }
    case Opcode::kReti: {
      regs_[isa::kSR] = pop_word();
      regs_[isa::kPC] = pop_word() & 0xFFFE;
      return;
    }
    default:
      break;
  }

  // rrc/rra/swpb/sxt: read-modify-write on a single operand.
  DstRef ref = resolve_dst(insn.src);
  uint16_t v = read_at(ref, byte);
  uint16_t result = 0;
  switch (insn.op) {
    case Opcode::kRrc: {
      unsigned c_old = flag(sr::kC) ? 1 : 0;
      result = static_cast<uint16_t>((v >> 1) | (c_old ? msb : 0));
      set_nzcv((result & msb) != 0, result == 0, (v & 1) != 0, false);
      break;
    }
    case Opcode::kRra: {
      result = static_cast<uint16_t>((v >> 1) | (v & msb));
      set_nzcv((result & msb) != 0, result == 0, (v & 1) != 0, false);
      break;
    }
    case Opcode::kSwpb:
      result = static_cast<uint16_t>((v >> 8) | (v << 8));
      break;
    case Opcode::kSxt: {
      result = (v & 0x80) ? static_cast<uint16_t>(v | 0xFF00)
                          : static_cast<uint16_t>(v & 0x00FF);
      set_nzcv((result & 0x8000) != 0, result == 0, result != 0, false);
      break;
    }
    default:
      return;
  }
  write_at(ref, byte && insn.op != Opcode::kSxt, result);
}

void Cpu::exec_jump(const isa::Decoded& decoded) {
  bool taken = false;
  switch (decoded.insn.op) {
    case Opcode::kJnz: taken = !flag(sr::kZ); break;
    case Opcode::kJz: taken = flag(sr::kZ); break;
    case Opcode::kJnc: taken = !flag(sr::kC); break;
    case Opcode::kJc: taken = flag(sr::kC); break;
    case Opcode::kJn: taken = flag(sr::kN); break;
    case Opcode::kJge: taken = flag(sr::kN) == flag(sr::kV); break;
    case Opcode::kJl: taken = flag(sr::kN) != flag(sr::kV); break;
    case Opcode::kJmp: taken = true; break;
    default: break;
  }
  if (taken) regs_[isa::kPC] = decoded.jump_target();
}

std::optional<isa::Decoded> Cpu::interpret_decode(uint16_t pc) const {
  // Raw reads for decode: extension words are part of the instruction
  // stream, already vetted by the fetch check in step().
  std::array<uint16_t, 3> words = {
      bus_.raw_word(pc), bus_.raw_word(static_cast<uint16_t>(pc + 2)),
      bus_.raw_word(static_cast<uint16_t>(pc + 4))};
  return isa::decode(words, pc);
}

StepOutcome Cpu::step() {
  StepOutcome out;
  cur_pc_ = regs_[isa::kPC];
  out.pc = cur_pc_;
  out.next_pc = cur_pc_;

  bus_.clear_access_denied();

  // Predecoded fast path: valid while no store has landed in the code
  // range since the image was attached (CASU-enforced devices never
  // invalidate; a kNone device that rewrites its code falls back to
  // interpretive decode below and stays architecturally correct).
  const isa::DecodedImage::Entry* entry = nullptr;
  if (image_ != nullptr && bus_.code_generation() == image_generation_) {
    entry = image_->lookup(cur_pc_);
  }

  if (!bus_.notify_fetch(cur_pc_)) {
    out.status = StepStatus::kDenied;
    // Monitors still receive the fall-through of the instruction that
    // *would* have executed (matches the pre-refactor monitors, which
    // re-decoded from memory regardless of the deny).
    if (entry != nullptr) {
      if (entry->size_words != 0) out.next_pc = entry->next_address;
    } else if (auto d = interpret_decode(cur_pc_)) {
      out.next_pc = d->next_address();
    }
    return out;
  }

  isa::Decoded decoded;
  unsigned cycles;
  if (entry != nullptr) {
    if (entry->size_words == 0) {  // authoritative illegal encoding
      out.status = StepStatus::kIllegal;
      out.cycles = 1;
      return out;
    }
    decoded.insn = entry->insn;
    decoded.address = cur_pc_;
    decoded.size_words = entry->size_words;
    cycles = entry->cycles;
    ++decode_cache_hits_;
  } else {
    auto d = interpret_decode(cur_pc_);
    if (!d) {
      out.status = StepStatus::kIllegal;
      out.cycles = 1;
      return out;
    }
    decoded = *d;
    cycles = isa::instruction_cycles(decoded.insn);
    ++decode_cache_misses_;
  }

  // PC advances past the full instruction before execution (so that
  // pushes/branches observe the return/next address).
  regs_[isa::kPC] = out.next_pc = decoded.next_address();

  const auto& info = isa::opcode_info(decoded.insn.op);
  switch (info.format) {
    case isa::Format::kDouble:
      exec_double(decoded.insn);
      break;
    case isa::Format::kSingle:
      exec_single(decoded.insn, cur_pc_);
      break;
    case isa::Format::kJump:
      exec_jump(decoded);
      break;
  }

  out.cycles = cycles;
  ++instructions_retired_;
  if (bus_.access_denied()) {
    out.status = StepStatus::kDenied;
  }
  return out;
}

void Cpu::rebuild_engine_ranges() {
  engine_ranges_.clear();
  if (blocks_ == nullptr || image_ == nullptr) return;
  auto block_views = blocks_->range_views();
  auto decoded_views = image_->range_views();
  if (block_views.size() != decoded_views.size()) return;  // mismatched tables
  for (size_t i = 0; i < block_views.size(); ++i) {
    if (block_views[i].first != decoded_views[i].first ||
        block_views[i].last != decoded_views[i].last) {
      engine_ranges_.clear();
      return;
    }
    engine_ranges_.push_back({block_views[i].first, block_views[i].last,
                              block_views[i].entries.data(),
                              decoded_views[i].entries.data()});
  }
}

BlockRun Cpu::run_block(uint16_t breakpoint_pc, uint64_t cycle_budget,
                        bool chain) {
  BlockRun out;
  // One validity check for the whole run, where step() pays one per
  // instruction: the block table shares the decoded image's snapshot
  // rule, so a single generation compare covers both.
  if (engine_ranges_.empty() || bus_.code_generation() != image_generation_) {
    return out;
  }
  uint16_t pc = regs_[isa::kPC];
  const isa::BlockImage::Entry* block = nullptr;
  const isa::DecodedImage::Entry* entry = nullptr;
  const EngineRange* range = nullptr;
  for (const EngineRange& r : engine_ranges_) {
    if (pc >= r.first && pc <= r.last) {
      const size_t slot = static_cast<size_t>(pc - r.first) >> 1;
      block = r.blocks + slot;
      entry = r.decoded + slot;
      range = &r;
      break;
    }
  }
  if (block == nullptr || block->span == 0) return out;
  // Interrupt horizon: if a tick-driven source could assert within this
  // block's cycle count, an enabled CPU must take it at the exact
  // instruction boundary the interpretive engine would -- refuse and
  // let step_once walk up to it. The horizon is measured from the last
  // tick flush, so outstanding debt counts against it. (All other IRQ
  // movement comes from peripheral register access, which ends the run
  // below.)
  if (gie() &&
      bus_.cycles_until_irq() <= block->cycles + bus_.tick_debt()) {
    return out;
  }

  out.executed = true;
  ++blocks_executed_;
  const bool watched = bus_.has_watchers();
  // Watchers need their denial handled block-by-block, and any monitor
  // needing a transfer callout already cleared `chain` in the machine.
  chain = chain && !watched;
  bus_.clear_access_denied();
  bus_.clear_periph_touched();
  const uint64_t generation = bus_.code_generation();

  uint64_t spent = 0;
  unsigned steps = 0;
  // Kept in locals across the loop (the out-struct stores happen once
  // at exit); both always describe the final instruction attempted.
  uint16_t last_pc = pc;
  uint16_t last_next = entry->next_address;
  uint16_t remaining = block->span;
  for (;;) {
    cur_pc_ = pc;
    if (watched && !bus_.notify_fetch(pc)) {
      // Same contract as step(): nothing retires, no cycles, monitors
      // get the fall-through of the instruction that would have run.
      out.status = StepStatus::kDenied;
      last_pc = pc;
      last_next = entry->next_address;
      break;
    }
    regs_[isa::kPC] = entry->next_address;
    switch (entry->format) {
      case isa::Format::kDouble:
        exec_double(entry->insn);
        break;
      case isa::Format::kSingle:
        exec_single(entry->insn, pc);
        break;
      case isa::Format::kJump: {
        isa::Decoded decoded;
        decoded.insn = entry->insn;
        decoded.address = pc;
        decoded.size_words = entry->size_words;
        exec_jump(decoded);
        break;
      }
    }
    // Accrue after exec: a peripheral access *inside* this instruction
    // observes the debt of prior instructions only, exactly the state
    // per-step ticking (which ticks after each full instruction) shows.
    spent += entry->cycles;
    bus_.accrue_ticks(entry->cycles);
    ++instructions_retired_;
    ++steps;
    last_pc = pc;
    last_next = entry->next_address;
    if (watched && bus_.access_denied()) {
      out.status = StepStatus::kDenied;  // retired, then denied mid-exec
      break;
    }
    if (--remaining == 0) {
      // Terminator retired; PC is wherever it put it. Without chaining
      // the machine takes over (monitor callout, IRQ dispatch). With it
      // we re-dispatch here, after the same checks a fresh dispatch
      // would make -- reti/SR-restoring terminators may have flipped
      // GIE or CPUOFF, so both are re-read from the live SR.
      if (!chain) break;
      if (bus_.code_generation() != generation) break;
      if (bus_.periph_touched()) break;
      if (spent >= cycle_budget) break;
      pc = regs_[isa::kPC];
      if (pc == breakpoint_pc) break;
      if (cpu_off()) break;
      block = nullptr;
      // Chained transfers overwhelmingly land in the range they left:
      // a taken direct jump's static target (BlockImage::Entry::target)
      // lives in the same contiguous flash range as the branch, as do
      // call/ret targets in single-range images. Re-probe the cached
      // range first and fall back to the linear scan only on a genuine
      // cross-range transfer, so the hot chain path costs one bounds
      // compare instead of a walk over every range.
      if (pc >= range->first && pc <= range->last) {
        const size_t slot = static_cast<size_t>(pc - range->first) >> 1;
        block = range->blocks + slot;
        entry = range->decoded + slot;
      } else {
        for (const EngineRange& r : engine_ranges_) {
          if (pc >= r.first && pc <= r.last) {
            const size_t slot = static_cast<size_t>(pc - r.first) >> 1;
            block = r.blocks + slot;
            entry = r.decoded + slot;
            range = &r;
            break;
          }
        }
      }
      if (block == nullptr || block->span == 0) break;
      if (gie() &&
          bus_.cycles_until_irq() <= block->cycles + bus_.tick_debt()) {
        break;
      }
      ++blocks_executed_;
      remaining = block->span;
      continue;
    }
    // Interior instructions are sequential by construction (no control
    // transfer, no PC write), so the next pc is the fall-through and
    // the next decoded entry sits size_words slots ahead in the table.
    pc = entry->next_address;
    entry += entry->size_words;
    if (bus_.code_generation() != generation) break;  // self-modifying store
    if (bus_.periph_touched()) break;  // IRQ state may have moved
    if (pc == breakpoint_pc) break;    // host breakpoint pauses before it
    if (spent >= cycle_budget) break;  // run() budget exhausted
  }
  out.cycles = spent;
  out.steps = steps;
  out.last_pc = last_pc;
  out.last_next = last_next;
  decode_cache_hits_ += steps;
  // Tick debt deliberately stays accrued across blocks: the machine
  // flushes it at every point peripheral time becomes observable
  // (register access, IRQ-deliverability checks, per-step fallback,
  // reset, run exit), so back-to-back blocks pay zero virtual tick
  // calls in between.
  return out;
}

unsigned Cpu::service_interrupt(int vector_index) {
  cur_pc_ = regs_[isa::kPC];
  push_word(regs_[isa::kPC]);
  push_word(regs_[isa::kSR]);
  regs_[isa::kSR] &= sr::kScg0;  // all flags cleared except SCG0
  regs_[isa::kPC] =
      bus_.raw_word(static_cast<uint16_t>(kVectorBase + 2 * vector_index)) & 0xFFFE;
  return isa::kInterruptAcceptCycles;
}

}  // namespace eilid::sim
