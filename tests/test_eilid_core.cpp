// EILID core tests: ROM generation, shadow-stack mechanics (via direct
// stub calls), secure-DMEM protection, instrumenter passes and the
// three-iteration pipeline.
#include <gtest/gtest.h>

#include "common/error.h"
#include "eilid/device.h"
#include "eilid/inspect.h"
#include "eilid/instrumenter.h"
#include "eilid/pipeline.h"
#include "eilid/rom_builder.h"

namespace eilid::core {
namespace {

using sim::ResetReason;

// Build a hand-written app that calls the ROM stubs directly.
BuildResult stub_app(const std::string& body, RomConfig rom_cfg = {}) {
  RomInfo rom = build_rom(rom_cfg);
  std::string src;
  for (const char* name : kVeneerNames) {
    src += ".equ " + std::string(name) + ", " +
           std::to_string(rom.unit.symbols.at(name)) + "\n";
  }
  src += ".org 0xe000\nmain:\n    mov #0x1000, r1\n" + body +
         "halt:\n    jmp halt\n.vector 15, main\n";
  BuildResult build;
  build.rom = rom;
  build.app = masm::assemble_text(src, "stubapp");
  return build;
}

TEST(RomBuilder, LayoutIsWithinSecureRegion) {
  RomInfo rom = build_rom();
  EXPECT_EQ(rom.entry_start, sim::kRomStart);
  EXPECT_GT(rom.entry_end, rom.entry_start);
  EXPECT_GT(rom.leave_start, rom.entry_end);
  EXPECT_GE(rom.leave_end, rom.leave_start);
  EXPECT_LE(rom.unit.symbols.at("S_ROM_END"), sim::kRomEnd);
  // 256-byte secure DMEM split: defaults must fit exactly.
  RomConfig cfg;
  EXPECT_LE(cfg.shadow_base_addr() + 2 * cfg.effective_shadow_capacity(),
            cfg.secure_base + cfg.secure_size);
  EXPECT_GE(cfg.effective_shadow_capacity(), 100);
}

TEST(RomBuilder, RejectsImpossibleLayout) {
  RomConfig cfg;
  cfg.table_capacity = 200;  // table alone exceeds 256 bytes
  EXPECT_THROW(build_rom(cfg), ConfigError);
}

TEST(ShadowStack, StoreThenMatchingCheckPasses) {
  auto build = stub_app(R"(    mov #0x1234, r6
    mov #1, r4
    call #NS_EILID_store_ra
    mov #0x1234, r6
    call #NS_EILID_check_ra
)");
  Device device(build, {.halt_on_reset = true});
  auto r = device.run_to_symbol("halt", 5000);
  EXPECT_EQ(r.cause, sim::StopCause::kBreakpoint);
  EXPECT_EQ(device.machine().violation_count(), 0u);
  ShadowInspector inspector(device);
  EXPECT_EQ(inspector.depth(), 0u);
}

TEST(ShadowStack, MismatchResets) {
  auto build = stub_app(R"(    mov #0x1234, r6
    call #NS_EILID_store_ra
    mov #0x5678, r6
    call #NS_EILID_check_ra
)");
  Device device(build, {.halt_on_reset = true});
  auto r = device.machine().run(5000);
  EXPECT_EQ(r.cause, sim::StopCause::kDeviceReset);
  EXPECT_EQ(device.machine().resets().back().reason,
            ResetReason::kCfiReturnMismatch);
}

TEST(ShadowStack, UnderflowResets) {
  auto build = stub_app(R"(    mov #0x1234, r6
    call #NS_EILID_check_ra
)");
  Device device(build, {.halt_on_reset = true});
  device.machine().run(5000);
  EXPECT_EQ(device.machine().resets().back().reason,
            ResetReason::kShadowStackUnderflow);
}

TEST(ShadowStack, OverflowResets) {
  // Store in a loop beyond capacity.
  auto build = stub_app(R"(    mov #200, r10
ov_loop:
    mov #0x1234, r6
    call #NS_EILID_store_ra
    dec r10
    jnz ov_loop
)");
  Device device(build, {.halt_on_reset = true});
  device.machine().run(100000);
  EXPECT_EQ(device.machine().resets().back().reason,
            ResetReason::kShadowStackOverflow);
}

TEST(ShadowStack, LifoOrderObservable) {
  auto build = stub_app(R"(    mov #0x1111, r6
    call #NS_EILID_store_ra
    mov #0x2222, r6
    call #NS_EILID_store_ra
)");
  Device device(build, {.halt_on_reset = true});
  device.run_to_symbol("halt", 5000);
  ShadowInspector inspector(device);
  ASSERT_EQ(inspector.depth(), 2u);
  EXPECT_EQ(inspector.entry(0), 0x1111);
  EXPECT_EQ(inspector.entry(1), 0x2222);
}

TEST(ShadowStack, RfiStoresAndChecksContextPair) {
  auto build = stub_app(R"(    mov #0xe123, r6
    mov #0x0008, r7
    call #NS_EILID_store_rfi
    mov #0xe123, r6
    mov #0x0008, r7
    call #NS_EILID_check_rfi
)");
  Device device(build, {.halt_on_reset = true});
  auto r = device.run_to_symbol("halt", 5000);
  EXPECT_EQ(r.cause, sim::StopCause::kBreakpoint);
}

TEST(ShadowStack, RfiSrMismatchResets) {
  auto build = stub_app(R"(    mov #0xe123, r6
    mov #0x0008, r7
    call #NS_EILID_store_rfi
    mov #0xe123, r6
    mov #0x0000, r7
    call #NS_EILID_check_rfi
)");
  Device device(build, {.halt_on_reset = true});
  device.machine().run(5000);
  EXPECT_EQ(device.machine().resets().back().reason,
            ResetReason::kCfiRfiMismatch);
}

TEST(IndTable, RegisteredTargetPassesUnknownResets) {
  auto build = stub_app(R"(    call #NS_EILID_init
    mov #0xe200, r6
    call #NS_EILID_store_ind
    mov #0xe200, r6
    call #NS_EILID_check_ind
    mov #0xe300, r6
    call #NS_EILID_check_ind
)");
  Device device(build, {.halt_on_reset = true});
  device.machine().run(5000);
  EXPECT_EQ(device.machine().resets().back().reason,
            ResetReason::kCfiIndirectCallViolation);
}

TEST(IndTable, LockPreventsLateRegistration) {
  auto build = stub_app(R"(    call #NS_EILID_init
    mov #0xe200, r6
    call #NS_EILID_store_ind
    call #NS_EILID_lock
    mov #0xe300, r6
    call #NS_EILID_store_ind
)");
  Device device(build, {.halt_on_reset = true});
  device.machine().run(5000);
  EXPECT_EQ(device.machine().resets().back().reason,
            ResetReason::kCfiIndirectCallViolation);
}

TEST(IndTable, FullTableResets) {
  RomConfig cfg;
  cfg.table_capacity = 2;
  auto build = stub_app(R"(    call #NS_EILID_init
    mov #0xe200, r6
    call #NS_EILID_store_ind
    mov #0xe202, r6
    call #NS_EILID_store_ind
    mov #0xe204, r6
    call #NS_EILID_store_ind
)",
                        cfg);
  Device device(build, {.halt_on_reset = true});
  device.machine().run(5000);
  EXPECT_EQ(device.machine().resets().back().reason,
            ResetReason::kIndTableFull);
}

TEST(EilidHw, ShadowMemoryUnreadableFromApp) {
  auto build = stub_app("    mov &0x2000, r10\n");
  Device device(build, {.halt_on_reset = true});
  device.machine().run(5000);
  EXPECT_EQ(device.machine().resets().back().reason,
            ResetReason::kSecureRamAccessViolation);
}

TEST(EilidHw, ShadowMemoryUnwritableFromApp) {
  auto build = stub_app("    mov #0xdead, &0x2080\n");
  Device device(build, {.halt_on_reset = true});
  device.machine().run(5000);
  EXPECT_EQ(device.machine().resets().back().reason,
            ResetReason::kSecureRamAccessViolation);
  EXPECT_NE(device.machine().bus().raw_word(0x2080), 0xDEAD);
}

TEST(EilidHw, MidStubEntryDispatchesSafely) {
  // Jumping into the entry section *mid-stub* (at a stub's jmp word,
  // skipping the selector mov) is within the legal entry range; the
  // dispatch then runs with whatever r4 holds. With an out-of-range
  // selector the ROM must report a bad-selector violation rather than
  // do anything exploitable.
  RomInfo rom = build_rom();
  // The jmp of the init stub sits right after its selector mov (1 word).
  uint16_t mid_stub =
      static_cast<uint16_t>(rom.unit.symbols.at("NS_EILID_init") + 2);
  std::string src = ".org 0xe000\nmain:\n    mov #0x1000, r1\n"
                    "    mov #9, r4\n    call #" +
                    std::to_string(mid_stub) +
                    "\nhalt:\n    jmp halt\n.vector 15, main\n";
  BuildResult b;
  b.rom = rom;
  b.app = masm::assemble_text(src, "sel");
  Device device(b, {.halt_on_reset = true});
  device.machine().run(5000);
  EXPECT_EQ(device.machine().resets().back().reason, ResetReason::kBadSelector);
}

TEST(EilidHw, LastStubIsLegalEntry) {
  RomInfo rom = build_rom();
  std::string src = ".equ STUB, " +
                    std::to_string(rom.unit.symbols.at("NS_EILID_lock")) +
                    "\n.org 0xe000\nmain:\n    mov #0x1000, r1\n"
                    "    call #STUB\nhalt:\n    jmp halt\n.vector 15, main\n";
  BuildResult b;
  b.rom = rom;
  b.app = masm::assemble_text(src, "sel2");
  Device device(b, {.halt_on_reset = true});
  auto r = device.run_to_symbol("halt", 5000);
  EXPECT_EQ(r.cause, sim::StopCause::kBreakpoint);
  EXPECT_EQ(device.machine().violation_count(), 0u);
}

// --- Instrumenter unit tests ---

const char* kTinyApp = R"(.org 0xe000
main:
    mov #0x1000, r1
    call #foo
halt:
    jmp halt
foo:
    ret
.vector 15, main
.end
)";

TEST(Instrumenter, CountsSites) {
  BuildResult build = build_app(kTinyApp, "tiny");
  EXPECT_EQ(build.report.sites.direct_calls, 1);
  EXPECT_EQ(build.report.sites.returns, 1);
  EXPECT_EQ(build.report.sites.isr_prologues, 0);
  EXPECT_EQ(build.report.sites.indirect_calls, 0);
  EXPECT_EQ(build.report.sites.functions_registered, 0)
      << "no indirect calls: no table registration";
}

TEST(Instrumenter, RequiresResetVector) {
  RomInfo rom = build_rom();
  Instrumenter inst(InstrumentConfig{}, rom.unit.symbols);
  auto lines = masm::split_lines(".org 0xe000\nmain:\n    nop\n");
  masm::AssembledUnit unit = masm::assemble(lines, "noreset");
  EXPECT_THROW(inst.instrument(lines, &unit.listing), InstrumentError);
}

TEST(Instrumenter, SpillsAppWritesToR5) {
  std::string app = R"(.org 0xe000
main:
    mov #0x1000, r1
    mov #7, r5
halt:
    jmp halt
.vector 15, main
.end
)";
  BuildResult build = build_app(app, "spill");
  EXPECT_EQ(build.report.sites.spills, 1);
  EXPECT_FALSE(build.report.warnings.empty());
  // With the memory-backed index, r5 is free: no spill.
  BuildOptions opts;
  opts.rom.memory_backed_index = true;
  BuildResult build2 = build_app(app, "spill2", opts);
  EXPECT_EQ(build2.report.sites.spills, 0);
}

TEST(Instrumenter, WarnsOnAutoincrementIndirectCall) {
  std::string app = R"(.org 0xe000
.func foo
main:
    mov #0x1000, r1
    mov #0x0300, r12
    call @r12+
halt:
    jmp halt
foo:
    ret
.vector 15, main
.end
)";
  BuildResult build = build_app(app, "autoinc");
  bool warned = false;
  for (const auto& w : build.report.warnings) {
    if (w.find("auto-increment") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST(Pipeline, ThreeIterationsConvergeAndLabelModeMatches) {
  BuildResult numeric = build_app(kTinyApp, "tiny");
  EXPECT_TRUE(numeric.converged);
  ASSERT_EQ(numeric.iterations.size(), 3u);
  EXPECT_GT(numeric.iterations[1].image_bytes, numeric.iterations[0].image_bytes);
  EXPECT_EQ(numeric.iterations[1].image_bytes, numeric.iterations[2].image_bytes);

  BuildOptions label;
  label.instrument.label_mode = true;
  BuildResult labeled = build_app(kTinyApp, "tiny", label);
  EXPECT_EQ(numeric.app.image.bytes(), labeled.app.image.bytes())
      << "numeric and label modes must produce identical images";
}

TEST(Pipeline, PlainBuildHasNoRom) {
  BuildResult plain = build_app(kTinyApp, "tiny", {.eilid = false});
  EXPECT_EQ(plain.rom.unit.image.size_bytes(), 0u);
  Device device(plain);
  EXPECT_FALSE(device.eilid_enabled());
  auto r = device.run_to_symbol("halt", 5000);
  EXPECT_EQ(r.cause, sim::StopCause::kBreakpoint);
}

TEST(Pipeline, SelectiveProperties) {
  // Only backward-edge enabled: no ISR or indirect instrumentation.
  std::string app = R"(.org 0xe000
.func foo
main:
    mov #0x1000, r1
    call #foo
    mov #foo, r13
    call r13
halt:
    jmp halt
foo:
    ret
isr:
    reti
.vector 15, main
.vector 8, isr
.end
)";
  BuildOptions opts;
  opts.instrument.interrupt_edge = false;
  opts.instrument.forward_edge = false;
  BuildResult build = build_app(app, "partial", opts);
  EXPECT_EQ(build.report.sites.isr_prologues, 0);
  EXPECT_EQ(build.report.sites.indirect_calls, 0);
  EXPECT_GT(build.report.sites.direct_calls, 0);
}

}  // namespace
}  // namespace eilid::core
