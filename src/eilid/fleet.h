// The public API of the library: a Fleet owns everything needed to
// operate many simulated devices as one session --
//
//   - a content-hash-keyed build cache: identical (source, options)
//     pairs run the three-iteration pipeline exactly once and share
//     one immutable BuildResult across every device flashed with it,
//   - a device registry provisioning N DeviceSessions from cached
//     builds, each wired per its EnforcementPolicy,
//   - a VerifierService multiplexing attestation across sessions with
//     per-device keys, nonces and replay state, plus a batched
//     verify_all() sweep.
//
//   eilid::Fleet fleet;
//   auto& dev = fleet.provision("door-7", source, "gateway",
//                               eilid::EnforcementPolicy::kEilidHw);
//   dev.run_to_symbol("halt", 200000);
//   if (dev.violation_count() > 0) { /* hijack prevented in real time */ }
//
// The legacy single-device entry points (core::build_app + core::Device)
// remain as deprecated shims over this layer.
#ifndef EILID_EILID_FLEET_H
#define EILID_EILID_FLEET_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "eilid/session.h"

namespace eilid {

// Verifier half of the CFA baseline, fleet-wide: one instance tracks
// every enrolled device's MAC key, challenge nonce and stateful path
// replay *independently*, so one device's compromise (or power cycle)
// never perturbs another's attestation history.
class VerifierService {
 public:
  struct AttestResult {
    std::string device_id;
    bool attested = false;  // false: session has no CFA monitor
    uint32_t seq = 0;
    uint64_t cycle = 0;     // device cycle at report emission
    bool mac_ok = false;
    bool seq_ok = false;   // report sequence number was the expected one
    bool path_ok = false;  // replayed log stayed inside the CFG
    size_t edges = 0;
    uint32_t dropped = 0;  // evidence lost to on-device log overflow
    std::optional<cfa::LoggedEdge> first_bad;

    bool ok() const { return attested && mac_ok && seq_ok && path_ok; }
  };

  // Register a session for attestation: extracts the CFG from its
  // build and initialises fresh per-device replay state. Throws
  // eilid::FleetError when the session has no CFA monitor. attest()
  // enrolls on first contact automatically. The service keeps a
  // reference for verify_all(): an enrolled session must outlive the
  // service or be withdraw()n first (Fleet::decommission does this
  // for fleet-owned sessions).
  void enroll(DeviceSession& session);
  bool enrolled(const std::string& device_id) const {
    return devices_.count(device_id) != 0;
  }

  // Challenge one device now: fresh nonce, drain its log, check MAC +
  // sequence + path. Replay state persists across calls.
  AttestResult attest(DeviceSession& session);

  // Batched sweep over every enrolled device, in enrollment-id order.
  std::vector<AttestResult> verify_all();

  // Forget a device (its session is going away).
  void withdraw(const std::string& device_id) { devices_.erase(device_id); }

 private:
  struct DeviceState {
    DeviceSession* session = nullptr;
    cfa::CfaVerifier verifier;
    uint32_t expected_seq = 0;
  };

  std::map<std::string, DeviceState> devices_;
  uint64_t nonce_counter_ = 1;
};

struct FleetOptions {
  // Master key provisioned at manufacture; per-device attestation keys
  // are derived as HMAC(master, "attest:" + device_id).
  std::vector<uint8_t> master_key = std::vector<uint8_t>(32, 0x5A);
};

class Fleet {
 public:
  explicit Fleet(FleetOptions options = {});

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // --- build cache -------------------------------------------------
  // Build (or fetch) the app for (source, name, options). The result
  // is immutable and shared by every session deployed from it.
  std::shared_ptr<const core::BuildResult> build(
      const std::string& source, const std::string& name,
      const core::BuildOptions& options = {});

  size_t pipeline_runs() const { return pipeline_runs_; }
  size_t build_cache_hits() const { return cache_hits_; }
  size_t build_cache_size() const { return cache_.size(); }

  // --- device registry ---------------------------------------------
  // Flash a cached build onto a new device. Throws eilid::FleetError
  // on a duplicate id or a policy/build mismatch. kCfaBaseline
  // sessions are auto-enrolled with the verifier.
  DeviceSession& deploy(const std::string& device_id,
                        std::shared_ptr<const core::BuildResult> build,
                        EnforcementPolicy policy, SessionOptions options = {});

  // Convenience: build (cached) + deploy. BuildOptions are derived
  // from the policy: only kEilidHw instruments.
  DeviceSession& provision(const std::string& device_id,
                           const std::string& source, const std::string& name,
                           EnforcementPolicy policy,
                           SessionOptions options = {});

  DeviceSession* find(const std::string& device_id);
  DeviceSession& at(const std::string& device_id);  // throws FleetError
  void decommission(const std::string& device_id);
  size_t size() const { return by_id_.size(); }
  // Registry iteration, in deployment order.
  const std::vector<std::unique_ptr<DeviceSession>>& sessions() const {
    return sessions_;
  }

  VerifierService& verifier() { return verifier_; }

  // The key a given device MACs its attestation reports with.
  crypto::Digest device_key(const std::string& device_id) const;

 private:
  FleetOptions options_;
  std::map<crypto::Digest, std::shared_ptr<const core::BuildResult>> cache_;
  size_t cache_hits_ = 0;
  size_t pipeline_runs_ = 0;
  std::vector<std::unique_ptr<DeviceSession>> sessions_;
  std::map<std::string, DeviceSession*> by_id_;
  VerifierService verifier_;
};

}  // namespace eilid

#endif  // EILID_EILID_FLEET_H
