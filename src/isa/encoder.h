// Instruction -> machine words. The encoder is address-aware because
// symbolic operands (X(PC)) store a PC-relative displacement whose base
// is the address of the extension word itself.
#ifndef EILID_ISA_ENCODER_H
#define EILID_ISA_ENCODER_H

#include <cstdint>
#include <vector>

#include "isa/instruction.h"

namespace eilid::isa {

struct EncodeOptions {
  // When false, immediates are always emitted as @PC+ with an extension
  // word even if a constant generator could encode them. The assembler
  // disables compression for symbolic immediates so that pass-1 sizing
  // and pass-2 encoding agree regardless of what a symbol resolves to.
  bool allow_cg = true;
};

// Number of words (1..3) the instruction occupies, accounting for
// constant-generator compression of immediates.
unsigned encoded_size_words(const Instruction& insn, EncodeOptions opts = {});

// Encode at `address` (byte address of the first word, must be even).
// Throws eilid::Error on unencodable operand combinations (e.g. jump
// offset out of range, @r3 source, indexed r0 destination).
std::vector<uint16_t> encode(const Instruction& insn, uint16_t address,
                             EncodeOptions opts = {});

}  // namespace eilid::isa

#endif  // EILID_ISA_ENCODER_H
