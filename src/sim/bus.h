// The memory bus: a 64 KB von Neumann address space with memory-mapped
// peripherals and *veto-capable* watchers.
//
// Watchers model bus-snooping hardware (CASU / EILID monitors). They
// see every CPU access before it commits and may deny it; a denied
// write never lands (this is how CASU guarantees PMEM immutability --
// the violating store is suppressed and the device resets).
//
// Hot-path layout: the common case (no watchers, plain memory access)
// is fully inlined; watcher checks and peripheral dispatch are the
// out-of-line slow path. Peripheral dispatch is an O(1) per-address
// table rather than a linear range scan, and pending_irq() is cached
// and recomputed only when something that can change an interrupt line
// actually happened (a tick that moved irq state, an ack, a peripheral
// register access, a reset).
#ifndef EILID_SIM_BUS_H
#define EILID_SIM_BUS_H

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/memory_map.h"
#include "sim/paged_memory.h"

namespace eilid::sim {

// A memory-mapped peripheral occupying a register address range.
class Peripheral {
 public:
  virtual ~Peripheral() = default;

  // Register interface (addresses are absolute).
  virtual uint16_t read(uint16_t addr) = 0;
  virtual void write(uint16_t addr, uint16_t value) = 0;

  // Advance the peripheral's clock by `cycles` CPU cycles. Returns
  // true when the tick may have changed this peripheral's interrupt
  // line (the bus uses this to keep its pending_irq() cache exact).
  virtual bool tick(uint64_t cycles) {
    (void)cycles;
    return false;
  }

  // Asserted interrupt line (vector index), or -1.
  virtual int pending_irq() const { return -1; }
  virtual void ack_irq() {}

  // No tick within this many cycles can assert this peripheral's
  // interrupt line (kIrqNever: ticking alone can never assert it --
  // only register access or host stimulus, which the superblock core
  // already treats as block-ending events). The block dispatcher sums
  // a block's cycles against this horizon so a timer firing mid-block
  // drops execution to the per-instruction core, which delivers the
  // IRQ at the architecturally exact instruction.
  static constexpr uint64_t kIrqNever = ~0ull;
  virtual uint64_t cycles_to_irq() const { return kIrqNever; }

  // Restore power-on state.
  virtual void reset() {}

  // Address range [first, last] this peripheral claims.
  virtual uint16_t first_addr() const = 0;
  virtual uint16_t last_addr() const = 0;
};

// Bus-snooping hardware monitor. Return false from an on_* hook to
// deny the access; record the violation reason internally (the machine
// queries the monitor afterwards).
class BusWatcher {
 public:
  virtual ~BusWatcher() = default;
  // Instruction fetch beginning at pc (fires once per instruction).
  virtual bool on_fetch(uint16_t pc) {
    (void)pc;
    return true;
  }
  virtual bool on_read(uint16_t addr, uint16_t pc) {
    (void)addr;
    (void)pc;
    return true;
  }
  virtual bool on_write(uint16_t addr, uint16_t value, bool byte, uint16_t pc) {
    (void)addr;
    (void)value;
    (void)byte;
    (void)pc;
    return true;
  }
};

class Bus {
 public:
  Bus();

  // --- CPU-visible accesses (watched, peripheral-aware). ---
  // `pc` attributes the access to the currently executing instruction.
  // Denied reads return 0xFFFF; denied writes are dropped. Either sets
  // access_denied() until cleared.
  uint16_t read_word(uint16_t addr, uint16_t pc) {
    addr &= 0xFFFE;  // word accesses are even-aligned (LSB ignored, as in hw)
    if (!watchers_.empty() && !check_read(addr, pc)) return 0xFFFF;
    if (is_periph(addr)) return periph_read_word(addr);
    return raw_word(addr);
  }
  uint8_t read_byte(uint16_t addr, uint16_t pc) {
    if (!watchers_.empty() && !check_read(addr, pc)) return 0xFF;
    if (is_periph(addr)) return periph_read_byte(addr);
    return mem_.read(addr);
  }
  void write_word(uint16_t addr, uint16_t value, uint16_t pc) {
    addr &= 0xFFFE;
    if (!watchers_.empty() && !check_write(addr, value, /*byte=*/false, pc)) {
      return;
    }
    if (is_periph(addr)) {
      periph_write(addr, value);
      return;
    }
    note_code_store(addr);
    mem_.write_word(addr, value);
  }
  void write_byte(uint16_t addr, uint8_t value, uint16_t pc) {
    if (!watchers_.empty() && !check_write(addr, value, /*byte=*/true, pc)) {
      return;
    }
    if (is_periph(addr)) {
      periph_write(addr & 0xFFFE, value);
      return;
    }
    note_code_store(addr);
    mem_.write(addr, value);
  }

  // Instruction-fetch notification; false if a watcher denied it.
  bool notify_fetch(uint16_t pc) {
    return watchers_.empty() || notify_fetch_slow(pc);
  }

  bool access_denied() const { return access_denied_; }
  void clear_access_denied() { access_denied_ = false; }

  // --- Raw accesses (image loading, decode, host inspection). ---
  // No watchers, no peripherals: backing memory only.
  uint16_t raw_word(uint16_t addr) const {
    return mem_.read_word(addr & 0xFFFE);
  }
  uint8_t raw_byte(uint16_t addr) const { return mem_.read(addr); }
  void raw_store_word(uint16_t addr, uint16_t value) {
    addr &= 0xFFFE;
    note_code_store(addr);
    mem_.write_word(addr, value);
  }
  void raw_store_byte(uint16_t addr, uint8_t value) {
    note_code_store(addr);
    mem_.write(addr, value);
  }
  // Bulk image load (wraps at the top of the address space like the
  // byte-at-a-time loop it replaces).
  void raw_store_bytes(uint16_t addr, std::span<const uint8_t> bytes);

  // Monotonic counter of stores that landed at or above the code floor
  // (secure ROM, the unmapped gap, and PMEM). A predecoded image
  // snapshot is valid only while this counter holds the value it had
  // when the image was attached; any later code store invalidates it
  // and the CPU falls back to interpretive decode (see Cpu::step).
  uint64_t code_generation() const { return code_generation_; }

  // --- Wiring. ---
  void add_watcher(BusWatcher* watcher) { watchers_.push_back(watcher); }
  bool has_watchers() const { return !watchers_.empty(); }
  void add_peripheral(Peripheral* peripheral);
  void tick_peripherals(uint64_t cycles) {
    bool irq_moved = false;
    for (auto* p : peripherals_) irq_moved |= p->tick(cycles);
    if (irq_moved) irq_dirty_ = true;
    horizon_dirty_ = true;  // time advanced; every horizon shrank
  }

  // --- Batched (superblock) peripheral time. ---
  // The block core retires several instructions per dispatch and owes
  // the peripherals their cycles only at observation points: accrue
  // per retired instruction; the debt persists across blocks and is
  // flushed wherever peripheral time becomes observable -- any CPU
  // peripheral register access (see periph_read_*/periph_write), every
  // IRQ-deliverability check, the per-step fallback, device reset, and
  // run() exit. A mid-block register read therefore observes exactly
  // the state the per-instruction core would have ticked it to: the
  // debt at that point is precisely the cycles of every retired-but-
  // unticked instruction before it.
  void accrue_ticks(uint64_t cycles) { tick_debt_ += cycles; }
  uint64_t tick_debt() const { return tick_debt_; }
  void flush_ticks() {
    if (tick_debt_ != 0) {
      uint64_t debt = tick_debt_;
      tick_debt_ = 0;
      tick_peripherals(debt);
    }
  }
  // Earliest cycle horizon at which ticking alone could assert a new
  // interrupt line (min over peripherals; kIrqNever when none can),
  // measured from the last tick flush. Cached: the block core consults
  // it once per dispatch, so the virtual sweep only reruns after
  // peripheral state or time actually moved.
  uint64_t cycles_until_irq() const {
    if (horizon_dirty_) {
      uint64_t horizon = Peripheral::kIrqNever;
      for (auto* p : peripherals_) {
        uint64_t c = p->cycles_to_irq();
        if (c < horizon) horizon = c;
      }
      horizon_cache_ = horizon;
      horizon_dirty_ = false;
    }
    return horizon_cache_;
  }
  // Highest-priority asserted line, or -1. Cached: recomputed only
  // after something that can move an interrupt line (tick/ack/register
  // access/reset) -- or after invalidate_irq_cache().
  int pending_irq() const {
    if (irq_dirty_) {
      irq_cache_ = compute_pending_irq();
      irq_dirty_ = false;
    }
    return irq_cache_;
  }
  void ack_irq(int line);
  void reset_peripherals();
  // True when any CPU access touched a peripheral register since the
  // last clear. The block core ends a block at such an instruction: a
  // register access can change interrupt state instantly (UART enable
  // with buffered input), and the per-instruction core re-checks
  // deliverability right after -- so must the block core.
  bool periph_touched() const { return periph_touched_; }
  void clear_periph_touched() { periph_touched_ = false; }
  // Force the next pending_irq() to recompute. Machine::run calls this
  // on entry so host-side stimulus injected between runs (Uart::feed
  // and friends bypass the bus) is observed immediately.
  void invalidate_irq_cache() {
    irq_dirty_ = true;
    horizon_dirty_ = true;
  }

  // Zero RAM and secure RAM (CASU reset wipes volatile state; PMEM and
  // ROM persist). A page-map edit, not a fill: wiped pages read the
  // shared zero page until the next store re-materializes them.
  void wipe_volatile();

  // --- copy-on-write base image (fleet memory diet) -----------------
  // Attach (or swap) the immutable flat image this device's memory is
  // a copy-on-write overlay of -- every page the device never wrote
  // reads the shared image directly, so N sessions of one build cost
  // one image plus their private dirty pages. Owned pages keep their
  // bytes across a swap. Conservatively bumps the code generation:
  // callers re-attach decode tables afterwards (DeviceSession does).
  void attach_base_image(std::shared_ptr<const std::vector<uint8_t>> base) {
    mem_.attach_base(std::move(base));
    ++code_generation_;
  }
  const std::shared_ptr<const std::vector<uint8_t>>& base_image() const {
    return mem_.base();
  }
  // Restore [first, last] to the attached base image (reflash): full
  // pages are pointer resets, owned pages are recycled. Counts as a
  // code store when the range reaches the code floor.
  void reset_range_to_base(uint16_t first, uint16_t last) {
    mem_.reset_range_to_base(first, last);
    if (last >= kRomStart) ++code_generation_;
  }
  // Drop owned pages in [first, last] whose bytes already equal the
  // base -- content-preserving, so the code generation is untouched.
  // Called after a base swap to return update-written pages to shared.
  void reclaim_identical_pages(uint16_t first, uint16_t last) {
    mem_.reclaim_identical(first, last);
  }
  // Private memory this device holds beyond the shared image --
  // materialized pages plus page tables (bench_fleet_10k's per-device
  // gate reads this).
  size_t resident_memory_bytes() const { return mem_.resident_bytes(); }
  size_t owned_pages() const { return mem_.owned_pages(); }

 private:
  Peripheral* peripheral_at(uint16_t addr) const {
    return addr <= kPeriphEnd ? periph_map_[addr] : nullptr;
  }
  bool check_read(uint16_t addr, uint16_t pc);
  bool check_write(uint16_t addr, uint16_t value, bool byte, uint16_t pc);
  bool notify_fetch_slow(uint16_t pc);
  uint16_t periph_read_word(uint16_t addr);
  uint8_t periph_read_byte(uint16_t addr);
  void periph_write(uint16_t addr, uint16_t value);
  int compute_pending_irq() const;
  // Everything at or above the secure ROM can hold code reachable by a
  // predecoded range's extension-word reads; stores below it are plain
  // data traffic and never touch the decode cache.
  void note_code_store(uint16_t addr) {
    if (addr >= kRomStart) ++code_generation_;
  }

  PagedMemory mem_;
  std::vector<BusWatcher*> watchers_;
  std::vector<Peripheral*> peripherals_;
  std::array<Peripheral*, kPeriphEnd + 1> periph_map_{};
  bool access_denied_ = false;
  bool periph_touched_ = false;
  uint64_t code_generation_ = 0;
  uint64_t tick_debt_ = 0;
  mutable bool irq_dirty_ = true;
  mutable int irq_cache_ = -1;
  mutable bool horizon_dirty_ = true;
  mutable uint64_t horizon_cache_ = 0;
};

}  // namespace eilid::sim

#endif  // EILID_SIM_BUS_H
