// Self-healing fleet walkthrough, in two acts, all on the fleet's
// deterministic clock (no wall time anywhere):
//
//   Act 1 -- heartbeats, quarantine, remediation. A HealthMonitor
//   sweeps the fleet on a fixed cadence. One sensor is diverged by a
//   rogue (validly-MAC'd) out-of-band patch: the next heartbeat
//   convicts it and the monitor heals it automatically -- reflash,
//   re-update onto the golden build, clean verdict. Another sensor
//   drops offline: it misses beats, ages past the staleness threshold,
//   is quarantined, and stays quarantined (remediation refuses to
//   pretend an unreachable device is fixed) until it comes back -- at
//   which point it, too, is healed without operator action.
//
//   Act 2 -- rollback on halt. A staged rollout with a soak window
//   trips its failure budget in the wide wave; because the plan set
//   rollback_on_halt, the scheduler stages reverse campaigns from the
//   same build diffs and walks every touched device back to the build
//   it ran before, leaving the fleet exactly where it started.
#include <cstdio>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/eilid/fleet.h"
#include "src/eilid/health.h"
#include "src/eilid/rollout.h"

using namespace eilid;

namespace {

std::string app_version(char marker) {
  std::string s = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
    mov.b #')";
  s += marker;
  s += R"(', &UART_TX
halt:
    jmp halt
.vector 15, main
.end
)";
  return s;
}

void print_health(const char* title, const HealthReport& report) {
  std::printf("%s\n", title);
  for (const HeartbeatBeat& beat : report.heartbeats.beats) {
    std::printf("  beat @%llu: %zu attested",
                static_cast<unsigned long long>(beat.tick),
                beat.verdicts.size());
    for (const auto& verdict : beat.verdicts) {
      if (!verdict.ok()) {
        std::printf(", %s CONVICTED", verdict.device_id.c_str());
      }
    }
    for (const std::string& id : beat.missed) {
      std::printf(", %s missed", id.c_str());
    }
    std::printf("\n");
  }
  for (const QuarantineEntry& entry : report.newly_quarantined) {
    std::printf("  quarantined %s (%s) @%llu\n", entry.device_id.c_str(),
                std::string(quarantine_reason_name(entry.reason)).c_str(),
                static_cast<unsigned long long>(entry.since));
  }
  for (const RemediationOutcome& heal : report.remediations) {
    if (!heal.reachable) {
      std::printf("  remediation %s: UNREACHABLE, stays quarantined\n",
                  heal.device_id.c_str());
    } else {
      std::printf("  remediation %s: reflash + %s, %s -> %s\n",
                  heal.device_id.c_str(),
                  std::string(update_result_name(heal.update.result)).c_str(),
                  heal.verdict.ok() ? "attests ok" : "still convicted",
                  heal.healed ? "HEALED" : "still quarantined");
    }
  }
  std::printf("  in quarantine after: %zu\n", report.quarantined_after);
}

void drive_wave(const std::vector<DeviceSession*>& wave,
                common::ThreadPool*) {
  for (DeviceSession* dev : wave) {
    std::lock_guard<std::mutex> lock(dev->mutex());
    dev->machine().run(64);
    dev->run_to_symbol("halt", 10000);
  }
}

void act_one() {
  std::printf("=== Act 1: heartbeat -> quarantine -> self-heal ===\n");
  Fleet fleet;
  for (int i = 0; i < 6; ++i) {
    DeviceSession& dev = fleet.provision(
        "sensor-" + std::to_string(i), app_version('1'), "fw",
        EnforcementPolicy::kCfaBaseline, {.cfa = {.log_capacity = 65536}});
    dev.run_to_symbol("halt", 10000);
  }

  // Beat every 100 ticks; a device whose last good attestation is more
  // than 250 ticks old is quarantined. Remediation re-images onto v2.
  HealthMonitor health(fleet, {.heartbeat = {.period = 100},
                               .policy = {.staleness_threshold = 250}});
  auto golden = fleet.build(app_version('2'), "fw", {.eilid = false});
  health.stage_remediation(fleet.stage_update(golden));

  // sensor-2 drops off the network; sensor-4 is diverged out-of-band
  // by a rogue patch whose MAC verifies -- the device applies it, but
  // no campaign sanctioned the epoch, so attestation will convict.
  fleet.at("sensor-2").set_online(false);
  {
    DeviceSession& rogue = fleet.at("sensor-4");
    const crypto::Digest key = fleet.update_key("sensor-4");
    casu::UpdateAuthority authority(
        std::span<const uint8_t>(key.data(), key.size()));
    rogue.apply_update(authority.make_package(
        0xE800, rogue.firmware_version() + 1, {0x03, 0x43}));
  }

  // First beat: sensor-4 convicts and is healed in the same pass;
  // sensor-2 just misses (150 ticks old is not yet stale).
  print_health("pass 1 (to tick 150):", health.run_until(150));

  // By tick 400 sensor-2 is 400 ticks stale: quarantined, but
  // unreachable -- the monitor records the attempt and keeps it locked.
  print_health("pass 2 (to tick 400):", health.run_until(400));

  // The sensor comes back online; the next pass heals it.
  fleet.at("sensor-2").set_online(true);
  print_health("pass 3 (to tick 500):", health.run_until(500));

  for (auto* dev : fleet.sessions()) {
    dev->machine().uart().clear_tx();
    dev->power_cycle();
    dev->run_to_symbol("halt", 10000);
    std::printf("%s now transmits '%c'\n", dev->id().c_str(),
                dev->machine().uart().tx_text()[0]);
  }
}

void act_two() {
  std::printf("\n=== Act 2: halted rollout rolls itself back ===\n");
  Fleet fleet;
  for (int i = 0; i < 6; ++i) {
    DeviceSession& dev = fleet.provision(
        "unit-" + std::to_string(i), app_version('1'), "fw",
        EnforcementPolicy::kCfaBaseline, {.cfa = {.log_capacity = 65536}});
    dev.run_to_symbol("halt", 10000);
  }

  RolloutPlan plan;
  plan.waves = {{.name = "canary", .device_ids = {"unit-0", "unit-1"}},
                {.name = "rest", .fraction = 1.0}};
  plan.probe = drive_wave;
  plan.soak_ticks = 25;        // probe, then let the wave soak + re-sweep
  plan.rollback_on_halt = true;

  // unit-4's transport forges the package: the canary soaks clean, the
  // wide wave blows the (zero) failure budget, and the scheduler walks
  // every swapped device back to v1.
  auto v2 = fleet.build(app_version('2'), "fw", {.eilid = false});
  CampaignOptions compromised;
  compromised.tamper = [](const DeviceSession& dev,
                          casu::UpdatePackage& package) {
    if (dev.id() == "unit-4") package.mac[0] ^= 0xFF;
  };
  RolloutReport report = fleet.plan_rollout(v2, plan, compromised).run();

  for (const WaveOutcome& wave : report.waves) {
    std::printf("wave '%s': %s @%llu, soaked until @%llu, gated @%llu\n",
                wave.name.c_str(), wave.applied ? "applied" : "NOT APPLIED",
                static_cast<unsigned long long>(wave.applied_tick),
                static_cast<unsigned long long>(wave.soaked_until),
                static_cast<unsigned long long>(wave.gated_tick));
    for (size_t i = 0; i < wave.rollbacks.size(); ++i) {
      std::printf("  rollback %s: %s%s\n", wave.device_ids[i].c_str(),
                  std::string(update_result_name(wave.rollbacks[i].result))
                      .c_str(),
                  wave.rolled_back[i] ? " (build swapped back)" : "");
    }
  }
  std::printf("halted: %s\nrolled back @%llu\n", report.halt_reason.c_str(),
              static_cast<unsigned long long>(report.rollback_tick));

  for (auto* dev : fleet.sessions()) {
    dev->machine().uart().clear_tx();
    dev->power_cycle();
    dev->run_to_symbol("halt", 10000);
    std::printf("%s back on '%c'\n", dev->id().c_str(),
                dev->machine().uart().tx_text()[0]);
  }
}

}  // namespace

int main() {
  act_one();
  act_two();
  return 0;
}
