#include "isa/opcodes.h"

#include <array>
#include <unordered_map>

#include "common/strings.h"

namespace eilid::isa {
namespace {

// Order must match the Opcode enumerator order exactly.
constexpr std::array<OpcodeInfo, 27> kTable = {{
    {Opcode::kMov, Format::kDouble, "mov", 0x4, true},
    {Opcode::kAdd, Format::kDouble, "add", 0x5, true},
    {Opcode::kAddc, Format::kDouble, "addc", 0x6, true},
    {Opcode::kSubc, Format::kDouble, "subc", 0x7, true},
    {Opcode::kSub, Format::kDouble, "sub", 0x8, true},
    {Opcode::kCmp, Format::kDouble, "cmp", 0x9, true},
    {Opcode::kDadd, Format::kDouble, "dadd", 0xA, true},
    {Opcode::kBit, Format::kDouble, "bit", 0xB, true},
    {Opcode::kBic, Format::kDouble, "bic", 0xC, true},
    {Opcode::kBis, Format::kDouble, "bis", 0xD, true},
    {Opcode::kXor, Format::kDouble, "xor", 0xE, true},
    {Opcode::kAnd, Format::kDouble, "and", 0xF, true},
    // Format II: bits = the 3-bit minor opcode (instruction bits 9..7).
    {Opcode::kRrc, Format::kSingle, "rrc", 0x0, true},
    {Opcode::kSwpb, Format::kSingle, "swpb", 0x1, false},
    {Opcode::kRra, Format::kSingle, "rra", 0x2, true},
    {Opcode::kSxt, Format::kSingle, "sxt", 0x3, false},
    {Opcode::kPush, Format::kSingle, "push", 0x4, true},
    {Opcode::kCall, Format::kSingle, "call", 0x5, false},
    {Opcode::kReti, Format::kSingle, "reti", 0x6, false},
    // Jumps: bits = the 3-bit condition code (instruction bits 12..10).
    {Opcode::kJnz, Format::kJump, "jnz", 0x0, false},
    {Opcode::kJz, Format::kJump, "jz", 0x1, false},
    {Opcode::kJnc, Format::kJump, "jnc", 0x2, false},
    {Opcode::kJc, Format::kJump, "jc", 0x3, false},
    {Opcode::kJn, Format::kJump, "jn", 0x4, false},
    {Opcode::kJge, Format::kJump, "jge", 0x5, false},
    {Opcode::kJl, Format::kJump, "jl", 0x6, false},
    {Opcode::kJmp, Format::kJump, "jmp", 0x7, false},
}};

}  // namespace

const OpcodeInfo& opcode_info(Opcode op) { return kTable[static_cast<size_t>(op)]; }

std::optional<Opcode> opcode_from_mnemonic(const std::string& mnemonic) {
  static const std::unordered_map<std::string, Opcode> kMap = [] {
    std::unordered_map<std::string, Opcode> m;
    for (const auto& info : kTable) m.emplace(info.mnemonic, info.op);
    // Architectural aliases.
    m.emplace("jne", Opcode::kJnz);
    m.emplace("jeq", Opcode::kJz);
    m.emplace("jlo", Opcode::kJnc);
    m.emplace("jhs", Opcode::kJc);
    return m;
  }();
  auto it = kMap.find(to_lower(mnemonic));
  if (it == kMap.end()) return std::nullopt;
  return it->second;
}

}  // namespace eilid::isa
