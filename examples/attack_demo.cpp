// Attack walk-through on the vulnerable UART gateway: a real stack
// overflow exploited end-to-end (the adversary only sends bytes), plus
// a function-pointer hijack, on both device configurations. Also
// enumerates ROP gadgets to show the code-reuse surface that EILID's
// backward-edge CFI neutralises.
#include <cstdio>

#include "src/apps/apps.h"
#include "src/attacks/attack.h"
#include "src/attacks/gadgets.h"
#include "src/eilid/device.h"
#include "src/eilid/pipeline.h"

using namespace eilid;

namespace {

void exploit_run(bool eilid) {
  const auto& app = apps::vuln_gateway();
  core::BuildOptions options;
  options.eilid = eilid;
  core::BuildResult build = core::build_app(app.source, app.name, options);
  core::Device device(build, {.clock_hz = 8e6, .halt_on_reset = true});

  uint16_t unlock = device.symbol("unlock");
  std::printf("  [%s] sending packet: len=10, 8 filler bytes, return "
              "address -> unlock (0x%04x)\n",
              eilid ? "EILID" : "plain", unlock);
  device.machine().uart().feed(attacks::overflow_ret_payload(unlock));
  device.run_to_symbol("halt", 200000);

  bool hijacked =
      device.machine().uart().tx_text().find('U') != std::string::npos;
  if (hijacked) {
    std::printf("  [%s] device transmitted 'U': unlock() executed -- "
                "HIJACKED\n",
                eilid ? "EILID" : "plain");
  }
  if (device.machine().violation_count() > 0) {
    std::printf("  [%s] device reset: %s\n", eilid ? "EILID" : "plain",
                sim::reset_reason_name(device.machine().resets().back().reason)
                    .c_str());
  }
}

void fptr_run(uint16_t target_symbolic, const char* what) {
  const auto& app = apps::vuln_gateway();
  core::BuildResult build = core::build_app(app.source, app.name);
  core::Device device(build, {.clock_hz = 8e6, .halt_on_reset = true});
  device.machine().uart().feed(attacks::benign_payload());

  attacks::AttackEngine engine(device.machine());
  attacks::Attack a;
  a.name = "fptr";
  a.trigger = {attacks::Trigger::Kind::kAtPc, device.symbol("act"), 1};
  uint16_t target = target_symbolic;
  attacks::MemWrite w;
  w.addr = 0x0202;  // FPTR
  w.value = target;
  a.writes = {w};
  engine.schedule(a);
  device.run_to_symbol("halt", 200000);

  std::printf("  FPTR -> %s (0x%04x): %s\n", what, target,
              device.machine().violation_count()
                  ? sim::reset_reason_name(
                        device.machine().resets().back().reason)
                        .c_str()
                  : "allowed (target is in the entry table)");
}

}  // namespace

int main() {
  const auto& app = apps::vuln_gateway();
  core::BuildResult plain = core::build_app(
      app.source, app.name, {.eilid = false});

  std::printf("== ROP surface ==\n");
  auto gadgets =
      attacks::find_gadgets(plain.app.image, 0xE000, 0xF000, /*max_len=*/3);
  int rets = 0;
  for (const auto& g : gadgets) rets += g.ends_in_ret ? 1 : 0;
  std::printf("  %zu gadgets in a %zu-byte binary (%d ending in ret); "
              "examples:\n",
              gadgets.size(), plain.binary_size(), rets);
  for (size_t i = 0; i < gadgets.size() && i < 4; ++i) {
    std::printf("    0x%04x: %s\n", gadgets[i].addr, gadgets[i].text.c_str());
  }

  std::printf("\n== P1: stack-smash exploit (adversary only sends bytes) ==\n");
  exploit_run(false);
  exploit_run(true);

  std::printf("\n== P3: function-pointer hijack on the EILID device ==\n");
  core::BuildResult eilid_build = core::build_app(app.source, app.name);
  core::Device probe(eilid_build);
  fptr_run(probe.symbol("unlock"), "unlock (not registered)");
  fptr_run(probe.symbol("blink"), "blink (registered .func)");
  std::printf(
      "\nFunction-level granularity, exactly as the paper states: redirecting\n"
      "to another *registered* entry is not detected (P3's stated limit),\n"
      "while any unregistered target resets the device.\n");
  return 0;
}
