#include "apps/apps.h"

#include "common/error.h"
#include "sim/memory_map.h"

namespace eilid::apps {
namespace {

// Shared MMIO name block prepended to every app.
const char* kEqus = R"(; ---- device register map ----
.equ TIMER_CTL, 0x0100
.equ TIMER_CCR0, 0x0102
.equ TIMER_COUNT, 0x0104
.equ TIMER_FLAGS, 0x0106
.equ ADC_CTL, 0x0110
.equ ADC_MEM, 0x0112
.equ ADC_STAT, 0x0114
.equ P1IN, 0x0120
.equ P1OUT, 0x0122
.equ P1DIR, 0x0124
.equ P2IN, 0x0128
.equ P2OUT, 0x012A
.equ P2DIR, 0x012C
.equ UART_TX, 0x0130
.equ UART_RX, 0x0132
.equ UART_STAT, 0x0134
.equ US_TRIG, 0x0140
.equ US_ECHO, 0x0142
.equ US_STAT, 0x0144
.equ LCD_CMD, 0x0150
.equ LCD_DATA, 0x0152
)";

// Standard startup: set SP, zero the working RAM window. The first
// instruction after `main:` must set SP (the instrumenter inserts its
// boot block after it).
const char* kCrt0 = R"(main:
    mov #0x1000, r1
    mov #0x0200, r11
crt_clr:
    clr 0(r11)
    incd r11
    cmp #0x0240, r11
    jnz crt_clr
)";

// ---------------------------------------------------------------- //
const char* kLightSensor = R"(; light_sensor: 4x-oversampled ADC
; sampling, 8-sample ring filter with min/max, hysteresis LED, framed
; UART reports with XOR checksum; a background timer ISR maintains a
; timestamp counter that is embedded in each frame.
.equ SEQ, 0x0202
.equ RIDX, 0x0204
.equ LEDST, 0x0206
.equ TIMESTAMP, 0x0208
.equ RING, 0x0210
.equ PKT, 0x0220
.org 0xE000
%CRT0%
    mov #0xff, &P1DIR
    mov #5000, &TIMER_CCR0
    mov #3, &TIMER_CTL          ; enable + irq
    eint
    mov #16, r10                ; 16 report frames
loop:
    call #process_sample
    dec r10
    jnz loop
    dint
halt:
    jmp halt

; One frame of work: oversample ADC ch0 4x, push the average into the
; 8-entry ring, rescan for sum/min/max, drive the LED with hysteresis,
; emit frame AA seq avg min max ts crc (crc = xor of first six bytes).
process_sample:
    clr r13
    mov #4, r14
ps_ovs:
    mov #0x100, &ADC_CTL
ps_w:
    tst &ADC_STAT
    jz ps_w
    add &ADC_MEM, r13
    dec r14
    jnz ps_ovs
    rra r13
    rra r13
    mov r13, r9
    mov &RIDX, r14
    mov r14, r15
    rla r15
    mov r9, RING(r15)
    inc r14
    and #7, r14
    mov r14, &RIDX
    clr r11
    mov #0x7fff, r12
    mov #0x8000, r13
    clr r15
ps_scan:
    mov RING(r15), r9
    add r9, r11
    cmp r12, r9
    jge ps_cmax
    mov r9, r12
ps_cmax:
    cmp r13, r9
    jl ps_next
    mov r9, r13
ps_next:
    incd r15
    cmp #16, r15
    jnz ps_scan
    mov r11, r9
    rra r9
    rra r9
    rra r9
    tst &LEDST
    jnz ps_on
    cmp #0x90, r9
    jl ps_led_done
    mov #1, &LEDST
    bis #1, &P1OUT
    jmp ps_led_done
ps_on:
    cmp #0x70, r9
    jge ps_led_done
    clr &LEDST
    bic #1, &P1OUT
ps_led_done:
    mov #PKT, r14
    mov.b #0xaa, 0(r14)
    mov &SEQ, r15
    mov.b r15, 1(r14)
    inc &SEQ
    mov.b r9, 2(r14)
    mov.b r12, 3(r14)
    mov.b r13, 4(r14)
    mov &TIMESTAMP, r15
    mov.b r15, 5(r14)
    clr r15
    clr r11
ps_crc:
    mov.b PKT(r11), r13
    xor r13, r15
    inc r11
    cmp #6, r11
    jnz ps_crc
    mov.b r15, 6(r14)
    clr r11
ps_tx:
    mov.b PKT(r11), r15
    mov.b r15, &UART_TX
    inc r11
    cmp #7, r11
    jnz ps_tx
    ret

timer_isr:
    inc &TIMESTAMP
    reti

.vector 15, main
.vector 8, timer_isr
.end
)";

void setup_light(sim::Machine& m) {
  m.adc().set_channel_series(
      0, {0x20, 0x40, 0x90, 0xA0, 0xC0, 0x70, 0x30, 0x10, 0x50, 0xB0, 0xD0,
          0xF0, 0x60, 0x55, 0x45, 0x35});
}

std::string check_light(sim::Machine& m) {
  if (m.adc().conversions_done() != 64) return "expected 64 conversions";
  const auto& tx = m.uart().tx_log();
  if (tx.size() != 112) {
    return "expected 112 tx bytes, got " + std::to_string(tx.size());
  }
  for (size_t f = 0; f < 16; ++f) {
    const uint8_t* p = tx.data() + 7 * f;
    if (p[0] != 0xAA) return "bad frame marker";
    if (p[1] != f) return "bad sequence number";
    uint8_t crc = 0;
    for (int i = 0; i < 6; ++i) crc = static_cast<uint8_t>(crc ^ p[i]);
    if (crc != p[6]) return "bad frame checksum";
  }
  return "";
}

// ---------------------------------------------------------------- //
const char* kUltrasonicRanger = R"(; ultrasonic_ranger: triple pings with
; median filtering, zone classification with LED patterns, framed
; reports.
.equ SEQ, 0x0202
.equ S3, 0x0210
.org 0xE000
%CRT0%
    mov #0xff, &P1DIR
    mov #8, r10                 ; 8 measurement rounds
loop:
    call #measure               ; r9 = median echo width
    call #classify_report
    dec r10
    jnz loop
halt:
    jmp halt

; Three pings, median-of-3 (unsigned compares: widths exceed 32767).
measure:
    clr r14
me_ping:
    mov #1, &US_TRIG
me_w:
    tst &US_STAT
    jz me_w
    mov &US_ECHO, r9
    mov r14, r15
    rla r15
    mov r9, S3(r15)
    inc r14
    cmp #3, r14
    jnz me_ping
    mov &S3, r11
    mov &S3+2, r12
    mov &S3+4, r13
    cmp r11, r12                ; ensure r11 <= r12 (unsigned)
    jc me_ab
    mov r11, r15
    mov r12, r11
    mov r15, r12
me_ab:
    cmp r12, r13                ; ensure r12 <= r13
    jc me_bc
    mov r12, r15
    mov r13, r12
    mov r15, r13
me_bc:
    cmp r11, r12
    jc me_done
    mov r11, r15
    mov r12, r11
    mov r15, r12
me_done:
    mov r12, r9
    ret

; width -> cm (unsigned repeated subtraction), zone LEDs, frame:
; BB seq cm_lo cm_hi crc.
classify_report:
    clr r11
cr_div:
    cmp #470, r9
    jnc cr_zone
    sub #470, r9
    inc r11
    jmp cr_div
cr_zone:
    cmp #10, r11
    jge cr_mid
    mov #0x03, &P1OUT
    jmp cr_pkt
cr_mid:
    cmp #30, r11
    jge cr_far
    mov #0x01, &P1OUT
    jmp cr_pkt
cr_far:
    clr &P1OUT
cr_pkt:
    mov.b #0xbb, &UART_TX
    mov &SEQ, r15
    mov.b r15, &UART_TX
    inc &SEQ
    mov.b r11, &UART_TX
    mov r11, r14
    swpb r14
    mov.b r14, &UART_TX
    mov.b r15, r12
    xor #0xbb, r12
    mov.b r11, r13
    xor r13, r12
    mov.b r14, r13
    xor r13, r12
    mov.b r12, &UART_TX
    ret

.vector 15, main
.end
)";

void setup_ranger(sim::Machine& m) {
  // Triples per round: median is the middle sample.
  m.ranger().set_distances_mm({1200, 1260, 1180, 820, 800, 790, 410, 400, 395,
                               160, 150, 140, 60, 65, 55, 95, 90, 85, 500, 505,
                               495, 1000, 1010, 990});
}

std::string check_ranger(sim::Machine& m) {
  if (m.ranger().pings() != 24) return "expected 24 pings";
  const auto& tx = m.uart().tx_log();
  if (tx.size() != 40) return "expected 8 frames of 5 bytes";
  // Round 3 median 150mm: 150*47/470 = 15 cm.
  if (tx[3 * 5 + 2] != 15) return "wrong median distance";
  if (tx[0] != 0xBB) return "bad frame marker";
  return "";
}

// ---------------------------------------------------------------- //
const char* kFireSensor = R"(; fire_sensor: 2x-oversampled flame +
; temperature EWMA fusion, fused-score history ring, hysteresis alarm
; FSM with buzzer pattern table, UART alerts; background timestamp ISR.
.equ ALARM, 0x0202
.equ EWMA_F, 0x0204
.equ EWMA_T, 0x0206
.equ PATIDX, 0x0208
.equ TIMESTAMP, 0x020A
.equ HIDX, 0x020C
.equ HIST, 0x0210
.org 0xE000
%CRT0%
    mov #0xff, &P1DIR
    mov #6000, &TIMER_CCR0
    mov #3, &TIMER_CTL
    eint
    mov #12, r10
loop:
    call #sense_and_alarm       ; full processing round
    dec r10
    jnz loop
    dint
halt:
    jmp halt

; EWMA per channel over 2x-oversampled reads: e = (3e + raw)/4;
; fused = ewma_f + ewma_t/2, smoothed over an 8-entry history ring;
; hysteresis alarm (raise >= 0x180, clear < 0x100) with buzzer pattern.
sense_and_alarm:
    clr r9
    mov #2, r14
sa_f:
    mov #0x102, &ADC_CTL
sa_w1:
    tst &ADC_STAT
    jz sa_w1
    add &ADC_MEM, r9
    dec r14
    jnz sa_f
    rra r9                      ; flame = avg of 2
    mov &EWMA_F, r12
    mov r12, r13
    rla r13
    add r12, r13
    add r9, r13
    rra r13
    rra r13
    mov r13, &EWMA_F
    clr r9
    mov #2, r14
sa_t:
    mov #0x101, &ADC_CTL
sa_w2:
    tst &ADC_STAT
    jz sa_w2
    add &ADC_MEM, r9
    dec r14
    jnz sa_t
    rra r9                      ; temp = avg of 2
    mov &EWMA_T, r12
    mov r12, r13
    rla r13
    add r12, r13
    add r9, r13
    rra r13
    rra r13
    mov r13, &EWMA_T
    mov &EWMA_T, r9
    rra r9
    add &EWMA_F, r9             ; fused score
    mov &HIDX, r14
    mov r14, r15
    rla r15
    mov r9, HIST(r15)
    inc r14
    and #7, r14
    mov r14, &HIDX
    clr r11
    clr r15
sa_hsum:
    add HIST(r15), r11
    incd r15
    cmp #16, r15
    jnz sa_hsum
    rra r11
    rra r11
    rra r11                     ; smoothed history average (telemetry;
                                ; the instantaneous score drives the FSM)
    tst &ALARM
    jnz sa_on
    cmp #0x180, r9
    jl sa_done
    mov #1, &ALARM
    clr &PATIDX
    mov.b #'A', &UART_TX
sa_done:
    ret
sa_on:
    cmp #0x100, r9
    jge sa_buzz
    clr &ALARM
    bic #6, &P1OUT
    mov.b #'a', &UART_TX
    ret
sa_buzz:
    mov &PATIDX, r14
    mov r14, r15
    rla r15
    mov buzz_pat(r15), r13
    mov r13, &P1OUT
    inc r14
    and #3, r14
    mov r14, &PATIDX
    mov.b r9, &UART_TX
    ret
buzz_pat:
    .word 0x02, 0x06, 0x04, 0x06

timer_isr:
    inc &TIMESTAMP
    reti

.vector 15, main
.vector 8, timer_isr
.end
)";

void setup_fire(sim::Machine& m) {
  std::vector<uint16_t> flame;
  for (int i = 0; i < 6; ++i) flame.push_back(0x10);
  for (int i = 0; i < 10; ++i) flame.push_back(0x300);
  for (int i = 0; i < 8; ++i) flame.push_back(0x10);
  m.adc().set_channel_series(2, flame);
  m.adc().set_channel_series(1, std::vector<uint16_t>(24, 0x60));
}

std::string check_fire(sim::Machine& m) {
  std::string tx = m.uart().tx_text();
  size_t raised = tx.find('A');
  size_t cleared = tx.find('a');
  if (raised == std::string::npos) return "alarm never raised";
  if (cleared == std::string::npos) return "alarm never cleared";
  if (cleared < raised) return "alarm cleared before raised";
  return "";
}

// ---------------------------------------------------------------- //
const char* kSyringePump = R"(; syringe_pump: UART command interpreter
; with indirect dispatch (function pointers), bounds-checked stepper
; motion with pulse timing.
.equ POSITION, 0x0202
.org 0xE000
.func cmd_dispense
.func cmd_withdraw
.func cmd_status
%CRT0%
    mov #0xff, &P1DIR
cmd_loop:
    mov &UART_STAT, r9
    bit #1, r9
    jz done
    mov &UART_RX, r9            ; command byte
    mov #cmd_dispense, r13
    cmp #'D', r9
    jz have
    mov #cmd_withdraw, r13
    cmp #'W', r9
    jz have
    mov #cmd_status, r13
    cmp #'S', r9
    jz have
    jmp cmd_loop                ; unknown bytes are skipped
have:
    mov &UART_STAT, r9
    bit #1, r9
    jz noarg
    mov &UART_RX, r9            ; argument byte
    jmp dispatch
noarg:
    clr r9
dispatch:
    call r13                    ; indirect dispatch (P3 site)
    jmp cmd_loop
done:
halt:
    jmp halt

cmd_dispense:                   ; r9 = steps forward, bounded at 256
    mov &POSITION, r12
    add r9, r12
    cmp #0x100, r12
    jge cd_err
cd_loop:
    tst r9
    jz cd_ok
    bis #4, &P1OUT
    mov #100, r14
cd_d1:
    dec r14
    jnz cd_d1
    bic #4, &P1OUT
    mov #100, r14
cd_d2:
    dec r14
    jnz cd_d2
    inc &POSITION
    dec r9
    jmp cd_loop
cd_ok:
    mov.b #'d', &UART_TX
    ret
cd_err:
    mov.b #'E', &UART_TX
    ret

cmd_withdraw:                   ; r9 = steps back, bounded at 0
    cmp r9, &POSITION
    jl cw_err
cw_loop:
    tst r9
    jz cw_ok
    bis #8, &P1OUT
    mov #100, r14
cw_d1:
    dec r14
    jnz cw_d1
    bic #8, &P1OUT
    mov #100, r14
cw_d2:
    dec r14
    jnz cw_d2
    dec &POSITION
    dec r9
    jmp cw_loop
cw_ok:
    mov.b #'w', &UART_TX
    ret
cw_err:
    mov.b #'E', &UART_TX
    ret

cmd_status:                     ; report 16-bit position, little endian
    mov &POSITION, r15
    mov.b r15, &UART_TX
    mov r15, r14
    swpb r14
    mov.b r14, &UART_TX
    ret

.vector 15, main
.end
)";

void setup_pump(sim::Machine& m) {
  // dispense 8, withdraw 3, status (arg 0), withdraw 9 (out of bounds).
  m.uart().feed(std::string("D\x08") + "W\x03" + std::string("S\x00", 2) +
                "W\x09");
}

std::string check_pump(sim::Machine& m) {
  std::string tx = m.uart().tx_text();
  std::string expect = std::string("dw") + '\x05' + '\x00' + 'E';
  if (tx != expect) return "bad pump transcript";
  return "";
}

// ---------------------------------------------------------------- //
const char* kTempSensor = R"(; temp_sensor: Celsius conversion, min/max
; and running-sum statistics, Fahrenheit companion output.
.equ MIN_V, 0x0204
.equ MAX_V, 0x0206
.equ SUM_V, 0x0208
.equ CNT_V, 0x020A
.org 0xE000
%CRT0%
    mov #0x7fff, &MIN_V
    mov #0x8000, &MAX_V
    mov #16, r10
loop:
    call #sample_report         ; acquire + stats + report
    mov #300, r14
pc_l:
    dec r14
    jnz pc_l
    dec r10
    jnz loop
halt:
    jmp halt

; C = raw/4 - 40; update min/max/sum stats; emit 'T' C F with
; F = 9C/5 + 32 (division by repeated subtraction).
sample_report:
    mov #0x101, &ADC_CTL
aw:
    tst &ADC_STAT
    jz aw
    mov &ADC_MEM, r9
    rra r9
    rra r9
    sub #40, r9
    cmp &MIN_V, r9
    jge aq_max
    mov r9, &MIN_V
aq_max:
    cmp &MAX_V, r9
    jl aq_sum
    mov r9, &MAX_V
aq_sum:
    add r9, &SUM_V
    inc &CNT_V
    mov r9, r12
    rla r12
    rla r12
    rla r12
    add r9, r12
    clr r13
rp_div5:
    cmp #5, r12
    jl rp_done5
    sub #5, r12
    inc r13
    jmp rp_div5
rp_done5:
    add #32, r13
    mov.b #0x54, &UART_TX
    mov.b r9, &UART_TX
    mov.b r13, &UART_TX
    ret

.vector 15, main
.end
)";

void setup_temp(sim::Machine& m) {
  m.adc().set_channel_series(
      1, {200, 220, 240, 260, 280, 300, 320, 340, 320, 300, 280, 260, 240, 220,
          200, 180});
}

std::string check_temp(sim::Machine& m) {
  const auto& tx = m.uart().tx_log();
  if (tx.size() != 48) return "expected 48 tx bytes";
  if (tx[0] != 'T' || tx[1] != 10 || tx[2] != 50) {
    return "wrong first conversion";
  }
  if (static_cast<int16_t>(m.bus().raw_word(0x0204)) != 5) return "wrong min";
  if (static_cast<int16_t>(m.bus().raw_word(0x0206)) != 45) return "wrong max";
  return "";
}

// ---------------------------------------------------------------- //
const char* kCharlieplexing = R"(; charlieplexing: 6 LEDs on 3 pins,
; table-driven frames with software duty-cycle dimming.
.equ FRAME, 0x0204
.org 0xE000
%CRT0%
    mov #6, r10                 ; animation sweeps
sweep:
    mov #6, r12
frame_l:
    call #render_frame
    dec r12
    jnz frame_l
    dec r10
    jnz sweep
halt:
    jmp halt

; Drive the current frame with 8 duty periods (software dimming), then
; advance the animation index.
render_frame:
    mov &FRAME, r14
    mov r14, r15
    rla r15
    rla r15
    mov pattern_table(r15), r13
    mov pattern_table+2(r15), r11
    mov #8, r9
rf_duty:
    mov r13, &P1DIR
    mov r11, &P1OUT
    mov #60, r14
rf_on:
    dec r14
    jnz rf_on
    clr &P1OUT
    mov #15, r14
rf_off:
    dec r14
    jnz rf_off
    dec r9
    jnz rf_duty
    mov &FRAME, r14
    inc r14
    cmp #6, r14
    jnz rf_store
    clr r14
rf_store:
    mov r14, &FRAME
    ret

pattern_table:
    .word 0x03, 0x01
    .word 0x03, 0x02
    .word 0x06, 0x02
    .word 0x06, 0x04
    .word 0x05, 0x01
    .word 0x05, 0x04

.vector 15, main
.end
)";

void setup_charlie(sim::Machine& m) { (void)m; }

std::string check_charlie(sim::Machine& m) {
  // 36 frames x 8 duty periods x 2 transitions each.
  if (m.port1().output_trace().size() < 500) {
    return "expected at least 500 LED transitions, saw " +
           std::to_string(m.port1().output_trace().size());
  }
  return "";
}

// ---------------------------------------------------------------- //
const char* kLcdSensor = R"(; lcd_sensor: HD44780 init, label, 3-digit
; decimal readout and a second-row bar graph.
.org 0xE000
%CRT0%
    mov #0x38, &LCD_CMD         ; function set
    mov #0x0c, &LCD_CMD         ; display on
    mov #0x06, &LCD_CMD         ; entry mode
    mov #0x01, &LCD_CMD         ; clear
    mov #4, r10                 ; refreshes
refresh:
    call #refresh_display       ; acquire + render one frame
    dec r10
    jnz refresh
halt:
    jmp halt

; Read the sensor, then redraw both LCD rows. Each controller write is
; followed by a short busy-wait (a real HD44780 needs ~37us per write).
refresh_display:
    mov #0x101, &ADC_CTL
aw:
    tst &ADC_STAT
    jz aw
    mov &ADC_MEM, r9
    mov #0x02, &LCD_CMD         ; home
    mov #30, r14
bw0:
    dec r14
    jnz bw0
    mov #label_text, r11
rd_lbl:
    mov.b @r11+, r15
    tst r15
    jz rd_val
    mov.b r15, &LCD_DATA
    mov #30, r14
bw1:
    dec r14
    jnz bw1
    jmp rd_lbl
rd_val:
    mov r9, r12
    clr r13
rd_h:
    cmp #100, r12
    jl rd_hd
    sub #100, r12
    inc r13
    jmp rd_h
rd_hd:
    mov r13, r15
    add #0x30, r15
    mov.b r15, &LCD_DATA
    mov #30, r14
bw2:
    dec r14
    jnz bw2
    clr r13
rd_t:
    cmp #10, r12
    jl rd_td
    sub #10, r12
    inc r13
    jmp rd_t
rd_td:
    mov r13, r15
    add #0x30, r15
    mov.b r15, &LCD_DATA
    mov #30, r14
bw3:
    dec r14
    jnz bw3
    mov r12, r15
    add #0x30, r15
    mov.b r15, &LCD_DATA
    mov #30, r14
bw4:
    dec r14
    jnz bw4
    mov #0xc0, &LCD_CMD         ; second row
    mov #30, r14
bw5:
    dec r14
    jnz bw5
    mov r9, r12
    clr r13
rd_b:
    cmp #100, r12
    jl rd_bars
    sub #100, r12
    inc r13
    jmp rd_b
rd_bars:
    tst r13
    jz rd_done
rd_bl:
    mov.b #0x23, &LCD_DATA      ; '#'
    mov #30, r14
bw6:
    dec r14
    jnz bw6
    dec r13
    jnz rd_bl
rd_done:
    ret

label_text:
    .asciz "T:"
    .align 2

.vector 15, main
.end
)";

void setup_lcd(sim::Machine& m) {
  m.adc().set_channel_series(1, {217, 305, 42, 999});
}

std::string check_lcd(sim::Machine& m) {
  std::string text = m.lcd().text();
  std::string expect = "T:217##T:305###T:042T:999#########";
  if (text != expect) return "bad LCD text: " + text;
  return "";
}

// ---------------------------------------------------------------- //
const char* kVulnGateway = R"(; vuln_gateway: UART packet server with a
; classic stack overflow (length-prefixed copy into an 8-byte stack
; buffer) and a function pointer in RAM. Used by the attack demos.
.equ FPTR, 0x0202
.org 0xE000
.func blink
%CRT0%
    mov #0xff, &P2DIR
    mov #blink, &FPTR
serve:
    call #recv_packet
    call #act
    mov &UART_STAT, r9
    bit #1, r9
    jnz serve
halt:
    jmp halt

; packet = [len][payload...]; copies len bytes into an 8-byte buffer
recv_packet:
    sub #8, r1                  ; allocate buf[8] on the stack
    call #read_byte             ; r9 = len (untrusted!)
    mov r9, r12
    mov r1, r11
rp_copy:
    tst r12
    jz rp_done
    call #read_byte
    mov.b r9, 0(r11)
    inc r11
    dec r12
    jmp rp_copy
rp_done:
    add #8, r1
    ret

read_byte:                      ; r9 = next rx byte or 0
    mov &UART_STAT, r9
    bit #1, r9
    jz rb_none
    mov &UART_RX, r9
    ret
rb_none:
    clr r9
    ret

act:                            ; indirect call through RAM pointer
    mov &FPTR, r13
    call r13
    ret

blink:
    xor #1, &P2OUT
    ret

unlock:                         ; privileged: never called legitimately
    mov #0xff, &P2OUT
    mov.b #'U', &UART_TX
    ret

.vector 15, main
.end
)";

void setup_vuln(sim::Machine& m) {
  (void)m;  // attack scenarios feed their own payloads
}

std::string check_vuln(sim::Machine& m) {
  (void)m;
  return "";
}

std::string expand(const char* body) {
  std::string s = std::string(kEqus) + body;
  const std::string token = "%CRT0%";
  size_t pos = s.find(token);
  if (pos != std::string::npos) s.replace(pos, token.size(), kCrt0);
  return s;
}

std::vector<AppSpec> make_apps() {
  return {
      {"light_sensor", expand(kLightSensor), setup_light, 200000, check_light},
      {"ultrasonic_ranger", expand(kUltrasonicRanger), setup_ranger, 400000,
       check_ranger},
      {"fire_sensor", expand(kFireSensor), setup_fire, 150000, check_fire},
      {"syringe_pump", expand(kSyringePump), setup_pump, 80000, check_pump},
      {"temp_sensor", expand(kTempSensor), setup_temp, 100000, check_temp},
      {"charlieplexing", expand(kCharlieplexing), setup_charlie, 120000,
       check_charlie},
      {"lcd_sensor", expand(kLcdSensor), setup_lcd, 100000, check_lcd},
  };
}

}  // namespace

const std::vector<AppSpec>& table4_apps() {
  static const std::vector<AppSpec> apps = make_apps();
  return apps;
}

const AppSpec& app_by_name(const std::string& name) {
  for (const auto& app : table4_apps()) {
    if (app.name == name) return app;
  }
  if (name == "vuln_gateway") return vuln_gateway();
  throw ConfigError("unknown app: " + name);
}

const AppSpec& vuln_gateway() {
  static const AppSpec app = {"vuln_gateway", expand(kVulnGateway), setup_vuln,
                              200000, check_vuln};
  return app;
}

WorkloadOutcome run_workload(DeviceSession& session, const AppSpec& app,
                             uint64_t cycle_budget) {
  if (cycle_budget == 0) cycle_budget = 8 * app.cycle_budget;
  app.setup(session.machine());
  auto run = session.run_to_symbol("halt", cycle_budget);

  WorkloadOutcome out;
  out.reached_halt = run.cause == sim::StopCause::kBreakpoint;
  out.cycles = run.cycles;
  out.violations = session.violation_count();
  out.last_reset = session.last_reset_reason();
  out.check_failure = app.check(session.machine());
  return out;
}

std::vector<WorkloadOutcome> run_workload_all(
    const std::vector<FleetWorkload>& items, common::ThreadPool& pool) {
  std::vector<WorkloadOutcome> outcomes(items.size());
  pool.parallel_for(items.size(), [&](size_t i) {
    const FleetWorkload& item = items[i];
    std::lock_guard<std::mutex> lock(item.session->mutex());
    outcomes[i] = run_workload(*item.session, *item.app, item.cycle_budget);
  });
  return outcomes;
}

eilid::WaveProbe wave_workload(const AppSpec& app, uint64_t cycle_budget) {
  // The spec is copied into the closure: a probe outlives the call
  // (it sits inside a RolloutPlan), so capturing the caller's
  // reference would dangle for any non-static AppSpec.
  return [spec = app, cycle_budget](const std::vector<DeviceSession*>& wave,
                                    common::ThreadPool* pool) {
    if (pool != nullptr) {
      std::vector<FleetWorkload> items;
      items.reserve(wave.size());
      for (DeviceSession* session : wave) {
        items.push_back({session, &spec, cycle_budget});
      }
      run_workload_all(items, *pool);
      return;
    }
    for (DeviceSession* session : wave) {
      std::lock_guard<std::mutex> lock(session->mutex());
      run_workload(*session, spec, cycle_budget);
    }
  };
}

}  // namespace eilid::apps
