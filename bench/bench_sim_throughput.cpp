// Simulator-core throughput: simulated instructions per wall-clock
// second (MIPS), per enforcement policy, for the predecoded fast path
// vs the pure interpretive core -- plus a fleet sweep driving many
// devices from a thread pool. This seeds the bench trajectory for the
// hot loop: every future perf PR must beat the table this emits
// (BENCH_sim_throughput.json).
//
// Correctness gates (the bench FAILS on any violation):
//   - per policy, the predecoded and interpretive runs retire the same
//     instruction count over the same simulated cycles and their
//     retired-instruction traces (from, to, fallthrough per step) have
//     identical fingerprints,
//   - for kCfaBaseline, the attestation verdicts of both runs are
//     identical (same seq/mac_ok/seq_ok/path_ok/edges/dropped).
// Wall-clock numbers are reported but not gated (host-dependent).
//
// Usage: bench_sim_throughput [--smoke]   (--smoke: CI-sized workload)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/eilid/fleet.h"
#include "src/sim/monitor.h"

using namespace eilid;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

// Decode-heavy compute kernel: tight ALU loop + calls + RAM traffic,
// running forever (the cycle budget bounds each run). Instrumentable,
// so the same source serves every policy including kEilidHw.
const char* kKernelSource = R"(.org 0xE000
main:
    mov #0x1000, r1
    clr r12
    clr r13
loop:
    mov #8, r11
inner:
    add r11, r12
    xor r12, r13
    rra r13
    swpb r12
    inc r13
    dec r11
    jnz inner
    call #mix
    mov r12, &0x0280
    add &0x0280, r13
    jmp loop
mix:
    push r12
    xor r13, r12
    rra r12
    pop r12
    ret
.vector 15, main
)";

// FNV-1a fingerprint over every (from, to, fallthrough) step tuple.
class TraceFingerprint : public sim::Monitor {
 public:
  void on_step(uint16_t from_pc, uint16_t to_pc, uint16_t fallthrough) override {
    mix(from_pc);
    mix(to_pc);
    mix(fallthrough);
    ++steps_;
  }
  uint64_t hash() const { return hash_; }
  uint64_t steps() const { return steps_; }

 private:
  void mix(uint16_t v) {
    hash_ ^= v;
    hash_ *= 0x100000001b3ull;
  }
  uint64_t hash_ = 0xcbf29ce484222325ull;
  uint64_t steps_ = 0;
};

constexpr EnforcementPolicy kPolicies[] = {
    EnforcementPolicy::kNone, EnforcementPolicy::kCasu,
    EnforcementPolicy::kCfaBaseline, EnforcementPolicy::kEilidHw};

struct ModeRun {
  double wall_ms = 0;
  uint64_t instructions = 0;
  uint64_t sim_cycles = 0;
  uint64_t trace_hash = 0;
  uint64_t trace_steps = 0;
  std::string verdict;  // kCfaBaseline only
  double mips() const {
    return wall_ms > 0 ? static_cast<double>(instructions) / (wall_ms * 1e3)
                       : 0.0;
  }
};

std::string verdict_fingerprint(const VerifierService::AttestResult& r) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%d|%u|%llu|%d|%d|%d|%zu|%u", r.attested,
                r.seq, static_cast<unsigned long long>(r.cycle), r.mac_ok,
                r.seq_ok, r.path_ok, r.edges, r.dropped);
  return buf;
}

// One (policy, decode-mode) measurement: a timed run without tracing,
// then a short traced run for the cross-mode fingerprint gate.
ModeRun run_mode(Fleet& fleet, std::shared_ptr<const core::BuildResult> build,
                 EnforcementPolicy policy, bool predecode,
                 uint64_t timed_cycles, uint64_t traced_cycles, int* serial) {
  auto device_id = [&](const char* kind) {
    return std::string(enforcement_policy_name(policy)) + "-" + kind + "-" +
           (predecode ? "pre" : "int") + "-" + std::to_string((*serial)++);
  };
  ModeRun out;
  {
    DeviceSession& dev =
        fleet.deploy(device_id("timed"), build, policy,
                     {.cfa = {.log_capacity = 1 << 12}, .predecode = predecode});
    auto t0 = clock_type::now();
    dev.run(timed_cycles);
    out.wall_ms = ms_since(t0);
    out.instructions = dev.machine().cpu().instructions_retired();
    out.sim_cycles = dev.machine().cycles();
    if (policy == EnforcementPolicy::kCfaBaseline) {
      out.verdict = verdict_fingerprint(fleet.verifier().attest(dev));
    }
  }
  {
    DeviceSession& dev =
        fleet.deploy(device_id("traced"), build, policy,
                     {.cfa = {.log_capacity = 1 << 12}, .predecode = predecode});
    TraceFingerprint trace;
    dev.machine().add_monitor(&trace);
    dev.run(traced_cycles);
    out.trace_hash = trace.hash();
    out.trace_steps = trace.steps();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const uint64_t timed_cycles = smoke ? 2'000'000 : 40'000'000;
  const uint64_t traced_cycles = smoke ? 500'000 : 2'000'000;
  const size_t fleet_devices = smoke ? 32 : 256;
  const size_t fleet_threads = 8;
  const uint64_t fleet_cycles = smoke ? 500'000 : 4'000'000;

  Fleet fleet;
  auto plain = fleet.build(kKernelSource, "spin_kernel", {.eilid = false});
  auto instrumented = fleet.build(kKernelSource, "spin_kernel", {.eilid = true});

  std::printf("Simulator core throughput (%s: %llu cycles/run)\n\n",
              smoke ? "smoke" : "full",
              static_cast<unsigned long long>(timed_cycles));
  std::printf("%-13s | %-12s | %-12s | %-9s | %-7s | %s\n", "policy",
              "interp MIPS", "predec MIPS", "speedup", "trace", "verdict");
  for (int i = 0; i < 78; ++i) std::putchar('-');
  std::putchar('\n');

  bool ok = true;
  int serial = 0;
  std::string policy_json;
  for (EnforcementPolicy policy : kPolicies) {
    auto build = policy == EnforcementPolicy::kEilidHw ? instrumented : plain;
    ModeRun interp = run_mode(fleet, build, policy, /*predecode=*/false,
                              timed_cycles, traced_cycles, &serial);
    ModeRun predec = run_mode(fleet, build, policy, /*predecode=*/true,
                              timed_cycles, traced_cycles, &serial);

    const bool trace_ok = interp.trace_hash == predec.trace_hash &&
                          interp.trace_steps == predec.trace_steps &&
                          interp.instructions == predec.instructions &&
                          interp.sim_cycles == predec.sim_cycles;
    const bool verdict_ok = interp.verdict == predec.verdict;
    ok = ok && trace_ok && verdict_ok;

    const double speedup =
        interp.mips() > 0 ? predec.mips() / interp.mips() : 0.0;
    std::printf("%-13s | %12.1f | %12.1f | %8.2fx | %-7s | %s\n",
                std::string(enforcement_policy_name(policy)).c_str(),
                interp.mips(), predec.mips(), speedup,
                trace_ok ? "same" : "DIFFER", verdict_ok ? "same" : "DIFFER");

    char row[512];
    std::snprintf(
        row, sizeof(row),
        "    {\"policy\": \"%s\", \"instructions\": %llu, \"sim_cycles\": "
        "%llu, \"mips_interpretive\": %.1f, \"mips_predecoded\": %.1f, "
        "\"speedup\": %.2f, \"trace_identical\": %s, \"verdict_identical\": "
        "%s},\n",
        std::string(enforcement_policy_name(policy)).c_str(),
        static_cast<unsigned long long>(predec.instructions),
        static_cast<unsigned long long>(predec.sim_cycles),
        interp.mips(), predec.mips(), speedup, trace_ok ? "true" : "false",
        verdict_ok ? "true" : "false");
    policy_json += row;
  }
  if (!policy_json.empty()) policy_json.resize(policy_json.size() - 2);

  // --- fleet sweep: N devices, shared builds, pooled drive ----------
  std::vector<DeviceSession*> devices;
  devices.reserve(fleet_devices);
  for (size_t i = 0; i < fleet_devices; ++i) {
    EnforcementPolicy policy = kPolicies[i % 4];
    auto build = policy == EnforcementPolicy::kEilidHw ? instrumented : plain;
    devices.push_back(&fleet.deploy("fleet-" + std::to_string(i), build, policy,
                                    {.cfa = {.log_capacity = 1 << 12}}));
  }
  common::ThreadPool pool(fleet_threads);
  auto tf = clock_type::now();
  pool.parallel_for(devices.size(), [&](size_t i) {
    std::lock_guard<std::mutex> lock(devices[i]->mutex());
    devices[i]->run(fleet_cycles);
  });
  double fleet_ms = ms_since(tf);
  uint64_t fleet_instructions = 0;
  for (DeviceSession* dev : devices) {
    fleet_instructions += dev->machine().cpu().instructions_retired();
  }
  double fleet_mips =
      fleet_ms > 0 ? static_cast<double>(fleet_instructions) / (fleet_ms * 1e3)
                   : 0.0;
  std::printf("\nfleet sweep: %zu devices x %llu cycles on %zu threads: "
              "%.1f ms, aggregate %.1f MIPS\n",
              fleet_devices, static_cast<unsigned long long>(fleet_cycles),
              fleet_threads, fleet_ms, fleet_mips);

  FILE* json = std::fopen("BENCH_sim_throughput.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"sim_throughput\",\n  \"mode\": \"%s\",\n"
                 "  \"cycles_per_run\": %llu,\n  \"policies\": [\n%s\n  ],\n"
                 "  \"fleet\": {\"devices\": %zu, \"threads\": %zu, "
                 "\"cycles_per_device\": %llu, \"wall_ms\": %.1f, "
                 "\"aggregate_mips\": %.1f},\n  \"ok\": %s\n}\n",
                 smoke ? "smoke" : "full",
                 static_cast<unsigned long long>(timed_cycles), policy_json.c_str(),
                 fleet_devices, fleet_threads,
                 static_cast<unsigned long long>(fleet_cycles), fleet_ms,
                 fleet_mips, ok ? "true" : "false");
    std::fclose(json);
  }

  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
